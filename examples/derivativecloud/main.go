// Derivativecloud reproduces the paper's Figure 4 architecture example:
// two VMs with cache weights 33/67, five containers, and per-container
// store choices — VM1's container1 on the SSD store and container2 on the
// memory store; VM2's containers 1/2 splitting its memory share 25/75 and
// container3 on the SSD store. The output shows the two-level partitioning
// in effect.
package main

import (
	"fmt"
	"os"
	"time"

	"doubledecker/internal/cgroup"
	"doubledecker/internal/cleancache"
	"doubledecker/internal/ddcache"
	"doubledecker/internal/guest"
	"doubledecker/internal/hypervisor"
	"doubledecker/internal/sim"
	"doubledecker/internal/workload"
)

const mib = int64(1) << 20

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "derivativecloud:", err)
		os.Exit(1)
	}
}

func run() error {
	engine := sim.New(7)
	host := hypervisor.New(engine, hypervisor.Config{
		Mode:          ddcache.ModeDD,
		MemCacheBytes: 384 * mib,
		SSDCacheBytes: 4 << 30,
	})

	vm1 := host.NewVM(1, 512*mib, 33)
	vm2 := host.NewVM(2, 512*mib, 67)

	type slot struct {
		vm   *guest.VM
		name string
		spec cgroup.HCacheSpec
	}
	slots := []slot{
		{vm1, "vm1/c1", cgroup.HCacheSpec{Store: cgroup.StoreSSD, Weight: 100}},
		{vm1, "vm1/c2", cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100}},
		{vm2, "vm2/c1", cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 25}},
		{vm2, "vm2/c2", cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 75}},
		{vm2, "vm2/c3", cgroup.HCacheSpec{Store: cgroup.StoreSSD, Weight: 100}},
	}

	containers := make([]*guest.Container, len(slots))
	for i, s := range slots {
		containers[i] = s.vm.NewContainer(s.name, 64*mib, s.spec)
		// Every container runs a webserver whose set exceeds its limit,
		// so all of them lean on their configured store.
		cfg := workload.WebserverConfig{Files: 1600, MeanBlocks: 32, Think: time.Millisecond}
		workload.Start(engine, containers[i], workload.NewWebserver(cfg, engine.Rand()), 2)
	}

	if err := engine.Run(4 * time.Minute); err != nil {
		return err
	}

	fmt.Println("two-level DoubleDecker partitioning after 4 virtual minutes:")
	fmt.Printf("\n%-8s %-6s %8s %14s %14s\n", "pool", "store", "weight", "mem MiB", "ssd MiB")
	for i, s := range slots {
		g := containers[i].Group()
		mgr := host.Manager()
		pool := cleancache.PoolID(g.PoolID())
		memUsed := float64(mgr.PoolUsedBytes(pool, cgroup.StoreMem)) / float64(mib)
		ssdUsed := float64(mgr.PoolUsedBytes(pool, cgroup.StoreSSD)) / float64(mib)
		fmt.Printf("%-8s %-6s %8d %14.1f %14.1f\n", s.name, g.Spec().Store, g.Spec().Weight, memUsed, ssdUsed)
	}
	fmt.Printf("\nVM totals (memory store): vm1=%.1f MiB, vm2=%.1f MiB (weights 33/67)\n",
		float64(host.Manager().VMUsedBytes(1, cgroup.StoreMem))/float64(mib),
		float64(host.Manager().VMUsedBytes(2, cgroup.StoreMem))/float64(mib))
	return nil
}
