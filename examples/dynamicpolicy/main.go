// Dynamicpolicy demonstrates runtime reconfiguration (the paper's §5.3):
// two containers share the memory store 60/40; a video container joins
// and the weights are rebalanced on the fly; finally the video container
// is migrated to the SSD store and the memory store snaps back to 60/40 —
// all without restarting anything.
package main

import (
	"fmt"
	"os"
	"time"

	"doubledecker/internal/cgroup"
	"doubledecker/internal/cleancache"
	"doubledecker/internal/ddcache"
	"doubledecker/internal/guest"
	"doubledecker/internal/hypervisor"
	"doubledecker/internal/sim"
	"doubledecker/internal/workload"
)

const mib = int64(1) << 20

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dynamicpolicy:", err)
		os.Exit(1)
	}
}

func run() error {
	engine := sim.New(11)
	host := hypervisor.New(engine, hypervisor.Config{
		Mode:          ddcache.ModeDD,
		MemCacheBytes: 256 * mib,
		SSDCacheBytes: 4 << 30,
	})
	vm := host.NewVM(1, 1<<30, 100)

	web := vm.NewContainer("web", 128*mib, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 60})
	proxy := vm.NewContainer("proxy", 128*mib, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 40})
	workload.Start(engine, web, workload.NewWebserver(
		workload.WebserverConfig{Files: 2400, MeanBlocks: 32, Think: time.Millisecond}, engine.Rand()), 4)
	workload.Start(engine, proxy, workload.NewWebproxy(
		workload.WebproxyConfig{Files: 8000, MeanBlocks: 8, Think: 2 * time.Millisecond}, engine.Rand()), 4)

	show := func(label string, video *guest.Container) {
		mgr := host.Manager()
		line := fmt.Sprintf("%-28s web=%6.1f MiB  proxy=%6.1f MiB", label,
			float64(mgr.PoolUsedBytes(cleancache.PoolID(web.Group().PoolID()), cgroup.StoreMem))/float64(mib),
			float64(mgr.PoolUsedBytes(cleancache.PoolID(proxy.Group().PoolID()), cgroup.StoreMem))/float64(mib))
		if video != nil {
			pool := cleancache.PoolID(video.Group().PoolID())
			line += fmt.Sprintf("  video: mem=%6.1f ssd=%6.1f",
				float64(mgr.PoolUsedBytes(pool, cgroup.StoreMem))/float64(mib),
				float64(mgr.PoolUsedBytes(pool, cgroup.StoreSSD))/float64(mib))
		}
		fmt.Println(line)
	}

	// Phase 1: two containers at 60/40.
	if err := engine.Run(2 * time.Minute); err != nil {
		return err
	}
	show("phase 1 (60/40):", nil)

	// Phase 2: a video container joins; rebalance to 50/30/20 live.
	video := vm.NewContainer("video", 128*mib, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 20})
	web.SetSpec(cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 50})
	proxy.SetSpec(cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 30})
	workload.Start(engine, video, workload.NewVideoserver(workload.VideoserverConfig{
		ActiveVideos: 2, PassiveVideos: 6, VideoBlocks: 16384, ChunkBlocks: 64,
		WriterThreads: 1, WriterThink: 10 * time.Millisecond, PassiveReadFrac: 0.06,
		Think: time.Millisecond,
	}, engine.Rand()), 4)
	if err := engine.Run(engine.Now() + 2*time.Minute); err != nil {
		return err
	}
	show("phase 2 (+video, 50/30/20):", video)

	// Phase 3: move the video container to the SSD store (SET_CG_WEIGHT
	// with a new <T, W>) and reset the memory weights.
	video.SetSpec(cgroup.HCacheSpec{Store: cgroup.StoreSSD, Weight: 100})
	web.SetSpec(cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 60})
	proxy.SetSpec(cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 40})
	if err := engine.Run(engine.Now() + 2*time.Minute); err != nil {
		return err
	}
	show("phase 3 (video on SSD):", video)

	fmt.Println("\nevery transition happened at runtime via SET_CG_WEIGHT; no container restarted.")
	return nil
}
