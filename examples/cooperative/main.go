// Cooperative demonstrates the paper's central argument (§5.2.1): a
// centralized hypervisor cache cannot help anonymous-memory applications,
// but DoubleDecker's two-level provisioning — the guest sets cgroup
// limits, the hypervisor honours cache weights — can. A Redis-like store
// collapses into swap next to a file-hungry webserver under centralized
// management and recovers fully under cooperative provisioning.
package main

import (
	"fmt"
	"os"
	"time"

	"doubledecker/internal/cgroup"
	"doubledecker/internal/datastore"
	"doubledecker/internal/ddcache"
	"doubledecker/internal/hypervisor"
	"doubledecker/internal/sim"
	"doubledecker/internal/workload"
)

const mib = int64(1) << 20

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cooperative:", err)
		os.Exit(1)
	}
}

// scenario runs redis + webserver in one 768 MiB VM. With cooperative=false
// the containers are unbounded (the centralized model: only the hypervisor
// cache is partitioned); with cooperative=true the VM-level manager also
// sets in-VM limits so the anon working set is protected.
func scenario(cooperative bool) (redisOps, webOps float64, redisResidentMiB float64) {
	engine := sim.New(3)
	host := hypervisor.New(engine, hypervisor.Config{
		Mode:          ddcache.ModeDD,
		MemCacheBytes: 256 * mib,
	})
	vm := host.NewVM(1, 768*mib, 100)

	var redisLimit, webLimit int64
	if cooperative {
		redisLimit = 320 * mib // fits the working set
		webLimit = 256 * mib   // web offloads its tail to the cache
	}
	redis := vm.NewContainer("redis", redisLimit, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 0})
	web := vm.NewContainer("web", webLimit, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})

	rRedis := workload.Start(engine, redis, datastore.NewRedis(datastore.RedisConfig{
		DatasetBytes: 300 * mib,
		TouchesPerOp: 2,
		Think:        1500 * time.Microsecond,
	}, engine.Rand()), 2)
	rWeb := workload.Start(engine, web, workload.NewWebserver(workload.WebserverConfig{
		Files:      4800,
		MeanBlocks: 32, // ~600 MiB: a memory hog without limits
		Think:      time.Millisecond,
	}, engine.Rand()), 4)

	duration := 4 * time.Minute
	engine.Run(duration * 2 / 5)
	cpR := rRedis.CheckpointNow(engine.Now())
	cpW := rWeb.CheckpointNow(engine.Now())
	engine.Run(duration)
	return rRedis.OpsPerSecSince(cpR, engine.Now()),
		rWeb.OpsPerSecSince(cpW, engine.Now()),
		float64(redis.Group().AnonResident()) * 4096 / float64(mib)
}

func run() error {
	cRedis, cWeb, cResident := scenario(false)
	dRedis, dWeb, dResident := scenario(true)

	fmt.Println("centralized vs cooperative provisioning (steady-state):")
	fmt.Printf("\n%-24s %14s %14s %18s\n", "technique", "redis ops/s", "web ops/s", "redis resident MiB")
	fmt.Printf("%-24s %14.1f %14.1f %18.1f\n", "centralized (no limits)", cRedis, cWeb, cResident)
	fmt.Printf("%-24s %14.1f %14.1f %18.1f\n", "cooperative (two-level)", dRedis, dWeb, dResident)
	if dRedis > 2*cRedis {
		fmt.Printf("\ncooperative provisioning recovered redis %.0fx by fitting its working set in-VM,\n", dRedis/cRedis)
		fmt.Println("while the webserver kept its performance through the hypervisor cache.")
	} else {
		fmt.Println("\n(unexpected: redis did not collapse under the centralized scenario)")
	}
	return nil
}
