// Adaptive demonstrates the paper's future-work direction made concrete:
// the in-VM policy controller observes each container's page-access
// stream, builds SHARDS-sampled miss-ratio curves, partitions the
// hypervisor cache by marginal gain, and pushes the resulting weights
// through SET_CG_WEIGHT — closing the loop the paper sketches with
// "DD can employ MRC, WSS estimation, SHARDS".
package main

import (
	"fmt"
	"os"
	"time"

	"doubledecker/internal/cgroup"
	"doubledecker/internal/ddcache"
	"doubledecker/internal/estimator"
	"doubledecker/internal/guest"
	"doubledecker/internal/hypervisor"
	"doubledecker/internal/sim"
	"doubledecker/internal/workload"
)

const (
	mib      = int64(1) << 20
	pageSize = 4096
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "adaptive:", err)
		os.Exit(1)
	}
}

func run() error {
	engine := sim.New(21)
	host := hypervisor.New(engine, hypervisor.Config{
		Mode:          ddcache.ModeDD,
		MemCacheBytes: 192 * mib,
	})
	vm := host.NewVM(1, 512*mib, 100)

	// Two tenants with very different reuse behaviour: a webserver with
	// strong reuse (cache helps a lot) and a scan-like proxy with churn
	// (cache helps little). Both start at equal weights.
	web := vm.NewContainer("web", 96*mib, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 50})
	scan := vm.NewContainer("scan", 96*mib, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 50})

	// The policy controller: one sampled MRC + WSS per container, fed by
	// the page cache access hook.
	type tenant struct {
		c    *guest.Container
		mrc  *estimator.SHARDS
		wss  *estimator.WSS
		hits int64
	}
	tenants := map[*cgroup.Group]*tenant{
		web.Group():  {c: web, mrc: estimator.NewSHARDS(0.2), wss: estimator.NewWSS(30 * time.Second)},
		scan.Group(): {c: scan, mrc: estimator.NewSHARDS(0.2), wss: estimator.NewWSS(30 * time.Second)},
	}
	vm.PageCache().SetAccessHook(func(g *cgroup.Group, inode uint64, block int64) {
		t, ok := tenants[g]
		if !ok {
			return
		}
		key := inode<<32 | uint64(block)
		t.mrc.Touch(key)
		t.wss.Touch(engine.Now(), key)
		t.hits++
	})

	workload.Start(engine, web, workload.NewWebserver(
		workload.WebserverConfig{Files: 1600, MeanBlocks: 32, Think: time.Millisecond}, engine.Rand()), 4)
	workload.Start(engine, scan, workload.NewWebproxy(
		workload.WebproxyConfig{Files: 12000, MeanBlocks: 8, Think: time.Millisecond}, engine.Rand()), 4)

	// Every virtual minute the controller re-partitions the cache from
	// the observed curves and applies the weights via SET_CG_WEIGHT.
	order := []*tenant{tenants[web.Group()], tenants[scan.Group()]}
	engine.Every(time.Minute, func() {
		curves := make([]estimator.CurveSource, len(order))
		rates := make([]float64, len(order))
		for i, t := range order {
			curves[i] = t.mrc
			rates[i] = float64(t.hits)
			t.hits = 0
		}
		capacityPages := 192 * mib / pageSize
		alloc := estimator.Partition(curves, rates, capacityPages, capacityPages/32)
		weights := estimator.WeightsFromAllocation(alloc)
		for i, t := range order {
			if weights[i] > 0 {
				t.c.SetSpec(cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: weights[i]})
			}
		}
		fmt.Printf("t=%4.0fs controller: wss(web)=%5d pages wss(scan)=%5d pages → weights %d/%d\n",
			engine.Now().Seconds(),
			order[0].wss.Estimate(engine.Now()), order[1].wss.Estimate(engine.Now()),
			order[0].c.Group().Spec().Weight, order[1].c.Group().Spec().Weight)
	})

	if err := engine.Run(6 * time.Minute); err != nil {
		return err
	}

	fmt.Println("\nfinal state:")
	for _, t := range order {
		cs := t.c.CacheStats()
		fmt.Printf("  %-5s weight=%3d  cache=%6.1f MiB  hit-ratio=%5.1f%%\n",
			t.c.Name(), t.c.Group().Spec().Weight, float64(cs.UsedBytes)/float64(mib), cs.HitRatio())
	}
	fmt.Println("\nthe controller learned that the webserver's curve rewards cache and shifted the weights accordingly.")
	return nil
}
