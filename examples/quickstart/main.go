// Quickstart: boot one VM with two containers of different cache weights,
// run a webserver workload in each, and watch DoubleDecker partition the
// hypervisor cache 70/30 while staying resource-conservative.
package main

import (
	"fmt"
	"os"
	"time"

	"doubledecker/internal/cgroup"
	"doubledecker/internal/ddcache"
	"doubledecker/internal/hypervisor"
	"doubledecker/internal/sim"
	"doubledecker/internal/workload"
)

const mib = int64(1) << 20

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. A simulation engine: all time is virtual and deterministic.
	engine := sim.New(42)

	// 2. A host with a 256 MiB memory-backed DoubleDecker cache.
	host := hypervisor.New(engine, hypervisor.Config{
		Mode:          ddcache.ModeDD,
		MemCacheBytes: 256 * mib,
	})

	// 3. One VM with 512 MiB of RAM.
	vm := host.NewVM(1, 512*mib, 100)

	// 4. Two containers: the <T, W> tuple gives gold 70% of the cache
	//    and bronze 30%.
	gold := vm.NewContainer("gold", 96*mib, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 70})
	bronze := vm.NewContainer("bronze", 96*mib, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 30})

	// 5. Identical webserver workloads whose file sets exceed the
	//    container limits, so both lean on the hypervisor cache.
	cfg := workload.WebserverConfig{Files: 2400, MeanBlocks: 32, Think: time.Millisecond}
	rGold := workload.Start(engine, gold, workload.NewWebserver(cfg, engine.Rand()), 4)
	rBronze := workload.Start(engine, bronze, workload.NewWebserver(cfg, engine.Rand()), 4)

	// 6. Run five virtual minutes.
	if err := engine.Run(5 * time.Minute); err != nil {
		return err
	}

	// 7. Inspect: per-container cache statistics via GET_STATS.
	now := engine.Now()
	fmt.Printf("after %v of virtual time:\n\n", now)
	fmt.Printf("%-8s %12s %12s %14s %12s %10s\n",
		"pool", "cache MiB", "entitlement", "lookups-hit %", "evictions", "MB/s")
	rows := []struct {
		name   string
		runner *workload.Runner
	}{{"gold", rGold}, {"bronze", rBronze}}
	for _, row := range rows {
		cs := row.runner.Container().CacheStats()
		fmt.Printf("%-8s %12.1f %12.1f %14.1f %12d %10.1f\n",
			row.name,
			float64(cs.UsedBytes)/float64(mib),
			float64(cs.EntitlementBytes)/float64(mib),
			cs.HitRatio(),
			cs.Evictions,
			row.runner.MBPerSec(now),
		)
	}
	fmt.Println("\ngold's 70-weight translates directly into a larger cache share and fewer evictions.")
	return nil
}
