module doubledecker

go 1.22
