package hypercall

import (
	"testing"
	"time"

	"doubledecker/internal/cleancache"
	"doubledecker/internal/fault"
)

func TestChecksum(t *testing.T) {
	a := []byte("doubledecker batch payload")
	if Checksum(a) != Checksum(a) {
		t.Fatal("checksum not deterministic")
	}
	b := append([]byte(nil), a...)
	b[3] ^= 0x40
	if Checksum(a) == Checksum(b) {
		t.Fatal("single-bit flip not detected")
	}
	if Checksum(nil) != Checksum([]byte{}) {
		t.Fatal("empty payload checksums disagree")
	}
}

func TestCorruptBatchRetriesAndDelivers(t *testing.T) {
	// Corrupt only the very first crossing (window [0, 1ns)); the retry
	// happens after backoff, outside the window, and succeeds.
	inj := fault.New(fault.Plan{Rules: []fault.Rule{
		{Site: SiteBatch, Kind: fault.KindCorrupt, To: 1},
	}})
	be := newSeqBackend()
	tr := NewTransport(be, Options{Faults: inj})
	pool := newPool(t, tr)

	tr.Submit(0, put(pool, 1, 0))
	tr.Flush(0)

	s := tr.Stats()
	if s.Corrupts != 1 || s.Retries != 1 || s.DroppedBatches != 0 {
		t.Fatalf("stats after corrupted crossing: %+v", s)
	}
	if s.Backoff <= 0 {
		t.Fatal("retry charged no backoff")
	}
	if s.Batches != 1 {
		t.Fatalf("batch not delivered after retry: %+v", s)
	}
	// The put arrived exactly once despite the replay.
	if resp := tr.Submit(0, cleancache.Request{
		Op: cleancache.OpGet, VM: 1,
		Key: cleancache.Key{Pool: pool, Inode: 1, Block: 0},
	}); !resp.Ok {
		t.Fatal("retried put did not reach the backend")
	}
}

func TestAbandonedBatchDropsPutsRequeuesFlushes(t *testing.T) {
	// Every crossing in [0, 1ms) is dropped; with 3 attempts and a tiny
	// backoff the whole budget burns inside the window.
	inj := fault.New(fault.Plan{Rules: []fault.Rule{
		{Site: SiteBatch, Kind: fault.KindDrop, To: time.Millisecond},
	}})
	be := newSeqBackend()
	tr := NewTransport(be, Options{
		Faults:      inj,
		MaxAttempts: 3,
		RetryBase:   time.Microsecond,
		RetryCap:    2 * time.Microsecond,
	})
	pool := newPool(t, tr)

	tr.Submit(0, put(pool, 1, 0))
	tr.Submit(0, cleancache.Request{
		Op: cleancache.OpFlushPage, VM: 1,
		Key: cleancache.Key{Pool: pool, Inode: 2, Block: 0},
	})
	tr.Flush(0)

	s := tr.Stats()
	if s.DroppedBatches != 1 || s.Drops != 3 || s.Retries != 2 {
		t.Fatalf("stats after abandoned batch: %+v", s)
	}
	// The put was dropped (cleancache-safe); the flush was re-queued.
	if s.RequeuedOps != 1 || s.Pending != 1 {
		t.Fatalf("requeue after abandoned batch: %+v", s)
	}
	// Past the fault window the re-queued flush is delivered.
	tr.Flush(2 * time.Millisecond)
	s = tr.Stats()
	if s.Pending != 0 || s.Batches != 1 {
		t.Fatalf("requeued flush not delivered: %+v", s)
	}
	if n := len(be.ops); n != 2 || be.ops[1].Op != cleancache.OpFlushPage {
		t.Fatalf("backend saw %d ops, want create+flush: %+v", n, be.ops)
	}
}

func TestSyncFailureReportsMissWithoutLosingData(t *testing.T) {
	// Synchronous crossings fail during [1ms, 10ms); batches are fine.
	inj := fault.New(fault.Plan{Rules: []fault.Rule{
		{Site: SiteCall, Kind: fault.KindDrop, From: time.Millisecond, To: 10 * time.Millisecond},
	}})
	be := newSeqBackend()
	tr := NewTransport(be, Options{Faults: inj, MaxAttempts: 2})
	pool := newPool(t, tr) // now=0: before the fault window
	tr.Submit(0, put(pool, 1, 0))
	tr.Flush(0)

	get := cleancache.Request{
		Op: cleancache.OpGet, VM: 1,
		Key: cleancache.Key{Pool: pool, Inode: 1, Block: 0},
	}
	resp := tr.Submit(2*time.Millisecond, get)
	if resp.Ok {
		t.Fatal("get succeeded through a dropped crossing")
	}
	if s := tr.Stats(); s.SyncFailures != 1 {
		t.Fatalf("sync failure not counted: %+v", s)
	}
	// The object was never fetched, so once the transport recovers the
	// guest's next get still hits: a failed sync op is a miss, not a loss.
	if resp := tr.Submit(20*time.Millisecond, get); !resp.Ok {
		t.Fatal("object lost by a failed sync crossing")
	}
}

func TestRetryBackoffIsCapped(t *testing.T) {
	inj := fault.New(fault.Plan{Rules: []fault.Rule{
		{Site: SiteBatch, Kind: fault.KindDrop, Prob: 1},
	}})
	be := newSeqBackend()
	tr := NewTransport(be, Options{
		Faults:      inj,
		MaxAttempts: 5,
		RetryBase:   10 * time.Microsecond,
		RetryCap:    20 * time.Microsecond,
	})
	pool := newPool(t, tr)
	tr.Submit(0, put(pool, 1, 0))
	tr.Flush(0)

	// Four backoffs between five attempts: 10 + 20 + 20 + 20 µs.
	want := 70 * time.Microsecond
	if s := tr.Stats(); s.Backoff != want {
		t.Fatalf("total backoff %v, want %v (stats %+v)", s.Backoff, want, s)
	}
}
