package hypercall

import (
	"testing"

	"doubledecker/internal/cgroup"
	"doubledecker/internal/cleancache"
)

// sampleRequest builds a representative request for op, exercising every
// field that op carries on the wire (including signed and large values).
func sampleRequest(op cleancache.OpCode) cleancache.Request {
	req := cleancache.Request{Op: op, VM: 7}
	switch op {
	case cleancache.OpGet, cleancache.OpFlushPage:
		req.Key = cleancache.Key{Pool: 3, Inode: 1 << 40, Block: -12}
	case cleancache.OpPut:
		req.Key = cleancache.Key{Pool: 9, Inode: 42, Block: 1 << 33}
		req.Content = 0xdeadbeefcafe
	case cleancache.OpFlushInode:
		req.Key = cleancache.Key{Pool: 5, Inode: 99}
	case cleancache.OpCreateCgroup:
		req.Name = "web-frontend"
		req.Spec = cgroup.HCacheSpec{Store: cgroup.StoreHybrid, Weight: 75}
	case cleancache.OpDestroyCgroup, cleancache.OpGetStats:
		req.Key = cleancache.Key{Pool: 11}
	case cleancache.OpSetCgWeight:
		req.Key = cleancache.Key{Pool: 2}
		req.Spec = cgroup.HCacheSpec{Store: cgroup.StoreSSD, Weight: 30}
	case cleancache.OpMigrateObject:
		req.Key = cleancache.Key{Pool: 4, Inode: 77}
		req.To = 6
	case cleancache.OpReadAhead:
		req.Key = cleancache.Key{Pool: 8, Inode: 1 << 50, Block: 1 << 20}
		req.Count = 64
	}
	return req
}

func TestCodecRoundTripAllOps(t *testing.T) {
	for _, op := range cleancache.OpCodes() {
		want := sampleRequest(op)
		buf := EncodeRequest(nil, want)
		got, n, err := DecodeRequest(buf)
		if err != nil {
			t.Fatalf("%v: decode: %v", op, err)
		}
		if n != len(buf) {
			t.Fatalf("%v: consumed %d of %d bytes", op, n, len(buf))
		}
		if got != want {
			t.Fatalf("%v: round trip\n got %+v\nwant %+v", op, got, want)
		}
	}
}

func TestCodecFrameStream(t *testing.T) {
	// Concatenated frames decode back in order, as Ring.Drain relies on.
	var buf []byte
	var want []cleancache.Request
	for _, op := range cleancache.OpCodes() {
		req := sampleRequest(op)
		buf = EncodeRequest(buf, req)
		want = append(want, req)
	}
	for i := 0; len(buf) > 0; i++ {
		got, n, err := DecodeRequest(buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got != want[i] {
			t.Fatalf("frame %d: got %+v, want %+v", i, got, want[i])
		}
		buf = buf[n:]
	}
}

func TestTaggedFrameRoundTrip(t *testing.T) {
	// A mixed stream of plain and tagged frames decodes back in order
	// with tags intact — the shape DrainFrames consumes.
	type wantFrame struct {
		tagged bool
		tag    uint64
		req    cleancache.Request
	}
	var buf []byte
	var want []wantFrame
	for _, op := range cleancache.OpCodes() {
		req := sampleRequest(op)
		buf = EncodeRequest(buf, req)
		want = append(want, wantFrame{req: req})
		if op == cleancache.OpGet {
			for _, tg := range []uint64{0, 1, 1 << 40, ^uint64(0)} {
				buf = EncodeTagged(buf, tg, req)
				want = append(want, wantFrame{tagged: true, tag: tg, req: req})
			}
		}
	}
	for i := 0; len(buf) > 0; i++ {
		f, n, err := DecodeFrame(buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		w := want[i]
		if f.Tagged != w.tagged || f.Tag != w.tag || f.Req != w.req {
			t.Fatalf("frame %d:\n got %+v\nwant %+v", i, f, w)
		}
		buf = buf[n:]
	}
}

func TestCompletionRoundTrip(t *testing.T) {
	comps := []Completion{
		{Tag: 0, Ok: false, Count: 0, At: 0},
		{Tag: 1, Ok: true, Count: 1, At: 1800},
		{Tag: 1 << 50, Ok: true, Count: -3, At: 1 << 40},
		{Tag: ^uint64(0), Ok: false, Count: 1 << 40, At: 1},
	}
	var buf []byte
	for _, c := range comps {
		buf = EncodeCompletion(buf, c)
	}
	for i := 0; len(buf) > 0; i++ {
		got, n, err := DecodeCompletion(buf)
		if err != nil {
			t.Fatalf("completion %d: %v", i, err)
		}
		if got != comps[i] {
			t.Fatalf("completion %d:\n got %+v\nwant %+v", i, got, comps[i])
		}
		buf = buf[n:]
	}
}

func TestCompletionRejectsGarbage(t *testing.T) {
	if _, _, err := DecodeCompletion(nil); err == nil {
		t.Fatal("empty completion decoded")
	}
	// A request frame is not a completion.
	reqFrame := EncodeRequest(nil, sampleRequest(cleancache.OpGet))
	if _, _, err := DecodeCompletion(reqFrame); err == nil {
		t.Fatal("request frame decoded as completion")
	}
	full := EncodeCompletion(nil, Completion{Tag: 1 << 30, Ok: true, Count: 7, At: 12345})
	for cut := 1; cut < len(full); cut++ {
		if _, _, err := DecodeCompletion(full[:cut]); err == nil {
			t.Fatalf("truncated completion (%d of %d bytes) decoded", cut, len(full))
		}
	}
}

func TestDecodeRequestRejectsFramingMarkers(t *testing.T) {
	// The tagged/completion markers live outside the OpCode range; the
	// plain-request decoder must reject them rather than misparse.
	tagged := EncodeTagged(nil, 9, sampleRequest(cleancache.OpGet))
	if _, _, err := DecodeRequest(tagged); err == nil {
		t.Fatal("tagged frame decoded as plain request")
	}
	comp := EncodeCompletion(nil, Completion{Tag: 9, Ok: true})
	if _, _, err := DecodeRequest(comp); err == nil {
		t.Fatal("completion frame decoded as plain request")
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	if _, _, err := DecodeRequest(nil); err == nil {
		t.Fatal("empty frame decoded")
	}
	if _, _, err := DecodeRequest([]byte{0xff}); err == nil {
		t.Fatal("unknown op code decoded")
	}
	full := EncodeRequest(nil, sampleRequest(cleancache.OpPut))
	for cut := 1; cut < len(full); cut++ {
		if _, _, err := DecodeRequest(full[:cut]); err == nil {
			t.Fatalf("truncated frame (%d of %d bytes) decoded", cut, len(full))
		}
	}
}
