package hypercall

import (
	"testing"

	"doubledecker/internal/cgroup"
	"doubledecker/internal/cleancache"
)

// sampleRequest builds a representative request for op, exercising every
// field that op carries on the wire (including signed and large values).
func sampleRequest(op cleancache.OpCode) cleancache.Request {
	req := cleancache.Request{Op: op, VM: 7}
	switch op {
	case cleancache.OpGet, cleancache.OpFlushPage:
		req.Key = cleancache.Key{Pool: 3, Inode: 1 << 40, Block: -12}
	case cleancache.OpPut:
		req.Key = cleancache.Key{Pool: 9, Inode: 42, Block: 1 << 33}
		req.Content = 0xdeadbeefcafe
	case cleancache.OpFlushInode:
		req.Key = cleancache.Key{Pool: 5, Inode: 99}
	case cleancache.OpCreateCgroup:
		req.Name = "web-frontend"
		req.Spec = cgroup.HCacheSpec{Store: cgroup.StoreHybrid, Weight: 75}
	case cleancache.OpDestroyCgroup, cleancache.OpGetStats:
		req.Key = cleancache.Key{Pool: 11}
	case cleancache.OpSetCgWeight:
		req.Key = cleancache.Key{Pool: 2}
		req.Spec = cgroup.HCacheSpec{Store: cgroup.StoreSSD, Weight: 30}
	case cleancache.OpMigrateObject:
		req.Key = cleancache.Key{Pool: 4, Inode: 77}
		req.To = 6
	}
	return req
}

func TestCodecRoundTripAllOps(t *testing.T) {
	for _, op := range cleancache.OpCodes() {
		want := sampleRequest(op)
		buf := EncodeRequest(nil, want)
		got, n, err := DecodeRequest(buf)
		if err != nil {
			t.Fatalf("%v: decode: %v", op, err)
		}
		if n != len(buf) {
			t.Fatalf("%v: consumed %d of %d bytes", op, n, len(buf))
		}
		if got != want {
			t.Fatalf("%v: round trip\n got %+v\nwant %+v", op, got, want)
		}
	}
}

func TestCodecFrameStream(t *testing.T) {
	// Concatenated frames decode back in order, as Ring.Drain relies on.
	var buf []byte
	var want []cleancache.Request
	for _, op := range cleancache.OpCodes() {
		req := sampleRequest(op)
		buf = EncodeRequest(buf, req)
		want = append(want, req)
	}
	for i := 0; len(buf) > 0; i++ {
		got, n, err := DecodeRequest(buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got != want[i] {
			t.Fatalf("frame %d: got %+v, want %+v", i, got, want[i])
		}
		buf = buf[n:]
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	if _, _, err := DecodeRequest(nil); err == nil {
		t.Fatal("empty frame decoded")
	}
	if _, _, err := DecodeRequest([]byte{0xff}); err == nil {
		t.Fatal("unknown op code decoded")
	}
	full := EncodeRequest(nil, sampleRequest(cleancache.OpPut))
	for cut := 1; cut < len(full); cut++ {
		if _, _, err := DecodeRequest(full[:cut]); err == nil {
			t.Fatalf("truncated frame (%d of %d bytes) decoded", cut, len(full))
		}
	}
}
