package hypercall

import (
	"sync"
	"testing"
	"time"
)

func TestCostAndCounters(t *testing.T) {
	c := NewChannel()
	l0 := c.Cost(0)
	if l0 != DefaultCallCost {
		t.Fatalf("zero-page cost = %v, want %v", l0, DefaultCallCost)
	}
	l1 := c.Cost(1)
	if l1 != DefaultCallCost+DefaultPageCopyCost {
		t.Fatalf("one-page cost = %v", l1)
	}
	if c.Calls() != 2 || c.PagesCopied() != 1 {
		t.Fatalf("counters = %d calls / %d pages", c.Calls(), c.PagesCopied())
	}
}

func TestCustomCosts(t *testing.T) {
	c := NewChannelWithCosts(time.Microsecond, 2*time.Microsecond)
	if got := c.Cost(3); got != 7*time.Microsecond {
		t.Fatalf("Cost(3) = %v, want 7µs", got)
	}
}

// TestChannelCostConcurrent drives Cost from many goroutines at once, the
// shape of PR 1's concurrent guests. With the pre-atomic counters this
// test fails under -race (and typically also loses increments).
func TestChannelCostConcurrent(t *testing.T) {
	c := NewChannel()
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Cost(1)
			}
		}()
	}
	wg.Wait()
	if c.Calls() != workers*per || c.PagesCopied() != workers*per {
		t.Fatalf("counters = %d calls / %d pages, want %d each",
			c.Calls(), c.PagesCopied(), workers*per)
	}
}
