package hypercall

import (
	"testing"
	"time"
)

func TestCostAndCounters(t *testing.T) {
	c := NewChannel()
	l0 := c.Cost(0)
	if l0 != DefaultCallCost {
		t.Fatalf("zero-page cost = %v, want %v", l0, DefaultCallCost)
	}
	l1 := c.Cost(1)
	if l1 != DefaultCallCost+DefaultPageCopyCost {
		t.Fatalf("one-page cost = %v", l1)
	}
	if c.Calls() != 2 || c.PagesCopied() != 1 {
		t.Fatalf("counters = %d calls / %d pages", c.Calls(), c.PagesCopied())
	}
}

func TestCustomCosts(t *testing.T) {
	c := NewChannelWithCosts(time.Microsecond, 2*time.Microsecond)
	if got := c.Cost(3); got != 7*time.Microsecond {
		t.Fatalf("Cost(3) = %v, want 7µs", got)
	}
}
