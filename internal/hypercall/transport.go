package hypercall

import (
	"sync"
	"time"

	"doubledecker/internal/cleancache"
	"doubledecker/internal/fault"
	"doubledecker/internal/metrics"
)

// Batch bounds: up to 512 ops per crossing, and up to 512 pages — 2 MiB
// of 4 KiB page payload, mirroring the paper's 2 MiB eviction
// granularity.
const (
	DefaultMaxBatchOps   = 512
	DefaultMaxBatchPages = 512
)

// Retry defaults: exponential backoff from 10 µs capped at 1 ms, with at
// most 8 delivery attempts per crossing before the payload is abandoned.
const (
	DefaultRetryBase   = 10 * time.Microsecond
	DefaultRetryCap    = time.Millisecond
	DefaultMaxAttempts = 8
)

// Options parameterizes a Transport.
type Options struct {
	// MaxBatchOps bounds the number of operations per crossing
	// (default 512).
	MaxBatchOps int
	// MaxBatchPages bounds the page payload per crossing (default 512
	// pages = 2 MiB).
	MaxBatchPages int
	// CallCost and PageCopyCost override the VMCALL cost model; zero
	// selects the defaults.
	CallCost     time.Duration
	PageCopyCost time.Duration
	// Unbatched disables coalescing: every op pays its own world switch,
	// the pre-batching behaviour. The baseline for the transport
	// experiment.
	Unbatched bool
	// Metrics receives per-op-code latency histograms and batch
	// telemetry; nil disables recording.
	Metrics *metrics.Registry
	// MetricsPrefix namespaces the recorded metrics (default
	// "hypercall").
	MetricsPrefix string
	// Faults injects transport faults (drop, corrupt, latency) at sites
	// SiteBatch and SiteCall; nil disables injection.
	Faults *fault.Injector
	// RetryBase is the initial backoff after a dropped or corrupted
	// crossing (default 10 µs).
	RetryBase time.Duration
	// RetryCap bounds the exponential backoff (default 1 ms).
	RetryCap time.Duration
	// MaxAttempts bounds delivery attempts per crossing (default 8);
	// after that the payload is abandoned.
	MaxAttempts int
}

// TransportStats is a snapshot of one transport's traffic.
type TransportStats struct {
	// Calls is the number of world switches (batched crossings + sync
	// ops).
	Calls int64
	// PagesCopied is the number of pages moved across the boundary.
	PagesCopied int64
	// Batches is the number of multi-op crossings.
	Batches int64
	// BatchedOps is the number of operations delivered via batches.
	BatchedOps int64
	// SyncOps is the number of operations delivered synchronously (gets,
	// control ops, and everything in Unbatched mode).
	SyncOps int64
	// Pending is the number of operations currently buffered.
	Pending int64
	// Retries is the number of crossings re-sent after a drop or a
	// checksum rejection.
	Retries int64
	// Backoff is the total virtual time spent backing off before retries.
	Backoff time.Duration
	// Drops and Corrupts count the in-flight faults the channel observed.
	Drops    int64
	Corrupts int64
	// DroppedBatches is the number of batches abandoned after MaxAttempts
	// delivery attempts.
	DroppedBatches int64
	// RequeuedOps is the number of flush ops from abandoned batches
	// re-queued for the next crossing.
	RequeuedOps int64
	// SyncFailures is the number of synchronous ops whose crossing was
	// abandoned (reported Ok=false to the guest).
	SyncFailures int64
}

// Transport is the batched, pipelined hypercall path from one VM to the
// hypervisor cache manager. It implements cleancache.Transport.
//
// Batchable operations (put, flush) are encoded onto a bounded Ring and
// delivered together in one crossing — one world switch for the whole
// batch plus per-page copy costs — when the ring fills or when the
// guest's flush tick calls Flush. Synchronous operations (get and the
// control ops) first drain the ring, preserving per-VM FIFO order, so
// the backend observes exactly the unbatched operation sequence: a get
// following a buffered put of the same key sees the put.
//
// Transport is safe for concurrent use by a VM's vCPU threads.
type Transport struct {
	be     cleancache.Backend
	reg    *metrics.Registry
	prefix string

	// mu guards the ring and the traffic counters below. ch is set once at
	// construction and read without the lock (Channel()); the Channel is
	// internally consistent on its own.
	mu   sync.Mutex
	ch   *Channel
	ring *Ring // ddlint:guarded-by mu
	// scratch is the reusable encode buffer for synchronous crossings.
	scratch []byte // ddlint:guarded-by mu

	unbatched   bool
	retryBase   time.Duration
	retryCap    time.Duration
	maxAttempts int

	batches        int64         // ddlint:guarded-by mu
	batchedOps     int64         // ddlint:guarded-by mu
	syncOps        int64         // ddlint:guarded-by mu
	retries        int64         // ddlint:guarded-by mu
	backoff        time.Duration // ddlint:guarded-by mu
	droppedBatches int64         // ddlint:guarded-by mu
	requeuedOps    int64         // ddlint:guarded-by mu
	syncFailures   int64         // ddlint:guarded-by mu
}

var _ cleancache.Transport = (*Transport)(nil)

// NewTransport wires a batched transport to be.
func NewTransport(be cleancache.Backend, opts Options) *Transport {
	if opts.MaxBatchOps <= 0 {
		opts.MaxBatchOps = DefaultMaxBatchOps
	}
	if opts.MaxBatchPages <= 0 {
		opts.MaxBatchPages = DefaultMaxBatchPages
	}
	if opts.CallCost == 0 {
		opts.CallCost = DefaultCallCost
	}
	if opts.PageCopyCost == 0 {
		opts.PageCopyCost = DefaultPageCopyCost
	}
	if opts.MetricsPrefix == "" {
		opts.MetricsPrefix = "hypercall"
	}
	if opts.RetryBase <= 0 {
		opts.RetryBase = DefaultRetryBase
	}
	if opts.RetryCap <= 0 {
		opts.RetryCap = DefaultRetryCap
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = DefaultMaxAttempts
	}
	return &Transport{
		be:          be,
		reg:         opts.Metrics,
		prefix:      opts.MetricsPrefix,
		ch:          NewChannelWithCosts(opts.CallCost, opts.PageCopyCost).WithFaults(opts.Faults),
		ring:        NewRing(opts.MaxBatchOps, opts.MaxBatchPages),
		unbatched:   opts.Unbatched,
		retryBase:   opts.RetryBase,
		retryCap:    opts.RetryCap,
		maxAttempts: opts.MaxAttempts,
	}
}

// Channel exposes the underlying cost/traffic model.
func (t *Transport) Channel() *Channel { return t.ch }

// Stats snapshots the transport's traffic counters.
func (t *Transport) Stats() TransportStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return TransportStats{
		Calls:          t.ch.Calls(),
		PagesCopied:    t.ch.PagesCopied(),
		Batches:        t.batches,
		BatchedOps:     t.batchedOps,
		SyncOps:        t.syncOps,
		Pending:        int64(t.ring.Len()),
		Retries:        t.retries,
		Backoff:        t.backoff,
		Drops:          t.ch.Drops(),
		Corrupts:       t.ch.Corrupts(),
		DroppedBatches: t.droppedBatches,
		RequeuedOps:    t.requeuedOps,
		SyncFailures:   t.syncFailures,
	}
}

// Submit implements cleancache.Transport. Batchable ops are buffered and
// acknowledged optimistically (Ok=true — the guest drops the page either
// way, matching the paper's fire-and-forget put semantics); the reported
// latency is whatever drain this submission triggered. Synchronous ops
// drain the ring, pay their own crossing, dispatch, and return the
// backend's answer with transport cost folded into Latency.
func (t *Transport) Submit(now time.Duration, req cleancache.Request) cleancache.Response {
	t.mu.Lock()
	defer t.mu.Unlock()

	if !t.unbatched && req.Op.Batchable() {
		var lat time.Duration
		if !t.ring.Fits(req.Op.Pages()) {
			lat = t.drainLocked(now)
		}
		t.ring.Push(req)
		t.batchedOps++
		if t.ring.Full() {
			lat += t.drainLocked(now + lat)
		}
		return cleancache.Response{Op: req.Op, Ok: true, Latency: lat}
	}

	// Synchronous path: barrier-drain buffered ops first so the backend
	// sees FIFO order, then pay this op's own crossing. The wire encoding
	// exists only for the fault model to checksum or corrupt, so the
	// healthy path skips it.
	lat := t.drainLocked(now)
	var payload []byte
	if t.ch.Faulty() {
		t.scratch = EncodeRequest(t.scratch[:0], req)
		payload = t.scratch
	}
	clat, ok := t.crossLocked(now+lat, req.Op.Pages(), payload, SiteCall)
	lat += clat
	t.syncOps++
	if !ok {
		// The call never reached the hypervisor. Reporting Ok=false is
		// cleancache-safe: a failed get is a miss (the guest re-reads from
		// its virtual disk), a failed control op surfaces to its caller.
		t.syncFailures++
		if t.reg != nil {
			t.reg.Counter(t.prefix + ".sync_failures").Inc()
		}
		t.observe(req.Op, lat)
		return cleancache.Response{Op: req.Op, Ok: false, Latency: lat}
	}
	resp := t.be.Dispatch(now+lat, req)
	resp.Latency += lat
	t.observe(req.Op, resp.Latency)
	return resp
}

// crossLocked delivers payload across the boundary, re-sending dropped or
// checksum-rejected crossings with capped exponential backoff. Replay is
// idempotent because batches are FIFO and all-or-nothing: the receiver
// either decoded the whole payload or saw none of it, so re-sending the
// same frames cannot double-apply an op. Returns the total latency
// (crossings plus backoff) and whether the payload was delivered within
// the attempt budget. Requires t.mu.
//
// ddlint:requires-lock mu
func (t *Transport) crossLocked(now time.Duration, pages int, payload []byte, site string) (time.Duration, bool) {
	var lat time.Duration
	backoff := t.retryBase
	for attempt := 1; ; attempt++ {
		dlat, err := t.ch.Deliver(now+lat, pages, payload, site)
		lat += dlat
		if err == nil {
			return lat, true
		}
		if attempt >= t.maxAttempts {
			return lat, false
		}
		t.retries++
		t.backoff += backoff
		if t.reg != nil {
			t.reg.Counter(t.prefix + ".retries").Inc()
		}
		lat += backoff
		backoff *= 2
		if backoff > t.retryCap {
			backoff = t.retryCap
		}
	}
}

// requeueLocked empties an abandoned batch, dropping its puts (the pages
// are simply not cached — free under the cleancache contract) and
// re-queuing its flushes for the next crossing: a lost flush would leave
// the hypervisor holding an object the guest invalidated, so flushes must
// eventually be delivered. Requires t.mu.
//
// ddlint:requires-lock mu
func (t *Transport) requeueLocked() {
	var keep []cleancache.Request
	t.ring.Drain(func(req cleancache.Request) {
		if req.Op != cleancache.OpPut {
			keep = append(keep, req)
		}
	})
	for _, req := range keep {
		if !t.ring.Fits(req.Op.Pages()) {
			break // cannot happen: flushes carry no pages and count ≤ maxOps
		}
		t.ring.Push(req)
		t.requeuedOps++
	}
}

// Flush implements cleancache.Transport: the guest's periodic transport
// tick (and shutdown) drains buffered ops.
func (t *Transport) Flush(now time.Duration) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.drainLocked(now)
}

// drainLocked delivers the buffered batch in one checksummed crossing:
// one world switch for the whole batch plus the page copies (re-sent with
// backoff if the crossing is dropped or corrupted in flight), then each
// op dispatched in FIFO order at its pipelined delivery time. Returns the
// total latency charged to the draining caller. Requires t.mu.
func (t *Transport) drainLocked(now time.Duration) time.Duration {
	ops := t.ring.Len()
	if ops == 0 {
		return 0
	}
	pages := t.ring.Pages()
	lat, ok := t.crossLocked(now, pages, t.ring.Bytes(), SiteBatch)
	if !ok {
		// Attempt budget exhausted: abandon the batch, salvaging what the
		// contract requires (see requeueLocked).
		t.droppedBatches++
		if t.reg != nil {
			t.reg.Counter(t.prefix + ".dropped_batches").Inc()
		}
		t.requeueLocked()
		return lat
	}
	t.batches++
	perOp := lat / time.Duration(ops) // amortized transport share
	if t.reg != nil {
		t.reg.Counter(t.prefix + ".batches").Inc()
		t.reg.Counter(t.prefix + ".batched_ops").Add(int64(ops))
		t.reg.Counter(t.prefix + ".batch_pages").Add(int64(pages))
		t.reg.Series(t.prefix+".batch_ops").Record(now, float64(ops))
	}
	acc := lat
	t.ring.Drain(func(req cleancache.Request) {
		resp := t.be.Dispatch(now+acc, req)
		acc += resp.Latency
		t.observe(req.Op, resp.Latency+perOp)
	})
	return acc
}

// observe records one op's charged latency in its per-op-code histogram.
func (t *Transport) observe(op cleancache.OpCode, d time.Duration) {
	if t.reg == nil {
		return
	}
	t.reg.Histogram(t.prefix + ".lat." + op.String()).Observe(d)
}
