package hypercall

import (
	"sync"
	"time"

	"doubledecker/internal/cleancache"
	"doubledecker/internal/fault"
	"doubledecker/internal/metrics"
)

// Batch bounds: up to 512 ops per crossing, and up to 512 pages — 2 MiB
// of 4 KiB page payload, mirroring the paper's 2 MiB eviction
// granularity.
const (
	DefaultMaxBatchOps   = 512
	DefaultMaxBatchPages = 512
)

// Retry defaults: exponential backoff from 10 µs capped at 1 ms, with at
// most 8 delivery attempts per crossing before the payload is abandoned.
const (
	DefaultRetryBase   = 10 * time.Microsecond
	DefaultRetryCap    = time.Millisecond
	DefaultMaxAttempts = 8
)

// DefaultStagingPages bounds the per-VM staging buffer: 256 pages (1 MiB)
// of readahead-filled blocks awaiting consumption.
//
// DefaultMaxRequeues bounds how many crossings a flush salvaged from an
// abandoned batch may ride before the transport gives up on it: under a
// persistent fault every drain would otherwise re-queue the same flushes
// forever, livelocking the flush tick.
const (
	DefaultStagingPages = 256
	DefaultMaxRequeues  = 4
)

// Options parameterizes a Transport.
type Options struct {
	// MaxBatchOps bounds the number of operations per crossing
	// (default 512).
	MaxBatchOps int
	// MaxBatchPages bounds the page payload per crossing (default 512
	// pages = 2 MiB).
	MaxBatchPages int
	// CallCost and PageCopyCost override the VMCALL cost model; zero
	// selects the defaults.
	CallCost     time.Duration
	PageCopyCost time.Duration
	// PageMapCost overrides the zero-copy page-map cost; zero selects
	// DefaultPageMapCost.
	PageMapCost time.Duration
	// Unbatched disables coalescing: every op pays its own world switch,
	// the pre-batching behaviour. The baseline for the transport
	// experiment.
	Unbatched bool
	// AsyncGets enables tagged get pipelining: gets ride the batch ring as
	// tagged frames instead of paying a private synchronous crossing, and
	// their completions are demultiplexed by tag when the batch drains.
	// Multiple gets per VM may then be outstanding at once (SubmitAsync /
	// Await); Submit still blocks, but shares the batch crossing. Ignored
	// in Unbatched mode.
	AsyncGets bool
	// ZeroCopy hands bulk response pages back as shared-page references
	// (MapPages) instead of copies: tagged gets reserve no page budget in
	// the batch and readahead fills map their blocks into the staging
	// buffer at PageMapCost per page.
	ZeroCopy bool
	// StagingPages bounds the staging buffer (default 256 pages).
	StagingPages int
	// Metrics receives per-op-code latency histograms and batch
	// telemetry; nil disables recording.
	Metrics *metrics.Registry
	// MetricsPrefix namespaces the recorded metrics (default
	// "hypercall").
	MetricsPrefix string
	// Faults injects transport faults (drop, corrupt, latency) at sites
	// SiteBatch and SiteCall; nil disables injection.
	Faults *fault.Injector
	// RetryBase is the initial backoff after a dropped or corrupted
	// crossing (default 10 µs).
	RetryBase time.Duration
	// RetryCap bounds the exponential backoff (default 1 ms).
	RetryCap time.Duration
	// MaxAttempts bounds delivery attempts per crossing (default 8);
	// after that the payload is abandoned.
	MaxAttempts int
	// MaxRequeues bounds how many abandoned crossings a flush survives
	// before it too is dropped and counted as FlushAbandoned (default 4).
	MaxRequeues int
	// OpBudget is the per-operation latency budget for the data path
	// (gets and readahead): a get whose cumulative virtual latency —
	// drains, retries, backoff, stalls — would exceed the budget resolves
	// as a miss with its charged wait clamped to the budget, and the
	// guest falls back to disk. Zero disables deadline enforcement.
	// Control ops and flushes are exempt: they carry correctness, not
	// data, and must run to completion.
	OpBudget time.Duration
	// MaxInflightGets caps the number of outstanding async get waiters;
	// submissions over the cap are shed as immediate misses (counted as
	// ShedGets, never errors). Zero means unlimited.
	MaxInflightGets int
	// MaxQueuedOps caps the ring's buffered-op depth for droppable
	// batchable ops (puts, readaheads): submissions over the cap are shed
	// (counted as ShedOps). Flushes are never shed — a lost flush breaks
	// the cleancache contract — so the cap bounds best-effort traffic
	// while invalidations always get through. Zero means unlimited.
	MaxQueuedOps int
}

// TransportStats is a snapshot of one transport's traffic.
type TransportStats struct {
	// Calls is the number of world switches (batched crossings + sync
	// ops).
	Calls int64
	// PagesCopied is the number of pages moved across the boundary.
	PagesCopied int64
	// PagesMapped is the number of pages handed over as zero-copy
	// shared-page references.
	PagesMapped int64
	// Batches is the number of multi-op crossings.
	Batches int64
	// BatchedOps is the number of operations delivered via batches.
	BatchedOps int64
	// SyncOps is the number of operations delivered synchronously (gets,
	// control ops, and everything in Unbatched mode).
	SyncOps int64
	// AsyncGets is the number of gets delivered as tagged batch frames.
	AsyncGets int64
	// StagedHits is the number of gets served from the staging buffer
	// without paying a crossing.
	StagedHits int64
	// StagedFills is the number of blocks readahead placed in the staging
	// buffer; StagedEvictions counts the ones pushed out unconsumed.
	StagedFills     int64
	StagedEvictions int64
	// StagedPages is the number of blocks currently staged.
	StagedPages int64
	// Pending is the number of operations currently buffered.
	Pending int64
	// Retries is the number of crossings re-sent after a drop or a
	// checksum rejection.
	Retries int64
	// Backoff is the total virtual time spent backing off before retries.
	Backoff time.Duration
	// Drops and Corrupts count the in-flight faults the channel observed.
	Drops    int64
	Corrupts int64
	// DroppedBatches is the number of batches abandoned after MaxAttempts
	// delivery attempts.
	DroppedBatches int64
	// RequeuedOps is the number of flush ops from abandoned batches
	// re-queued for the next crossing.
	RequeuedOps int64
	// FlushAbandoned is the number of flushes dropped after MaxRequeues
	// abandoned crossings.
	FlushAbandoned int64
	// SyncFailures is the number of synchronous ops whose crossing was
	// abandoned (reported Ok=false to the guest).
	SyncFailures int64
	// DeadlineMisses is the number of data-path ops that resolved as
	// misses because their latency budget expired (WatchdogFails of them
	// were failed by the watchdog sweep rather than at resolution).
	DeadlineMisses int64
	WatchdogFails  int64
	// ShedGets and ShedOps count admission-control rejections: gets shed
	// at the inflight cap and puts/readaheads shed at the queue cap, all
	// reported to the guest as immediate misses, never errors.
	ShedGets int64
	ShedOps  int64
	// CompletionDrops is the number of completion-frame batches lost to
	// an injected fault on the 0xF9 path; their waiters resolve as misses
	// via the watchdog or the await fallback.
	CompletionDrops int64
	// Waiters is the number of async get handles currently outstanding
	// (in the waiter table); it must drain to zero at quiesce.
	Waiters int64
	// MaxGetLatency is the largest latency charged to any single get —
	// the liveness bound the deadline budget enforces.
	MaxGetLatency time.Duration
}

// transportMetrics holds the metric handles the transport touches on hot
// paths, resolved once at construction. A registry lookup concatenates a
// name and takes the registry lock; doing that per retry or per drained
// op inside t.mu serializes unrelated VMs on the registry. Nil when no
// registry is configured.
type transportMetrics struct {
	batches        *metrics.Counter
	batchedOps     *metrics.Counter
	batchPages     *metrics.Counter
	batchOps       *metrics.Series
	droppedBatches *metrics.Counter
	retries        *metrics.Counter
	syncFailures   *metrics.Counter
	flushAbandoned *metrics.Counter
	asyncGets      *metrics.Counter
	stagedHits     *metrics.Counter
	stagedFills    *metrics.Counter
	deadlineMisses *metrics.Counter
	shedGets       *metrics.Counter
	shedOps        *metrics.Counter
	lat            []*metrics.Histogram // indexed by OpCode
}

func newTransportMetrics(reg *metrics.Registry, prefix string) *transportMetrics {
	if reg == nil {
		return nil
	}
	m := &transportMetrics{
		batches:        reg.Counter(prefix + ".batches"),
		batchedOps:     reg.Counter(prefix + ".batched_ops"),
		batchPages:     reg.Counter(prefix + ".batch_pages"),
		batchOps:       reg.Series(prefix + ".batch_ops"),
		droppedBatches: reg.Counter(prefix + ".dropped_batches"),
		retries:        reg.Counter(prefix + ".retries"),
		syncFailures:   reg.Counter(prefix + ".sync_failures"),
		flushAbandoned: reg.Counter(prefix + ".flush_abandoned"),
		asyncGets:      reg.Counter(prefix + ".async_gets"),
		stagedHits:     reg.Counter(prefix + ".staged_hits"),
		stagedFills:    reg.Counter(prefix + ".staged_fills"),
		deadlineMisses: reg.Counter(prefix + ".deadline_misses"),
		shedGets:       reg.Counter(prefix + ".shed_gets"),
		shedOps:        reg.Counter(prefix + ".shed_ops"),
	}
	ops := cleancache.OpCodes()
	m.lat = make([]*metrics.Histogram, int(ops[len(ops)-1])+1)
	for _, op := range ops {
		m.lat[int(op)] = reg.Histogram(prefix + ".lat." + op.String())
	}
	return m
}

// PendingGet is the handle to one in-flight asynchronous get: created by
// SubmitAsync, completed when the crossing carrying its tagged frame
// drains (or is abandoned), redeemed with Await. The type lives in
// cleancache (it is part of the AsyncTransport capability contract);
// this alias keeps the historical hypercall name working. All handle
// state is guarded by the owning transport's mu.
type PendingGet = cleancache.PendingGet

// Transport is the batched, pipelined hypercall path from one VM to the
// hypervisor cache manager. It implements cleancache.Transport.
//
// Batchable operations (put, flush, readahead) are encoded onto a bounded
// Ring and delivered together in one crossing — one world switch for the
// whole batch plus per-page copy costs — when the ring fills or when the
// guest's flush tick calls Flush. Synchronous operations (get and the
// control ops) first drain the ring, preserving per-VM FIFO order, so
// the backend observes exactly the unbatched operation sequence: a get
// following a buffered put of the same key sees the put.
//
// With AsyncGets enabled, gets instead ride the ring as tagged frames:
// the frame keeps its FIFO position (so ordering against buffered puts
// and flushes is unchanged), but its completion — (tag, ok, ready-at) —
// is demultiplexed back to a per-op waiter, letting one VM keep several
// gets in flight and letting completions land out of submission order in
// virtual time.
//
// Readahead responses fill a bounded staging buffer modelling the per-VM
// shared staging region: subsequent gets for staged blocks are answered
// from the buffer without any crossing at all. Staged entries are
// invalidated by the ops that could stale them (put, flush, migrate,
// destroy), both at Submit and again at each op's FIFO position during a
// drain — an op buffered behind a readahead must kill the blocks that
// readahead stages ahead of it. Dropping a staged page is always safe
// under the cleancache contract.
//
// Transport is safe for concurrent use by a VM's vCPU threads.
type Transport struct {
	be cleancache.Backend
	m  *transportMetrics

	// mu guards the ring and the traffic counters below. ch is set once at
	// construction and read without the lock (Channel()); the Channel is
	// internally consistent on its own.
	mu   sync.Mutex
	ch   *Channel
	ring *Ring // ddlint:guarded-by mu
	// scratch is the reusable encode buffer for synchronous crossings.
	scratch []byte // ddlint:guarded-by mu

	unbatched   bool
	asyncGets   bool
	zeroCopy    bool
	stagingCap  int
	retryBase   time.Duration
	retryCap    time.Duration
	maxAttempts int
	maxRequeues int
	opBudget    time.Duration
	maxInflight int
	maxQueued   int

	// Async get demultiplexing: the next frame tag (tag 0 is reserved for
	// untagged handles), the waiters keyed by tag, the key each waiter
	// covers (so a watchdog-failed get can invalidate staged readahead
	// over the same block), and the wire-encoded completions of the drain
	// in progress. cancelled tombstones the tags of watchdog-failed
	// waiters whose frames are still in the ring: the next drain releases
	// each slot without dispatching — dispatching would extract the block
	// under the exclusive protocol with nobody left to consume it.
	nextTag     uint64                    // ddlint:guarded-by mu
	waiters     map[uint64]*PendingGet    // ddlint:guarded-by mu
	waiterKeys  map[uint64]cleancache.Key // ddlint:guarded-by mu
	cancelled   map[uint64]struct{}       // ddlint:guarded-by mu
	completions []byte                    // ddlint:guarded-by mu

	// Staging buffer: readahead-filled blocks and the virtual time their
	// fill completes. stagedOrder is the FIFO eviction queue (lazily
	// pruned: consumed or invalidated keys go stale in place).
	staged      map[cleancache.Key]time.Duration // ddlint:guarded-by mu
	stagedOrder []cleancache.Key                 // ddlint:guarded-by mu

	// requeueGens[i] is the abandoned-crossing count of the i-th buffered
	// op: requeued flushes re-enter at the front of the emptied ring, so
	// positions align, and ops beyond len(requeueGens) are fresh.
	requeueGens []int // ddlint:guarded-by mu

	batches         int64         // ddlint:guarded-by mu
	batchedOps      int64         // ddlint:guarded-by mu
	syncOps         int64         // ddlint:guarded-by mu
	asyncGetOps     int64         // ddlint:guarded-by mu
	stagedHits      int64         // ddlint:guarded-by mu
	stagedFills     int64         // ddlint:guarded-by mu
	stagedEvictions int64         // ddlint:guarded-by mu
	retries         int64         // ddlint:guarded-by mu
	backoff         time.Duration // ddlint:guarded-by mu
	droppedBatches  int64         // ddlint:guarded-by mu
	requeuedOps     int64         // ddlint:guarded-by mu
	flushAbandoned  int64         // ddlint:guarded-by mu
	syncFailures    int64         // ddlint:guarded-by mu
	deadlineMisses  int64         // ddlint:guarded-by mu
	watchdogFails   int64         // ddlint:guarded-by mu
	shedGets        int64         // ddlint:guarded-by mu
	shedOps         int64         // ddlint:guarded-by mu
	completionDrops int64         // ddlint:guarded-by mu
	maxGetLat       time.Duration // ddlint:guarded-by mu
}

var (
	_ cleancache.Transport         = (*Transport)(nil)
	_ cleancache.AsyncTransport    = (*Transport)(nil)
	_ cleancache.DeadlineTransport = (*Transport)(nil)
)

// NewTransport wires a batched transport to be.
func NewTransport(be cleancache.Backend, opts Options) *Transport {
	if opts.MaxBatchOps <= 0 {
		opts.MaxBatchOps = DefaultMaxBatchOps
	}
	if opts.MaxBatchPages <= 0 {
		opts.MaxBatchPages = DefaultMaxBatchPages
	}
	if opts.CallCost == 0 {
		opts.CallCost = DefaultCallCost
	}
	if opts.PageCopyCost == 0 {
		opts.PageCopyCost = DefaultPageCopyCost
	}
	if opts.StagingPages <= 0 {
		opts.StagingPages = DefaultStagingPages
	}
	if opts.MetricsPrefix == "" {
		opts.MetricsPrefix = "hypercall"
	}
	if opts.RetryBase <= 0 {
		opts.RetryBase = DefaultRetryBase
	}
	if opts.RetryCap <= 0 {
		opts.RetryCap = DefaultRetryCap
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = DefaultMaxAttempts
	}
	if opts.MaxRequeues <= 0 {
		opts.MaxRequeues = DefaultMaxRequeues
	}
	return &Transport{
		be:          be,
		m:           newTransportMetrics(opts.Metrics, opts.MetricsPrefix),
		ch:          NewChannelWithCosts(opts.CallCost, opts.PageCopyCost).WithMapCost(opts.PageMapCost).WithFaults(opts.Faults),
		ring:        NewRing(opts.MaxBatchOps, opts.MaxBatchPages),
		unbatched:   opts.Unbatched,
		asyncGets:   opts.AsyncGets && !opts.Unbatched,
		zeroCopy:    opts.ZeroCopy,
		stagingCap:  opts.StagingPages,
		retryBase:   opts.RetryBase,
		retryCap:    opts.RetryCap,
		maxAttempts: opts.MaxAttempts,
		maxRequeues: opts.MaxRequeues,
		opBudget:    opts.OpBudget,
		maxInflight: opts.MaxInflightGets,
		maxQueued:   opts.MaxQueuedOps,
		nextTag:     1, // tag 0 is the "no tag" sentinel on untagged handles
		waiters:     make(map[uint64]*PendingGet),
		waiterKeys:  make(map[uint64]cleancache.Key),
		cancelled:   make(map[uint64]struct{}),
		staged:      make(map[cleancache.Key]time.Duration),
	}
}

// Channel exposes the underlying cost/traffic model.
func (t *Transport) Channel() *Channel { return t.ch }

// Stats snapshots the transport's traffic counters.
func (t *Transport) Stats() TransportStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return TransportStats{
		Calls:           t.ch.Calls(),
		PagesCopied:     t.ch.PagesCopied(),
		PagesMapped:     t.ch.PagesMapped(),
		Batches:         t.batches,
		BatchedOps:      t.batchedOps,
		SyncOps:         t.syncOps,
		AsyncGets:       t.asyncGetOps,
		StagedHits:      t.stagedHits,
		StagedFills:     t.stagedFills,
		StagedEvictions: t.stagedEvictions,
		StagedPages:     int64(len(t.staged)),
		Pending:         int64(t.ring.Len()),
		Retries:         t.retries,
		Backoff:         t.backoff,
		Drops:           t.ch.Drops(),
		Corrupts:        t.ch.Corrupts(),
		DroppedBatches:  t.droppedBatches,
		RequeuedOps:     t.requeuedOps,
		FlushAbandoned:  t.flushAbandoned,
		SyncFailures:    t.syncFailures,
		DeadlineMisses:  t.deadlineMisses,
		WatchdogFails:   t.watchdogFails,
		ShedGets:        t.shedGets,
		ShedOps:         t.shedOps,
		CompletionDrops: t.completionDrops,
		Waiters:         int64(len(t.waiters)),
		MaxGetLatency:   t.maxGetLat,
	}
}

// Submit implements cleancache.Transport. Batchable ops are buffered and
// acknowledged optimistically (Ok=true — the guest drops the page either
// way, matching the paper's fire-and-forget put semantics); the reported
// latency is whatever drain this submission triggered. Synchronous ops
// drain the ring, pay their own crossing, dispatch, and return the
// backend's answer with transport cost folded into Latency. Gets check
// the staging buffer first and, when AsyncGets is on, ride the batch as
// tagged frames instead of paying a private crossing.
func (t *Transport) Submit(now time.Duration, req cleancache.Request) cleancache.Response {
	t.mu.Lock()
	defer t.mu.Unlock()

	t.invalidateStagedLocked(req)

	if !t.unbatched && req.Op.Batchable() {
		if t.maxQueued > 0 && t.ring.Len() >= t.maxQueued {
			// Admission control: over the queue cap, best-effort ops are
			// shed instead of buffered — the page is simply not cached (or
			// not prefetched), free under the cleancache contract. Flushes
			// fall through: dropping an invalidation would leave the
			// hypervisor holding an object the guest dirtied.
			switch req.Op {
			case cleancache.OpPut, cleancache.OpReadAhead:
				t.shedOps++
				if t.m != nil {
					t.m.shedOps.Inc()
				}
				return cleancache.Response{Op: req.Op, Ok: false}
			default: // ddlint:nonexhaustive — only flushes remain batchable
			}
		}
		var lat time.Duration
		if !t.ring.Fits(req.Op.Pages()) {
			lat = t.drainLocked(now)
		}
		t.ring.Push(req)
		t.batchedOps++
		if t.ring.Full() {
			lat += t.drainLocked(now + lat)
		}
		return cleancache.Response{Op: req.Op, Ok: true, Latency: lat}
	}

	if req.Op == cleancache.OpGet && t.asyncGets {
		pg, lat := t.enqueueGetLocked(now, req)
		if !pg.Done() {
			lat += t.drainLocked(now + lat)
		}
		return t.resolveLocked(now, lat, pg)
	}

	if req.Op == cleancache.OpGet {
		// A staged block is guest-visible memory: consuming it needs no
		// crossing and no drain. Nothing buffered can stale it — the ops
		// that could (put, flush) invalidated it at their own Submit.
		if wait, hit := t.consumeStagedLocked(now, req.Key); hit {
			t.observe(req.Op, wait)
			return cleancache.Response{Op: req.Op, Ok: true, Latency: wait}
		}
	}

	// Synchronous path: barrier-drain buffered ops first so the backend
	// sees FIFO order, then pay this op's own crossing. The dispatch
	// timestamp `at` is threaded explicitly — every drain, delivery and
	// backoff advances it — so the backend is invoked at exactly the
	// virtual time the request arrives and the guest-visible latency is
	// always at-now plus the backend's own latency. The wire encoding
	// exists only for the fault model to checksum or corrupt, so the
	// healthy path skips it.
	at := now
	at += t.drainLocked(at)
	// The drain may have dispatched a buffered readahead whose fills this
	// op invalidates (migrate, destroy): the submit-time invalidation
	// above ran before those blocks were staged, so repeat it now that
	// this op is about to apply behind them in FIFO order.
	t.invalidateStagedLocked(req)
	if req.Op == cleancache.OpGet {
		// The drain may have dispatched a buffered readahead that staged
		// this very block: re-check before paying a crossing.
		if wait, hit := t.consumeStagedLocked(at, req.Key); hit {
			lat := at + wait - now
			if t.opBudget > 0 && lat > t.opBudget {
				// The barrier drain alone blew the budget: the guest
				// stopped waiting, so the staged block is dropped (fail-
				// to-miss) and the charge is clamped.
				t.deadlineMisses++
				if t.m != nil {
					t.m.deadlineMisses.Inc()
				}
				t.observe(req.Op, t.opBudget)
				return cleancache.Response{Op: req.Op, Ok: false, Latency: t.opBudget}
			}
			t.observe(req.Op, lat)
			return cleancache.Response{Op: req.Op, Ok: true, Latency: lat}
		}
	}
	var payload []byte
	if t.ch.Faulty() {
		t.scratch = EncodeRequest(t.scratch[:0], req)
		payload = t.scratch
	}
	// Data-path ops carry a latency budget: the retry loop gives up once
	// the deadline passes, and an over-budget get resolves as a miss with
	// its charge clamped. Control ops and flushes are exempt — they carry
	// correctness and must run to completion whatever the cost.
	var deadline time.Duration
	if t.opBudget > 0 && (req.Op == cleancache.OpGet || req.Op == cleancache.OpReadAhead) {
		deadline = now + t.opBudget
	}
	clat, ok := t.crossLocked(at, req.Op.Pages(), payload, SiteCall, deadline)
	at += clat
	t.syncOps++
	if !ok {
		// The call never reached the hypervisor. Reporting Ok=false is
		// cleancache-safe: a failed get is a miss (the guest re-reads from
		// its virtual disk), a failed control op surfaces to its caller.
		t.syncFailures++
		if t.m != nil {
			t.m.syncFailures.Inc()
		}
		lat := at - now
		if deadline > 0 && req.Op == cleancache.OpGet && lat > t.opBudget {
			lat = t.opBudget // the guest stopped waiting at the deadline
		}
		t.observe(req.Op, lat)
		return cleancache.Response{Op: req.Op, Ok: false, Latency: lat}
	}
	resp := t.be.Dispatch(at, req)
	if req.Op == cleancache.OpReadAhead {
		// Unbatched transports deliver READ_AHEAD synchronously; the
		// backend has already extracted the blocks under the exclusive
		// protocol, so the response must fill the staging buffer —
		// discarding it would silently evict up to Count cached blocks
		// and turn the following gets into guaranteed misses.
		t.stageLocked(at, req, resp)
	}
	resp.Latency += at - now
	if req.Op == cleancache.OpGet && deadline > 0 && now+resp.Latency > deadline {
		// The answer landed past the budget: the guest already fell back
		// to disk, so the verdict is a miss (the extracted block is
		// dropped — fail-to-miss, never data loss) and the charge is the
		// budget, not the stalled crossing.
		t.deadlineMisses++
		if t.m != nil {
			t.m.deadlineMisses.Inc()
		}
		resp.Ok = false
		resp.Latency = t.opBudget
	}
	t.observe(req.Op, resp.Latency)
	return resp
}

// SubmitAsync implements cleancache.AsyncTransport: it issues a get
// without waiting for its completion. The request is pushed as a tagged
// frame (draining the ring only if the frame does not fit) and a handle
// is returned for Await. The returned latency is the submission cost
// charged to the caller now — any drain this push triggered — not the
// get's completion time. Ops other than get, and transports without
// AsyncGets, fall back to the synchronous Submit and return an
// already-completed handle.
func (t *Transport) SubmitAsync(now time.Duration, req cleancache.Request) (*PendingGet, time.Duration) {
	if req.Op != cleancache.OpGet || !t.asyncGets {
		resp := t.Submit(now, req)
		return cleancache.CompletedPendingGet(resp, now+resp.Latency), resp.Latency
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.enqueueGetLocked(now, req)
}

// Await implements cleancache.AsyncTransport: it blocks (in virtual
// time) until pg completes, forcing a ring drain if the completion is
// still in flight. The returned Latency is the wait remaining from now;
// a get whose completion already landed in the past costs nothing more.
func (t *Transport) Await(now time.Duration, pg *PendingGet) cleancache.Response {
	t.mu.Lock()
	defer t.mu.Unlock()
	var lat time.Duration
	if !pg.Done() {
		lat = t.drainLocked(now)
	}
	return t.resolveLocked(now, lat, pg)
}

// enqueueGetLocked pushes req as a tagged frame, serving it from the
// staging buffer instead when the block is staged (no crossing at all).
// Returns the pending handle and the submission latency charged now.
//
// ddlint:requires-lock mu
func (t *Transport) enqueueGetLocked(now time.Duration, req cleancache.Request) (*PendingGet, time.Duration) {
	if wait, hit := t.consumeStagedLocked(now, req.Key); hit {
		return t.armDeadline(now, cleancache.ReadyPendingGet(true, now+wait)), 0
	}
	if t.maxInflight > 0 && len(t.waiters) >= t.maxInflight {
		// Admission control: over the inflight cap the get is shed as an
		// immediate miss — the guest reads from disk — instead of growing
		// the waiter table without bound while the transport is stalled.
		t.shedGets++
		if t.m != nil {
			t.m.shedGets.Inc()
		}
		return cleancache.ReadyPendingGet(false, now), 0
	}
	pages := req.Op.Pages()
	if t.zeroCopy {
		pages = 0 // the answer page is mapped, not copied through the batch
	}
	var lat time.Duration
	if !t.ring.Fits(pages) {
		lat = t.drainLocked(now)
		// That drain may have dispatched a readahead staging this block.
		// The drain's own latency counts against the budget too — the
		// armed deadline turns an over-budget resolution into a clamped
		// miss.
		if wait, hit := t.consumeStagedLocked(now+lat, req.Key); hit {
			return t.armDeadline(now, cleancache.ReadyPendingGet(true, now+lat+wait)), lat
		}
	}
	tag := t.nextTag
	t.nextTag++
	pg := cleancache.NewPendingGet(tag)
	if t.opBudget > 0 {
		pg.SetDeadline(now + t.opBudget)
	}
	t.waiters[tag] = pg
	t.waiterKeys[tag] = req.Key
	t.ring.PushTagged(tag, req, pages)
	t.asyncGetOps++
	if t.m != nil {
		t.m.asyncGets.Inc()
	}
	if t.ring.Full() {
		lat += t.drainLocked(now + lat)
	}
	return pg, lat
}

// armDeadline arms a handle's latency budget relative to its submission
// time (a no-op without a configured budget), so Resolve clamps an
// over-budget resolution to a miss even for handles that never entered
// the waiter table.
func (t *Transport) armDeadline(now time.Duration, pg *PendingGet) *PendingGet {
	if t.opBudget > 0 {
		pg.SetDeadline(now + t.opBudget)
	}
	return pg
}

// resolveLocked turns a completed handle into the guest-visible
// response via PendingGet.Resolve. submitLat is the latency already
// accumulated by the caller this submission (drains it triggered); the
// reported latency is the later of that and the completion's ready-at.
// Failure of the crossing (abandoned batch) is reported as Ok=false — a
// miss, never data loss — and counted as a sync failure. Idempotent: a
// second resolution returns the recorded response with only the wait
// remaining from now, and accounting happens only on the first.
//
// ddlint:requires-lock mu
func (t *Transport) resolveLocked(now, submitLat time.Duration, pg *PendingGet) cleancache.Response {
	preExpired := pg.DeadlineExceeded() // watchdog fails were counted at the sweep
	resp, first := pg.Resolve(now, submitLat)
	if !first {
		return resp
	}
	if tag := pg.Tag(); tag != 0 {
		// A waiter can resolve without a delivered completion — its 0xF9
		// frames were lost in flight, or the transport is being torn down
		// — and must still release its table entries, or the waiter table
		// leaks an entry per lost completion.
		delete(t.waiters, tag)
		delete(t.waiterKeys, tag)
	}
	if pg.DeadlineExceeded() {
		if !preExpired {
			t.deadlineMisses++
			if t.m != nil {
				t.m.deadlineMisses.Inc()
			}
		}
	} else if pg.Failed() {
		t.syncFailures++
		if t.m != nil {
			t.m.syncFailures.Inc()
		}
	}
	t.observe(cleancache.OpGet, resp.Latency)
	return resp
}

// consumeStagedLocked serves key from the staging buffer if present:
// the entry is consumed (gets are exclusive) and the returned wait is
// the time until its fill completes — zero for a block staged in the
// past. The fill already paid the page movement, so consumption is free.
// Under a latency budget, a fill that will not be ready within the
// budget is left staged (it may serve a later get once ready) and the
// lookup misses now — the guest is not made to wait past its deadline
// for a stalled prefetch.
//
// ddlint:requires-lock mu
func (t *Transport) consumeStagedLocked(now time.Duration, key cleancache.Key) (time.Duration, bool) {
	if t.opBudget > 0 {
		if readyAt, ok := t.staged[key]; ok && readyAt-now > t.opBudget {
			t.deadlineMisses++
			if t.m != nil {
				t.m.deadlineMisses.Inc()
			}
			return 0, false
		}
	}
	readyAt, ok := t.stagedHitLocked(key)
	if !ok {
		return 0, false
	}
	if readyAt <= now {
		return 0, true
	}
	return readyAt - now, true
}

// stageLocked records a readahead response: the extracted blocks become
// staged entries whose fill completes after the backend latency plus the
// page handover — mapped references under ZeroCopy, copies otherwise.
// The buffer is bounded; the oldest unconsumed entries are evicted,
// which is always safe (an evicted block is simply re-fetched).
//
// ddlint:requires-lock mu
func (t *Transport) stageLocked(at time.Duration, req cleancache.Request, resp cleancache.Response) {
	if resp.Count <= 0 {
		return
	}
	n := int(resp.Count)
	ready := at + resp.Latency
	if t.zeroCopy {
		ready += t.ch.MapPages(n)
	} else {
		ready += t.ch.CopyPages(n)
	}
	for i := int64(0); i < resp.Count; i++ {
		key := cleancache.Key{Pool: req.Key.Pool, Inode: req.Key.Inode, Block: req.Key.Block + i}
		if _, dup := t.staged[key]; dup {
			t.staged[key] = ready
			continue
		}
		for len(t.staged) >= t.stagingCap {
			t.evictStagedLocked()
		}
		t.staged[key] = ready
		t.stagedOrder = append(t.stagedOrder, key)
		t.stagedFills++
		if t.m != nil {
			t.m.stagedFills.Inc()
		}
	}
}

// evictStagedLocked removes the oldest live staged entry, skipping keys
// already consumed or invalidated (their order slots went stale).
//
// ddlint:requires-lock mu
func (t *Transport) evictStagedLocked() {
	for len(t.stagedOrder) > 0 {
		key := t.stagedOrder[0]
		t.stagedOrder = t.stagedOrder[1:]
		if _, live := t.staged[key]; live {
			delete(t.staged, key)
			t.stagedEvictions++
			return
		}
	}
}

// invalidateStagedLocked drops staged blocks the submitted op could
// stale: the guest is about to overwrite or invalidate them, and serving
// a stale staged page would violate the cleancache contract. Dropping is
// always safe — a dropped staged block is re-fetched on demand.
//
// ddlint:requires-lock mu
func (t *Transport) invalidateStagedLocked(req cleancache.Request) {
	if len(t.staged) == 0 {
		return
	}
	switch req.Op {
	case cleancache.OpPut, cleancache.OpFlushPage:
		delete(t.staged, req.Key)
	case cleancache.OpFlushInode, cleancache.OpMigrateObject:
		for key := range t.staged {
			if key.Pool == req.Key.Pool && key.Inode == req.Key.Inode {
				delete(t.staged, key)
			}
		}
	case cleancache.OpDestroyCgroup:
		for key := range t.staged {
			if key.Pool == req.Key.Pool {
				delete(t.staged, key)
			}
		}
	default: // ddlint:nonexhaustive — gets and the remaining control ops cannot stale staged blocks
	}
}

// crossLocked delivers payload across the boundary, re-sending dropped or
// checksum-rejected crossings with capped exponential backoff. Replay is
// idempotent because batches are FIFO and all-or-nothing: the receiver
// either decoded the whole payload or saw none of it, so re-sending the
// same frames cannot double-apply an op. The delivery timestamp `at`
// advances through every attempt and backoff, so each retry hits the
// fault plan at the virtual time it actually occurs. A non-zero deadline
// bounds the retry loop in virtual time: once `at` passes it, further
// retries cannot produce an answer anyone is still waiting for, so the
// crossing is abandoned early. Returns the total latency (at-now:
// crossings plus backoff) and whether the payload was delivered within
// the attempt and deadline budgets. Requires t.mu.
//
// ddlint:requires-lock mu
func (t *Transport) crossLocked(now time.Duration, pages int, payload []byte, site string, deadline time.Duration) (time.Duration, bool) {
	at := now
	backoff := t.retryBase
	for attempt := 1; ; attempt++ {
		dlat, err := t.ch.Deliver(at, pages, payload, site)
		at += dlat
		if err == nil {
			return at - now, true
		}
		if attempt >= t.maxAttempts {
			return at - now, false
		}
		if deadline > 0 && at >= deadline {
			return at - now, false
		}
		t.retries++
		t.backoff += backoff
		if t.m != nil {
			t.m.retries.Inc()
		}
		at += backoff
		backoff *= 2
		if backoff > t.retryCap {
			backoff = t.retryCap
		}
	}
}

// requeueLocked empties an abandoned batch at virtual time at, salvaging
// what the contract requires:
//
//   - puts and readaheads are dropped — the pages are simply not cached
//     (or not prefetched), free under the cleancache contract;
//   - tagged gets complete their waiters with Ok=false — a miss, so the
//     guest re-reads from its virtual disk, never data loss;
//   - flushes are re-queued for the next crossing, since a lost flush
//     would leave the hypervisor holding an object the guest invalidated
//     — but only up to MaxRequeues abandoned crossings each, so a
//     persistent transport fault surfaces as FlushAbandoned instead of
//     re-queuing the same flushes forever.
//
// Requires t.mu.
//
// ddlint:requires-lock mu
func (t *Transport) requeueLocked(at time.Duration) {
	gens := t.requeueGens
	t.requeueGens = nil
	var keep []cleancache.Request
	var keepGens []int
	idx := -1
	t.ring.DrainFrames(func(f Frame) {
		idx++
		if f.Tagged {
			if _, gone := t.cancelled[f.Tag]; gone {
				delete(t.cancelled, f.Tag) // watchdog already failed the waiter
				return
			}
			t.failWaiterLocked(f.Tag, at)
			return
		}
		switch f.Req.Op {
		case cleancache.OpPut, cleancache.OpReadAhead:
			return // droppable, fire-and-forget
		default: // ddlint:nonexhaustive — only flushes remain buffered untagged
		}
		gen := 1
		if idx < len(gens) {
			gen = gens[idx] + 1
		}
		if gen > t.maxRequeues {
			t.flushAbandoned++
			if t.m != nil {
				t.m.flushAbandoned.Inc()
			}
			return
		}
		keep = append(keep, f.Req)
		keepGens = append(keepGens, gen)
	})
	for i, req := range keep {
		if !t.ring.Fits(req.Op.Pages()) {
			break // cannot happen: flushes carry no pages and count ≤ maxOps
		}
		t.ring.Push(req)
		t.requeueGens = append(t.requeueGens, keepGens[i])
		t.requeuedOps++
	}
}

// failWaiterLocked completes a tagged get's waiter as a transport
// failure at virtual time at.
//
// ddlint:requires-lock mu
func (t *Transport) failWaiterLocked(tag uint64, at time.Duration) {
	pg := t.waiters[tag]
	if pg == nil {
		return
	}
	delete(t.waiters, tag)
	delete(t.waiterKeys, tag)
	pg.Fail(at)
}

// Flush implements cleancache.Transport: the guest's periodic transport
// tick (and shutdown) drains buffered ops.
func (t *Transport) Flush(now time.Duration) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.drainLocked(now)
}

// Watchdog implements cleancache.DeadlineTransport: it sweeps the waiter
// table for handles whose deadline has passed with the completion still
// in flight, failing each as a deadline miss and releasing its
// transport-side resources — the waiter-table entry now, the ring slot
// at the next drain (via the cancelled-tag tombstone: the frame must not
// dispatch, or the exclusive protocol would extract the block with
// nobody left to consume it), and any staged readahead covering the same
// block (a fill nobody is waiting for anymore). Returns how many waiters
// it failed. A no-op without a configured budget.
func (t *Transport) Watchdog(now time.Duration) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.opBudget <= 0 {
		return 0
	}
	n := 0
	for tag, pg := range t.waiters {
		dl := pg.Deadline()
		if dl <= 0 || now < dl {
			continue
		}
		delete(t.waiters, tag)
		if key, ok := t.waiterKeys[tag]; ok {
			delete(t.waiterKeys, tag)
			delete(t.staged, key)
		}
		t.cancelled[tag] = struct{}{}
		pg.FailDeadline(dl)
		t.watchdogFails++
		t.deadlineMisses++
		if t.m != nil {
			t.m.deadlineMisses.Inc()
		}
		n++
	}
	return n
}

// Close implements cleancache.DeadlineTransport: crash-safe teardown
// with work still in flight. Buffered ops get one final drain (flushes
// must reach the hypervisor; cancelled frames release their slots), any
// waiter still pending afterwards fails as a miss, and the staging
// buffer is dropped — staged blocks were already extracted from the
// pools, so dropping them is the exclusive protocol's normal fail-to-
// miss, never data loss. Counters survive Close; the waiter and staging
// tables are empty afterwards.
func (t *Transport) Close(now time.Duration) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	lat := t.drainLocked(now)
	for tag, pg := range t.waiters {
		delete(t.waiters, tag)
		delete(t.waiterKeys, tag)
		pg.Fail(now + lat)
	}
	for tag := range t.cancelled {
		delete(t.cancelled, tag)
	}
	t.stagedEvictions += int64(len(t.staged))
	for key := range t.staged {
		delete(t.staged, key)
	}
	t.stagedOrder = t.stagedOrder[:0]
	return lat
}

// drainLocked delivers the buffered batch in one checksummed crossing:
// one world switch for the whole batch plus the page copies (re-sent with
// backoff if the crossing is dropped or corrupted in flight), then each
// op dispatched in FIFO order at its pipelined delivery time. Puts and
// flushes accumulate serially — the hypervisor applies them in order on
// the draining vCPU's time. Tagged gets and readaheads dispatch at their
// FIFO position but do not delay the ops behind them: their latency
// lands on their own completion (the waiter's ready-at, the staged
// fill's ready-at) instead of the draining caller, which is what lets
// several gets overlap. Completions are wire-encoded during the walk and
// demultiplexed to waiters afterwards. Returns the total latency charged
// to the draining caller. Requires t.mu.
func (t *Transport) drainLocked(now time.Duration) time.Duration {
	ops := t.ring.Len()
	if ops == 0 {
		return 0
	}
	pages := t.ring.Pages()
	// A configured budget caps the batch crossing's retry loop too: a
	// drain is charged to whichever caller triggered it, and no caller
	// should burn more than one budget's worth of retries on it.
	var dl time.Duration
	if t.opBudget > 0 {
		dl = now + t.opBudget
	}
	lat, ok := t.crossLocked(now, pages, t.ring.Bytes(), SiteBatch, dl)
	if !ok {
		// Attempt budget exhausted: abandon the batch, salvaging what the
		// contract requires (see requeueLocked).
		t.droppedBatches++
		if t.m != nil {
			t.m.droppedBatches.Inc()
		}
		t.requeueLocked(now + lat)
		return lat
	}
	t.batches++
	t.requeueGens = t.requeueGens[:0] // delivered: salvaged flushes made it
	perOp := lat / time.Duration(ops) // amortized transport share
	if t.m != nil {
		t.m.batches.Inc()
		t.m.batchedOps.Add(int64(ops))
		t.m.batchPages.Add(int64(pages))
		t.m.batchOps.Record(now, float64(ops))
	}
	acc := lat
	t.completions = t.completions[:0]
	t.ring.DrainFrames(func(f Frame) {
		if f.Tagged {
			if _, gone := t.cancelled[f.Tag]; gone {
				// The watchdog failed this frame's waiter while the frame
				// sat in the ring: release the slot without dispatching —
				// dispatching would extract the block under the exclusive
				// protocol with nobody left to consume it.
				delete(t.cancelled, f.Tag)
				return
			}
			t.completeGetLocked(now+acc, f)
			return
		}
		if f.Req.Op == cleancache.OpReadAhead {
			resp := t.be.Dispatch(now+acc, f.Req)
			t.stageLocked(now+acc, f.Req, resp)
			t.observe(f.Req.Op, resp.Latency+perOp)
			return
		}
		// An invalidating op (put, flush) kills matching staged blocks at
		// its FIFO position, not only at Submit: a readahead earlier in
		// this same drain may have staged the pre-op content after the
		// submit-time invalidation ran, and serving that block once this
		// op applies would violate the cleancache contract.
		t.invalidateStagedLocked(f.Req)
		resp := t.be.Dispatch(now+acc, f.Req)
		acc += resp.Latency
		t.observe(f.Req.Op, resp.Latency+perOp)
	})
	// The completion frames (0xF9) cross back on their own delivery: the
	// fault plan can stall or lose them independently of the submissions.
	// Lost completions leave their waiters pending — the watchdog sweep
	// or the await fallback fails each as a miss within its budget.
	var cdelay time.Duration
	if len(t.completions) > 0 && t.ch.Faulty() {
		var lost bool
		cdelay, lost = t.ch.CompletionFault(now + acc)
		if lost {
			t.completionDrops++
			t.completions = t.completions[:0]
		}
	}
	t.deliverCompletionsLocked(cdelay)
	return acc
}

// completeGetLocked dispatches one tagged get at virtual time at and
// appends its wire-encoded completion. A block staged by an earlier
// readahead in the same batch is served from the staging buffer — the
// whole point of issuing the readahead ahead of the stream. Requires
// t.mu.
//
// ddlint:requires-lock mu
func (t *Transport) completeGetLocked(at time.Duration, f Frame) {
	if readyAt, hit := t.stagedHitLocked(f.Req.Key); hit {
		if readyAt < at {
			readyAt = at
		}
		t.completions = EncodeCompletion(t.completions, Completion{Tag: f.Tag, Ok: true, At: readyAt})
		return
	}
	resp := t.be.Dispatch(at, f.Req)
	ready := at + resp.Latency
	if t.zeroCopy && resp.Ok {
		ready += t.ch.MapPages(1)
	}
	t.completions = EncodeCompletion(t.completions, Completion{Tag: f.Tag, Ok: resp.Ok, Count: resp.Count, At: ready})
}

// stagedHitLocked consumes key from the staging buffer if present,
// returning its fill-ready time. Split from consumeStagedLocked so the
// drain path can clamp ready-at to the dispatch time itself.
//
// ddlint:requires-lock mu
func (t *Transport) stagedHitLocked(key cleancache.Key) (time.Duration, bool) {
	readyAt, ok := t.staged[key]
	if !ok {
		return 0, false
	}
	delete(t.staged, key)
	t.stagedHits++
	if t.m != nil {
		t.m.stagedHits.Inc()
	}
	return readyAt, true
}

// deliverCompletionsLocked decodes the drain's completion frames — the
// same bytes a real transport would write into the shared completion
// ring — and demultiplexes each to its waiter by tag, with delay (an
// injected completion-path latency) added to every ready-time. Requires
// t.mu.
//
// ddlint:requires-lock mu
func (t *Transport) deliverCompletionsLocked(delay time.Duration) {
	b := t.completions
	for len(b) > 0 {
		c, n, err := DecodeCompletion(b)
		if err != nil {
			break // cannot happen: frames come from EncodeCompletion
		}
		b = b[n:]
		pg := t.waiters[c.Tag]
		if pg == nil {
			continue
		}
		delete(t.waiters, c.Tag)
		delete(t.waiterKeys, c.Tag)
		pg.Complete(c.Ok, c.At+delay)
	}
	t.completions = t.completions[:0]
}

// observe records one op's charged latency in its per-op-code histogram
// and tracks the worst charge any single get saw — the liveness bound
// the deadline budget enforces.
//
// ddlint:requires-lock mu
func (t *Transport) observe(op cleancache.OpCode, d time.Duration) {
	if op == cleancache.OpGet && d > t.maxGetLat {
		t.maxGetLat = d
	}
	if t.m == nil {
		return
	}
	if i := int(op); i >= 0 && i < len(t.m.lat) && t.m.lat[i] != nil {
		t.m.lat[i].Observe(d)
	}
}
