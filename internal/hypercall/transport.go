package hypercall

import (
	"sync"
	"time"

	"doubledecker/internal/cleancache"
	"doubledecker/internal/fault"
	"doubledecker/internal/metrics"
)

// Batch bounds: up to 512 ops per crossing, and up to 512 pages — 2 MiB
// of 4 KiB page payload, mirroring the paper's 2 MiB eviction
// granularity.
const (
	DefaultMaxBatchOps   = 512
	DefaultMaxBatchPages = 512
)

// Retry defaults: exponential backoff from 10 µs capped at 1 ms, with at
// most 8 delivery attempts per crossing before the payload is abandoned.
const (
	DefaultRetryBase   = 10 * time.Microsecond
	DefaultRetryCap    = time.Millisecond
	DefaultMaxAttempts = 8
)

// DefaultStagingPages bounds the per-VM staging buffer: 256 pages (1 MiB)
// of readahead-filled blocks awaiting consumption.
//
// DefaultMaxRequeues bounds how many crossings a flush salvaged from an
// abandoned batch may ride before the transport gives up on it: under a
// persistent fault every drain would otherwise re-queue the same flushes
// forever, livelocking the flush tick.
const (
	DefaultStagingPages = 256
	DefaultMaxRequeues  = 4
)

// Options parameterizes a Transport.
type Options struct {
	// MaxBatchOps bounds the number of operations per crossing
	// (default 512).
	MaxBatchOps int
	// MaxBatchPages bounds the page payload per crossing (default 512
	// pages = 2 MiB).
	MaxBatchPages int
	// CallCost and PageCopyCost override the VMCALL cost model; zero
	// selects the defaults.
	CallCost     time.Duration
	PageCopyCost time.Duration
	// PageMapCost overrides the zero-copy page-map cost; zero selects
	// DefaultPageMapCost.
	PageMapCost time.Duration
	// Unbatched disables coalescing: every op pays its own world switch,
	// the pre-batching behaviour. The baseline for the transport
	// experiment.
	Unbatched bool
	// AsyncGets enables tagged get pipelining: gets ride the batch ring as
	// tagged frames instead of paying a private synchronous crossing, and
	// their completions are demultiplexed by tag when the batch drains.
	// Multiple gets per VM may then be outstanding at once (SubmitAsync /
	// Await); Submit still blocks, but shares the batch crossing. Ignored
	// in Unbatched mode.
	AsyncGets bool
	// ZeroCopy hands bulk response pages back as shared-page references
	// (MapPages) instead of copies: tagged gets reserve no page budget in
	// the batch and readahead fills map their blocks into the staging
	// buffer at PageMapCost per page.
	ZeroCopy bool
	// StagingPages bounds the staging buffer (default 256 pages).
	StagingPages int
	// Metrics receives per-op-code latency histograms and batch
	// telemetry; nil disables recording.
	Metrics *metrics.Registry
	// MetricsPrefix namespaces the recorded metrics (default
	// "hypercall").
	MetricsPrefix string
	// Faults injects transport faults (drop, corrupt, latency) at sites
	// SiteBatch and SiteCall; nil disables injection.
	Faults *fault.Injector
	// RetryBase is the initial backoff after a dropped or corrupted
	// crossing (default 10 µs).
	RetryBase time.Duration
	// RetryCap bounds the exponential backoff (default 1 ms).
	RetryCap time.Duration
	// MaxAttempts bounds delivery attempts per crossing (default 8);
	// after that the payload is abandoned.
	MaxAttempts int
	// MaxRequeues bounds how many abandoned crossings a flush survives
	// before it too is dropped and counted as FlushAbandoned (default 4).
	MaxRequeues int
}

// TransportStats is a snapshot of one transport's traffic.
type TransportStats struct {
	// Calls is the number of world switches (batched crossings + sync
	// ops).
	Calls int64
	// PagesCopied is the number of pages moved across the boundary.
	PagesCopied int64
	// PagesMapped is the number of pages handed over as zero-copy
	// shared-page references.
	PagesMapped int64
	// Batches is the number of multi-op crossings.
	Batches int64
	// BatchedOps is the number of operations delivered via batches.
	BatchedOps int64
	// SyncOps is the number of operations delivered synchronously (gets,
	// control ops, and everything in Unbatched mode).
	SyncOps int64
	// AsyncGets is the number of gets delivered as tagged batch frames.
	AsyncGets int64
	// StagedHits is the number of gets served from the staging buffer
	// without paying a crossing.
	StagedHits int64
	// StagedFills is the number of blocks readahead placed in the staging
	// buffer; StagedEvictions counts the ones pushed out unconsumed.
	StagedFills     int64
	StagedEvictions int64
	// StagedPages is the number of blocks currently staged.
	StagedPages int64
	// Pending is the number of operations currently buffered.
	Pending int64
	// Retries is the number of crossings re-sent after a drop or a
	// checksum rejection.
	Retries int64
	// Backoff is the total virtual time spent backing off before retries.
	Backoff time.Duration
	// Drops and Corrupts count the in-flight faults the channel observed.
	Drops    int64
	Corrupts int64
	// DroppedBatches is the number of batches abandoned after MaxAttempts
	// delivery attempts.
	DroppedBatches int64
	// RequeuedOps is the number of flush ops from abandoned batches
	// re-queued for the next crossing.
	RequeuedOps int64
	// FlushAbandoned is the number of flushes dropped after MaxRequeues
	// abandoned crossings.
	FlushAbandoned int64
	// SyncFailures is the number of synchronous ops whose crossing was
	// abandoned (reported Ok=false to the guest).
	SyncFailures int64
}

// transportMetrics holds the metric handles the transport touches on hot
// paths, resolved once at construction. A registry lookup concatenates a
// name and takes the registry lock; doing that per retry or per drained
// op inside t.mu serializes unrelated VMs on the registry. Nil when no
// registry is configured.
type transportMetrics struct {
	batches        *metrics.Counter
	batchedOps     *metrics.Counter
	batchPages     *metrics.Counter
	batchOps       *metrics.Series
	droppedBatches *metrics.Counter
	retries        *metrics.Counter
	syncFailures   *metrics.Counter
	flushAbandoned *metrics.Counter
	asyncGets      *metrics.Counter
	stagedHits     *metrics.Counter
	stagedFills    *metrics.Counter
	lat            []*metrics.Histogram // indexed by OpCode
}

func newTransportMetrics(reg *metrics.Registry, prefix string) *transportMetrics {
	if reg == nil {
		return nil
	}
	m := &transportMetrics{
		batches:        reg.Counter(prefix + ".batches"),
		batchedOps:     reg.Counter(prefix + ".batched_ops"),
		batchPages:     reg.Counter(prefix + ".batch_pages"),
		batchOps:       reg.Series(prefix + ".batch_ops"),
		droppedBatches: reg.Counter(prefix + ".dropped_batches"),
		retries:        reg.Counter(prefix + ".retries"),
		syncFailures:   reg.Counter(prefix + ".sync_failures"),
		flushAbandoned: reg.Counter(prefix + ".flush_abandoned"),
		asyncGets:      reg.Counter(prefix + ".async_gets"),
		stagedHits:     reg.Counter(prefix + ".staged_hits"),
		stagedFills:    reg.Counter(prefix + ".staged_fills"),
	}
	ops := cleancache.OpCodes()
	m.lat = make([]*metrics.Histogram, int(ops[len(ops)-1])+1)
	for _, op := range ops {
		m.lat[int(op)] = reg.Histogram(prefix + ".lat." + op.String())
	}
	return m
}

// PendingGet is the handle to one in-flight asynchronous get: created by
// SubmitAsync, completed when the crossing carrying its tagged frame
// drains (or is abandoned), redeemed with Await. The type lives in
// cleancache (it is part of the AsyncTransport capability contract);
// this alias keeps the historical hypercall name working. All handle
// state is guarded by the owning transport's mu.
type PendingGet = cleancache.PendingGet

// Transport is the batched, pipelined hypercall path from one VM to the
// hypervisor cache manager. It implements cleancache.Transport.
//
// Batchable operations (put, flush, readahead) are encoded onto a bounded
// Ring and delivered together in one crossing — one world switch for the
// whole batch plus per-page copy costs — when the ring fills or when the
// guest's flush tick calls Flush. Synchronous operations (get and the
// control ops) first drain the ring, preserving per-VM FIFO order, so
// the backend observes exactly the unbatched operation sequence: a get
// following a buffered put of the same key sees the put.
//
// With AsyncGets enabled, gets instead ride the ring as tagged frames:
// the frame keeps its FIFO position (so ordering against buffered puts
// and flushes is unchanged), but its completion — (tag, ok, ready-at) —
// is demultiplexed back to a per-op waiter, letting one VM keep several
// gets in flight and letting completions land out of submission order in
// virtual time.
//
// Readahead responses fill a bounded staging buffer modelling the per-VM
// shared staging region: subsequent gets for staged blocks are answered
// from the buffer without any crossing at all. Staged entries are
// invalidated by the ops that could stale them (put, flush, migrate,
// destroy), both at Submit and again at each op's FIFO position during a
// drain — an op buffered behind a readahead must kill the blocks that
// readahead stages ahead of it. Dropping a staged page is always safe
// under the cleancache contract.
//
// Transport is safe for concurrent use by a VM's vCPU threads.
type Transport struct {
	be cleancache.Backend
	m  *transportMetrics

	// mu guards the ring and the traffic counters below. ch is set once at
	// construction and read without the lock (Channel()); the Channel is
	// internally consistent on its own.
	mu   sync.Mutex
	ch   *Channel
	ring *Ring // ddlint:guarded-by mu
	// scratch is the reusable encode buffer for synchronous crossings.
	scratch []byte // ddlint:guarded-by mu

	unbatched   bool
	asyncGets   bool
	zeroCopy    bool
	stagingCap  int
	retryBase   time.Duration
	retryCap    time.Duration
	maxAttempts int
	maxRequeues int

	// Async get demultiplexing: the next frame tag, the waiters keyed by
	// tag, and the wire-encoded completions of the drain in progress.
	nextTag     uint64                 // ddlint:guarded-by mu
	waiters     map[uint64]*PendingGet // ddlint:guarded-by mu
	completions []byte                 // ddlint:guarded-by mu

	// Staging buffer: readahead-filled blocks and the virtual time their
	// fill completes. stagedOrder is the FIFO eviction queue (lazily
	// pruned: consumed or invalidated keys go stale in place).
	staged      map[cleancache.Key]time.Duration // ddlint:guarded-by mu
	stagedOrder []cleancache.Key                 // ddlint:guarded-by mu

	// requeueGens[i] is the abandoned-crossing count of the i-th buffered
	// op: requeued flushes re-enter at the front of the emptied ring, so
	// positions align, and ops beyond len(requeueGens) are fresh.
	requeueGens []int // ddlint:guarded-by mu

	batches         int64         // ddlint:guarded-by mu
	batchedOps      int64         // ddlint:guarded-by mu
	syncOps         int64         // ddlint:guarded-by mu
	asyncGetOps     int64         // ddlint:guarded-by mu
	stagedHits      int64         // ddlint:guarded-by mu
	stagedFills     int64         // ddlint:guarded-by mu
	stagedEvictions int64         // ddlint:guarded-by mu
	retries         int64         // ddlint:guarded-by mu
	backoff         time.Duration // ddlint:guarded-by mu
	droppedBatches  int64         // ddlint:guarded-by mu
	requeuedOps     int64         // ddlint:guarded-by mu
	flushAbandoned  int64         // ddlint:guarded-by mu
	syncFailures    int64         // ddlint:guarded-by mu
}

var (
	_ cleancache.Transport      = (*Transport)(nil)
	_ cleancache.AsyncTransport = (*Transport)(nil)
)

// NewTransport wires a batched transport to be.
func NewTransport(be cleancache.Backend, opts Options) *Transport {
	if opts.MaxBatchOps <= 0 {
		opts.MaxBatchOps = DefaultMaxBatchOps
	}
	if opts.MaxBatchPages <= 0 {
		opts.MaxBatchPages = DefaultMaxBatchPages
	}
	if opts.CallCost == 0 {
		opts.CallCost = DefaultCallCost
	}
	if opts.PageCopyCost == 0 {
		opts.PageCopyCost = DefaultPageCopyCost
	}
	if opts.StagingPages <= 0 {
		opts.StagingPages = DefaultStagingPages
	}
	if opts.MetricsPrefix == "" {
		opts.MetricsPrefix = "hypercall"
	}
	if opts.RetryBase <= 0 {
		opts.RetryBase = DefaultRetryBase
	}
	if opts.RetryCap <= 0 {
		opts.RetryCap = DefaultRetryCap
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = DefaultMaxAttempts
	}
	if opts.MaxRequeues <= 0 {
		opts.MaxRequeues = DefaultMaxRequeues
	}
	return &Transport{
		be:          be,
		m:           newTransportMetrics(opts.Metrics, opts.MetricsPrefix),
		ch:          NewChannelWithCosts(opts.CallCost, opts.PageCopyCost).WithMapCost(opts.PageMapCost).WithFaults(opts.Faults),
		ring:        NewRing(opts.MaxBatchOps, opts.MaxBatchPages),
		unbatched:   opts.Unbatched,
		asyncGets:   opts.AsyncGets && !opts.Unbatched,
		zeroCopy:    opts.ZeroCopy,
		stagingCap:  opts.StagingPages,
		retryBase:   opts.RetryBase,
		retryCap:    opts.RetryCap,
		maxAttempts: opts.MaxAttempts,
		maxRequeues: opts.MaxRequeues,
		waiters:     make(map[uint64]*PendingGet),
		staged:      make(map[cleancache.Key]time.Duration),
	}
}

// Channel exposes the underlying cost/traffic model.
func (t *Transport) Channel() *Channel { return t.ch }

// Stats snapshots the transport's traffic counters.
func (t *Transport) Stats() TransportStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return TransportStats{
		Calls:           t.ch.Calls(),
		PagesCopied:     t.ch.PagesCopied(),
		PagesMapped:     t.ch.PagesMapped(),
		Batches:         t.batches,
		BatchedOps:      t.batchedOps,
		SyncOps:         t.syncOps,
		AsyncGets:       t.asyncGetOps,
		StagedHits:      t.stagedHits,
		StagedFills:     t.stagedFills,
		StagedEvictions: t.stagedEvictions,
		StagedPages:     int64(len(t.staged)),
		Pending:         int64(t.ring.Len()),
		Retries:         t.retries,
		Backoff:         t.backoff,
		Drops:           t.ch.Drops(),
		Corrupts:        t.ch.Corrupts(),
		DroppedBatches:  t.droppedBatches,
		RequeuedOps:     t.requeuedOps,
		FlushAbandoned:  t.flushAbandoned,
		SyncFailures:    t.syncFailures,
	}
}

// Submit implements cleancache.Transport. Batchable ops are buffered and
// acknowledged optimistically (Ok=true — the guest drops the page either
// way, matching the paper's fire-and-forget put semantics); the reported
// latency is whatever drain this submission triggered. Synchronous ops
// drain the ring, pay their own crossing, dispatch, and return the
// backend's answer with transport cost folded into Latency. Gets check
// the staging buffer first and, when AsyncGets is on, ride the batch as
// tagged frames instead of paying a private crossing.
func (t *Transport) Submit(now time.Duration, req cleancache.Request) cleancache.Response {
	t.mu.Lock()
	defer t.mu.Unlock()

	t.invalidateStagedLocked(req)

	if !t.unbatched && req.Op.Batchable() {
		var lat time.Duration
		if !t.ring.Fits(req.Op.Pages()) {
			lat = t.drainLocked(now)
		}
		t.ring.Push(req)
		t.batchedOps++
		if t.ring.Full() {
			lat += t.drainLocked(now + lat)
		}
		return cleancache.Response{Op: req.Op, Ok: true, Latency: lat}
	}

	if req.Op == cleancache.OpGet && t.asyncGets {
		pg, lat := t.enqueueGetLocked(now, req)
		if !pg.Done() {
			lat += t.drainLocked(now + lat)
		}
		return t.resolveLocked(now, lat, pg)
	}

	if req.Op == cleancache.OpGet {
		// A staged block is guest-visible memory: consuming it needs no
		// crossing and no drain. Nothing buffered can stale it — the ops
		// that could (put, flush) invalidated it at their own Submit.
		if wait, hit := t.consumeStagedLocked(now, req.Key); hit {
			t.observe(req.Op, wait)
			return cleancache.Response{Op: req.Op, Ok: true, Latency: wait}
		}
	}

	// Synchronous path: barrier-drain buffered ops first so the backend
	// sees FIFO order, then pay this op's own crossing. The dispatch
	// timestamp `at` is threaded explicitly — every drain, delivery and
	// backoff advances it — so the backend is invoked at exactly the
	// virtual time the request arrives and the guest-visible latency is
	// always at-now plus the backend's own latency. The wire encoding
	// exists only for the fault model to checksum or corrupt, so the
	// healthy path skips it.
	at := now
	at += t.drainLocked(at)
	// The drain may have dispatched a buffered readahead whose fills this
	// op invalidates (migrate, destroy): the submit-time invalidation
	// above ran before those blocks were staged, so repeat it now that
	// this op is about to apply behind them in FIFO order.
	t.invalidateStagedLocked(req)
	if req.Op == cleancache.OpGet {
		// The drain may have dispatched a buffered readahead that staged
		// this very block: re-check before paying a crossing.
		if wait, hit := t.consumeStagedLocked(at, req.Key); hit {
			t.observe(req.Op, at+wait-now)
			return cleancache.Response{Op: req.Op, Ok: true, Latency: at + wait - now}
		}
	}
	var payload []byte
	if t.ch.Faulty() {
		t.scratch = EncodeRequest(t.scratch[:0], req)
		payload = t.scratch
	}
	clat, ok := t.crossLocked(at, req.Op.Pages(), payload, SiteCall)
	at += clat
	t.syncOps++
	if !ok {
		// The call never reached the hypervisor. Reporting Ok=false is
		// cleancache-safe: a failed get is a miss (the guest re-reads from
		// its virtual disk), a failed control op surfaces to its caller.
		t.syncFailures++
		if t.m != nil {
			t.m.syncFailures.Inc()
		}
		t.observe(req.Op, at-now)
		return cleancache.Response{Op: req.Op, Ok: false, Latency: at - now}
	}
	resp := t.be.Dispatch(at, req)
	if req.Op == cleancache.OpReadAhead {
		// Unbatched transports deliver READ_AHEAD synchronously; the
		// backend has already extracted the blocks under the exclusive
		// protocol, so the response must fill the staging buffer —
		// discarding it would silently evict up to Count cached blocks
		// and turn the following gets into guaranteed misses.
		t.stageLocked(at, req, resp)
	}
	resp.Latency += at - now
	t.observe(req.Op, resp.Latency)
	return resp
}

// SubmitAsync implements cleancache.AsyncTransport: it issues a get
// without waiting for its completion. The request is pushed as a tagged
// frame (draining the ring only if the frame does not fit) and a handle
// is returned for Await. The returned latency is the submission cost
// charged to the caller now — any drain this push triggered — not the
// get's completion time. Ops other than get, and transports without
// AsyncGets, fall back to the synchronous Submit and return an
// already-completed handle.
func (t *Transport) SubmitAsync(now time.Duration, req cleancache.Request) (*PendingGet, time.Duration) {
	if req.Op != cleancache.OpGet || !t.asyncGets {
		resp := t.Submit(now, req)
		return cleancache.CompletedPendingGet(resp, now+resp.Latency), resp.Latency
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.enqueueGetLocked(now, req)
}

// Await implements cleancache.AsyncTransport: it blocks (in virtual
// time) until pg completes, forcing a ring drain if the completion is
// still in flight. The returned Latency is the wait remaining from now;
// a get whose completion already landed in the past costs nothing more.
func (t *Transport) Await(now time.Duration, pg *PendingGet) cleancache.Response {
	t.mu.Lock()
	defer t.mu.Unlock()
	var lat time.Duration
	if !pg.Done() {
		lat = t.drainLocked(now)
	}
	return t.resolveLocked(now, lat, pg)
}

// enqueueGetLocked pushes req as a tagged frame, serving it from the
// staging buffer instead when the block is staged (no crossing at all).
// Returns the pending handle and the submission latency charged now.
//
// ddlint:requires-lock mu
func (t *Transport) enqueueGetLocked(now time.Duration, req cleancache.Request) (*PendingGet, time.Duration) {
	if wait, hit := t.consumeStagedLocked(now, req.Key); hit {
		return cleancache.ReadyPendingGet(true, now+wait), 0
	}
	pages := req.Op.Pages()
	if t.zeroCopy {
		pages = 0 // the answer page is mapped, not copied through the batch
	}
	var lat time.Duration
	if !t.ring.Fits(pages) {
		lat = t.drainLocked(now)
		// That drain may have dispatched a readahead staging this block.
		if wait, hit := t.consumeStagedLocked(now+lat, req.Key); hit {
			return cleancache.ReadyPendingGet(true, now+lat+wait), lat
		}
	}
	tag := t.nextTag
	t.nextTag++
	pg := cleancache.NewPendingGet(tag)
	t.waiters[tag] = pg
	t.ring.PushTagged(tag, req, pages)
	t.asyncGetOps++
	if t.m != nil {
		t.m.asyncGets.Inc()
	}
	if t.ring.Full() {
		lat += t.drainLocked(now + lat)
	}
	return pg, lat
}

// resolveLocked turns a completed handle into the guest-visible
// response via PendingGet.Resolve. submitLat is the latency already
// accumulated by the caller this submission (drains it triggered); the
// reported latency is the later of that and the completion's ready-at.
// Failure of the crossing (abandoned batch) is reported as Ok=false — a
// miss, never data loss — and counted as a sync failure. Idempotent: a
// second resolution returns the recorded response with only the wait
// remaining from now, and accounting happens only on the first.
//
// ddlint:requires-lock mu
func (t *Transport) resolveLocked(now, submitLat time.Duration, pg *PendingGet) cleancache.Response {
	resp, first := pg.Resolve(now, submitLat)
	if !first {
		return resp
	}
	if pg.Failed() {
		t.syncFailures++
		if t.m != nil {
			t.m.syncFailures.Inc()
		}
	}
	t.observe(cleancache.OpGet, resp.Latency)
	return resp
}

// consumeStagedLocked serves key from the staging buffer if present:
// the entry is consumed (gets are exclusive) and the returned wait is
// the time until its fill completes — zero for a block staged in the
// past. The fill already paid the page movement, so consumption is free.
//
// ddlint:requires-lock mu
func (t *Transport) consumeStagedLocked(now time.Duration, key cleancache.Key) (time.Duration, bool) {
	readyAt, ok := t.stagedHitLocked(key)
	if !ok {
		return 0, false
	}
	if readyAt <= now {
		return 0, true
	}
	return readyAt - now, true
}

// stageLocked records a readahead response: the extracted blocks become
// staged entries whose fill completes after the backend latency plus the
// page handover — mapped references under ZeroCopy, copies otherwise.
// The buffer is bounded; the oldest unconsumed entries are evicted,
// which is always safe (an evicted block is simply re-fetched).
//
// ddlint:requires-lock mu
func (t *Transport) stageLocked(at time.Duration, req cleancache.Request, resp cleancache.Response) {
	if resp.Count <= 0 {
		return
	}
	n := int(resp.Count)
	ready := at + resp.Latency
	if t.zeroCopy {
		ready += t.ch.MapPages(n)
	} else {
		ready += t.ch.CopyPages(n)
	}
	for i := int64(0); i < resp.Count; i++ {
		key := cleancache.Key{Pool: req.Key.Pool, Inode: req.Key.Inode, Block: req.Key.Block + i}
		if _, dup := t.staged[key]; dup {
			t.staged[key] = ready
			continue
		}
		for len(t.staged) >= t.stagingCap {
			t.evictStagedLocked()
		}
		t.staged[key] = ready
		t.stagedOrder = append(t.stagedOrder, key)
		t.stagedFills++
		if t.m != nil {
			t.m.stagedFills.Inc()
		}
	}
}

// evictStagedLocked removes the oldest live staged entry, skipping keys
// already consumed or invalidated (their order slots went stale).
//
// ddlint:requires-lock mu
func (t *Transport) evictStagedLocked() {
	for len(t.stagedOrder) > 0 {
		key := t.stagedOrder[0]
		t.stagedOrder = t.stagedOrder[1:]
		if _, live := t.staged[key]; live {
			delete(t.staged, key)
			t.stagedEvictions++
			return
		}
	}
}

// invalidateStagedLocked drops staged blocks the submitted op could
// stale: the guest is about to overwrite or invalidate them, and serving
// a stale staged page would violate the cleancache contract. Dropping is
// always safe — a dropped staged block is re-fetched on demand.
//
// ddlint:requires-lock mu
func (t *Transport) invalidateStagedLocked(req cleancache.Request) {
	if len(t.staged) == 0 {
		return
	}
	switch req.Op {
	case cleancache.OpPut, cleancache.OpFlushPage:
		delete(t.staged, req.Key)
	case cleancache.OpFlushInode, cleancache.OpMigrateObject:
		for key := range t.staged {
			if key.Pool == req.Key.Pool && key.Inode == req.Key.Inode {
				delete(t.staged, key)
			}
		}
	case cleancache.OpDestroyCgroup:
		for key := range t.staged {
			if key.Pool == req.Key.Pool {
				delete(t.staged, key)
			}
		}
	default: // ddlint:nonexhaustive — gets and the remaining control ops cannot stale staged blocks
	}
}

// crossLocked delivers payload across the boundary, re-sending dropped or
// checksum-rejected crossings with capped exponential backoff. Replay is
// idempotent because batches are FIFO and all-or-nothing: the receiver
// either decoded the whole payload or saw none of it, so re-sending the
// same frames cannot double-apply an op. The delivery timestamp `at`
// advances through every attempt and backoff, so each retry hits the
// fault plan at the virtual time it actually occurs. Returns the total
// latency (at-now: crossings plus backoff) and whether the payload was
// delivered within the attempt budget. Requires t.mu.
//
// ddlint:requires-lock mu
func (t *Transport) crossLocked(now time.Duration, pages int, payload []byte, site string) (time.Duration, bool) {
	at := now
	backoff := t.retryBase
	for attempt := 1; ; attempt++ {
		dlat, err := t.ch.Deliver(at, pages, payload, site)
		at += dlat
		if err == nil {
			return at - now, true
		}
		if attempt >= t.maxAttempts {
			return at - now, false
		}
		t.retries++
		t.backoff += backoff
		if t.m != nil {
			t.m.retries.Inc()
		}
		at += backoff
		backoff *= 2
		if backoff > t.retryCap {
			backoff = t.retryCap
		}
	}
}

// requeueLocked empties an abandoned batch at virtual time at, salvaging
// what the contract requires:
//
//   - puts and readaheads are dropped — the pages are simply not cached
//     (or not prefetched), free under the cleancache contract;
//   - tagged gets complete their waiters with Ok=false — a miss, so the
//     guest re-reads from its virtual disk, never data loss;
//   - flushes are re-queued for the next crossing, since a lost flush
//     would leave the hypervisor holding an object the guest invalidated
//     — but only up to MaxRequeues abandoned crossings each, so a
//     persistent transport fault surfaces as FlushAbandoned instead of
//     re-queuing the same flushes forever.
//
// Requires t.mu.
//
// ddlint:requires-lock mu
func (t *Transport) requeueLocked(at time.Duration) {
	gens := t.requeueGens
	t.requeueGens = nil
	var keep []cleancache.Request
	var keepGens []int
	idx := -1
	t.ring.DrainFrames(func(f Frame) {
		idx++
		if f.Tagged {
			t.failWaiterLocked(f.Tag, at)
			return
		}
		switch f.Req.Op {
		case cleancache.OpPut, cleancache.OpReadAhead:
			return // droppable, fire-and-forget
		default: // ddlint:nonexhaustive — only flushes remain buffered untagged
		}
		gen := 1
		if idx < len(gens) {
			gen = gens[idx] + 1
		}
		if gen > t.maxRequeues {
			t.flushAbandoned++
			if t.m != nil {
				t.m.flushAbandoned.Inc()
			}
			return
		}
		keep = append(keep, f.Req)
		keepGens = append(keepGens, gen)
	})
	for i, req := range keep {
		if !t.ring.Fits(req.Op.Pages()) {
			break // cannot happen: flushes carry no pages and count ≤ maxOps
		}
		t.ring.Push(req)
		t.requeueGens = append(t.requeueGens, keepGens[i])
		t.requeuedOps++
	}
}

// failWaiterLocked completes a tagged get's waiter as a transport
// failure at virtual time at.
//
// ddlint:requires-lock mu
func (t *Transport) failWaiterLocked(tag uint64, at time.Duration) {
	pg := t.waiters[tag]
	if pg == nil {
		return
	}
	delete(t.waiters, tag)
	pg.Fail(at)
}

// Flush implements cleancache.Transport: the guest's periodic transport
// tick (and shutdown) drains buffered ops.
func (t *Transport) Flush(now time.Duration) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.drainLocked(now)
}

// drainLocked delivers the buffered batch in one checksummed crossing:
// one world switch for the whole batch plus the page copies (re-sent with
// backoff if the crossing is dropped or corrupted in flight), then each
// op dispatched in FIFO order at its pipelined delivery time. Puts and
// flushes accumulate serially — the hypervisor applies them in order on
// the draining vCPU's time. Tagged gets and readaheads dispatch at their
// FIFO position but do not delay the ops behind them: their latency
// lands on their own completion (the waiter's ready-at, the staged
// fill's ready-at) instead of the draining caller, which is what lets
// several gets overlap. Completions are wire-encoded during the walk and
// demultiplexed to waiters afterwards. Returns the total latency charged
// to the draining caller. Requires t.mu.
func (t *Transport) drainLocked(now time.Duration) time.Duration {
	ops := t.ring.Len()
	if ops == 0 {
		return 0
	}
	pages := t.ring.Pages()
	lat, ok := t.crossLocked(now, pages, t.ring.Bytes(), SiteBatch)
	if !ok {
		// Attempt budget exhausted: abandon the batch, salvaging what the
		// contract requires (see requeueLocked).
		t.droppedBatches++
		if t.m != nil {
			t.m.droppedBatches.Inc()
		}
		t.requeueLocked(now + lat)
		return lat
	}
	t.batches++
	t.requeueGens = t.requeueGens[:0] // delivered: salvaged flushes made it
	perOp := lat / time.Duration(ops) // amortized transport share
	if t.m != nil {
		t.m.batches.Inc()
		t.m.batchedOps.Add(int64(ops))
		t.m.batchPages.Add(int64(pages))
		t.m.batchOps.Record(now, float64(ops))
	}
	acc := lat
	t.completions = t.completions[:0]
	t.ring.DrainFrames(func(f Frame) {
		if f.Tagged {
			t.completeGetLocked(now+acc, f)
			return
		}
		if f.Req.Op == cleancache.OpReadAhead {
			resp := t.be.Dispatch(now+acc, f.Req)
			t.stageLocked(now+acc, f.Req, resp)
			t.observe(f.Req.Op, resp.Latency+perOp)
			return
		}
		// An invalidating op (put, flush) kills matching staged blocks at
		// its FIFO position, not only at Submit: a readahead earlier in
		// this same drain may have staged the pre-op content after the
		// submit-time invalidation ran, and serving that block once this
		// op applies would violate the cleancache contract.
		t.invalidateStagedLocked(f.Req)
		resp := t.be.Dispatch(now+acc, f.Req)
		acc += resp.Latency
		t.observe(f.Req.Op, resp.Latency+perOp)
	})
	t.deliverCompletionsLocked()
	return acc
}

// completeGetLocked dispatches one tagged get at virtual time at and
// appends its wire-encoded completion. A block staged by an earlier
// readahead in the same batch is served from the staging buffer — the
// whole point of issuing the readahead ahead of the stream. Requires
// t.mu.
//
// ddlint:requires-lock mu
func (t *Transport) completeGetLocked(at time.Duration, f Frame) {
	if readyAt, hit := t.stagedHitLocked(f.Req.Key); hit {
		if readyAt < at {
			readyAt = at
		}
		t.completions = EncodeCompletion(t.completions, Completion{Tag: f.Tag, Ok: true, At: readyAt})
		return
	}
	resp := t.be.Dispatch(at, f.Req)
	ready := at + resp.Latency
	if t.zeroCopy && resp.Ok {
		ready += t.ch.MapPages(1)
	}
	t.completions = EncodeCompletion(t.completions, Completion{Tag: f.Tag, Ok: resp.Ok, Count: resp.Count, At: ready})
}

// stagedHitLocked consumes key from the staging buffer if present,
// returning its fill-ready time. Split from consumeStagedLocked so the
// drain path can clamp ready-at to the dispatch time itself.
//
// ddlint:requires-lock mu
func (t *Transport) stagedHitLocked(key cleancache.Key) (time.Duration, bool) {
	readyAt, ok := t.staged[key]
	if !ok {
		return 0, false
	}
	delete(t.staged, key)
	t.stagedHits++
	if t.m != nil {
		t.m.stagedHits.Inc()
	}
	return readyAt, true
}

// deliverCompletionsLocked decodes the drain's completion frames — the
// same bytes a real transport would write into the shared completion
// ring — and demultiplexes each to its waiter by tag. Requires t.mu.
//
// ddlint:requires-lock mu
func (t *Transport) deliverCompletionsLocked() {
	b := t.completions
	for len(b) > 0 {
		c, n, err := DecodeCompletion(b)
		if err != nil {
			break // cannot happen: frames come from EncodeCompletion
		}
		b = b[n:]
		pg := t.waiters[c.Tag]
		if pg == nil {
			continue
		}
		delete(t.waiters, c.Tag)
		pg.Complete(c.Ok, c.At)
	}
	t.completions = t.completions[:0]
}

// observe records one op's charged latency in its per-op-code histogram.
func (t *Transport) observe(op cleancache.OpCode, d time.Duration) {
	if t.m == nil {
		return
	}
	if i := int(op); i >= 0 && i < len(t.m.lat) && t.m.lat[i] != nil {
		t.m.lat[i].Observe(d)
	}
}
