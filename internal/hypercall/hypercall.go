// Package hypercall models the guest→hypervisor transport DoubleDecker
// uses: cleancache operations are routed to the KVM module through a
// VMCALL, which copies arguments (and for get/put, a page of data) between
// guest and host memory. The model charges a fixed world-switch cost per
// call plus a per-page copy cost, and counts traffic for the experiment
// reports.
//
// On top of the raw Channel cost model, the package provides the batched
// Transport: a per-VM bounded ring of wire-encoded requests
// (EncodeRequest/DecodeRequest) in which fire-and-forget operations
// (put, flush) coalesce into multi-op crossings of up to MaxBatchOps
// operations or MaxBatchPages pages — the paper's 2 MiB granularity —
// paying one world switch per batch instead of one per op. See Transport.
package hypercall

import (
	"sync/atomic"
	"time"
)

// Default costs for a VMCALL-based transport on the paper's Xeon-class
// host: ~1.8 µs for the VM exit/entry pair and ~0.45 µs to copy one 4 KiB
// page between guest and host buffers.
const (
	DefaultCallCost     = 1800 * time.Nanosecond
	DefaultPageCopyCost = 450 * time.Nanosecond
)

// Channel is one VM's hypercall path to the hypervisor cache manager.
// Traffic counters are atomic: a VM's vCPU threads (and the flush tick)
// may charge costs concurrently.
type Channel struct {
	callCost time.Duration
	copyCost time.Duration

	calls       atomic.Int64
	pagesCopied atomic.Int64
}

// NewChannel returns a channel with the default VMCALL cost model.
func NewChannel() *Channel {
	return &Channel{callCost: DefaultCallCost, copyCost: DefaultPageCopyCost}
}

// NewChannelWithCosts returns a channel with explicit costs, for
// sensitivity experiments.
func NewChannelWithCosts(call, pageCopy time.Duration) *Channel {
	return &Channel{callCost: call, copyCost: pageCopy}
}

// Cost returns the transport latency for one call moving pages of data,
// and accounts the traffic. Safe for concurrent use.
func (c *Channel) Cost(pages int) time.Duration {
	c.calls.Add(1)
	c.pagesCopied.Add(int64(pages))
	return c.callCost + time.Duration(pages)*c.copyCost
}

// Calls reports the number of hypercalls issued.
func (c *Channel) Calls() int64 { return c.calls.Load() }

// PagesCopied reports the number of pages moved across the boundary.
func (c *Channel) PagesCopied() int64 { return c.pagesCopied.Load() }
