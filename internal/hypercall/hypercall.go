// Package hypercall models the guest→hypervisor transport DoubleDecker
// uses: cleancache operations are routed to the KVM module through a
// VMCALL, which copies arguments (and for get/put, a page of data) between
// guest and host memory. The model charges a fixed world-switch cost per
// call plus a per-page copy cost, and counts traffic for the experiment
// reports.
//
// On top of the raw Channel cost model, the package provides the batched
// Transport: a per-VM bounded ring of wire-encoded requests
// (EncodeRequest/DecodeRequest) in which fire-and-forget operations
// (put, flush) coalesce into multi-op crossings of up to MaxBatchOps
// operations or MaxBatchPages pages — the paper's 2 MiB granularity —
// paying one world switch per batch instead of one per op. See Transport.
package hypercall

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"doubledecker/internal/fault"
)

// Default costs for a VMCALL-based transport on the paper's Xeon-class
// host: ~1.8 µs for the VM exit/entry pair and ~0.45 µs to copy one 4 KiB
// page between guest and host buffers.
const (
	DefaultCallCost     = 1800 * time.Nanosecond
	DefaultPageCopyCost = 450 * time.Nanosecond
	// DefaultPageMapCost is the zero-copy alternative to a page copy:
	// remapping a shared page into the guest (a PTE update plus TLB
	// shootdown share) instead of moving 4 KiB through a bounce buffer.
	DefaultPageMapCost = 150 * time.Nanosecond
)

// Fault-injection sites the transport consults: one decision per batched
// crossing, one per synchronous call, and one per completion-frame (0xF9)
// delivery — so plans can stall or lose completions independently of the
// submissions that produced them.
const (
	SiteBatch      = "transport.batch"
	SiteCall       = "transport.call"
	SiteCompletion = "transport.completion"
)

func init() {
	// Make the transport's sites known to plan validation, so rules that
	// target them do not trip the unknown-site warning.
	fault.RegisterSites(SiteBatch, SiteCall, SiteCompletion)
}

// ErrCorrupt is returned when the receive-side checksum verification
// rejects a crossing; the sender must re-send the same frames.
var ErrCorrupt = errors.New("hypercall: batch checksum mismatch")

// Channel is one VM's hypercall path to the hypervisor cache manager.
// Traffic counters are atomic: a VM's vCPU threads (and the flush tick)
// may charge costs concurrently.
type Channel struct {
	callCost time.Duration
	copyCost time.Duration
	mapCost  time.Duration
	faults   *fault.Injector

	calls       atomic.Int64
	pagesCopied atomic.Int64
	pagesMapped atomic.Int64
	drops       atomic.Int64
	corrupts    atomic.Int64
}

// NewChannel returns a channel with the default VMCALL cost model.
func NewChannel() *Channel {
	return NewChannelWithCosts(DefaultCallCost, DefaultPageCopyCost)
}

// NewChannelWithCosts returns a channel with explicit costs, for
// sensitivity experiments.
func NewChannelWithCosts(call, pageCopy time.Duration) *Channel {
	return &Channel{callCost: call, copyCost: pageCopy, mapCost: DefaultPageMapCost}
}

// WithMapCost overrides the zero-copy page-map cost and returns the
// channel.
func (c *Channel) WithMapCost(d time.Duration) *Channel {
	if d > 0 {
		c.mapCost = d
	}
	return c
}

// Cost returns the transport latency for one call moving pages of data,
// and accounts the traffic. Safe for concurrent use.
func (c *Channel) Cost(pages int) time.Duration {
	c.calls.Add(1)
	c.pagesCopied.Add(int64(pages))
	return c.callCost + time.Duration(pages)*c.copyCost
}

// CopyPages accounts n response pages copied outside a crossing (staged
// or bulk data moved on the completion path) and returns the copy cost.
// Safe for concurrent use.
func (c *Channel) CopyPages(n int) time.Duration {
	c.pagesCopied.Add(int64(n))
	return time.Duration(n) * c.copyCost
}

// MapPages accounts n response pages handed over as shared-page
// references — the zero-copy bulk path — and returns the mapping cost.
// Safe for concurrent use.
func (c *Channel) MapPages(n int) time.Duration {
	c.pagesMapped.Add(int64(n))
	return time.Duration(n) * c.mapCost
}

// WithFaults attaches a fault injector to the channel and returns it;
// drop, corrupt and latency faults are then played on every Deliver.
func (c *Channel) WithFaults(in *fault.Injector) *Channel {
	c.faults = in
	return c
}

// Deliver models one crossing at site carrying the wire-encoded payload
// plus pages data pages. It charges the world-switch and copy cost,
// stamps the payload with its FNV-1a checksum on the send side, plays the
// fault plan in flight, and verifies the checksum on the receive side:
//
//   - a drop (or stall/io-error) loses the crossing — nothing arrives;
//   - a corruption flips payload bits, so verification rejects the batch;
//   - a latency spike delays delivery but the payload arrives intact.
//
// The returned latency is charged in every case — a lost crossing still
// burned its cost — and a non-nil error means the payload did not arrive
// intact, so the caller must re-send the same frames or abandon them.
//
// Without an injector nothing can be lost or corrupted in flight, so the
// checksum work is skipped entirely: the healthy path costs exactly what
// it did before fault injection existed.
func (c *Channel) Deliver(now time.Duration, pages int, payload []byte, site string) (time.Duration, error) {
	lat := c.Cost(pages)
	if c.faults == nil {
		return lat, nil
	}
	sent := Checksum(payload)
	received := sent
	d := c.faults.Decide(now, site)
	switch d.Kind {
	case fault.KindLatency:
		lat += d.Delay
	case fault.KindCorrupt:
		received ^= 1 << 63 // a bit flipped in flight
	case fault.KindDrop, fault.KindStall, fault.KindIOError:
		c.drops.Add(1)
		return lat + d.Delay, &fault.Error{Site: site, Kind: d.Kind}
	}
	if received != sent {
		c.corrupts.Add(1)
		return lat, fmt.Errorf("%w at %s: sent %016x, received %016x", ErrCorrupt, site, sent, received)
	}
	return lat, nil
}

// CompletionFault plays the fault plan on one completion-frame delivery
// (SiteCompletion) at virtual time now. It returns the extra delay the
// completions must absorb and whether the whole completion batch was
// lost in flight: a drop/stall/io-error loses the frames (the waiters
// stay pending and must be failed by the watchdog or the await path),
// a corruption is rejected by the receive-side checksum — equally lost,
// since completions are never re-sent — and a latency fault delays every
// completion's ready-time. Nothing is consulted without an injector.
func (c *Channel) CompletionFault(now time.Duration) (time.Duration, bool) {
	if c.faults == nil {
		return 0, false
	}
	d := c.faults.Decide(now, SiteCompletion)
	switch d.Kind {
	case fault.KindLatency:
		return d.Delay, false
	case fault.KindDrop, fault.KindStall, fault.KindIOError:
		c.drops.Add(1)
		return d.Delay, true
	case fault.KindCorrupt:
		c.corrupts.Add(1)
		return 0, true
	default: // KindNone
		return 0, false
	}
}

// Calls reports the number of hypercalls issued.
func (c *Channel) Calls() int64 { return c.calls.Load() }

// PagesCopied reports the number of pages moved across the boundary.
func (c *Channel) PagesCopied() int64 { return c.pagesCopied.Load() }

// PagesMapped reports the number of pages handed over as zero-copy
// shared-page references.
func (c *Channel) PagesMapped() int64 { return c.pagesMapped.Load() }

// Drops reports the number of crossings lost in flight.
func (c *Channel) Drops() int64 { return c.drops.Load() }

// Corrupts reports the number of crossings rejected by checksum.
func (c *Channel) Corrupts() int64 { return c.corrupts.Load() }

// Faulty reports whether a fault injector is attached; callers can skip
// building payloads that exist only to be checksummed or corrupted.
func (c *Channel) Faulty() bool { return c.faults != nil }
