// Package hypercall models the guest→hypervisor transport DoubleDecker
// uses: cleancache operations are routed to the KVM module through a
// VMCALL, which copies arguments (and for get/put, a page of data) between
// guest and host memory. The model charges a fixed world-switch cost per
// call plus a per-page copy cost, and counts traffic for the experiment
// reports.
package hypercall

import "time"

// Default costs for a VMCALL-based transport on the paper's Xeon-class
// host: ~1.8 µs for the VM exit/entry pair and ~0.45 µs to copy one 4 KiB
// page between guest and host buffers.
const (
	DefaultCallCost     = 1800 * time.Nanosecond
	DefaultPageCopyCost = 450 * time.Nanosecond
)

// Channel is one VM's hypercall path to the hypervisor cache manager.
type Channel struct {
	callCost time.Duration
	copyCost time.Duration

	calls       int64
	pagesCopied int64
}

// NewChannel returns a channel with the default VMCALL cost model.
func NewChannel() *Channel {
	return &Channel{callCost: DefaultCallCost, copyCost: DefaultPageCopyCost}
}

// NewChannelWithCosts returns a channel with explicit costs, for
// sensitivity experiments.
func NewChannelWithCosts(call, pageCopy time.Duration) *Channel {
	return &Channel{callCost: call, copyCost: pageCopy}
}

// Cost returns the transport latency for one call moving pages of data,
// and accounts the traffic.
func (c *Channel) Cost(pages int) time.Duration {
	c.calls++
	c.pagesCopied += int64(pages)
	return c.callCost + time.Duration(pages)*c.copyCost
}

// Calls reports the number of hypercalls issued.
func (c *Channel) Calls() int64 { return c.calls }

// PagesCopied reports the number of pages moved across the boundary.
func (c *Channel) PagesCopied() int64 { return c.pagesCopied }
