package hypercall

import "doubledecker/internal/cleancache"

// Ring is a bounded buffer of wire-encoded requests awaiting one
// multi-op crossing. It models the per-VM shared ring a real transport
// would map between guest and hypervisor: frames are appended
// contiguously in FIFO order, and the ring is bounded both by operation
// count and by page payload (the paper's 2 MiB granularity).
//
// Ring is not self-locking; the owning Transport serializes access.
type Ring struct {
	maxOps   int
	maxPages int

	buf   []byte
	ops   int
	pages int
}

// NewRing returns an empty ring bounded by maxOps frames and maxPages
// pages of payload.
func NewRing(maxOps, maxPages int) *Ring {
	return &Ring{maxOps: maxOps, maxPages: maxPages}
}

// Len reports the number of buffered operations.
func (r *Ring) Len() int { return r.ops }

// Pages reports the page payload of the buffered operations.
func (r *Ring) Pages() int { return r.pages }

// Bytes exposes the encoded frames awaiting delivery, for checksumming.
// The slice aliases the ring's buffer; callers must not retain it across
// Push or Drain.
func (r *Ring) Bytes() []byte { return r.buf }

// Fits reports whether one more op moving pages of data can be accepted
// without exceeding the ring bounds.
func (r *Ring) Fits(pages int) bool {
	return r.ops < r.maxOps && r.pages+pages <= r.maxPages
}

// Full reports whether the ring has reached either bound (no further
// page-carrying op fits).
func (r *Ring) Full() bool {
	return r.ops >= r.maxOps || r.pages >= r.maxPages
}

// Push encodes req onto the ring. The caller must have checked Fits.
func (r *Ring) Push(req cleancache.Request) {
	r.buf = EncodeRequest(r.buf, req)
	r.ops++
	r.pages += req.Op.Pages()
}

// PushTagged encodes a tagged request onto the ring: an asynchronous get
// riding the batch, whose completion is demultiplexed by tag. pages is
// the response payload the frame reserves in the batch's page budget
// (0 when the answer page is mapped instead of copied). The caller must
// have checked Fits.
func (r *Ring) PushTagged(tag uint64, req cleancache.Request, pages int) {
	r.buf = EncodeTagged(r.buf, tag, req)
	r.ops++
	r.pages += pages
}

// Drain decodes every buffered frame in FIFO order, invoking fn for
// each, and empties the ring. Tags are dropped; transports that push
// tagged frames must use DrainFrames. Decode errors are impossible for
// frames produced by Push, so fn sees exactly the pushed sequence.
func (r *Ring) Drain(fn func(req cleancache.Request)) {
	r.DrainFrames(func(f Frame) { fn(f.Req) })
}

// DrainFrames decodes every buffered frame — plain and tagged — in FIFO
// order, invoking fn for each, and empties the ring.
func (r *Ring) DrainFrames(fn func(f Frame)) {
	b := r.buf
	for len(b) > 0 {
		f, n, err := DecodeFrame(b)
		if err != nil {
			break // corrupted tail: drop it (cannot happen via Push)
		}
		b = b[n:]
		fn(f)
	}
	r.buf = r.buf[:0]
	r.ops = 0
	r.pages = 0
}
