package hypercall

import (
	"testing"
	"time"

	"doubledecker/internal/cleancache"
	"doubledecker/internal/fault"
)

// raBackend wraps seqBackend with READ_AHEAD support and an optional
// per-key get latency, for driving the staging and pipelining paths.
type raBackend struct {
	*seqBackend
	getLat map[cleancache.Key]time.Duration
}

func newRABackend() *raBackend {
	return &raBackend{seqBackend: newSeqBackend()}
}

func (b *raBackend) Dispatch(now time.Duration, req cleancache.Request) cleancache.Response {
	switch req.Op {
	case cleancache.OpReadAhead:
		b.ops = append(b.ops, req)
		resp := cleancache.Response{Op: req.Op, Latency: 300 * time.Nanosecond}
		for i := int64(0); i < req.Count; i++ {
			key := cleancache.Key{Pool: req.Key.Pool, Inode: req.Key.Inode, Block: req.Key.Block + i}
			if !b.pools[key.Pool][key] {
				break
			}
			delete(b.pools[key.Pool], key)
			resp.Count++
		}
		resp.Ok = resp.Count > 0
		return resp
	case cleancache.OpGet:
		if d, ok := b.getLat[req.Key]; ok {
			resp := b.seqBackend.Dispatch(now, req)
			resp.Latency = d
			return resp
		}
	}
	return b.seqBackend.Dispatch(now, req)
}

func get(pool cleancache.PoolID, inode uint64, block int64) cleancache.Request {
	return cleancache.Request{
		Op: cleancache.OpGet, VM: 1,
		Key: cleancache.Key{Pool: pool, Inode: inode, Block: block},
	}
}

func readAhead(pool cleancache.PoolID, inode uint64, block, count int64) cleancache.Request {
	return cleancache.Request{
		Op: cleancache.OpReadAhead, VM: 1,
		Key:   cleancache.Key{Pool: pool, Inode: inode, Block: block},
		Count: count,
	}
}

func TestAsyncGetsShareOneCrossing(t *testing.T) {
	be := newRABackend()
	tr := NewTransport(be, Options{AsyncGets: true})
	pool := newPool(t, tr)
	for b := int64(0); b < 4; b++ {
		tr.Submit(0, put(pool, 1, b))
	}
	tr.Flush(0)

	callsBefore := tr.Stats().Calls
	var pending []*PendingGet
	for b := int64(0); b < 4; b++ {
		pg, lat := tr.SubmitAsync(0, get(pool, 1, b))
		if lat != 0 {
			t.Fatalf("block %d: submission charged %v with a non-full ring", b, lat)
		}
		pending = append(pending, pg)
	}
	tr.Flush(0)

	s := tr.Stats()
	if got := s.Calls - callsBefore; got != 1 {
		t.Fatalf("4 async gets took %d crossings, want 1", got)
	}
	if s.AsyncGets != 4 {
		t.Fatalf("AsyncGets = %d, want 4", s.AsyncGets)
	}
	// All four completions share the crossing and dispatch at the same
	// pipelined instant: each costs one batch crossing plus its own
	// backend latency, far below four serialized sync crossings.
	crossing := DefaultCallCost + 4*DefaultPageCopyCost
	for i, pg := range pending {
		resp := tr.Await(0, pg)
		if !resp.Ok {
			t.Fatalf("get %d missed", i)
		}
		if want := crossing + 300*time.Nanosecond; resp.Latency != want {
			t.Fatalf("get %d latency = %v, want %v", i, resp.Latency, want)
		}
	}
	// Sync baseline for comparison: each get pays its own crossing.
	syncPer := DefaultCallCost + DefaultPageCopyCost + 300*time.Nanosecond
	if all := crossing + 300*time.Nanosecond; all >= 4*syncPer {
		t.Fatalf("async batch (%v) not faster than 4 sync gets (%v)", all, 4*syncPer)
	}
}

func TestTaggedFramesPreserveFIFO(t *testing.T) {
	// An async get keeps its ring position: the backend must observe the
	// exact submission order even though the get's completion is
	// demultiplexed separately.
	be := newRABackend()
	tr := NewTransport(be, Options{AsyncGets: true})
	pool := newPool(t, tr)
	opsBefore := len(be.ops)

	tr.Submit(0, put(pool, 1, 0))
	pg, _ := tr.SubmitAsync(0, get(pool, 1, 0))
	tr.Submit(0, put(pool, 1, 1))
	tr.Submit(0, cleancache.Request{
		Op: cleancache.OpFlushPage, VM: 1,
		Key: cleancache.Key{Pool: pool, Inode: 1, Block: 1},
	})
	tr.Flush(0)

	if resp := tr.Await(0, pg); !resp.Ok {
		t.Fatal("get behind a buffered put of the same key missed: FIFO broken")
	}
	want := []cleancache.OpCode{cleancache.OpPut, cleancache.OpGet, cleancache.OpPut, cleancache.OpFlushPage}
	got := be.ops[opsBefore:]
	if len(got) != len(want) {
		t.Fatalf("backend saw %d ops, want %d", len(got), len(want))
	}
	for i, req := range got {
		if req.Op != want[i] {
			t.Fatalf("backend op %d = %v, want %v", i, req.Op, want[i])
		}
	}
}

func TestAsyncCompletionsLandOutOfOrder(t *testing.T) {
	be := newRABackend()
	tr := NewTransport(be, Options{AsyncGets: true})
	pool := newPool(t, tr)
	tr.Submit(0, put(pool, 1, 0))
	tr.Submit(0, put(pool, 1, 1))
	tr.Flush(0)
	be.getLat = map[cleancache.Key]time.Duration{
		{Pool: pool, Inode: 1, Block: 0}: 10 * time.Microsecond,
		{Pool: pool, Inode: 1, Block: 1}: 300 * time.Nanosecond,
	}

	slow, _ := tr.SubmitAsync(0, get(pool, 1, 0))
	fast, _ := tr.SubmitAsync(0, get(pool, 1, 1))
	tr.Flush(0)

	slowResp := tr.Await(0, slow)
	fastResp := tr.Await(0, fast)
	if !slowResp.Ok || !fastResp.Ok {
		t.Fatalf("gets missed: slow %+v fast %+v", slowResp, fastResp)
	}
	if fastResp.Latency >= slowResp.Latency {
		t.Fatalf("later-submitted fast get (%v) did not complete before slow get (%v)",
			fastResp.Latency, slowResp.Latency)
	}
}

func TestReadAheadServesGetsWithoutCrossing(t *testing.T) {
	be := newRABackend()
	tr := NewTransport(be, Options{})
	pool := newPool(t, tr)
	for b := int64(0); b < 8; b++ {
		tr.Submit(0, put(pool, 1, b))
	}
	tr.Flush(0)

	tr.Submit(0, readAhead(pool, 1, 0, 8))
	tr.Flush(0)
	if s := tr.Stats(); s.StagedFills != 8 || s.StagedPages != 8 {
		t.Fatalf("readahead staged %d blocks (%d live), want 8", s.StagedFills, s.StagedPages)
	}

	callsBefore := tr.Stats().Calls
	at := time.Millisecond // past the fill's ready-at
	for b := int64(0); b < 8; b++ {
		resp := tr.Submit(at, get(pool, 1, b))
		if !resp.Ok {
			t.Fatalf("staged block %d missed", b)
		}
		if resp.Latency != 0 {
			t.Fatalf("staged block %d charged %v after fill completed", b, resp.Latency)
		}
	}
	s := tr.Stats()
	if got := s.Calls - callsBefore; got != 0 {
		t.Fatalf("staged gets paid %d crossings, want 0", got)
	}
	if s.StagedHits != 8 || s.StagedPages != 0 {
		t.Fatalf("StagedHits = %d, StagedPages = %d, want 8 and 0", s.StagedHits, s.StagedPages)
	}
	// A get before the fill completes waits for it rather than crossing.
	tr.Submit(at, put(pool, 2, 0))
	tr.Flush(at)
	tr.Submit(at, readAhead(pool, 2, 0, 1))
	flat := tr.Flush(at)
	resp := tr.Submit(at+flat, get(pool, 2, 0))
	if !resp.Ok || resp.Latency <= 0 {
		t.Fatalf("get during fill: %+v, want a hit with a positive wait", resp)
	}
}

func TestReadAheadAndTaggedGetInOneBatch(t *testing.T) {
	// A readahead and a get for a block it stages ride the same crossing:
	// the drain must serve the get from the freshly staged block, not
	// dispatch it against a backend that just extracted the object.
	be := newRABackend()
	tr := NewTransport(be, Options{AsyncGets: true})
	pool := newPool(t, tr)
	for b := int64(0); b < 4; b++ {
		tr.Submit(0, put(pool, 1, b))
	}
	tr.Flush(0)
	opsBefore := len(be.ops)

	tr.Submit(0, readAhead(pool, 1, 0, 4))
	pg, _ := tr.SubmitAsync(0, get(pool, 1, 2))
	tr.Flush(0)

	if resp := tr.Await(0, pg); !resp.Ok {
		t.Fatal("get behind same-batch readahead missed")
	}
	for _, req := range be.ops[opsBefore:] {
		if req.Op == cleancache.OpGet {
			t.Fatal("get dispatched to the backend despite same-batch staging")
		}
	}
	if s := tr.Stats(); s.StagedHits != 1 {
		t.Fatalf("StagedHits = %d, want 1", s.StagedHits)
	}
}

func TestStagedInvalidation(t *testing.T) {
	be := newRABackend()
	tr := NewTransport(be, Options{})
	pool := newPool(t, tr)
	for b := int64(0); b < 4; b++ {
		tr.Submit(0, put(pool, 1, b))
	}
	tr.Submit(0, put(pool, 2, 0))
	tr.Flush(0)
	tr.Submit(0, readAhead(pool, 1, 0, 4))
	tr.Submit(0, readAhead(pool, 2, 0, 1))
	tr.Flush(0)
	if s := tr.Stats(); s.StagedPages != 5 {
		t.Fatalf("StagedPages = %d, want 5", s.StagedPages)
	}

	// A put overwrites one staged block.
	tr.Submit(0, put(pool, 1, 3))
	if s := tr.Stats(); s.StagedPages != 4 {
		t.Fatalf("after put: StagedPages = %d, want 4", s.StagedPages)
	}
	// A flush of the inode drops its remaining staged blocks.
	tr.Submit(0, cleancache.Request{
		Op: cleancache.OpFlushInode, VM: 1,
		Key: cleancache.Key{Pool: pool, Inode: 1},
	})
	if s := tr.Stats(); s.StagedPages != 1 {
		t.Fatalf("after flush-inode: StagedPages = %d, want 1", s.StagedPages)
	}
	// Destroying the pool empties it.
	tr.Submit(0, cleancache.Request{
		Op: cleancache.OpDestroyCgroup, VM: 1,
		Key: cleancache.Key{Pool: pool},
	})
	if s := tr.Stats(); s.StagedPages != 0 {
		t.Fatalf("after destroy: StagedPages = %d, want 0", s.StagedPages)
	}
}

func TestStagingBufferBounded(t *testing.T) {
	be := newRABackend()
	tr := NewTransport(be, Options{StagingPages: 4})
	pool := newPool(t, tr)
	for b := int64(0); b < 8; b++ {
		tr.Submit(0, put(pool, 1, b))
	}
	tr.Flush(0)
	tr.Submit(0, readAhead(pool, 1, 0, 8))
	tr.Flush(0)

	s := tr.Stats()
	if s.StagedPages != 4 {
		t.Fatalf("StagedPages = %d, want cap 4", s.StagedPages)
	}
	if s.StagedEvictions != 4 {
		t.Fatalf("StagedEvictions = %d, want 4", s.StagedEvictions)
	}
	// FIFO eviction: the oldest blocks (0..3) were pushed out, 4..7 live.
	for b := int64(4); b < 8; b++ {
		if resp := tr.Submit(time.Millisecond, get(pool, 1, b)); !resp.Ok {
			t.Fatalf("block %d evicted, want newest 4 retained", b)
		}
	}
}

func TestZeroCopyMapsBulkPages(t *testing.T) {
	be := newRABackend()
	tr := NewTransport(be, Options{AsyncGets: true, ZeroCopy: true})
	pool := newPool(t, tr)
	for b := int64(0); b < 4; b++ {
		tr.Submit(0, put(pool, 1, b))
	}
	tr.Flush(0)
	copiedAfterPuts := tr.Stats().PagesCopied

	// Readahead fill maps its blocks instead of copying them.
	tr.Submit(0, readAhead(pool, 1, 0, 2))
	tr.Flush(0)
	s := tr.Stats()
	if s.PagesMapped != 2 {
		t.Fatalf("PagesMapped after fill = %d, want 2", s.PagesMapped)
	}
	if s.PagesCopied != copiedAfterPuts {
		t.Fatalf("zero-copy fill copied pages: %d -> %d", copiedAfterPuts, s.PagesCopied)
	}
	// A tagged get's answer page is mapped at completion and reserves no
	// batch page budget.
	pg, _ := tr.SubmitAsync(0, get(pool, 1, 3))
	tr.Flush(0)
	if resp := tr.Await(0, pg); !resp.Ok {
		t.Fatal("zero-copy get missed")
	}
	s = tr.Stats()
	if s.PagesMapped != 3 {
		t.Fatalf("PagesMapped after get = %d, want 3", s.PagesMapped)
	}
	if s.PagesCopied != copiedAfterPuts {
		t.Fatalf("zero-copy get copied pages: %d -> %d", copiedAfterPuts, s.PagesCopied)
	}
}

func TestFlushRequeueCapSurfacesAbandonment(t *testing.T) {
	// Satellite regression: a persistent transport fault must not
	// re-queue the same flush forever. After MaxRequeues abandoned
	// crossings the flush is dropped and surfaced as FlushAbandoned.
	inj := fault.New(fault.Plan{Rules: []fault.Rule{
		{Site: SiteBatch, Kind: fault.KindDrop, To: time.Second},
	}})
	be := newRABackend()
	tr := NewTransport(be, Options{
		Faults:      inj,
		MaxAttempts: 2,
		MaxRequeues: 2,
		RetryBase:   time.Microsecond,
		RetryCap:    time.Microsecond,
	})

	tr.Submit(0, put(1, 1, 0))
	tr.Submit(0, cleancache.Request{
		Op: cleancache.OpFlushPage, VM: 1,
		Key: cleancache.Key{Pool: 1, Inode: 1, Block: 0},
	})

	tr.Flush(0) // abandon #1: put dropped, flush requeued (gen 1)
	if s := tr.Stats(); s.Pending != 1 || s.RequeuedOps != 1 || s.FlushAbandoned != 0 {
		t.Fatalf("after abandon 1: %+v", s)
	}
	tr.Flush(0) // abandon #2: flush requeued (gen 2)
	if s := tr.Stats(); s.Pending != 1 || s.RequeuedOps != 2 || s.FlushAbandoned != 0 {
		t.Fatalf("after abandon 2: %+v", s)
	}
	tr.Flush(0) // abandon #3: gen 3 > MaxRequeues, flush dropped
	s := tr.Stats()
	if s.Pending != 0 {
		t.Fatalf("flush still pending after exceeding requeue cap: %+v", s)
	}
	if s.FlushAbandoned != 1 {
		t.Fatalf("FlushAbandoned = %d, want 1", s.FlushAbandoned)
	}
	if s.DroppedBatches != 3 {
		t.Fatalf("DroppedBatches = %d, want 3", s.DroppedBatches)
	}
	// The transport is live again: nothing buffered, later ops proceed.
	if lat := tr.Flush(2 * time.Second); lat != 0 {
		t.Fatalf("empty flush charged %v", lat)
	}
}

func TestRequeueGenerationsResetOnDelivery(t *testing.T) {
	// A flush that survives one abandoned crossing and then delivers must
	// clear its generation: the cap counts consecutive failures, not
	// lifetime ones.
	inj := fault.New(fault.Plan{Rules: []fault.Rule{
		{Site: SiteBatch, Kind: fault.KindDrop, To: time.Millisecond},
	}})
	be := newRABackend()
	tr := NewTransport(be, Options{
		Faults:      inj,
		MaxAttempts: 2,
		MaxRequeues: 1,
		RetryBase:   time.Microsecond,
		RetryCap:    time.Microsecond,
	})
	tr.Submit(0, cleancache.Request{
		Op: cleancache.OpFlushPage, VM: 1,
		Key: cleancache.Key{Pool: 1, Inode: 1, Block: 0},
	})
	tr.Flush(0) // abandoned, requeued at gen 1 == MaxRequeues
	if s := tr.Stats(); s.Pending != 1 {
		t.Fatalf("flush not requeued: %+v", s)
	}
	tr.Flush(2 * time.Millisecond) // outside the fault window: delivered
	if s := tr.Stats(); s.Pending != 0 || s.FlushAbandoned != 0 || s.Batches != 1 {
		t.Fatalf("flush not delivered cleanly: %+v", s)
	}
}

func TestAbandonedAsyncGetIsMissNotLoss(t *testing.T) {
	inj := fault.New(fault.Plan{Rules: []fault.Rule{
		{Site: SiteBatch, Kind: fault.KindDrop, From: time.Millisecond, To: 2 * time.Millisecond},
	}})
	be := newRABackend()
	tr := NewTransport(be, Options{
		AsyncGets:   true,
		Faults:      inj,
		MaxAttempts: 2,
		RetryBase:   time.Microsecond,
		RetryCap:    time.Microsecond,
	})
	pool := newPool(t, tr)
	tr.Submit(0, put(pool, 1, 0))
	tr.Flush(0)

	pg, _ := tr.SubmitAsync(time.Millisecond, get(pool, 1, 0))
	tr.Flush(time.Millisecond) // inside the drop window: batch abandoned
	resp := tr.Await(time.Millisecond, pg)
	if resp.Ok {
		t.Fatal("abandoned async get reported a hit")
	}
	if s := tr.Stats(); s.SyncFailures != 1 {
		t.Fatalf("SyncFailures = %d, want 1", s.SyncFailures)
	}
	// Miss, not loss: the object is still cached and a later get hits.
	resp = tr.Submit(3*time.Millisecond, get(pool, 1, 0))
	if !resp.Ok {
		t.Fatal("object lost after abandoned get crossing")
	}
}

// clockBackend records the virtual time every op is dispatched at, for
// pinning the transport's dispatch-timestamp arithmetic.
type clockBackend struct {
	*raBackend
	at []time.Duration
}

func (b *clockBackend) Dispatch(now time.Duration, req cleancache.Request) cleancache.Response {
	b.at = append(b.at, now)
	return b.raBackend.Dispatch(now, req)
}

func TestSyncDispatchClockInvariant(t *testing.T) {
	// Satellite regression: retries and backoff must advance the dispatch
	// timestamp exactly as they advance the guest-visible latency. For
	// every synchronous op, dispatch-time − submit-time must equal the
	// response latency minus the backend's own contribution, under
	// corruption-induced retries and latency spikes alike.
	inj := fault.New(fault.Plan{Rules: []fault.Rule{
		{Site: SiteCall, Kind: fault.KindCorrupt, Nth: 3},
		{Site: SiteCall, Kind: fault.KindLatency, Nth: 2, Delay: 5 * time.Microsecond},
	}})
	be := &clockBackend{raBackend: newRABackend()}
	tr := NewTransport(be, Options{Faults: inj})
	pool := newPool(t, tr)
	tr.Submit(0, put(pool, 1, 0))
	tr.Flush(0)
	be.at = be.at[:0]

	for i := 0; i < 10; i++ {
		now := time.Duration(i) * time.Millisecond
		n := len(be.at)
		resp := tr.Submit(now, get(pool, 9, int64(i))) // cold keys: always dispatched
		if len(be.at) != n+1 {
			t.Fatalf("op %d: dispatched %d times, want 1", i, len(be.at)-n)
		}
		backendLat := 300 * time.Nanosecond
		if gotTransport, wantTransport := resp.Latency-backendLat, be.at[n]-now; gotTransport != wantTransport {
			t.Fatalf("op %d: transport latency %v but dispatch advanced %v (resp %+v)",
				i, gotTransport, wantTransport, resp)
		}
	}
}

func TestDrainInvalidatesStagedBehindReadAhead(t *testing.T) {
	// Regression: an invalidating op submitted while a READ_AHEAD
	// covering the same key is still buffered finds nothing to
	// invalidate at Submit; the drain then dispatches the readahead
	// first (FIFO) and stages the pre-op content. The op dispatching
	// behind it must kill those staged blocks — a later get served from
	// the staging buffer would violate get-after-flush.
	be := newRABackend()
	tr := NewTransport(be, Options{})
	pool := newPool(t, tr)
	for b := int64(0); b < 2; b++ {
		tr.Submit(0, put(pool, 1, b))
	}
	tr.Flush(0)

	// FLUSH_PAGE buffered behind the readahead that stages its key.
	tr.Submit(0, readAhead(pool, 1, 0, 2))
	tr.Submit(0, cleancache.Request{
		Op: cleancache.OpFlushPage, VM: 1,
		Key: cleancache.Key{Pool: pool, Inode: 1, Block: 0},
	})
	tr.Flush(0)
	if resp := tr.Submit(time.Millisecond, get(pool, 1, 0)); resp.Ok {
		t.Fatal("get after flush served a stale staged block")
	}
	if resp := tr.Submit(time.Millisecond, get(pool, 1, 1)); !resp.Ok {
		t.Fatal("unflushed staged block lost")
	}

	// FLUSH_INODE behind the readahead drops every staged block of the
	// inode.
	for b := int64(0); b < 2; b++ {
		tr.Submit(0, put(pool, 2, b))
	}
	tr.Flush(0)
	tr.Submit(0, readAhead(pool, 2, 0, 2))
	tr.Submit(0, cleancache.Request{
		Op: cleancache.OpFlushInode, VM: 1,
		Key: cleancache.Key{Pool: pool, Inode: 2},
	})
	tr.Flush(0)
	if s := tr.Stats(); s.StagedPages != 0 {
		t.Fatalf("StagedPages = %d after flush-inode behind readahead, want 0", s.StagedPages)
	}
	if resp := tr.Submit(time.Millisecond, get(pool, 2, 0)); resp.Ok {
		t.Fatal("get after flush-inode served a stale staged block")
	}

	// A PUT behind the readahead overwrites the key: the stale staged
	// copy dies and the get dispatches against the backend's fresh one.
	tr.Submit(0, put(pool, 3, 0))
	tr.Flush(0)
	tr.Submit(0, readAhead(pool, 3, 0, 1))
	tr.Submit(0, put(pool, 3, 0))
	tr.Flush(0)
	opsBefore := len(be.ops)
	if resp := tr.Submit(time.Millisecond, get(pool, 3, 0)); !resp.Ok {
		t.Fatal("get after put behind readahead missed")
	}
	if len(be.ops) == opsBefore {
		t.Fatal("get served from staging instead of the put's fresh copy")
	}
}

func TestSyncOpInvalidatesBlocksStagedByItsOwnDrain(t *testing.T) {
	// A synchronous invalidating op (DESTROY_CGROUP) barrier-drains the
	// ring first; a buffered readahead in that drain stages blocks the
	// destroy then invalidates. The submit-time invalidation ran before
	// the fills existed, so the post-drain pass must remove them.
	be := newRABackend()
	tr := NewTransport(be, Options{})
	pool := newPool(t, tr)
	for b := int64(0); b < 2; b++ {
		tr.Submit(0, put(pool, 1, b))
	}
	tr.Flush(0)
	tr.Submit(0, readAhead(pool, 1, 0, 2))
	tr.Submit(0, cleancache.Request{
		Op: cleancache.OpDestroyCgroup, VM: 1,
		Key: cleancache.Key{Pool: pool},
	})
	if s := tr.Stats(); s.StagedPages != 0 {
		t.Fatalf("StagedPages = %d after destroy behind readahead, want 0", s.StagedPages)
	}
	if resp := tr.Submit(time.Millisecond, get(pool, 1, 0)); resp.Ok {
		t.Fatal("get after destroy served a stale staged block")
	}
}

func TestUnbatchedReadAheadStagesBlocks(t *testing.T) {
	// Regression: on an unbatched transport READ_AHEAD takes the
	// synchronous path. The backend extracts the blocks under the
	// exclusive protocol, so the response must fill the staging buffer —
	// discarding it would silently evict up to Count cached blocks and
	// turn the following gets into guaranteed misses.
	be := newRABackend()
	tr := NewTransport(be, Options{Unbatched: true})
	pool := newPool(t, tr)
	for b := int64(0); b < 4; b++ {
		tr.Submit(0, put(pool, 1, b))
	}
	if resp := tr.Submit(0, readAhead(pool, 1, 0, 4)); !resp.Ok {
		t.Fatalf("unbatched readahead failed: %+v", resp)
	}
	s := tr.Stats()
	if s.StagedFills != 4 || s.StagedPages != 4 {
		t.Fatalf("unbatched readahead staged %d blocks (%d live), want 4", s.StagedFills, s.StagedPages)
	}
	callsBefore := s.Calls
	for b := int64(0); b < 4; b++ {
		if resp := tr.Submit(time.Millisecond, get(pool, 1, b)); !resp.Ok {
			t.Fatalf("block %d lost by unbatched readahead", b)
		}
	}
	if got := tr.Stats().Calls - callsBefore; got != 0 {
		t.Fatalf("staged gets paid %d crossings, want 0", got)
	}
	// Invalidation still applies on the unbatched path: stage again,
	// flush one key synchronously, and the staged copy must die.
	for b := int64(0); b < 2; b++ {
		tr.Submit(0, put(pool, 2, b))
	}
	tr.Submit(0, readAhead(pool, 2, 0, 2))
	tr.Submit(0, cleancache.Request{
		Op: cleancache.OpFlushPage, VM: 1,
		Key: cleancache.Key{Pool: pool, Inode: 2, Block: 0},
	})
	if resp := tr.Submit(time.Millisecond, get(pool, 2, 0)); resp.Ok {
		t.Fatal("unbatched get after flush served a stale staged block")
	}
	if resp := tr.Submit(time.Millisecond, get(pool, 2, 1)); !resp.Ok {
		t.Fatal("unbatched unflushed staged block lost")
	}
}
