package hypercall

import (
	"encoding/binary"
	"fmt"
	"time"

	"doubledecker/internal/cgroup"
	"doubledecker/internal/cleancache"
)

// Wire layout of one encoded request frame (all integers varint-encoded;
// signed fields zigzag):
//
//	byte 0        op code
//	varint        vm id
//	per-op fields:
//	  GET, FLUSH_PAGE   pool, inode, block
//	  PUT               pool, inode, block, content
//	  FLUSH_INODE       pool, inode
//	  CREATE_CGROUP     name-len, name bytes, spec.store, spec.weight
//	  DESTROY_CGROUP    pool
//	  SET_CG_WEIGHT     pool, spec.store, spec.weight
//	  MIGRATE_OBJECT    pool (source), to-pool, inode
//	  GET_STATS         pool
//	  READ_AHEAD        pool, inode, block, count
//
// The page payload of GET/PUT is not part of the frame: in the model the
// page travels via the per-page copy cost; on a real wire it would ride
// in a sidecar buffer indexed by frame position.
//
// Two framing extensions carry the asynchronous get pipeline:
//
//	0xF8  tagged request   marker, varint tag, then a request frame
//	0xF9  completion       marker, varint tag, ok byte, count, ready-at
//
// A tagged request is an in-flight get whose answer arrives out of order
// on the completion path; the tag demultiplexes the completion back to
// its waiter. Both markers sit outside the OpCode value range, so
// DecodeRequest rejects them and plain frame streams are unaffected.

// FNV-1a (64-bit) parameters.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// Checksum is the FNV-1a digest the transport stamps on every crossing.
// The receive side recomputes it over the delivered frames and rejects
// the whole batch on mismatch, turning in-flight corruption into a clean
// retry instead of decoding garbage.
func Checksum(b []byte) uint64 {
	h := fnvOffset
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

// appendUint appends a uvarint.
func appendUint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// appendInt appends a zigzag varint.
func appendInt(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

// EncodeRequest appends the wire encoding of req to buf and returns the
// extended slice.
func EncodeRequest(buf []byte, req cleancache.Request) []byte {
	buf = append(buf, byte(req.Op))
	buf = appendInt(buf, int64(req.VM))
	switch req.Op {
	case cleancache.OpGet, cleancache.OpFlushPage:
		buf = appendInt(buf, int64(req.Key.Pool))
		buf = appendUint(buf, req.Key.Inode)
		buf = appendInt(buf, req.Key.Block)
	case cleancache.OpPut:
		buf = appendInt(buf, int64(req.Key.Pool))
		buf = appendUint(buf, req.Key.Inode)
		buf = appendInt(buf, req.Key.Block)
		buf = appendUint(buf, req.Content)
	case cleancache.OpFlushInode:
		buf = appendInt(buf, int64(req.Key.Pool))
		buf = appendUint(buf, req.Key.Inode)
	case cleancache.OpCreateCgroup:
		buf = appendUint(buf, uint64(len(req.Name)))
		buf = append(buf, req.Name...)
		buf = appendUint(buf, uint64(req.Spec.Store))
		buf = appendInt(buf, int64(req.Spec.Weight))
	case cleancache.OpDestroyCgroup, cleancache.OpGetStats:
		buf = appendInt(buf, int64(req.Key.Pool))
	case cleancache.OpSetCgWeight:
		buf = appendInt(buf, int64(req.Key.Pool))
		buf = appendUint(buf, uint64(req.Spec.Store))
		buf = appendInt(buf, int64(req.Spec.Weight))
	case cleancache.OpMigrateObject:
		buf = appendInt(buf, int64(req.Key.Pool))
		buf = appendInt(buf, int64(req.To))
		buf = appendUint(buf, req.Key.Inode)
	case cleancache.OpReadAhead:
		buf = appendInt(buf, int64(req.Key.Pool))
		buf = appendUint(buf, req.Key.Inode)
		buf = appendInt(buf, req.Key.Block)
		buf = appendInt(buf, req.Count)
	}
	return buf
}

// decoder walks one frame.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) uint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.err = fmt.Errorf("hypercall: truncated uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) int() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.err = fmt.Errorf("hypercall: truncated varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) bytes(n uint64) []byte {
	if d.err != nil {
		return nil
	}
	if uint64(len(d.b)-d.off) < n {
		d.err = fmt.Errorf("hypercall: truncated payload at offset %d", d.off)
		return nil
	}
	out := d.b[d.off : d.off+int(n)]
	d.off += int(n)
	return out
}

// DecodeRequest decodes one frame from the front of b, returning the
// request and the number of bytes consumed.
func DecodeRequest(b []byte) (cleancache.Request, int, error) {
	if len(b) == 0 {
		return cleancache.Request{}, 0, fmt.Errorf("hypercall: empty frame")
	}
	op := cleancache.OpCode(b[0])
	if !op.Valid() {
		return cleancache.Request{}, 0, fmt.Errorf("hypercall: unknown op code %d", b[0])
	}
	d := &decoder{b: b, off: 1}
	req := cleancache.Request{Op: op, VM: cleancache.VMID(d.int())}
	switch op {
	case cleancache.OpGet, cleancache.OpFlushPage:
		req.Key.Pool = cleancache.PoolID(d.int())
		req.Key.Inode = d.uint()
		req.Key.Block = d.int()
	case cleancache.OpPut:
		req.Key.Pool = cleancache.PoolID(d.int())
		req.Key.Inode = d.uint()
		req.Key.Block = d.int()
		req.Content = d.uint()
	case cleancache.OpFlushInode:
		req.Key.Pool = cleancache.PoolID(d.int())
		req.Key.Inode = d.uint()
	case cleancache.OpCreateCgroup:
		req.Name = string(d.bytes(d.uint()))
		req.Spec.Store = cgroup.StoreType(d.uint())
		req.Spec.Weight = int(d.int())
	case cleancache.OpDestroyCgroup, cleancache.OpGetStats:
		req.Key.Pool = cleancache.PoolID(d.int())
	case cleancache.OpSetCgWeight:
		req.Key.Pool = cleancache.PoolID(d.int())
		req.Spec.Store = cgroup.StoreType(d.uint())
		req.Spec.Weight = int(d.int())
	case cleancache.OpMigrateObject:
		req.Key.Pool = cleancache.PoolID(d.int())
		req.To = cleancache.PoolID(d.int())
		req.Key.Inode = d.uint()
	case cleancache.OpReadAhead:
		req.Key.Pool = cleancache.PoolID(d.int())
		req.Key.Inode = d.uint()
		req.Key.Block = d.int()
		req.Count = d.int()
	}
	if d.err != nil {
		return cleancache.Request{}, 0, d.err
	}
	return req, d.off, nil
}

// Frame markers for the async get pipeline. Both are above the OpCode
// value range so a tagged or completion frame can never be mistaken for
// a plain request frame (and vice versa).
const (
	markerTagged     byte = 0xF8
	markerCompletion byte = 0xF9
)

// Frame is one decoded ring entry: a plain request, or a tagged request
// whose completion will arrive out of order.
type Frame struct {
	Tagged bool
	Tag    uint64
	Req    cleancache.Request
}

// EncodeTagged appends a tagged request frame — the in-flight half of an
// asynchronous get — and returns the extended slice.
func EncodeTagged(buf []byte, tag uint64, req cleancache.Request) []byte {
	buf = append(buf, markerTagged)
	buf = appendUint(buf, tag)
	return EncodeRequest(buf, req)
}

// DecodeFrame decodes one ring entry from the front of b: either a plain
// request frame or a tagged one. Returns the frame and the bytes
// consumed.
func DecodeFrame(b []byte) (Frame, int, error) {
	if len(b) == 0 {
		return Frame{}, 0, fmt.Errorf("hypercall: empty frame")
	}
	if b[0] != markerTagged {
		req, n, err := DecodeRequest(b)
		return Frame{Req: req}, n, err
	}
	d := &decoder{b: b, off: 1}
	tag := d.uint()
	if d.err != nil {
		return Frame{}, 0, d.err
	}
	req, n, err := DecodeRequest(b[d.off:])
	if err != nil {
		return Frame{}, 0, err
	}
	return Frame{Tagged: true, Tag: tag, Req: req}, d.off + n, nil
}

// Completion is the hypervisor→guest half of an asynchronous get: the
// tag names the waiter, Ok the verdict, Count the blocks a READ_AHEAD
// extracted, and At the virtual time the answer is ready for the guest.
type Completion struct {
	Tag   uint64
	Ok    bool
	Count int64
	At    time.Duration
}

// EncodeCompletion appends the wire encoding of c and returns the
// extended slice.
func EncodeCompletion(buf []byte, c Completion) []byte {
	buf = append(buf, markerCompletion)
	buf = appendUint(buf, c.Tag)
	ok := byte(0)
	if c.Ok {
		ok = 1
	}
	buf = append(buf, ok)
	buf = appendInt(buf, c.Count)
	buf = appendInt(buf, int64(c.At))
	return buf
}

// DecodeCompletion decodes one completion frame from the front of b,
// returning the completion and the bytes consumed.
func DecodeCompletion(b []byte) (Completion, int, error) {
	if len(b) == 0 {
		return Completion{}, 0, fmt.Errorf("hypercall: empty completion")
	}
	if b[0] != markerCompletion {
		return Completion{}, 0, fmt.Errorf("hypercall: not a completion frame (marker %#x)", b[0])
	}
	d := &decoder{b: b, off: 1}
	c := Completion{Tag: d.uint()}
	switch okb := d.bytes(1); {
	case d.err != nil:
	case okb[0] > 1:
		d.err = fmt.Errorf("hypercall: bad completion verdict %d", okb[0])
	default:
		c.Ok = okb[0] == 1
	}
	c.Count = d.int()
	c.At = time.Duration(d.int())
	if d.err != nil {
		return Completion{}, 0, d.err
	}
	return c, d.off, nil
}
