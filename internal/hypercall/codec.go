package hypercall

import (
	"encoding/binary"
	"fmt"

	"doubledecker/internal/cgroup"
	"doubledecker/internal/cleancache"
)

// Wire layout of one encoded request frame (all integers varint-encoded;
// signed fields zigzag):
//
//	byte 0        op code
//	varint        vm id
//	per-op fields:
//	  GET, FLUSH_PAGE   pool, inode, block
//	  PUT               pool, inode, block, content
//	  FLUSH_INODE       pool, inode
//	  CREATE_CGROUP     name-len, name bytes, spec.store, spec.weight
//	  DESTROY_CGROUP    pool
//	  SET_CG_WEIGHT     pool, spec.store, spec.weight
//	  MIGRATE_OBJECT    pool (source), to-pool, inode
//	  GET_STATS         pool
//
// The page payload of GET/PUT is not part of the frame: in the model the
// page travels via the per-page copy cost; on a real wire it would ride
// in a sidecar buffer indexed by frame position.

// FNV-1a (64-bit) parameters.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// Checksum is the FNV-1a digest the transport stamps on every crossing.
// The receive side recomputes it over the delivered frames and rejects
// the whole batch on mismatch, turning in-flight corruption into a clean
// retry instead of decoding garbage.
func Checksum(b []byte) uint64 {
	h := fnvOffset
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

// appendUint appends a uvarint.
func appendUint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// appendInt appends a zigzag varint.
func appendInt(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

// EncodeRequest appends the wire encoding of req to buf and returns the
// extended slice.
func EncodeRequest(buf []byte, req cleancache.Request) []byte {
	buf = append(buf, byte(req.Op))
	buf = appendInt(buf, int64(req.VM))
	switch req.Op {
	case cleancache.OpGet, cleancache.OpFlushPage:
		buf = appendInt(buf, int64(req.Key.Pool))
		buf = appendUint(buf, req.Key.Inode)
		buf = appendInt(buf, req.Key.Block)
	case cleancache.OpPut:
		buf = appendInt(buf, int64(req.Key.Pool))
		buf = appendUint(buf, req.Key.Inode)
		buf = appendInt(buf, req.Key.Block)
		buf = appendUint(buf, req.Content)
	case cleancache.OpFlushInode:
		buf = appendInt(buf, int64(req.Key.Pool))
		buf = appendUint(buf, req.Key.Inode)
	case cleancache.OpCreateCgroup:
		buf = appendUint(buf, uint64(len(req.Name)))
		buf = append(buf, req.Name...)
		buf = appendUint(buf, uint64(req.Spec.Store))
		buf = appendInt(buf, int64(req.Spec.Weight))
	case cleancache.OpDestroyCgroup, cleancache.OpGetStats:
		buf = appendInt(buf, int64(req.Key.Pool))
	case cleancache.OpSetCgWeight:
		buf = appendInt(buf, int64(req.Key.Pool))
		buf = appendUint(buf, uint64(req.Spec.Store))
		buf = appendInt(buf, int64(req.Spec.Weight))
	case cleancache.OpMigrateObject:
		buf = appendInt(buf, int64(req.Key.Pool))
		buf = appendInt(buf, int64(req.To))
		buf = appendUint(buf, req.Key.Inode)
	}
	return buf
}

// decoder walks one frame.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) uint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.err = fmt.Errorf("hypercall: truncated uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) int() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.err = fmt.Errorf("hypercall: truncated varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) bytes(n uint64) []byte {
	if d.err != nil {
		return nil
	}
	if uint64(len(d.b)-d.off) < n {
		d.err = fmt.Errorf("hypercall: truncated payload at offset %d", d.off)
		return nil
	}
	out := d.b[d.off : d.off+int(n)]
	d.off += int(n)
	return out
}

// DecodeRequest decodes one frame from the front of b, returning the
// request and the number of bytes consumed.
func DecodeRequest(b []byte) (cleancache.Request, int, error) {
	if len(b) == 0 {
		return cleancache.Request{}, 0, fmt.Errorf("hypercall: empty frame")
	}
	op := cleancache.OpCode(b[0])
	if !op.Valid() {
		return cleancache.Request{}, 0, fmt.Errorf("hypercall: unknown op code %d", b[0])
	}
	d := &decoder{b: b, off: 1}
	req := cleancache.Request{Op: op, VM: cleancache.VMID(d.int())}
	switch op {
	case cleancache.OpGet, cleancache.OpFlushPage:
		req.Key.Pool = cleancache.PoolID(d.int())
		req.Key.Inode = d.uint()
		req.Key.Block = d.int()
	case cleancache.OpPut:
		req.Key.Pool = cleancache.PoolID(d.int())
		req.Key.Inode = d.uint()
		req.Key.Block = d.int()
		req.Content = d.uint()
	case cleancache.OpFlushInode:
		req.Key.Pool = cleancache.PoolID(d.int())
		req.Key.Inode = d.uint()
	case cleancache.OpCreateCgroup:
		req.Name = string(d.bytes(d.uint()))
		req.Spec.Store = cgroup.StoreType(d.uint())
		req.Spec.Weight = int(d.int())
	case cleancache.OpDestroyCgroup, cleancache.OpGetStats:
		req.Key.Pool = cleancache.PoolID(d.int())
	case cleancache.OpSetCgWeight:
		req.Key.Pool = cleancache.PoolID(d.int())
		req.Spec.Store = cgroup.StoreType(d.uint())
		req.Spec.Weight = int(d.int())
	case cleancache.OpMigrateObject:
		req.Key.Pool = cleancache.PoolID(d.int())
		req.To = cleancache.PoolID(d.int())
		req.Key.Inode = d.uint()
	}
	if d.err != nil {
		return cleancache.Request{}, 0, d.err
	}
	return req, d.off, nil
}
