package hypercall

import (
	"testing"

	"doubledecker/internal/cgroup"
	"doubledecker/internal/cleancache"
)

// FuzzDecodeBatch feeds arbitrary byte streams to the frame decoder the
// way Ring.Drain consumes them: frames decoded from the front until the
// stream is empty or rejected. The decoder must never panic, must make
// strict forward progress, and everything it accepts must re-encode to a
// frame that decodes to the same request — decode is a left inverse of
// encode on its entire accepted domain, not just on canonical output.
func FuzzDecodeBatch(f *testing.F) {
	// Seed corpus from the unit tests: every op's canonical frame, the
	// concatenated all-ops batch, and the pinned garbage cases.
	var batch []byte
	for _, op := range cleancache.OpCodes() {
		frame := EncodeRequest(nil, sampleRequest(op))
		f.Add(frame)
		batch = append(batch, frame...)
	}
	f.Add(batch)
	f.Add([]byte{})
	f.Add([]byte{0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		rest := data
		for len(rest) > 0 {
			req, n, err := DecodeRequest(rest)
			if err != nil {
				break
			}
			if n <= 0 || n > len(rest) {
				t.Fatalf("decode consumed %d of %d bytes", n, len(rest))
			}
			re := EncodeRequest(nil, req)
			req2, n2, err := DecodeRequest(re)
			if err != nil {
				t.Fatalf("re-encoded frame rejected: %v (req %+v)", err, req)
			}
			if n2 != len(re) {
				t.Fatalf("re-encoded frame consumed %d of %d bytes", n2, len(re))
			}
			if req2 != req {
				t.Fatalf("re-encode round trip:\n got %+v\nwant %+v", req2, req)
			}
			rest = rest[n:]
		}
	})
}

// FuzzCompletionStream feeds arbitrary byte streams to the completion
// decoder the way deliverCompletionsLocked consumes them: never panic,
// strict forward progress, and everything accepted must re-encode to a
// frame that decodes identically.
func FuzzCompletionStream(f *testing.F) {
	var stream []byte
	for _, c := range []Completion{
		{Tag: 0, Ok: false},
		{Tag: 1, Ok: true, Count: 1, At: 1800},
		{Tag: ^uint64(0), Ok: true, Count: -9, At: 1 << 40},
	} {
		frame := EncodeCompletion(nil, c)
		f.Add(frame)
		stream = append(stream, frame...)
	}
	f.Add(stream)
	f.Add([]byte{})
	f.Add([]byte{0xf9})
	f.Fuzz(func(t *testing.T, data []byte) {
		rest := data
		for len(rest) > 0 {
			c, n, err := DecodeCompletion(rest)
			if err != nil {
				break
			}
			if n <= 0 || n > len(rest) {
				t.Fatalf("decode consumed %d of %d bytes", n, len(rest))
			}
			re := EncodeCompletion(nil, c)
			c2, n2, err := DecodeCompletion(re)
			if err != nil {
				t.Fatalf("re-encoded completion rejected: %v (%+v)", err, c)
			}
			if n2 != len(re) || c2 != c {
				t.Fatalf("re-encode round trip:\n got %+v (%d bytes)\nwant %+v (%d bytes)", c2, n2, c, len(re))
			}
			rest = rest[n:]
		}
	})
}

// FuzzRoundTrip drives structured requests through encode→decode and
// demands exact equality and full consumption, for every op code and
// arbitrary field values (including the signed/huge varint corners).
func FuzzRoundTrip(f *testing.F) {
	for _, op := range cleancache.OpCodes() {
		r := sampleRequest(op)
		f.Add(byte(op), int64(r.VM), int64(r.Key.Pool), r.Key.Inode,
			r.Key.Block, r.Content, r.Name, int64(r.Spec.Store),
			int64(r.Spec.Weight), int64(r.To))
	}
	f.Fuzz(func(t *testing.T, op byte, vm, pool int64, inode uint64,
		block int64, content uint64, name string, store, weight, to int64) {
		ops := cleancache.OpCodes()
		req := cleancache.Request{Op: ops[int(op)%len(ops)], VM: cleancache.VMID(vm)}
		// Populate exactly the fields this op carries on the wire,
		// mirroring the EncodeRequest field list.
		switch req.Op {
		case cleancache.OpGet, cleancache.OpFlushPage:
			req.Key = cleancache.Key{Pool: cleancache.PoolID(pool), Inode: inode, Block: block}
		case cleancache.OpPut:
			req.Key = cleancache.Key{Pool: cleancache.PoolID(pool), Inode: inode, Block: block}
			req.Content = content
		case cleancache.OpFlushInode:
			req.Key = cleancache.Key{Pool: cleancache.PoolID(pool), Inode: inode}
		case cleancache.OpCreateCgroup:
			req.Name = name
			req.Spec = cgroup.HCacheSpec{Store: cgroup.StoreType(store), Weight: int(weight)}
		case cleancache.OpDestroyCgroup, cleancache.OpGetStats:
			req.Key = cleancache.Key{Pool: cleancache.PoolID(pool)}
		case cleancache.OpSetCgWeight:
			req.Key = cleancache.Key{Pool: cleancache.PoolID(pool)}
			req.Spec = cgroup.HCacheSpec{Store: cgroup.StoreType(store), Weight: int(weight)}
		case cleancache.OpMigrateObject:
			req.Key = cleancache.Key{Pool: cleancache.PoolID(pool), Inode: inode}
			req.To = cleancache.PoolID(to)
		case cleancache.OpReadAhead:
			req.Key = cleancache.Key{Pool: cleancache.PoolID(pool), Inode: inode, Block: block}
			req.Count = to
		}
		buf := EncodeRequest(nil, req)
		got, n, err := DecodeRequest(buf)
		if err != nil {
			t.Fatalf("decode: %v (req %+v, frame %x)", err, req, buf)
		}
		if n != len(buf) {
			t.Fatalf("consumed %d of %d bytes (req %+v)", n, len(buf), req)
		}
		if got != req {
			t.Fatalf("round trip:\n got %+v\nwant %+v", got, req)
		}
	})
}
