package hypercall

import (
	"testing"
	"time"

	"doubledecker/internal/cleancache"
	"doubledecker/internal/metrics"
)

// seqBackend is an in-memory Dispatch backend that records every op in
// arrival order, for asserting the transport's FIFO/barrier guarantees.
type seqBackend struct {
	pools map[cleancache.PoolID]map[cleancache.Key]bool
	next  cleancache.PoolID
	ops   []cleancache.Request
}

func newSeqBackend() *seqBackend {
	return &seqBackend{pools: make(map[cleancache.PoolID]map[cleancache.Key]bool), next: 1}
}

func (b *seqBackend) Dispatch(_ time.Duration, req cleancache.Request) cleancache.Response {
	b.ops = append(b.ops, req)
	resp := cleancache.Response{Op: req.Op, Latency: 300 * time.Nanosecond}
	switch req.Op {
	case cleancache.OpCreateCgroup:
		id := b.next
		b.next++
		b.pools[id] = make(map[cleancache.Key]bool)
		resp.Ok, resp.Pool = true, id
	case cleancache.OpDestroyCgroup:
		delete(b.pools, req.Key.Pool)
	case cleancache.OpPut:
		if m, ok := b.pools[req.Key.Pool]; ok {
			m[req.Key] = true
			resp.Ok = true
		}
	case cleancache.OpGet:
		if b.pools[req.Key.Pool][req.Key] {
			delete(b.pools[req.Key.Pool], req.Key)
			resp.Ok = true
		}
	case cleancache.OpFlushPage:
		delete(b.pools[req.Key.Pool], req.Key)
	case cleancache.OpFlushInode:
		for k := range b.pools[req.Key.Pool] {
			if k.Inode == req.Key.Inode {
				delete(b.pools[req.Key.Pool], k)
			}
		}
	case cleancache.OpGetStats:
		resp.Ok = true
		resp.Stats = cleancache.PoolStats{Objects: int64(len(b.pools[req.Key.Pool]))}
	}
	return resp
}

func put(pool cleancache.PoolID, inode uint64, block int64) cleancache.Request {
	return cleancache.Request{
		Op: cleancache.OpPut, VM: 1,
		Key: cleancache.Key{Pool: pool, Inode: inode, Block: block},
	}
}

func newPool(t *testing.T, tr *Transport) cleancache.PoolID {
	t.Helper()
	resp := tr.Submit(0, cleancache.Request{Op: cleancache.OpCreateCgroup, VM: 1, Name: "c"})
	if !resp.Ok || resp.Pool == 0 {
		t.Fatalf("create pool: %+v", resp)
	}
	return resp.Pool
}

func TestBatchedPutsCoalesceIntoOneCall(t *testing.T) {
	be := newSeqBackend()
	tr := NewTransport(be, Options{})
	pool := newPool(t, tr)
	callsAfterCreate := tr.Stats().Calls

	const n = 100
	for i := 0; i < n; i++ {
		if resp := tr.Submit(0, put(pool, 1, int64(i))); !resp.Ok {
			t.Fatalf("buffered put %d rejected: %+v", i, resp)
		}
	}
	st := tr.Stats()
	if st.Calls != callsAfterCreate {
		t.Fatalf("buffered puts issued %d extra hypercalls", st.Calls-callsAfterCreate)
	}
	if st.Pending != n {
		t.Fatalf("Pending = %d, want %d", st.Pending, n)
	}

	lat := tr.Flush(0)
	wantLat := DefaultCallCost + n*DefaultPageCopyCost + n*300*time.Nanosecond
	if lat != wantLat {
		t.Fatalf("flush latency = %v, want %v", lat, wantLat)
	}
	st = tr.Stats()
	if st.Calls != callsAfterCreate+1 {
		t.Fatalf("flush used %d calls, want 1", st.Calls-callsAfterCreate)
	}
	if st.Pending != 0 || st.Batches != 1 || st.BatchedOps != n {
		t.Fatalf("stats after flush = %+v", st)
	}
	// Backend saw create + n puts, in order.
	if len(be.ops) != n+1 {
		t.Fatalf("backend saw %d ops, want %d", len(be.ops), n+1)
	}
	for i := 1; i < len(be.ops); i++ {
		if be.ops[i].Key.Block != int64(i-1) {
			t.Fatalf("op %d out of order: block %d", i, be.ops[i].Key.Block)
		}
	}
}

func TestGetAfterBufferedPutObservesPut(t *testing.T) {
	be := newSeqBackend()
	tr := NewTransport(be, Options{})
	pool := newPool(t, tr)

	tr.Submit(0, put(pool, 42, 7))
	if tr.Stats().Pending != 1 {
		t.Fatal("put not buffered")
	}
	resp := tr.Submit(0, cleancache.Request{
		Op: cleancache.OpGet, VM: 1,
		Key: cleancache.Key{Pool: pool, Inode: 42, Block: 7},
	})
	if !resp.Ok {
		t.Fatal("get missed a buffered put: barrier drain broken")
	}
	// The get's latency covers the batch drain plus its own crossing.
	if resp.Latency < 2*DefaultCallCost {
		t.Fatalf("get latency %v does not include the drain", resp.Latency)
	}
	if tr.Stats().Pending != 0 {
		t.Fatal("pending ops survive a sync op")
	}
}

func TestDestroyPoolFlushesPendingOps(t *testing.T) {
	be := newSeqBackend()
	tr := NewTransport(be, Options{})
	pool := newPool(t, tr)

	tr.Submit(0, put(pool, 1, 1))
	tr.Submit(0, cleancache.Request{
		Op: cleancache.OpFlushPage, VM: 1,
		Key: cleancache.Key{Pool: pool, Inode: 1, Block: 1},
	})
	tr.Submit(0, cleancache.Request{
		Op: cleancache.OpDestroyCgroup, VM: 1,
		Key: cleancache.Key{Pool: pool},
	})
	// The backend must see put, flush, destroy — in that order.
	wantOps := []cleancache.OpCode{
		cleancache.OpCreateCgroup, cleancache.OpPut,
		cleancache.OpFlushPage, cleancache.OpDestroyCgroup,
	}
	if len(be.ops) != len(wantOps) {
		t.Fatalf("backend saw %d ops, want %d", len(be.ops), len(wantOps))
	}
	for i, want := range wantOps {
		if be.ops[i].Op != want {
			t.Fatalf("op %d = %v, want %v", i, be.ops[i].Op, want)
		}
	}
	if tr.Stats().Pending != 0 {
		t.Fatal("ops still pending after destroy")
	}
}

func TestBatchDrainsWhenOpBoundReached(t *testing.T) {
	be := newSeqBackend()
	tr := NewTransport(be, Options{MaxBatchOps: 8, MaxBatchPages: 1 << 20})
	pool := newPool(t, tr)
	callsAfterCreate := tr.Stats().Calls

	for i := 0; i < 16; i++ {
		tr.Submit(0, put(pool, 1, int64(i)))
	}
	st := tr.Stats()
	if st.Calls != callsAfterCreate+2 {
		t.Fatalf("16 puts at batch=8 used %d calls, want 2", st.Calls-callsAfterCreate)
	}
	if st.Batches != 2 || st.Pending != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBatchDrainsWhenPageBoundReached(t *testing.T) {
	be := newSeqBackend()
	tr := NewTransport(be, Options{MaxBatchOps: 1024, MaxBatchPages: 4})
	pool := newPool(t, tr)
	callsAfterCreate := tr.Stats().Calls

	// Puts carry one page each; flushes carry none and must not count
	// against the page bound.
	for i := 0; i < 4; i++ {
		tr.Submit(0, put(pool, 1, int64(i)))
	}
	st := tr.Stats()
	if st.Calls != callsAfterCreate+1 {
		t.Fatalf("4 puts at page bound 4 drained %d times, want 1", st.Calls-callsAfterCreate)
	}
	if st.PagesCopied != 4 {
		t.Fatalf("PagesCopied = %d, want 4", st.PagesCopied)
	}
}

func TestUnbatchedModeChargesPerOp(t *testing.T) {
	be := newSeqBackend()
	tr := NewTransport(be, Options{Unbatched: true})
	pool := newPool(t, tr)
	callsAfterCreate := tr.Stats().Calls

	const n = 10
	for i := 0; i < n; i++ {
		resp := tr.Submit(0, put(pool, 1, int64(i)))
		if !resp.Ok {
			t.Fatalf("put %d rejected", i)
		}
		if resp.Latency < DefaultCallCost+DefaultPageCopyCost {
			t.Fatalf("unbatched put latency %v below transport floor", resp.Latency)
		}
	}
	st := tr.Stats()
	if st.Calls != callsAfterCreate+n {
		t.Fatalf("unbatched puts used %d calls, want %d", st.Calls-callsAfterCreate, n)
	}
	if st.Batches != 0 || st.Pending != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTransportMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	be := newSeqBackend()
	tr := NewTransport(be, Options{Metrics: reg})
	pool := newPool(t, tr)

	for i := 0; i < 5; i++ {
		tr.Submit(0, put(pool, 1, int64(i)))
	}
	tr.Flush(0)
	tr.Submit(0, cleancache.Request{
		Op: cleancache.OpGet, VM: 1,
		Key: cleancache.Key{Pool: pool, Inode: 1, Block: 0},
	})

	if got := reg.Counter("hypercall.batches").Value(); got != 1 {
		t.Fatalf("batches counter = %d, want 1", got)
	}
	if got := reg.Counter("hypercall.batched_ops").Value(); got != 5 {
		t.Fatalf("batched_ops counter = %d, want 5", got)
	}
	if got := reg.Series("hypercall.batch_ops").Last().Value; got != 5 {
		t.Fatalf("batch occupancy sample = %v, want 5", got)
	}
	for _, name := range []string{"hypercall.lat.PUT", "hypercall.lat.GET", "hypercall.lat.CREATE_CGROUP"} {
		if reg.Histogram(name).Count() == 0 {
			t.Fatalf("histogram %s empty", name)
		}
	}
}
