package hypercall

import (
	"testing"
	"time"

	"doubledecker/internal/cleancache"
	"doubledecker/internal/fault"
)

// budget is the per-op latency budget the deadline tests run under: far
// above the healthy path (a crossing is ~2 µs) and far below the stalls
// the fault plans inject.
const budget = 100 * time.Microsecond

func TestSyncGetStallClampedToBudget(t *testing.T) {
	// A latency fault way past the budget on the synchronous call site:
	// the get must come back a miss charged exactly the budget, never the
	// stalled crossing.
	inj := fault.New(fault.Plan{Seed: 1, Rules: []fault.Rule{
		{Site: SiteCall, Kind: fault.KindLatency, Delay: 5 * time.Millisecond},
	}})
	be := newRABackend()
	tr := NewTransport(be, Options{OpBudget: budget})
	tr.Channel().WithFaults(inj)
	pool := newPool(t, tr)
	tr.Submit(0, put(pool, 1, 0))
	tr.Flush(0)

	resp := tr.Submit(time.Millisecond, get(pool, 1, 0))
	if resp.Ok {
		t.Fatalf("stalled get reported a hit: %+v", resp)
	}
	if resp.Latency != budget {
		t.Fatalf("stalled get charged %v, want the budget %v", resp.Latency, budget)
	}
	if st := tr.Stats(); st.DeadlineMisses != 1 {
		t.Fatalf("DeadlineMisses = %d, want 1", st.DeadlineMisses)
	}
}

func TestSyncControlOpsExemptFromBudget(t *testing.T) {
	// The same stall on a control op must NOT fail it: control ops carry
	// correctness and run to completion whatever the cost.
	inj := fault.New(fault.Plan{Seed: 1, Rules: []fault.Rule{
		{Site: SiteCall, Kind: fault.KindLatency, Delay: 5 * time.Millisecond},
	}})
	be := newRABackend()
	tr := NewTransport(be, Options{OpBudget: budget})
	tr.Channel().WithFaults(inj)
	resp := tr.Submit(0, cleancache.Request{Op: cleancache.OpCreateCgroup, VM: 1, Name: "c"})
	if !resp.Ok || resp.Pool == 0 {
		t.Fatalf("stalled control op failed: %+v", resp)
	}
	if resp.Latency <= 5*time.Millisecond {
		t.Fatalf("control op latency %v did not absorb the stall", resp.Latency)
	}
	if st := tr.Stats(); st.DeadlineMisses != 0 {
		t.Fatalf("control op counted a deadline miss")
	}
}

func TestWatchdogFailsOverdueWaitersAndReleasesRingSlots(t *testing.T) {
	be := newRABackend()
	tr := NewTransport(be, Options{AsyncGets: true, OpBudget: budget})
	pool := newPool(t, tr)
	for b := int64(0); b < 3; b++ {
		tr.Submit(0, put(pool, 1, b))
	}
	tr.Flush(0)
	opsBefore := len(be.ops)

	// Three async gets ride the ring, never drained: their completions
	// are stuck in flight past the budget.
	var pending []*PendingGet
	for b := int64(0); b < 3; b++ {
		pg, _ := tr.SubmitAsync(0, get(pool, 1, b))
		pending = append(pending, pg)
	}
	if n := tr.Watchdog(budget / 2); n != 0 {
		t.Fatalf("watchdog fired %d waiters before any deadline", n)
	}
	if n := tr.Watchdog(2 * budget); n != 3 {
		t.Fatalf("watchdog failed %d waiters, want 3", n)
	}
	st := tr.Stats()
	if st.Waiters != 0 {
		t.Fatalf("waiter table holds %d entries after the sweep", st.Waiters)
	}
	if st.WatchdogFails != 3 || st.DeadlineMisses != 3 {
		t.Fatalf("WatchdogFails=%d DeadlineMisses=%d, want 3/3", st.WatchdogFails, st.DeadlineMisses)
	}
	// Every handle resolves as a miss charged at most the budget.
	for i, pg := range pending {
		resp := tr.Await(2*budget, pg)
		if resp.Ok {
			t.Fatalf("watchdog-failed get %d reported a hit", i)
		}
		if resp.Latency > budget {
			t.Fatalf("watchdog-failed get %d charged %v past the budget %v", i, resp.Latency, budget)
		}
	}
	// The next drain must release the cancelled frames' ring slots
	// WITHOUT dispatching them: a dispatch would extract the blocks under
	// the exclusive protocol with nobody left to consume them.
	tr.Flush(2 * budget)
	if got := len(be.ops) - opsBefore; got != 0 {
		t.Fatalf("drain dispatched %d cancelled gets; blocks phantom-extracted", got)
	}
	if st := tr.Stats(); st.Pending != 0 {
		t.Fatalf("ring still holds %d frames after the drain", st.Pending)
	}
	// The blocks survived: a fresh (healthy) get still hits.
	if resp := tr.Submit(3*budget, get(pool, 1, 0)); !resp.Ok {
		t.Fatalf("block lost to a cancelled frame: %+v", resp)
	}
}

func TestWatchdogInvalidatesStagedReadaheadItCovers(t *testing.T) {
	// The one flow that leaves a pending waiter covered by a staged fill:
	// a stalled readahead stages a block whose ready-time lies beyond the
	// budget, so the next get declines the stale fill (miss-now) and
	// queues as a fresh waiter on the same key. When the watchdog fails
	// that waiter, it must also drop the covered fill — a prefetch nobody
	// is waiting for anymore.
	be := newRABackend()
	tr := NewTransport(be, Options{AsyncGets: true, OpBudget: budget})
	pool := newPool(t, tr)
	tr.Submit(0, put(pool, 1, 0))
	tr.Flush(0)

	inj := fault.New(fault.Plan{Seed: 1, Rules: []fault.Rule{
		{Site: SiteBatch, Kind: fault.KindLatency, Delay: 5 * time.Millisecond},
	}})
	tr.Channel().WithFaults(inj)
	tr.Submit(0, readAhead(pool, 1, 0, 1))
	tr.Flush(0)
	if tr.Stats().StagedPages != 1 {
		t.Fatalf("stalled readahead staged %d blocks, want 1", tr.Stats().StagedPages)
	}
	// The fill is ~5ms out: this get declines it and becomes a waiter.
	tr.SubmitAsync(0, get(pool, 1, 0))
	if w := tr.Stats().Waiters; w != 1 {
		t.Fatalf("get did not queue as a waiter (Waiters=%d)", w)
	}
	if n := tr.Watchdog(2 * budget); n != 1 {
		t.Fatalf("watchdog failed %d waiters, want 1", n)
	}
	if st := tr.Stats(); st.StagedPages != 0 {
		t.Fatalf("watchdog left the covered fill staged (StagedPages=%d)", st.StagedPages)
	}
}

func TestCompletionDropResolvesWithinBudgetNoWaiterLeak(t *testing.T) {
	// Every completion frame (0xF9) is lost in flight: waiters must still
	// resolve as misses within budget via the await fallback, and the
	// waiter table must not leak an entry per lost completion.
	inj := fault.New(fault.Plan{Seed: 1, Rules: []fault.Rule{
		{Site: SiteCompletion, Kind: fault.KindDrop, Prob: 1},
	}})
	be := newRABackend()
	tr := NewTransport(be, Options{AsyncGets: true, OpBudget: budget})
	tr.Channel().WithFaults(inj)
	pool := newPool(t, tr)
	for b := int64(0); b < 8; b++ {
		tr.Submit(0, put(pool, 1, b))
	}
	tr.Flush(0)

	for b := int64(0); b < 8; b++ {
		pg, _ := tr.SubmitAsync(0, get(pool, 1, b))
		tr.Flush(0) // batch delivered; the completions are dropped
		resp := tr.Await(0, pg)
		if resp.Ok {
			t.Fatalf("get %d hit with its completion lost", b)
		}
		if resp.Latency > budget {
			t.Fatalf("get %d charged %v past the budget", b, resp.Latency)
		}
	}
	st := tr.Stats()
	if st.Waiters != 0 {
		t.Fatalf("waiter table leaked %d entries after lost completions", st.Waiters)
	}
	if st.CompletionDrops == 0 {
		t.Fatalf("no completion drops recorded under a prob-1 drop plan")
	}
}

func TestAbandonedWaitersReleasedByWatchdog(t *testing.T) {
	// The leak audit's abandoned-handle case: the guest submits async
	// gets and never awaits them (e.g. its read was cancelled). The
	// watchdog alone must fully reclaim the waiter table.
	be := newRABackend()
	tr := NewTransport(be, Options{AsyncGets: true, OpBudget: budget})
	pool := newPool(t, tr)
	for b := int64(0); b < 16; b++ {
		tr.Submit(0, put(pool, 1, b))
	}
	tr.Flush(0)
	for b := int64(0); b < 16; b++ {
		tr.SubmitAsync(0, get(pool, 1, b)) // handle dropped on the floor
	}
	if w := tr.Stats().Waiters; w != 16 {
		t.Fatalf("Waiters = %d before sweep, want 16", w)
	}
	tr.Watchdog(2 * budget)
	tr.Flush(2 * budget)
	st := tr.Stats()
	if st.Waiters != 0 || st.Pending != 0 {
		t.Fatalf("abandoned handles leaked: Waiters=%d Pending=%d", st.Waiters, st.Pending)
	}
}

func TestInflightCapShedsAsyncGets(t *testing.T) {
	be := newRABackend()
	tr := NewTransport(be, Options{AsyncGets: true, MaxInflightGets: 2})
	pool := newPool(t, tr)
	for b := int64(0); b < 4; b++ {
		tr.Submit(0, put(pool, 1, b))
	}
	tr.Flush(0)

	var handles []*PendingGet
	for b := int64(0); b < 4; b++ {
		pg, _ := tr.SubmitAsync(0, get(pool, 1, b))
		handles = append(handles, pg)
	}
	st := tr.Stats()
	if st.ShedGets != 2 {
		t.Fatalf("ShedGets = %d, want 2 (cap 2, 4 submitted)", st.ShedGets)
	}
	// Shed handles are immediate misses, not errors.
	for i := 2; i < 4; i++ {
		resp := tr.Await(0, handles[i])
		if resp.Ok || resp.Latency != 0 {
			t.Fatalf("shed get %d = %+v, want an immediate miss", i, resp)
		}
	}
	// The admitted two still complete as hits.
	tr.Flush(0)
	for i := 0; i < 2; i++ {
		if resp := tr.Await(0, handles[i]); !resp.Ok {
			t.Fatalf("admitted get %d missed: %+v", i, resp)
		}
	}
}

func TestQueueCapShedsPutsNeverFlushes(t *testing.T) {
	be := newRABackend()
	tr := NewTransport(be, Options{MaxQueuedOps: 4})
	pool := newPool(t, tr)

	for b := int64(0); b < 4; b++ {
		if resp := tr.Submit(0, put(pool, 1, b)); !resp.Ok {
			t.Fatalf("put %d under the cap shed: %+v", b, resp)
		}
	}
	if resp := tr.Submit(0, put(pool, 1, 99)); resp.Ok {
		t.Fatalf("put over the queue cap admitted")
	}
	// A flush at the same depth is never shed.
	fl := cleancache.Request{Op: cleancache.OpFlushPage, VM: 1,
		Key: cleancache.Key{Pool: pool, Inode: 1, Block: 0}}
	if resp := tr.Submit(0, fl); !resp.Ok && tr.Stats().ShedOps != 1 {
		t.Fatalf("flush shed by admission control: %+v", resp)
	}
	if st := tr.Stats(); st.ShedOps != 1 {
		t.Fatalf("ShedOps = %d, want 1 (the put alone)", st.ShedOps)
	}
}

func TestCloseFailsOutstandingWorkAndEmptiesTables(t *testing.T) {
	// Crash-safe teardown: async gets in the ring, waiters in the table,
	// staged readahead unconsumed. Close must drain, fail the waiters as
	// misses and empty every table — fail-to-miss, never data loss.
	be := newRABackend()
	tr := NewTransport(be, Options{AsyncGets: true, OpBudget: budget})
	pool := newPool(t, tr)
	for b := int64(0); b < 8; b++ {
		tr.Submit(0, put(pool, 1, b))
	}
	tr.Flush(0)
	tr.Submit(0, readAhead(pool, 1, 4, 4))
	var handles []*PendingGet
	for b := int64(0); b < 2; b++ {
		pg, _ := tr.SubmitAsync(0, get(pool, 1, b))
		handles = append(handles, pg)
	}
	tr.Flush(0) // deliver: waiters completed, blocks 4..7 staged
	pg, _ := tr.SubmitAsync(0, get(pool, 1, 2))
	handles = append(handles, pg) // still in the ring at Close

	tr.Close(0)
	st := tr.Stats()
	if st.Waiters != 0 || st.StagedPages != 0 || st.Pending != 0 {
		t.Fatalf("Close left state behind: Waiters=%d StagedPages=%d Pending=%d",
			st.Waiters, st.StagedPages, st.Pending)
	}
	for i, pg := range handles {
		if !pg.Done() {
			t.Fatalf("handle %d still pending after Close", i)
		}
		if resp := tr.Await(0, pg); resp.Op != cleancache.OpGet {
			t.Fatalf("handle %d resolved to %v", i, resp.Op)
		}
	}
}

func TestStalledStagedFillMissesUnderBudget(t *testing.T) {
	// A staged fill whose ready-time lies beyond the budget must not make
	// the guest wait for it: the get misses now and the fill stays staged.
	be := newRABackend()
	be.getLat = map[cleancache.Key]time.Duration{}
	tr := NewTransport(be, Options{AsyncGets: true, OpBudget: budget})
	pool := newPool(t, tr)
	tr.Submit(0, put(pool, 1, 0))
	tr.Flush(0)

	// Stall the readahead's backend dispatch so its fill completes far in
	// the future.
	inj := fault.New(fault.Plan{Seed: 1, Rules: []fault.Rule{
		{Site: SiteBatch, Kind: fault.KindLatency, Delay: 5 * time.Millisecond},
	}})
	tr.Channel().WithFaults(inj)
	tr.Submit(0, readAhead(pool, 1, 0, 1))
	tr.Flush(0)
	if tr.Stats().StagedPages != 1 {
		t.Fatalf("readahead staged %d blocks, want 1", tr.Stats().StagedPages)
	}
	// The fill is ready ~5ms out; a get now must miss within budget.
	pg, lat := tr.SubmitAsync(0, get(pool, 1, 0))
	resp := tr.Await(lat, pg)
	if resp.Ok && resp.Latency > budget {
		t.Fatalf("get waited %v on a stalled fill, past the budget %v", resp.Latency, budget)
	}
	if misses := tr.Stats().DeadlineMisses; misses == 0 {
		t.Fatalf("stalled-fill miss not counted as a deadline miss")
	}
}

func TestDeadlineMissesNeverLoseFlushes(t *testing.T) {
	// Flushes are exempt from both shedding and deadlines: under a
	// stall-heavy plan every buffered flush must still reach the backend
	// (or be counted FlushAbandoned) — never silently vanish.
	inj := fault.New(fault.Plan{Seed: 42, Rules: []fault.Rule{
		{Site: SiteBatch, Kind: fault.KindDrop, Prob: 0.5},
	}})
	be := newRABackend()
	tr := NewTransport(be, Options{OpBudget: budget, MaxQueuedOps: 8})
	tr.Channel().WithFaults(inj)
	pool := newPool(t, tr)

	const n = 64
	sent := 0
	for i := 0; i < n; i++ {
		fl := cleancache.Request{Op: cleancache.OpFlushPage, VM: 1,
			Key: cleancache.Key{Pool: pool, Inode: 7, Block: int64(i)}}
		if resp := tr.Submit(time.Duration(i)*time.Millisecond, fl); resp.Ok {
			sent++
		}
	}
	tr.Flush(time.Duration(n) * time.Millisecond)
	if sent != n {
		t.Fatalf("%d of %d flushes rejected at submit; flushes must never be shed", n-sent, n)
	}
	delivered := 0
	for _, op := range be.ops {
		if op.Op == cleancache.OpFlushPage {
			delivered++
		}
	}
	st := tr.Stats()
	if int64(delivered)+st.FlushAbandoned < n {
		t.Fatalf("flushes lost silently: %d delivered + %d abandoned < %d submitted",
			delivered, st.FlushAbandoned, n)
	}
}
