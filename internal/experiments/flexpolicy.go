// Flexible hypervisor cache management (§5.2): container-level priority
// extensions and the hybrid memory/SSD placement — Figure 11 (speedups),
// Figure 12 (occupancy) and Table 3 (the policy settings themselves).

package experiments

import (
	"time"

	"doubledecker/internal/cgroup"
	"doubledecker/internal/cleancache"
	"doubledecker/internal/ddcache"
	"doubledecker/internal/hypervisor"
	"doubledecker/internal/metrics"
	"doubledecker/internal/sim"
	"doubledecker/internal/workload"
)

// flexible-policy geometry, scaled 1/4: web container 1.25 GB → 320 MiB,
// proxy/mail 1 GB → 256 MiB, video 0.75 GB → 192 MiB, memory cache
// 2 GB → 512 MiB.
const (
	fpVMBytes       = 2 * GiB
	fpWebBytes      = 320 * MiB
	fpProxyBytes    = 256 * MiB
	fpMailBytes     = 256 * MiB
	fpVideoBytes    = 192 * MiB
	fpMemCacheBytes = 512 * MiB
	fpSSDBytes      = 60 * GiB
	fpDuration      = 600 * time.Second
)

// fpPolicy is one Table 3 cache setting: per-container <T, W> tuples.
type fpPolicy struct {
	label string
	mode  ddcache.Mode
	specs map[string]cgroup.HCacheSpec
}

// fpPolicies returns the paper's Table 3 settings plus the Global
// baseline.
func fpPolicies() []fpPolicy {
	mem := func(w int) cgroup.HCacheSpec { return cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: w} }
	return []fpPolicy{
		{label: "Global", mode: ddcache.ModeGlobal, specs: map[string]cgroup.HCacheSpec{
			"webserver": mem(25), "proxycache": mem(25), "mail": mem(25), "videoserver": mem(25),
		}},
		{label: "DDMem", mode: ddcache.ModeDD, specs: map[string]cgroup.HCacheSpec{
			"webserver": mem(32), "proxycache": mem(25), "mail": mem(25), "videoserver": mem(18),
		}},
		{label: "DDMemEx", mode: ddcache.ModeDD, specs: map[string]cgroup.HCacheSpec{
			"webserver": mem(40), "proxycache": mem(30), "mail": mem(30), "videoserver": mem(0),
		}},
		{label: "DDHybrid", mode: ddcache.ModeDD, specs: map[string]cgroup.HCacheSpec{
			"webserver": mem(40), "proxycache": mem(30), "mail": mem(30),
			"videoserver": {Store: cgroup.StoreSSD, Weight: 100},
		}},
	}
}

func fpContainerBytes(name string) int64 {
	switch name {
	case "webserver":
		return fpWebBytes
	case "proxycache":
		return fpProxyBytes
	case "mail":
		return fpMailBytes
	default:
		return fpVideoBytes
	}
}

// fpWorkloads builds the four workloads sized so that the web, proxy and
// mail spills together contest the 512 MiB memory store — the regime the
// paper's §5.2 operates in (their per-container demands were ~500-600 MB
// against a 2 GB store).
func fpWorkloads(engine *sim.Engine) []struct {
	name    string
	profile workload.Profile
	threads int
} {
	rng := engine.Rand()
	return []struct {
		name    string
		profile workload.Profile
		threads int
	}{
		{"webserver", workload.NewWebserver(workload.WebserverConfig{
			Files:      3700,
			MeanBlocks: 32, // ~460 MiB: spill fits web's DD share
			AnonBytes:  22 * MiB,
			Think:      time.Millisecond,
		}, rng), 4},
		{"proxycache", workload.NewWebproxy(workload.WebproxyConfig{
			Files:      14000,
			MeanBlocks: 8, // ~440 MiB against a 256 MiB container
			Think:      2 * time.Millisecond,
		}, rng), 4},
		{"mail", workload.NewVarmail(workload.VarmailConfig{
			Files:      16000,
			MeanBlocks: 6, // ~375 MiB against a 256 MiB container
			Think:      time.Millisecond,
		}, rng), 4},
		{"videoserver", workload.NewVideoserver(workload.VideoserverConfig{
			ActiveVideos:    3, // 384 MiB hot set vs a 192 MiB container: cache-hungry
			PassiveVideos:   8,
			VideoBlocks:     32768,
			ChunkBlocks:     64,
			WriterThreads:   1,
			WriterThink:     5 * time.Millisecond,
			PassiveReadFrac: 0.06,
			Think:           time.Millisecond,
		}, rng), 8},
	}
}

// fpRun holds one policy run's outcomes.
type fpRun struct {
	label      string
	throughput map[string]float64 // steady-state MB/s per workload
	series     map[string]*metrics.Series
}

func runFlexPolicy(o Opts, p fpPolicy) fpRun {
	engine := sim.New(o.Seed)
	host := hypervisor.New(engine, hypervisor.Config{
		Mode:          p.mode,
		MemCacheBytes: fpMemCacheBytes,
		SSDCacheBytes: fpSSDBytes,
	})
	vm := host.NewVM(1, fpVMBytes, 100)
	run := fpRun{
		label:      p.label,
		throughput: make(map[string]float64),
		series:     make(map[string]*metrics.Series),
	}
	type tracked struct {
		runner *workload.Runner
		steady workload.Checkpoint
	}
	tracks := make(map[string]*tracked)
	for _, w := range fpWorkloads(engine) {
		spec := p.specs[w.name]
		c := vm.NewContainer(w.name, fpContainerBytes(w.name), spec)
		series := metrics.NewSeries(p.label + "/" + w.name)
		run.series[w.name] = series
		pool := cleancache.PoolID(c.Group().PoolID())
		engine.Every(o.Sample, func() {
			series.Record(engine.Now(), mib(host.Manager().PoolUsedBytes(pool, cgroup.StoreMem)))
		})
		tracks[w.name] = &tracked{runner: workload.Start(engine, c, w.profile, w.threads)}
	}
	duration := o.scaled(fpDuration)
	engine.Run(duration * 2 / 5)
	for _, tr := range tracks {
		tr.steady = tr.runner.CheckpointNow(engine.Now())
	}
	engine.Run(duration)
	for name, tr := range tracks {
		run.throughput[name] = tr.runner.MBPerSecSince(tr.steady, engine.Now())
	}
	return run
}

// fpCache memoizes the four policy runs per Opts (fig11 and fig12 share).
var fpCache = map[Opts][]fpRun{}

func flexPolicyAll(o Opts) []fpRun {
	if runs, ok := fpCache[o]; ok {
		return runs
	}
	runs := make([]fpRun, 0, 4)
	for _, p := range fpPolicies() {
		runs = append(runs, runFlexPolicy(o, p))
	}
	fpCache[o] = runs
	return runs
}

// Table3 prints the policy settings used (the paper's Table 3).
func Table3(o Opts) *Result {
	r := newResult("table3", "DoubleDecker cache configuration settings (Table 3)")
	t := Table{Columns: []string{"setting", "webserver (C1)", "proxycache (C2)", "mail (C3)", "videoserver (C4)"}}
	for _, p := range fpPolicies() {
		if p.label == "Global" {
			continue
		}
		row := []string{p.label}
		for _, name := range cmWorkloadOrder {
			spec := p.specs[name]
			row = append(row, spec.Store.String()+":"+f0(float64(spec.Weight)))
		}
		t.Rows = append(t.Rows, row)
	}
	r.Tables = append(r.Tables, t)
	return r
}

// Fig11 reports application speedup of each DoubleDecker policy relative
// to the Global baseline.
func Fig11(o Opts) *Result {
	r := newResult("fig11", "Application speedup vs global hypervisor cache management")
	runs := flexPolicyAll(o)
	base := runs[0] // Global
	t := Table{
		Title:   "steady-state speedup over Global",
		Columns: append([]string{"policy"}, cmWorkloadOrder...),
	}
	for _, run := range runs[1:] {
		row := []string{run.label}
		for _, name := range cmWorkloadOrder {
			sp := 0.0
			if base.throughput[name] > 0 {
				sp = run.throughput[name] / base.throughput[name]
			}
			row = append(row, f2(sp))
		}
		t.Rows = append(t.Rows, row)
	}
	r.Tables = append(r.Tables, t)
	t2 := Table{
		Title:   "raw steady-state throughput (MB/s)",
		Columns: append([]string{"policy"}, cmWorkloadOrder...),
	}
	for _, run := range runs {
		row := []string{run.label}
		for _, name := range cmWorkloadOrder {
			row = append(row, f1(run.throughput[name]))
		}
		t2.Rows = append(t2.Rows, row)
	}
	r.Tables = append(r.Tables, t2)
	r.note("paper shape: web 10-11x across DD policies; proxy 2-3.2x; mail marginal; video degrades under DDMem/DDMemEx (cache curtailed) and gains 3.6x under DDHybrid (moved to SSD)")
	return r
}

// Fig12 reports memory-store occupancy over time for Global, DDMem and
// DDHybrid (the paper's Figure 12 panels).
func Fig12(o Opts) *Result {
	r := newResult("fig12", "Hypervisor cache distribution under flexible policies")
	for _, run := range flexPolicyAll(o) {
		if run.label == "DDMemEx" {
			continue // the paper shows Global, DDMem and DDHybrid panels
		}
		for _, name := range cmWorkloadOrder {
			key := run.label + "/" + name
			r.Series[key] = run.series[name]
			r.SeriesOrder = append(r.SeriesOrder, key)
		}
	}
	r.note("paper shape: Global dominated by video; DDMem squeezes video to ~its weight; DDHybrid's memory store is shared by web/proxy/mail only (video on SSD), ~500-600 MB each scaled to ~125-150 MiB")
	return r
}
