// Dynamic cache management (§5.3): runtime policy changes across
// containers (Figure 13) and across virtual machines (Figure 14).

package experiments

import (
	"fmt"
	"time"

	"doubledecker/internal/cgroup"
	"doubledecker/internal/cleancache"
	"doubledecker/internal/ddcache"
	"doubledecker/internal/hypervisor"
	"doubledecker/internal/metrics"
	"doubledecker/internal/sim"
	"doubledecker/internal/workload"
)

// dynamic-containers geometry, scaled 1/4: memory cache 1 GB → 256 MiB,
// containers 1 GB → 256 MiB, phase changes at 900/1800 s → 225/450 s.
const (
	dynVMBytes    = 2 * GiB
	dynContBytes  = 256 * MiB
	dynMemCache   = 256 * MiB
	dynSSDBytes   = 60 * GiB
	dynPhase1     = 225 * time.Second
	dynPhase2     = 450 * time.Second
	dynDuration   = 675 * time.Second
	dynSampleWarn = "series sampled on the memory store only, as in the paper's figure"
)

// Fig13 reproduces the dynamic container experiment: web/proxy at weights
// 60/40; at phase 1 a video container boots (weights 50/30/20); at phase
// 2 the video container is moved to the SSD store and the memory weights
// reset to 60/40.
func Fig13(o Opts) *Result {
	r := newResult("fig13", "Dynamic policy changes and cache redistribution across containers")
	engine := sim.New(o.Seed)
	host := hypervisor.New(engine, hypervisor.Config{
		Mode:          ddcache.ModeDD,
		MemCacheBytes: dynMemCache,
		SSDCacheBytes: dynSSDBytes,
	})
	vm := host.NewVM(1, dynVMBytes, 100)
	rng := engine.Rand()

	c1 := vm.NewContainer("container1-web", dynContBytes, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 60})
	c2 := vm.NewContainer("container2-proxy", dynContBytes, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 40})
	s1 := r.addSeries("container1-web")
	s2 := r.addSeries("container2-proxy")
	s3 := r.addSeries("container3-video(mem)")
	sample := func(pool cleancache.PoolID, s *metrics.Series) {
		s.Record(engine.Now(), mib(host.Manager().PoolUsedBytes(pool, cgroup.StoreMem)))
	}
	p1 := cleancache.PoolID(c1.Group().PoolID())
	p2 := cleancache.PoolID(c2.Group().PoolID())
	var p3 cleancache.PoolID
	engine.Every(o.Sample, func() {
		sample(p1, s1)
		sample(p2, s2)
		if p3 != 0 {
			sample(p3, s3)
		}
	})

	workload.Start(engine, c1, workload.NewWebserver(workload.WebserverConfig{
		Files: 4300, MeanBlocks: 32, AnonBytes: 22 * MiB, Think: time.Millisecond,
	}, rng), 4)
	workload.Start(engine, c2, workload.NewWebproxy(workload.WebproxyConfig{
		Files: 14000, MeanBlocks: 8, Think: 2 * time.Millisecond,
	}, rng), 4)

	phase1 := o.scaled(dynPhase1)
	phase2 := o.scaled(dynPhase2)
	engine.Schedule(phase1, func() {
		c3 := vm.NewContainer("container3-video", dynContBytes, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 20})
		p3 = cleancache.PoolID(c3.Group().PoolID())
		c1.SetSpec(cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 50})
		c2.SetSpec(cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 30})
		workload.Start(engine, c3, workload.NewVideoserver(workload.VideoserverConfig{
			ActiveVideos: 2, PassiveVideos: 8, VideoBlocks: 32768, ChunkBlocks: 64,
			WriterThreads: 1, WriterThink: 5 * time.Millisecond, PassiveReadFrac: 0.06,
			Think: time.Millisecond,
		}, rng), 8)
		r.note("t=%.0fs: container3 (video) booted, weights set to 50/30/20", engine.Now().Seconds())
	})
	engine.Schedule(phase2, func() {
		for _, c := range vm.Containers() {
			if c.Name() == "container3-video" {
				c.SetSpec(cgroup.HCacheSpec{Store: cgroup.StoreSSD, Weight: 100})
			}
		}
		c1.SetSpec(cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 60})
		c2.SetSpec(cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 40})
		r.note("t=%.0fs: container3 moved to the SSD store, memory weights reset to 60/40", engine.Now().Seconds())
	})
	if err := engine.Run(o.scaled(dynDuration)); err != nil {
		r.note("engine: %v", err)
	}

	// Summaries per phase for the table view.
	phases := []struct {
		label    string
		from, to time.Duration
	}{
		{"phase 1 (two containers)", o.scaled(dynPhase1) / 2, o.scaled(dynPhase1)},
		{"phase 2 (+video, 50/30/20)", phase1 + (phase2-phase1)/2, phase2},
		{"phase 3 (video→SSD, 60/40)", phase2 + (o.scaled(dynDuration)-phase2)/2, o.scaled(dynDuration)},
	}
	t := Table{Columns: []string{"window", "web MiB", "proxy MiB", "video(mem) MiB"}}
	for _, ph := range phases {
		t.Rows = append(t.Rows, []string{
			ph.label,
			f1(seriesMeanWindow(s1, ph.from, ph.to)),
			f1(seriesMeanWindow(s2, ph.from, ph.to)),
			f1(seriesMeanWindow(s3, ph.from, ph.to)),
		})
	}
	r.Tables = append(r.Tables, t)
	r.note("paper shape: ~600/400 MB split → ~500/300/200 when video joins → back to 60:40 with video on SSD (scaled 1/4 here)")
	r.note(dynSampleWarn)
	return r
}

// Fig14 reproduces the dynamic VM experiment: four VMs booting in phases
// with weight and capacity changes.
func Fig14(o Opts) *Result {
	r := newResult("fig14", "Dynamic VM provisioning and cache redistribution across VMs")
	engine := sim.New(o.Seed)
	host := hypervisor.New(engine, hypervisor.Config{
		Mode:          ddcache.ModeDD,
		MemCacheBytes: 512 * MiB, // 2 GB scaled
		SSDCacheBytes: dynSSDBytes,
	})
	rng := engine.Rand()

	bootVideoVM := func(id cleancache.VMID, weight int64, store cgroup.StoreType) {
		vm := host.NewVM(id, 1*GiB, weight)
		c := vm.NewContainer(fmt.Sprintf("vm%d-video", id), 256*MiB, cgroup.HCacheSpec{Store: store, Weight: 100})
		workload.Start(engine, c, workload.NewVideoserver(workload.VideoserverConfig{
			ActiveVideos: 2, PassiveVideos: 10, VideoBlocks: 16384, ChunkBlocks: 64,
			WriterThreads: 1, WriterThink: 5 * time.Millisecond, PassiveReadFrac: 0.06,
			Think: time.Millisecond,
		}, rng), 4)
	}

	sv := map[cleancache.VMID]*metrics.Series{}
	for _, id := range []cleancache.VMID{1, 2, 4} {
		sv[id] = r.addSeries(fmt.Sprintf("vm%d", id))
	}
	engine.Every(o.Sample, func() {
		for id, s := range sv {
			s.Record(engine.Now(), mib(host.Manager().VMUsedBytes(id, cgroup.StoreMem)))
		}
	})

	bootVideoVM(1, 100, cgroup.StoreMem)
	engine.Schedule(o.scaled(150*time.Second), func() {
		bootVideoVM(2, 40, cgroup.StoreMem)
		host.SetVMWeight(1, 60)
		r.note("t=%.0fs: VM2 booted, weights 60/40", engine.Now().Seconds())
	})
	engine.Schedule(o.scaled(300*time.Second), func() {
		bootVideoVM(3, 0, cgroup.StoreSSD) // SSD-only VM
		r.note("t=%.0fs: VM3 booted on the SSD store only", engine.Now().Seconds())
	})
	engine.Schedule(o.scaled(450*time.Second), func() {
		bootVideoVM(4, 25, cgroup.StoreMem)
		host.SetVMWeight(1, 40)
		host.SetVMWeight(2, 35)
		host.SetMemCacheBytes(1 * GiB) // 2 GB → 4 GB scaled
		r.note("t=%.0fs: VM4 booted, cache grown to 1 GiB, weights 40/35/25", engine.Now().Seconds())
	})
	if err := engine.Run(o.scaled(600 * time.Second)); err != nil {
		r.note("engine: %v", err)
	}

	t := Table{Columns: []string{"window", "vm1 MiB", "vm2 MiB", "vm4 MiB"}}
	windows := []struct {
		label    string
		from, to time.Duration
	}{
		{"vm1 alone", o.scaled(75 * time.Second), o.scaled(150 * time.Second)},
		{"vm1+vm2 (60/40)", o.scaled(240 * time.Second), o.scaled(300 * time.Second)},
		{"vm3 on SSD", o.scaled(390 * time.Second), o.scaled(450 * time.Second)},
		{"vm4 + bigger cache (40/35/25)", o.scaled(540 * time.Second), o.scaled(600 * time.Second)},
	}
	for _, w := range windows {
		row := []string{w.label}
		for _, id := range []cleancache.VMID{1, 2, 4} {
			row = append(row, f1(seriesMeanWindow(sv[id], w.from, w.to)))
		}
		t.Rows = append(t.Rows, row)
	}
	r.Tables = append(r.Tables, t)
	r.note("paper shape: VM1 fills the cache alone; 60/40 split with VM2; VM3 on SSD leaves the memory split untouched; growing the cache + reweighting yields ~40/35/25 (scaled 1/4)")
	return r
}
