// Experiment registry: maps the paper's table/figure ids to runners.

package experiments

// defaultRunners lists every reproduced artifact.
func defaultRunners() map[string]Runner {
	return map[string]Runner{
		"fig5":   Fig5,
		"fig6":   Fig6,
		"fig7":   Fig7,
		"table1": Table1,
		"fig9":   Fig9,
		"fig10":  Fig10,
		"table2": Table2,
		"table3": Table3,
		"fig11":  Fig11,
		"fig12":  Fig12,
		"table4": Table4,
		"fig13":  Fig13,
		"fig14":  Fig14,

		// Beyond the paper's artifacts: transport batching (ISSUE 2),
		// fault-injection robustness (ISSUE 4), the end-to-end
		// pipelined read path (ISSUE 7), latency-budget liveness
		// (ISSUE 9) and the remote third tier (ISSUE 10).
		"transport": TransportExp,
		"faults":    FaultsExp,
		"readpath":  ReadPathExp,
		"liveness":  LivenessExp,
		"tier":      TierExp,
	}
}

func init() {
	for id, r := range defaultRunners() {
		Register(id, r)
	}
}
