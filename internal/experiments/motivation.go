// Motivation experiments (§2.3): non-deterministic hypervisor cache
// distribution across containers under the nesting-agnostic Global
// policy — Figures 5 and 6.

package experiments

import (
	"fmt"
	"time"

	"doubledecker/internal/cgroup"
	"doubledecker/internal/cleancache"
	"doubledecker/internal/ddcache"
	"doubledecker/internal/guest"
	"doubledecker/internal/hypervisor"
	"doubledecker/internal/metrics"
	"doubledecker/internal/sim"
	"doubledecker/internal/workload"
)

// motivation geometry, scaled 1/4 from the paper (VM 2 GB → 512 MiB,
// hypervisor cache 1 GB → 256 MiB).
const (
	motVMBytes        = 512 * MiB
	motContainerBytes = 128 * MiB
	motCacheBytes     = 256 * MiB
	motDuration       = 800 * time.Second / 4
	motOffset         = 200 * time.Second / 4
)

func motWebConfig() workload.WebserverConfig {
	return workload.WebserverConfig{
		Files:      3200,
		MeanBlocks: 32, // ~400 MiB set per container
		Think:      400 * time.Microsecond,
	}
}

// motivationRig boots the single-VM Global-mode setup of §2.3.
func motivationRig(o Opts) (*sim.Engine, *hypervisor.Host, *guest.VM) {
	engine := sim.New(o.Seed)
	host := hypervisor.New(engine, hypervisor.Config{
		Mode:          ddcache.ModeGlobal,
		MemCacheBytes: motCacheBytes,
	})
	vm := host.NewVM(1, motVMBytes, 100)
	return engine, host, vm
}

// trackPool samples a container's hypervisor cache occupancy into series.
func trackPool(engine *sim.Engine, host *hypervisor.Host, c *guest.Container, s *metrics.Series, every time.Duration) *sim.Event {
	return engine.Every(every, func() {
		used := host.Manager().PoolTotalBytes(cleancache.PoolID(c.Group().PoolID()))
		s.Record(engine.Now(), mib(used))
	})
}

// Fig5 runs the two webserver containers one at a time: each alone can
// fill the entire hypervisor cache.
func Fig5(o Opts) *Result {
	r := newResult("fig5", "Hypervisor cache distribution, containers run separately (motivation)")
	duration := o.scaled(motDuration)
	for i, threads := range []int{2, 3} {
		engine, host, vm := motivationRig(o)
		name := fmt.Sprintf("container%d", i+1)
		c := vm.NewContainer(name, motContainerBytes, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
		series := r.addSeries(name)
		trackPool(engine, host, c, series, o.Sample)
		workload.Start(engine, c, workload.NewWebserver(motWebConfig(), engine.Rand()), threads)
		if err := engine.Run(duration); err != nil {
			r.note("engine: %v", err)
		}
		peak := series.Max()
		r.note("%s (%d threads) alone: peak cache %.0f MiB of %.0f MiB available",
			name, threads, peak, mib(motCacheBytes))
	}
	return r
}

// Fig6 runs both containers together: (a) same start time, (b) container 2
// offset — the cache splits disproportionately and order-dependently.
func Fig6(o Opts) *Result {
	r := newResult("fig6", "Hypervisor cache distribution, containers run together (motivation)")
	duration := o.scaled(motDuration)
	offset := o.scaled(motOffset)

	run := func(label string, startDelay2 time.Duration) (*metrics.Series, *metrics.Series) {
		engine, host, vm := motivationRig(o)
		c1 := vm.NewContainer("container1", motContainerBytes, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
		c2 := vm.NewContainer("container2", motContainerBytes, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
		s1 := r.addSeries(label + "/container1")
		s2 := r.addSeries(label + "/container2")
		trackPool(engine, host, c1, s1, o.Sample)
		trackPool(engine, host, c2, s2, o.Sample)
		workload.Start(engine, c1, workload.NewWebserver(motWebConfig(), engine.Rand()), 2)
		engine.Schedule(startDelay2, func() {
			workload.Start(engine, c2, workload.NewWebserver(motWebConfig(), engine.Rand()), 3)
		})
		if err := engine.Run(duration); err != nil {
			r.note("engine: %v", err)
		}
		return s1, s2
	}

	s1, s2 := run("same-start", 0)
	steady := o.scaled(motDuration / 2)
	m1, m2 := s1.MeanAfter(steady), s2.MeanAfter(steady)
	r.Tables = append(r.Tables, Table{
		Title:   "steady-state cache share, same start time (paper: ~2x disparity)",
		Columns: []string{"container", "threads", "mean cache MiB", "share %"},
		Rows: [][]string{
			{"container1", "2", f1(m1), f1(100 * m1 / (m1 + m2))},
			{"container2", "3", f1(m2), f1(100 * m2 / (m1 + m2))},
		},
	})

	o1, o2 := run("offset-start", offset)
	// Find the crossover: the first time container2's share exceeds
	// container1's after its delayed start (paper: ~600 s).
	cross := time.Duration(-1)
	for _, p := range o2.Points() {
		if p.At > offset && p.Value > o1.At(p.At) {
			cross = p.At
			break
		}
	}
	if cross >= 0 {
		r.note("offset run: container2 (started +%.0fs) overtakes container1 at t=%.0fs (paper: starts +200s, overtakes ~600s)",
			offset.Seconds(), cross.Seconds())
	} else {
		r.note("offset run: container2 never overtakes container1 within %v", duration)
	}
	return r
}
