// Tier experiment: capacity overcommit across the three-tier ladder. One
// guest works a set far larger than mem+SSD; with the remote tier off,
// capacity eviction throws the overflow away and re-reads go to the
// virtual disk, while with the remote tier on the same evictions demote
// through the write-behind queue and come back as slow hits with the
// modeled object-store round trip (and bill) charged. The comparison
// holds mem+SSD constant, so any hit-ratio gain is the third tier's
// doing — that gain is the CI gate ddbench applies to this scenario.

package experiments

import (
	"time"

	"doubledecker/internal/cgroup"
	"doubledecker/internal/cleancache"
	"doubledecker/internal/ddcache"
	"doubledecker/internal/hypervisor"
	"doubledecker/internal/sim"
	"doubledecker/internal/store/remote"
	"doubledecker/internal/wallclock"
)

// tier scenario geometry: a 32 MiB cyclic working set against 2 MiB of
// memory cache and 4 MiB of SSD — overcommitted 5x — with 64 MiB of
// remote capacity when the tier is on. The guest's own page cache (8 MiB
// VM, 4 MiB container) is far smaller than the set, so clean evictions
// stream into the hypervisor cache continuously and overflow the SSD.
const (
	tiFileBlocks   = 8192 // 32 MiB working set
	tiVMMemMiB     = 8
	tiContainerMiB = 4
	tiMemCacheMiB  = 2
	tiSSDCacheMiB  = 4
	tiRemoteMiB    = 64
	tiReadTick     = 500 * time.Microsecond
	tiSeqBlocks    = 64 // sequential stride per tick
	tiSkipBlocks   = 32 // strided re-read per tick
	tiDuration     = 40 * time.Second
)

// TierModeResult summarizes one run of the overcommit scenario.
type TierModeResult struct {
	Label     string
	RemoteMiB int64
	// HitPct is the container pool's hypervisor-cache hit ratio; with the
	// remote tier on it includes the slow hits served from object storage.
	HitPct float64
	// TickUS is the mean guest-observed latency per driver tick in µs —
	// slow hits pay the modeled remote round trip, misses pay the disk.
	TickUS float64
	Ticks  int64
	// WallNSPerTick is host wall-clock per tick (simulator throughput).
	WallNSPerTick float64
	// Demotions is the write-behind queue's final accounting.
	Demotions ddcache.DemotionStats
	// PoolDemotions counts objects the pool moved down the ladder.
	PoolDemotions int64
	// Breaker is the remote circuit breaker's final snapshot.
	Breaker ddcache.BreakerStats
	// Cost is the modeled object-store bill (requests, bytes, nano-$).
	Cost remote.CostStats
}

// TierBenchResult pairs the remote-off baseline with the remote-on run.
type TierBenchResult struct {
	Off TierModeResult
	On  TierModeResult
	// HitGain is the remote-on hit ratio minus the remote-off one, in
	// points. The third tier earns its keep only if this is positive.
	HitGain float64
}

// runTierMode executes the overcommit scenario with or without the
// remote tier; mem and SSD capacities are identical in both modes.
func runTierMode(o Opts, label string, remoteMiB int64) TierModeResult {
	engine := sim.New(o.Seed)
	host := hypervisor.New(engine, hypervisor.Config{
		Mode:             ddcache.ModeDD,
		MemCacheBytes:    tiMemCacheMiB * MiB,
		SSDCacheBytes:    tiSSDCacheMiB * MiB,
		RemoteCacheBytes: remoteMiB * MiB,
	})
	vm := host.NewVM(1, tiVMMemMiB*MiB, 100)
	c := vm.NewContainer("overcommit", tiContainerMiB*MiB,
		cgroup.HCacheSpec{Store: cgroup.StoreSSD, Weight: 100})
	f := vm.Allocator().Alloc(tiFileBlocks)

	// Closed-loop driver: the next batch is issued only after the
	// previous one's modeled completion, so device and remote-pipe queues
	// stay bounded and the per-batch latency reflects service time — a
	// slow remote shows up as fewer, slower batches, not as a divergent
	// queue.
	var (
		pos    int64
		latSum time.Duration
		ticks  int64
		free   time.Duration
	)
	engine.Every(tiReadTick, func() {
		now := engine.Now()
		if now < free {
			return
		}
		l := c.Read(now, f, pos%f.Blocks, tiSeqBlocks)
		l += c.Read(now, f, (pos*7)%f.Blocks, tiSkipBlocks)
		pos += tiSeqBlocks
		latSum += l
		ticks++
		free = now + l
	})

	elapsed := wallclock.Stopwatch()
	engine.Run(o.scaled(tiDuration))
	vm.Front().FlushTransport(engine.Now())
	host.Manager().FlushDemotions(engine.Now())
	wall := elapsed()

	res := TierModeResult{
		Label:         label,
		RemoteMiB:     remoteMiB,
		Ticks:         ticks,
		Demotions:     host.Manager().DemotionStats(),
		Breaker:       host.Manager().RemoteBreakerStats(),
		HitPct:        host.Manager().PoolStats(1, cleancache.PoolID(c.Group().PoolID())).HitRatio(),
		PoolDemotions: host.Manager().PoolStats(1, cleancache.PoolID(c.Group().PoolID())).Demotions,
	}
	if rs := host.Remote(); rs != nil {
		res.Cost = rs.Cost()
	}
	if ticks > 0 {
		res.TickUS = float64(latSum.Microseconds()) / float64(ticks)
		res.WallNSPerTick = float64(wall.Nanoseconds()) / float64(ticks)
	}
	return res
}

// tiCache memoizes runs so the registered experiment and ddbench's JSON
// emission share them.
var tiCache = map[Opts]TierBenchResult{}

// TierBench runs the overcommit scenario with the remote tier off and on
// at identical mem+SSD capacities.
func TierBench(o Opts) TierBenchResult {
	if r, ok := tiCache[o]; ok {
		return r
	}
	r := TierBenchResult{
		Off: runTierMode(o, "remote-off", 0),
		On:  runTierMode(o, "remote-on", tiRemoteMiB),
	}
	r.HitGain = r.On.HitPct - r.Off.HitPct
	tiCache[o] = r
	return r
}

// TierExp is the registered "tier" experiment: capacity overcommit with
// and without the remote third tier.
func TierExp(o Opts) *Result {
	b := TierBench(o)
	r := newResult("tier", "Remote third tier under capacity overcommit")

	sum := Table{
		Title: "Overcommit runs (working set 32 MiB vs mem+SSD 6 MiB)",
		Columns: []string{"run", "remote MiB", "hit %", "tick µs",
			"demoted", "dropped", "cancelled", "pool demotions"},
	}
	for _, m := range []TierModeResult{b.Off, b.On} {
		d := m.Demotions
		sum.Rows = append(sum.Rows, []string{
			m.Label, f0(float64(m.RemoteMiB)), f1(m.HitPct), f1(m.TickUS),
			f0(float64(d.Drained)),
			f0(float64(d.DroppedFull + d.DroppedError + d.DroppedBreaker)),
			f0(float64(d.Cancelled)), f0(float64(m.PoolDemotions)),
		})
	}
	r.Tables = append(r.Tables, sum)

	bill := Table{
		Title:   "Modeled object-store bill",
		Columns: []string{"run", "requests", "MiB moved", "cost m$", "breaker", "trips"},
	}
	for _, m := range []TierModeResult{b.Off, b.On} {
		state := "-"
		if m.RemoteMiB > 0 {
			state = m.Breaker.State
		}
		bill.Rows = append(bill.Rows, []string{
			m.Label, f0(float64(m.Cost.Requests)), f1(mib(m.Cost.Bytes)),
			f2(float64(m.Cost.CostNanos) / 1e6), state, f0(float64(m.Breaker.Trips)),
		})
	}
	r.Tables = append(r.Tables, bill)

	r.note("hit ratio %0.1f%% → %0.1f%% (+%.1f points) from the remote tier at identical mem+SSD; each slow hit paid the modeled round trip instead of a disk read",
		b.Off.HitPct, b.On.HitPct, b.HitGain)
	r.note("write-behind drained %d demotions (%d cancelled by invalidation) at a modeled bill of %d requests / %.1f MiB",
		b.On.Demotions.Drained, b.On.Demotions.Cancelled, b.On.Cost.Requests, mib(b.On.Cost.Bytes))
	return r
}
