// Transport experiment: batched vs unbatched hypercall crossings under a
// sequential-write workload with periodic re-reads. Both modes replay the
// identical open-loop op schedule, so hit ratios match and the only
// difference is how many world switches carry the traffic — the §2.3/§5
// overhead argument, with the batching remedy the ROADMAP calls for.

package experiments

import (
	"time"

	"doubledecker/internal/cgroup"
	"doubledecker/internal/cleancache"
	"doubledecker/internal/hypercall"
	"doubledecker/internal/hypervisor"
	"doubledecker/internal/metrics"
	"doubledecker/internal/sim"
	"doubledecker/internal/wallclock"
)

// transport scenario geometry: a 64 MiB file streamed through a 16 MiB
// container, so every written block is reclaimed into the hypervisor
// cache; a reader trails the write head re-reading reclaimed blocks.
const (
	trFileBlocks    = 16384 // 64 MiB
	trContainerMiB  = 16
	trMemCacheMiB   = 128
	trWriteTick     = 2 * time.Millisecond
	trBlocksPerTick = 64
	trReadEvery     = 32   // ticks between read bursts
	trReadBlocks    = 256  // blocks per read burst
	trReadLag       = 8192 // blocks behind the write head
	trDuration      = 20 * time.Second
)

// TransportModeResult summarizes one transport mode's run.
type TransportModeResult struct {
	Label        string
	Calls        int64 // world switches
	PagesCopied  int64
	Batches      int64
	BatchedOps   int64
	SyncOps      int64
	Ops          int64 // total operations delivered
	CallsPerOp   float64
	HitPct       float64
	MeanBatchOps float64 // mean batch occupancy (ops per crossing)
	// OpLatencyNS maps op-code name → mean charged latency in ns.
	OpLatencyNS map[string]int64
	// WallNSPerOp is host wall-clock per delivered op (simulator
	// throughput, not virtual time); excluded from the deterministic
	// report, used by ddbench's JSON emission.
	WallNSPerOp float64
}

// TransportBenchResult pairs the two modes.
type TransportBenchResult struct {
	Batched   TransportModeResult
	Unbatched TransportModeResult
	// Reduction is unbatched hypercalls / batched hypercalls.
	Reduction float64
}

// runTransportMode replays the sequential-write schedule over one
// transport configuration.
func runTransportMode(o Opts, label string, unbatched bool) TransportModeResult {
	engine := sim.New(o.Seed)
	reg := metrics.NewRegistry()
	// NoPipeline on both modes: this experiment isolates batching, so the
	// stock pipelined-read defaults (async gets, readahead) must not give
	// the batched side a different op schedule than the unbatched
	// baseline.
	host := hypervisor.New(engine, hypervisor.Config{
		MemCacheBytes: trMemCacheMiB * MiB,
		Transport:     hypercall.Options{Unbatched: unbatched},
		Metrics:       reg,
		NoPipeline:    true,
	})
	vm := host.NewVM(1, 256*MiB, 100)
	c := vm.NewContainer("seqwriter", trContainerMiB*MiB,
		cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	pool := cleancache.PoolID(c.Group().PoolID())
	f := vm.Allocator().Alloc(trFileBlocks)

	// Open-loop driver: fixed work per tick regardless of op latency, so
	// batched and unbatched runs issue the identical op sequence.
	var head int64
	tick := 0
	engine.Every(trWriteTick, func() {
		now := engine.Now()
		c.Write(now, f, head, trBlocksPerTick)
		head = (head + trBlocksPerTick) % trFileBlocks
		tick++
		if tick%trReadEvery == 0 {
			back := (head - trReadLag + trFileBlocks) % trFileBlocks
			c.Read(now, f, back, trReadBlocks)
		}
	})

	// Host wall time for the WallNSPerOp throughput figure comes from the
	// injectable wall clock: virtual time stays on engine.Now(), and tests
	// can pin the source to make even this field deterministic.
	elapsed := wallclock.Stopwatch()
	engine.Run(o.scaled(trDuration))
	vm.Front().FlushTransport(engine.Now())
	wall := elapsed()

	st := host.Transport(1).Stats()
	res := TransportModeResult{
		Label:       label,
		Calls:       st.Calls,
		PagesCopied: st.PagesCopied,
		Batches:     st.Batches,
		BatchedOps:  st.BatchedOps,
		SyncOps:     st.SyncOps,
		Ops:         st.BatchedOps + st.SyncOps,
		OpLatencyNS: make(map[string]int64),
	}
	if res.Ops > 0 {
		res.CallsPerOp = float64(res.Calls) / float64(res.Ops)
		res.WallNSPerOp = float64(wall.Nanoseconds()) / float64(res.Ops)
	}
	res.HitPct = host.Manager().PoolStats(1, pool).HitRatio()
	res.MeanBatchOps = reg.Series("hypercall.batch_ops").Mean()
	for _, op := range cleancache.OpCodes() {
		if h := reg.Histogram("hypercall.lat." + op.String()); h.Count() > 0 {
			res.OpLatencyNS[op.String()] = h.Mean().Nanoseconds()
		}
	}
	return res
}

// trCache memoizes runs so the registered experiment and ddbench's JSON
// emission share them.
var trCache = map[Opts]TransportBenchResult{}

// TransportBench runs the scenario under both transports.
func TransportBench(o Opts) TransportBenchResult {
	if r, ok := trCache[o]; ok {
		return r
	}
	r := TransportBenchResult{
		Batched:   runTransportMode(o, "batched", false),
		Unbatched: runTransportMode(o, "unbatched", true),
	}
	if r.Batched.Calls > 0 {
		r.Reduction = float64(r.Unbatched.Calls) / float64(r.Batched.Calls)
	}
	trCache[o] = r
	return r
}

// TransportExp is the registered "transport" experiment: hypercall
// traffic with and without batching at equal hit ratio.
func TransportExp(o Opts) *Result {
	b := TransportBench(o)
	r := newResult("transport", "Batched vs unbatched hypercall transport, sequential-write workload")

	traffic := Table{
		Title: "Transport traffic",
		Columns: []string{"transport", "hypercalls", "ops", "hypercalls/op",
			"pages copied", "batches", "mean batch ops", "hit %"},
	}
	for _, m := range []TransportModeResult{b.Unbatched, b.Batched} {
		traffic.Rows = append(traffic.Rows, []string{
			m.Label, f0(float64(m.Calls)), f0(float64(m.Ops)), f2(m.CallsPerOp),
			f0(float64(m.PagesCopied)), f0(float64(m.Batches)), f1(m.MeanBatchOps), f1(m.HitPct),
		})
	}
	r.Tables = append(r.Tables, traffic)

	lat := Table{
		Title:   "Mean charged latency per op code (ns)",
		Columns: []string{"op", "unbatched", "batched"},
	}
	for _, op := range cleancache.OpCodes() {
		ub, okU := b.Unbatched.OpLatencyNS[op.String()]
		bb, okB := b.Batched.OpLatencyNS[op.String()]
		if !okU && !okB {
			continue
		}
		lat.Rows = append(lat.Rows, []string{op.String(), f0(float64(ub)), f0(float64(bb))})
	}
	r.Tables = append(r.Tables, lat)

	r.note("hypercall reduction: %.1fx fewer world switches with batching (%d → %d) at equal hit ratio (%.1f%% vs %.1f%%)",
		b.Reduction, b.Unbatched.Calls, b.Batched.Calls, b.Unbatched.HitPct, b.Batched.HitPct)
	r.note("gets and control ops stay synchronous and drain the ring first, so the backend observes the unbatched op order; puts/flushes amortize one world switch across up to 512 ops / 2 MiB of pages")
	return r
}
