// VM-level memory management flexibility (§2.3.1): application behaviour
// under different in-VM vs hypervisor-cache memory splits — Figure 7 and
// Table 1.

package experiments

import (
	"fmt"
	"time"

	"doubledecker/internal/cgroup"
	"doubledecker/internal/ddcache"
	"doubledecker/internal/guest"
	"doubledecker/internal/hypervisor"
	"doubledecker/internal/sim"
	"doubledecker/internal/workload"

	"doubledecker/internal/datastore"
)

// provisioning geometry, scaled 1/4: the paper splits 2 GB between the
// container's cgroup limit and the hypervisor cache.
const (
	provTotalBytes = 512 * MiB
	provDuration   = 240 * time.Second / 4 * 4 // 240 s per cell at Stretch 1
)

// provSplit is one allocation ratio (in-VM : hypervisor cache).
type provSplit struct {
	label      string
	inVMBytes  int64
	cacheBytes int64
}

func provSplits() []provSplit {
	return []provSplit{
		{"2:0", provTotalBytes, 0},
		{"1.5:0.5", provTotalBytes * 3 / 4, provTotalBytes / 4},
		{"1:1", provTotalBytes / 2, provTotalBytes / 2},
		{"0.5:1.5", provTotalBytes / 4, provTotalBytes * 3 / 4},
		{"0.25:1.75", provTotalBytes / 8, provTotalBytes * 7 / 8},
	}
}

// provWorkload builds one of the four Figure 7 applications sized to the
// scaled geometry.
func provWorkload(name string, engine *sim.Engine) (workload.Profile, int) {
	rng := engine.Rand()
	switch name {
	case "webserver":
		return workload.NewWebserver(workload.WebserverConfig{
			Files:      3200,
			MeanBlocks: 32, // ~400 MiB
			AnonBytes:  22 * MiB,
			Think:      400 * time.Microsecond,
		}, rng), 4
	case "redis":
		return datastore.NewRedis(datastore.RedisConfig{
			DatasetBytes: 400 * MiB,
			TouchesPerOp: 2,
			Think:        80 * time.Microsecond,
		}, rng), 2
	case "mongodb":
		return datastore.NewMongo(datastore.MongoConfig{
			DatasetBytes: 480 * MiB,
			AnonBytes:    48 * MiB,
			ReadsPerOp:   2,
			WriteFrac:    0.05,
			UniformFrac:  0.3,
			Think:        1500 * time.Microsecond,
		}, rng), 2
	case "mysql":
		return datastore.NewMySQL(datastore.MySQLConfig{
			BufferPoolBytes: 400 * MiB,
			DatasetBytes:    512 * MiB,
			TouchesPerOp:    3,
			MissFrac:        0.02,
			LogSyncEvery:    8,
			Think:           600 * time.Microsecond,
		}, rng), 2
	default:
		return nil, 0
	}
}

// provCell runs one (workload, split) cell and reports throughput plus the
// guest metrics Table 1 needs.
type provCell struct {
	opsPerSec  float64
	swapMiB    float64 // cumulative swap-out traffic
	anonMiB    float64 // peak anon residency proxy: working set resident
	hcacheMiB  float64 // steady-state hypervisor cache usage
	container  *guest.Container
	hostViewMB float64
}

func runProvCell(o Opts, app string, split provSplit) provCell {
	engine := sim.New(o.Seed)
	host := hypervisor.New(engine, hypervisor.Config{
		Mode:          ddcache.ModeDD,
		MemCacheBytes: split.cacheBytes,
	})
	// The VM itself holds the container plus the guest kernel.
	vm := host.NewVM(1, split.inVMBytes+96*MiB, 100)
	c := vm.NewContainer(app, split.inVMBytes, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	profile, threads := provWorkload(app, engine)
	r := workload.Start(engine, c, profile, threads)
	duration := o.scaled(provDuration)
	engine.Run(duration)
	g := c.Group()
	stats := g.Stats()
	cs := c.CacheStats()
	return provCell{
		opsPerSec: r.OpsPerSec(engine.Now()),
		swapMiB:   float64(stats.SwapOutPages) * 4096 / float64(MiB),
		anonMiB:   float64(g.AnonWorkingSet()) * 4096 / float64(MiB),
		hcacheMiB: mib(cs.UsedBytes),
		container: c,
	}
}

var provApps = []string{"webserver", "redis", "mongodb", "mysql"}

// Fig7 sweeps the in-VM : hypervisor-cache split for all four
// applications and reports throughput per cell.
func Fig7(o Opts) *Result {
	r := newResult("fig7", "Application throughput vs in-VM/hypervisor-cache memory split")
	cols := []string{"split (inVM:hcache)"}
	cols = append(cols, provApps...)
	t := Table{Title: fmt.Sprintf("ops/sec, total %d MiB (paper total 2 GB)", provTotalBytes/MiB), Columns: cols}
	for _, split := range provSplits() {
		row := []string{split.label}
		for _, app := range provApps {
			cell := runProvCell(o, app, split)
			row = append(row, f1(cell.opsPerSec))
		}
		t.Rows = append(t.Rows, row)
	}
	r.Tables = append(r.Tables, t)
	r.note("paper shape: Webserver and MongoDB flat; Redis and MySQL degrade as memory moves to the hypervisor cache; Redis stalls at the smallest in-VM allocation")
	return r
}

// Table1 reports the guest OS metrics at the equal (1:1) split: swap
// traffic, anonymous memory and hypervisor cache usage per application.
func Table1(o Opts) *Result {
	r := newResult("table1", "Guest OS metrics at the equal split (Table 1)")
	split := provSplits()[2] // 1:1
	t := Table{
		Title:   fmt.Sprintf("1:1 split: %d MiB in-VM, %d MiB hypervisor cache", split.inVMBytes/MiB, split.cacheBytes/MiB),
		Columns: []string{"application", "total swap (MiB)", "anon memory (MiB)", "hcache usage (MiB)"},
	}
	for _, app := range provApps {
		cell := runProvCell(o, app, split)
		t.Rows = append(t.Rows, []string{app, f1(cell.swapMiB), f1(cell.anonMiB), f1(cell.hcacheMiB)})
	}
	r.Tables = append(r.Tables, t)
	r.note("paper shape: file-backed apps (Webserver, MongoDB) fill the hypervisor cache with zero swap; anon-heavy apps (Redis, MySQL) swap heavily and barely use the cache")
	return r
}
