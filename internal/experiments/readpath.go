// End-to-end readpath experiment: guest-observed read throughput with
// the pipelined read path on (stock defaults: async tagged gets,
// zero-copy bulk responses, readahead window) vs off (synchronous
// probe-per-block — the pre-pipeline guest). Unlike the transport-level
// readpath bench in cmd/ddbench, the traffic here flows through the full
// guest stack — pagecache.Cache.Read issuing Front.GetAsync handles over
// each VM's hypercall transport — on the paper's Table 2 / Fig 7
// read-heavy profile shape (~89% reads).

package experiments

import (
	"time"

	"doubledecker/internal/cgroup"
	"doubledecker/internal/cleancache"
	"doubledecker/internal/ddcache"
	"doubledecker/internal/fsmodel"
	"doubledecker/internal/guest"
	"doubledecker/internal/hypervisor"
	"doubledecker/internal/sim"
	"doubledecker/internal/workload"
)

// Scenario geometry: each guest streams a 48 MiB fileset (3 × 16 MiB
// files) through a 16 MiB container, so two thirds of every pass was
// reclaimed into the hypervisor pool — steady state is page-cache miss →
// second-chance hit, the path the pipeline accelerates. Each step reads
// a 64-block burst and rewrites 8 blocks of a small hot log region
// (~89% reads; re-dirtying resident pages keeps the dirty backlog
// bounded, so writeback never saturates the virtual disk).
const (
	rpFilesPerVM   = 3
	rpFileBlocks   = 4096 // 16 MiB
	rpContainerMiB = 16
	rpVMMemMiB     = 96
	rpHostMemMiB   = 64 // per guest
	rpBurstBlocks  = 64
	rpWriteBlocks  = 8
	rpHotBlocks    = 64
	rpWarmup       = time.Second
	rpMinWarmup    = 600 * time.Millisecond // must outlast the priming pass's disk backlog
	rpMeasure      = 2 * time.Second
)

// rpGuestCounts is the guest sweep; the CI gate reads the 8-guest row.
var rpGuestCounts = []int{1, 4, 8}

// rpProfile is the per-container closed-loop workload.
type rpProfile struct {
	files []*fsmodel.File
	total int64 // fileset blocks
	pos   int64 // read head
	hot   int64 // hot-region write head

	readBlocks  int64
	writeBlocks int64
}

func (p *rpProfile) Name() string { return "readpath-stream" }

// Prepare primes the container: one full pass loads the fileset from
// disk and spills the overflow into the hypervisor pool (exclusive
// protocol), so the measured window starts in steady state.
func (p *rpProfile) Prepare(now time.Duration, c *guest.Container) {
	for _, f := range p.files {
		c.Read(now, f, 0, f.Blocks)
	}
}

func (p *rpProfile) Step(now time.Duration, c *guest.Container, _ int) (time.Duration, int64) {
	var lat time.Duration
	for remaining := int64(rpBurstBlocks); remaining > 0; {
		f := p.files[p.pos/rpFileBlocks]
		off := p.pos % rpFileBlocks
		n := remaining
		if left := rpFileBlocks - off; n > left {
			n = left
		}
		lat += c.Read(now+lat, f, off, n)
		p.pos = (p.pos + n) % p.total
		remaining -= n
	}
	p.readBlocks += rpBurstBlocks
	lat += c.Write(now+lat, p.files[0], p.hot, rpWriteBlocks)
	p.hot = (p.hot + rpWriteBlocks) % rpHotBlocks
	p.writeBlocks += rpWriteBlocks
	return lat, rpBurstBlocks * fsmodel.BlockSize
}

// ReadPathE2EMode summarizes one (pipeline, guest count) run.
type ReadPathE2EMode struct {
	Label  string
	Guests int
	// ReadBlocksPerSec is the aggregate guest-observed read throughput
	// (blocks per virtual second) over the steady-state window.
	ReadBlocksPerSec float64
	// ReadMBPerSec is the same in MiB/s.
	ReadMBPerSec float64
	// ReadPct is the guest op mix: read blocks / (read + write blocks).
	ReadPct float64
	// CCHitPct is the fraction of page-cache misses served by the
	// second-chance cache over the whole run.
	CCHitPct float64
	// Transport aggregates (whole run, all guests).
	Calls         int64
	AsyncGets     int64
	StagedHits    int64
	PagesCopied   int64
	PagesMapped   int64
	ReadAheadGets int64
	ReadAheadHits int64
	DiskReads     int64
}

// ReadPathE2EResult pairs the pipeline-on and -off sweeps.
type ReadPathE2EResult struct {
	GuestCounts []int
	On          []ReadPathE2EMode
	Off         []ReadPathE2EMode
	// Speedup maps guest count → on/off guest-observed read throughput.
	Speedup map[int]float64
}

// runReadPathE2EMode runs one full-stack configuration.
func runReadPathE2EMode(o Opts, guests int, pipeline bool) ReadPathE2EMode {
	engine := sim.New(o.Seed + int64(guests))
	hopts := []hypervisor.Option{
		hypervisor.WithMode(ddcache.ModeDD),
		hypervisor.WithMemCache(int64(guests) * rpHostMemMiB * MiB),
	}
	label := "pipeline-on"
	if !pipeline {
		label = "pipeline-off"
		hopts = append(hopts, hypervisor.WithoutPipeline())
	}
	host := hypervisor.NewHost(engine, hopts...)

	type vmState struct {
		vm      *guest.VM
		c       *guest.Container
		profile *rpProfile
		runner  *workload.Runner
		pool    cleancache.PoolID
	}
	vms := make([]*vmState, 0, guests)
	for g := 1; g <= guests; g++ {
		vm := host.NewVM(cleancache.VMID(g), rpVMMemMiB*MiB, 100)
		c := vm.NewContainer("rp", rpContainerMiB*MiB,
			cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
		p := &rpProfile{total: rpFilesPerVM * rpFileBlocks}
		for i := 0; i < rpFilesPerVM; i++ {
			p.files = append(p.files, vm.Allocator().Alloc(rpFileBlocks))
		}
		vms = append(vms, &vmState{
			vm: vm, c: c, profile: p,
			pool: cleancache.PoolID(c.Group().PoolID()),
		})
	}
	for _, s := range vms {
		s.runner = workload.Start(engine, s.c, s.profile, 1)
	}

	warmup := o.scaled(rpWarmup)
	if warmup < rpMinWarmup {
		warmup = rpMinWarmup
	}
	engine.Run(warmup)
	type snap struct{ read, write int64 }
	start := make([]snap, len(vms))
	for i, s := range vms {
		start[i] = snap{s.profile.readBlocks, s.profile.writeBlocks}
	}
	startAt := engine.Now()
	engine.Run(startAt + o.scaled(rpMeasure))
	window := engine.Now() - startAt

	res := ReadPathE2EMode{Label: label, Guests: guests}
	var readDelta, writeDelta int64
	var misses, ccHits int64
	for i, s := range vms {
		readDelta += s.profile.readBlocks - start[i].read
		writeDelta += s.profile.writeBlocks - start[i].write
		io := s.c.IOStats()
		misses += io.Misses
		ccHits += io.CCHits
		res.DiskReads += io.DiskReads
		ps := host.Manager().PoolStats(s.vm.ID(), s.pool)
		res.ReadAheadGets += ps.ReadAheadGets
		res.ReadAheadHits += ps.ReadAheadHits
	}
	if window > 0 {
		res.ReadBlocksPerSec = float64(readDelta) / window.Seconds()
		res.ReadMBPerSec = res.ReadBlocksPerSec * fsmodel.BlockSize / float64(MiB)
	}
	if total := readDelta + writeDelta; total > 0 {
		res.ReadPct = 100 * float64(readDelta) / float64(total)
	}
	if misses > 0 {
		res.CCHitPct = 100 * float64(ccHits) / float64(misses)
	}
	ts := host.TransportStats()
	res.Calls = ts.Calls
	res.AsyncGets = ts.AsyncGets
	res.StagedHits = ts.StagedHits
	res.PagesCopied = ts.PagesCopied
	res.PagesMapped = ts.PagesMapped
	return res
}

// rpCache memoizes sweeps so the registered experiment and ddbench's
// JSON emission share them.
var rpCache = map[Opts]ReadPathE2EResult{}

// ReadPathE2EBench runs the guest sweep under both configurations.
func ReadPathE2EBench(o Opts) ReadPathE2EResult {
	if r, ok := rpCache[o]; ok {
		return r
	}
	r := ReadPathE2EResult{GuestCounts: rpGuestCounts, Speedup: make(map[int]float64)}
	for _, g := range rpGuestCounts {
		on := runReadPathE2EMode(o, g, true)
		off := runReadPathE2EMode(o, g, false)
		r.On = append(r.On, on)
		r.Off = append(r.Off, off)
		if off.ReadBlocksPerSec > 0 {
			r.Speedup[g] = on.ReadBlocksPerSec / off.ReadBlocksPerSec
		}
	}
	rpCache[o] = r
	return r
}

// ReadPathExp is the registered "readpath" experiment: the end-to-end
// pipelined read path vs the synchronous baseline.
func ReadPathExp(o Opts) *Result {
	b := ReadPathE2EBench(o)
	r := newResult("readpath", "End-to-end pipelined guest read path vs synchronous baseline")

	t := Table{
		Title: "Guest-observed read throughput (steady state)",
		Columns: []string{"guests", "mode", "read MiB/s", "read %", "cc hit %",
			"hypercalls", "async gets", "staged hits", "ra hits", "pages copied", "pages mapped"},
	}
	for i, g := range b.GuestCounts {
		for _, m := range []ReadPathE2EMode{b.Off[i], b.On[i]} {
			t.Rows = append(t.Rows, []string{
				f0(float64(g)), m.Label, f1(m.ReadMBPerSec), f1(m.ReadPct), f1(m.CCHitPct),
				f0(float64(m.Calls)), f0(float64(m.AsyncGets)), f0(float64(m.StagedHits)),
				f0(float64(m.ReadAheadHits)), f0(float64(m.PagesCopied)), f0(float64(m.PagesMapped)),
			})
		}
	}
	r.Tables = append(r.Tables, t)

	for _, g := range b.GuestCounts {
		r.note("%d guests: %.2fx guest-observed read throughput with the pipeline on", g, b.Speedup[g])
	}
	r.note("steady state is page-cache miss → second-chance hit: the pipeline converts the per-block synchronous crossing (call + page copy) into staged consumption fed by READ_AHEAD, async tagged gets, and zero-copy handover")
	return r
}
