// Impact of caching modes (§5.1): cache-size distribution and application
// performance under Global, DDMem and DDSSD — Figures 9, 10 and Table 2.

package experiments

import (
	"time"

	"doubledecker/internal/cgroup"
	"doubledecker/internal/cleancache"
	"doubledecker/internal/ddcache"
	"doubledecker/internal/hypervisor"
	"doubledecker/internal/metrics"
	"doubledecker/internal/sim"
	"doubledecker/internal/workload"
)

// caching-modes geometry, scaled 1/4 from the paper: VM 8 GB → 2 GiB,
// containers 1 GB → 256 MiB, memory cache 3 GB → 768 MiB, SSD cache
// 240 GB → 60 GiB.
const (
	cmVMBytes        = 2 * GiB
	cmContainerBytes = 256 * MiB
	cmMemCacheBytes  = 768 * MiB
	cmSSDCacheBytes  = 60 * GiB
	cmDuration       = 600 * time.Second
)

// cmWorkloads builds the four paper workloads at scaled sizes.
func cmWorkloads(engine *sim.Engine) []struct {
	name    string
	profile workload.Profile
	threads int
} {
	rng := engine.Rand()
	return []struct {
		name    string
		profile workload.Profile
		threads int
	}{
		{"webserver", workload.NewWebserver(workload.WebserverConfig{
			Files:      4300,
			MeanBlocks: 32, // ~540 MiB: the spill fits DD's effective web share
			AnonBytes:  22 * MiB,
			Think:      time.Millisecond,
		}, rng), 4},
		{"proxycache", workload.NewWebproxy(workload.WebproxyConfig{
			Files:      8300,
			MeanBlocks: 8, // ~260 MiB: small spill, largely mode-insensitive
			Think:      2 * time.Millisecond,
		}, rng), 4},
		{"mail", workload.NewVarmail(workload.VarmailConfig{
			Files:      13000,
			MeanBlocks: 6, // ~305 MiB: spills past its container
			Think:      time.Millisecond,
		}, rng), 4},
		{"videoserver", workload.NewVideoserver(workload.VideoserverConfig{
			ActiveVideos:    2, // 256 MiB hot set, memory-resident
			PassiveVideos:   8, // 1 GiB written by the vidwriter
			VideoBlocks:     32768,
			ChunkBlocks:     64,
			WriterThreads:   1,
			WriterThink:     5 * time.Millisecond, // ~45 MB/s of new content
			PassiveReadFrac: 0.06,
			Think:           time.Millisecond,
		}, rng), 8},
	}
}

// cmMode describes one caching configuration of §5.1.
type cmMode struct {
	label string
	mode  ddcache.Mode
	store cgroup.StoreType
}

func cmModes() []cmMode {
	return []cmMode{
		{"Global", ddcache.ModeGlobal, cgroup.StoreMem},
		{"DDMem", ddcache.ModeDD, cgroup.StoreMem},
		{"DDSSD", ddcache.ModeDD, cgroup.StoreSSD},
	}
}

// cmRow is the per-workload outcome of one mode run (a Table 2 cell
// group).
type cmRow struct {
	throughputMB float64
	latencyMS    float64
	lookupStore  float64
	evictions    int64
	series       *metrics.Series
}

// cmRun holds a full mode run.
type cmRun struct {
	label string
	rows  map[string]cmRow // by workload name
}

// runCachingMode executes the 4-container scenario under one mode.
func runCachingMode(o Opts, m cmMode) cmRun {
	engine := sim.New(o.Seed)
	cfg := hypervisor.Config{Mode: m.mode}
	switch m.store {
	case cgroup.StoreSSD:
		cfg.SSDCacheBytes = cmSSDCacheBytes
	default:
		cfg.MemCacheBytes = cmMemCacheBytes
	}
	host := hypervisor.New(engine, cfg)
	vm := host.NewVM(1, cmVMBytes, 100)

	type tracked struct {
		runner *workload.Runner
		series *metrics.Series
		pool   cleancache.PoolID
		steady workload.Checkpoint
	}
	run := cmRun{label: m.label, rows: make(map[string]cmRow)}
	tracks := make(map[string]*tracked)
	for _, w := range cmWorkloads(engine) {
		c := vm.NewContainer(w.name, cmContainerBytes, cgroup.HCacheSpec{Store: m.store, Weight: 25})
		series := metrics.NewSeries(m.label + "/" + w.name)
		tr := &tracked{series: series, pool: cleancache.PoolID(c.Group().PoolID())}
		engine.Every(o.Sample, func() {
			series.Record(engine.Now(), mib(host.Manager().PoolTotalBytes(tr.pool)))
		})
		tr.runner = workload.Start(engine, c, w.profile, w.threads)
		tracks[w.name] = tr
	}
	// Measure throughput and latency over the steady-state window (the
	// last 60% of the run); the warm-up is dominated by compulsory disk
	// misses that the paper's 4x-longer runs amortize away.
	duration := o.scaled(cmDuration)
	engine.Run(duration * 2 / 5)
	for _, tr := range tracks {
		tr.steady = tr.runner.CheckpointNow(engine.Now())
	}
	engine.Run(duration)
	for name, tr := range tracks {
		cs := host.Manager().PoolStats(1, tr.pool)
		run.rows[name] = cmRow{
			throughputMB: tr.runner.MBPerSecSince(tr.steady, engine.Now()),
			latencyMS:    float64(tr.runner.Latency().Mean()) / float64(time.Millisecond),
			lookupStore:  cs.HitRatio(),
			evictions:    cs.Evictions,
			series:       tr.series,
		}
	}
	return run
}

// cachingModesAll runs the three modes. Results are memoized per Opts so
// fig9, fig10 and table2 share one set of runs.
var cmCache = map[Opts][]cmRun{}

func cachingModesAll(o Opts) []cmRun {
	if runs, ok := cmCache[o]; ok {
		return runs
	}
	runs := make([]cmRun, 0, 3)
	for _, m := range cmModes() {
		runs = append(runs, runCachingMode(o, m))
	}
	cmCache[o] = runs
	return runs
}

var cmWorkloadOrder = []string{"webserver", "proxycache", "mail", "videoserver"}

// Fig9 reports cache occupancy over time for the non-video containers
// under the three caching modes.
func Fig9(o Opts) *Result {
	r := newResult("fig9", "Hypervisor cache distribution across containers, three caching modes")
	for _, run := range cachingModesAll(o) {
		for _, name := range cmWorkloadOrder {
			if name == "videoserver" {
				continue // shown in fig10, as in the paper
			}
			key := run.label + "/" + name
			r.Series[key] = run.rows[name].series
			r.SeriesOrder = append(r.SeriesOrder, key)
		}
	}
	r.note("paper shape: under Global the web/mail curves dip as video pressure evicts them; under DDMem each container keeps its share once claimed; under DDSSD everything fits")
	return r
}

// Fig10 reports the videoserver's cache occupancy under the three modes.
func Fig10(o Opts) *Result {
	r := newResult("fig10", "Videoserver cache usage with different caching configurations")
	for _, run := range cachingModesAll(o) {
		key := run.label + "/videoserver"
		r.Series[key] = run.rows["videoserver"].series
		r.SeriesOrder = append(r.SeriesOrder, key)
	}
	r.note("paper shape: video peaks at the full cache alone, then is squeezed to ~fair share under DDMem; unconstrained on the SSD store")
	return r
}

// Table2 reports throughput, latency, lookup-to-store ratio and eviction
// counts per workload per caching mode.
func Table2(o Opts) *Result {
	r := newResult("table2", "Application performance and cache behaviour per caching mode (Table 2)")
	for _, run := range cachingModesAll(o) {
		t := Table{
			Title:   run.label,
			Columns: []string{"workload", "throughput (MB/s)", "latency (ms)", "lookup-to-store (%)*", "evictions"},
		}
		for _, name := range cmWorkloadOrder {
			row := run.rows[name]
			t.Rows = append(t.Rows, []string{
				name, f1(row.throughputMB), f2(row.latencyMS), f1(row.lookupStore), f0(float64(row.evictions)),
			})
		}
		r.Tables = append(r.Tables, t)
	}
	r.note("*lookup-to-store reported as the second-chance hit ratio (successful lookups per lookup), the reading consistent with all of the paper's Table 2 rows")
	r.note("paper shape: DDMem web ≈6x Global web; mail/proxy marginal gains; video slightly down under DDMem; DDSSD slower for web/video but zero evictions and better mail")
	return r
}
