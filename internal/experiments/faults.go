// Faults experiment: graceful SSD degradation under a device stall. Two
// VMs share the host cache — VM1 in a memory pool, VM2 in an SSD pool —
// and the host SSD stalls for a 10 s window mid-run. The circuit breaker
// must trip (shedding SSD traffic to memory-or-miss), then restore after
// the stall, and VM1's latency must stay bounded throughout: a failing
// device one VM depends on must not become a noisy neighbour for the
// others.

package experiments

import (
	"time"

	"doubledecker/internal/cgroup"
	"doubledecker/internal/cleancache"
	"doubledecker/internal/ddcache"
	"doubledecker/internal/fault"
	"doubledecker/internal/fsmodel"
	"doubledecker/internal/guest"
	"doubledecker/internal/hypervisor"
	"doubledecker/internal/metrics"
	"doubledecker/internal/sim"
	"doubledecker/internal/wallclock"
)

// faults scenario geometry: each VM streams a 32 MiB file through an
// 8 MiB container with trailing re-reads of reclaimed blocks, for 30 s;
// the host SSD stalls during [10 s, 20 s). The offered load is sized well
// below the simulated SSD's service rate (8 puts per 4 ms tick ≈ 14%
// utilization plus read bursts) so queues stay short and per-op times
// track virtual time — a stall then shows up as the breaker's doing, not
// as pre-existing queue delay.
const (
	ftFileBlocks    = 8192 // 32 MiB
	ftContainerMiB  = 8
	ftMemCacheMiB   = 64
	ftSSDCacheMiB   = 256
	ftWriteTick     = 4 * time.Millisecond
	ftBlocksPerTick = 8
	ftReadEvery     = 8    // ticks between read bursts
	ftReadBlocks    = 32   // blocks per read burst
	ftReadLag       = 2560 // blocks behind the write head (past the container window)
	ftDuration      = 30 * time.Second
	ftStallFrom     = 10 * time.Second
	ftStallTo       = 20 * time.Second
	ftStallTimeout  = time.Millisecond // modeled device timeout per stalled op
)

// Phase indices for the per-phase latency breakdown.
const (
	phaseBefore = iota
	phaseDuring
	phaseAfter
	phaseCount
)

// phaseLabels names the phases relative to the stall window.
var phaseLabels = [phaseCount]string{"before stall", "during stall", "after stall"}

// FaultsModeResult summarizes one run of the scenario (healthy or with
// the injected stall).
type FaultsModeResult struct {
	Label string
	// VM1TickUS / VM2TickUS are each VM's mean per-tick latency in µs,
	// split by phase relative to the stall window.
	VM1TickUS [phaseCount]float64
	VM2TickUS [phaseCount]float64
	// VM1HitPct / VM2HitPct are hypervisor-cache hit ratios.
	VM1HitPct float64
	VM2HitPct float64
	// Ticks is the number of driver ticks executed across both VMs.
	Ticks int64
	// WallNSPerTick is host wall-clock per tick (simulator throughput).
	WallNSPerTick float64
	// Breaker is the SSD circuit breaker's final snapshot.
	Breaker ddcache.BreakerStats
	// InjectedFaults counts the faults the plan actually fired.
	InjectedFaults int64
}

// FaultsBenchResult pairs the healthy baseline with the faulted run.
type FaultsBenchResult struct {
	Healthy FaultsBenchMode
	Faulted FaultsBenchMode
	// VM1Impact is VM1's during-stall mean tick latency in the faulted
	// run divided by the same window in the healthy run — the
	// noisy-neighbour factor the breaker is meant to bound.
	VM1Impact float64
}

// FaultsBenchMode aliases FaultsModeResult for the paired result.
type FaultsBenchMode = FaultsModeResult

// runFaultsMode executes the two-VM scenario, optionally with the SSD
// stall plan installed.
func runFaultsMode(o Opts, label string, withFaults bool) FaultsModeResult {
	engine := sim.New(o.Seed)
	reg := metrics.NewRegistry()
	stallFrom, stallTo := o.scaled(ftStallFrom), o.scaled(ftStallTo)
	var inj *fault.Injector
	if withFaults {
		inj = fault.New(fault.Plan{Seed: o.Seed, Rules: []fault.Rule{
			{Site: "host-ssd.*", Kind: fault.KindStall, From: stallFrom, To: stallTo, Delay: ftStallTimeout},
		}})
	}
	host := hypervisor.New(engine, hypervisor.Config{
		MemCacheBytes: ftMemCacheMiB * MiB,
		SSDCacheBytes: ftSSDCacheMiB * MiB,
		Metrics:       reg,
		Faults:        inj,
		Breaker: ddcache.BreakerConfig{
			Threshold: 5,
			Window:    o.scaled(time.Second),
			Cooldown:  o.scaled(2 * time.Second),
			Probes:    3,
		},
	})
	vm1 := host.NewVM(1, 128*MiB, 50)
	vm2 := host.NewVM(2, 128*MiB, 50)
	c1 := vm1.NewContainer("vm1-mem", ftContainerMiB*MiB,
		cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	c2 := vm2.NewContainer("vm2-ssd", ftContainerMiB*MiB,
		cgroup.HCacheSpec{Store: cgroup.StoreSSD, Weight: 100})
	f1 := vm1.Allocator().Alloc(ftFileBlocks)
	f2 := vm2.Allocator().Alloc(ftFileBlocks)

	phase := func(now time.Duration) int {
		switch {
		case now < stallFrom:
			return phaseBefore
		case now < stallTo:
			return phaseDuring
		default:
			return phaseAfter
		}
	}
	// Per-VM, per-phase tick latency accumulators. The open-loop drivers
	// issue identical schedules in both modes, so any latency difference
	// is the fault plan's doing.
	var latSum [2][phaseCount]time.Duration
	var latN [2][phaseCount]int64
	type vmDriver struct {
		c         *guest.Container
		f         *fsmodel.File
		headTotal int64
		tick      int
	}
	drivers := [2]*vmDriver{{c: c1, f: f1}, {c: c2, f: f2}}
	for i, d := range drivers {
		idx, d := i, d
		engine.Every(ftWriteTick, func() {
			now := engine.Now()
			ph := phase(now)
			l := d.c.Write(now, d.f, d.headTotal%ftFileBlocks, ftBlocksPerTick)
			d.headTotal += ftBlocksPerTick
			d.tick++
			// Re-read reclaimed blocks once the head is far enough along
			// that the lagged window has actually been written.
			if d.tick%ftReadEvery == 0 && d.headTotal >= ftReadLag+ftReadBlocks {
				back := (d.headTotal - ftReadLag) % ftFileBlocks
				l += d.c.Read(now, d.f, back, ftReadBlocks)
			}
			latSum[idx][ph] += l
			latN[idx][ph]++
		})
	}

	elapsed := wallclock.Stopwatch()
	engine.Run(o.scaled(ftDuration))
	vm1.Front().FlushTransport(engine.Now())
	vm2.Front().FlushTransport(engine.Now())
	wall := elapsed()

	res := FaultsModeResult{
		Label:          label,
		Breaker:        host.Manager().SSDBreakerStats(),
		InjectedFaults: inj.Injected(fault.KindNone),
	}
	for vmIdx := 0; vmIdx < 2; vmIdx++ {
		for ph := 0; ph < phaseCount; ph++ {
			res.Ticks += latN[vmIdx][ph]
			if latN[vmIdx][ph] == 0 {
				continue
			}
			us := float64(latSum[vmIdx][ph].Microseconds()) / float64(latN[vmIdx][ph])
			if vmIdx == 0 {
				res.VM1TickUS[ph] = us
			} else {
				res.VM2TickUS[ph] = us
			}
		}
	}
	if res.Ticks > 0 {
		res.WallNSPerTick = float64(wall.Nanoseconds()) / float64(res.Ticks)
	}
	res.VM1HitPct = host.Manager().PoolStats(1, cleancache.PoolID(c1.Group().PoolID())).HitRatio()
	res.VM2HitPct = host.Manager().PoolStats(2, cleancache.PoolID(c2.Group().PoolID())).HitRatio()
	return res
}

// ftCache memoizes runs so the registered experiment and ddbench's JSON
// emission share them.
var ftCache = map[Opts]FaultsBenchResult{}

// FaultsBench runs the scenario healthy and with the injected stall.
func FaultsBench(o Opts) FaultsBenchResult {
	if r, ok := ftCache[o]; ok {
		return r
	}
	r := FaultsBenchResult{
		Healthy: runFaultsMode(o, "healthy", false),
		Faulted: runFaultsMode(o, "ssd-stall", true),
	}
	if r.Healthy.VM1TickUS[phaseDuring] > 0 {
		r.VM1Impact = r.Faulted.VM1TickUS[phaseDuring] / r.Healthy.VM1TickUS[phaseDuring]
	}
	ftCache[o] = r
	return r
}

// FaultsExp is the registered "faults" experiment: VM2's SSD pool
// survives a 10 s device stall, with bounded latency impact on VM1.
func FaultsExp(o Opts) *Result {
	b := FaultsBench(o)
	r := newResult("faults", "SSD device stall: circuit-breaker degradation and recovery")

	lat := Table{
		Title:   "Mean per-tick latency (µs) by phase",
		Columns: []string{"run", "vm", "before stall", "during stall", "after stall"},
	}
	for _, m := range []FaultsModeResult{b.Healthy, b.Faulted} {
		lat.Rows = append(lat.Rows,
			[]string{m.Label, "vm1 (mem)", f1(m.VM1TickUS[phaseBefore]), f1(m.VM1TickUS[phaseDuring]), f1(m.VM1TickUS[phaseAfter])},
			[]string{m.Label, "vm2 (ssd)", f1(m.VM2TickUS[phaseBefore]), f1(m.VM2TickUS[phaseDuring]), f1(m.VM2TickUS[phaseAfter])},
		)
	}
	r.Tables = append(r.Tables, lat)

	sum := Table{
		Title:   "Run summary",
		Columns: []string{"run", "vm1 hit %", "vm2 hit %", "breaker", "trips", "restores", "injected faults"},
	}
	for _, m := range []FaultsModeResult{b.Healthy, b.Faulted} {
		sum.Rows = append(sum.Rows, []string{
			m.Label, f1(m.VM1HitPct), f1(m.VM2HitPct),
			m.Breaker.State, f0(float64(m.Breaker.Trips)), f0(float64(m.Breaker.Restores)),
			f0(float64(m.InjectedFaults)),
		})
	}
	r.Tables = append(r.Tables, sum)

	r.note("VM2's SSD pool survives the stall: the breaker trips (%d) and restores (%d), puts degrade to memory-or-miss instead of eating the %v device timeout per op",
		b.Faulted.Breaker.Trips, b.Faulted.Breaker.Restores, ftStallTimeout)
	r.note("VM1 during-stall latency impact: %.2fx the healthy baseline (cleancache contract: every degraded op is a safe drop or miss, never an error surfaced to the guest)",
		b.VM1Impact)
	return r
}
