// Efficacy of cooperative memory management (§5.2.1, Table 4): the
// centralized Morai++ baseline (best hypervisor-cache partition found by
// sweep, VM-level memory untouched) versus DoubleDecker's two-level
// provisioning (in-VM cgroup limits plus cache weights).

package experiments

import (
	"fmt"
	"time"

	"doubledecker/internal/cgroup"
	"doubledecker/internal/datastore"
	"doubledecker/internal/ddcache"
	"doubledecker/internal/guest"
	"doubledecker/internal/hypervisor"
	"doubledecker/internal/sim"
	"doubledecker/internal/workload"
)

// cooperative geometry, scaled 1/4: VM 6 GB → 1.5 GiB, hypervisor cache
// 2 GB → 512 MiB, container limits (DD case) 1/2/2/1 GB → 256/512/512/256.
const (
	coopVMBytes    = 1600 * MiB
	coopCacheBytes = 512 * MiB
	coopDuration   = 400 * time.Second
)

// coopApps in presentation order (as in Table 4).
var coopApps = []string{"mongodb", "mysql", "redis", "webserver"}

// coopSLA is each application's target throughput in ops/sec, scaled to
// this simulator's operating point (the paper's absolute YCSB numbers are
// testbed-specific; the experiment's point is which technique can meet
// all four at once).
var coopSLA = map[string]float64{
	"mongodb":   150,
	"mysql":     300,
	"redis":     1000,
	"webserver": 60,
}

func coopProfile(name string, engine *sim.Engine) (workload.Profile, int) {
	rng := engine.Rand()
	switch name {
	case "mongodb":
		return datastore.NewMongo(datastore.MongoConfig{
			DatasetBytes: 450 * MiB,
			AnonBytes:    48 * MiB,
			ReadsPerOp:   2,
			WriteFrac:    0.05,
			UniformFrac:  0.3,
			Think:        1500 * time.Microsecond,
		}, rng), 2
	case "mysql":
		return datastore.NewMySQL(datastore.MySQLConfig{
			BufferPoolBytes: 400 * MiB,
			DatasetBytes:    512 * MiB,
			TouchesPerOp:    3,
			MissFrac:        0.02,
			LogSyncEvery:    8,
			Think:           600 * time.Microsecond,
		}, rng), 2
	case "redis":
		return datastore.NewRedis(datastore.RedisConfig{
			DatasetBytes: 480 * MiB,
			TouchesPerOp: 2,
			// YCSB clients pace near the SLA; a full-speed scan would
			// keep the working set artificially hot under VM pressure.
			Think: 1500 * time.Microsecond,
		}, rng), 2
	default: // webserver
		return workload.NewWebserver(workload.WebserverConfig{
			Files:      5600,
			MeanBlocks: 32, // ~700 MiB: the in-VM memory hog of the paper's Table 4
			AnonBytes:  22 * MiB,
			Think:      time.Millisecond,
		}, rng), 4
	}
}

// coopOutcome is one configuration's result.
type coopOutcome struct {
	label      string
	ops        map[string]float64 // steady ops/sec
	appMemMiB  map[string]float64 // in-VM usage (file+anon) at end
	hcacheMiB  map[string]float64
	slaMet     int
	aggregate  float64 // sum of ops/SLA ratios, the tie-breaker
	cacheSplit string
}

// runCoop executes one configuration. limits maps app → cgroup limit
// bytes (0 = VM-bound, the Morai++ case); weights maps app → hypervisor
// cache weight.
func runCoop(o Opts, label string, limits, weights map[string]int64, split string) coopOutcome {
	engine := sim.New(o.Seed)
	host := hypervisor.New(engine, hypervisor.Config{
		Mode:          ddcache.ModeDD,
		MemCacheBytes: coopCacheBytes,
	})
	vm := host.NewVM(1, coopVMBytes, 100)
	runners := make(map[string]*workload.Runner, len(coopApps))
	containers := make(map[string]*guest.Container, len(coopApps))
	for _, app := range coopApps {
		c := vm.NewContainer(app, limits[app],
			cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: int(weights[app])})
		profile, threads := coopProfile(app, engine)
		runners[app] = workload.Start(engine, c, profile, threads)
		containers[app] = c
	}
	duration := o.scaled(coopDuration)
	engine.Run(duration * 2 / 5)
	checkpoints := make(map[string]workload.Checkpoint, len(coopApps))
	for app, r := range runners {
		checkpoints[app] = r.CheckpointNow(engine.Now())
	}
	engine.Run(duration)
	out := coopOutcome{
		label:      label,
		ops:        make(map[string]float64),
		appMemMiB:  make(map[string]float64),
		hcacheMiB:  make(map[string]float64),
		cacheSplit: split,
	}
	for _, app := range coopApps {
		r := runners[app]
		c := containers[app]
		out.ops[app] = r.OpsPerSecSince(checkpoints[app], engine.Now())
		out.appMemMiB[app] = float64(c.Group().Usage()) * 4096 / float64(MiB)
		out.hcacheMiB[app] = mib(c.CacheStats().UsedBytes)
		ratio := out.ops[app] / coopSLA[app]
		if ratio >= 1 {
			out.slaMet++
		}
		out.aggregate += ratio
	}
	return out
}

// Table4 compares Morai++ (best centralized partition from a sweep) with
// DoubleDecker's cooperative two-level provisioning.
func Table4(o Opts) *Result {
	r := newResult("table4", "Centralized (Morai++) vs cooperative (DoubleDecker) provisioning (Table 4)")

	// Morai++: no per-container memory limits; sweep hypervisor cache
	// partitions between the two file-backed apps (the others cannot use
	// the cache, as the paper observes).
	sweeps := []struct {
		split       string
		mongoWeight int64
		webWeight   int64
	}{
		{"100:0", 100, 0}, {"80:20", 80, 20}, {"60:40", 60, 40}, {"40:60", 40, 60}, {"20:80", 20, 80},
	}
	var best coopOutcome
	for i, sw := range sweeps {
		limits := map[string]int64{"mongodb": 0, "mysql": 0, "redis": 0, "webserver": 0}
		weights := map[string]int64{"mongodb": sw.mongoWeight, "mysql": 0, "redis": 0, "webserver": sw.webWeight}
		out := runCoop(o, "Morai++", limits, weights, sw.split)
		if i == 0 || out.slaMet > best.slaMet || (out.slaMet == best.slaMet && out.aggregate > best.aggregate) {
			best = out
		}
	}

	// DoubleDecker: the VM-level manager sets in-VM limits from the
	// applications' memory types (anon-heavy apps get their working sets,
	// file-backed apps offload to the cache) plus cache weights.
	ddLimits := map[string]int64{
		"mongodb": 256 * MiB, "mysql": 512 * MiB, "redis": 512 * MiB, "webserver": 256 * MiB,
	}
	ddWeights := map[string]int64{"mongodb": 60, "mysql": 0, "redis": 0, "webserver": 40}
	dd := runCoop(o, "DoubleDecker", ddLimits, ddWeights, "60:40")

	t := Table{
		Columns: []string{"workload (SLA ops/s)", "technique", "throughput (ops/s)", "SLA met", "app mem (MiB)", "hcache (MiB)"},
	}
	for _, app := range coopApps {
		for _, out := range []coopOutcome{best, dd} {
			met := "no"
			if out.ops[app] >= coopSLA[app] {
				met = "yes"
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%s (%.0f)", app, coopSLA[app]),
				out.label,
				f1(out.ops[app]),
				met,
				f1(out.appMemMiB[app]),
				f1(out.hcacheMiB[app]),
			})
		}
	}
	r.Tables = append(r.Tables, t)
	r.note("Morai++ best partition: %s (SLAs met: %d/4, aggregate score %.2f)", best.cacheSplit, best.slaMet, best.aggregate)
	r.note("DoubleDecker: SLAs met: %d/4, aggregate score %.2f", dd.slaMet, dd.aggregate)
	r.note("paper shape: Morai++ cannot satisfy the anon-bound apps (Redis, MySQL) under VM-level pressure; DoubleDecker's two-level provisioning meets all four SLAs, with Redis improving by orders of magnitude once its working set fits")
	return r
}
