// Liveness experiment: tail-latency bounds under transport chaos. Two
// streaming VMs (one memory pool, one SSD pool) run the same workload in
// four configurations — {healthy, stall-heavy transport faults} ×
// {deadlines on, off}. With the latency budget armed, every
// guest-observed get must be charged at most the budget even while
// crossings stall and completions are lost (p99 and max bounded); with
// deadlines off the same fault plan drives the tail past the budget.
// On the healthy baseline the deadline machinery must be free: hit
// ratio within two points of the no-deadline run.

package experiments

import (
	"fmt"
	"time"

	"doubledecker/internal/blockdev"
	"doubledecker/internal/cgroup"
	"doubledecker/internal/cleancache"
	"doubledecker/internal/fault"
	"doubledecker/internal/fsmodel"
	"doubledecker/internal/guest"
	"doubledecker/internal/hypercall"
	"doubledecker/internal/hypervisor"
	"doubledecker/internal/metrics"
	"doubledecker/internal/sim"
)

// liveness scenario geometry: each VM streams a 32 MiB file through an
// 8 MiB container with lagged re-read bursts (past the container window,
// so bursts exercise the hypervisor cache), for 20 s. The latency budget
// sits above the healthy pipeline's worst case and below the injected
// stalls, so deadline misses are the fault plan's doing, never the
// healthy pipeline's.
const (
	lvFileBlocks    = 8192 // 32 MiB
	lvContainerMiB  = 8
	lvMemCacheMiB   = 64
	lvSSDCacheMiB   = 256
	lvWriteTick     = 2 * time.Millisecond
	lvBlocksPerTick = 8
	lvReadEvery     = 4    // ticks between read bursts
	lvReadBlocks    = 32   // blocks per read burst
	lvReadLag       = 2560 // blocks behind the write head
	lvDuration      = 20 * time.Second
	// lvBudget is the per-get latency budget (unscaled: it tracks modeled
	// device latencies, not run length). The healthy worst case is an SSD
	// readahead fill behind a full-ring drain (~3 ms of serial backend
	// latency); the budget sits above that and well below the injected
	// 15–20 ms stalls, so healthy runs never miss a deadline and stalled
	// crossings always do.
	lvBudget       = 5 * time.Millisecond
	lvInflightGets = 128 // per-VM tagged-get cap
	lvQueuedOps    = 400 // per-VM batch-queue cap
)

// livenessStallPlan is the stall-heavy transport fault plan: latency
// injections well past the budget on both crossing directions, plus
// dropped batches (retry/backoff) and dropped completion frames
// (watchdog or await-fallback territory).
func livenessStallPlan(seed int64) fault.Plan {
	return fault.Plan{Seed: seed, Rules: []fault.Rule{
		{Site: hypercall.SiteBatch, Kind: fault.KindLatency, Prob: 0.2, Delay: 20 * time.Millisecond},
		{Site: hypercall.SiteBatch, Kind: fault.KindDrop, Prob: 0.1},
		{Site: hypercall.SiteCompletion, Kind: fault.KindDrop, Prob: 0.25},
		{Site: hypercall.SiteCall, Kind: fault.KindLatency, Prob: 0.3, Delay: 15 * time.Millisecond},
	}}
}

// LivenessModeResult summarizes one of the four runs.
type LivenessModeResult struct {
	Label     string
	Deadlines bool
	// Gets is the number of guest-observed get resolutions; the
	// percentiles below are over their charged latencies in µs.
	Gets     int64
	GetP50US float64
	GetP99US float64
	GetMaxUS float64
	// HitPct is the hypervisor-cache hit ratio aggregated over both
	// VMs' pools.
	HitPct float64
	// DeadlineMisses counts gets clamped to the budget; WatchdogFails
	// the waiters the sweep failed outright.
	DeadlineMisses int64
	WatchdogFails  int64
	// ShedGets / ShedOps count admission-control rejections (inflight
	// cap and queue cap respectively).
	ShedGets int64
	ShedOps  int64
	// DeadlineFallbacks counts guest reads that fell back to the
	// virtual disk because their get expired.
	DeadlineFallbacks int64
	// Ticks is the number of driver ticks across both VMs; MeanTickUS
	// their mean latency in µs.
	Ticks      int64
	MeanTickUS float64
	// Leaked* are post-teardown table sizes — all must be zero.
	LeakedWaiters int64
	LeakedStaged  int64
	LeakedPending int64
	// InjectedFaults counts the faults the plan actually fired.
	InjectedFaults int64
}

// LivenessBenchResult holds the 2×2 run matrix.
type LivenessBenchResult struct {
	HealthyOn  LivenessModeResult
	HealthyOff LivenessModeResult
	StallOn    LivenessModeResult
	StallOff   LivenessModeResult
	// HealthyHitDelta is |healthy-on hit% − healthy-off hit%|: the
	// deadline machinery's cost on a fault-free run, in points.
	HealthyHitDelta float64
	// BudgetUS is the armed per-get budget in µs, the bound the
	// stall-on run's p99 and max must respect.
	BudgetUS float64
}

// runLivenessMode executes the two-VM scenario in one configuration.
func runLivenessMode(o Opts, label string, withFaults, deadlines bool) LivenessModeResult {
	engine := sim.New(o.Seed)
	reg := metrics.NewRegistry()
	var inj *fault.Injector
	if withFaults {
		inj = fault.New(livenessStallPlan(o.Seed))
	}
	cfg := hypervisor.Config{
		MemCacheBytes:   lvMemCacheMiB * MiB,
		SSDCacheBytes:   lvSSDCacheMiB * MiB,
		Metrics:         reg,
		Faults:          inj,
		MaxInflightGets: lvInflightGets,
		MaxQueuedOps:    lvQueuedOps,
		// SSD-class guest disks: deadline fallbacks re-read from the
		// VM's virtual disk, and the open-loop drivers would swamp the
		// default HDD model's ~8 ms/op service rate under the stall
		// plan — the subject here is the transport budget, not disk
		// queueing.
		VMDiskFactory: func(id cleancache.VMID) blockdev.Device {
			return blockdev.NewSSD(fmt.Sprintf("lv-vm%d-disk", id))
		},
	}
	if deadlines {
		cfg.OpBudget = lvBudget
		cfg.WatchdogPeriod = lvBudget / 2
	}
	host := hypervisor.New(engine, cfg)
	vm1 := host.NewVM(1, 128*MiB, 50)
	vm2 := host.NewVM(2, 128*MiB, 50)
	c1 := vm1.NewContainer("vm1-mem", lvContainerMiB*MiB,
		cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	c2 := vm2.NewContainer("vm2-ssd", lvContainerMiB*MiB,
		cgroup.HCacheSpec{Store: cgroup.StoreSSD, Weight: 100})
	f1 := vm1.Allocator().Alloc(lvFileBlocks)
	f2 := vm2.Allocator().Alloc(lvFileBlocks)

	var tickSum time.Duration
	var ticks int64
	type vmDriver struct {
		c         *guest.Container
		f         *fsmodel.File
		headTotal int64
		tick      int
	}
	drivers := [2]*vmDriver{{c: c1, f: f1}, {c: c2, f: f2}}
	for _, d := range drivers {
		d := d
		engine.Every(lvWriteTick, func() {
			now := engine.Now()
			l := d.c.Write(now, d.f, d.headTotal%lvFileBlocks, lvBlocksPerTick)
			d.headTotal += lvBlocksPerTick
			d.tick++
			if d.tick%lvReadEvery == 0 && d.headTotal >= lvReadLag+lvReadBlocks {
				back := (d.headTotal - lvReadLag) % lvFileBlocks
				l += d.c.Read(now, d.f, back, lvReadBlocks)
			}
			tickSum += l
			ticks++
		})
	}

	engine.Run(o.scaled(lvDuration))

	// Aggregate pool and per-container stats before teardown frees them.
	var hits, gets int64
	for _, c := range []*guest.Container{c1, c2} {
		ps := c.CacheStats()
		hits += ps.GetHits + ps.ReadAheadHits
		gets += ps.Gets + ps.ReadAheadGets
	}
	fallbacks := c1.IOStats().DeadlineFallbacks + c2.IOStats().DeadlineFallbacks

	// Tear both VMs down with whatever is still in flight — the
	// crash-safe path — then audit the transports for leaks.
	tr1, tr2 := host.Transport(1), host.Transport(2)
	host.DestroyVM(vm1)
	host.DestroyVM(vm2)

	res := LivenessModeResult{
		Label:             label,
		Deadlines:         deadlines,
		InjectedFaults:    inj.Injected(fault.KindNone),
		DeadlineFallbacks: fallbacks,
		Ticks:             ticks,
	}
	if ticks > 0 {
		res.MeanTickUS = float64(tickSum.Microseconds()) / float64(ticks)
	}
	if gets > 0 {
		res.HitPct = 100 * float64(hits) / float64(gets)
	}
	h := reg.Histogram("hypercall.lat.GET")
	res.Gets = h.Count()
	res.GetP50US = float64(h.Quantile(0.50)) / float64(time.Microsecond)
	res.GetP99US = float64(h.Quantile(0.99)) / float64(time.Microsecond)
	res.GetMaxUS = float64(h.Max()) / float64(time.Microsecond)
	for _, tr := range []*hypercall.Transport{tr1, tr2} {
		s := tr.Stats()
		res.DeadlineMisses += s.DeadlineMisses
		res.WatchdogFails += s.WatchdogFails
		res.ShedGets += s.ShedGets
		res.ShedOps += s.ShedOps
		res.LeakedWaiters += s.Waiters
		res.LeakedStaged += s.StagedPages
		res.LeakedPending += s.Pending
	}
	return res
}

// lvCache memoizes runs so the registered experiment and ddbench's JSON
// emission share them.
var lvCache = map[Opts]LivenessBenchResult{}

// LivenessBench runs the 2×2 matrix: {healthy, stall-heavy} ×
// {deadlines on, off}.
func LivenessBench(o Opts) LivenessBenchResult {
	if r, ok := lvCache[o]; ok {
		return r
	}
	r := LivenessBenchResult{
		HealthyOn:  runLivenessMode(o, "healthy/deadlines", false, true),
		HealthyOff: runLivenessMode(o, "healthy/no-deadline", false, false),
		StallOn:    runLivenessMode(o, "stall/deadlines", true, true),
		StallOff:   runLivenessMode(o, "stall/no-deadline", true, false),
		BudgetUS:   float64(lvBudget) / float64(time.Microsecond),
	}
	r.HealthyHitDelta = r.HealthyOn.HitPct - r.HealthyOff.HitPct
	if r.HealthyHitDelta < 0 {
		r.HealthyHitDelta = -r.HealthyHitDelta
	}
	lvCache[o] = r
	return r
}

// LivenessExp is the registered "liveness" experiment: bounded guest
// tail latency under transport chaos with the per-op budget armed.
func LivenessExp(o Opts) *Result {
	b := LivenessBench(o)
	r := newResult("liveness", "Latency-budget liveness: bounded tails under transport chaos")

	lat := Table{
		Title:   "Guest-observed get latency (µs)",
		Columns: []string{"run", "gets", "p50", "p99", "max", "hit %", "mean tick µs"},
	}
	sum := Table{
		Title:   "Deadline and admission accounting",
		Columns: []string{"run", "deadline misses", "watchdog fails", "shed gets", "shed ops", "disk fallbacks", "leaks (w/s/p)", "injected faults"},
	}
	for _, m := range []LivenessModeResult{b.HealthyOff, b.HealthyOn, b.StallOff, b.StallOn} {
		lat.Rows = append(lat.Rows, []string{
			m.Label, f0(float64(m.Gets)), f1(m.GetP50US), f1(m.GetP99US), f1(m.GetMaxUS),
			f1(m.HitPct), f1(m.MeanTickUS),
		})
		sum.Rows = append(sum.Rows, []string{
			m.Label, f0(float64(m.DeadlineMisses)), f0(float64(m.WatchdogFails)),
			f0(float64(m.ShedGets)), f0(float64(m.ShedOps)), f0(float64(m.DeadlineFallbacks)),
			f0(float64(m.LeakedWaiters)) + "/" + f0(float64(m.LeakedStaged)) + "/" + f0(float64(m.LeakedPending)),
			f0(float64(m.InjectedFaults)),
		})
	}
	r.Tables = append(r.Tables, lat, sum)

	r.note("under the stall plan with deadlines armed, p99 get latency is %.0f µs and max %.0f µs against a %.0f µs budget; with deadlines off the same plan drives max to %.0f µs",
		b.StallOn.GetP99US, b.StallOn.GetMaxUS, b.BudgetUS, b.StallOff.GetMaxUS)
	r.note("healthy-baseline cost of the deadline machinery: hit ratio moves %.2f points (%.1f%% -> %.1f%%)",
		b.HealthyHitDelta, b.HealthyOff.HitPct, b.HealthyOn.HitPct)
	r.note("every over-budget crossing fails as a miss (cleancache contract: never an error, never data loss); the guest re-reads from its virtual disk — %d fallbacks under the stall plan, each paying the disk's own queueing instead of an unbounded transport wait",
		b.StallOn.DeadlineFallbacks)
	return r
}
