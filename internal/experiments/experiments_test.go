package experiments

import (
	"strings"
	"testing"
	"time"

	"doubledecker/internal/metrics"
)

// tinyOpts shrinks every experiment far enough for CI.
func tinyOpts() Opts {
	return Opts{Seed: 42, Stretch: 0.04, Sample: 2 * time.Second}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig5", "fig6", "fig7", "fig9", "fig10", "fig11", "fig12",
		"fig13", "fig14", "table1", "table2", "table3", "table4"}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Fatalf("experiment %q not registered", id)
		}
	}
	if got := len(IDs()); got < len(want) {
		t.Fatalf("IDs() = %d entries, want ≥ %d", got, len(want))
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, ok := Lookup("nope"); ok {
		t.Fatal("unknown id resolved")
	}
}

// TestEveryExperimentSmokes runs each artifact at tiny scale and checks
// the output structure is populated.
func TestEveryExperimentSmokes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are seconds each; skipped in -short")
	}
	o := tinyOpts()
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			runner, _ := Lookup(id)
			res := runner(o)
			if res == nil {
				t.Fatal("nil result")
			}
			if res.ID != id {
				t.Fatalf("result id %q, want %q", res.ID, id)
			}
			if len(res.Tables) == 0 && len(res.SeriesOrder) == 0 {
				t.Fatal("experiment produced neither tables nor series")
			}
			out := res.Format()
			if !strings.Contains(out, id) {
				t.Fatal("Format output missing the experiment id")
			}
		})
	}
}

func TestResultFormatTable(t *testing.T) {
	r := newResult("x", "demo")
	r.Tables = append(r.Tables, Table{
		Title:   "tbl",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"1", "2"}},
	})
	r.note("hello %d", 7)
	out := r.Format()
	for _, want := range []string{"tbl", "long-column", "hello 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %q:\n%s", want, out)
		}
	}
}

func TestFormatSeriesDownsamples(t *testing.T) {
	s := metrics.NewSeries("s")
	for i := 0; i < 1000; i++ {
		s.Record(time.Duration(i)*time.Second, float64(i))
	}
	out := formatSeries(s, 10)
	lines := strings.Count(out, "\n")
	if lines > 15 {
		t.Fatalf("downsampling produced %d lines", lines)
	}
	if !strings.Contains(out, "999") {
		t.Fatal("last sample not included")
	}
}

func TestSeriesMeanWindow(t *testing.T) {
	s := metrics.NewSeries("s")
	s.Record(time.Second, 10)
	s.Record(2*time.Second, 20)
	s.Record(3*time.Second, 90)
	if got := seriesMeanWindow(s, time.Second, 2*time.Second); got != 15 {
		t.Fatalf("mean = %v, want 15", got)
	}
	if got := seriesMeanWindow(s, time.Hour, 2*time.Hour); got != 0 {
		t.Fatalf("empty window mean = %v", got)
	}
}

func TestScaledClampsNonPositive(t *testing.T) {
	o := Opts{Stretch: 0}
	if got := o.scaled(time.Minute); got != time.Minute {
		t.Fatalf("scaled with zero stretch = %v", got)
	}
	o.Stretch = 0.5
	if got := o.scaled(time.Minute); got != 30*time.Second {
		t.Fatalf("scaled = %v", got)
	}
}

func TestDeterministicExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short")
	}
	o := tinyOpts()
	a := Fig5(o).Format()
	b := Fig5(o).Format()
	if a != b {
		t.Fatal("fig5 not deterministic across runs")
	}
}
