// Package experiments reproduces every table and figure of the paper's
// evaluation on the simulated stack. Each experiment builds its scenario
// (host, VMs, containers, workloads), runs it on virtual time, and emits
// the same rows/series the paper reports.
//
// Geometry is scaled 1/4 in memory and 1/4 in duration relative to the
// paper's testbed (32 GB host, 2400 s runs) so a full experiment sweep
// completes in seconds to minutes of wall-clock time; all ratios between
// working sets, container limits and cache sizes are preserved, which is
// what the paper's shapes depend on. EXPERIMENTS.md records paper-vs-
// measured values for every artifact.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"doubledecker/internal/metrics"
)

// MiB is a byte multiplier.
const MiB = int64(1) << 20

// GiB is a byte multiplier.
const GiB = int64(1) << 30

// Opts controls experiment execution.
type Opts struct {
	// Seed drives all randomness; fixed seed = identical results.
	Seed int64
	// Stretch multiplies experiment durations. 1.0 reproduces the scaled
	// paper timeline; tests and smoke runs use smaller values.
	Stretch float64
	// Sample is the occupancy sampling period for figure series.
	Sample time.Duration
}

// DefaultOpts returns the full-length configuration.
func DefaultOpts() Opts {
	return Opts{Seed: 42, Stretch: 1.0, Sample: 5 * time.Second}
}

// QuickOpts returns a short smoke-run configuration (for tests).
func QuickOpts() Opts {
	return Opts{Seed: 42, Stretch: 0.12, Sample: 2 * time.Second}
}

// scaled returns d adjusted by the Stretch factor.
func (o Opts) scaled(d time.Duration) time.Duration {
	if o.Stretch <= 0 {
		return d
	}
	return time.Duration(float64(d) * o.Stretch)
}

// Table is one tabular artifact (a paper table, or the numeric legend of
// a figure).
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Result is the output of one experiment.
type Result struct {
	ID     string
	Title  string
	Tables []Table
	// Series holds occupancy curves in MiB over virtual time, keyed by
	// curve name; SeriesOrder fixes presentation order.
	Series      map[string]*metrics.Series
	SeriesOrder []string
	Notes       []string
}

// newResult initializes an empty result.
func newResult(id, title string) *Result {
	return &Result{ID: id, Title: title, Series: make(map[string]*metrics.Series)}
}

// addSeries registers a named curve.
func (r *Result) addSeries(name string) *metrics.Series {
	s := metrics.NewSeries(name)
	r.Series[name] = s
	r.SeriesOrder = append(r.SeriesOrder, name)
	return s
}

// note appends a free-form annotation.
func (r *Result) note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Format renders the result for terminal output: tables in full, series
// downsampled to at most 24 points.
func (r *Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteString(formatTable(t))
	}
	for _, name := range r.SeriesOrder {
		s := r.Series[name]
		if s.Len() == 0 {
			continue
		}
		fmt.Fprintf(&b, "\n-- series %s (MiB over time) --\n", name)
		b.WriteString(formatSeries(s, 24))
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// formatTable renders an aligned ASCII table.
func formatTable(t Table) string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "\n-- %s --\n", t.Title)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// formatSeries prints a downsampled time series.
func formatSeries(s *metrics.Series, maxPoints int) string {
	pts := s.Points()
	if len(pts) == 0 {
		return ""
	}
	stride := 1
	if len(pts) > maxPoints {
		stride = len(pts) / maxPoints
	}
	var b strings.Builder
	for i := 0; i < len(pts); i += stride {
		fmt.Fprintf(&b, "  t=%7.0fs  %8.1f\n", pts[i].At.Seconds(), pts[i].Value)
	}
	last := pts[len(pts)-1]
	if (len(pts)-1)%stride != 0 {
		fmt.Fprintf(&b, "  t=%7.0fs  %8.1f\n", last.At.Seconds(), last.Value)
	}
	return b.String()
}

// seriesMeanWindow averages a series over [from, to] of virtual time.
func seriesMeanWindow(s *metrics.Series, from, to time.Duration) float64 {
	sum, n := 0.0, 0
	for _, p := range s.Points() {
		if p.At >= from && p.At <= to {
			sum += p.Value
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// mib converts bytes to MiB as a float for reporting.
func mib(bytes int64) float64 { return float64(bytes) / float64(MiB) }

// f1, f2 format floats with fixed precision for table cells.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }

// Runner executes one experiment.
type Runner func(Opts) *Result

// registry maps experiment ids to runners; populated in registry.go.
var registry = map[string]Runner{}

// Register adds an experiment to the registry (called from init wiring in
// registry.go; exposed for external extension).
func Register(id string, r Runner) { registry[id] = r }

// Lookup finds an experiment by id.
func Lookup(id string) (Runner, bool) {
	r, ok := registry[id]
	return r, ok
}

// IDs returns the registered experiment ids, sorted.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
