package wallclock_test

import (
	"testing"
	"time"

	"doubledecker/internal/wallclock"
)

// fakeClock advances a fixed step per reading.
type fakeClock struct {
	now  time.Time
	step time.Duration
}

func (f *fakeClock) Now() time.Time {
	f.now = f.now.Add(f.step)
	return f.now
}

func TestStopwatchDeterministicUnderFakeSource(t *testing.T) {
	fake := &fakeClock{now: time.Unix(0, 0), step: time.Millisecond}
	defer wallclock.SetSource(fake.Now)()

	elapsed := wallclock.Stopwatch()
	if got := elapsed(); got != time.Millisecond {
		t.Errorf("elapsed = %v, want exactly 1ms from the fake source", got)
	}
	if got := elapsed(); got != 2*time.Millisecond {
		t.Errorf("second reading = %v, want 2ms", got)
	}
}

func TestSetSourceRestores(t *testing.T) {
	fake := &fakeClock{now: time.Unix(1000, 0), step: time.Second}
	restore := wallclock.SetSource(fake.Now)
	if got := wallclock.Now(); !got.Equal(time.Unix(1001, 0)) {
		t.Errorf("Now under fake source = %v, want 1001s", got)
	}
	restore()
	// Back on the host clock: readings are strictly before any plausible
	// fake epoch drift and monotone.
	a, b := wallclock.Now(), wallclock.Now()
	if b.Before(a) {
		t.Errorf("host clock went backwards: %v then %v", a, b)
	}
}

func TestRealStopwatchMeasures(t *testing.T) {
	elapsed := wallclock.Stopwatch()
	time.Sleep(time.Millisecond)
	if got := elapsed(); got <= 0 {
		t.Errorf("elapsed = %v, want > 0", got)
	}
}
