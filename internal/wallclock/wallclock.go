// Package wallclock is the repository's single sanctioned wall-clock
// source for library code. Simulated components must never read the host
// clock (clockcheck enforces this), but a few drivers legitimately
// measure real elapsed time — the RunStress concurrent phase, the
// transport experiment's simulator-throughput figure. They take it from
// here, through an injectable source, so tests can pin the clock and
// make even the "wall time" fields of a run reproducible.
//
// ddlint:allow-wallclock — this file is the allowlisted clock shim.
package wallclock

import (
	"sync"
	"time"
)

var (
	mu sync.Mutex
	// src is the active time source; nil selects the host clock.
	src func() time.Time // ddlint:guarded-by mu
)

// Now returns the current time from the active source.
func Now() time.Time {
	mu.Lock()
	defer mu.Unlock()
	if src != nil {
		return src()
	}
	return time.Now()
}

// SetSource replaces the time source (nil restores the host clock) and
// returns a function restoring the previous source. Tests use it to make
// wall-time measurements deterministic:
//
//	defer wallclock.SetSource(fake.Now)()
func SetSource(f func() time.Time) (restore func()) {
	mu.Lock()
	defer mu.Unlock()
	prev := src
	src = f
	return func() {
		mu.Lock()
		defer mu.Unlock()
		src = prev
	}
}

// Stopwatch starts measuring and returns a function reporting the
// elapsed time since the call — the idiom replacing the banned
// start := time.Now() / time.Since(start) pair:
//
//	elapsed := wallclock.Stopwatch()
//	...
//	wall := elapsed()
func Stopwatch() func() time.Duration {
	start := Now()
	return func() time.Duration { return Now().Sub(start) }
}
