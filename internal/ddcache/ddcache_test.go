package ddcache

import (
	"testing"
	"testing/quick"

	"doubledecker/internal/blockdev"
	"doubledecker/internal/cgroup"
	"doubledecker/internal/cleancache"
	"doubledecker/internal/store"
)

const mib = 1 << 20

func newMgr(mode Mode, memCap, ssdCap int64) *Manager {
	cfg := Config{Mode: mode}
	if memCap > 0 {
		cfg.Mem = store.NewMem(blockdev.NewRAM("hostram"), memCap)
	}
	if ssdCap > 0 {
		cfg.SSD = store.NewSSD(blockdev.NewSSD("hostssd"), ssdCap)
	}
	return NewManager(cfg)
}

func key(pool cleancache.PoolID, inode uint64, block int64) cleancache.Key {
	return cleancache.Key{Pool: pool, Inode: inode, Block: block}
}

// fillPool puts n objects into pool p using distinct keys from base.
func fillPool(t *testing.T, m *Manager, p cleancache.PoolID, base uint64, n int) int {
	t.Helper()
	stored := 0
	for i := 0; i < n; i++ {
		ok, _ := m.Put(0, 1, key(p, base, int64(i)), 0)
		if ok {
			stored++
		}
	}
	return stored
}

func TestPutGetExclusive(t *testing.T) {
	m := newMgr(ModeDD, 16*mib, 0)
	m.RegisterVM(1, 100)
	p, _ := m.CreatePool(0, 1, "c1", cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	if ok, _ := m.Put(0, 1, key(p, 1, 0), 0); !ok {
		t.Fatal("put rejected")
	}
	hit, lat := m.Get(0, 1, key(p, 1, 0))
	if !hit || lat <= 0 {
		t.Fatalf("get hit=%v lat=%v", hit, lat)
	}
	if hit, _ := m.Get(0, 1, key(p, 1, 0)); hit {
		t.Fatal("exclusive cache returned object twice")
	}
	if m.PoolTotalBytes(p) != 0 {
		t.Fatal("bytes left after exclusive get")
	}
}

func TestCapacityEnforced(t *testing.T) {
	m := newMgr(ModeDD, 4*mib, 0)
	m.RegisterVM(1, 100)
	p, _ := m.CreatePool(0, 1, "c1", cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	fillPool(t, m, p, 1, 2000) // ~8 MiB offered into 4 MiB
	if used := m.StoreUsedBytes(cgroup.StoreMem); used > 4*mib {
		t.Fatalf("store used %d exceeds capacity", used)
	}
	if m.TotalEvictions() == 0 {
		t.Fatal("no evictions under pressure")
	}
}

func TestResourceConservativeOvershoot(t *testing.T) {
	// Two pools with equal weights; only one active. It may use the whole
	// store (no hard cap at entitlement).
	m := newMgr(ModeDD, 4*mib, 0)
	m.RegisterVM(1, 100)
	p1, _ := m.CreatePool(0, 1, "busy", cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 50})
	m.CreatePool(0, 1, "idle", cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 50})
	fillPool(t, m, p1, 1, 1024) // exactly 4 MiB
	if got := m.PoolUsedBytes(p1, cgroup.StoreMem); got != 4*mib {
		t.Fatalf("busy pool used %d, want full store %d", got, 4*mib)
	}
}

func TestWeightedVictimSelection(t *testing.T) {
	// Equal weights, both active: the overuser gets evicted when the
	// second pool starts claiming its share.
	m := newMgr(ModeDD, 4*mib, 0)
	m.RegisterVM(1, 100)
	hog, _ := m.CreatePool(0, 1, "hog", cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 50})
	meek, _ := m.CreatePool(0, 1, "meek", cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 50})
	fillPool(t, m, hog, 1, 1024) // hog fills the store
	fillPool(t, m, meek, 2, 256) // meek claims 1 MiB, under its 2 MiB share
	hogStats := m.PoolStats(1, hog)
	meekStats := m.PoolStats(1, meek)
	if hogStats.Evictions == 0 {
		t.Fatal("hog was not victimized")
	}
	if meekStats.Evictions != 0 {
		t.Fatalf("meek suffered %d evictions while under entitlement", meekStats.Evictions)
	}
	if got := m.PoolUsedBytes(meek, cgroup.StoreMem); got != mib {
		t.Fatalf("meek retained %d, want %d", got, mib)
	}
}

func TestGlobalModeNoContainerFairness(t *testing.T) {
	m := newMgr(ModeGlobal, 4*mib, 0)
	m.RegisterVM(1, 100)
	pa, _ := m.CreatePool(0, 1, "a", cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 50})
	pb, _ := m.CreatePool(0, 1, "b", cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 50})
	if pa == pb {
		t.Fatal("global mode must still track pools per container for observability")
	}
	// Container a's objects inserted first are evicted first (global
	// FIFO), even though with equal weights container fairness would
	// have protected a's 2 MiB share.
	fillPool(t, m, pa, 1, 512) // a: 2 MiB, oldest
	fillPool(t, m, pb, 2, 768) // b: 3 MiB → displaces a's oldest
	if hit, _ := m.Get(0, 1, key(pa, 1, 0)); hit {
		t.Fatal("global FIFO should have evicted the oldest objects")
	}
	if hit, _ := m.Get(0, 1, key(pb, 2, 767)); !hit {
		t.Fatal("newest object missing")
	}
	sa := m.PoolStats(1, pa)
	if sa.Evictions == 0 {
		t.Fatal("oldest container saw no evictions under global FIFO")
	}
	// In DD mode the same sequence protects container a's share. The
	// store here is tiny relative to the paper's 2 MiB batch, so scale
	// the eviction batch down with it.
	dd := NewManager(Config{
		Mode:            ModeDD,
		Mem:             store.NewMem(blockdev.NewRAM("r"), 4*mib),
		EvictBatchBytes: 64 << 10,
	})
	dd.RegisterVM(1, 100)
	da, _ := dd.CreatePool(0, 1, "a", cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 50})
	db, _ := dd.CreatePool(0, 1, "b", cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 50})
	fillPool(t, dd, da, 1, 512)
	fillPool(t, dd, db, 2, 768)
	// Algorithm 1 may take one boundary batch from a (the
	// used+evictionSize test), but a's share stays within a batch of its
	// 2 MiB entitlement rather than draining FIFO-style.
	if got := dd.PoolUsedBytes(da, cgroup.StoreMem); got < 2*mib-(64<<10) {
		t.Fatalf("DD mode should protect a's ~2 MiB share, got %d", got)
	}
}

func TestGlobalModePlacementForcesMemory(t *testing.T) {
	m := newMgr(ModeGlobal, 4*mib, 64*mib)
	m.RegisterVM(1, 100)
	p, _ := m.CreatePool(0, 1, "c", cgroup.HCacheSpec{Store: cgroup.StoreSSD, Weight: 100})
	m.Put(0, 1, key(p, 1, 0), 0)
	if m.PoolUsedBytes(p, cgroup.StoreMem) != ObjectSize {
		t.Fatal("global baseline should place objects in memory")
	}
}

func TestZeroWeightPoolAlwaysVictim(t *testing.T) {
	m := newMgr(ModeDD, 4*mib, 0)
	m.RegisterVM(1, 100)
	pz, _ := m.CreatePool(0, 1, "zero", cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 0})
	pw, _ := m.CreatePool(0, 1, "weighted", cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	fillPool(t, m, pz, 1, 1024) // zero-weight pool fills the store
	fillPool(t, m, pw, 2, 1024) // weighted pool claims everything
	if got := m.PoolStats(1, pw).Evictions; got != 0 {
		t.Fatalf("weighted pool evicted %d times", got)
	}
	if got := m.PoolUsedBytes(pw, cgroup.StoreMem); got != 4*mib {
		t.Fatalf("weighted pool should own the whole store, has %d", got)
	}
}

func TestVMLevelPartitioning(t *testing.T) {
	m := newMgr(ModeDD, 3*mib, 0)
	m.RegisterVM(1, 33)
	m.RegisterVM(2, 67)
	p1, _ := m.CreatePool(0, 1, "vm1c1", cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	p2, _ := m.CreatePool(0, 2, "vm2c1", cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	// VM1 fills the whole store; then VM2 claims. VM1 is over its ~1 MiB
	// entitlement and must be the eviction victim.
	for i := 0; i < 768; i++ {
		m.Put(0, 1, key(p1, 1, int64(i)), 0)
	}
	for i := 0; i < 400; i++ {
		m.Put(0, 2, key(p2, 1, int64(i)), 0)
	}
	s1 := m.PoolStats(1, p1)
	s2 := m.PoolStats(2, p2)
	if s1.Evictions == 0 {
		t.Fatal("over-entitlement VM1 not victimized")
	}
	if s2.Evictions != 0 {
		t.Fatalf("VM2 evicted %d while under entitlement", s2.Evictions)
	}
	if got := m.VMUsedBytes(2, cgroup.StoreMem); got != 400*ObjectSize {
		t.Fatalf("VM2 usage = %d", got)
	}
}

func TestSSDPoolPlacement(t *testing.T) {
	m := newMgr(ModeDD, 4*mib, 64*mib)
	m.RegisterVM(1, 100)
	p, _ := m.CreatePool(0, 1, "video", cgroup.HCacheSpec{Store: cgroup.StoreSSD, Weight: 100})
	m.Put(0, 1, key(p, 1, 0), 0)
	if m.PoolUsedBytes(p, cgroup.StoreSSD) != ObjectSize {
		t.Fatal("object not placed on SSD")
	}
	if m.PoolUsedBytes(p, cgroup.StoreMem) != 0 {
		t.Fatal("object leaked into memory store")
	}
}

func TestHybridSpillsToSSD(t *testing.T) {
	m := newMgr(ModeDD, 2*mib, 64*mib)
	m.RegisterVM(1, 100)
	p, _ := m.CreatePool(0, 1, "hy", cgroup.HCacheSpec{Store: cgroup.StoreHybrid, Weight: 100})
	fillPool(t, m, p, 1, 1024) // 4 MiB into 2 MiB mem entitlement
	memUsed := m.PoolUsedBytes(p, cgroup.StoreMem)
	ssdUsed := m.PoolUsedBytes(p, cgroup.StoreSSD)
	if memUsed != 2*mib {
		t.Fatalf("hybrid mem used %d, want full 2 MiB entitlement", memUsed)
	}
	if ssdUsed != 2*mib {
		t.Fatalf("hybrid ssd spill %d, want 2 MiB", ssdUsed)
	}
}

func TestSetSpecStoreChangeFlushesStranded(t *testing.T) {
	m := newMgr(ModeDD, 4*mib, 64*mib)
	m.RegisterVM(1, 100)
	p, _ := m.CreatePool(0, 1, "c", cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	fillPool(t, m, p, 1, 100)
	m.SetSpec(0, 1, p, cgroup.HCacheSpec{Store: cgroup.StoreSSD, Weight: 100})
	if m.PoolUsedBytes(p, cgroup.StoreMem) != 0 {
		t.Fatal("mem objects not flushed after store change")
	}
	if m.StoreUsedBytes(cgroup.StoreMem) != 0 {
		t.Fatal("mem store accounting leaked")
	}
	m.Put(0, 1, key(p, 2, 0), 0)
	if m.PoolUsedBytes(p, cgroup.StoreSSD) != ObjectSize {
		t.Fatal("new puts should land on SSD")
	}
}

func TestDestroyPoolReleases(t *testing.T) {
	m := newMgr(ModeDD, 4*mib, 0)
	m.RegisterVM(1, 100)
	p, _ := m.CreatePool(0, 1, "c", cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	fillPool(t, m, p, 1, 100)
	m.DestroyPool(0, 1, p)
	if m.StoreUsedBytes(cgroup.StoreMem) != 0 {
		t.Fatal("destroy did not release store bytes")
	}
	if ok, _ := m.Put(0, 1, key(p, 1, 0), 0); ok {
		t.Fatal("put into destroyed pool succeeded")
	}
}

func TestUnregisterVMDropsPools(t *testing.T) {
	m := newMgr(ModeDD, 4*mib, 0)
	m.RegisterVM(1, 100)
	p, _ := m.CreatePool(0, 1, "c", cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	fillPool(t, m, p, 1, 10)
	m.UnregisterVM(1)
	if m.StoreUsedBytes(cgroup.StoreMem) != 0 {
		t.Fatal("unregister leaked store bytes")
	}
}

func TestMigrateInode(t *testing.T) {
	m := newMgr(ModeDD, 4*mib, 0)
	m.RegisterVM(1, 100)
	pa, _ := m.CreatePool(0, 1, "a", cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 50})
	pb, _ := m.CreatePool(0, 1, "b", cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 50})
	m.Put(0, 1, key(pa, 9, 0), 0)
	m.Put(0, 1, key(pa, 9, 1), 0)
	m.MigrateInode(0, 1, pa, pb, 9)
	if m.PoolUsedBytes(pa, cgroup.StoreMem) != 0 {
		t.Fatal("source pool retained bytes")
	}
	if hit, _ := m.Get(0, 1, key(pb, 9, 1)); !hit {
		t.Fatal("migrated block not found under target pool")
	}
}

func TestShrinkCapacityEvictsDown(t *testing.T) {
	m := newMgr(ModeDD, 8*mib, 0)
	m.RegisterVM(1, 100)
	p, _ := m.CreatePool(0, 1, "c", cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	fillPool(t, m, p, 1, 2048) // 8 MiB
	m.SetMemCapacity(0, 2*mib)
	if used := m.StoreUsedBytes(cgroup.StoreMem); used > 2*mib {
		t.Fatalf("used %d after shrink to 2 MiB", used)
	}
}

func TestPoolStatsCounters(t *testing.T) {
	m := newMgr(ModeDD, 4*mib, 0)
	m.RegisterVM(1, 100)
	p, _ := m.CreatePool(0, 1, "c", cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	m.Put(0, 1, key(p, 1, 0), 0)
	m.Get(0, 1, key(p, 1, 0)) // hit
	m.Get(0, 1, key(p, 1, 1)) // miss
	s := m.PoolStats(1, p)
	if s.Puts != 1 || s.Gets != 2 || s.GetHits != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.EntitlementBytes != 4*mib {
		t.Fatalf("entitlement = %d, want full store", s.EntitlementBytes)
	}
}

func TestPutWithoutBackendRejected(t *testing.T) {
	m := newMgr(ModeDD, 4*mib, 0) // no SSD store
	m.RegisterVM(1, 100)
	p, _ := m.CreatePool(0, 1, "c", cgroup.HCacheSpec{Store: cgroup.StoreSSD, Weight: 100})
	if ok, _ := m.Put(0, 1, key(p, 1, 0), 0); ok {
		t.Fatal("put to missing backend should be rejected")
	}
	if s := m.PoolStats(1, p); s.PutRejects != 1 {
		t.Fatalf("PutRejects = %d", s.PutRejects)
	}
}

func TestAutoRegisterUnknownVM(t *testing.T) {
	m := newMgr(ModeDD, 4*mib, 0)
	p, _ := m.CreatePool(0, 7, "c", cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	if ok, _ := m.Put(0, 7, key(p, 1, 0), 0); !ok {
		t.Fatal("auto-registered VM cannot use cache")
	}
}

func TestModeString(t *testing.T) {
	if ModeDD.String() != "doubledecker" || ModeGlobal.String() != "global" {
		t.Fatal("Mode.String broken")
	}
}

// Property: backend used bytes always equals the sum over pools, and
// never exceeds capacity, across random operation sequences.
func TestPropertyAccountingInvariant(t *testing.T) {
	prop := func(ops []struct {
		Pool  bool
		Inode uint8
		Block uint8
		Op    uint8
	}) bool {
		m := newMgr(ModeDD, 1*mib, 0)
		m.RegisterVM(1, 100)
		p1, _ := m.CreatePool(0, 1, "a", cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 70})
		p2, _ := m.CreatePool(0, 1, "b", cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 30})
		for _, op := range ops {
			p := p1
			if op.Pool {
				p = p2
			}
			k := key(p, uint64(op.Inode), int64(op.Block))
			switch op.Op % 4 {
			case 0, 1:
				m.Put(0, 1, k, 0)
			case 2:
				m.Get(0, 1, k)
			case 3:
				m.FlushPage(0, 1, k)
			}
			sum := m.PoolUsedBytes(p1, cgroup.StoreMem) + m.PoolUsedBytes(p2, cgroup.StoreMem)
			if sum != m.StoreUsedBytes(cgroup.StoreMem) {
				return false
			}
			if m.StoreUsedBytes(cgroup.StoreMem) > 1*mib {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReadAheadCountsSeparateFromGets(t *testing.T) {
	// Review regression: readahead extractions must not pollute the
	// Gets/GetHits counters (a staged block may never reach the guest),
	// and the terminating miss probe is accounted too.
	m := newMgr(ModeDD, 16*mib, 0)
	m.RegisterVM(1, 100)
	p, _ := m.CreatePool(0, 1, "c1", cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	for b := int64(0); b < 4; b++ {
		if ok, _ := m.Put(0, 1, key(p, 1, b), 0); !ok {
			t.Fatalf("put %d rejected", b)
		}
	}
	// Window of 8 over a 4-block run: 4 extractions + the miss probe.
	n, _ := m.ReadAhead(0, 1, key(p, 1, 0), 8)
	if n != 4 {
		t.Fatalf("extracted %d blocks, want 4", n)
	}
	s := m.PoolStats(1, p)
	if s.ReadAheadGets != 5 || s.ReadAheadHits != 4 {
		t.Fatalf("ReadAheadGets = %d, ReadAheadHits = %d, want 5 and 4", s.ReadAheadGets, s.ReadAheadHits)
	}
	if s.Gets != 0 || s.GetHits != 0 {
		t.Fatalf("readahead polluted get counters: Gets = %d, GetHits = %d", s.Gets, s.GetHits)
	}
	// A real get is counted where it always was.
	if hit, _ := m.Get(0, 1, key(p, 1, 0)); hit {
		t.Fatal("exclusive readahead left the block in the pool")
	}
	s = m.PoolStats(1, p)
	if s.Gets != 1 || s.GetHits != 0 {
		t.Fatalf("after miss: Gets = %d, GetHits = %d, want 1 and 0", s.Gets, s.GetHits)
	}
}
