// Package oracle is the sequential model oracle for the DoubleDecker
// hypervisor cache manager (internal/ddcache): a deliberately naive,
// single-threaded reference implementation of the same cleancache.Backend
// dispatch, used by the differential and fuzz tests to check the sharded
// manager op-for-op.
//
// Everything here optimizes for obviousness over speed: plain maps and
// slices, entitlements recomputed from first principles on every query,
// no locks, no atomics, no epochs. The only modules shared with the real
// manager are the ones that ARE the specification — policy (weighted
// shares and Algorithm 1 victim selection) and store (device latency and
// usage accounting) — so a divergence between oracle and manager always
// points at the manager's concurrency machinery, not at a second
// implementation of the math.
//
// An Oracle is NOT safe for concurrent use. The linearizability variant
// of the differential test replays concurrent logs through it one op at
// a time.
package oracle

import (
	"sort"
	"time"

	"doubledecker/internal/cgroup"
	"doubledecker/internal/cleancache"
	"doubledecker/internal/policy"
	"doubledecker/internal/store"
)

// ObjectSize mirrors ddcache.ObjectSize (one guest page). Declared
// independently: the oracle must not import the package it checks.
const ObjectSize = 4096

// Mode mirrors ddcache.Mode.
type Mode int

// Modes of operation, numerically identical to ddcache's.
const (
	ModeDD Mode = iota + 1
	ModeGlobal
)

// Config parameterizes an Oracle; fields mirror ddcache.Config. The
// oracle models healthy devices (no circuit breakers): differential runs
// must not inject device faults, since breaker state is timing-dependent
// and deliberately outside the sequential model.
type Config struct {
	Mode            Mode
	Mem             store.Backend
	SSD             store.Backend
	Remote          store.Backend
	Demotion        DemotionConfig
	EvictBatchBytes int64
	OpOverhead      time.Duration
	VictimSelector  func(ents []policy.Entity, evictionSize int64) int
	Dedup           bool
	Inclusive       bool
}

// DemotionConfig mirrors ddcache.DemotionConfig (declared independently:
// the oracle must not import the package it checks).
type DemotionConfig struct {
	MaxDirtyBytes   int64
	MaxDirtyObjects int64
	BatchBytes      int64
}

// DemotionStats mirrors ddcache.DemotionStats field-for-field, so the
// differential tests can compare the two by struct conversion.
type DemotionStats struct {
	Enqueued       int64
	Drained        int64
	Cancelled      int64
	DroppedFull    int64
	DroppedError   int64
	DroppedBreaker int64
	DirtyBytes     int64
	DirtyObjects   int64
	MaxDirtyBytes  int64
}

// tierOrder mirrors ddcache's demotion ladder: mem evicts to SSD, SSD
// evicts to remote, remote evictions are true drops.
var tierOrder = []cgroup.StoreType{cgroup.StoreMem, cgroup.StoreSSD, cgroup.StoreRemote}

type objKey struct {
	inode uint64
	block int64
}

type obj struct {
	inode   uint64
	block   int64
	size    int64
	store   cgroup.StoreType
	seq     uint64
	content uint64
	// pending mirrors index.Object.Pending: a write-behind demotion in
	// flight, bytes buffered in the demotion queue, charged to no backend.
	pending bool
}

// demoteEntry is one queued write-behind demotion.
type demoteEntry struct {
	p  *pool
	ob *obj
}

// demoteQueue mirrors ddcache's bounded write-behind ring, including its
// refusal semantics: the ring has exactly MaxDirtyObjects slots and
// cancelled entries occupy theirs until popped.
type demoteQueue struct {
	cfg   DemotionConfig
	ring  []demoteEntry
	stats DemotionStats
}

func newDemoteQueue(cfg DemotionConfig) *demoteQueue {
	if cfg.MaxDirtyBytes <= 0 {
		cfg.MaxDirtyBytes = 8 << 20
	}
	if cfg.MaxDirtyObjects <= 0 {
		cfg.MaxDirtyObjects = cfg.MaxDirtyBytes / ObjectSize
		if cfg.MaxDirtyObjects <= 0 {
			cfg.MaxDirtyObjects = 1
		}
	}
	if cfg.BatchBytes <= 0 {
		cfg.BatchBytes = 2 << 20
	}
	return &demoteQueue{cfg: cfg}
}

func (q *demoteQueue) tryEnqueue(p *pool, ob *obj) bool {
	if int64(len(q.ring)) == q.cfg.MaxDirtyObjects ||
		q.stats.DirtyObjects >= q.cfg.MaxDirtyObjects ||
		q.stats.DirtyBytes+ob.size > q.cfg.MaxDirtyBytes {
		return false
	}
	q.ring = append(q.ring, demoteEntry{p: p, ob: ob})
	q.stats.DirtyObjects++
	q.stats.DirtyBytes += ob.size
	if q.stats.DirtyBytes > q.stats.MaxDirtyBytes {
		q.stats.MaxDirtyBytes = q.stats.DirtyBytes
	}
	q.stats.Enqueued++
	return true
}

func (q *demoteQueue) pop() (demoteEntry, bool) {
	if len(q.ring) == 0 {
		return demoteEntry{}, false
	}
	e := q.ring[0]
	q.ring = q.ring[1:]
	return e, true
}

func (q *demoteQueue) ready() bool {
	return q != nil && q.stats.DirtyBytes >= q.cfg.BatchBytes
}

func (q *demoteQueue) cancel(size int64) {
	q.stats.DirtyBytes -= size
	q.stats.DirtyObjects--
	q.stats.Cancelled++
}

func (q *demoteQueue) settle(size int64, outcome *int64) {
	q.stats.DirtyBytes -= size
	q.stats.DirtyObjects--
	*outcome++
}

type pool struct {
	id   cleancache.PoolID
	vm   *vm
	name string
	spec cgroup.HCacheSpec

	objs map[objKey]*obj
	// fifo holds per-store insertion order (front = oldest), mirroring
	// the real index's FIFO lists: a migrated object keeps its seq but
	// joins the BACK of the destination pool's queue.
	fifo map[cgroup.StoreType][]*obj
	used map[cgroup.StoreType]int64

	stats cleancache.PoolStats
}

type vm struct {
	id     cleancache.VMID
	weight int64
	pools  []*pool // creation order
}

// Oracle is the sequential reference manager.
type Oracle struct {
	cfg      Config
	vms      []*vm // registration order
	vmByID   map[cleancache.VMID]*vm
	pools    map[cleancache.PoolID]*pool
	nextPool cleancache.PoolID
	nextSeq  uint64

	refs           map[refKey]int64
	dedupSaved     int64
	totalEvictions int64

	// demote is the write-behind demotion queue mirror; nil unless a
	// remote backend is configured in ModeDD, exactly as in ddcache.
	demote *demoteQueue
}

type refKey struct {
	store   cgroup.StoreType
	content uint64
}

var _ cleancache.Backend = (*Oracle)(nil)

// New returns an oracle over the configured stores, applying the same
// defaults as ddcache.NewManager.
func New(cfg Config) *Oracle {
	if cfg.EvictBatchBytes <= 0 {
		cfg.EvictBatchBytes = 2 << 20
	}
	if cfg.Mode == 0 {
		cfg.Mode = ModeDD
	}
	if cfg.OpOverhead == 0 {
		cfg.OpOverhead = 300 * time.Nanosecond
	}
	if cfg.VictimSelector == nil {
		cfg.VictimSelector = policy.SelectVictim
	}
	o := &Oracle{
		cfg:      cfg,
		vmByID:   make(map[cleancache.VMID]*vm),
		pools:    make(map[cleancache.PoolID]*pool),
		nextPool: 1,
		refs:     make(map[refKey]int64),
	}
	if cfg.Remote != nil && cfg.Mode == ModeDD {
		o.demote = newDemoteQueue(cfg.Demotion)
	}
	return o
}

// Dispatch implements cleancache.Backend with the same routing as the
// real manager's dispatch.
func (o *Oracle) Dispatch(now time.Duration, req cleancache.Request) cleancache.Response {
	resp := cleancache.Response{Op: req.Op}
	switch req.Op {
	case cleancache.OpGet:
		resp.Ok, resp.Latency = o.Get(now, req.VM, req.Key)
	case cleancache.OpPut:
		resp.Ok, resp.Latency = o.Put(now, req.VM, req.Key, req.Content)
	case cleancache.OpFlushPage:
		resp.Latency = o.FlushPage(now, req.VM, req.Key)
	case cleancache.OpFlushInode:
		resp.Latency = o.FlushInode(now, req.VM, req.Key.Pool, req.Key.Inode)
	case cleancache.OpCreateCgroup:
		resp.Pool, resp.Latency = o.CreatePool(now, req.VM, req.Name, req.Spec)
		resp.Ok = resp.Pool != 0
	case cleancache.OpDestroyCgroup:
		resp.Latency = o.DestroyPool(now, req.VM, req.Key.Pool)
	case cleancache.OpSetCgWeight:
		resp.Latency = o.SetSpec(now, req.VM, req.Key.Pool, req.Spec)
	case cleancache.OpMigrateObject:
		resp.Latency = o.MigrateInode(now, req.VM, req.Key.Pool, req.To, req.Key.Inode)
	case cleancache.OpGetStats:
		resp.Ok = true
		resp.Stats = o.PoolStats(req.VM, req.Key.Pool)
	case cleancache.OpReadAhead:
		resp.Count, resp.Latency = o.ReadAhead(now, req.VM, req.Key, req.Count)
		resp.Ok = resp.Count > 0
	}
	return resp
}

func (o *Oracle) backend(st cgroup.StoreType) store.Backend {
	switch st {
	case cgroup.StoreMem:
		return o.cfg.Mem
	case cgroup.StoreSSD:
		return o.cfg.SSD
	case cgroup.StoreRemote:
		return o.cfg.Remote
	default:
		return nil
	}
}

// --- host administrator interface ------------------------------------------

// RegisterVM announces a VM with its weight.
func (o *Oracle) RegisterVM(id cleancache.VMID, weight int64) {
	if v, ok := o.vmByID[id]; ok {
		v.weight = weight
		return
	}
	v := &vm{id: id, weight: weight}
	o.vmByID[id] = v
	o.vms = append(o.vms, v)
}

// UnregisterVM drops a VM and all its pools.
func (o *Oracle) UnregisterVM(id cleancache.VMID) {
	v, ok := o.vmByID[id]
	if !ok {
		return
	}
	for _, p := range append([]*pool(nil), v.pools...) {
		o.destroyPool(p)
	}
	delete(o.vmByID, id)
	for i, other := range o.vms {
		if other == v {
			o.vms = append(o.vms[:i], o.vms[i+1:]...)
			break
		}
	}
}

// SetVMWeight updates a VM's weight; unknown VMs are ignored.
func (o *Oracle) SetVMWeight(id cleancache.VMID, weight int64) {
	if v, ok := o.vmByID[id]; ok {
		v.weight = weight
	}
}

// SetMemCapacity resizes the memory store and returns the latency, as
// the real manager does.
func (o *Oracle) SetMemCapacity(now time.Duration, n int64) time.Duration {
	return o.setCapacity(now, cgroup.StoreMem, n)
}

// SetSSDCapacity resizes the SSD store and returns the latency.
func (o *Oracle) SetSSDCapacity(now time.Duration, n int64) time.Duration {
	return o.setCapacity(now, cgroup.StoreSSD, n)
}

// SetRemoteCapacity resizes the remote tier and returns the latency.
func (o *Oracle) SetRemoteCapacity(now time.Duration, n int64) time.Duration {
	return o.setCapacity(now, cgroup.StoreRemote, n)
}

func (o *Oracle) setCapacity(now time.Duration, st cgroup.StoreType, n int64) time.Duration {
	be := o.backend(st)
	if be == nil {
		return 0
	}
	be.SetCapacityBytes(n)
	lat := o.cfg.OpOverhead
	lat += o.enforceCapacity(now+lat, st, 0)
	lat += o.drainDemotions(now + lat)
	return lat
}

// --- op handlers ------------------------------------------------------------

// CreatePool mirrors the manager's CREATE_CGROUP defaults exactly.
func (o *Oracle) CreatePool(_ time.Duration, vmid cleancache.VMID, name string, spec cgroup.HCacheSpec) (cleancache.PoolID, time.Duration) {
	v, ok := o.vmByID[vmid]
	if !ok {
		o.RegisterVM(vmid, 100)
		v = o.vmByID[vmid]
	}
	if spec.Store == 0 {
		spec.Store = cgroup.StoreMem
		if spec.Weight <= 0 {
			spec.Weight = 100
		}
	}
	if spec.Weight < 0 {
		spec.Weight = 0
	}
	id := o.nextPool
	o.nextPool++
	p := &pool{
		id:   id,
		vm:   v,
		name: name,
		spec: spec,
		objs: make(map[objKey]*obj),
		fifo: make(map[cgroup.StoreType][]*obj),
		used: make(map[cgroup.StoreType]int64),
	}
	o.pools[id] = p
	v.pools = append(v.pools, p)
	return id, o.cfg.OpOverhead
}

// DestroyPool mirrors DESTROY_CGROUP.
func (o *Oracle) DestroyPool(_ time.Duration, _ cleancache.VMID, id cleancache.PoolID) time.Duration {
	p, ok := o.pools[id]
	if !ok {
		return 0
	}
	o.destroyPool(p)
	return o.cfg.OpOverhead
}

func (o *Oracle) destroyPool(p *pool) {
	for _, ob := range o.drainAll(p) {
		o.releaseObject(ob)
	}
	delete(o.pools, p.id)
	for i, other := range p.vm.pools {
		if other == p {
			p.vm.pools = append(p.vm.pools[:i], p.vm.pools[i+1:]...)
			break
		}
	}
}

// SetSpec mirrors SET_CG_WEIGHT, including the keep-old-on-zero rules and
// the strand-flush of de-configured stores.
func (o *Oracle) SetSpec(_ time.Duration, _ cleancache.VMID, id cleancache.PoolID, spec cgroup.HCacheSpec) time.Duration {
	p, ok := o.pools[id]
	if !ok {
		return 0
	}
	if o.cfg.Mode == ModeGlobal {
		return o.cfg.OpOverhead
	}
	old := p.spec
	if spec.Weight <= 0 {
		spec.Weight = old.Weight
	}
	if spec.Store == 0 {
		spec.Store = old.Store
	}
	p.spec = spec
	for _, st := range tierOrder {
		if usesStore(p.spec, st) || p.used[st] == 0 {
			continue
		}
		for {
			ob := o.oldest(p, st)
			if ob == nil {
				break
			}
			o.unlink(p, ob)
			o.releaseObject(ob)
			p.stats.Evictions++
			o.totalEvictions++
		}
	}
	return o.cfg.OpOverhead
}

// Get mirrors the exclusive GET.
func (o *Oracle) Get(now time.Duration, _ cleancache.VMID, key cleancache.Key) (bool, time.Duration) {
	p, ok := o.pools[key.Pool]
	if !ok {
		return false, 0
	}
	p.stats.Gets++
	lat := o.cfg.OpOverhead
	ob := p.objs[objKey{key.Inode, key.Block}]
	if ob == nil {
		return false, lat
	}
	if !ob.pending {
		if be := o.backend(ob.store); be != nil {
			flat, err := be.Fetch(now+lat, ob.size)
			lat += flat
			if err != nil {
				o.unlink(p, ob)
				o.releaseObject(ob)
				return false, lat
			}
		}
	}
	p.stats.GetHits++
	if !o.cfg.Inclusive {
		o.releaseObject(ob)
		o.unlink(p, ob)
	}
	return true, lat
}

// ReadAhead mirrors READ_AHEAD: a bulk get of up to count contiguous
// blocks from key.Block, stopping at the first absent block, each block
// following the GET data semantics but accounted under the separate
// readahead counters (every probe, including the terminating miss,
// counts a ReadAheadGet; every extraction a ReadAheadHit), exactly as
// the real manager does.
func (o *Oracle) ReadAhead(now time.Duration, _ cleancache.VMID, key cleancache.Key, count int64) (int64, time.Duration) {
	p, ok := o.pools[key.Pool]
	if !ok {
		return 0, 0
	}
	lat := o.cfg.OpOverhead
	var n int64
	for i := int64(0); i < count; i++ {
		ob := p.objs[objKey{key.Inode, key.Block + i}]
		p.stats.ReadAheadGets++
		if ob == nil {
			break
		}
		if !ob.pending {
			be := o.backend(ob.store)
			if be != nil {
				flat, err := be.Fetch(now+lat, ob.size)
				lat += flat
				if err != nil {
					o.unlink(p, ob)
					o.releaseObject(ob)
					break
				}
			}
		}
		p.stats.ReadAheadHits++
		if !o.cfg.Inclusive {
			o.releaseObject(ob)
			o.unlink(p, ob)
		}
		n++
	}
	return n, lat
}

// Put mirrors PUT: placement, dedup, capacity enforcement, commit, and
// the batched write-behind drain once dirty bytes reach the threshold.
func (o *Oracle) Put(now time.Duration, vmid cleancache.VMID, key cleancache.Key, content uint64) (bool, time.Duration) {
	ok, lat := o.putInner(now, vmid, key, content)
	if o.demote.ready() {
		lat += o.drainDemotions(now + lat)
	}
	return ok, lat
}

func (o *Oracle) putInner(now time.Duration, _ cleancache.VMID, key cleancache.Key, content uint64) (bool, time.Duration) {
	p, ok := o.pools[key.Pool]
	if !ok {
		return false, 0
	}
	p.stats.Puts++
	lat := o.cfg.OpOverhead
	st, stOK := o.placementStore(p)
	be := o.backend(st)
	if !stOK || be == nil || be.CapacityBytes() <= 0 {
		p.stats.PutRejects++
		return false, lat
	}
	dedup := o.cfg.Dedup && content != 0
	needsPhysical := !dedup || o.refs[refKey{st, content}] == 0
	if needsPhysical && be.UsedBytes()+ObjectSize > be.CapacityBytes() {
		lat += o.enforceCapacity(now+lat, st, ObjectSize)
		if be.UsedBytes()+ObjectSize > be.CapacityBytes() {
			p.stats.PutRejects++
			return false, lat
		}
	}
	ob := &obj{inode: key.Inode, block: key.Block, size: ObjectSize, store: st}
	o.nextSeq++
	ob.seq = o.nextSeq
	if dedup {
		ob.content = content
		rk := refKey{st, content}
		o.refs[rk]++
		if o.refs[rk] > 1 {
			o.dedupSaved += ObjectSize
			o.insert(p, ob)
			return true, lat
		}
	}
	slat, err := be.Store(now+lat, ObjectSize)
	lat += slat
	if err != nil {
		if dedup {
			rk := refKey{st, content}
			if o.refs[rk] <= 1 {
				delete(o.refs, rk)
			} else {
				o.refs[rk]--
			}
		}
		p.stats.PutRejects++
		return false, lat
	}
	o.insert(p, ob)
	return true, lat
}

// FlushPage mirrors FLUSH_PAGE.
func (o *Oracle) FlushPage(_ time.Duration, _ cleancache.VMID, key cleancache.Key) time.Duration {
	p, ok := o.pools[key.Pool]
	if !ok {
		return 0
	}
	if ob := p.objs[objKey{key.Inode, key.Block}]; ob != nil {
		o.unlink(p, ob)
		o.releaseObject(ob)
	}
	return o.cfg.OpOverhead
}

// FlushInode mirrors FLUSH_INODE.
func (o *Oracle) FlushInode(_ time.Duration, _ cleancache.VMID, id cleancache.PoolID, inode uint64) time.Duration {
	p, ok := o.pools[id]
	if !ok {
		return 0
	}
	for _, ob := range o.removeInode(p, inode) {
		o.releaseObject(ob)
	}
	return o.cfg.OpOverhead
}

// MigrateInode mirrors MIGRATE_OBJECT: objects keep their seq but join
// the back of the destination pool's FIFO, in ascending block order (the
// real index's radix-tree iteration order). The write-behind queue is
// force-drained first (flush-before-migrate), and any pending object is
// dropped instead of migrated, exactly as the real manager does.
func (o *Oracle) MigrateInode(now time.Duration, _ cleancache.VMID, from, to cleancache.PoolID, inode uint64) time.Duration {
	lat := o.drainDemotions(now)
	src, okSrc := o.pools[from]
	dst, okDst := o.pools[to]
	if !okSrc || !okDst {
		return lat
	}
	for _, ob := range o.removeInode(src, inode) {
		if ob.pending {
			o.releaseObject(ob)
			continue
		}
		o.insert(dst, ob)
	}
	return lat + o.cfg.OpOverhead
}

// PoolStats mirrors GET_STATS.
func (o *Oracle) PoolStats(_ cleancache.VMID, id cleancache.PoolID) cleancache.PoolStats {
	p, ok := o.pools[id]
	if !ok {
		return cleancache.PoolStats{}
	}
	s := p.stats
	var used, count int64
	for _, u := range p.used {
		used += u
	}
	count = int64(len(p.objs))
	s.UsedBytes = used
	s.Objects = count
	var ent int64
	for _, st := range tierOrder {
		if usesStore(p.spec, st) {
			ent += o.poolEntitlement(p, st)
		}
	}
	s.EntitlementBytes = ent
	return s
}

// --- placement, structure and accounting ------------------------------------

func usesStore(spec cgroup.HCacheSpec, st cgroup.StoreType) bool {
	switch spec.Store {
	case cgroup.StoreHybrid:
		return st == cgroup.StoreMem || st == cgroup.StoreSSD || st == cgroup.StoreRemote
	case cgroup.StoreSSD:
		return st == cgroup.StoreSSD || st == cgroup.StoreRemote
	default:
		return spec.Store == st
	}
}

func (o *Oracle) placementStore(p *pool) (cgroup.StoreType, bool) {
	if o.cfg.Mode == ModeGlobal {
		return cgroup.StoreMem, true
	}
	st := p.spec.Store
	if st == cgroup.StoreHybrid {
		if o.cfg.Mem != nil && p.used[cgroup.StoreMem]+ObjectSize <= o.poolEntitlement(p, cgroup.StoreMem) {
			return cgroup.StoreMem, true
		}
		st = cgroup.StoreSSD
	}
	return st, true
}

// insert adds ob to p, releasing any replaced object under the same key
// (as the real index's Insert does).
func (o *Oracle) insert(p *pool, ob *obj) {
	k := objKey{ob.inode, ob.block}
	if prev := p.objs[k]; prev != nil {
		o.unlink(p, prev)
		o.releaseObject(prev)
	}
	p.objs[k] = ob
	p.fifo[ob.store] = append(p.fifo[ob.store], ob)
	p.used[ob.store] += ob.size
}

// unlink detaches ob from p's index, FIFO and accounting.
func (o *Oracle) unlink(p *pool, ob *obj) {
	delete(p.objs, objKey{ob.inode, ob.block})
	q := p.fifo[ob.store]
	for i, other := range q {
		if other == ob {
			p.fifo[ob.store] = append(q[:i], q[i+1:]...)
			break
		}
	}
	p.used[ob.store] -= ob.size
	if p.used[ob.store] < 0 {
		p.used[ob.store] = 0
	}
}

// oldest returns the front of p's st FIFO, or nil.
func (o *Oracle) oldest(p *pool, st cgroup.StoreType) *obj {
	if q := p.fifo[st]; len(q) > 0 {
		return q[0]
	}
	return nil
}

// removeInode removes and returns inode's objects in ascending block
// order.
func (o *Oracle) removeInode(p *pool, inode uint64) []*obj {
	var objs []*obj
	for _, ob := range p.objs {
		if ob.inode == inode {
			objs = append(objs, ob)
		}
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].block < objs[j].block })
	for _, ob := range objs {
		o.unlink(p, ob)
	}
	return objs
}

func (o *Oracle) drainAll(p *pool) []*obj {
	var objs []*obj
	for _, ob := range p.objs {
		objs = append(objs, ob)
	}
	p.objs = make(map[objKey]*obj)
	p.fifo = make(map[cgroup.StoreType][]*obj)
	p.used = make(map[cgroup.StoreType]int64)
	return objs
}

// releaseObject frees ob's physical bytes, honouring shared dedup copies.
// A pending object holds no backend storage: releasing it cancels the
// queued demotion instead.
func (o *Oracle) releaseObject(ob *obj) {
	if ob.pending {
		ob.pending = false
		o.demote.cancel(ob.size)
		return
	}
	be := o.backend(ob.store)
	if be == nil {
		return
	}
	if ob.content != 0 {
		rk := refKey{ob.store, ob.content}
		if o.refs[rk] > 1 {
			o.refs[rk]--
			return
		}
		delete(o.refs, rk)
	}
	be.Release(ob.size)
}

// --- entitlements and Algorithm 1 -------------------------------------------

// vmEntitlement recomputes the VM's share of st from first principles on
// every call.
func (o *Oracle) vmEntitlement(v *vm, st cgroup.StoreType) int64 {
	be := o.backend(st)
	if be == nil {
		return 0
	}
	weights := make([]int64, len(o.vms))
	idx := -1
	for i, other := range o.vms {
		weights[i] = other.weight
		if other == v {
			idx = i
		}
	}
	if idx < 0 {
		return 0
	}
	return policy.Shares(be.CapacityBytes(), weights)[idx]
}

func (o *Oracle) poolEntitlement(p *pool, st cgroup.StoreType) int64 {
	if !usesStore(p.spec, st) {
		return 0
	}
	vmShare := o.vmEntitlement(p.vm, st)
	weights := make([]int64, len(p.vm.pools))
	idx := -1
	for i, other := range p.vm.pools {
		if usesStore(other.spec, st) {
			weights[i] = int64(other.spec.Weight)
		}
		if other == p {
			idx = i
		}
	}
	if idx < 0 {
		return 0
	}
	return policy.Shares(vmShare, weights)[idx]
}

func (o *Oracle) enforceCapacity(_ time.Duration, st cgroup.StoreType, incoming int64) time.Duration {
	be := o.backend(st)
	if be == nil {
		return 0
	}
	var lat time.Duration
	for be.UsedBytes()+incoming > be.CapacityBytes() {
		need := be.UsedBytes() + incoming - be.CapacityBytes()
		batch := o.cfg.EvictBatchBytes
		if batch < need {
			batch = need
		}
		freed := o.evictBatch(st, batch)
		if freed == 0 {
			break
		}
		lat += o.cfg.OpOverhead
	}
	return lat
}

func (o *Oracle) evictBatch(st cgroup.StoreType, batch int64) int64 {
	if o.cfg.Mode == ModeGlobal {
		return o.evictGlobalFIFO(st, batch)
	}
	victimVM := o.selectVictimVM(st, batch)
	if victimVM == nil {
		return 0
	}
	victim := o.selectVictimPool(victimVM, st, batch)
	if victim == nil {
		return 0
	}
	target := o.demoteTarget(victim, st)
	var freed int64
	for freed < batch {
		ob := o.oldest(victim, st)
		if ob == nil {
			break
		}
		o.unlink(victim, ob)
		if target != 0 && !ob.pending && ob.content == 0 && o.demote.tryEnqueue(victim, ob) {
			o.releaseObject(ob)
			ob.store = target
			ob.pending = true
			o.insert(victim, ob)
			victim.stats.Demotions++
		} else {
			o.releaseObject(ob)
			victim.stats.Evictions++
			o.totalEvictions++
		}
		freed += ob.size
	}
	return freed
}

// demoteTarget mirrors ddcache's: the next tier of tierOrder the pool's
// spec uses and a backend exists for, or 0 for a plain drop.
func (o *Oracle) demoteTarget(p *pool, st cgroup.StoreType) cgroup.StoreType {
	if o.demote == nil {
		return 0
	}
	past := false
	for _, t := range tierOrder {
		if t == st {
			past = true
			continue
		}
		if past && usesStore(p.spec, t) && o.backend(t) != nil {
			return t
		}
	}
	return 0
}

// drainDemotions mirrors ddcache's drain loop.
func (o *Oracle) drainDemotions(now time.Duration) time.Duration {
	if o.demote == nil {
		return 0
	}
	var lat time.Duration
	for {
		e, ok := o.demote.pop()
		if !ok {
			return lat
		}
		lat += o.drainOne(now+lat, e)
	}
}

// drainOne mirrors ddcache's: land one queued demotion, settling the
// dirtiness accounting exactly once per terminal outcome. The oracle has
// no breakers, so the breaker-drop branch never fires here (differential
// runs never inject faults).
func (o *Oracle) drainOne(now time.Duration, e demoteEntry) time.Duration {
	q := o.demote
	var lat time.Duration
	if !e.ob.pending {
		return 0 // cancelled before the drain got here
	}
	st := e.ob.store
	be := o.backend(st)
	if be == nil || be.CapacityBytes() <= 0 {
		o.dropPending(e.p, e.ob, &q.stats.DroppedFull)
		return 0
	}
	if be.UsedBytes()+e.ob.size > be.CapacityBytes() {
		lat += o.enforceCapacity(now+lat, st, e.ob.size)
		if !e.ob.pending {
			return lat // the enforcement itself evicted (cancelled) this entry
		}
		if be.UsedBytes()+e.ob.size > be.CapacityBytes() {
			o.dropPending(e.p, e.ob, &q.stats.DroppedFull)
			return lat
		}
	}
	slat, err := be.Store(now+lat, e.ob.size)
	lat += slat
	if err != nil {
		o.dropPending(e.p, e.ob, &q.stats.DroppedError)
		return lat
	}
	e.ob.pending = false
	q.settle(e.ob.size, &q.stats.Drained)
	return lat
}

// dropPending mirrors ddcache's: a queued demotion becomes a true
// eviction.
func (o *Oracle) dropPending(p *pool, ob *obj, outcome *int64) {
	o.unlink(p, ob)
	ob.pending = false
	o.demote.settle(ob.size, outcome)
	p.stats.Evictions++
	o.totalEvictions++
}

func (o *Oracle) evictGlobalFIFO(st cgroup.StoreType, batch int64) int64 {
	var freed int64
	for freed < batch {
		var (
			victim *pool
			oldest *obj
		)
		for _, v := range o.vms {
			for _, p := range v.pools {
				ob := o.oldest(p, st)
				if ob == nil {
					continue
				}
				if oldest == nil || ob.seq < oldest.seq {
					victim, oldest = p, ob
				}
			}
		}
		if victim == nil {
			break
		}
		o.unlink(victim, oldest)
		o.releaseObject(oldest)
		freed += oldest.size
		victim.stats.Evictions++
		o.totalEvictions++
	}
	return freed
}

func (o *Oracle) selectVictimVM(st cgroup.StoreType, batch int64) *vm {
	candidates := make([]*vm, 0, len(o.vms))
	ents := make([]policy.Entity, 0, len(o.vms))
	for _, v := range o.vms {
		var used int64
		for _, p := range v.pools {
			used += p.used[st]
		}
		if used == 0 {
			continue
		}
		candidates = append(candidates, v)
		ents = append(ents, policy.Entity{Weight: v.weight, Entitlement: o.vmEntitlement(v, st), Used: used})
	}
	if len(candidates) == 0 {
		return nil
	}
	i := o.cfg.VictimSelector(ents, batch)
	if i < 0 {
		i = largestUser(ents)
	}
	if i < 0 {
		return nil
	}
	return candidates[i]
}

func (o *Oracle) selectVictimPool(v *vm, st cgroup.StoreType, batch int64) *pool {
	candidates := make([]*pool, 0, len(v.pools))
	ents := make([]policy.Entity, 0, len(v.pools))
	for _, p := range v.pools {
		used := p.used[st]
		if used == 0 {
			continue
		}
		candidates = append(candidates, p)
		ents = append(ents, policy.Entity{Weight: int64(p.spec.Weight), Entitlement: o.poolEntitlement(p, st), Used: used})
	}
	if len(candidates) == 0 {
		return nil
	}
	i := o.cfg.VictimSelector(ents, batch)
	if i < 0 {
		i = largestUser(ents)
	}
	if i < 0 {
		return nil
	}
	return candidates[i]
}

func largestUser(ents []policy.Entity) int {
	best, bestUsed := -1, int64(0)
	for i, e := range ents {
		if e.Used > bestUsed {
			best, bestUsed = i, e.Used
		}
	}
	return best
}

// --- observation helpers (for the differential tests) -----------------------

// Contains reports whether a block is cached, without get side effects.
func (o *Oracle) Contains(key cleancache.Key) bool {
	p, ok := o.pools[key.Pool]
	if !ok {
		return false
	}
	return p.objs[objKey{key.Inode, key.Block}] != nil
}

// PoolUsedBytes reports a pool's occupancy in st.
func (o *Oracle) PoolUsedBytes(id cleancache.PoolID, st cgroup.StoreType) int64 {
	p, ok := o.pools[id]
	if !ok {
		return 0
	}
	return p.used[st]
}

// PoolTotalBytes reports a pool's occupancy across stores.
func (o *Oracle) PoolTotalBytes(id cleancache.PoolID) int64 {
	p, ok := o.pools[id]
	if !ok {
		return 0
	}
	var t int64
	for _, u := range p.used {
		t += u
	}
	return t
}

// VMEntitlement reports a VM's share of st (0 for unknown VMs).
func (o *Oracle) VMEntitlement(id cleancache.VMID, st cgroup.StoreType) int64 {
	v, ok := o.vmByID[id]
	if !ok {
		return 0
	}
	return o.vmEntitlement(v, st)
}

// PoolEntitlement reports a pool's share of st (0 for unknown pools).
func (o *Oracle) PoolEntitlement(id cleancache.PoolID, st cgroup.StoreType) int64 {
	p, ok := o.pools[id]
	if !ok {
		return 0
	}
	return o.poolEntitlement(p, st)
}

// TotalEvictions reports objects evicted by capacity enforcement.
func (o *Oracle) TotalEvictions() int64 { return o.totalEvictions }

// DemotionStats snapshots the write-behind queue mirror (all zeros when
// no remote backend is configured).
func (o *Oracle) DemotionStats() DemotionStats {
	if o.demote == nil {
		return DemotionStats{}
	}
	return o.demote.stats
}

// FlushDemotions force-drains the write-behind queue mirror.
func (o *Oracle) FlushDemotions(now time.Duration) time.Duration {
	return o.drainDemotions(now)
}

// DedupSavedBytes reports physical bytes avoided by deduplication.
func (o *Oracle) DedupSavedBytes() int64 { return o.dedupSaved }

// DedupMinRef reports the smallest live dedup reference count (and
// whether any exists).
func (o *Oracle) DedupMinRef() (int64, bool) {
	var (
		minv  int64
		found bool
	)
	for _, n := range o.refs {
		if !found || n < minv {
			minv, found = n, true
		}
	}
	return minv, found
}
