package oracle

import (
	"sync"
	"time"

	"doubledecker/internal/cleancache"
)

// Sequential wraps any cleancache.Backend in one global mutex, making a
// single-threaded implementation (such as an Oracle) safe for concurrent
// dispatch. With HoldLatency set the lock is additionally held for each
// operation's modeled device latency, turning the wrapper into the
// single-lock strawman of the scaling experiment: a manager whose global
// lock serializes every guest's device wait admits exactly one
// in-flight operation, so adding guests adds no throughput.
type Sequential struct {
	mu    sync.Mutex
	inner cleancache.Backend
	// HoldLatency sleeps each response's modeled latency while still
	// holding the lock (scaling-baseline mode).
	HoldLatency bool
}

// NewSequential wraps inner in a global dispatch mutex.
func NewSequential(inner cleancache.Backend, holdLatency bool) *Sequential {
	return &Sequential{inner: inner, HoldLatency: holdLatency}
}

var _ cleancache.Backend = (*Sequential)(nil)

// Dispatch implements cleancache.Backend under the global mutex.
func (s *Sequential) Dispatch(now time.Duration, req cleancache.Request) cleancache.Response {
	s.mu.Lock()
	defer s.mu.Unlock()
	resp := s.inner.Dispatch(now, req)
	if s.HoldLatency && resp.Latency > 0 {
		time.Sleep(resp.Latency)
	}
	return resp
}
