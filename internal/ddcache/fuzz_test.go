package ddcache_test

// FuzzDispatch decodes arbitrary byte strings into Request sequences and
// drives the sharded Manager and the sequential oracle in lockstep: both
// must produce identical responses, neither may panic, and the manager's
// global invariants (occupancy within capacity, entitlements exhaustive,
// dedup refcounts positive) must hold at the end of every input.

import (
	"testing"
	"time"

	"doubledecker/internal/blockdev"
	"doubledecker/internal/cgroup"
	"doubledecker/internal/cleancache"
	"doubledecker/internal/ddcache"
	"doubledecker/internal/ddcache/oracle"
	"doubledecker/internal/store"
)

func FuzzDispatch(f *testing.F) {
	// Seed corpus: create a pool, put, get, flush, destroy, stats-on-dead.
	f.Add([]byte{0, 1, 0, 50, 5, 1, 1, 9, 7, 1, 1, 3, 5, 2, 0, 9, 8, 2, 0, 9})
	f.Add([]byte{0, 0, 0, 117, 0, 1, 0, 3, 5, 0, 0, 1, 1, 0, 0, 0, 4, 0, 0, 0})
	f.Add([]byte{0, 3, 0, 80, 2, 3, 0, 7, 3, 3, 1, 0, 6, 3, 2, 13, 8, 3, 3, 1})

	const (
		memCap = int64(256 << 10)
		ssdCap = int64(256 << 10)
	)
	f.Fuzz(func(t *testing.T, data []byte) {
		m := ddcache.NewManager(ddcache.Config{
			Mem:             store.NewMem(blockdev.NewRAM("f.ram"), memCap),
			SSD:             store.NewSSD(blockdev.NewSSD("f.ssd"), ssdCap),
			EvictBatchBytes: 64 << 10,
			Dedup:           true,
		})
		o := oracle.New(oracle.Config{
			Mem:             store.NewMem(blockdev.NewRAM("o.ram"), memCap),
			SSD:             store.NewSSD(blockdev.NewSSD("o.ssd"), ssdCap),
			EvictBatchBytes: 64 << 10,
			Dedup:           true,
		})
		registered := make(map[cleancache.VMID]bool)
		var created []cleancache.PoolID
		var now time.Duration
		for step := 0; len(data) >= 4; step++ {
			a, b, c, e := data[0], data[1], data[2], data[3]
			data = data[4:]
			vm := cleancache.VMID(b%4 + 1)
			if !registered[vm] {
				w := int64(a%100) + 1 // always positive: shares stay exhaustive
				m.RegisterVM(vm, w)
				o.RegisterVM(vm, w)
				registered[vm] = true
			}
			pool := cleancache.PoolID(c % 3) // unknown-pool probes when none created
			if len(created) > 0 {
				pool = created[int(c)%len(created)] // includes destroyed ids
			}
			req := cleancache.Request{
				VM:  vm,
				Key: cleancache.Key{Pool: pool, Inode: uint64(b%8) + 1, Block: int64(c % 8)},
			}
			switch a % 9 {
			case 0:
				req.Op = cleancache.OpCreateCgroup
				req.Name = "f"
				req.Spec = cgroup.HCacheSpec{Store: cgroup.StoreType(e % 4), Weight: int(e % 120)}
			case 1:
				req.Op = cleancache.OpDestroyCgroup
			case 2:
				req.Op = cleancache.OpSetCgWeight
				req.Spec = cgroup.HCacheSpec{Store: cgroup.StoreType(e % 4), Weight: int(e % 120)}
			case 3:
				req.Op = cleancache.OpMigrateObject
				if len(created) > 0 {
					req.To = created[int(e)%len(created)]
				}
			case 4:
				req.Op = cleancache.OpGetStats
			case 5, 6:
				req.Op = cleancache.OpPut
				req.Content = uint64((a ^ e) % 13) // 0 sometimes: non-dedup puts
			case 7:
				req.Op = cleancache.OpGet
			default:
				if e%2 == 0 {
					req.Op = cleancache.OpFlushPage
				} else {
					req.Op = cleancache.OpFlushInode
				}
			}
			rm := m.Dispatch(now, req)
			ro := o.Dispatch(now, req)
			if rm.Ok != ro.Ok || rm.Pool != ro.Pool || rm.Stats != ro.Stats || rm.Latency != ro.Latency {
				t.Fatalf("step %d (%v): manager %+v, oracle %+v", step, req.Op, rm, ro)
			}
			if req.Op == cleancache.OpCreateCgroup && rm.Pool != 0 {
				created = append(created, rm.Pool)
			}
			now += rm.Latency + time.Microsecond
		}

		// Invariants, regardless of input bytes.
		for _, st := range []cgroup.StoreType{cgroup.StoreMem, cgroup.StoreSSD} {
			cap := memCap
			if st == cgroup.StoreSSD {
				cap = ssdCap
			}
			if used := m.StoreUsedBytes(st); used > cap {
				t.Fatalf("store %v occupancy %d exceeds capacity %d", st, used, cap)
			}
			if len(registered) > 0 {
				var sum int64
				for vm := range registered {
					sum += m.VMEntitlement(vm, st)
				}
				if sum != cap {
					t.Fatalf("store %v entitlements sum to %d, want capacity %d", st, sum, cap)
				}
			}
		}
		if minRef, any := m.DedupMinRef(); any && minRef < 1 {
			t.Fatalf("dedup refcount dropped to %d", minRef)
		}
		for _, id := range created {
			if got, want := m.PoolStats(0, id), o.PoolStats(0, id); got != want {
				t.Fatalf("pool %d final stats: manager %+v, oracle %+v", id, got, want)
			}
		}
	})
}
