package ddcache

import (
	"testing"
	"time"

	"doubledecker/internal/blockdev"
	"doubledecker/internal/store"
	"doubledecker/internal/wallclock"
)

// TestStressWallClockInjectable pins the wallclock source and checks that
// RunStress's Wall measurement comes from it — the reproducibility
// property the clockcheck analyzer exists to protect. RunStress reads
// the stopwatch exactly twice (start and finish), so a source advancing
// a fixed step per reading must yield exactly one step of Wall time, no
// matter how long the concurrent phase really took.
func TestStressWallClockInjectable(t *testing.T) {
	base := time.Unix(0, 0)
	readings := 0
	restore := wallclock.SetSource(func() time.Time {
		readings++
		return base.Add(time.Duration(readings) * 250 * time.Millisecond)
	})
	defer restore()

	mem := store.NewMem(blockdev.NewRAM("ram"), 8<<20)
	m := NewManager(Config{Mode: ModeDD, Mem: mem})
	res := RunStress(m, StressOptions{VMs: 2, WorkersPerVM: 2, Ops: 200, Seed: 42})

	if res.Wall != 250*time.Millisecond {
		t.Errorf("Wall = %v, want exactly 250ms from the injected source", res.Wall)
	}
	if readings != 2 {
		t.Errorf("stopwatch read the source %d times, want 2 (start, finish)", readings)
	}
	if got, want := res.OpsPerSec(), float64(res.Ops)/0.25; got != want {
		t.Errorf("OpsPerSec = %v, want %v under the pinned clock", got, want)
	}
}
