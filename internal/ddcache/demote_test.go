package ddcache

// Property tests for the write-behind demotion queue (demote.go): the
// dirtiness bound holds under arbitrary concurrent interleavings, a
// staled block can never be written back to the remote tier, accounting
// conserves across the tier ladder, and every tier's eviction runs under
// its own token. The concurrent test is part of the -race CI job.

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"doubledecker/internal/blockdev"
	"doubledecker/internal/cgroup"
	"doubledecker/internal/cleancache"
	"doubledecker/internal/store"
	"doubledecker/internal/store/remote"
)

func newThreeTierManager(memCap, ssdCap, remoteCap int64, dq DemotionConfig) *Manager {
	return NewManager(Config{
		Mode:            ModeDD,
		Mem:             store.NewMem(blockdev.NewRAM("ram"), memCap),
		SSD:             store.NewSSD(blockdev.NewSSD("ssd"), ssdCap),
		Remote:          remote.New(remote.Config{CapacityBytes: remoteCap}),
		Demotion:        dq,
		EvictBatchBytes: 64 << 10,
	})
}

// TestWriteBehindProperty hammers a tight three-tier manager from
// concurrent guests and checks the write-behind invariants: dirty bytes
// never exceed the configured bound at any interleaving (the queue's own
// high-water mark is the witness — it is recorded inside the admission
// critical section), and at quiesce the queue drains to empty with the
// conservation identity intact:
//
//	Enqueued == Drained + Cancelled + DroppedFull + DroppedError +
//	            DroppedBreaker + DirtyObjects
func TestWriteBehindProperty(t *testing.T) {
	const (
		vms      = 4
		opsPerVM = 4000
		maxDirty = int64(128 << 10)
	)
	m := newThreeTierManager(256<<10, 512<<10, 8<<20, DemotionConfig{
		MaxDirtyBytes: maxDirty,
		BatchBytes:    32 << 10,
	})
	pools := make([]cleancache.PoolID, vms)
	for v := 0; v < vms; v++ {
		vm := cleancache.VMID(v + 1)
		m.RegisterVM(vm, 100)
		pools[v], _ = m.CreatePool(0, vm, "wb", cgroup.HCacheSpec{Store: cgroup.StoreHybrid, Weight: 100})
	}

	// A sampler polls the live dirty-byte figure while workers churn; the
	// queue's high-water mark is checked after quiesce as well, so a
	// transient overshoot between samples cannot hide.
	stop := make(chan struct{})
	var samplerWg sync.WaitGroup
	samplerWg.Add(1)
	go func() {
		defer samplerWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if db := m.DemotionDirtyBytes(); db > maxDirty {
				t.Errorf("dirty bytes %d exceed bound %d", db, maxDirty)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for v := 0; v < vms; v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			vm := cleancache.VMID(v + 1)
			rng := rand.New(rand.NewSource(int64(v + 1)))
			now := time.Duration(0)
			for i := 0; i < opsPerVM; i++ {
				key := cleancache.Key{Pool: pools[v], Inode: uint64(1 + rng.Intn(4)), Block: rng.Int63n(512)}
				var lat time.Duration
				switch r := rng.Intn(100); {
				case r < 60:
					_, lat = m.Put(now, vm, key, 0)
				case r < 85:
					_, lat = m.Get(now, vm, key)
				case r < 95:
					lat = m.FlushPage(now, vm, key)
				default:
					lat = m.FlushInode(now, vm, key.Pool, key.Inode)
				}
				now += lat + time.Microsecond
			}
		}(v)
	}
	wg.Wait()
	close(stop)
	samplerWg.Wait()

	m.FlushDemotions(time.Hour)
	ds := m.DemotionStats()
	if ds.MaxDirtyBytes > maxDirty {
		t.Fatalf("dirty high-water %d exceeds bound %d", ds.MaxDirtyBytes, maxDirty)
	}
	if ds.DirtyBytes != 0 || ds.DirtyObjects != 0 {
		t.Fatalf("queue not empty after flush: %+v", ds)
	}
	if got := ds.Drained + ds.Cancelled + ds.DroppedFull + ds.DroppedError + ds.DroppedBreaker + ds.DirtyObjects; got != ds.Enqueued {
		t.Fatalf("conservation violated: enqueued %d, settled %d (%+v)", ds.Enqueued, got, ds)
	}
	if ds.Enqueued == 0 {
		t.Fatal("workload produced no demotions — capacities too generous to exercise the queue")
	}
}

// TestWriteBehindNoStaleServe: a block invalidated while its demotion is
// still queued must never be written back — after flushing every key and
// draining the queue, all three tiers must be empty and every get must
// miss. A resurrection would leave bytes on the remote store.
func TestWriteBehindNoStaleServe(t *testing.T) {
	const n = 512 // 2 MiB of puts through a 256 KiB SSD
	m := NewManager(Config{
		Mode:            ModeDD,
		SSD:             store.NewSSD(blockdev.NewSSD("ssd"), 256<<10),
		Remote:          remote.New(remote.Config{CapacityBytes: 16 << 20}),
		EvictBatchBytes: 64 << 10,
		// BatchBytes at the dirtiness ceiling: the put-path drain trigger
		// almost never fires, so entries are still queued when the flush
		// lands.
		Demotion: DemotionConfig{MaxDirtyBytes: 1 << 20, BatchBytes: 1 << 20},
	})
	vm := cleancache.VMID(1)
	m.RegisterVM(vm, 100)
	pool, _ := m.CreatePool(0, vm, "stale", cgroup.HCacheSpec{Store: cgroup.StoreSSD, Weight: 100})
	now := time.Duration(0)
	for b := int64(0); b < n; b++ {
		_, lat := m.Put(now, vm, cleancache.Key{Pool: pool, Inode: 1, Block: b}, 0)
		now += lat + time.Microsecond
	}
	if ds := m.DemotionStats(); ds.DirtyObjects == 0 {
		t.Fatalf("no demotions in flight before the flush: %+v", ds)
	}
	now += m.FlushInode(now, vm, pool, 1) // invalidate everything, queued entries included
	now += m.FlushDemotions(now)

	for _, st := range []cgroup.StoreType{cgroup.StoreSSD, cgroup.StoreRemote} {
		if used := m.StoreUsedBytes(st); used != 0 {
			t.Fatalf("store %v holds %d bytes after full invalidation — a staled block was written back", st, used)
		}
	}
	for b := int64(0); b < n; b++ {
		if ok, _ := m.Get(now, vm, cleancache.Key{Pool: pool, Inode: 1, Block: b}); ok {
			t.Fatalf("block %d served after invalidation", b)
		}
	}
	if ds := m.DemotionStats(); ds.Cancelled == 0 {
		t.Fatalf("flush cancelled nothing: %+v", ds)
	}
}

// TestWriteBehindConservation puts a stream of unique objects and checks
// byte conservation across the ladder at quiesce: every admitted put is
// either resident in some tier or was dropped by eviction — demotion
// moves bytes, it never loses or duplicates them.
func TestWriteBehindConservation(t *testing.T) {
	m := newThreeTierManager(128<<10, 256<<10, 1<<20, DemotionConfig{
		MaxDirtyBytes: 256 << 10,
		BatchBytes:    64 << 10,
	})
	vm := cleancache.VMID(1)
	m.RegisterVM(vm, 100)
	pool, _ := m.CreatePool(0, vm, "consv", cgroup.HCacheSpec{Store: cgroup.StoreHybrid, Weight: 100})
	now := time.Duration(0)
	var admitted int64
	for b := int64(0); b < 2048; b++ { // 8 MiB ≫ mem+SSD+remote
		ok, lat := m.Put(now, vm, cleancache.Key{Pool: pool, Inode: 1, Block: b}, 0)
		if ok {
			admitted++
		}
		now += lat + time.Microsecond
	}
	m.FlushDemotions(now)

	resident := m.StoreUsedBytes(cgroup.StoreMem) + m.StoreUsedBytes(cgroup.StoreSSD) + m.StoreUsedBytes(cgroup.StoreRemote)
	dropped := m.TotalEvictions() * ObjectSize
	if got, want := resident+dropped, admitted*ObjectSize; got != want {
		t.Fatalf("conservation violated: resident %d + dropped %d = %d, want %d admitted bytes (%+v)",
			resident, dropped, got, want, m.DemotionStats())
	}
	if ds := m.DemotionStats(); ds.DirtyBytes != 0 || ds.DirtyObjects != 0 {
		t.Fatalf("queue not empty at quiesce: %+v", ds)
	}
	if s := m.PoolStats(vm, pool); s.Demotions == 0 {
		t.Fatalf("no demotions counted: %+v", s)
	}
}

// TestEvictTokenPerTier is the regression test for the eviction-token
// generalization: the old evictMemMu/evictSSDMu pair silently gave any
// third store no token at all, so remote capacity enforcement would have
// run unserialized. Every concrete tier must own a distinct token; types
// that never enforce directly (hybrid, unknown) get none.
func TestEvictTokenPerTier(t *testing.T) {
	m := newThreeTierManager(1<<20, 1<<20, 1<<20, DemotionConfig{})
	tokens := map[*sync.Mutex]cgroup.StoreType{}
	for _, st := range []cgroup.StoreType{cgroup.StoreMem, cgroup.StoreSSD, cgroup.StoreRemote} {
		tok := m.evictToken(st)
		if tok == nil {
			t.Fatalf("tier %v has no eviction token", st)
		}
		if prev, dup := tokens[tok]; dup {
			t.Fatalf("tiers %v and %v share one eviction token", prev, st)
		}
		tokens[tok] = st
	}
	if tok := m.evictToken(cgroup.StoreHybrid); tok != nil {
		t.Fatal("hybrid resolves before eviction and must have no token")
	}
	if tok := m.evictToken(cgroup.StoreType(99)); tok != nil {
		t.Fatal("unknown store type must have no token")
	}

	// Behavioral half: a remote-only pool overfilling the remote tier must
	// evict (true drops) under its own token rather than growing unbounded.
	rm := NewManager(Config{
		Mode:            ModeDD,
		Remote:          remote.New(remote.Config{CapacityBytes: 64 << 10}),
		EvictBatchBytes: 16 << 10,
	})
	vm := cleancache.VMID(1)
	rm.RegisterVM(vm, 100)
	pool, _ := rm.CreatePool(0, vm, "r", cgroup.HCacheSpec{Store: cgroup.StoreRemote, Weight: 100})
	now := time.Duration(0)
	for b := int64(0); b < 64; b++ { // 256 KiB into a 64 KiB tier
		_, lat := rm.Put(now, vm, cleancache.Key{Pool: pool, Inode: 1, Block: b}, 0)
		now += lat + time.Microsecond
	}
	if used, cap := rm.StoreUsedBytes(cgroup.StoreRemote), int64(64<<10); used > cap {
		t.Fatalf("remote tier overshot: %d > %d", used, cap)
	}
	if rm.TotalEvictions() == 0 {
		t.Fatal("remote tier never evicted")
	}
}
