package ddcache

import (
	"time"

	"doubledecker/internal/cleancache"
)

// Dispatch implements cleancache.Backend: the single op-based entry
// point of the guest↔hypervisor boundary. It routes each Request to the
// corresponding manager operation; the typed methods (Get, Put,
// CreatePool, ...) remain available for direct in-process use.
//
// When Config.MaxInflightOps is set, the data-path ops (get, put,
// readahead) pass through hypervisor-wide admission control first: a
// submission arriving while the budget is exhausted is shed as an
// immediate miss (Ok=false / Count=0, zero latency — the guest falls
// back to disk) and counted on ShedOps. Control ops and flushes are
// always admitted; shedding an invalidation would break the cleancache
// contract.
func (m *Manager) Dispatch(now time.Duration, req cleancache.Request) cleancache.Response {
	resp := cleancache.Response{Op: req.Op}
	switch req.Op {
	case cleancache.OpGet, cleancache.OpPut, cleancache.OpReadAhead:
		if max := m.cfg.MaxInflightOps; max > 0 {
			if m.inflightOps.Add(1) > max {
				m.inflightOps.Add(-1)
				m.shedOps.Add(1)
				return resp // Ok=false, Count=0: an immediate miss
			}
			defer m.inflightOps.Add(-1)
		}
	default: // ddlint:nonexhaustive — control ops and flushes bypass admission
	}
	switch req.Op {
	case cleancache.OpGet:
		resp.Ok, resp.Latency = m.Get(now, req.VM, req.Key)
	case cleancache.OpPut:
		resp.Ok, resp.Latency = m.Put(now, req.VM, req.Key, req.Content)
	case cleancache.OpFlushPage:
		resp.Latency = m.FlushPage(now, req.VM, req.Key)
	case cleancache.OpFlushInode:
		resp.Latency = m.FlushInode(now, req.VM, req.Key.Pool, req.Key.Inode)
	case cleancache.OpCreateCgroup:
		resp.Pool, resp.Latency = m.CreatePool(now, req.VM, req.Name, req.Spec)
		resp.Ok = resp.Pool != 0
	case cleancache.OpDestroyCgroup:
		resp.Latency = m.DestroyPool(now, req.VM, req.Key.Pool)
	case cleancache.OpSetCgWeight:
		resp.Latency = m.SetSpec(now, req.VM, req.Key.Pool, req.Spec)
	case cleancache.OpMigrateObject:
		resp.Latency = m.MigrateInode(now, req.VM, req.Key.Pool, req.To, req.Key.Inode)
	case cleancache.OpGetStats:
		resp.Ok = true
		resp.Stats = m.PoolStats(req.VM, req.Key.Pool)
	case cleancache.OpReadAhead:
		resp.Count, resp.Latency = m.ReadAhead(now, req.VM, req.Key, req.Count)
		resp.Ok = resp.Count > 0
	}
	return resp
}
