package ddcache_test

// Read-path differential test: concurrent per-VM guests drive the
// sharded manager through full batched hypercall transports — async
// tagged gets, sequential readahead into the staging buffer, zero-copy
// bulk responses — on a read-heavy (≈85% get) workload. Each VM's
// transport dispatches into a recording tee, and the backend-observed
// logs are then replayed through the sequential oracle as one
// interleaving: every verdict (get hit/miss, readahead extraction count)
// must reproduce, and the final cache states must agree exactly.
//
// The workload commutes across VMs (own pools, partitioned content,
// ample capacity), so the round-robin merge is a valid witness: a
// verdict the oracle cannot reproduce means the concurrent read path
// matches NO sequential interleaving — an out-of-order completion that
// broke per-pool FIFO, a staged block served after invalidation, a
// readahead double-extracting with a tagged get.

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"doubledecker/internal/blockdev"
	"doubledecker/internal/cgroup"
	"doubledecker/internal/cleancache"
	"doubledecker/internal/ddcache"
	"doubledecker/internal/ddcache/oracle"
	"doubledecker/internal/hypercall"
	"doubledecker/internal/store"
)

// teeBackend records every op the transport actually dispatches — the
// backend-observed stream, which excludes gets served from the staging
// buffer. Appends happen under the owning transport's lock, one tee per
// VM, so no extra synchronization is needed.
type teeBackend struct {
	inner cleancache.Backend
	log   []recordedReadPathOp
}

type recordedReadPathOp struct {
	req   cleancache.Request
	ok    bool
	count int64
}

func (b *teeBackend) Dispatch(now time.Duration, req cleancache.Request) cleancache.Response {
	resp := b.inner.Dispatch(now, req)
	b.log = append(b.log, recordedReadPathOp{req: req, ok: resp.Ok, count: resp.Count})
	return resp
}

func TestDifferentialReadPathLinearizable(t *testing.T) {
	const (
		vms      = 4
		files    = 4
		blocks   = int64(16)
		rounds   = 6
		memCap   = int64(64 << 20) // ample: no eviction, every put lands
		raWindow = 8
	)
	mgr := ddcache.NewManager(ddcache.Config{
		Mode:      ddcache.ModeDD,
		Mem:       store.NewMem(blockdev.NewRAM("m.ram"), memCap),
		Inclusive: true, // streaming reads re-read files: keep objects on get
	})
	oMem := store.NewMem(blockdev.NewRAM("o.ram"), memCap)
	orc := oracle.New(oracle.Config{Mode: oracle.ModeDD, Mem: oMem, Inclusive: true})

	// Sequential setup on both: identical pool ids, one pool per VM.
	pools := make([]cleancache.PoolID, vms)
	for v := 0; v < vms; v++ {
		vm := cleancache.VMID(v + 1)
		mgr.RegisterVM(vm, 100)
		orc.RegisterVM(vm, 100)
		req := cleancache.Request{Op: cleancache.OpCreateCgroup, VM: vm, Name: "rp", Spec: cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100}}
		rm := mgr.Dispatch(0, req)
		ro := orc.Dispatch(0, req)
		if rm.Pool != ro.Pool || rm.Pool == 0 {
			t.Fatalf("setup: pool ids diverged (%d vs %d)", rm.Pool, ro.Pool)
		}
		pools[v] = rm.Pool
	}

	// Concurrent phase: one goroutine per VM, each with its own async
	// transport over a recording tee. Odd VMs run zero-copy to cover both
	// bulk-response modes in the same race window.
	tees := make([]*teeBackend, vms)
	trs := make([]*hypercall.Transport, vms)
	for v := 0; v < vms; v++ {
		tees[v] = &teeBackend{inner: mgr}
		trs[v] = hypercall.NewTransport(tees[v], hypercall.Options{
			AsyncGets: true,
			ZeroCopy:  v%2 == 1,
		})
	}
	var wg sync.WaitGroup
	for v := 0; v < vms; v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			vm := cleancache.VMID(v + 1)
			pool := pools[v]
			tr := trs[v]
			rng := rand.New(rand.NewSource(int64(7000 + v)))
			now := time.Duration(0)
			bump := func(d time.Duration) { now += d }
			put := func(inode uint64, block int64) {
				bump(tr.Submit(now, cleancache.Request{
					Op: cleancache.OpPut, VM: vm,
					Key:     cleancache.Key{Pool: pool, Inode: inode, Block: block},
					Content: uint64(v+1)<<32 | uint64(1+rng.Intn(8)),
				}).Latency)
			}
			// Populate every file once.
			for f := uint64(1); f <= files; f++ {
				for b := int64(0); b < blocks; b++ {
					put(f, b)
				}
			}
			bump(tr.Flush(now))
			// Streaming read rounds: per file, a readahead (as the guest
			// front issues once a run is detected) followed by pipelined
			// async gets over the whole file, sprinkled with invalidations
			// so readahead extraction counts and staged hits vary.
			for r := 0; r < rounds; r++ {
				for f := uint64(1); f <= files; f++ {
					bump(tr.Submit(now, cleancache.Request{
						Op: cleancache.OpReadAhead, VM: vm,
						Key:   cleancache.Key{Pool: pool, Inode: f, Block: 0},
						Count: raWindow,
					}).Latency)
					var pending []*hypercall.PendingGet
					for b := int64(0); b < blocks; b++ {
						pg, lat := tr.SubmitAsync(now, cleancache.Request{
							Op: cleancache.OpGet, VM: vm,
							Key: cleancache.Key{Pool: pool, Inode: f, Block: b},
						})
						bump(lat)
						pending = append(pending, pg)
						if len(pending) == 4 {
							bump(tr.Flush(now))
							for _, p := range pending {
								bump(tr.Await(now, p).Latency)
							}
							pending = pending[:0]
						}
					}
					bump(tr.Flush(now))
					for _, p := range pending {
						bump(tr.Await(now, p).Latency)
					}
					// ~2 maintenance ops per 16 gets keeps the mix ≥85% reads.
					switch rng.Intn(8) {
					case 0:
						bump(tr.Submit(now, cleancache.Request{
							Op: cleancache.OpFlushPage, VM: vm,
							Key: cleancache.Key{Pool: pool, Inode: f, Block: rng.Int63n(blocks)},
						}).Latency)
					case 1:
						put(f, rng.Int63n(blocks))
					case 2:
						bump(tr.Submit(now, cleancache.Request{
							Op: cleancache.OpFlushInode, VM: vm,
							Key: cleancache.Key{Pool: pool, Inode: f},
						}).Latency)
						for b := int64(0); b < blocks; b++ {
							put(f, b) // re-populate so the stream stays warm
						}
					}
				}
				bump(tr.Flush(now))
			}
			bump(tr.Flush(now))
		}(v)
	}
	wg.Wait()

	// The overlapped machinery must actually have been exercised.
	var agg hypercall.TransportStats
	for _, tr := range trs {
		s := tr.Stats()
		agg.AsyncGets += s.AsyncGets
		agg.StagedHits += s.StagedHits
		agg.PagesMapped += s.PagesMapped
		agg.Pending += s.Pending
	}
	if agg.AsyncGets == 0 || agg.StagedHits == 0 || agg.PagesMapped == 0 {
		t.Fatalf("read path not exercised: %+v", agg)
	}
	if agg.Pending != 0 {
		t.Fatalf("%d ops still buffered after final flush", agg.Pending)
	}

	// Replay the round-robin merge of the backend-observed logs through
	// the sequential oracle: every verdict must reproduce.
	for i := 0; ; i++ {
		exhausted := true
		for v := 0; v < vms; v++ {
			if i >= len(tees[v].log) {
				continue
			}
			exhausted = false
			rec := tees[v].log[i]
			resp := orc.Dispatch(0, rec.req)
			switch rec.req.Op {
			case cleancache.OpGet, cleancache.OpPut, cleancache.OpReadAhead:
				if resp.Ok != rec.ok || resp.Count != rec.count {
					t.Fatalf("replay vm %d op %d (%v %+v): concurrent run said ok=%v count=%d, oracle says ok=%v count=%d",
						v+1, i, rec.req.Op, rec.req.Key, rec.ok, rec.count, resp.Ok, resp.Count)
				}
			}
		}
		if exhausted {
			break
		}
	}

	// Final states must agree exactly.
	for v := 0; v < vms; v++ {
		if got, want := mgr.PoolStats(0, pools[v]), orc.PoolStats(0, pools[v]); got != want {
			t.Fatalf("pool %d final stats:\n  manager %+v\n  oracle  %+v", pools[v], got, want)
		}
		if got, want := mgr.PoolTotalBytes(pools[v]), orc.PoolTotalBytes(pools[v]); got != want {
			t.Fatalf("pool %d final bytes: manager %d, oracle %d", pools[v], got, want)
		}
	}
	if got, want := mgr.StoreUsedBytes(cgroup.StoreMem), oMem.UsedBytes(); got != want {
		t.Fatalf("final store usage: manager %d, oracle %d", got, want)
	}
}
