// Package ddcache implements the paper's primary contribution: the
// DoubleDecker hypervisor cache store. It ties together the indexing
// module (package index), the policy module (package policy) and the
// storage module (package store) behind the cleancache.Backend interface,
// and supports:
//
//   - two-level differentiated partitioning: per-VM weights set by the
//     host administrator, per-container <T, W> tuples set from inside each
//     VM;
//   - memory and SSD cache stores, plus the hybrid (mem with SSD spill)
//     configuration option the paper describes, plus an optional third
//     tier: a modeled remote object store (see internal/store/remote)
//     that cold objects demote into through an asynchronous write-behind
//     queue (see demote.go) — mem evicts to SSD, SSD evicts to remote,
//     remote evictions are true drops;
//   - resource-conservative eviction: objects are evicted only when a
//     store reaches capacity, using the paper's Algorithm 1 victim
//     selection (VM level first, then container level) in 2 MiB batches;
//   - dynamic reconfiguration of weights, store types and capacities;
//   - the nesting-agnostic Global baseline (tmem-like): pools are still
//     tracked per container (so experiments can observe occupancy, as the
//     paper does), but eviction follows strict cross-pool FIFO order and
//     ignores weights — no container fairness. This is the paper's
//     comparison point in the motivation and evaluation sections.
//
// # Concurrency model
//
// A Manager is safe for use by any number of goroutines — the intended
// deployment is one or more goroutines per guest VM all sharing one
// manager, exactly as concurrent guests share the hypervisor cache.
//
// The design splits configuration state from data state so that the
// common path (Get/Put/Flush) never takes a store-wide lock:
//
//   - Configuration state — registered VMs, weights, pool specs and the
//     two-level entitlements derived from them — is published as an
//     immutable epoch snapshot (see epoch.go) swapped through an atomic
//     pointer. Data-path operations load the current epoch with one
//     atomic read; configuration operations build a successor epoch
//     under Manager.configMu and publish it atomically.
//   - Object state — each pool's index structure — is striped per VM:
//     poolState.idx and poolState.dead are guarded by the owning VM's
//     vmState.mu, so guests operating on different VMs never contend.
//   - The cross-VM content-reference table used by deduplication is an
//     N-way sharded hash table (see dedup.go): contentKey hashes select
//     a shard mutex, replacing the old manager-global dedupMu.
//   - Capacity enforcement batches under a per-store eviction token
//     (Manager.evictTokens, one slot per tier), so at most one evictor
//     per store runs Algorithm 1 at a time while readers and same-store
//     putters keep flowing.
//
// The lock hierarchy, from outermost to innermost:
//
//  1. Manager.configMu — serializes configuration/structural operations
//     (VM registration, pool create/destroy, weight/spec/capacity
//     changes). Never taken by data-path operations.
//  2. Eviction tokens (Manager.evictTokens, one per tier) — one evictor
//     per store. Taken with configMu held (capacity shrink) or with no
//     lock held (Put slow path, demotion drain).
//  3. vmState.mu — one VM's pool indexes and liveness flags. Cross-VM
//     migration acquires two VM locks in VM-id order; every other
//     operation holds at most one.
//  4. Leaf locks: dedup shard mutexes, the breakers' internal locks, the
//     demotion queue's ring mutex.
//
// The order is machine-checked: ddlint's lockorder analyzer verifies
// every acquisition (including through callees) against the chains
// below, with all eviction tokens folded onto one level under the
// Manager.evictToken alias.
//
// ddlint:lock-order Manager.configMu < Manager.evictToken < vmState.mu < dedupShard.mu
// ddlint:lock-order Manager.configMu < Manager.evictToken < vmState.mu < breaker.mu
// ddlint:lock-order Manager.configMu < Manager.evictToken < vmState.mu < demoteQueue.mu
//
// A goroutine may hold an epoch that a concurrent configuration change
// has already superseded. That is safe by construction: epochs are
// immutable, byte accounting lives in index.Accounting atomics shared by
// all epochs, and destroyed pools are tombstoned via poolState.dead
// (checked under the VM lock) before they leave the epoch, so a stale
// reference can never resurrect a drained pool.
//
// Capacity checks on the Put fast path remain check-then-act: concurrent
// putters may transiently overshoot a full store by up to one object each
// before the next put takes the slow path and evicts under the store's
// eviction token. The index (package index) and storage (package store)
// modules document their own sides of this contract: index relies on the
// VM locks above, store and blockdev are self-locking.
package ddcache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"doubledecker/internal/cgroup"
	"doubledecker/internal/cleancache"
	"doubledecker/internal/index"
	"doubledecker/internal/metrics"
	"doubledecker/internal/policy"
	"doubledecker/internal/store"
)

// ObjectSize is the size of every cached object: one guest page.
const ObjectSize = 4096

// Mode selects container awareness.
type Mode int

// Modes of operation.
const (
	// ModeDD is full DoubleDecker: per-container pools and two-level
	// weighted partitioning.
	ModeDD Mode = iota + 1
	// ModeGlobal is the nesting-agnostic baseline: every container of a
	// VM shares one pool, evicted FIFO with no container fairness.
	ModeGlobal
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeDD:
		return "doubledecker"
	case ModeGlobal:
		return "global"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config parameterizes a Manager.
type Config struct {
	Mode Mode
	// Mem and SSD are the cache stores; either may be nil to disable
	// that backend.
	Mem store.Backend
	SSD store.Backend
	// Remote is the third-tier object-store backend (typically
	// store/remote); nil disables the tier. With a remote backend in
	// ModeDD, evictions demote down the tier ladder through the
	// write-behind queue instead of dropping (see demote.go).
	Remote store.Backend
	// Demotion tunes the write-behind demotion queue; the zero value
	// selects the defaults documented on DemotionConfig. Only meaningful
	// with a Remote backend in ModeDD.
	Demotion DemotionConfig
	// EvictBatchBytes is the eviction granularity; the paper uses 2 MiB.
	EvictBatchBytes int64
	// OpOverhead is the manager-internal CPU cost per operation.
	OpOverhead time.Duration
	// VictimSelector allows the ablation benchmarks to swap out the
	// Algorithm 1 variant; nil selects the paper's algorithm.
	VictimSelector func(ents []policy.Entity, evictionSize int64) int
	// Dedup enables content deduplication within each store: objects
	// with the same content identity share one physical copy (the
	// extension the paper names in its related-work discussion).
	Dedup bool
	// DedupShards is the stripe width of the sharded content-reference
	// table; 0 selects DefaultDedupShards.
	DedupShards int
	// Inclusive disables the exclusive-caching protocol: gets leave the
	// object in the cache, so guest page cache and hypervisor cache hold
	// duplicate copies — the wasteful design the paper's §2 argues
	// against. For the ablation benchmark only.
	Inclusive bool
	// Metrics receives the SSD circuit breaker's trip/probe/restore
	// events, the epoch.*/shard.* gauges, and the breaker state gauge;
	// nil disables recording.
	Metrics *metrics.Registry
	// Breaker tunes the SSD circuit breaker; the zero value selects the
	// defaults documented on BreakerConfig. The breaker exists whenever
	// an SSD store is configured.
	Breaker BreakerConfig
	// RemoteBreaker tunes the remote tier's circuit breaker, which
	// exists whenever a Remote backend is configured: while open, remote
	// placements fall back to SSD-or-miss, remote-resident gets miss
	// without invalidating, and queued demotions are dropped.
	RemoteBreaker BreakerConfig
	// MaxInflightOps is the hypervisor-wide admission budget: the number
	// of data-path operations (gets, puts, readahead) allowed through
	// Dispatch concurrently across every VM. Submissions over the budget
	// are shed as immediate misses — counted on ShedOps, never errors —
	// so a flood from one guest degrades to disk reads instead of
	// queueing behind the cache. Control ops and flushes are always
	// admitted: a shed flush would break the cleancache invalidation
	// contract. Zero disables admission control.
	MaxInflightOps int64
}

// DefaultEvictBatch is the paper's 2 MiB eviction batch.
const DefaultEvictBatch = 2 << 20

// vmState is the mutable per-VM state record. It is shared by every
// epoch that includes the VM; the frozen attributes (weight, pool list)
// live on the epoch instead.
type vmState struct {
	id cleancache.VMID
	// mu is the per-VM data lock (level 3 of the hierarchy); it guards
	// the VM's pool index structures and liveness flags.
	mu sync.Mutex
}

// poolCounters are the per-pool statistics, atomic so GET_STATS snapshots
// never block the data path.
type poolCounters struct {
	gets          atomic.Int64
	getHits       atomic.Int64
	puts          atomic.Int64
	putRejects    atomic.Int64
	evictions     atomic.Int64
	demotions     atomic.Int64
	readaheadGets atomic.Int64
	readaheadHits atomic.Int64
}

func (c *poolCounters) snapshot() cleancache.PoolStats {
	return cleancache.PoolStats{
		Gets:          c.gets.Load(),
		GetHits:       c.getHits.Load(),
		Puts:          c.puts.Load(),
		PutRejects:    c.putRejects.Load(),
		Evictions:     c.evictions.Load(),
		Demotions:     c.demotions.Load(),
		ReadAheadGets: c.readaheadGets.Load(),
		ReadAheadHits: c.readaheadHits.Load(),
	}
}

// poolState is the mutable per-pool state record, shared by every epoch
// that includes the pool. The pool's spec and entitlements are frozen on
// the epoch (epochPool); only the index structure, the liveness flag and
// the statistics live here.
type poolState struct {
	id cleancache.PoolID
	// ddlint:guarded-by mu
	idx *index.Pool
	// acct is the pool's lock-free accounting view (atomic reads of
	// occupancy), shared with every epoch referencing this pool.
	acct *index.Accounting
	vm   *vmState
	// dead tombstones a destroyed pool: set under the VM lock before the
	// pool leaves the epoch, so goroutines holding a stale epoch reject
	// the pool instead of resurrecting drained state.
	// ddlint:guarded-by mu
	dead     bool
	counters poolCounters
}

// Manager is the DoubleDecker hypervisor cache manager. See the package
// documentation for the concurrency model.
type Manager struct {
	cfg Config

	// configMu (level 1 of the hierarchy) serializes configuration and
	// structural operations; the data path never takes it.
	configMu sync.Mutex
	// nextPool allocates pool ids.
	// ddlint:guarded-by configMu
	nextPool cleancache.PoolID

	// epoch is the current immutable configuration snapshot, read
	// lock-free by the data path and swapped by configuration ops.
	epoch atomic.Pointer[epoch]

	// dedup is the sharded cross-VM content-reference table (leaf locks).
	dedup *dedupTable

	// evictTokens are the per-store eviction tokens (level 2), indexed
	// by entSlot: capacity enforcement for a store batches under its
	// token instead of blocking readers store-wide. Generalized from the
	// old evictMemMu/evictSSDMu pair so every tier — including remote —
	// gets its own token.
	evictTokens [entSlots]sync.Mutex

	// ssdBreaker guards the SSD store against a failing device: after
	// Config.Breaker.Threshold errors in the sliding window, SSD traffic
	// is shed (puts degrade to memory or are rejected, SSD-resident gets
	// miss) until half-open probes re-admit the device. The breaker is
	// self-locking (its mutex is a leaf below the VM locks) and nil only
	// when no SSD store is configured.
	ssdBreaker *breaker
	// remoteBreaker plays the same role for the remote tier (nil when no
	// remote backend is configured); see Config.RemoteBreaker.
	remoteBreaker *breaker

	// demote is the write-behind demotion queue (see demote.go); nil
	// unless a remote backend is configured in ModeDD.
	demote *demoteQueue

	// run-wide counters
	nextSeq        atomic.Uint64
	totalEvictions atomic.Int64

	// admission control: inflightOps tracks data-path ops currently
	// inside Dispatch, shedOps counts the ones rejected over
	// Config.MaxInflightOps.
	inflightOps atomic.Int64
	shedOps     atomic.Int64
}

// contentKey identifies one deduplicated physical copy.
type contentKey struct {
	store   cgroup.StoreType
	content uint64
}

var _ cleancache.Backend = (*Manager)(nil)

// NewManager returns a manager over the configured stores.
//
// Deprecated: use New with functional options (WithMode, WithMemCapacity,
// WithSSDBackend, ...). NewManager is kept as a shim for one release.
func NewManager(cfg Config) *Manager {
	if cfg.EvictBatchBytes <= 0 {
		cfg.EvictBatchBytes = DefaultEvictBatch
	}
	if cfg.Mode == 0 {
		cfg.Mode = ModeDD
	}
	if cfg.OpOverhead == 0 {
		cfg.OpOverhead = 300 * time.Nanosecond
	}
	if cfg.VictimSelector == nil {
		cfg.VictimSelector = policy.SelectVictim
	}
	m := &Manager{
		cfg:      cfg,
		nextPool: 1,
		dedup:    newDedupTable(cfg.DedupShards),
	}
	m.epoch.Store(emptyEpoch())
	if cfg.SSD != nil {
		m.ssdBreaker = newBreaker(cfg.Breaker, cfg.Metrics, "breaker.ssd")
	}
	if cfg.Remote != nil {
		m.remoteBreaker = newBreaker(cfg.RemoteBreaker, cfg.Metrics, "breaker.remote")
		if m.cfg.Mode == ModeDD {
			m.demote = newDemoteQueue(m.cfg.Demotion)
		}
	}
	return m
}

// Mode reports the configured container-awareness mode.
func (m *Manager) Mode() Mode { return m.cfg.Mode }

// backend returns the store for st (hybrid resolves elsewhere).
func (m *Manager) backend(st cgroup.StoreType) store.Backend {
	switch st {
	case cgroup.StoreMem:
		return m.cfg.Mem
	case cgroup.StoreSSD:
		return m.cfg.SSD
	case cgroup.StoreRemote:
		return m.cfg.Remote
	default:
		return nil
	}
}

// tierBreaker returns the circuit breaker guarding st, or nil for tiers
// without one (nil breakers allow all traffic).
func (m *Manager) tierBreaker(st cgroup.StoreType) *breaker {
	switch st {
	case cgroup.StoreSSD:
		return m.ssdBreaker
	case cgroup.StoreRemote:
		return m.remoteBreaker
	default:
		return nil
	}
}

// --- host administrator interface -----------------------------------------

// RegisterVM announces a VM with its cache-distribution weight.
func (m *Manager) RegisterVM(id cleancache.VMID, weight int64) {
	m.configMu.Lock()
	defer m.configMu.Unlock()
	m.mutateEpoch(func(b *epochBuilder) {
		bv := b.ensureVM(id, weight)
		bv.weight = weight
	})
}

// UnregisterVM drops a VM and all its pools.
func (m *Manager) UnregisterVM(id cleancache.VMID) {
	m.configMu.Lock()
	defer m.configMu.Unlock()
	ev, ok := m.epoch.Load().vmByID[id]
	if !ok {
		return
	}
	for _, pe := range ev.pools {
		m.killPool(pe.state)
	}
	m.mutateEpoch(func(b *epochBuilder) { b.removeVM(id) })
}

// SetVMWeight updates a VM's weight (dynamic re-provisioning, Figure 14).
func (m *Manager) SetVMWeight(id cleancache.VMID, weight int64) {
	m.configMu.Lock()
	defer m.configMu.Unlock()
	if _, ok := m.epoch.Load().vmByID[id]; !ok {
		return
	}
	m.mutateEpoch(func(b *epochBuilder) {
		if bv := b.findVM(id); bv != nil {
			bv.weight = weight
		}
	})
}

// SetMemCapacity resizes the memory store at runtime, evicts down to the
// new capacity if needed, and returns the latency the resize incurred —
// the eviction cost is charged to the configuration op, not smeared over
// unrelated data ops.
func (m *Manager) SetMemCapacity(now time.Duration, n int64) time.Duration {
	return m.setCapacity(now, cgroup.StoreMem, n)
}

// SetSSDCapacity resizes the SSD store at runtime; see SetMemCapacity
// for the latency contract.
func (m *Manager) SetSSDCapacity(now time.Duration, n int64) time.Duration {
	return m.setCapacity(now, cgroup.StoreSSD, n)
}

// SetRemoteCapacity resizes the remote tier at runtime; see
// SetMemCapacity for the latency contract.
func (m *Manager) SetRemoteCapacity(now time.Duration, n int64) time.Duration {
	return m.setCapacity(now, cgroup.StoreRemote, n)
}

func (m *Manager) setCapacity(now time.Duration, st cgroup.StoreType, n int64) time.Duration {
	be := m.backend(st)
	if be == nil {
		return 0
	}
	m.configMu.Lock()
	defer m.configMu.Unlock()
	be.SetCapacityBytes(n)
	// Entitlements are capacity-derived: publish a recomputed epoch.
	m.mutateEpoch(nil)
	lat := m.cfg.OpOverhead
	lat += m.enforceCapacity(now+lat, st, 0)
	// A shrink may have demoted objects down the tier ladder; settle the
	// queue before returning so the resize's cost is charged here.
	lat += m.drainDemotions(now + lat)
	return lat
}

// --- op handlers (routed through Dispatch, see dispatch.go) ----------------

// CreatePool handles the CREATE_CGROUP op.
func (m *Manager) CreatePool(_ time.Duration, vm cleancache.VMID, name string, spec cgroup.HCacheSpec) (cleancache.PoolID, time.Duration) {
	m.configMu.Lock()
	defer m.configMu.Unlock()
	if spec.Store == 0 {
		spec.Store = cgroup.StoreMem
		if spec.Weight <= 0 {
			spec.Weight = 100
		}
	}
	if spec.Weight < 0 {
		spec.Weight = 0
	}
	id := m.nextPool
	m.nextPool++
	m.mutateEpoch(func(b *epochBuilder) {
		// Auto-register unknown VMs with a default weight, mirroring a
		// hypervisor admitting an unconfigured guest.
		bv := b.ensureVM(vm, 100)
		idx := index.NewPool(id, bv.state.id, name)
		p := &poolState{id: id, idx: idx, acct: idx.Acct(), vm: bv.state}
		bv.pools = append(bv.pools, &builderPool{id: id, state: p, spec: spec})
	})
	return id, m.cfg.OpOverhead
}

// DestroyPool handles the DESTROY_CGROUP op.
func (m *Manager) DestroyPool(_ time.Duration, _ cleancache.VMID, pool cleancache.PoolID) time.Duration {
	m.configMu.Lock()
	defer m.configMu.Unlock()
	pe, ok := m.epoch.Load().pools[pool]
	if !ok {
		return 0
	}
	m.killPool(pe.state)
	m.mutateEpoch(func(b *epochBuilder) { b.removePool(pool) })
	return m.cfg.OpOverhead
}

// killPool tombstones and drains one pool under its VM lock. Goroutines
// holding a stale epoch observe dead and treat the pool as gone.
//
// ddlint:requires-lock configMu
func (m *Manager) killPool(p *poolState) {
	v := p.vm
	v.mu.Lock()
	defer v.mu.Unlock()
	p.dead = true
	for _, obj := range p.idx.DrainAll() {
		m.releaseObject(obj)
	}
}

// SetSpec handles the SET_CG_WEIGHT op. Changing the store type flushes
// objects from stores the pool no longer uses; the freed share is
// redistributed implicitly by the entitlement math of the new epoch.
func (m *Manager) SetSpec(_ time.Duration, _ cleancache.VMID, pool cleancache.PoolID, spec cgroup.HCacheSpec) time.Duration {
	m.configMu.Lock()
	defer m.configMu.Unlock()
	pe, ok := m.epoch.Load().pools[pool]
	if !ok {
		return 0
	}
	if m.cfg.Mode == ModeGlobal {
		return m.cfg.OpOverhead // baseline ignores container policy
	}
	old := pe.spec
	if spec.Weight <= 0 {
		spec.Weight = old.Weight
	}
	if spec.Store == 0 {
		spec.Store = old.Store
	}
	next := m.mutateEpoch(func(b *epochBuilder) { b.setSpec(pool, spec) })
	npe := next.pools[pool]
	p := pe.state
	v := p.vm
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, st := range tierOrder {
		if npe.usesStore(st) || p.acct.UsedBytes(st) == 0 {
			continue
		}
		// Drop objects stranded in a de-configured store.
		for {
			obj := p.idx.Oldest(st)
			if obj == nil {
				break
			}
			p.idx.Remove(obj)
			m.releaseObject(obj)
			p.counters.evictions.Add(1)
			m.totalEvictions.Add(1)
		}
	}
	return m.cfg.OpOverhead
}

// Get handles the GET op: exclusive lookup — a hit removes the
// object and pays the store's fetch latency.
//
// Failure handling follows the cleancache contract: a fetch error
// invalidates the entry and reports a miss — the guest re-reads the page
// from its virtual disk, so dropping is always safe. While a tier's
// breaker is open, gets of objects resident there miss without
// invalidating (the stored bytes are intact; only the device is being
// avoided). A get that misses SSD but hits the remote tier is a slow
// hit: the modeled round trip is charged in full. An object whose
// demotion is still queued (Pending) hits at metadata cost — its bytes
// sit in the write-behind buffer, no device is touched — and the hit
// cancels the queued demotion.
func (m *Manager) Get(now time.Duration, _ cleancache.VMID, key cleancache.Key) (bool, time.Duration) {
	pe, ok := m.epoch.Load().pools[key.Pool]
	if !ok {
		return false, 0
	}
	p := pe.state
	v := p.vm
	v.mu.Lock()
	defer v.mu.Unlock()
	if p.dead {
		return false, 0
	}
	p.counters.gets.Add(1)
	lat := m.cfg.OpOverhead
	obj := p.idx.Lookup(key.Inode, key.Block)
	if obj == nil {
		return false, lat
	}
	if !obj.Pending {
		if !m.tierBreaker(obj.Store).allow(now + lat) {
			return false, lat
		}
		if be := m.backend(obj.Store); be != nil {
			flat, err := be.Fetch(now+lat, obj.Size)
			lat += flat
			m.feedBreaker(now+lat, obj.Store, err)
			if err != nil {
				p.idx.Remove(obj)
				m.releaseObject(obj)
				return false, lat
			}
		}
	}
	p.counters.getHits.Add(1)
	if !m.cfg.Inclusive {
		m.releaseObject(obj)
		p.idx.Remove(obj)
	}
	return true, lat
}

// ReadAhead handles the READ_AHEAD op: a bulk get of up to count
// contiguous blocks starting at key.Block, stopping at the first block
// the pool does not hold. Each extracted block follows the GET data
// semantics — fetched from its store, removed under the exclusive
// protocol — but is accounted under the separate readahead counters
// (every probe, including the terminating miss, counts a ReadAheadGet;
// every extraction a ReadAheadHit): a staged block may never reach the
// guest, so folding extractions into Gets/GetHits would skew the pool
// hit-rate metrics. Returns the number of blocks extracted and the
// accumulated latency.
func (m *Manager) ReadAhead(now time.Duration, _ cleancache.VMID, key cleancache.Key, count int64) (int64, time.Duration) {
	pe, ok := m.epoch.Load().pools[key.Pool]
	if !ok {
		return 0, 0
	}
	p := pe.state
	v := p.vm
	v.mu.Lock()
	defer v.mu.Unlock()
	if p.dead {
		return 0, 0
	}
	lat := m.cfg.OpOverhead
	var n int64
	for i := int64(0); i < count; i++ {
		obj := p.idx.Lookup(key.Inode, key.Block+i)
		p.counters.readaheadGets.Add(1)
		if obj == nil {
			break
		}
		if !obj.Pending {
			if !m.tierBreaker(obj.Store).allow(now + lat) {
				break
			}
			if be := m.backend(obj.Store); be != nil {
				flat, err := be.Fetch(now+lat, obj.Size)
				lat += flat
				m.feedBreaker(now+lat, obj.Store, err)
				if err != nil {
					p.idx.Remove(obj)
					m.releaseObject(obj)
					break
				}
			}
		}
		p.counters.readaheadHits.Add(1)
		if !m.cfg.Inclusive {
			m.releaseObject(obj)
			p.idx.Remove(obj)
		}
		n++
	}
	return n, lat
}

// feedBreaker reports a store operation's outcome to the tier's circuit
// breaker; operations on tiers without a breaker are ignored.
func (m *Manager) feedBreaker(now time.Duration, st cgroup.StoreType, err error) {
	br := m.tierBreaker(st)
	if br == nil {
		return
	}
	if err != nil {
		br.onFailure(now)
	} else {
		br.onSuccess()
	}
}

// SSDBreakerStats snapshots the SSD circuit breaker's state and event
// counters (zero-valued, state "closed", when no SSD store is configured).
func (m *Manager) SSDBreakerStats() BreakerStats { return m.ssdBreaker.snapshot() }

// RemoteBreakerStats snapshots the remote tier's circuit breaker
// (zero-valued, state "closed", when no remote backend is configured).
func (m *Manager) RemoteBreakerStats() BreakerStats { return m.remoteBreaker.snapshot() }

// Put handles the PUT op: stores a clean page evicted by the
// guest, evicting per Algorithm 1 when the target store is full. With
// deduplication enabled, an object whose content is already stored shares
// the existing physical copy.
//
// The fast path runs entirely under the VM lock (epoch state is read
// lock-free); only when the target store is full does Put drop to the
// slow path, which evicts under the store's eviction token and then
// re-validates everything. Once the write-behind queue's dirty bytes
// reach the demotion batch threshold, the put drains the queue after
// releasing its locks — demotion I/O is batched onto put boundaries,
// never charged to gets.
func (m *Manager) Put(now time.Duration, vm cleancache.VMID, key cleancache.Key, content uint64) (bool, time.Duration) {
	ok, lat := m.putInner(now, vm, key, content)
	if m.demote.ready() {
		lat += m.drainDemotions(now + lat)
	}
	return ok, lat
}

// putInner is Put minus the demotion-drain trigger; it returns with no
// locks held.
func (m *Manager) putInner(now time.Duration, _ cleancache.VMID, key cleancache.Key, content uint64) (bool, time.Duration) {
	pe, ok := m.epoch.Load().pools[key.Pool]
	if !ok {
		return false, 0
	}
	p := pe.state
	v := p.vm
	v.mu.Lock()
	if p.dead {
		v.mu.Unlock()
		return false, 0
	}
	p.counters.puts.Add(1)
	lat := m.cfg.OpOverhead
	st, stOK := m.placementStore(now, pe)
	be := m.backend(st)
	if !stOK || be == nil || be.CapacityBytes() <= 0 {
		p.counters.putRejects.Add(1)
		v.mu.Unlock()
		return false, lat
	}
	dedup := m.cfg.Dedup && content != 0
	if m.needsPhysical(st, content, dedup) && be.UsedBytes()+ObjectSize > be.CapacityBytes() {
		// Eviction runs under the store's eviction token; drop the VM
		// lock (tokens are above VM locks in the hierarchy) and retry on
		// the slow path.
		v.mu.Unlock()
		return m.putSlow(now, key, content, lat)
	}
	ok = m.commitPut(now, p, st, be, key, content, dedup, &lat)
	if !ok {
		p.counters.putRejects.Add(1)
	}
	v.mu.Unlock()
	return ok, lat
}

// putSlow is the eviction path of Put: it evicts per Algorithm 1 under
// the store's eviction token, then re-resolves the pool in the current
// epoch (the pool may have been destroyed while no lock was held) and
// stores.
func (m *Manager) putSlow(now time.Duration, key cleancache.Key, content uint64, lat time.Duration) (bool, time.Duration) {
	pe, ok := m.epoch.Load().pools[key.Pool]
	if !ok {
		return false, lat
	}
	p := pe.state
	st, stOK := m.placementStore(now, pe)
	be := m.backend(st)
	if !stOK || be == nil || be.CapacityBytes() <= 0 {
		p.counters.putRejects.Add(1)
		return false, lat
	}
	dedup := m.cfg.Dedup && content != 0
	if m.needsPhysical(st, content, dedup) && be.UsedBytes()+ObjectSize > be.CapacityBytes() {
		lat += m.enforceCapacity(now+lat, st, ObjectSize)
		if be.UsedBytes()+ObjectSize > be.CapacityBytes() {
			p.counters.putRejects.Add(1)
			return false, lat
		}
	}
	v := p.vm
	v.mu.Lock()
	defer v.mu.Unlock()
	if p.dead {
		return false, lat
	}
	if !m.commitPut(now, p, st, be, key, content, dedup, &lat) {
		p.counters.putRejects.Add(1)
		return false, lat
	}
	return true, lat
}

// needsPhysical reports whether a put of content into st must allocate a
// physical copy (true when deduplication is off or no copy exists yet).
func (m *Manager) needsPhysical(st cgroup.StoreType, content uint64, dedup bool) bool {
	if !dedup {
		return true
	}
	return m.dedup.peek(contentKey{st, content}) == 0
}

// commitPut charges the store and indexes the object, reporting whether
// it was admitted. The device write happens before the index insert: a
// failed write drops the object — put returns not-stored, which the
// cleancache contract makes safe — leaving index, dedup table and usage
// accounting exactly as they were. Callers hold the pool's VM lock.
//
// ddlint:requires-lock mu
func (m *Manager) commitPut(now time.Duration, p *poolState, st cgroup.StoreType, be store.Backend, key cleancache.Key, content uint64, dedup bool, lat *time.Duration) bool {
	obj := &index.Object{Inode: key.Inode, Block: key.Block, Size: ObjectSize, Store: st, Seq: m.nextSeq.Add(1)}
	if dedup {
		obj.Content = content
		if m.dedup.acquire(contentKey{st, content}, ObjectSize) {
			// Shared copy: only the in-band comparison cost is paid, and
			// no device write can fail.
			if replaced := p.idx.Insert(obj); replaced != nil {
				m.releaseObject(replaced)
			}
			return true
		}
	}
	slat, err := be.Store(now+*lat, ObjectSize)
	*lat += slat
	m.feedBreaker(now+*lat, st, err)
	if err != nil {
		if dedup {
			// Undo the reference taken above: the copy was never written.
			m.dedup.undo(contentKey{st, content})
		}
		return false
	}
	if replaced := p.idx.Insert(obj); replaced != nil {
		m.releaseObject(replaced)
	}
	return true
}

// releaseObject drops an object's physical storage, honouring shared
// deduplicated copies. A Pending object holds no backend storage — its
// bytes sit in the write-behind buffer — so releasing it just cancels
// the queued demotion; the drain skips the settled entry. This is the
// cancellation point every invalidation path (flush, exclusive get,
// destroy, replace, eviction) funnels through, which is what makes a
// demoted-then-staled block unable to resurrect: by the time the drain
// reaches the entry, Pending is false and nothing is written. Callers
// hold the owning VM's lock.
func (m *Manager) releaseObject(obj *index.Object) {
	if obj.Pending {
		obj.Pending = false
		m.demote.cancel(obj.Size)
		return
	}
	be := m.backend(obj.Store)
	if be == nil {
		return
	}
	if obj.Content != 0 && !m.dedup.release(contentKey{obj.Store, obj.Content}) {
		return // other logical references still share the physical copy
	}
	be.Release(obj.Size)
}

// placementStore resolves where a pool's next object goes: its configured
// store, or for hybrid pools memory until the pool's memory entitlement is
// exhausted, then SSD (the paper's hybrid-mode semantics). Open breakers
// walk placements down the fallback ladder — remote degrades to SSD (or
// memory), SSD degrades to memory — and when no healthy tier remains, ok
// is false and the put is rejected (the page is simply not cached —
// cleancache-safe). Reads only epoch state and atomic accounting, so
// callers need no lock.
func (m *Manager) placementStore(now time.Duration, pe *epochPool) (st cgroup.StoreType, ok bool) {
	if m.cfg.Mode == ModeGlobal {
		// The nesting-agnostic baseline is a plain memory cache.
		return cgroup.StoreMem, true
	}
	st = pe.spec.Store
	if st == cgroup.StoreHybrid {
		if m.cfg.Mem != nil && pe.acct.UsedBytes(cgroup.StoreMem)+ObjectSize <= pe.ent[entSlot(cgroup.StoreMem)] {
			return cgroup.StoreMem, true
		}
		st = cgroup.StoreSSD
	}
	if st == cgroup.StoreRemote && !m.remoteBreaker.allow(now) {
		if m.cfg.SSD != nil {
			st = cgroup.StoreSSD
		} else if m.cfg.Mem != nil {
			return cgroup.StoreMem, true
		} else {
			return 0, false
		}
	}
	if st == cgroup.StoreSSD && !m.ssdBreaker.allow(now) {
		if m.cfg.Mem != nil {
			return cgroup.StoreMem, true
		}
		return 0, false
	}
	return st, true
}

// FlushPage handles the FLUSH_PAGE op.
func (m *Manager) FlushPage(_ time.Duration, _ cleancache.VMID, key cleancache.Key) time.Duration {
	pe, ok := m.epoch.Load().pools[key.Pool]
	if !ok {
		return 0
	}
	p := pe.state
	v := p.vm
	v.mu.Lock()
	defer v.mu.Unlock()
	if p.dead {
		return 0
	}
	if obj := p.idx.Lookup(key.Inode, key.Block); obj != nil {
		p.idx.Remove(obj)
		m.releaseObject(obj)
	}
	return m.cfg.OpOverhead
}

// FlushInode handles the FLUSH_INODE op.
func (m *Manager) FlushInode(_ time.Duration, _ cleancache.VMID, pool cleancache.PoolID, inode uint64) time.Duration {
	pe, ok := m.epoch.Load().pools[pool]
	if !ok {
		return 0
	}
	p := pe.state
	v := p.vm
	v.mu.Lock()
	defer v.mu.Unlock()
	if p.dead {
		return 0
	}
	for _, obj := range p.idx.RemoveInode(inode) {
		m.releaseObject(obj)
	}
	return m.cfg.OpOverhead
}

// MigrateInode handles the MIGRATE_OBJECT op: cached blocks of a shared
// file change pool ownership without moving data. Migration within one
// VM holds that VM's lock; the cross-VM case acquires both VM locks in
// VM-id order (the one place two VM locks are held at once). The queue
// is force-drained first — flush-before-migrate ordering — so a queued
// demotion can never follow its object across a pool boundary; any
// demotion racing in after the drain is dropped by migrateLocked.
func (m *Manager) MigrateInode(now time.Duration, _ cleancache.VMID, from, to cleancache.PoolID, inode uint64) time.Duration {
	lat := m.drainDemotions(now)
	ep := m.epoch.Load()
	src, okSrc := ep.pools[from]
	dst, okDst := ep.pools[to]
	if !okSrc || !okDst {
		return lat
	}
	a, b := src.state.vm, dst.state.vm
	if a == b {
		a.mu.Lock()
		defer a.mu.Unlock()
		if src.state.dead || dst.state.dead {
			return lat
		}
		m.migrateLocked(src.state, dst.state, inode)
		return lat + m.cfg.OpOverhead
	}
	if b.id < a.id {
		a, b = b, a
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // ddlint:lock-ok two VM locks taken in VM-id order, the documented same-level exception
	defer b.mu.Unlock()
	if src.state.dead || dst.state.dead {
		return lat
	}
	m.migrateLocked(src.state, dst.state, inode)
	return lat + m.cfg.OpOverhead
}

// migrateLocked moves inode's objects from src to dst. Objects whose
// demotion is still queued are dropped instead of migrated: their bytes
// exist only in the write-behind buffer, and the queue entry pins the
// source pool, so handing them to dst would let a later drain write
// into the wrong pool's accounting. Dropping is cleancache-safe.
// Callers hold the VM lock(s) covering both pools.
//
// ddlint:requires-lock mu
func (m *Manager) migrateLocked(src, dst *poolState, inode uint64) {
	for _, obj := range src.idx.RemoveInode(inode) {
		if obj.Pending {
			m.releaseObject(obj)
			continue
		}
		if replaced := dst.idx.Insert(obj); replaced != nil {
			m.releaseObject(replaced)
		}
	}
}

// PoolStats handles the GET_STATS op. Counters, occupancy and epoch
// entitlements are all read lock-free; under concurrent traffic the
// figures are individually exact but not one instantaneous snapshot.
func (m *Manager) PoolStats(_ cleancache.VMID, pool cleancache.PoolID) cleancache.PoolStats {
	pe, ok := m.epoch.Load().pools[pool]
	if !ok {
		return cleancache.PoolStats{}
	}
	s := pe.state.counters.snapshot()
	s.UsedBytes = pe.acct.TotalBytes()
	s.Objects = pe.acct.Count()
	var ent int64
	for _, st := range tierOrder {
		if pe.usesStore(st) {
			ent += pe.ent[entSlot(st)]
		}
	}
	s.EntitlementBytes = ent
	return s
}

// PoolStoreBytes reports the pool's bytes resident in one tier — the
// per-tier breakdown of PoolStats.UsedBytes. Lock-free, same snapshot
// caveats as PoolStats.
func (m *Manager) PoolStoreBytes(_ cleancache.VMID, pool cleancache.PoolID, st cgroup.StoreType) int64 {
	pe, ok := m.epoch.Load().pools[pool]
	if !ok {
		return 0
	}
	return pe.acct.UsedBytes(st)
}

// --- policy: capacity enforcement and Algorithm 1 --------------------------

// evictToken returns the eviction token serializing capacity
// enforcement for st, or nil for store types that are never enforced
// directly (hybrid resolves to a concrete tier before eviction). Every
// concrete tier gets its own token slot — the old mem/ssd literal pair
// silently gave any third store no token at all.
func (m *Manager) evictToken(st cgroup.StoreType) *sync.Mutex {
	switch st {
	case cgroup.StoreMem, cgroup.StoreSSD, cgroup.StoreRemote:
		return &m.evictTokens[entSlot(st)]
	default:
		return nil
	}
}

// enforceCapacity evicts from the st store until incoming bytes fit,
// selecting victims per Algorithm 1: first the victim VM, then the victim
// container within it, then FIFO within the container's pool, in
// EvictBatchBytes batches. Returns the (metadata) latency incurred.
// Runs under the store's eviction token; callers hold no VM lock.
func (m *Manager) enforceCapacity(now time.Duration, st cgroup.StoreType, incoming int64) time.Duration {
	be := m.backend(st)
	tok := m.evictToken(st) // ddlint:lock-alias Manager.evictToken
	if be == nil || tok == nil {
		return 0
	}
	tok.Lock()
	defer tok.Unlock()
	var lat time.Duration
	for be.UsedBytes()+incoming > be.CapacityBytes() {
		need := be.UsedBytes() + incoming - be.CapacityBytes()
		batch := m.cfg.EvictBatchBytes
		if batch < need {
			batch = need
		}
		freed := m.evictBatch(st, batch)
		if freed == 0 {
			break
		}
		lat += m.cfg.OpOverhead
	}
	return lat
}

// evictBatch frees up to batch bytes from the st store and returns the
// bytes actually freed. Victim selection reads the current epoch and the
// pools' atomic accounting lock-free; the selected pool is then evicted
// under its VM lock.
//
// With the write-behind queue active, each victim object demotes to the
// next tier its pool's spec still uses instead of dropping: the source
// bytes are freed immediately, the object is re-homed to the target tier
// as Pending, and the actual device write happens at the next drain.
// Objects fall back to a plain drop when the queue is at its dirtiness
// bound, when their own demotion is still in flight (no chained
// re-demotion), or when they hold a deduplicated copy (content refs are
// keyed by store and do not transfer across tiers).
func (m *Manager) evictBatch(st cgroup.StoreType, batch int64) int64 {
	ep := m.epoch.Load()
	if m.cfg.Mode == ModeGlobal {
		return m.evictGlobalFIFO(ep, st, batch)
	}
	victimVM := m.selectVictimVM(ep, st, batch)
	if victimVM == nil {
		return 0
	}
	victim := m.selectVictimPool(victimVM, st, batch)
	if victim == nil {
		return 0
	}
	target := m.demoteTarget(victim, st)
	p := victim.state
	v := p.vm
	v.mu.Lock()
	defer v.mu.Unlock()
	if p.dead {
		return 0
	}
	var freed int64
	for freed < batch {
		obj := p.idx.Oldest(st)
		if obj == nil {
			break
		}
		p.idx.Remove(obj)
		if target != 0 && !obj.Pending && obj.Content == 0 && m.demote.tryEnqueue(p, obj) {
			// The queue admitted the object: free the source tier's
			// bytes and re-home it to the target tier as Pending. The
			// drain cannot touch the entry yet — it reads Pending under
			// the VM lock we hold.
			m.releaseObject(obj)
			obj.Store = target
			obj.Pending = true
			p.idx.Insert(obj)
			p.counters.demotions.Add(1)
		} else {
			m.releaseObject(obj)
			p.counters.evictions.Add(1)
			m.totalEvictions.Add(1)
		}
		freed += obj.Size
	}
	return freed
}

// demoteTarget resolves where evictions from st in pe's pool demote to:
// the next tier of tierOrder the pool's spec uses and a backend exists
// for, or 0 when evictions are plain drops (no queue, mem-only or
// remote-tier evictions, Global mode).
func (m *Manager) demoteTarget(pe *epochPool, st cgroup.StoreType) cgroup.StoreType {
	if m.demote == nil {
		return 0
	}
	past := false
	for _, t := range tierOrder {
		if t == st {
			past = true
			continue
		}
		if past && pe.usesStore(t) && m.backend(t) != nil {
			return t
		}
	}
	return 0
}

// evictGlobalFIFO implements the baseline's container-agnostic policy:
// evict the globally oldest objects regardless of which container (or VM)
// inserted them. The scan takes each VM's lock in turn; the chosen pool
// is re-validated under its VM lock before removal.
func (m *Manager) evictGlobalFIFO(ep *epoch, st cgroup.StoreType, batch int64) int64 {
	var freed int64
	for freed < batch {
		var (
			victim    *epochPool
			oldestSeq uint64
		)
		for _, ev := range ep.vms {
			ev.state.mu.Lock()
			for _, pe := range ev.pools {
				if pe.state.dead {
					continue
				}
				obj := pe.state.idx.Oldest(st)
				if obj == nil {
					continue
				}
				if victim == nil || obj.Seq < oldestSeq {
					victim, oldestSeq = pe, obj.Seq
				}
			}
			ev.state.mu.Unlock()
		}
		if victim == nil {
			break
		}
		p := victim.state
		v := p.vm
		v.mu.Lock()
		obj := p.idx.Oldest(st)
		if obj == nil || p.dead {
			// The candidate vanished between scan and lock: someone else
			// freed bytes, so stop rather than rescan (conservative).
			v.mu.Unlock()
			break
		}
		p.idx.Remove(obj)
		m.releaseObject(obj)
		freed += obj.Size
		p.counters.evictions.Add(1)
		m.totalEvictions.Add(1)
		v.mu.Unlock()
	}
	return freed
}

// selectVictimVM picks the Algorithm 1 victim VM for an eviction of batch
// bytes from st, reading only epoch state and atomic accounting.
func (m *Manager) selectVictimVM(ep *epoch, st cgroup.StoreType, batch int64) *epochVM {
	candidates := make([]*epochVM, 0, len(ep.vms))
	ents := make([]policy.Entity, 0, len(ep.vms))
	for _, ev := range ep.vms {
		used := ev.usedBytes(st)
		if used == 0 {
			continue
		}
		candidates = append(candidates, ev)
		ents = append(ents, policy.Entity{
			Weight:      ev.weight,
			Entitlement: ev.ent[entSlot(st)],
			Used:        used,
		})
	}
	if len(candidates) == 0 {
		return nil
	}
	i := m.cfg.VictimSelector(ents, batch)
	if i < 0 {
		i = largestUser(ents)
	}
	if i < 0 {
		return nil
	}
	return candidates[i]
}

// selectVictimPool picks the Algorithm 1 victim container within ev,
// reading only epoch state and atomic accounting.
func (m *Manager) selectVictimPool(ev *epochVM, st cgroup.StoreType, batch int64) *epochPool {
	candidates := make([]*epochPool, 0, len(ev.pools))
	ents := make([]policy.Entity, 0, len(ev.pools))
	for _, pe := range ev.pools {
		used := pe.acct.UsedBytes(st)
		if used == 0 {
			continue
		}
		candidates = append(candidates, pe)
		ents = append(ents, policy.Entity{
			Weight:      int64(pe.spec.Weight),
			Entitlement: pe.ent[entSlot(st)],
			Used:        used,
		})
	}
	if len(candidates) == 0 {
		return nil
	}
	i := m.cfg.VictimSelector(ents, batch)
	if i < 0 {
		i = largestUser(ents)
	}
	if i < 0 {
		return nil
	}
	return candidates[i]
}

func largestUser(ents []policy.Entity) int {
	best, bestUsed := -1, int64(0)
	for i, e := range ents {
		if e.Used > bestUsed {
			best, bestUsed = i, e.Used
		}
	}
	return best
}

// --- observation helpers for experiments -----------------------------------

// Contains reports whether a block is currently cached, without the
// exclusive-get side effect — an inspection hook for tests and tooling.
func (m *Manager) Contains(key cleancache.Key) bool {
	pe, ok := m.epoch.Load().pools[key.Pool]
	if !ok {
		return false
	}
	p := pe.state
	v := p.vm
	v.mu.Lock()
	defer v.mu.Unlock()
	if p.dead {
		return false
	}
	return p.idx.Lookup(key.Inode, key.Block) != nil
}

// PoolUsedBytes reports a pool's occupancy in the given store. Byte
// accounting is atomic, so this never blocks the data path.
func (m *Manager) PoolUsedBytes(pool cleancache.PoolID, st cgroup.StoreType) int64 {
	pe, ok := m.epoch.Load().pools[pool]
	if !ok {
		return 0
	}
	return pe.acct.UsedBytes(st)
}

// PoolTotalBytes reports a pool's occupancy across stores.
func (m *Manager) PoolTotalBytes(pool cleancache.PoolID) int64 {
	pe, ok := m.epoch.Load().pools[pool]
	if !ok {
		return 0
	}
	return pe.acct.TotalBytes()
}

// VMUsedBytes reports a VM's total occupancy in the given store.
func (m *Manager) VMUsedBytes(vm cleancache.VMID, st cgroup.StoreType) int64 {
	ev, ok := m.epoch.Load().vmByID[vm]
	if !ok {
		return 0
	}
	return ev.usedBytes(st)
}

// VMEntitlement reports a VM's current epoch entitlement in the given
// store (0 for unknown VMs). Lock-free.
func (m *Manager) VMEntitlement(vm cleancache.VMID, st cgroup.StoreType) int64 {
	ev, ok := m.epoch.Load().vmByID[vm]
	if !ok {
		return 0
	}
	return ev.ent[entSlot(st)]
}

// PoolEntitlement reports a pool's current epoch entitlement in the
// given store (0 for unknown pools). Lock-free.
func (m *Manager) PoolEntitlement(pool cleancache.PoolID, st cgroup.StoreType) int64 {
	pe, ok := m.epoch.Load().pools[pool]
	if !ok {
		return 0
	}
	return pe.ent[entSlot(st)]
}

// EpochSeq reports the sequence number of the currently published epoch
// (0 before any configuration op).
func (m *Manager) EpochSeq() uint64 { return m.epoch.Load().seq }

// StoreUsedBytes reports a store's total occupancy.
func (m *Manager) StoreUsedBytes(st cgroup.StoreType) int64 {
	be := m.backend(st)
	if be == nil {
		return 0
	}
	return be.UsedBytes()
}

// TotalEvictions reports objects evicted by capacity enforcement since
// start.
func (m *Manager) TotalEvictions() int64 { return m.totalEvictions.Load() }

// ShedOps reports data-path operations rejected by the hypervisor-wide
// admission budget (Config.MaxInflightOps) since start.
func (m *Manager) ShedOps() int64 { return m.shedOps.Load() }

// InflightOps reports the data-path operations currently inside Dispatch;
// it must drain to zero at quiesce.
func (m *Manager) InflightOps() int64 { return m.inflightOps.Load() }

// DedupSavedBytes reports the cumulative physical bytes avoided by
// content deduplication (0 unless Config.Dedup).
func (m *Manager) DedupSavedBytes() int64 { return m.dedup.savedBytes() }

// DedupMinRef reports the smallest live dedup reference count (and
// whether any exists) — an invariant hook for the differential tests:
// counts must stay strictly positive.
func (m *Manager) DedupMinRef() (int64, bool) { return m.dedup.minRef() }
