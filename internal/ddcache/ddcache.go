// Package ddcache implements the paper's primary contribution: the
// DoubleDecker hypervisor cache store. It ties together the indexing
// module (package index), the policy module (package policy) and the
// storage module (package store) behind the cleancache.Backend interface,
// and supports:
//
//   - two-level differentiated partitioning: per-VM weights set by the
//     host administrator, per-container <T, W> tuples set from inside each
//     VM;
//   - memory and SSD cache stores, plus the hybrid (mem with SSD spill)
//     configuration option the paper describes;
//   - resource-conservative eviction: objects are evicted only when a
//     store reaches capacity, using the paper's Algorithm 1 victim
//     selection (VM level first, then container level) in 2 MiB batches;
//   - dynamic reconfiguration of weights, store types and capacities;
//   - the nesting-agnostic Global baseline (tmem-like): pools are still
//     tracked per container (so experiments can observe occupancy, as the
//     paper does), but eviction follows strict cross-pool FIFO order and
//     ignores weights — no container fairness. This is the paper's
//     comparison point in the motivation and evaluation sections.
//
// # Concurrency model
//
// A Manager is safe for use by any number of goroutines — the intended
// deployment is one or more goroutines per guest VM all sharing one
// manager, exactly as concurrent guests share the hypervisor cache. The
// lock hierarchy, from outermost to innermost:
//
//  1. Manager.mu (store-level RWMutex). Held for writing by structural
//     and cross-VM operations: VM registration, pool create/destroy,
//     weight and capacity changes, eviction, and cross-VM migration. Held
//     for reading by every per-VM data operation.
//  2. vmState.mu (per-VM mutex). Acquired only while holding Manager.mu
//     for reading; guards one VM's pool indexes, specs and entitlement
//     inputs. Get/Put/Flush/SetSpec for different VMs therefore never
//     contend beyond the shared read lock. Two VM locks are never held at
//     once: any operation spanning VMs upgrades to Manager.mu instead.
//  3. Manager.dedupMu (leaf mutex) guards the cross-VM content-reference
//     table used by deduplication.
//
// Hot counters — eviction and dedup totals, per-pool statistics, per-pool
// and per-store byte accounting — are atomics, so the read-only
// observation paths (PoolUsedBytes, VMUsedBytes, StoreUsedBytes,
// TotalEvictions, DedupSavedBytes) never take a VM lock and never block
// the data path.
//
// Capacity checks on the Put fast path are check-then-act under the read
// lock: concurrent putters may transiently overshoot a full store by up
// to one object each before the next put takes the write lock and evicts.
// The index (package index) and storage (package store) modules document
// their own sides of this contract: index relies on the locks above,
// store and blockdev are self-locking.
package ddcache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"doubledecker/internal/cgroup"
	"doubledecker/internal/cleancache"
	"doubledecker/internal/index"
	"doubledecker/internal/metrics"
	"doubledecker/internal/policy"
	"doubledecker/internal/store"
)

// ObjectSize is the size of every cached object: one guest page.
const ObjectSize = 4096

// Mode selects container awareness.
type Mode int

// Modes of operation.
const (
	// ModeDD is full DoubleDecker: per-container pools and two-level
	// weighted partitioning.
	ModeDD Mode = iota + 1
	// ModeGlobal is the nesting-agnostic baseline: every container of a
	// VM shares one pool, evicted FIFO with no container fairness.
	ModeGlobal
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeDD:
		return "doubledecker"
	case ModeGlobal:
		return "global"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config parameterizes a Manager.
type Config struct {
	Mode Mode
	// Mem and SSD are the cache stores; either may be nil to disable
	// that backend.
	Mem store.Backend
	SSD store.Backend
	// EvictBatchBytes is the eviction granularity; the paper uses 2 MiB.
	EvictBatchBytes int64
	// OpOverhead is the manager-internal CPU cost per operation.
	OpOverhead time.Duration
	// VictimSelector allows the ablation benchmarks to swap out the
	// Algorithm 1 variant; nil selects the paper's algorithm.
	VictimSelector func(ents []policy.Entity, evictionSize int64) int
	// Dedup enables content deduplication within each store: objects
	// with the same content identity share one physical copy (the
	// extension the paper names in its related-work discussion).
	Dedup bool
	// Inclusive disables the exclusive-caching protocol: gets leave the
	// object in the cache, so guest page cache and hypervisor cache hold
	// duplicate copies — the wasteful design the paper's §2 argues
	// against. For the ablation benchmark only.
	Inclusive bool
	// Metrics receives the SSD circuit breaker's trip/probe/restore
	// events and state gauge; nil disables recording.
	Metrics *metrics.Registry
	// Breaker tunes the SSD circuit breaker; the zero value selects the
	// defaults documented on BreakerConfig. The breaker exists whenever
	// an SSD store is configured.
	Breaker BreakerConfig
}

// DefaultEvictBatch is the paper's 2 MiB eviction batch.
const DefaultEvictBatch = 2 << 20

// vmState tracks one registered VM.
type vmState struct {
	id cleancache.VMID
	// weight is guarded by Manager.mu: written under the write lock,
	// read under either lock mode.
	// ddlint:guarded-by mu
	weight int64
	// mu is the per-VM lock (level 2 of the hierarchy); acquired only
	// while holding Manager.mu for reading.
	mu sync.Mutex
	// pools is mutated only under Manager.mu held for writing; data-path
	// readers hold Manager.mu for reading.
	// ddlint:guarded-by mu
	pools []*poolState // creation order, for deterministic iteration
}

// usedBytes sums the VM's occupancy in st across its pools.
//
// ddlint:requires-lock mu
func (v *vmState) usedBytes(st cgroup.StoreType) int64 {
	var u int64
	for _, p := range v.pools {
		u += p.idx.UsedBytes(st)
	}
	return u
}

// poolCounters are the per-pool statistics, atomic so GET_STATS snapshots
// never block the data path.
type poolCounters struct {
	gets       atomic.Int64
	getHits    atomic.Int64
	puts       atomic.Int64
	putRejects atomic.Int64
	evictions  atomic.Int64
}

func (c *poolCounters) snapshot() cleancache.PoolStats {
	return cleancache.PoolStats{
		Gets:       c.gets.Load(),
		GetHits:    c.getHits.Load(),
		Puts:       c.puts.Load(),
		PutRejects: c.putRejects.Load(),
		Evictions:  c.evictions.Load(),
	}
}

// poolState tracks one container pool. spec and idx structure are guarded
// by the owning VM's lock (or Manager.mu held for writing).
type poolState struct {
	// ddlint:guarded-by mu
	idx *index.Pool
	// ddlint:guarded-by mu
	spec     cgroup.HCacheSpec
	vm       *vmState
	counters poolCounters
}

// usesStore reports whether the pool may place objects in st.
//
// ddlint:requires-lock mu
func (p *poolState) usesStore(st cgroup.StoreType) bool {
	switch p.spec.Store {
	case cgroup.StoreHybrid:
		return st == cgroup.StoreMem || st == cgroup.StoreSSD
	default:
		return p.spec.Store == st
	}
}

// Manager is the DoubleDecker hypervisor cache manager. See the package
// documentation for the concurrency model.
type Manager struct {
	cfg Config

	// mu is the store-level lock (level 1 of the hierarchy). It guards
	// the vms/pools maps, vmOrder, nextPool and every VM weight.
	mu       sync.RWMutex
	vms      map[cleancache.VMID]*vmState     // ddlint:guarded-by mu
	vmOrder  []*vmState                       // ddlint:guarded-by mu
	pools    map[cleancache.PoolID]*poolState // ddlint:guarded-by mu
	nextPool cleancache.PoolID                // ddlint:guarded-by mu

	// dedupMu (leaf lock) guards contentRefs, the logical reference
	// counts per (store, content); the physical copy is charged once.
	dedupMu     sync.Mutex
	contentRefs map[contentKey]int64 // ddlint:guarded-by dedupMu

	// ssdBreaker guards the SSD store against a failing device: after
	// Config.Breaker.Threshold errors in the sliding window, SSD traffic
	// is shed (puts degrade to memory or are rejected, SSD-resident gets
	// miss) until half-open probes re-admit the device. The breaker is
	// self-locking (its mutex is a leaf below the VM locks) and nil only
	// when no SSD store is configured.
	ssdBreaker *breaker

	// run-wide counters
	nextSeq        atomic.Uint64
	totalEvictions atomic.Int64
	dedupSaved     atomic.Int64 // physical bytes avoided by deduplication
}

// contentKey identifies one deduplicated physical copy.
type contentKey struct {
	store   cgroup.StoreType
	content uint64
}

var _ cleancache.Backend = (*Manager)(nil)

// NewManager returns a manager over the configured stores.
//
// Deprecated: use New with functional options (WithMode, WithMemCapacity,
// WithSSDBackend, ...). NewManager is kept as a shim for one release.
func NewManager(cfg Config) *Manager {
	if cfg.EvictBatchBytes <= 0 {
		cfg.EvictBatchBytes = DefaultEvictBatch
	}
	if cfg.Mode == 0 {
		cfg.Mode = ModeDD
	}
	if cfg.OpOverhead == 0 {
		cfg.OpOverhead = 300 * time.Nanosecond
	}
	if cfg.VictimSelector == nil {
		cfg.VictimSelector = policy.SelectVictim
	}
	m := &Manager{
		cfg:         cfg,
		vms:         make(map[cleancache.VMID]*vmState),
		pools:       make(map[cleancache.PoolID]*poolState),
		nextPool:    1,
		contentRefs: make(map[contentKey]int64),
	}
	if cfg.SSD != nil {
		m.ssdBreaker = newBreaker(cfg.Breaker, cfg.Metrics, "breaker.ssd")
	}
	return m
}

// Mode reports the configured container-awareness mode.
func (m *Manager) Mode() Mode { return m.cfg.Mode }

// backend returns the store for st (hybrid resolves elsewhere).
func (m *Manager) backend(st cgroup.StoreType) store.Backend {
	switch st {
	case cgroup.StoreMem:
		return m.cfg.Mem
	case cgroup.StoreSSD:
		return m.cfg.SSD
	default:
		return nil
	}
}

// --- host administrator interface -----------------------------------------

// RegisterVM announces a VM with its cache-distribution weight.
func (m *Manager) RegisterVM(id cleancache.VMID, weight int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.registerVMLocked(id, weight)
}

func (m *Manager) registerVMLocked(id cleancache.VMID, weight int64) *vmState {
	if v, ok := m.vms[id]; ok {
		v.weight = weight
		return v
	}
	v := &vmState{id: id, weight: weight}
	m.vms[id] = v
	m.vmOrder = append(m.vmOrder, v)
	return v
}

// UnregisterVM drops a VM and all its pools.
func (m *Manager) UnregisterVM(id cleancache.VMID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.vms[id]
	if !ok {
		return
	}
	for _, p := range append([]*poolState(nil), v.pools...) {
		m.destroyPoolLocked(p)
	}
	delete(m.vms, id)
	for i, other := range m.vmOrder {
		if other == v {
			m.vmOrder = append(m.vmOrder[:i], m.vmOrder[i+1:]...)
			break
		}
	}
}

// SetVMWeight updates a VM's weight (dynamic re-provisioning, Figure 14).
func (m *Manager) SetVMWeight(id cleancache.VMID, weight int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if v, ok := m.vms[id]; ok {
		v.weight = weight
	}
}

// SetMemCapacity resizes the memory store at runtime and evicts down to
// the new capacity if needed.
func (m *Manager) SetMemCapacity(now time.Duration, n int64) {
	if m.cfg.Mem == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cfg.Mem.SetCapacityBytes(n)
	m.enforceCapacity(now, cgroup.StoreMem, 0)
}

// SetSSDCapacity resizes the SSD store at runtime.
func (m *Manager) SetSSDCapacity(now time.Duration, n int64) {
	if m.cfg.SSD == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cfg.SSD.SetCapacityBytes(n)
	m.enforceCapacity(now, cgroup.StoreSSD, 0)
}

// --- op handlers (routed through Dispatch, see dispatch.go) ----------------

// CreatePool handles the CREATE_CGROUP op.
func (m *Manager) CreatePool(_ time.Duration, vm cleancache.VMID, name string, spec cgroup.HCacheSpec) (cleancache.PoolID, time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.vms[vm]
	if !ok {
		// Auto-register unknown VMs with a default weight, mirroring a
		// hypervisor admitting an unconfigured guest.
		v = m.registerVMLocked(vm, 100)
	}
	p := m.newPoolLocked(v, name, spec)
	return p.idx.ID, m.cfg.OpOverhead
}

func (m *Manager) newPoolLocked(v *vmState, name string, spec cgroup.HCacheSpec) *poolState {
	id := m.nextPool
	m.nextPool++
	if spec.Store == 0 {
		spec.Store = cgroup.StoreMem
		if spec.Weight <= 0 {
			spec.Weight = 100
		}
	}
	if spec.Weight < 0 {
		spec.Weight = 0
	}
	p := &poolState{idx: index.NewPool(id, v.id, name), spec: spec, vm: v}
	m.pools[id] = p
	v.pools = append(v.pools, p)
	return p
}

// DestroyPool handles the DESTROY_CGROUP op.
func (m *Manager) DestroyPool(_ time.Duration, _ cleancache.VMID, pool cleancache.PoolID) time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.pools[pool]
	if !ok {
		return 0
	}
	m.destroyPoolLocked(p)
	return m.cfg.OpOverhead
}

// destroyPoolLocked requires Manager.mu held for writing.
func (m *Manager) destroyPoolLocked(p *poolState) {
	for _, obj := range p.idx.DrainAll() {
		m.releaseObject(obj)
	}
	delete(m.pools, p.idx.ID)
	for i, other := range p.vm.pools {
		if other == p {
			p.vm.pools = append(p.vm.pools[:i], p.vm.pools[i+1:]...)
			break
		}
	}
}

// SetSpec handles the SET_CG_WEIGHT op. Changing the
// store type flushes objects from stores the pool no longer uses; the
// freed share is redistributed implicitly by the entitlement math.
func (m *Manager) SetSpec(_ time.Duration, _ cleancache.VMID, pool cleancache.PoolID, spec cgroup.HCacheSpec) time.Duration {
	m.mu.RLock()
	defer m.mu.RUnlock()
	p, ok := m.pools[pool]
	if !ok {
		return 0
	}
	if m.cfg.Mode == ModeGlobal {
		return m.cfg.OpOverhead // baseline ignores container policy
	}
	v := p.vm
	v.mu.Lock()
	defer v.mu.Unlock()
	old := p.spec
	if spec.Weight <= 0 {
		spec.Weight = old.Weight
	}
	if spec.Store == 0 {
		spec.Store = old.Store
	}
	p.spec = spec
	for _, st := range []cgroup.StoreType{cgroup.StoreMem, cgroup.StoreSSD} {
		if p.usesStore(st) || p.idx.UsedBytes(st) == 0 {
			continue
		}
		// Drop objects stranded in a de-configured store.
		for {
			obj := p.idx.Oldest(st)
			if obj == nil {
				break
			}
			p.idx.Remove(obj)
			m.releaseObject(obj)
			p.counters.evictions.Add(1)
			m.totalEvictions.Add(1)
		}
	}
	return m.cfg.OpOverhead
}

// Get handles the GET op: exclusive lookup — a hit removes the
// object and pays the store's fetch latency.
//
// Failure handling follows the cleancache contract: a fetch error
// invalidates the entry and reports a miss — the guest re-reads the page
// from its virtual disk, so dropping is always safe. While the SSD
// breaker is open, gets of SSD-resident objects miss without invalidating
// (the stored bytes are intact; only the device is being avoided).
func (m *Manager) Get(now time.Duration, _ cleancache.VMID, key cleancache.Key) (bool, time.Duration) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	p, ok := m.pools[key.Pool]
	if !ok {
		return false, 0
	}
	v := p.vm
	v.mu.Lock()
	defer v.mu.Unlock()
	p.counters.gets.Add(1)
	lat := m.cfg.OpOverhead
	obj := p.idx.Lookup(key.Inode, key.Block)
	if obj == nil {
		return false, lat
	}
	if obj.Store == cgroup.StoreSSD && !m.ssdBreaker.allow(now+lat) {
		return false, lat
	}
	if be := m.backend(obj.Store); be != nil {
		flat, err := be.Fetch(now+lat, obj.Size)
		lat += flat
		m.feedBreaker(now+lat, obj.Store, err)
		if err != nil {
			p.idx.Remove(obj)
			m.releaseObject(obj)
			return false, lat
		}
	}
	p.counters.getHits.Add(1)
	if !m.cfg.Inclusive {
		m.releaseObject(obj)
		p.idx.Remove(obj)
	}
	return true, lat
}

// feedBreaker reports an SSD store operation's outcome to the circuit
// breaker; operations on other stores are ignored.
func (m *Manager) feedBreaker(now time.Duration, st cgroup.StoreType, err error) {
	if st != cgroup.StoreSSD {
		return
	}
	if err != nil {
		m.ssdBreaker.onFailure(now)
	} else {
		m.ssdBreaker.onSuccess()
	}
}

// SSDBreakerStats snapshots the SSD circuit breaker's state and event
// counters (zero-valued, state "closed", when no SSD store is configured).
func (m *Manager) SSDBreakerStats() BreakerStats { return m.ssdBreaker.snapshot() }

// Put handles the PUT op: stores a clean page evicted by the
// guest, evicting per Algorithm 1 when the target store is full. With
// deduplication enabled, an object whose content is already stored shares
// the existing physical copy.
//
// The fast path runs under the read lock plus the VM lock; only when the
// target store is full does Put upgrade to the store-level write lock to
// evict, re-validating everything after the lock switch.
func (m *Manager) Put(now time.Duration, _ cleancache.VMID, key cleancache.Key, content uint64) (bool, time.Duration) {
	m.mu.RLock()
	p, ok := m.pools[key.Pool]
	if !ok {
		m.mu.RUnlock()
		return false, 0
	}
	v := p.vm
	v.mu.Lock()
	p.counters.puts.Add(1)
	lat := m.cfg.OpOverhead
	st, stOK := m.placementStore(now, p)
	be := m.backend(st)
	if !stOK || be == nil || be.CapacityBytes() <= 0 {
		p.counters.putRejects.Add(1)
		v.mu.Unlock()
		m.mu.RUnlock()
		return false, lat
	}
	dedup := m.cfg.Dedup && content != 0
	if m.needsPhysical(st, content, dedup) && be.UsedBytes()+ObjectSize > be.CapacityBytes() {
		// Eviction needs the store-level write lock; drop the data-path
		// locks (never upgrade in place) and retry on the slow path.
		v.mu.Unlock()
		m.mu.RUnlock()
		return m.putSlow(now, key, content, lat)
	}
	ok = m.commitPut(now, p, st, be, key, content, dedup, &lat)
	if !ok {
		p.counters.putRejects.Add(1)
	}
	v.mu.Unlock()
	m.mu.RUnlock()
	return ok, lat
}

// putSlow is the eviction path of Put: it re-resolves the pool under the
// store-level write lock (the pool may have been destroyed while the
// data-path locks were dropped), evicts per Algorithm 1 and stores.
func (m *Manager) putSlow(now time.Duration, key cleancache.Key, content uint64, lat time.Duration) (bool, time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.pools[key.Pool]
	if !ok {
		return false, lat
	}
	st, stOK := m.placementStore(now, p)
	be := m.backend(st)
	if !stOK || be == nil || be.CapacityBytes() <= 0 {
		p.counters.putRejects.Add(1)
		return false, lat
	}
	dedup := m.cfg.Dedup && content != 0
	if m.needsPhysical(st, content, dedup) && be.UsedBytes()+ObjectSize > be.CapacityBytes() {
		lat += m.enforceCapacity(now+lat, st, ObjectSize)
		if be.UsedBytes()+ObjectSize > be.CapacityBytes() {
			p.counters.putRejects.Add(1)
			return false, lat
		}
	}
	if !m.commitPut(now, p, st, be, key, content, dedup, &lat) {
		p.counters.putRejects.Add(1)
		return false, lat
	}
	return true, lat
}

// needsPhysical reports whether a put of content into st must allocate a
// physical copy (true when deduplication is off or no copy exists yet).
func (m *Manager) needsPhysical(st cgroup.StoreType, content uint64, dedup bool) bool {
	if !dedup {
		return true
	}
	m.dedupMu.Lock()
	n := m.contentRefs[contentKey{st, content}]
	m.dedupMu.Unlock()
	return n == 0
}

// commitPut charges the store and indexes the object, reporting whether
// it was admitted. The device write happens before the index insert: a
// failed write drops the object — put returns not-stored, which the
// cleancache contract makes safe — leaving index, dedup table and usage
// accounting exactly as they were. Callers hold either the data-path
// locks (read lock + VM lock) or the write lock.
//
// ddlint:requires-lock mu
func (m *Manager) commitPut(now time.Duration, p *poolState, st cgroup.StoreType, be store.Backend, key cleancache.Key, content uint64, dedup bool, lat *time.Duration) bool {
	obj := &index.Object{Inode: key.Inode, Block: key.Block, Size: ObjectSize, Store: st, Seq: m.nextSeq.Add(1)}
	if dedup {
		obj.Content = content
		ck := contentKey{st, content}
		m.dedupMu.Lock()
		m.contentRefs[ck]++
		shared := m.contentRefs[ck] > 1
		m.dedupMu.Unlock()
		if shared {
			// Shared copy: only the in-band comparison cost is paid, and
			// no device write can fail.
			m.dedupSaved.Add(ObjectSize)
			if replaced := p.idx.Insert(obj); replaced != nil {
				m.releaseObject(replaced)
			}
			return true
		}
	}
	slat, err := be.Store(now+*lat, ObjectSize)
	*lat += slat
	m.feedBreaker(now+*lat, st, err)
	if err != nil {
		if dedup {
			// Undo the reference taken above: the copy was never written.
			ck := contentKey{st, content}
			m.dedupMu.Lock()
			if m.contentRefs[ck] <= 1 {
				delete(m.contentRefs, ck)
			} else {
				m.contentRefs[ck]--
			}
			m.dedupMu.Unlock()
		}
		return false
	}
	if replaced := p.idx.Insert(obj); replaced != nil {
		m.releaseObject(replaced)
	}
	return true
}

// releaseObject drops an object's physical storage, honouring shared
// deduplicated copies.
func (m *Manager) releaseObject(obj *index.Object) {
	be := m.backend(obj.Store)
	if be == nil {
		return
	}
	if obj.Content != 0 {
		ck := contentKey{obj.Store, obj.Content}
		m.dedupMu.Lock()
		if m.contentRefs[ck] > 1 {
			m.contentRefs[ck]--
			m.dedupMu.Unlock()
			return
		}
		delete(m.contentRefs, ck)
		m.dedupMu.Unlock()
	}
	be.Release(obj.Size)
}

// placementStore resolves where a pool's next object goes: its configured
// store, or for hybrid pools memory until the pool's memory entitlement is
// exhausted, then SSD (the paper's hybrid-mode semantics). When the SSD
// breaker is open, SSD placements transparently degrade to the memory
// store if one exists; otherwise ok is false and the put is rejected (the
// page is simply not cached — cleancache-safe). Callers hold the pool's
// VM lock or the store-level write lock.
//
// ddlint:requires-lock mu
func (m *Manager) placementStore(now time.Duration, p *poolState) (st cgroup.StoreType, ok bool) {
	if m.cfg.Mode == ModeGlobal {
		// The nesting-agnostic baseline is a plain memory cache.
		return cgroup.StoreMem, true
	}
	st = p.spec.Store
	if st == cgroup.StoreHybrid {
		if m.cfg.Mem != nil && p.idx.UsedBytes(cgroup.StoreMem)+ObjectSize <= m.poolEntitlement(p, cgroup.StoreMem) {
			return cgroup.StoreMem, true
		}
		st = cgroup.StoreSSD
	}
	if st == cgroup.StoreSSD && !m.ssdBreaker.allow(now) {
		if m.cfg.Mem != nil {
			return cgroup.StoreMem, true
		}
		return 0, false
	}
	return st, true
}

// FlushPage handles the FLUSH_PAGE op.
func (m *Manager) FlushPage(_ time.Duration, _ cleancache.VMID, key cleancache.Key) time.Duration {
	m.mu.RLock()
	defer m.mu.RUnlock()
	p, ok := m.pools[key.Pool]
	if !ok {
		return 0
	}
	v := p.vm
	v.mu.Lock()
	defer v.mu.Unlock()
	if obj := p.idx.Lookup(key.Inode, key.Block); obj != nil {
		p.idx.Remove(obj)
		m.releaseObject(obj)
	}
	return m.cfg.OpOverhead
}

// FlushInode handles the FLUSH_INODE op.
func (m *Manager) FlushInode(_ time.Duration, _ cleancache.VMID, pool cleancache.PoolID, inode uint64) time.Duration {
	m.mu.RLock()
	defer m.mu.RUnlock()
	p, ok := m.pools[pool]
	if !ok {
		return 0
	}
	v := p.vm
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, obj := range p.idx.RemoveInode(inode) {
		m.releaseObject(obj)
	}
	return m.cfg.OpOverhead
}

// MigrateInode handles the MIGRATE_OBJECT op: cached
// blocks of a shared file change pool ownership without moving data.
// Migration within one VM runs on the data path; the cross-VM case takes
// the store-level write lock, because two VM locks are never held at once.
func (m *Manager) MigrateInode(_ time.Duration, _ cleancache.VMID, from, to cleancache.PoolID, inode uint64) time.Duration {
	m.mu.RLock()
	src, okSrc := m.pools[from]
	dst, okDst := m.pools[to]
	if !okSrc || !okDst {
		m.mu.RUnlock()
		return 0
	}
	if src.vm == dst.vm {
		v := src.vm
		v.mu.Lock()
		m.migrateLocked(src, dst, inode)
		v.mu.Unlock()
		m.mu.RUnlock()
		return m.cfg.OpOverhead
	}
	m.mu.RUnlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	src, okSrc = m.pools[from]
	dst, okDst = m.pools[to]
	if !okSrc || !okDst {
		return 0
	}
	m.migrateLocked(src, dst, inode)
	return m.cfg.OpOverhead
}

func (m *Manager) migrateLocked(src, dst *poolState, inode uint64) {
	for _, obj := range src.idx.RemoveInode(inode) {
		if replaced := dst.idx.Insert(obj); replaced != nil {
			m.releaseObject(replaced)
		}
	}
}

// PoolStats handles the GET_STATS op. Counters are
// atomic snapshots; the entitlement figure needs the VM lock because it
// reads the sibling pools' specs.
func (m *Manager) PoolStats(_ cleancache.VMID, pool cleancache.PoolID) cleancache.PoolStats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	p, ok := m.pools[pool]
	if !ok {
		return cleancache.PoolStats{}
	}
	v := p.vm
	v.mu.Lock()
	defer v.mu.Unlock()
	s := p.counters.snapshot()
	s.UsedBytes = p.idx.TotalBytes()
	s.Objects = p.idx.Count()
	var ent int64
	for _, st := range []cgroup.StoreType{cgroup.StoreMem, cgroup.StoreSSD} {
		if p.usesStore(st) {
			ent += m.poolEntitlement(p, st)
		}
	}
	s.EntitlementBytes = ent
	return s
}

// --- policy: entitlements and Algorithm 1 ----------------------------------

// vmEntitlement computes a VM's share of the st store from the host-level
// weights (the per-VM ratio applies to both stores, per the paper).
// Callers hold Manager.mu in either mode.
//
// ddlint:requires-lock mu
func (m *Manager) vmEntitlement(v *vmState, st cgroup.StoreType) int64 {
	be := m.backend(st)
	if be == nil {
		return 0
	}
	weights := make([]int64, len(m.vmOrder))
	idx := -1
	for i, other := range m.vmOrder {
		weights[i] = other.weight
		if other == v {
			idx = i
		}
	}
	if idx < 0 {
		return 0
	}
	return policy.Shares(be.CapacityBytes(), weights)[idx]
}

// poolEntitlement computes a container's share of its VM's st partition.
// Callers hold the pool's VM lock or the store-level write lock (sibling
// specs are read).
//
// ddlint:requires-lock mu
func (m *Manager) poolEntitlement(p *poolState, st cgroup.StoreType) int64 {
	if !p.usesStore(st) {
		return 0
	}
	vmShare := m.vmEntitlement(p.vm, st)
	weights := make([]int64, len(p.vm.pools))
	idx := -1
	for i, other := range p.vm.pools {
		if other.usesStore(st) {
			weights[i] = int64(other.spec.Weight)
		}
		if other == p {
			idx = i
		}
	}
	if idx < 0 {
		return 0
	}
	return policy.Shares(vmShare, weights)[idx]
}

// enforceCapacity evicts from the st store until incoming bytes fit,
// selecting victims per Algorithm 1: first the victim VM, then the victim
// container within it, then FIFO within the container's pool, in
// EvictBatchBytes batches. Returns the (metadata) latency incurred.
// Requires Manager.mu held for writing.
//
// ddlint:requires-lock mu
func (m *Manager) enforceCapacity(now time.Duration, st cgroup.StoreType, incoming int64) time.Duration {
	be := m.backend(st)
	if be == nil {
		return 0
	}
	var lat time.Duration
	for be.UsedBytes()+incoming > be.CapacityBytes() {
		need := be.UsedBytes() + incoming - be.CapacityBytes()
		batch := m.cfg.EvictBatchBytes
		if batch < need {
			batch = need
		}
		freed := m.evictBatch(st, batch)
		if freed == 0 {
			break
		}
		lat += m.cfg.OpOverhead
	}
	return lat
}

// evictBatch frees up to batch bytes from the st store and returns the
// bytes actually freed. Requires Manager.mu held for writing.
//
// ddlint:requires-lock mu
func (m *Manager) evictBatch(st cgroup.StoreType, batch int64) int64 {
	if m.cfg.Mode == ModeGlobal {
		return m.evictGlobalFIFO(st, batch)
	}
	victimVM := m.selectVictimVM(st, batch)
	if victimVM == nil {
		return 0
	}
	victim := m.selectVictimPool(victimVM, st, batch)
	if victim == nil {
		return 0
	}
	var freed int64
	for freed < batch {
		obj := victim.idx.Oldest(st)
		if obj == nil {
			break
		}
		victim.idx.Remove(obj)
		m.releaseObject(obj)
		freed += obj.Size
		victim.counters.evictions.Add(1)
		m.totalEvictions.Add(1)
	}
	return freed
}

// evictGlobalFIFO implements the baseline's container-agnostic policy:
// evict the globally oldest objects regardless of which container (or VM)
// inserted them. Requires Manager.mu held for writing.
//
// ddlint:requires-lock mu
func (m *Manager) evictGlobalFIFO(st cgroup.StoreType, batch int64) int64 {
	var freed int64
	for freed < batch {
		var (
			victim *poolState
			oldest *index.Object
		)
		for _, v := range m.vmOrder {
			for _, p := range v.pools {
				obj := p.idx.Oldest(st)
				if obj == nil {
					continue
				}
				if oldest == nil || obj.Seq < oldest.Seq {
					victim, oldest = p, obj
				}
			}
		}
		if victim == nil {
			break
		}
		victim.idx.Remove(oldest)
		m.releaseObject(oldest)
		freed += oldest.Size
		victim.counters.evictions.Add(1)
		m.totalEvictions.Add(1)
	}
	return freed
}

// selectVictimVM picks the Algorithm 1 victim VM for an eviction of batch
// bytes from st. Requires Manager.mu held for writing.
//
// ddlint:requires-lock mu
func (m *Manager) selectVictimVM(st cgroup.StoreType, batch int64) *vmState {
	candidates := make([]*vmState, 0, len(m.vmOrder))
	ents := make([]policy.Entity, 0, len(m.vmOrder))
	for _, v := range m.vmOrder {
		used := v.usedBytes(st)
		if used == 0 {
			continue
		}
		candidates = append(candidates, v)
		ents = append(ents, policy.Entity{
			Weight:      v.weight,
			Entitlement: m.vmEntitlement(v, st),
			Used:        used,
		})
	}
	if len(candidates) == 0 {
		return nil
	}
	i := m.cfg.VictimSelector(ents, batch)
	if i < 0 {
		i = largestUser(ents)
	}
	if i < 0 {
		return nil
	}
	return candidates[i]
}

// selectVictimPool picks the Algorithm 1 victim container within v.
// Requires Manager.mu held for writing.
//
// ddlint:requires-lock mu
func (m *Manager) selectVictimPool(v *vmState, st cgroup.StoreType, batch int64) *poolState {
	candidates := make([]*poolState, 0, len(v.pools))
	ents := make([]policy.Entity, 0, len(v.pools))
	for _, p := range v.pools {
		used := p.idx.UsedBytes(st)
		if used == 0 {
			continue
		}
		candidates = append(candidates, p)
		ents = append(ents, policy.Entity{
			Weight:      int64(p.spec.Weight),
			Entitlement: m.poolEntitlement(p, st),
			Used:        used,
		})
	}
	if len(candidates) == 0 {
		return nil
	}
	i := m.cfg.VictimSelector(ents, batch)
	if i < 0 {
		i = largestUser(ents)
	}
	if i < 0 {
		return nil
	}
	return candidates[i]
}

func largestUser(ents []policy.Entity) int {
	best, bestUsed := -1, int64(0)
	for i, e := range ents {
		if e.Used > bestUsed {
			best, bestUsed = i, e.Used
		}
	}
	return best
}

// --- observation helpers for experiments -----------------------------------

// Contains reports whether a block is currently cached, without the
// exclusive-get side effect — an inspection hook for tests and tooling.
func (m *Manager) Contains(key cleancache.Key) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	p, ok := m.pools[key.Pool]
	if !ok {
		return false
	}
	v := p.vm
	v.mu.Lock()
	defer v.mu.Unlock()
	return p.idx.Lookup(key.Inode, key.Block) != nil
}

// PoolUsedBytes reports a pool's occupancy in the given store. Byte
// accounting is atomic, so this never blocks the data path.
func (m *Manager) PoolUsedBytes(pool cleancache.PoolID, st cgroup.StoreType) int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	p, ok := m.pools[pool]
	if !ok {
		return 0
	}
	return p.idx.UsedBytes(st)
}

// PoolTotalBytes reports a pool's occupancy across stores.
func (m *Manager) PoolTotalBytes(pool cleancache.PoolID) int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	p, ok := m.pools[pool]
	if !ok {
		return 0
	}
	return p.idx.TotalBytes()
}

// VMUsedBytes reports a VM's total occupancy in the given store.
func (m *Manager) VMUsedBytes(vm cleancache.VMID, st cgroup.StoreType) int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	v, ok := m.vms[vm]
	if !ok {
		return 0
	}
	return v.usedBytes(st)
}

// StoreUsedBytes reports a store's total occupancy.
func (m *Manager) StoreUsedBytes(st cgroup.StoreType) int64 {
	be := m.backend(st)
	if be == nil {
		return 0
	}
	return be.UsedBytes()
}

// TotalEvictions reports objects evicted by capacity enforcement since
// start.
func (m *Manager) TotalEvictions() int64 { return m.totalEvictions.Load() }

// DedupSavedBytes reports the cumulative physical bytes avoided by
// content deduplication (0 unless Config.Dedup).
func (m *Manager) DedupSavedBytes() int64 { return m.dedupSaved.Load() }
