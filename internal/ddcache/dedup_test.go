package ddcache

import (
	"testing"
	"testing/quick"

	"doubledecker/internal/blockdev"
	"doubledecker/internal/cgroup"
	"doubledecker/internal/cleancache"
	"doubledecker/internal/store"
)

func newDedupMgr(memCap int64) *Manager {
	return NewManager(Config{
		Mode:  ModeDD,
		Mem:   store.NewMem(blockdev.NewRAM("r"), memCap),
		Dedup: true,
	})
}

func TestDedupSharesPhysicalCopy(t *testing.T) {
	m := newDedupMgr(16 * mib)
	m.RegisterVM(1, 100)
	pa, _ := m.CreatePool(0, 1, "a", cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 50})
	pb, _ := m.CreatePool(0, 1, "b", cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 50})
	// Two containers cache copies of the same golden image: same content
	// ids, different keys.
	for i := int64(0); i < 100; i++ {
		m.Put(0, 1, key(pa, 1, i), uint64(1000+i))
		m.Put(0, 1, key(pb, 2, i), uint64(1000+i))
	}
	// Logical: both pools account their own copies.
	if got := m.PoolUsedBytes(pa, cgroup.StoreMem); got != 100*ObjectSize {
		t.Fatalf("pool a logical = %d", got)
	}
	if got := m.PoolUsedBytes(pb, cgroup.StoreMem); got != 100*ObjectSize {
		t.Fatalf("pool b logical = %d", got)
	}
	// Physical: one copy each.
	if got := m.StoreUsedBytes(cgroup.StoreMem); got != 100*ObjectSize {
		t.Fatalf("physical = %d, want %d", got, 100*ObjectSize)
	}
	if got := m.DedupSavedBytes(); got != 100*ObjectSize {
		t.Fatalf("saved = %d", got)
	}
}

func TestDedupRefcountOnRemoval(t *testing.T) {
	m := newDedupMgr(16 * mib)
	m.RegisterVM(1, 100)
	pa, _ := m.CreatePool(0, 1, "a", cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 50})
	pb, _ := m.CreatePool(0, 1, "b", cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 50})
	m.Put(0, 1, key(pa, 1, 0), 77)
	m.Put(0, 1, key(pb, 2, 0), 77)
	// Removing one reference keeps the physical copy.
	m.FlushPage(0, 1, key(pa, 1, 0))
	if got := m.StoreUsedBytes(cgroup.StoreMem); got != ObjectSize {
		t.Fatalf("physical after one flush = %d", got)
	}
	// Removing the last reference frees it.
	m.FlushPage(0, 1, key(pb, 2, 0))
	if got := m.StoreUsedBytes(cgroup.StoreMem); got != 0 {
		t.Fatalf("physical after both flushed = %d", got)
	}
}

func TestDedupZeroContentNotShared(t *testing.T) {
	m := newDedupMgr(16 * mib)
	m.RegisterVM(1, 100)
	p, _ := m.CreatePool(0, 1, "a", cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	m.Put(0, 1, key(p, 1, 0), 0) // unknown content
	m.Put(0, 1, key(p, 2, 0), 0)
	if got := m.StoreUsedBytes(cgroup.StoreMem); got != 2*ObjectSize {
		t.Fatalf("unknown-content objects deduped: %d", got)
	}
}

func TestDedupDisabledIgnoresContent(t *testing.T) {
	m := newMgr(ModeDD, 16*mib, 0)
	m.RegisterVM(1, 100)
	p, _ := m.CreatePool(0, 1, "a", cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	m.Put(0, 1, key(p, 1, 0), 42)
	m.Put(0, 1, key(p, 2, 0), 42)
	if got := m.StoreUsedBytes(cgroup.StoreMem); got != 2*ObjectSize {
		t.Fatalf("dedup happened while disabled: %d", got)
	}
	if m.DedupSavedBytes() != 0 {
		t.Fatal("savings reported while disabled")
	}
}

func TestDedupGetReleasesReference(t *testing.T) {
	m := newDedupMgr(16 * mib)
	m.RegisterVM(1, 100)
	pa, _ := m.CreatePool(0, 1, "a", cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 50})
	pb, _ := m.CreatePool(0, 1, "b", cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 50})
	m.Put(0, 1, key(pa, 1, 0), 5)
	m.Put(0, 1, key(pb, 2, 0), 5)
	if hit, _ := m.Get(0, 1, key(pa, 1, 0)); !hit {
		t.Fatal("get missed")
	}
	// The other reference still hits.
	if hit, _ := m.Get(0, 1, key(pb, 2, 0)); !hit {
		t.Fatal("shared copy lost with first get")
	}
	if got := m.StoreUsedBytes(cgroup.StoreMem); got != 0 {
		t.Fatalf("physical bytes leaked: %d", got)
	}
}

// Property: physical usage never exceeds logical usage, and both return
// to zero after all keys are flushed.
func TestPropertyDedupAccounting(t *testing.T) {
	prop := func(ops []struct {
		PoolB   bool
		Block   uint8
		Content uint8
	}) bool {
		m := newDedupMgr(64 * mib)
		m.RegisterVM(1, 100)
		pa, _ := m.CreatePool(0, 1, "a", cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 50})
		pb, _ := m.CreatePool(0, 1, "b", cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 50})
		for _, op := range ops {
			p := pa
			if op.PoolB {
				p = pb
			}
			m.Put(0, 1, key(p, 1, int64(op.Block)), uint64(op.Content))
			logical := m.PoolUsedBytes(pa, cgroup.StoreMem) + m.PoolUsedBytes(pb, cgroup.StoreMem)
			if m.StoreUsedBytes(cgroup.StoreMem) > logical {
				return false
			}
		}
		for _, p := range []cleancache.PoolID{pa, pb} {
			for b := int64(0); b < 256; b++ {
				m.FlushPage(0, 1, key(p, 1, b))
			}
		}
		return m.StoreUsedBytes(cgroup.StoreMem) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestInclusiveModeKeepsObjectOnGet(t *testing.T) {
	m := NewManager(Config{
		Mode:      ModeDD,
		Mem:       store.NewMem(blockdev.NewRAM("r"), 16*mib),
		Inclusive: true,
	})
	m.RegisterVM(1, 100)
	p, _ := m.CreatePool(0, 1, "c", cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	m.Put(0, 1, key(p, 1, 0), 0)
	if hit, _ := m.Get(0, 1, key(p, 1, 0)); !hit {
		t.Fatal("get missed")
	}
	// Inclusive: the copy survives the get.
	if hit, _ := m.Get(0, 1, key(p, 1, 0)); !hit {
		t.Fatal("inclusive cache dropped the object on get")
	}
	if got := m.StoreUsedBytes(cgroup.StoreMem); got != ObjectSize {
		t.Fatalf("used = %d", got)
	}
}
