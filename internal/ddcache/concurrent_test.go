package ddcache

import (
	"testing"

	"doubledecker/internal/blockdev"
	"doubledecker/internal/cgroup"
	"doubledecker/internal/cleancache"
	"doubledecker/internal/store"
)

// TestConcurrentMixedOps drives 4 VMs' worth of goroutines through mixed
// Get/Put/Flush/SetSpec traffic — with CreatePool/DestroyPool churn racing
// the data path — against one shared Manager. Run it with -race: the
// original unsynchronized manager fails here; the per-VM locking makes it
// pass. After quiescence the physical byte accounting must agree with the
// per-pool index accounting.
func TestConcurrentMixedOps(t *testing.T) {
	mem := store.NewMem(blockdev.NewRAM("ram"), 32<<20)
	ssd := store.NewSSD(blockdev.NewSSD("ssd"), 64<<20)
	m := NewManager(Config{Mode: ModeDD, Mem: mem, SSD: ssd})
	res := RunStress(m, StressOptions{
		VMs:          4,
		WorkersPerVM: 3,
		PoolsPerVM:   3,
		Ops:          4000,
		Seed:         1,
		Inodes:       64,
		Blocks:       64,
		PoolChurn:    true,
	})
	if want := int64(4 * 3 * 4000); res.Ops != want {
		t.Fatalf("ops = %d, want %d", res.Ops, want)
	}
	if res.Puts == 0 || res.GetHits == 0 {
		t.Fatalf("workload degenerate: %+v", res)
	}
	if res.PoolOps == 0 {
		t.Fatalf("pool churn never ran: %+v", res)
	}
	checkAccounting(t, m, 4)
}

// TestConcurrentDedup runs the same fan-out with content deduplication on,
// so cross-VM duplicate puts race on the shared content-reference table.
func TestConcurrentDedup(t *testing.T) {
	mem := store.NewMem(blockdev.NewRAM("ram"), 32<<20)
	m := NewManager(Config{Mode: ModeDD, Mem: mem, Dedup: true})
	res := RunStress(m, StressOptions{
		VMs:          4,
		WorkersPerVM: 2,
		PoolsPerVM:   2,
		Ops:          4000,
		Seed:         2,
		Inodes:       32,
		Blocks:       32,
		Content:      true,
	})
	if res.Puts == 0 {
		t.Fatalf("no puts accepted: %+v", res)
	}
	if m.DedupSavedBytes() < 0 {
		t.Fatalf("negative dedup savings: %d", m.DedupSavedBytes())
	}
	// With sharing, physical occupancy cannot exceed the logical total.
	var logical int64
	for vm := 1; vm <= 4; vm++ {
		logical += m.VMUsedBytes(cleancache.VMID(vm), cgroup.StoreMem)
	}
	if phys := m.StoreUsedBytes(cgroup.StoreMem); phys > logical {
		t.Fatalf("physical bytes %d exceed logical bytes %d", phys, logical)
	}
}

// TestConcurrentCapacityShrink races dynamic capacity reconfiguration
// against the data path (the paper's dynamic re-provisioning, made safe).
func TestConcurrentCapacityShrink(t *testing.T) {
	mem := store.NewMem(blockdev.NewRAM("ram"), 64<<20)
	m := NewManager(Config{Mode: ModeDD, Mem: mem})
	done := make(chan struct{})
	go func() {
		defer close(done)
		sizes := []int64{48 << 20, 16 << 20, 32 << 20, 64 << 20}
		for i := 0; i < 200; i++ {
			m.SetMemCapacity(0, sizes[i%len(sizes)])
		}
	}()
	RunStress(m, StressOptions{
		VMs:          4,
		WorkersPerVM: 2,
		PoolsPerVM:   2,
		Ops:          3000,
		Seed:         3,
		Inodes:       64,
		Blocks:       64,
	})
	<-done
	checkAccounting(t, m, 4)
}

// checkAccounting verifies, at quiescence and without deduplication, that
// each backend's physical occupancy equals the sum of the per-pool index
// accounting — the invariant unsynchronized counters corrupt first.
func checkAccounting(t *testing.T, m *Manager, vms int) {
	t.Helper()
	for _, st := range []cgroup.StoreType{cgroup.StoreMem, cgroup.StoreSSD} {
		var logical int64
		for vm := 1; vm <= vms; vm++ {
			logical += m.VMUsedBytes(cleancache.VMID(vm), st)
		}
		if phys := m.StoreUsedBytes(st); phys != logical {
			t.Errorf("%v: physical bytes %d != indexed bytes %d", st, phys, logical)
		}
	}
}
