package ddcache_test

// Model-based differential tests: the sharded Manager is checked
// op-for-op against the deliberately naive sequential oracle
// (internal/ddcache/oracle). Both implementations receive the same
// deterministic op stream; verdicts, latencies, statistics and occupancy
// must agree after every op, with a deep structural comparison at every
// barrier. A linearizability-style variant drives concurrent per-VM
// streams (run under -race by the scaling CI job) and then replays the
// recorded logs through the oracle as one sequential interleaving.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"doubledecker/internal/blockdev"
	"doubledecker/internal/cgroup"
	"doubledecker/internal/cleancache"
	"doubledecker/internal/ddcache"
	"doubledecker/internal/ddcache/oracle"
	"doubledecker/internal/store"
	"doubledecker/internal/store/remote"
)

// duo drives a sharded Manager and a sequential Oracle in lockstep.
type duo struct {
	t testing.TB
	m *ddcache.Manager
	o *oracle.Oracle

	// the oracle's stores, for physical-usage compares
	oMem, oSSD, oRemote store.Backend
	memCap              int64
	ssdCap              int64
	remoteCap           int64
	dedup               bool

	vms     []cleancache.VMID
	created []cleancache.PoolID // every pool id ever returned
	live    []cleancache.PoolID
	now     time.Duration
	nops    int
}

func newDuo(t testing.TB, mode ddcache.Mode, memCap, ssdCap, batch int64, dedup bool) *duo {
	return newTieredDuo(t, mode, memCap, ssdCap, 0, batch, dedup)
}

// newTieredDuo builds a manager/oracle pair over up to three tiers. The
// remote tier's modeled latencies are a pure function of the call
// sequence (see store/remote), so the two independent instances stay in
// lockstep and even slow-hit latencies must compare equal.
func newTieredDuo(t testing.TB, mode ddcache.Mode, memCap, ssdCap, remoteCap, batch int64, dedup bool) *duo {
	mcfg := ddcache.Config{Mode: mode, EvictBatchBytes: batch, Dedup: dedup}
	ocfg := oracle.Config{Mode: oracle.Mode(mode), EvictBatchBytes: batch, Dedup: dedup}
	d := &duo{t: t, memCap: memCap, ssdCap: ssdCap, remoteCap: remoteCap, dedup: dedup}
	if memCap > 0 {
		mcfg.Mem = store.NewMem(blockdev.NewRAM("m.ram"), memCap)
		d.oMem = store.NewMem(blockdev.NewRAM("o.ram"), memCap)
		ocfg.Mem = d.oMem
	}
	if ssdCap > 0 {
		mcfg.SSD = store.NewSSD(blockdev.NewSSD("m.ssd"), ssdCap)
		d.oSSD = store.NewSSD(blockdev.NewSSD("o.ssd"), ssdCap)
		ocfg.SSD = d.oSSD
	}
	if remoteCap > 0 {
		// A small demotion queue keeps the drain triggers firing often.
		dq := ddcache.DemotionConfig{MaxDirtyBytes: 64 << 10, BatchBytes: 16 << 10}
		mcfg.Remote = remote.New(remote.Config{CapacityBytes: remoteCap})
		mcfg.Demotion = dq
		d.oRemote = remote.New(remote.Config{CapacityBytes: remoteCap})
		ocfg.Remote = d.oRemote
		ocfg.Demotion = oracle.DemotionConfig(dq)
	}
	d.m = ddcache.NewManager(mcfg)
	d.o = oracle.New(ocfg)
	for i, w := range []int64{100, 80, 60, 40} {
		vm := cleancache.VMID(i + 1)
		d.m.RegisterVM(vm, w)
		d.o.RegisterVM(vm, w)
		d.vms = append(d.vms, vm)
	}
	return d
}

// step dispatches req to both implementations and requires identical
// responses (verdict, allocated pool, stats and latency — the device
// models are deterministic, so even latencies must agree sequentially).
func (d *duo) step(req cleancache.Request) cleancache.Response {
	rm := d.m.Dispatch(d.now, req)
	ro := d.o.Dispatch(d.now, req)
	if rm.Ok != ro.Ok || rm.Pool != ro.Pool || rm.Count != ro.Count || rm.Stats != ro.Stats || rm.Latency != ro.Latency {
		d.t.Fatalf("op %d (%v vm=%d key=%+v) diverged:\n  manager %+v\n  oracle  %+v",
			d.nops, req.Op, req.VM, req.Key, rm, ro)
	}
	if req.Op == cleancache.OpCreateCgroup && rm.Pool != 0 {
		d.created = append(d.created, rm.Pool)
		d.live = append(d.live, rm.Pool)
	}
	if req.Op == cleancache.OpDestroyCgroup {
		for i, id := range d.live {
			if id == req.Key.Pool {
				d.live = append(d.live[:i], d.live[i+1:]...)
				break
			}
		}
	}
	d.now += rm.Latency + time.Microsecond
	d.nops++
	return rm
}

// allTiers is every concrete tier a three-level run can place objects
// in; two-tier duos compare zero against zero for the remote slot.
var allTiers = []cgroup.StoreType{cgroup.StoreMem, cgroup.StoreSSD, cgroup.StoreRemote}

// barrier deep-compares every pool and VM the run has ever seen, plus
// the global invariants the sharded implementation must preserve.
func (d *duo) barrier() {
	t := d.t
	for _, id := range d.created {
		for _, st := range allTiers {
			if got, want := d.m.PoolUsedBytes(id, st), d.o.PoolUsedBytes(id, st); got != want {
				t.Fatalf("op %d: pool %d used[%v]: manager %d, oracle %d", d.nops, id, st, got, want)
			}
			if got, want := d.m.PoolEntitlement(id, st), d.o.PoolEntitlement(id, st); got != want {
				t.Fatalf("op %d: pool %d entitlement[%v]: manager %d, oracle %d", d.nops, id, st, got, want)
			}
		}
		if got, want := d.m.PoolTotalBytes(id), d.o.PoolTotalBytes(id); got != want {
			t.Fatalf("op %d: pool %d total bytes: manager %d, oracle %d", d.nops, id, got, want)
		}
		if got, want := d.m.PoolStats(0, id), d.o.PoolStats(0, id); got != want {
			t.Fatalf("op %d: pool %d stats:\n  manager %+v\n  oracle  %+v", d.nops, id, got, want)
		}
	}
	var entSum [3]int64
	for _, vm := range d.vms {
		for si, st := range allTiers {
			got, want := d.m.VMEntitlement(vm, st), d.o.VMEntitlement(vm, st)
			if got != want {
				t.Fatalf("op %d: vm %d entitlement[%v]: manager %d, oracle %d", d.nops, vm, st, got, want)
			}
			entSum[si] += got
		}
	}
	// Entitlements sum to capacity (every registered VM has positive
	// weight, so the largest-remainder shares are exhaustive).
	for si, cap := range []int64{d.memCap, d.ssdCap, d.remoteCap} {
		if cap > 0 && entSum[si] != cap {
			t.Fatalf("op %d: VM entitlements sum to %d, want capacity %d (store %v)", d.nops, entSum[si], cap, allTiers[si])
		}
	}
	// Physical usage: manager store vs oracle store, and ≤ capacity
	// (sequential runs never overshoot).
	oracleStores := []store.Backend{d.oMem, d.oSSD, d.oRemote}
	for si, st := range allTiers {
		want := int64(0)
		if oracleStores[si] != nil {
			want = oracleStores[si].UsedBytes()
		}
		if got := d.m.StoreUsedBytes(st); got != want {
			t.Fatalf("op %d: store %v used: manager %d, oracle %d", d.nops, st, got, want)
		}
		caps := []int64{d.memCap, d.ssdCap, d.remoteCap}
		if caps[si] > 0 && want > caps[si] {
			t.Fatalf("op %d: store %v used %d exceeds capacity %d", d.nops, st, want, caps[si])
		}
	}
	if got, want := d.m.TotalEvictions(), d.o.TotalEvictions(); got != want {
		t.Fatalf("op %d: total evictions: manager %d, oracle %d", d.nops, got, want)
	}
	if got, want := d.m.DemotionStats(), ddcache.DemotionStats(d.o.DemotionStats()); got != want {
		t.Fatalf("op %d: demotion stats:\n  manager %+v\n  oracle  %+v", d.nops, got, want)
	}
	if got, want := d.m.DedupSavedBytes(), d.o.DedupSavedBytes(); got != want {
		t.Fatalf("op %d: dedup saved: manager %d, oracle %d", d.nops, got, want)
	}
	if minRef, any := d.m.DedupMinRef(); any && minRef < 1 {
		t.Fatalf("op %d: dedup refcount dropped to %d", d.nops, minRef)
	}
}

// run drives ops deterministic operations from seed through both
// implementations, with a barrier every 4096 ops and at the end.
func (d *duo) run(seed int64, ops int) {
	rng := rand.New(rand.NewSource(seed))
	storeChoices := []cgroup.StoreType{0, cgroup.StoreMem}
	if d.ssdCap > 0 {
		storeChoices = append(storeChoices, cgroup.StoreSSD, cgroup.StoreHybrid)
	}
	if d.remoteCap > 0 {
		storeChoices = append(storeChoices, cgroup.StoreRemote)
		if d.ssdCap == 0 {
			// mem+remote: hybrid pools demote mem→remote directly.
			storeChoices = append(storeChoices, cgroup.StoreHybrid)
		}
	}
	randSpec := func() cgroup.HCacheSpec {
		return cgroup.HCacheSpec{
			Store:  storeChoices[rng.Intn(len(storeChoices))],
			Weight: rng.Intn(150) - 10, // includes ≤0: exercises the keep-old/default rules
		}
	}
	randPool := func() cleancache.PoolID {
		if len(d.live) == 0 || rng.Intn(50) == 0 {
			return cleancache.PoolID(7777) // unknown pool: miss paths
		}
		return d.live[rng.Intn(len(d.live))]
	}
	for i := 0; i < ops; i++ {
		vm := d.vms[rng.Intn(len(d.vms))]
		r := rng.Intn(1000)
		switch {
		case len(d.live) == 0 || (r < 15 && len(d.live) < 8):
			d.step(cleancache.Request{Op: cleancache.OpCreateCgroup, VM: vm, Name: fmt.Sprintf("p%d", d.nops), Spec: randSpec()})
		case r < 22:
			d.step(cleancache.Request{Op: cleancache.OpDestroyCgroup, VM: vm, Key: cleancache.Key{Pool: randPool()}})
		case r < 50:
			d.step(cleancache.Request{Op: cleancache.OpSetCgWeight, VM: vm, Key: cleancache.Key{Pool: randPool()}, Spec: randSpec()})
		case r < 60:
			w := int64(1 + rng.Intn(200))
			d.m.SetVMWeight(vm, w)
			d.o.SetVMWeight(vm, w)
		case r < 75:
			d.step(cleancache.Request{
				Op: cleancache.OpMigrateObject, VM: vm,
				Key: cleancache.Key{Pool: randPool(), Inode: uint64(1 + rng.Intn(24))},
				To:  randPool(),
			})
		case r < 90:
			d.step(cleancache.Request{Op: cleancache.OpGetStats, VM: vm, Key: cleancache.Key{Pool: randPool()}})
		case r < 95 && d.memCap > 0:
			n := d.memCap/2 + rng.Int63n(d.memCap)
			lm := d.m.SetMemCapacity(d.now, n)
			lo := d.o.SetMemCapacity(d.now, n)
			if lm != lo {
				d.t.Fatalf("op %d: SetMemCapacity(%d) latency: manager %v, oracle %v", d.nops, n, lm, lo)
			}
			d.memCap = n
			d.now += lm + time.Microsecond
			d.nops++
		case r < 98 && d.ssdCap > 0:
			n := d.ssdCap/2 + rng.Int63n(d.ssdCap)
			lm := d.m.SetSSDCapacity(d.now, n)
			lo := d.o.SetSSDCapacity(d.now, n)
			if lm != lo {
				d.t.Fatalf("op %d: SetSSDCapacity(%d) latency: manager %v, oracle %v", d.nops, n, lm, lo)
			}
			d.ssdCap = n
			d.now += lm + time.Microsecond
			d.nops++
		case r < 100 && d.remoteCap > 0:
			n := d.remoteCap/2 + rng.Int63n(d.remoteCap)
			lm := d.m.SetRemoteCapacity(d.now, n)
			lo := d.o.SetRemoteCapacity(d.now, n)
			if lm != lo {
				d.t.Fatalf("op %d: SetRemoteCapacity(%d) latency: manager %v, oracle %v", d.nops, n, lm, lo)
			}
			d.remoteCap = n
			d.now += lm + time.Microsecond
			d.nops++
		default:
			key := cleancache.Key{Pool: randPool(), Inode: uint64(1 + rng.Intn(24)), Block: rng.Int63n(24)}
			req := cleancache.Request{VM: vm, Key: key}
			switch x := rng.Intn(100); {
			case x < 50:
				req.Op = cleancache.OpPut
				if d.dedup && rng.Intn(4) > 0 {
					// Heavy sharing across pools and VMs; one put in four
					// stays content-free so the demotion path (which skips
					// dedup'd objects) is exercised in dedup runs too.
					req.Content = 1 + uint64(rng.Intn(40))
				}
			case x < 78:
				req.Op = cleancache.OpGet
			case x < 85:
				req.Op = cleancache.OpReadAhead
				req.Count = 1 + rng.Int63n(8)
			case x < 95:
				req.Op = cleancache.OpFlushPage
			default:
				req.Op = cleancache.OpFlushInode
			}
			d.step(req)
		}
		if d.nops%4096 == 0 {
			d.barrier()
		}
	}
	d.barrier()
}

// TestDifferentialOracle is the acceptance-criteria run: ≥100k ops
// across 3 seeds, each seed a different configuration, every op compared
// against the sequential model.
func TestDifferentialOracle(t *testing.T) {
	cases := []struct {
		name   string
		seed   int64
		mode   ddcache.Mode
		memCap int64
		ssdCap int64
		batch  int64
		dedup  bool
		ops    int
	}{
		{name: "dd-hybrid-dedup", seed: 1, mode: ddcache.ModeDD, memCap: 2 << 20, ssdCap: 4 << 20, batch: 256 << 10, dedup: true, ops: 50000},
		{name: "dd-mem-only", seed: 2, mode: ddcache.ModeDD, memCap: 1 << 20, batch: 64 << 10, ops: 50000},
		{name: "global-baseline", seed: 3, mode: ddcache.ModeGlobal, memCap: 2 << 20, ssdCap: 2 << 20, batch: 256 << 10, dedup: true, ops: 50000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := newDuo(t, tc.mode, tc.memCap, tc.ssdCap, tc.batch, tc.dedup)
			d.run(tc.seed, tc.ops)
		})
	}
}

// TestDifferentialOracleThreeTier extends the acceptance run to the
// remote tier: 3 seeds × 50k ops with capacities tight enough that
// evictions continuously demote down the ladder and gets routinely come
// back as slow remote hits. Per-op latency equality covers the modeled
// remote round trips, and every barrier compares the demotion queues'
// full counter sets — so a divergence in write-behind ordering, dirtiness
// accounting or drop policy is caught within 4096 ops.
func TestDifferentialOracleThreeTier(t *testing.T) {
	cases := []struct {
		name      string
		seed      int64
		memCap    int64
		ssdCap    int64
		remoteCap int64
		batch     int64
		dedup     bool
		ops       int
	}{
		{name: "three-tier-hybrid", seed: 11, memCap: 1 << 20, ssdCap: 2 << 20, remoteCap: 8 << 20, batch: 128 << 10, ops: 50000},
		{name: "three-tier-dedup", seed: 12, memCap: 1 << 20, ssdCap: 1 << 20, remoteCap: 4 << 20, batch: 64 << 10, dedup: true, ops: 50000},
		{name: "mem-remote", seed: 13, memCap: 1 << 20, remoteCap: 4 << 20, batch: 64 << 10, ops: 50000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := newTieredDuo(t, ddcache.ModeDD, tc.memCap, tc.ssdCap, tc.remoteCap, tc.batch, tc.dedup)
			d.run(tc.seed, tc.ops)
			// Quiesce: both queues must drain identically, to empty.
			lm := d.m.FlushDemotions(d.now)
			lo := d.o.FlushDemotions(d.now)
			if lm != lo {
				t.Fatalf("final FlushDemotions latency: manager %v, oracle %v", lm, lo)
			}
			d.barrier()
			ds := d.m.DemotionStats()
			if ds.DirtyBytes != 0 || ds.DirtyObjects != 0 {
				t.Fatalf("demotion queue not empty after flush: %+v", ds)
			}
			if tc.remoteCap > 0 && ds.Enqueued == 0 {
				t.Fatalf("run produced no demotions — workload does not exercise the tier ladder")
			}
		})
	}
}

// recordedOp is one entry of a per-VM op log: the request and the
// verdict the concurrent manager produced.
type recordedOp struct {
	req cleancache.Request
	ok  bool
}

// TestDifferentialLinearizable drives concurrent per-VM streams against
// the sharded manager, then replays the logs through the sequential
// oracle as one interleaving and requires every recorded verdict to
// reproduce.
//
// The workload is constructed so the per-VM streams commute: each VM
// touches only its own pools, content identities are partitioned per VM,
// and capacity is ample (no eviction, no put rejects), so every
// interleaving of the per-VM logs is equivalent — if the concurrent run
// was linearizable at all, the round-robin merge is a witness. A verdict
// the oracle cannot reproduce therefore means the concurrent run matches
// NO sequential interleaving (lost update, resurrected object, leaked
// dedup reference...), which is exactly what this test exists to catch.
func TestDifferentialLinearizable(t *testing.T) {
	const (
		vms      = 4
		poolsPer = 2
		opsPerVM = 5000
		memCap   = int64(64 << 20) // ample: the workload never fills it
	)
	mgr := ddcache.NewManager(ddcache.Config{
		Mode:  ddcache.ModeDD,
		Mem:   store.NewMem(blockdev.NewRAM("m.ram"), memCap),
		Dedup: true,
	})
	oMem := store.NewMem(blockdev.NewRAM("o.ram"), memCap)
	orc := oracle.New(oracle.Config{Mode: oracle.ModeDD, Mem: oMem, Dedup: true})

	// Sequential setup on both: identical pool ids.
	pools := make([][]cleancache.PoolID, vms)
	for v := 0; v < vms; v++ {
		vm := cleancache.VMID(v + 1)
		mgr.RegisterVM(vm, 100)
		orc.RegisterVM(vm, 100)
		for p := 0; p < poolsPer; p++ {
			req := cleancache.Request{Op: cleancache.OpCreateCgroup, VM: vm, Name: "lin", Spec: cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100}}
			rm := mgr.Dispatch(0, req)
			ro := orc.Dispatch(0, req)
			if rm.Pool != ro.Pool {
				t.Fatalf("setup: pool ids diverged (%d vs %d)", rm.Pool, ro.Pool)
			}
			pools[v] = append(pools[v], rm.Pool)
		}
	}

	// Concurrent phase: one goroutine per VM, recording its log.
	logs := make([][]recordedOp, vms)
	var wg sync.WaitGroup
	for v := 0; v < vms; v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			vm := cleancache.VMID(v + 1)
			rng := rand.New(rand.NewSource(int64(100 + v)))
			log := make([]recordedOp, 0, opsPerVM)
			for i := 0; i < opsPerVM; i++ {
				pool := pools[v][rng.Intn(poolsPer)]
				key := cleancache.Key{Pool: pool, Inode: uint64(1 + rng.Intn(16)), Block: rng.Int63n(16)}
				req := cleancache.Request{VM: vm, Key: key}
				switch r := rng.Intn(100); {
				case r < 45:
					req.Op = cleancache.OpPut
					// Content partitioned per VM: streams commute.
					req.Content = uint64(v+1)<<32 | uint64(1+rng.Intn(8))
				case r < 80:
					req.Op = cleancache.OpGet
				case r < 90:
					req.Op = cleancache.OpFlushPage
				case r < 95:
					req.Op = cleancache.OpFlushInode
				default:
					req.Op = cleancache.OpMigrateObject
					req.To = pools[v][rng.Intn(poolsPer)]
				}
				resp := mgr.Dispatch(0, req)
				log = append(log, recordedOp{req: req, ok: resp.Ok})
			}
			logs[v] = log
		}(v)
	}
	wg.Wait()

	// Replay the round-robin merge through the oracle.
	for i := 0; i < opsPerVM; i++ {
		for v := 0; v < vms; v++ {
			rec := logs[v][i]
			resp := orc.Dispatch(0, rec.req)
			wantOk := rec.ok
			switch rec.req.Op {
			case cleancache.OpGet, cleancache.OpPut:
				if resp.Ok != wantOk {
					t.Fatalf("replay vm %d op %d (%v %+v): concurrent run said ok=%v, sequential oracle says ok=%v",
						v+1, i, rec.req.Op, rec.req.Key, wantOk, resp.Ok)
				}
			}
		}
	}

	// Final states must agree exactly.
	for v := 0; v < vms; v++ {
		for _, id := range pools[v] {
			if got, want := mgr.PoolStats(0, id), orc.PoolStats(0, id); got != want {
				t.Fatalf("pool %d final stats:\n  manager %+v\n  oracle  %+v", id, got, want)
			}
			if got, want := mgr.PoolTotalBytes(id), orc.PoolTotalBytes(id); got != want {
				t.Fatalf("pool %d final bytes: manager %d, oracle %d", id, got, want)
			}
		}
	}
	if got, want := mgr.StoreUsedBytes(cgroup.StoreMem), oMem.UsedBytes(); got != want {
		t.Fatalf("final store usage: manager %d, oracle %d", got, want)
	}
	if got, want := mgr.DedupSavedBytes(), orc.DedupSavedBytes(); got != want {
		t.Fatalf("final dedup saved: manager %d, oracle %d", got, want)
	}
}
