// Write-behind demotion: the machinery that turns evictions into moves
// down the tier ladder (mem → SSD → remote) instead of drops.
//
// Eviction under a store's token re-homes each victim object to the next
// tier its pool uses, marks it Pending, and queues it here; the actual
// device write happens later, batched, when a put observes the queue's
// dirty bytes over the batch threshold (or at an explicit flush point:
// capacity changes, migration, FlushDemotions). Between enqueue and
// drain the object's bytes live only in this queue's modeled buffer —
// charged to no backend — and every invalidation path cancels the entry
// by clearing Pending under the VM lock (see Manager.releaseObject), so
// a demoted-then-staled block can never be written back and resurrect.
//
// The queue is a fixed-capacity ring, the same idiom as the hypercall
// transport's rings: entries are appended at tail, drained from head,
// and a full ring refuses admission (the eviction falls back to a plain
// drop). Dirtiness is doubly bounded — MaxDirtyBytes and MaxDirtyObjects
// — and the bound is enforced at admission, so dirty bytes can never
// exceed the configured ceiling at any interleaving.
//
// Lock discipline: demoteQueue.mu is a leaf (level 4) guarding only the
// ring arithmetic; it is taken under VM locks on the enqueue path and
// with no locks held on the pop path. The drain itself acquires VM locks
// and eviction tokens strictly one at a time, in hierarchy order.
package ddcache

import (
	"sync"
	"sync/atomic"
	"time"

	"doubledecker/internal/index"
)

// DemotionConfig bounds the write-behind demotion queue.
type DemotionConfig struct {
	// MaxDirtyBytes caps the bytes buffered awaiting write-behind
	// (default 8 MiB). Evictions that would exceed it drop instead.
	MaxDirtyBytes int64
	// MaxDirtyObjects caps the queued object count (default
	// MaxDirtyBytes/ObjectSize).
	MaxDirtyObjects int64
	// BatchBytes is the dirty-byte threshold at which the next put
	// drains the queue (default 2 MiB, the eviction batch size).
	BatchBytes int64
}

func (c *DemotionConfig) defaults() {
	if c.MaxDirtyBytes <= 0 {
		c.MaxDirtyBytes = 8 << 20
	}
	if c.MaxDirtyObjects <= 0 {
		c.MaxDirtyObjects = c.MaxDirtyBytes / ObjectSize
		if c.MaxDirtyObjects <= 0 {
			c.MaxDirtyObjects = 1
		}
	}
	if c.BatchBytes <= 0 {
		c.BatchBytes = DefaultEvictBatch
	}
}

// DemotionStats is a snapshot of the write-behind queue's counters.
// Conservation invariant (at quiesce): Enqueued == Drained + Cancelled +
// DroppedFull + DroppedError + DroppedBreaker + DirtyObjects.
type DemotionStats struct {
	Enqueued  int64 // demotions admitted to the queue
	Drained   int64 // demotions written to their target backend
	Cancelled int64 // entries invalidated before the drain reached them
	// DroppedFull, DroppedError and DroppedBreaker count queued
	// demotions that became true evictions at drain time: the target was
	// still full after enforcement, the device write failed, or the
	// target's breaker was open.
	DroppedFull    int64
	DroppedError   int64
	DroppedBreaker int64
	DirtyBytes     int64 // bytes currently buffered
	DirtyObjects   int64 // objects currently buffered
	MaxDirtyBytes  int64 // high-water mark of DirtyBytes
}

// demoteEntry is one queued write-behind demotion. The entry pins the
// pool whose VM lock guards obj.Pending; a Pending object never changes
// pools (migration drops it instead), so the pin stays valid for the
// entry's lifetime.
type demoteEntry struct {
	p   *poolState
	obj *index.Object
}

// demoteQueue is the bounded write-behind ring. Counters are atomic so
// the put-path trigger check (ready) and stat snapshots never take the
// ring mutex.
type demoteQueue struct {
	cfg DemotionConfig

	// mu guards the ring arithmetic only (leaf lock, level 4).
	mu   sync.Mutex
	ring []demoteEntry // ddlint:guarded-by mu
	head int           // ddlint:guarded-by mu
	n    int           // ddlint:guarded-by mu

	dirtyBytes    atomic.Int64
	dirtyObjects  atomic.Int64
	maxDirtyBytes atomic.Int64
	enqueued      atomic.Int64
	drained       atomic.Int64
	cancelled     atomic.Int64
	dropsFull     atomic.Int64
	dropsError    atomic.Int64
	dropsBreaker  atomic.Int64
}

// newDemoteQueue returns an empty queue with cfg's zero fields defaulted.
func newDemoteQueue(cfg DemotionConfig) *demoteQueue {
	cfg.defaults()
	return &demoteQueue{
		cfg:  cfg,
		ring: make([]demoteEntry, cfg.MaxDirtyObjects),
	}
}

// tryEnqueue admits one demotion, reporting false when either dirtiness
// bound (or the ring itself — cancelled entries occupy their slot until
// popped) is at capacity. Bound check and append are one critical
// section, so concurrent evictors on different stores cannot overshoot
// the dirtiness ceiling between check and insert.
func (q *demoteQueue) tryEnqueue(p *poolState, obj *index.Object) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.n == len(q.ring) ||
		q.dirtyObjects.Load() >= q.cfg.MaxDirtyObjects ||
		q.dirtyBytes.Load()+obj.Size > q.cfg.MaxDirtyBytes {
		return false
	}
	q.ring[(q.head+q.n)%len(q.ring)] = demoteEntry{p: p, obj: obj}
	q.n++
	q.dirtyObjects.Add(1)
	nb := q.dirtyBytes.Add(obj.Size)
	for {
		hw := q.maxDirtyBytes.Load()
		if nb <= hw || q.maxDirtyBytes.CompareAndSwap(hw, nb) {
			break
		}
	}
	q.enqueued.Add(1)
	return true
}

// pop removes the oldest entry; ok is false when the ring is empty.
func (q *demoteQueue) pop() (e demoteEntry, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.n == 0 {
		return demoteEntry{}, false
	}
	e = q.ring[q.head]
	q.ring[q.head] = demoteEntry{}
	q.head = (q.head + 1) % len(q.ring)
	q.n--
	return e, true
}

// ready reports whether the queue's dirty bytes have reached the batch
// threshold. Nil-safe; lock-free.
func (q *demoteQueue) ready() bool {
	return q != nil && q.dirtyBytes.Load() >= q.cfg.BatchBytes
}

// cancel settles the dirtiness accounting for an invalidated entry. The
// caller (releaseObject) has already cleared Pending under the VM lock;
// the ring slot stays occupied until the next drain pops and skips it.
func (q *demoteQueue) cancel(size int64) {
	q.dirtyBytes.Add(-size)
	q.dirtyObjects.Add(-1)
	q.cancelled.Add(1)
}

// settle settles the accounting for an entry leaving the queue at drain
// time, crediting the given outcome counter.
func (q *demoteQueue) settle(size int64, outcome *atomic.Int64) {
	q.dirtyBytes.Add(-size)
	q.dirtyObjects.Add(-1)
	outcome.Add(1)
}

// snapshot returns the queue's counters. Nil-safe (all zeros).
func (q *demoteQueue) snapshot() DemotionStats {
	if q == nil {
		return DemotionStats{}
	}
	return DemotionStats{
		Enqueued:       q.enqueued.Load(),
		Drained:        q.drained.Load(),
		Cancelled:      q.cancelled.Load(),
		DroppedFull:    q.dropsFull.Load(),
		DroppedError:   q.dropsError.Load(),
		DroppedBreaker: q.dropsBreaker.Load(),
		DirtyBytes:     q.dirtyBytes.Load(),
		DirtyObjects:   q.dirtyObjects.Load(),
		MaxDirtyBytes:  q.maxDirtyBytes.Load(),
	}
}

// DemotionStats snapshots the write-behind queue (all zeros when no
// remote backend is configured).
func (m *Manager) DemotionStats() DemotionStats { return m.demote.snapshot() }

// DemotionDirtyBytes reports the bytes currently buffered in the
// write-behind queue. Lock-free.
func (m *Manager) DemotionDirtyBytes() int64 {
	if m.demote == nil {
		return 0
	}
	return m.demote.dirtyBytes.Load()
}

// FlushDemotions force-drains the write-behind queue (quiesce, teardown,
// tests), returning the latency the drain incurred.
func (m *Manager) FlushDemotions(now time.Duration) time.Duration {
	return m.drainDemotions(now)
}

// drainDemotions empties the queue: each live entry is written to its
// target backend (evicting there first if full), and settled entries are
// skipped. Latencies accumulate onto the caller's clock — the op that
// triggered the drain is charged for the batch. Nil-safe. Callers hold
// no VM lock and no eviction token; the drain takes each strictly in
// hierarchy order, one at a time.
func (m *Manager) drainDemotions(now time.Duration) time.Duration {
	if m.demote == nil {
		return 0
	}
	var lat time.Duration
	for {
		e, ok := m.demote.pop()
		if !ok {
			return lat
		}
		lat += m.drainOne(now+lat, e)
	}
}

// drainOne lands one queued demotion. The entry may have been cancelled
// (Pending already false — accounting settled at cancel time), the
// target may need eviction room, the target's breaker may be open, or
// the device write may fail; every terminal outcome settles the
// dirtiness accounting exactly once.
func (m *Manager) drainOne(now time.Duration, e demoteEntry) time.Duration {
	q := m.demote
	p := e.p
	v := p.vm
	var lat time.Duration
	v.mu.Lock()
	defer v.mu.Unlock()
	if !e.obj.Pending {
		return 0 // cancelled before the drain got here; nothing to write
	}
	st := e.obj.Store
	be := m.backend(st)
	if be == nil || be.CapacityBytes() <= 0 {
		m.dropPending(p, e.obj, &q.dropsFull)
		return 0
	}
	if be.UsedBytes()+e.obj.Size > be.CapacityBytes() {
		// Make room under the target's eviction token; VM locks sit
		// below tokens in the hierarchy, so release ours first. The
		// enforcement may itself queue demotions one tier further down
		// (SSD → remote); the drain loop picks those up, and the ladder
		// terminates because remote evictions are plain drops.
		v.mu.Unlock()
		lat += m.enforceCapacity(now+lat, st, e.obj.Size)
		v.mu.Lock()
		if !e.obj.Pending {
			return lat // cancelled while unlocked
		}
		if be.UsedBytes()+e.obj.Size > be.CapacityBytes() {
			m.dropPending(p, e.obj, &q.dropsFull)
			return lat
		}
	}
	if !m.tierBreaker(st).allow(now + lat) {
		m.dropPending(p, e.obj, &q.dropsBreaker)
		return lat
	}
	slat, err := be.Store(now+lat, e.obj.Size)
	lat += slat
	m.feedBreaker(now+lat, st, err)
	if err != nil {
		m.dropPending(p, e.obj, &q.dropsError)
		return lat
	}
	e.obj.Pending = false
	q.settle(e.obj.Size, &q.drained)
	return lat
}

// dropPending turns a queued demotion into a true eviction: the object
// leaves the index, the dirtiness accounting settles under the given
// outcome counter, and the pool's eviction counters tick. No backend
// Release — a Pending object holds no backend storage. Callers hold the
// owning VM's lock.
//
// ddlint:requires-lock mu
func (m *Manager) dropPending(p *poolState, obj *index.Object, outcome *atomic.Int64) {
	p.idx.Remove(obj)
	obj.Pending = false
	m.demote.settle(obj.Size, outcome)
	p.counters.evictions.Add(1)
	m.totalEvictions.Add(1)
}
