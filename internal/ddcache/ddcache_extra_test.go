package ddcache

import (
	"testing"

	"doubledecker/internal/cgroup"
	"doubledecker/internal/cleancache"
)

func TestDynamicWeightChangeShiftsVictims(t *testing.T) {
	m := newMgr(ModeDD, 8*mib, 0)
	m.RegisterVM(1, 100)
	pa, _ := m.CreatePool(0, 1, "a", cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 50})
	pb, _ := m.CreatePool(0, 1, "b", cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 50})
	fillPool(t, m, pa, 1, 1024)
	fillPool(t, m, pb, 2, 1024)
	// Demote a to weight 10: its entitlement collapses, so continued
	// pressure from b must now evict a.
	m.SetSpec(0, 1, pa, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 10})
	evA := m.PoolStats(1, pa).Evictions
	fillPool(t, m, pb, 3, 512)
	if got := m.PoolStats(1, pa).Evictions; got <= evA {
		t.Fatal("demoted pool not victimized after weight change")
	}
}

func TestGlobalFIFOAcrossVMs(t *testing.T) {
	m := newMgr(ModeGlobal, 4*mib, 0)
	m.RegisterVM(1, 100)
	m.RegisterVM(2, 100)
	p1, _ := m.CreatePool(0, 1, "vm1c", cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	p2, _ := m.CreatePool(0, 2, "vm2c", cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	fillPool(t, m, p1, 1, 512) // VM1's objects are oldest
	for i := 0; i < 768; i++ {
		m.Put(0, 2, key(p2, 1, int64(i)), 0)
	}
	if s := m.PoolStats(1, p1); s.Evictions == 0 {
		t.Fatal("global FIFO should evict the oldest VM's objects")
	}
	if s := m.PoolStats(2, p2); s.Evictions != 0 {
		t.Fatal("newest objects evicted under global FIFO")
	}
}

func TestHybridPoolStatsEntitlement(t *testing.T) {
	m := newMgr(ModeDD, 4*mib, 64*mib)
	m.RegisterVM(1, 100)
	p, _ := m.CreatePool(0, 1, "hy", cgroup.HCacheSpec{Store: cgroup.StoreHybrid, Weight: 100})
	s := m.PoolStats(1, p)
	// Hybrid pools are entitled to both stores.
	if s.EntitlementBytes != 4*mib+64*mib {
		t.Fatalf("hybrid entitlement = %d", s.EntitlementBytes)
	}
}

func TestContainsIsNonMutating(t *testing.T) {
	m := newMgr(ModeDD, 4*mib, 0)
	m.RegisterVM(1, 100)
	p, _ := m.CreatePool(0, 1, "c", cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	k := key(p, 1, 0)
	if m.Contains(k) {
		t.Fatal("empty cache contains key")
	}
	m.Put(0, 1, k, 0)
	if !m.Contains(k) {
		t.Fatal("stored key not found")
	}
	if !m.Contains(k) {
		t.Fatal("Contains consumed the object")
	}
	if hit, _ := m.Get(0, 1, k); !hit {
		t.Fatal("Get after Contains missed")
	}
	if m.Contains(k) {
		t.Fatal("exclusive Get left the object behind")
	}
}

func TestFlushPageReleasesExactly(t *testing.T) {
	m := newMgr(ModeDD, 4*mib, 0)
	m.RegisterVM(1, 100)
	p, _ := m.CreatePool(0, 1, "c", cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	m.Put(0, 1, key(p, 1, 0), 0)
	m.Put(0, 1, key(p, 1, 1), 0)
	m.FlushPage(0, 1, key(p, 1, 0))
	if got := m.PoolUsedBytes(p, cgroup.StoreMem); got != ObjectSize {
		t.Fatalf("used = %d after flushing one of two", got)
	}
	m.FlushPage(0, 1, key(p, 9, 9)) // absent: no-op
	if got := m.PoolUsedBytes(p, cgroup.StoreMem); got != ObjectSize {
		t.Fatalf("flushing absent key changed accounting: %d", got)
	}
}

func TestSSDCapacityShrinkEvicts(t *testing.T) {
	m := newMgr(ModeDD, 0, 8*mib)
	m.RegisterVM(1, 100)
	p, _ := m.CreatePool(0, 1, "c", cgroup.HCacheSpec{Store: cgroup.StoreSSD, Weight: 100})
	fillPool(t, m, p, 1, 2048)
	m.SetSSDCapacity(0, 2*mib)
	if used := m.StoreUsedBytes(cgroup.StoreSSD); used > 2*mib {
		t.Fatalf("SSD used %d after shrink", used)
	}
}

func TestOperationsOnUnknownPool(t *testing.T) {
	m := newMgr(ModeDD, 4*mib, 0)
	m.RegisterVM(1, 100)
	ghost := cleancache.PoolID(999)
	if ok, _ := m.Put(0, 1, key(ghost, 1, 0), 0); ok {
		t.Fatal("put to unknown pool accepted")
	}
	if hit, _ := m.Get(0, 1, key(ghost, 1, 0)); hit {
		t.Fatal("get from unknown pool hit")
	}
	if m.FlushInode(0, 1, ghost, 1) != 0 {
		t.Fatal("flush of unknown pool cost time")
	}
	if s := m.PoolStats(1, ghost); s != (cleancache.PoolStats{}) {
		t.Fatal("unknown pool has stats")
	}
	m.DestroyPool(0, 1, ghost) // must not panic
	m.SetSpec(0, 1, ghost, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 1})
}

func TestMigrateToUnknownPoolIsNoop(t *testing.T) {
	m := newMgr(ModeDD, 4*mib, 0)
	m.RegisterVM(1, 100)
	p, _ := m.CreatePool(0, 1, "c", cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	m.Put(0, 1, key(p, 5, 0), 0)
	m.MigrateInode(0, 1, p, cleancache.PoolID(999), 5)
	if !m.Contains(key(p, 5, 0)) {
		t.Fatal("migrate to unknown pool lost the object")
	}
}

func TestVMWeightChangeRebalances(t *testing.T) {
	m := newMgr(ModeDD, 8*mib, 0)
	m.RegisterVM(1, 50)
	m.RegisterVM(2, 50)
	p1, _ := m.CreatePool(0, 1, "a", cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	p2, _ := m.CreatePool(0, 2, "b", cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	e1 := m.PoolStats(1, p1).EntitlementBytes
	m.SetVMWeight(1, 75)
	m.SetVMWeight(2, 25)
	if got := m.PoolStats(1, p1).EntitlementBytes; got <= e1 {
		t.Fatalf("entitlement did not grow after weight raise: %d → %d", e1, got)
	}
	if got := m.PoolStats(2, p2).EntitlementBytes; got >= e1 {
		t.Fatalf("entitlement did not shrink after weight cut: %d", got)
	}
}
