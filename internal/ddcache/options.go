package ddcache

import (
	"time"

	"doubledecker/internal/blockdev"
	"doubledecker/internal/metrics"
	"doubledecker/internal/policy"
	"doubledecker/internal/store"
	"doubledecker/internal/store/remote"
)

// Option configures a Manager built by New.
type Option func(*Config)

// New returns a manager configured by functional options:
//
//	m := ddcache.New(
//		ddcache.WithMode(ddcache.ModeDD),
//		ddcache.WithMemCapacity(256<<20),
//		ddcache.WithSSDCapacity(1<<30),
//	)
//
// Unset knobs take the same defaults as NewManager.
func New(opts ...Option) *Manager {
	var cfg Config
	for _, opt := range opts {
		opt(&cfg)
	}
	return NewManager(cfg)
}

// WithMode selects container awareness (ModeDD or ModeGlobal).
func WithMode(m Mode) Option { return func(c *Config) { c.Mode = m } }

// WithMemBackend installs an explicit memory store.
func WithMemBackend(be store.Backend) Option { return func(c *Config) { c.Mem = be } }

// WithMemCapacity installs a RAM-backed memory store of n bytes.
func WithMemCapacity(n int64) Option {
	return func(c *Config) { c.Mem = store.NewMem(blockdev.NewRAM("ram"), n) }
}

// WithSSDBackend installs an explicit SSD store.
func WithSSDBackend(be store.Backend) Option { return func(c *Config) { c.SSD = be } }

// WithSSDCapacity installs a simulated-SSD store of n bytes.
func WithSSDCapacity(n int64) Option {
	return func(c *Config) { c.SSD = store.NewSSD(blockdev.NewSSD("ssd"), n) }
}

// WithRemoteBackend installs an explicit remote object-store backend as
// the third tier.
func WithRemoteBackend(be store.Backend) Option { return func(c *Config) { c.Remote = be } }

// WithRemoteCapacity installs a modeled remote object store of n bytes
// with the default latency, throughput and cost parameters.
func WithRemoteCapacity(n int64) Option {
	return func(c *Config) { c.Remote = remote.New(remote.Config{CapacityBytes: n}) }
}

// WithDemotion tunes the write-behind demotion queue (zero fields keep
// the DemotionConfig defaults). Only meaningful with a remote backend.
func WithDemotion(d DemotionConfig) Option { return func(c *Config) { c.Demotion = d } }

// WithRemoteBreaker tunes the remote tier's circuit breaker; the zero
// value keeps the defaults.
func WithRemoteBreaker(b BreakerConfig) Option { return func(c *Config) { c.RemoteBreaker = b } }

// WithEvictBatch sets the eviction granularity (the paper uses 2 MiB).
func WithEvictBatch(n int64) Option { return func(c *Config) { c.EvictBatchBytes = n } }

// WithOpOverhead sets the manager-internal CPU cost per operation.
func WithOpOverhead(d time.Duration) Option { return func(c *Config) { c.OpOverhead = d } }

// WithVictimSelector swaps the Algorithm 1 victim-selection variant.
func WithVictimSelector(fn func(ents []policy.Entity, evictionSize int64) int) Option {
	return func(c *Config) { c.VictimSelector = fn }
}

// WithDedup enables content deduplication within each store.
func WithDedup(on bool) Option { return func(c *Config) { c.Dedup = on } }

// WithDedupShards sets the stripe width of the sharded content-reference
// table (0 keeps DefaultDedupShards). More shards reduce put/put
// contention on the dedup path at a few hundred bytes per shard.
func WithDedupShards(n int) Option { return func(c *Config) { c.DedupShards = n } }

// WithInclusive disables the exclusive-caching protocol (ablation only).
func WithInclusive(on bool) Option { return func(c *Config) { c.Inclusive = on } }

// WithMetrics installs a registry for the SSD breaker's trip/probe/restore
// events and state gauge.
func WithMetrics(reg *metrics.Registry) Option { return func(c *Config) { c.Metrics = reg } }

// WithSSDBreaker tunes the SSD circuit breaker (threshold, window,
// cooldown, probe count); the zero value keeps the defaults.
func WithSSDBreaker(b BreakerConfig) Option { return func(c *Config) { c.Breaker = b } }

// WithMaxInflightOps sets the hypervisor-wide admission budget: data-path
// ops (gets, puts, readahead) over this many concurrent dispatches are
// shed as immediate misses. Zero disables admission control.
func WithMaxInflightOps(n int64) Option { return func(c *Config) { c.MaxInflightOps = n } }
