package ddcache_test

// Property tests for the epoch-snapshot entitlement machinery, plus the
// regression test for the SetMemCapacity/SetSSDCapacity latency fix.

import (
	"testing"
	"testing/quick"
	"time"

	"doubledecker/internal/blockdev"
	"doubledecker/internal/cgroup"
	"doubledecker/internal/cleancache"
	"doubledecker/internal/ddcache"
	"doubledecker/internal/store"
)

// TestPropertyEpochWeightMonotone checks, over random weight vectors and
// random weight updates, that every published epoch keeps entitlements
// weight-monotone (a heavier VM never holds a smaller entitlement),
// exhaustive (entitlements sum to capacity) and within quota (each VM is
// within one byte of its exact proportional share), and that each config
// mutation publishes a strictly newer epoch.
func TestPropertyEpochWeightMonotone(t *testing.T) {
	const capBytes = int64(1 << 20)
	prop := func(rawWeights [4]uint16, bump uint16, which uint8) bool {
		m := ddcache.NewManager(ddcache.Config{
			Mem: store.NewMem(blockdev.NewRAM("p.ram"), capBytes),
		})
		weights := make([]int64, len(rawWeights))
		vms := make([]cleancache.VMID, len(rawWeights))
		for i, rw := range rawWeights {
			weights[i] = int64(rw%1000) + 1 // positive, small enough to never saturate
			vms[i] = cleancache.VMID(i + 1)
			m.RegisterVM(vms[i], weights[i])
			if _, lat := m.CreatePool(0, vms[i], "p", cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100}); lat == 0 {
				return false
			}
		}
		check := func() bool {
			var sum, total int64
			for _, w := range weights {
				total += w
			}
			ents := make([]int64, len(vms))
			for i, vm := range vms {
				ents[i] = m.VMEntitlement(vm, cgroup.StoreMem)
				sum += ents[i]
				// Quota: floor(cap*w/total) <= ent <= floor+1.
				floor := capBytes * weights[i] / total
				if ents[i] < floor || ents[i] > floor+1 {
					t.Logf("vm %d: entitlement %d outside quota [%d,%d]", vm, ents[i], floor, floor+1)
					return false
				}
			}
			if sum != capBytes {
				t.Logf("entitlements sum to %d, want %d", sum, capBytes)
				return false
			}
			for i := range vms {
				for j := range vms {
					if weights[i] > weights[j] && ents[i] < ents[j] {
						t.Logf("weight-monotonicity violated: w%d=%d>w%d=%d but ent %d<%d",
							i, weights[i], j, weights[j], ents[i], ents[j])
						return false
					}
				}
			}
			return true
		}
		if !check() {
			return false
		}
		// Mutate one VM's weight: the swap must publish a newer epoch and
		// the new epoch must satisfy the same properties.
		seqBefore := m.EpochSeq()
		i := int(which) % len(vms)
		weights[i] = int64(bump%1000) + 1
		m.SetVMWeight(vms[i], weights[i])
		if m.EpochSeq() <= seqBefore {
			t.Logf("SetVMWeight did not publish a new epoch (seq %d -> %d)", seqBefore, m.EpochSeq())
			return false
		}
		return check()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSetCapacityChargesEvictionLatency is the regression test for the
// capacity-op signature fix: shrinking a store below its occupancy must
// evict immediately AND report the eviction rounds in the returned
// latency, charging the work to the configuration op that caused it
// (previously the shrink was free and the cost leaked into later puts).
func TestSetCapacityChargesEvictionLatency(t *testing.T) {
	const (
		overhead = 100 * time.Nanosecond
		memCap   = int64(4 << 20)
		batch    = int64(256 << 10)
	)
	m := ddcache.NewManager(ddcache.Config{
		Mem:             store.NewMem(blockdev.NewRAM("r.ram"), memCap),
		EvictBatchBytes: batch,
		OpOverhead:      overhead,
	})
	m.RegisterVM(1, 100)
	id, _ := m.CreatePool(0, 1, "r", cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})

	var now time.Duration
	for i := 0; i < 512; i++ { // 512 × 4 KiB = 2 MiB resident
		key := cleancache.Key{Pool: id, Inode: uint64(i/64 + 1), Block: int64(i % 64)}
		ok, lat := m.Put(now, 1, key, 0)
		if !ok {
			t.Fatalf("put %d rejected while filling", i)
		}
		now += lat
	}
	if used := m.StoreUsedBytes(cgroup.StoreMem); used != 2<<20 {
		t.Fatalf("fill phase: used %d, want %d", used, 2<<20)
	}

	// A shrink that still fits costs exactly one op overhead.
	lat := m.SetMemCapacity(now, 3<<20)
	if lat != overhead {
		t.Fatalf("non-evicting shrink latency %v, want %v", lat, overhead)
	}
	now += lat

	// Shrinking to 1 MiB must free 1 MiB immediately; the eviction pass
	// (the batch is raised to the full shortfall, so one round) is charged
	// on top of the config op itself.
	lat = m.SetMemCapacity(now, 1<<20)
	if want := overhead * 2; lat != want {
		t.Fatalf("evicting shrink latency %v, want %v (config op + eviction round)", lat, want)
	}
	if used := m.StoreUsedBytes(cgroup.StoreMem); used > 1<<20 {
		t.Fatalf("after shrink: used %d exceeds new capacity %d", used, 1<<20)
	}
}
