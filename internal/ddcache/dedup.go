package ddcache

import (
	"sync"

	"doubledecker/internal/metrics"
)

// DefaultDedupShards is the stripe width of the content-reference table.
// 64 shards keep the collision probability of two concurrent putters
// landing on the same shard mutex below 2% at 8 writers while costing
// under 8 KiB of table headers.
const DefaultDedupShards = 64

// dedupShard is one stripe of the content-reference table. Each shard
// self-locks; shard mutexes are leaves of the lock hierarchy (acquired
// below any VM lock, never while holding another shard).
type dedupShard struct {
	// mu guards this shard's slice of the reference-count map.
	mu sync.Mutex
	// refs holds the logical reference counts per (store, content) that
	// hash onto this shard; the physical copy is charged once.
	// ddlint:guarded-by mu
	refs map[contentKey]int64
}

// dedupTable is the N-way sharded content-reference table that replaces
// the old manager-global dedupMu: contentKey hashes select a shard, so
// concurrent putters of unrelated content never contend.
type dedupTable struct {
	shards []dedupShard
	// saved counts the physical bytes avoided by sharing, striped by
	// shard index so the hot path never serializes on one cache line.
	saved *metrics.StripedCounter
}

func newDedupTable(n int) *dedupTable {
	if n < 1 {
		n = DefaultDedupShards
	}
	t := &dedupTable{
		shards: make([]dedupShard, n),
		saved:  metrics.NewStripedCounter(n),
	}
	for i := range t.shards {
		// Construction is single-threaded, but take the shard lock anyway
		// so the guarded-by contract holds everywhere it is written.
		s := &t.shards[i]
		s.mu.Lock()
		s.refs = make(map[contentKey]int64)
		s.mu.Unlock()
	}
	return t
}

// shardOf hashes ck onto a shard index (fibonacci hashing over the
// content identity mixed with the store type).
func (t *dedupTable) shardOf(ck contentKey) int {
	h := (ck.content ^ uint64(ck.store)<<56) * 0x9E3779B97F4A7C15
	return int((h >> 33) % uint64(len(t.shards)))
}

// peek reports the current reference count for ck.
func (t *dedupTable) peek(ck contentKey) int64 {
	s := &t.shards[t.shardOf(ck)]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.refs[ck]
}

// acquire takes one logical reference on ck and reports whether the
// physical copy is shared (a copy already existed). A shared acquire
// credits size bytes to the dedup savings counter.
func (t *dedupTable) acquire(ck contentKey, size int64) (shared bool) {
	i := t.shardOf(ck)
	s := &t.shards[i]
	s.mu.Lock()
	s.refs[ck]++
	shared = s.refs[ck] > 1
	s.mu.Unlock()
	if shared {
		t.saved.Add(i, size)
	}
	return shared
}

// undo drops the reference taken by a failed first-copy write: the
// physical copy was never stored, so the count simply rolls back.
func (t *dedupTable) undo(ck contentKey) {
	s := &t.shards[t.shardOf(ck)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.refs[ck] <= 1 {
		delete(s.refs, ck)
	} else {
		s.refs[ck]--
	}
}

// release drops one logical reference and reports whether the caller
// now owns the physical copy (last reference gone → free the bytes).
func (t *dedupTable) release(ck contentKey) (last bool) {
	s := &t.shards[t.shardOf(ck)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.refs[ck] > 1 {
		s.refs[ck]--
		return false
	}
	delete(s.refs, ck)
	return true
}

// savedBytes reports the cumulative physical bytes avoided by sharing.
func (t *dedupTable) savedBytes() int64 { return t.saved.Value() }

// entries counts live reference-count records across all shards (cold
// path: walks every shard under its lock).
func (t *dedupTable) entries() int64 {
	var n int64
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n += int64(len(s.refs))
		s.mu.Unlock()
	}
	return n
}

// minRef returns the smallest reference count in the table (and true),
// or (0, false) when the table is empty. Test/invariant hook: counts
// must never go non-positive.
func (t *dedupTable) minRef() (int64, bool) {
	var (
		minv  int64
		found bool
	)
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for _, n := range s.refs {
			if !found || n < minv {
				minv, found = n, true
			}
		}
		s.mu.Unlock()
	}
	return minv, found
}
