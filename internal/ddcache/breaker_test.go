package ddcache

import (
	"testing"
	"time"

	"doubledecker/internal/metrics"
)

func testBreakerConfig() BreakerConfig {
	return BreakerConfig{
		Threshold: 3,
		Window:    time.Second,
		Cooldown:  5 * time.Second,
		Probes:    2,
	}
}

func TestBreakerNilIsNoOp(t *testing.T) {
	var b *breaker
	if !b.allow(0) {
		t.Fatal("nil breaker must allow")
	}
	b.onSuccess()
	b.onFailure(0)
	if s := b.snapshot(); s.State != "closed" || s.Trips != 0 {
		t.Fatalf("nil breaker snapshot: %+v", s)
	}
}

func TestBreakerTripsAtThreshold(t *testing.T) {
	reg := metrics.NewRegistry()
	b := newBreaker(testBreakerConfig(), reg, "breaker.ssd")
	// Two errors inside the window: still closed.
	b.onFailure(0)
	b.onFailure(100 * time.Millisecond)
	if !b.allow(200 * time.Millisecond) {
		t.Fatal("breaker tripped below threshold")
	}
	// Third error trips it.
	b.onFailure(200 * time.Millisecond)
	if b.allow(300 * time.Millisecond) {
		t.Fatal("breaker did not trip at threshold")
	}
	s := b.snapshot()
	if s.State != "open" || s.Trips != 1 {
		t.Fatalf("snapshot after trip: %+v", s)
	}
	if reg.Counter("breaker.ssd.trip").Value() != 1 {
		t.Fatal("trip event not exported")
	}
	if reg.Gauge("breaker.ssd.state").Value() != int64(breakerOpen) {
		t.Fatal("state gauge not open")
	}
}

func TestBreakerWindowSlides(t *testing.T) {
	b := newBreaker(testBreakerConfig(), nil, "b")
	// Three errors, but spread wider than the 1s window: never trips.
	b.onFailure(0)
	b.onFailure(2 * time.Second)
	b.onFailure(4 * time.Second)
	if !b.allow(4 * time.Second) {
		t.Fatal("stale errors outside the window tripped the breaker")
	}
	// Three errors bunched inside one window trip it (the stale 4s error
	// has slid out by then).
	b.onFailure(6 * time.Second)
	b.onFailure(6*time.Second + 200*time.Millisecond)
	b.onFailure(6*time.Second + 400*time.Millisecond)
	if b.allow(6*time.Second + 500*time.Millisecond) {
		t.Fatal("errors inside the window did not trip")
	}
}

func TestBreakerHalfOpenRestores(t *testing.T) {
	reg := metrics.NewRegistry()
	b := newBreaker(testBreakerConfig(), reg, "breaker.ssd")
	for i := 0; i < 3; i++ {
		b.onFailure(time.Duration(i) * time.Millisecond)
	}
	if b.allow(time.Second) {
		t.Fatal("open breaker allowed before cooldown")
	}
	// Cooldown elapsed: the next operation is admitted as a probe.
	at := 10 * time.Second
	if !b.allow(at) {
		t.Fatal("cooldown elapsed but probe rejected")
	}
	if s := b.snapshot(); s.State != "half-open" || s.Probes == 0 {
		t.Fatalf("snapshot in half-open: %+v", s)
	}
	// Two consecutive successes (cfg.Probes) restore the device.
	b.onSuccess()
	if s := b.snapshot(); s.State != "half-open" {
		t.Fatalf("restored after one probe success: %+v", s)
	}
	b.onSuccess()
	s := b.snapshot()
	if s.State != "closed" || s.Restores != 1 {
		t.Fatalf("snapshot after restore: %+v", s)
	}
	if reg.Counter("breaker.ssd.restore").Value() != 1 {
		t.Fatal("restore event not exported")
	}
	if reg.Gauge("breaker.ssd.state").Value() != int64(breakerClosed) {
		t.Fatal("state gauge not closed after restore")
	}
	// Back in closed: traffic flows and the error window restarts empty.
	if !b.allow(at + time.Second) {
		t.Fatal("restored breaker rejects traffic")
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b := newBreaker(testBreakerConfig(), nil, "b")
	for i := 0; i < 3; i++ {
		b.onFailure(time.Duration(i) * time.Millisecond)
	}
	at := 10 * time.Second
	if !b.allow(at) {
		t.Fatal("probe rejected")
	}
	b.onFailure(at) // probe failed: re-trip immediately
	if b.allow(at + time.Second) {
		t.Fatal("failed probe did not reopen the breaker")
	}
	s := b.snapshot()
	if s.State != "open" || s.Trips != 2 {
		t.Fatalf("snapshot after re-trip: %+v", s)
	}
	// A second full cooldown is required again.
	if !b.allow(at + 10*time.Second) {
		t.Fatal("second cooldown did not admit probes")
	}
}

func TestBreakerStateStrings(t *testing.T) {
	for st, want := range map[breakerState]string{
		breakerClosed:   "closed",
		breakerOpen:     "open",
		breakerHalfOpen: "half-open",
	} {
		if st.String() != want {
			t.Fatalf("state %d = %q, want %q", st, st.String(), want)
		}
	}
}
