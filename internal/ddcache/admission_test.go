package ddcache

import (
	"sync"
	"testing"
	"time"

	"doubledecker/internal/blockdev"
	"doubledecker/internal/cleancache"
	"doubledecker/internal/store"
)

// TestAdmissionBudgetShedsDataPathOnly pins the admission budget's
// semantics, then hammers Dispatch from many goroutines under the same
// tiny budget: data-path ops over the budget must be shed (as immediate
// misses, never errors), control ops and flushes must always be
// admitted, and the inflight gauge must drain to zero.
func TestAdmissionBudgetShedsDataPathOnly(t *testing.T) {
	m := New(
		WithMode(ModeDD),
		WithMemBackend(store.NewMem(blockdev.NewRAM("ram"), 64<<20)),
		WithMaxInflightOps(1),
	)
	m.RegisterVM(1, 100)
	resp := m.Dispatch(0, cleancache.Request{Op: cleancache.OpCreateCgroup, VM: 1, Name: "c"})
	if !resp.Ok {
		t.Fatalf("create pool: %+v", resp)
	}
	pool := resp.Pool

	// Deterministic half: saturate the gauge as if one data-path op were
	// parked inside Dispatch, so the budget-1 manager must shed the next
	// data-path op and still admit control ops and flushes.
	m.inflightOps.Add(1)
	key0 := cleancache.Key{Pool: pool, Inode: 99, Block: 0}
	if pr := m.Dispatch(0, cleancache.Request{Op: cleancache.OpPut, VM: 1, Key: key0, Content: 7}); pr.Ok {
		t.Fatalf("put admitted over a saturated budget: %+v", pr)
	}
	if gr := m.Dispatch(0, cleancache.Request{Op: cleancache.OpGet, VM: 1, Key: key0}); gr.Ok {
		t.Fatalf("get admitted over a saturated budget: %+v", gr)
	}
	if shed := m.ShedOps(); shed != 2 {
		t.Fatalf("saturated budget shed %d ops, want 2", shed)
	}
	fl := m.Dispatch(0, cleancache.Request{Op: cleancache.OpFlushInode, VM: 1, Key: key0})
	if fl.Op != cleancache.OpFlushInode {
		t.Fatalf("flush shed by a saturated budget: %+v", fl)
	}
	if st := m.Dispatch(0, cleancache.Request{Op: cleancache.OpGetStats, VM: 1,
		Key: cleancache.Key{Pool: pool}}); !st.Ok {
		t.Fatalf("control op shed by a saturated budget: %+v", st)
	}
	m.inflightOps.Add(-1)

	// Concurrent half: race coverage for the admit/decrement pairing —
	// whatever interleaving the scheduler picks, sheds come back as
	// misses and the gauge drains to zero.
	const workers = 8
	const opsPerWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerWorker; i++ {
				key := cleancache.Key{Pool: pool, Inode: uint64(w + 1), Block: int64(i)}
				at := time.Duration(i) * time.Microsecond
				pr := m.Dispatch(at, cleancache.Request{Op: cleancache.OpPut, VM: 1, Key: key, Content: uint64(i)})
				gr := m.Dispatch(at, cleancache.Request{Op: cleancache.OpGet, VM: 1, Key: key})
				if pr.Ok && !gr.Ok {
					// A shed get after an admitted put: legal — shed is a
					// miss, never an error.
					continue
				}
			}
		}(w)
	}
	wg.Wait()

	if inflight := m.InflightOps(); inflight != 0 {
		t.Fatalf("inflight gauge stuck at %d after quiesce", inflight)
	}
	// Control ops and flushes are never shed, even at budget 1.
	for i := 0; i < 100; i++ {
		fl := m.Dispatch(0, cleancache.Request{Op: cleancache.OpFlushInode, VM: 1,
			Key: cleancache.Key{Pool: pool, Inode: uint64(i)}})
		if fl.Op != cleancache.OpFlushInode {
			t.Fatalf("flush response corrupted: %+v", fl)
		}
	}
	st := m.Dispatch(0, cleancache.Request{Op: cleancache.OpGetStats, VM: 1,
		Key: cleancache.Key{Pool: pool}})
	if !st.Ok {
		t.Fatalf("control op shed by admission: %+v", st)
	}
}

// TestAdmissionOffShedsNothing: the default (budget 0) must be a strict
// no-op — the oracle-differential suites rely on it.
func TestAdmissionOffShedsNothing(t *testing.T) {
	m := New(
		WithMode(ModeDD),
		WithMemBackend(store.NewMem(blockdev.NewRAM("ram"), 64<<20)),
	)
	m.RegisterVM(1, 100)
	resp := m.Dispatch(0, cleancache.Request{Op: cleancache.OpCreateCgroup, VM: 1, Name: "c"})
	pool := resp.Pool
	for i := int64(0); i < 512; i++ {
		key := cleancache.Key{Pool: pool, Inode: 1, Block: i}
		m.Dispatch(0, cleancache.Request{Op: cleancache.OpPut, VM: 1, Key: key, Content: uint64(i)})
		if gr := m.Dispatch(0, cleancache.Request{Op: cleancache.OpGet, VM: 1, Key: key}); !gr.Ok {
			t.Fatalf("get %d missed with admission off", i)
		}
	}
	if m.ShedOps() != 0 {
		t.Fatalf("admission off shed %d ops", m.ShedOps())
	}
}
