package ddcache

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"doubledecker/internal/cgroup"
	"doubledecker/internal/cleancache"
	"doubledecker/internal/wallclock"
)

// StressOptions configures RunStress, the concurrent mixed-workload driver
// shared by the race tests, the benchmark suite and `ddbench -parallel`.
type StressOptions struct {
	// VMs is the number of guest VMs registered with the manager; each is
	// driven by its own workers, so VMs is also the sharding width the
	// per-VM locking can exploit.
	VMs int
	// WorkersPerVM is the number of concurrent goroutines issuing
	// operations against each VM.
	WorkersPerVM int
	// PoolsPerVM is the number of container pools created per VM. Pool
	// store types alternate mem/SSD/hybrid when an SSD store is
	// configured, mem otherwise.
	PoolsPerVM int
	// Ops is the number of operations each worker issues.
	Ops int
	// Seed makes each worker's operation stream deterministic.
	Seed int64
	// Inodes and Blocks bound the per-pool keyspace.
	Inodes int
	Blocks int64
	// PoolChurn adds one goroutine per VM that repeatedly creates and
	// destroys an extra pool while the workers run, stressing the
	// structural paths (CreatePool/DestroyPool) against the data paths.
	PoolChurn bool
	// PaceLatency sleeps each operation's modeled device latency in real
	// time, turning the driver into a closed-loop guest: throughput then
	// scales with how much the manager lets guests overlap their I/O
	// waits rather than with CPU count.
	PaceLatency bool
	// Content derives a content identity from each key so that a
	// deduplicating manager sees cross-VM duplicates.
	Content bool
}

func (o *StressOptions) defaults() {
	if o.VMs <= 0 {
		o.VMs = 4
	}
	if o.WorkersPerVM <= 0 {
		o.WorkersPerVM = 2
	}
	if o.PoolsPerVM <= 0 {
		o.PoolsPerVM = 2
	}
	if o.Ops <= 0 {
		o.Ops = 1000
	}
	if o.Inodes <= 0 {
		o.Inodes = 64
	}
	if o.Blocks <= 0 {
		o.Blocks = 64
	}
}

// StressResult aggregates what the workers observed.
type StressResult struct {
	Ops     int64         // operations issued
	GetHits int64         // gets that hit
	Puts    int64         // puts accepted
	Wall    time.Duration // wall-clock time of the concurrent phase
	PoolOps int64         // create/destroy pairs from the churn workers
}

// OpsPerSec reports aggregate throughput over the concurrent phase.
func (r StressResult) OpsPerSec() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Wall.Seconds()
}

// RunStress registers o.VMs guests on m, fans out o.WorkersPerVM
// goroutines per VM issuing a deterministic mixed stream of Get, Put,
// FlushPage, FlushInode and SetSpec calls, and reports what happened. It
// exercises exactly the concurrency contract the Manager documents: any
// number of goroutines, any mix of VMs, one shared manager.
func RunStress(m *Manager, o StressOptions) StressResult {
	o.defaults()
	hasSSD := m.cfg.SSD != nil && m.cfg.SSD.CapacityBytes() > 0
	pools := make([][]cleancache.PoolID, o.VMs)
	for v := 0; v < o.VMs; v++ {
		vm := cleancache.VMID(v + 1)
		m.RegisterVM(vm, 100)
		for p := 0; p < o.PoolsPerVM; p++ {
			id, _ := m.CreatePool(0, vm, "stress", poolSpec(p, hasSSD))
			pools[v] = append(pools[v], id)
		}
	}

	var (
		wgOps   sync.WaitGroup
		wgChurn sync.WaitGroup
		ops     atomic.Int64
		hits    atomic.Int64
		puts    atomic.Int64
		poolOps atomic.Int64
		stop    atomic.Bool
	)
	// The concurrent phase is timed through the injectable wall clock, so
	// tests can pin the source and make Wall (and OpsPerSec) reproducible.
	elapsed := wallclock.Stopwatch()
	for v := 0; v < o.VMs; v++ {
		vm := cleancache.VMID(v + 1)
		for w := 0; w < o.WorkersPerVM; w++ {
			wgOps.Add(1)
			go func(v, w int) {
				defer wgOps.Done()
				rng := rand.New(rand.NewSource(o.Seed + int64(v*1000+w)))
				var now time.Duration
				for i := 0; i < o.Ops; i++ {
					pool := pools[v][rng.Intn(len(pools[v]))]
					inode := uint64(1 + rng.Intn(o.Inodes))
					block := rng.Int63n(o.Blocks)
					key := cleancache.Key{Pool: pool, Inode: inode, Block: block}
					var lat time.Duration
					switch r := rng.Intn(100); {
					case r < 45:
						var content uint64
						if o.Content {
							content = inode<<20 | uint64(block) + 1
						}
						ok, l := m.Put(now, vm, key, content)
						lat = l
						if ok {
							puts.Add(1)
						}
					case r < 85:
						hit, l := m.Get(now, vm, key)
						lat = l
						if hit {
							hits.Add(1)
						}
					case r < 95:
						lat = m.FlushPage(now, vm, key)
					case r < 99:
						lat = m.FlushInode(now, vm, pool, inode)
					default:
						lat = m.SetSpec(now, vm, pool, poolSpec(rng.Intn(3), hasSSD))
					}
					now += lat
					ops.Add(1)
					if o.PaceLatency && lat > 0 {
						time.Sleep(lat)
					}
				}
			}(v, w)
		}
		if o.PoolChurn {
			wgChurn.Add(1)
			go func(v int, vm cleancache.VMID) {
				defer wgChurn.Done()
				rng := rand.New(rand.NewSource(o.Seed ^ int64(v+7919)))
				for !stop.Load() {
					id, _ := m.CreatePool(0, vm, "churn", poolSpec(rng.Intn(3), hasSSD))
					key := cleancache.Key{Pool: id, Inode: 1, Block: rng.Int63n(o.Blocks)}
					m.Put(0, vm, key, 0)
					m.DestroyPool(0, vm, id)
					poolOps.Add(1)
				}
			}(v, vm)
		}
	}
	// Churn workers run for as long as the op workers do.
	wgOps.Wait()
	stop.Store(true)
	wgChurn.Wait()
	return StressResult{
		Ops:     ops.Load(),
		GetHits: hits.Load(),
		Puts:    puts.Load(),
		Wall:    elapsed(),
		PoolOps: poolOps.Load(),
	}
}

// BackendStressOptions configures RunStressBackend, the dispatch-driven
// closed-loop driver used by the scaling experiment: unlike RunStress it
// drives any cleancache.Backend (the sharded manager, the sequential
// oracle, a transport), so two implementations can be measured under the
// byte-identical workload.
type BackendStressOptions struct {
	// Guests is the number of concurrent closed-loop guests; each drives
	// its own pools, so Guests is the parallelism the backend may exploit.
	Guests int
	// PoolsPerGuest is the number of container pools each guest creates.
	PoolsPerGuest int
	// Ops is the number of operations each guest issues.
	Ops int
	// Seed makes each guest's operation stream deterministic.
	Seed int64
	// Inodes and Blocks bound the per-pool keyspace.
	Inodes int
	Blocks int64
	// SSDHeavy places every pool on the SSD store, making the modeled
	// 90µs device reads dominate — the regime where overlap between
	// guests, not CPU count, decides throughput.
	SSDHeavy bool
	// Pace sleeps each operation's modeled latency in real time (closed
	// loop): a guest issues its next op only after the previous one's
	// device wait has elapsed.
	Pace bool
}

func (o *BackendStressOptions) defaults() {
	if o.Guests <= 0 {
		o.Guests = 4
	}
	if o.PoolsPerGuest <= 0 {
		o.PoolsPerGuest = 2
	}
	if o.Ops <= 0 {
		o.Ops = 1000
	}
	if o.Inodes <= 0 {
		o.Inodes = 32
	}
	if o.Blocks <= 0 {
		o.Blocks = 32
	}
}

// RunStressBackend creates o.Guests guests × o.PoolsPerGuest pools
// through the op-dispatch interface and fans out one closed-loop
// goroutine per guest issuing a deterministic Put/Get/Flush mix. It is
// the measurement harness of `ddbench -scalingjson`: the same options
// against the sharded Manager and against the mutex-wrapped sequential
// oracle yield the scaling table.
func RunStressBackend(be cleancache.Backend, o BackendStressOptions) StressResult {
	o.defaults()
	st := cgroup.StoreMem
	if o.SSDHeavy {
		st = cgroup.StoreSSD
	}
	pools := make([][]cleancache.PoolID, o.Guests)
	for g := 0; g < o.Guests; g++ {
		vm := cleancache.VMID(g + 1)
		for p := 0; p < o.PoolsPerGuest; p++ {
			resp := be.Dispatch(0, cleancache.Request{
				Op:   cleancache.OpCreateCgroup,
				VM:   vm,
				Name: "scale",
				Spec: cgroup.HCacheSpec{Store: st, Weight: 100},
			})
			pools[g] = append(pools[g], resp.Pool)
		}
	}
	var (
		wg   sync.WaitGroup
		ops  atomic.Int64
		hits atomic.Int64
		puts atomic.Int64
	)
	elapsed := wallclock.Stopwatch()
	for g := 0; g < o.Guests; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			vm := cleancache.VMID(g + 1)
			rng := rand.New(rand.NewSource(o.Seed + int64(g)*7919))
			var now time.Duration
			for i := 0; i < o.Ops; i++ {
				pool := pools[g][rng.Intn(len(pools[g]))]
				key := cleancache.Key{
					Pool:  pool,
					Inode: uint64(1 + rng.Intn(o.Inodes)),
					Block: rng.Int63n(o.Blocks),
				}
				req := cleancache.Request{VM: vm, Key: key}
				switch r := rng.Intn(100); {
				case r < 45:
					req.Op = cleancache.OpPut
				case r < 90:
					req.Op = cleancache.OpGet
				case r < 97:
					req.Op = cleancache.OpFlushPage
				default:
					req.Op = cleancache.OpFlushInode
				}
				resp := be.Dispatch(now, req)
				now += resp.Latency
				ops.Add(1)
				switch {
				case req.Op == cleancache.OpGet && resp.Ok:
					hits.Add(1)
				case req.Op == cleancache.OpPut && resp.Ok:
					puts.Add(1)
				}
				if o.Pace && resp.Latency > 0 {
					time.Sleep(resp.Latency)
				}
			}
		}(g)
	}
	wg.Wait()
	return StressResult{
		Ops:     ops.Load(),
		GetHits: hits.Load(),
		Puts:    puts.Load(),
		Wall:    elapsed(),
	}
}

// poolSpec alternates store types so every backend sees traffic.
func poolSpec(i int, hasSSD bool) cgroup.HCacheSpec {
	st := cgroup.StoreMem
	if hasSSD {
		switch i % 3 {
		case 1:
			st = cgroup.StoreSSD
		case 2:
			st = cgroup.StoreHybrid
		}
	}
	return cgroup.HCacheSpec{Store: st, Weight: 50 + 10*(i%3)}
}
