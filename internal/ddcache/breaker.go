package ddcache

import (
	"sync"
	"time"

	"doubledecker/internal/metrics"
)

// BreakerConfig parameterizes the SSD circuit breaker. The zero value
// selects the defaults below.
type BreakerConfig struct {
	// Threshold is the number of errors inside Window that trips the
	// breaker open (default 5).
	Threshold int
	// Window is the sliding error window (default 1s of virtual time).
	Window time.Duration
	// Cooldown is how long the breaker stays open before admitting
	// half-open probes (default 5s).
	Cooldown time.Duration
	// Probes is the number of consecutive successful operations in the
	// half-open state that restore the device (default 3).
	Probes int
}

func (c *BreakerConfig) defaults() {
	if c.Threshold <= 0 {
		c.Threshold = 5
	}
	if c.Window <= 0 {
		c.Window = time.Second
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.Probes <= 0 {
		c.Probes = 3
	}
}

// breakerState is the circuit breaker's state machine position.
type breakerState int

const (
	// breakerClosed: healthy, all traffic flows.
	breakerClosed breakerState = iota
	// breakerOpen: tripped; the device is bypassed until the cooldown
	// elapses.
	breakerOpen
	// breakerHalfOpen: cooldown elapsed; traffic flows as probes, and
	// Probes consecutive successes restore the device while any failure
	// re-trips it.
	breakerHalfOpen
)

// String implements fmt.Stringer.
func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerStats is a snapshot of one breaker's activity.
type BreakerStats struct {
	State    string
	Trips    int64 // closed/half-open → open transitions
	Probes   int64 // operations admitted in the half-open state
	Restores int64 // half-open → closed transitions
}

// breaker is a sliding-window circuit breaker on virtual time. The cache
// manager places one in front of the SSD store so a failing device sheds
// load (puts fall back to memory or are dropped; gets of SSD-resident
// objects miss) instead of failing every operation for its timeout cost.
//
// All state transitions run under mu; the breaker is safe for concurrent
// use from the manager's data paths.
type breaker struct {
	cfg  BreakerConfig
	reg  *metrics.Registry
	name string // metric prefix, e.g. "breaker.ssd"

	mu    sync.Mutex
	state breakerState // ddlint:guarded-by mu
	// errAt holds the error timestamps inside the sliding Window.
	errAt    []time.Duration // ddlint:guarded-by mu
	openedAt time.Duration   // ddlint:guarded-by mu
	// streak counts consecutive half-open successes.
	streak   int   // ddlint:guarded-by mu
	trips    int64 // ddlint:guarded-by mu
	probes   int64 // ddlint:guarded-by mu
	restores int64 // ddlint:guarded-by mu
}

// newBreaker returns a closed breaker. reg may be nil (no events exported).
func newBreaker(cfg BreakerConfig, reg *metrics.Registry, name string) *breaker {
	cfg.defaults()
	return &breaker{cfg: cfg, reg: reg, name: name}
}

// allow reports whether an operation may reach the device at virtual time
// now. Open breakers transition to half-open once the cooldown elapses;
// half-open breakers admit all traffic as probes. Nil-safe: a nil breaker
// always allows.
func (b *breaker) allow(now time.Duration) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now >= b.openedAt+b.cfg.Cooldown {
			b.state = breakerHalfOpen
			b.streak = 0
			b.setStateGauge()
			b.probes++
			b.event(".probe")
			return true
		}
		return false
	default: // breakerHalfOpen
		b.probes++
		b.event(".probe")
		return true
	}
}

// onSuccess records a successful device operation. Enough consecutive
// successes in the half-open state restore (close) the breaker. Nil-safe.
func (b *breaker) onSuccess() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != breakerHalfOpen {
		return
	}
	b.streak++
	if b.streak >= b.cfg.Probes {
		b.state = breakerClosed
		b.errAt = b.errAt[:0]
		b.restores++
		b.setStateGauge()
		b.event(".restore")
	}
}

// onFailure records a failed device operation at virtual time now: in the
// closed state it trips the breaker once Threshold errors accumulate
// inside Window; in the half-open state any failure re-trips immediately.
// Nil-safe.
func (b *breaker) onFailure(now time.Duration) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.tripLocked(now)
	case breakerClosed:
		// Prune errors that slid out of the window, then append.
		cut := 0
		for cut < len(b.errAt) && b.errAt[cut]+b.cfg.Window < now {
			cut++
		}
		b.errAt = append(b.errAt[:0], b.errAt[cut:]...)
		b.errAt = append(b.errAt, now)
		if len(b.errAt) >= b.cfg.Threshold {
			b.tripLocked(now)
		}
	}
}

// tripLocked moves the breaker to open. Requires b.mu.
//
// ddlint:requires-lock mu
func (b *breaker) tripLocked(now time.Duration) {
	b.state = breakerOpen
	b.openedAt = now
	b.streak = 0
	b.errAt = b.errAt[:0]
	b.trips++
	b.setStateGauge()
	b.event(".trip")
}

// snapshot returns the breaker's counters. Nil-safe (zero stats, state
// "closed").
func (b *breaker) snapshot() BreakerStats {
	if b == nil {
		return BreakerStats{State: breakerClosed.String()}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStats{
		State:    b.state.String(),
		Trips:    b.trips,
		Probes:   b.probes,
		Restores: b.restores,
	}
}

// event increments the named breaker event counter. Requires b.mu (called
// from transition paths).
//
// ddlint:requires-lock mu
func (b *breaker) event(suffix string) {
	if b.reg == nil {
		return
	}
	b.reg.Counter(b.name + suffix).Inc()
}

// setStateGauge exports the current state (0 closed, 1 open, 2 half-open).
// Requires b.mu.
//
// ddlint:requires-lock mu
func (b *breaker) setStateGauge() {
	if b.reg == nil {
		return
	}
	b.reg.Gauge(b.name + ".state").Set(int64(b.state))
}
