package ddcache

import (
	"doubledecker/internal/cgroup"
	"doubledecker/internal/cleancache"
	"doubledecker/internal/index"
	"doubledecker/internal/policy"
)

// entSlots bounds the per-store entitlement arrays carried by an epoch
// (store types are small consecutive constants, as in package index).
const entSlots = 5

// tierOrder lists the backend tiers in demotion order: mem evicts to
// SSD, SSD evicts to remote, remote evictions are true drops. Every loop
// that used to hard-code the mem/ssd pair iterates this slice instead,
// so adding a tier is a one-line change here plus a backend() case.
var tierOrder = []cgroup.StoreType{cgroup.StoreMem, cgroup.StoreSSD, cgroup.StoreRemote}

// entSlot maps a store type onto the entitlement arrays, folding
// out-of-range values onto slot 0.
func entSlot(st cgroup.StoreType) int {
	if st < 0 || int(st) >= entSlots {
		return 0
	}
	return int(st)
}

// epoch is one immutable snapshot of the manager's configuration state:
// registered VMs (with weights), pools (with specs) and the two-level
// entitlements derived from them. Data-path operations load the current
// epoch from Manager.epoch with a single atomic pointer read and never
// take a lock to consult policy state; configuration operations build a
// replacement epoch under Manager.configMu and publish it atomically.
//
// Everything reachable from an epoch is frozen at build time except the
// mutable per-VM/per-pool state records (vmState, poolState), which carry
// their own locks: a goroutine holding a stale epoch can still operate
// safely because liveness is re-checked on poolState.dead under the VM
// lock, and byte accounting lives in index.Accounting atomics.
//
// ddlint:immutable-after-publish
type epoch struct {
	// seq increments on every publish; exported through the epoch.seq
	// gauge so experiments can watch reconfiguration churn.
	seq    uint64
	vms    []*epochVM // registration order, for deterministic iteration
	vmByID map[cleancache.VMID]*epochVM
	pools  map[cleancache.PoolID]*epochPool
}

// epochVM is one VM's frozen view: weight, pool list and per-store
// entitlement at this epoch.
//
// ddlint:immutable-after-publish
type epochVM struct {
	state  *vmState
	weight int64
	pools  []*epochPool // creation order
	ent    [entSlots]int64
}

// usedBytes sums the VM's occupancy in st across its pools. Reads only
// the pools' atomic accounting, so it is safe without any lock (the sum
// is not an instantaneous snapshot under concurrency, exactly like the
// per-pool accounting it is built from).
func (ev *epochVM) usedBytes(st cgroup.StoreType) int64 {
	var u int64
	for _, pe := range ev.pools {
		u += pe.acct.UsedBytes(st)
	}
	return u
}

// epochPool is one pool's frozen view: spec and per-store entitlement at
// this epoch, plus the pool's mutable state record and its lock-free
// accounting view.
//
// ddlint:immutable-after-publish
type epochPool struct {
	state *poolState
	vm    *epochVM
	spec  cgroup.HCacheSpec
	acct  *index.Accounting
	ent   [entSlots]int64
}

// usesStore reports whether the pool may place objects in st under this
// epoch's spec. The demotion ladder follows from these sets: an eviction
// demotes to the next tier of tierOrder the spec still uses, so hybrid
// pools ride mem→SSD→remote, SSD pools ride SSD→remote, and mem-only or
// remote-only pools drop on eviction. When no remote backend is
// configured, build() skips the remote tier entirely (entitlement stays
// zero) and two-tier behaviour is unchanged.
func (pe *epochPool) usesStore(st cgroup.StoreType) bool {
	switch pe.spec.Store {
	case cgroup.StoreHybrid:
		return st == cgroup.StoreMem || st == cgroup.StoreSSD || st == cgroup.StoreRemote
	case cgroup.StoreSSD:
		return st == cgroup.StoreSSD || st == cgroup.StoreRemote
	default:
		return pe.spec.Store == st
	}
}

// epochBuilder assembles the next epoch from the previous one plus one
// structural mutation. Builders run only under Manager.configMu.
type epochBuilder struct {
	vms []*builderVM
}

type builderVM struct {
	state  *vmState
	weight int64
	pools  []*builderPool
}

type builderPool struct {
	id    cleancache.PoolID
	state *poolState
	spec  cgroup.HCacheSpec
}

// builderFrom copies the previous epoch's shape into mutable form.
func builderFrom(prev *epoch) *epochBuilder {
	b := &epochBuilder{vms: make([]*builderVM, 0, len(prev.vms))}
	for _, ev := range prev.vms {
		bv := &builderVM{state: ev.state, weight: ev.weight, pools: make([]*builderPool, 0, len(ev.pools))}
		for _, pe := range ev.pools {
			bv.pools = append(bv.pools, &builderPool{id: pe.state.id, state: pe.state, spec: pe.spec})
		}
		b.vms = append(b.vms, bv)
	}
	return b
}

// findVM returns the builder record for id, or nil.
func (b *epochBuilder) findVM(id cleancache.VMID) *builderVM {
	for _, bv := range b.vms {
		if bv.state.id == id {
			return bv
		}
	}
	return nil
}

// ensureVM returns the builder record for id, registering the VM with
// the given weight when unknown.
func (b *epochBuilder) ensureVM(id cleancache.VMID, weight int64) *builderVM {
	if bv := b.findVM(id); bv != nil {
		return bv
	}
	bv := &builderVM{state: &vmState{id: id}, weight: weight}
	b.vms = append(b.vms, bv)
	return bv
}

// removeVM drops the VM from the next epoch (its pools go with it).
func (b *epochBuilder) removeVM(id cleancache.VMID) {
	for i, bv := range b.vms {
		if bv.state.id == id {
			b.vms = append(b.vms[:i], b.vms[i+1:]...)
			return
		}
	}
}

// removePool drops one pool from the next epoch.
func (b *epochBuilder) removePool(id cleancache.PoolID) {
	for _, bv := range b.vms {
		for i, bp := range bv.pools {
			if bp.id == id {
				bv.pools = append(bv.pools[:i], bv.pools[i+1:]...)
				return
			}
		}
	}
}

// setSpec replaces one pool's spec in the next epoch.
func (b *epochBuilder) setSpec(id cleancache.PoolID, spec cgroup.HCacheSpec) {
	for _, bv := range b.vms {
		for _, bp := range bv.pools {
			if bp.id == id {
				bp.spec = spec
				return
			}
		}
	}
}

// build freezes the builder into an epoch, recomputing both levels of
// entitlements per store with the pure policy.TwoLevel pass. It is the
// one place the snapshot family is written after assembly begins.
//
// ddlint:constructs epoch epochVM epochPool
func (b *epochBuilder) build(m *Manager, seq uint64) *epoch {
	ep := &epoch{
		seq:    seq,
		vms:    make([]*epochVM, 0, len(b.vms)),
		vmByID: make(map[cleancache.VMID]*epochVM, len(b.vms)),
		pools:  make(map[cleancache.PoolID]*epochPool),
	}
	for _, bv := range b.vms {
		ev := &epochVM{state: bv.state, weight: bv.weight, pools: make([]*epochPool, 0, len(bv.pools))}
		for _, bp := range bv.pools {
			pe := &epochPool{state: bp.state, vm: ev, spec: bp.spec, acct: bp.state.acct}
			ev.pools = append(ev.pools, pe)
			ep.pools[bp.id] = pe
		}
		ep.vms = append(ep.vms, ev)
		ep.vmByID[bv.state.id] = ev
	}
	for _, st := range tierOrder {
		be := m.backend(st)
		if be == nil {
			continue
		}
		slot := entSlot(st)
		vmWeights := make([]int64, len(ep.vms))
		poolWeights := make([][]int64, len(ep.vms))
		for v, ev := range ep.vms {
			vmWeights[v] = ev.weight
			pw := make([]int64, len(ev.pools))
			for p, pe := range ev.pools {
				if pe.usesStore(st) {
					pw[p] = int64(pe.spec.Weight)
				}
			}
			poolWeights[v] = pw
		}
		vmShares, poolShares := policy.TwoLevel(be.CapacityBytes(), vmWeights, poolWeights)
		for v, ev := range ep.vms {
			ev.ent[slot] = vmShares[v]
			for p, pe := range ev.pools {
				pe.ent[slot] = poolShares[v][p]
			}
		}
	}
	return ep
}

// mutateEpoch builds the successor of the current epoch (mutate may be
// nil for a pure entitlement recomputation, e.g. after a capacity
// change), publishes it, and returns it.
//
// ddlint:requires-lock configMu
func (m *Manager) mutateEpoch(mutate func(b *epochBuilder)) *epoch {
	prev := m.epoch.Load()
	b := builderFrom(prev)
	if mutate != nil {
		mutate(b)
	}
	ep := b.build(m, prev.seq+1)
	m.publishEpoch(ep)
	return ep
}

// publishEpoch atomically installs ep as the current epoch and records
// the epoch.* / shard.* observability gauges.
//
// ddlint:requires-lock configMu
func (m *Manager) publishEpoch(ep *epoch) {
	m.epoch.Store(ep)
	if reg := m.cfg.Metrics; reg != nil {
		reg.Counter("epoch.swaps").Inc()
		reg.Gauge("epoch.seq").Set(int64(ep.seq))
		reg.Gauge("epoch.vms").Set(int64(len(ep.vms)))
		reg.Gauge("epoch.pools").Set(int64(len(ep.pools)))
		reg.Gauge("shard.dedup.shards").Set(int64(len(m.dedup.shards)))
		reg.Gauge("shard.dedup.entries").Set(m.dedup.entries())
	}
}

// emptyEpoch is the epoch published at construction time.
func emptyEpoch() *epoch {
	return &epoch{
		vmByID: make(map[cleancache.VMID]*epochVM),
		pools:  make(map[cleancache.PoolID]*epochPool),
	}
}
