package ddcache

import (
	"os"
	"strconv"
	"testing"
	"time"

	"doubledecker/internal/blockdev"
	"doubledecker/internal/cgroup"
	"doubledecker/internal/cleancache"
	"doubledecker/internal/fault"
	"doubledecker/internal/metrics"
	"doubledecker/internal/store"
)

// faultyMgr builds a manager whose SSD device runs under the given fault
// plan. The SSD device is named "fssd", so plans target "fssd.read" /
// "fssd.write". memCap <= 0 disables the memory store.
func faultyMgr(plan fault.Plan, memCap, ssdCap int64, bc BreakerConfig, reg *metrics.Registry) *Manager {
	cfg := Config{Mode: ModeDD, Breaker: bc, Metrics: reg}
	if memCap > 0 {
		cfg.Mem = store.NewMem(blockdev.NewRAM("fram"), memCap)
	}
	dev := blockdev.NewSSD("fssd", blockdev.WithFaults(fault.New(plan)))
	cfg.SSD = store.NewSSD(dev, ssdCap)
	return NewManager(cfg)
}

func TestFailedSSDPutDropsObject(t *testing.T) {
	plan := fault.Plan{Rules: []fault.Rule{
		{Site: "fssd.write", Kind: fault.KindIOError, Prob: 1},
	}}
	m := faultyMgr(plan, 0, 8<<20, BreakerConfig{}, nil)
	m.RegisterVM(1, 100)
	pool, _ := m.CreatePool(0, 1, "p", cgroup.HCacheSpec{Store: cgroup.StoreSSD, Weight: 100})

	k := key(pool, 1, 0)
	ok, _ := m.Put(0, 1, k, 0)
	if ok {
		t.Fatal("put reported stored despite SSD write error")
	}
	if m.Contains(k) {
		t.Fatal("dropped object still indexed")
	}
	if n := m.StoreUsedBytes(cgroup.StoreSSD); n != 0 {
		t.Fatalf("failed put charged %d bytes", n)
	}
	if n := m.PoolUsedBytes(pool, cgroup.StoreSSD); n != 0 {
		t.Fatalf("failed put charged pool %d bytes", n)
	}
}

func TestFailedSSDGetInvalidatesEntry(t *testing.T) {
	plan := fault.Plan{Rules: []fault.Rule{
		{Site: "fssd.read", Kind: fault.KindIOError, Prob: 1},
	}}
	m := faultyMgr(plan, 0, 8<<20, BreakerConfig{}, nil)
	m.RegisterVM(1, 100)
	pool, _ := m.CreatePool(0, 1, "p", cgroup.HCacheSpec{Store: cgroup.StoreSSD, Weight: 100})

	k := key(pool, 1, 0)
	if ok, _ := m.Put(0, 1, k, 0); !ok {
		t.Fatal("healthy put failed")
	}
	if !m.Contains(k) || m.StoreUsedBytes(cgroup.StoreSSD) != ObjectSize {
		t.Fatal("put did not land on SSD")
	}

	// The fetch fails: cleancache semantics demand a miss, and the entry
	// must be invalidated with its usage released.
	if hit, _ := m.Get(0, 1, k); hit {
		t.Fatal("get reported a hit despite SSD read error")
	}
	if m.Contains(k) {
		t.Fatal("entry survived a failed fetch")
	}
	if n := m.StoreUsedBytes(cgroup.StoreSSD); n != 0 {
		t.Fatalf("failed fetch leaked %d bytes", n)
	}
	if hit, _ := m.Get(0, 1, k); hit {
		t.Fatal("second get hit an invalidated entry")
	}
}

func TestBreakerTripsAndFallsBackToMem(t *testing.T) {
	// SSD writes fail hard for the first 2s of virtual time, then recover.
	plan := fault.Plan{Rules: []fault.Rule{
		{Site: "fssd.write", Kind: fault.KindIOError, Prob: 1, To: 2 * time.Second},
	}}
	bc := BreakerConfig{Threshold: 3, Window: time.Second, Cooldown: time.Second, Probes: 2}
	reg := metrics.NewRegistry()
	m := faultyMgr(plan, 8<<20, 8<<20, bc, reg)
	m.RegisterVM(1, 100)
	pool, _ := m.CreatePool(0, 1, "p", cgroup.HCacheSpec{Store: cgroup.StoreSSD, Weight: 100})

	// Threshold failures trip the breaker.
	for i := int64(0); i < 3; i++ {
		if ok, _ := m.Put(0, 1, key(pool, 1, i), 0); ok {
			t.Fatalf("put %d stored through a failing SSD", i)
		}
	}
	if s := m.SSDBreakerStats(); s.State != "open" || s.Trips != 1 {
		t.Fatalf("breaker after threshold failures: %+v", s)
	}

	// While open, SSD placements degrade to the memory store.
	if ok, _ := m.Put(0, 1, key(pool, 1, 100), 0); !ok {
		t.Fatal("put rejected instead of falling back to memory")
	}
	if n := m.StoreUsedBytes(cgroup.StoreMem); n != ObjectSize {
		t.Fatalf("fallback put landed on mem=%d bytes, want %d", n, ObjectSize)
	}
	if n := m.StoreUsedBytes(cgroup.StoreSSD); n != 0 {
		t.Fatalf("open breaker let %d bytes reach the SSD", n)
	}

	// Past the fault window and the cooldown: probes succeed and restore.
	if ok, _ := m.Put(5*time.Second, 1, key(pool, 1, 200), 0); !ok {
		t.Fatal("first probe put failed")
	}
	if s := m.SSDBreakerStats(); s.State != "half-open" {
		t.Fatalf("breaker after first probe: %+v", s)
	}
	if ok, _ := m.Put(5*time.Second, 1, key(pool, 1, 201), 0); !ok {
		t.Fatal("second probe put failed")
	}
	s := m.SSDBreakerStats()
	if s.State != "closed" || s.Restores != 1 || s.Probes < 2 {
		t.Fatalf("breaker after recovery: %+v", s)
	}
	if n := m.StoreUsedBytes(cgroup.StoreSSD); n != 2*ObjectSize {
		t.Fatalf("recovered SSD holds %d bytes, want %d", n, 2*ObjectSize)
	}
	if reg.Counter("breaker.ssd.trip").Value() != 1 ||
		reg.Counter("breaker.ssd.restore").Value() != 1 {
		t.Fatalf("breaker events not exported: trip=%d restore=%d",
			reg.Counter("breaker.ssd.trip").Value(),
			reg.Counter("breaker.ssd.restore").Value())
	}
}

func TestBreakerOpenGetMissesWithoutInvalidate(t *testing.T) {
	plan := fault.Plan{Rules: []fault.Rule{
		{Site: "fssd.read", Kind: fault.KindIOError, Prob: 1},
	}}
	// Threshold 1: the first failed fetch trips the breaker.
	bc := BreakerConfig{Threshold: 1, Window: time.Second, Cooldown: 10 * time.Second, Probes: 1}
	m := faultyMgr(plan, 0, 8<<20, bc, nil)
	m.RegisterVM(1, 100)
	pool, _ := m.CreatePool(0, 1, "p", cgroup.HCacheSpec{Store: cgroup.StoreSSD, Weight: 100})

	k1, k2 := key(pool, 1, 0), key(pool, 1, 1)
	for _, k := range []cleancache.Key{k1, k2} {
		if ok, _ := m.Put(0, 1, k, 0); !ok {
			t.Fatal("healthy put failed")
		}
	}

	// First get pays the failed fetch, invalidates k1 and trips the breaker.
	if hit, _ := m.Get(0, 1, k1); hit {
		t.Fatal("get hit through a failing SSD")
	}
	if s := m.SSDBreakerStats(); s.State != "open" {
		t.Fatalf("breaker after failed fetch: %+v", s)
	}
	// While open, gets of SSD-resident objects miss WITHOUT invalidating:
	// the stored bytes are intact, only the device is being avoided.
	if hit, _ := m.Get(0, 1, k2); hit {
		t.Fatal("get hit while the breaker is open")
	}
	if !m.Contains(k2) {
		t.Fatal("open-breaker miss invalidated an intact entry")
	}
	if n := m.StoreUsedBytes(cgroup.StoreSSD); n != ObjectSize {
		t.Fatalf("SSD usage %d after open-breaker miss, want %d", n, ObjectSize)
	}
}

// TestTeardownUnderFaults destroys pools and unregisters the VM while the
// SSD device is failing every operation; neither index entries nor usage
// bytes may leak.
func TestTeardownUnderFaults(t *testing.T) {
	plan := fault.Plan{Rules: []fault.Rule{
		{Site: "fssd.*", Kind: fault.KindIOError, Prob: 1, From: time.Second},
	}}
	m := faultyMgr(plan, 8<<20, 8<<20, BreakerConfig{}, nil)
	m.RegisterVM(1, 100)
	mp, _ := m.CreatePool(0, 1, "mem", cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 50})
	sp, _ := m.CreatePool(0, 1, "ssd", cgroup.HCacheSpec{Store: cgroup.StoreSSD, Weight: 50})

	// Fill both pools while the device is healthy (faults start at 1s).
	for i := int64(0); i < 64; i++ {
		if ok, _ := m.Put(0, 1, key(mp, 1, i), 0); !ok {
			t.Fatal("mem put failed")
		}
		if ok, _ := m.Put(0, 1, key(sp, 1, i), 0); !ok {
			t.Fatal("ssd put failed")
		}
	}
	if m.StoreUsedBytes(cgroup.StoreMem) == 0 || m.StoreUsedBytes(cgroup.StoreSSD) == 0 {
		t.Fatal("stores not populated")
	}
	// Sanity: the device really is failing now.
	if ok, _ := m.Put(2*time.Second, 1, key(sp, 2, 0), 0); ok {
		t.Fatal("put succeeded during the fault window")
	}

	m.DestroyPool(2*time.Second, 1, mp)
	m.DestroyPool(2*time.Second, 1, sp)
	m.UnregisterVM(1)

	for _, st := range []cgroup.StoreType{cgroup.StoreMem, cgroup.StoreSSD} {
		if n := m.PoolUsedBytes(mp, st); n != 0 {
			t.Fatalf("mem pool leaked %d %s bytes", n, st)
		}
		if n := m.PoolUsedBytes(sp, st); n != 0 {
			t.Fatalf("ssd pool leaked %d %s bytes", n, st)
		}
		if n := m.StoreUsedBytes(st); n != 0 {
			t.Fatalf("%s store leaked %d bytes after teardown", st, n)
		}
	}
}

// TestChaosFaultPlan is the CI chaos job's entry point: a concurrent
// stress run against an SSD injecting ~8% I/O errors plus latency spikes,
// with pool churn, under -race. The seed comes from CHAOS_SEED so the CI
// matrix can pin distinct schedules. Correctness bar: the run completes,
// faults really were injected, usage never goes negative and full
// teardown leaves zero residue in both stores.
func TestChaosFaultPlan(t *testing.T) {
	seed := int64(1)
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", s, err)
		}
		seed = v
	}
	plan := fault.Plan{Seed: seed, Rules: []fault.Rule{
		{Site: "chaos-ssd.*", Kind: fault.KindIOError, Prob: 0.08},
		{Site: "chaos-ssd.read", Kind: fault.KindLatency, Prob: 0.05, Delay: 200 * time.Microsecond},
	}}
	inj := fault.New(plan)
	reg := metrics.NewRegistry()
	m := NewManager(Config{
		Mode:    ModeDD,
		Mem:     store.NewMem(blockdev.NewRAM("chaos-ram"), 8<<20),
		SSD:     store.NewSSD(blockdev.NewSSD("chaos-ssd", blockdev.WithFaults(inj)), 8<<20),
		Breaker: BreakerConfig{Threshold: 8, Window: time.Second, Cooldown: time.Second, Probes: 2},
		Metrics: reg,
	})

	vms := 4
	res := RunStress(m, StressOptions{
		VMs:          vms,
		WorkersPerVM: 4,
		PoolsPerVM:   3,
		Ops:          400,
		Seed:         seed,
		PoolChurn:    true,
	})
	if res.Ops == 0 {
		t.Fatal("stress run issued no operations")
	}
	if inj.Injected(fault.KindIOError) == 0 {
		t.Fatal("fault plan injected no I/O errors — the chaos run tested nothing")
	}
	t.Logf("chaos seed=%d: %d ops, %d hits, %d puts, breaker=%+v\n%s",
		seed, res.Ops, res.GetHits, res.Puts, m.SSDBreakerStats(), inj.Summary())

	for _, st := range []cgroup.StoreType{cgroup.StoreMem, cgroup.StoreSSD} {
		if n := m.StoreUsedBytes(st); n < 0 {
			t.Fatalf("%s store usage went negative: %d", st, n)
		}
	}
	for v := 1; v <= vms; v++ {
		m.UnregisterVM(cleancache.VMID(v))
	}
	for _, st := range []cgroup.StoreType{cgroup.StoreMem, cgroup.StoreSSD} {
		if n := m.StoreUsedBytes(st); n != 0 {
			t.Fatalf("%s store holds %d bytes after full teardown", st, n)
		}
	}
}
