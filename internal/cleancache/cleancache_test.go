package cleancache

import (
	"testing"
	"time"

	"doubledecker/internal/blockdev"
	"doubledecker/internal/cgroup"
	"doubledecker/internal/hypercall"
)

// fakeBackend records operations and serves a tiny in-memory key set.
type fakeBackend struct {
	nextPool PoolID
	pools    map[PoolID]map[Key]bool
	specs    map[PoolID]cgroup.HCacheSpec
	destroys int
	migrates int
}

func newFakeBackend() *fakeBackend {
	return &fakeBackend{
		nextPool: 1,
		pools:    make(map[PoolID]map[Key]bool),
		specs:    make(map[PoolID]cgroup.HCacheSpec),
	}
}

func (b *fakeBackend) CreatePool(_ time.Duration, _ VMID, _ string, spec cgroup.HCacheSpec) (PoolID, time.Duration) {
	id := b.nextPool
	b.nextPool++
	b.pools[id] = make(map[Key]bool)
	b.specs[id] = spec
	return id, time.Microsecond
}

func (b *fakeBackend) DestroyPool(_ time.Duration, _ VMID, pool PoolID) time.Duration {
	delete(b.pools, pool)
	b.destroys++
	return 0
}

func (b *fakeBackend) SetSpec(_ time.Duration, _ VMID, pool PoolID, spec cgroup.HCacheSpec) time.Duration {
	b.specs[pool] = spec
	return 0
}

func (b *fakeBackend) Get(_ time.Duration, _ VMID, key Key) (bool, time.Duration) {
	if b.pools[key.Pool][key] {
		delete(b.pools[key.Pool], key)
		return true, time.Microsecond
	}
	return false, 0
}

func (b *fakeBackend) Put(_ time.Duration, _ VMID, key Key, _ uint64) (bool, time.Duration) {
	if m, ok := b.pools[key.Pool]; ok {
		m[key] = true
		return true, time.Microsecond
	}
	return false, 0
}

func (b *fakeBackend) FlushPage(_ time.Duration, _ VMID, key Key) time.Duration {
	delete(b.pools[key.Pool], key)
	return 0
}

func (b *fakeBackend) FlushInode(_ time.Duration, _ VMID, pool PoolID, inode uint64) time.Duration {
	for k := range b.pools[pool] {
		if k.Inode == inode {
			delete(b.pools[pool], k)
		}
	}
	return 0
}

func (b *fakeBackend) MigrateInode(_ time.Duration, _ VMID, from, to PoolID, inode uint64) time.Duration {
	b.migrates++
	for k := range b.pools[from] {
		if k.Inode == inode {
			delete(b.pools[from], k)
			b.pools[to][Key{Pool: to, Inode: k.Inode, Block: k.Block}] = true
		}
	}
	return 0
}

func (b *fakeBackend) PoolStats(_ VMID, pool PoolID) PoolStats {
	return PoolStats{Objects: int64(len(b.pools[pool]))}
}

var _ Backend = (*fakeBackend)(nil)

func newTestFront() (*Front, *fakeBackend, *cgroup.Group) {
	be := newFakeBackend()
	f := NewFront(1, be, hypercall.NewChannel())
	root := cgroup.NewRoot(1<<30, 0)
	g := root.NewGroup("c1", 0, blockdev.NewHDD("sw"))
	return f, be, g
}

func TestRegisterAssignsPool(t *testing.T) {
	f, _, g := newTestFront()
	lat := f.RegisterGroup(0, g)
	if g.PoolID() == 0 {
		t.Fatal("pool not assigned")
	}
	if lat <= 0 {
		t.Fatal("registration should cost a hypercall")
	}
}

func TestFilterRejectsNonMatching(t *testing.T) {
	f, _, g := newTestFront()
	f.SetFilter(func(name string) bool { return name == "other" })
	f.RegisterGroup(0, g)
	if g.PoolID() != 0 {
		t.Fatal("filtered group got a pool")
	}
	if hit, lat := f.Get(0, g, 1, 1); hit || lat != 0 {
		t.Fatal("filtered group should bypass cleancache")
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	f, _, g := newTestFront()
	f.RegisterGroup(0, g)
	if ok, _ := f.Put(0, g, 42, 7, 0); !ok {
		t.Fatal("put failed")
	}
	hit, lat := f.Get(0, g, 42, 7)
	if !hit {
		t.Fatal("get missed after put")
	}
	if lat < hypercall.DefaultCallCost {
		t.Fatalf("get latency %v below transport floor", lat)
	}
	// Exclusive semantics: second get misses.
	if hit, _ := f.Get(0, g, 42, 7); hit {
		t.Fatal("second get should miss (exclusive cache)")
	}
	st := f.Stats()
	if st.Puts != 1 || st.Gets != 2 || st.GetHits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDisabledFrontIsInert(t *testing.T) {
	f, _, g := newTestFront()
	f.RegisterGroup(0, g)
	f.SetEnabled(false)
	if !f.Enabled() == false {
		t.Fatal("Enabled() broken")
	}
	if ok, _ := f.Put(0, g, 1, 1, 0); ok {
		t.Fatal("disabled front accepted put")
	}
	if hit, _ := f.Get(0, g, 1, 1); hit {
		t.Fatal("disabled front returned hit")
	}
}

func TestUnregisterDestroysPool(t *testing.T) {
	f, be, g := newTestFront()
	f.RegisterGroup(0, g)
	f.UnregisterGroup(0, g)
	if g.PoolID() != 0 {
		t.Fatal("pool id not cleared")
	}
	if be.destroys != 1 {
		t.Fatal("backend DestroyPool not called")
	}
}

func TestUpdateSpecPropagates(t *testing.T) {
	f, be, g := newTestFront()
	f.RegisterGroup(0, g)
	g.SetSpec(cgroup.HCacheSpec{Store: cgroup.StoreSSD, Weight: 30})
	f.UpdateSpec(0, g)
	if got := be.specs[PoolID(g.PoolID())]; got.Store != cgroup.StoreSSD || got.Weight != 30 {
		t.Fatalf("backend spec = %+v", got)
	}
}

func TestFlushInodeAndMigrate(t *testing.T) {
	f, be, g := newTestFront()
	f.RegisterGroup(0, g)
	root := cgroup.NewRoot(1<<30, 0)
	g2 := root.NewGroup("c2", 0, blockdev.NewHDD("sw"))
	f.RegisterGroup(0, g2)

	f.Put(0, g, 5, 0, 0)
	f.Put(0, g, 5, 1, 0)
	f.MigrateInode(0, g, g2, 5)
	if be.migrates != 1 {
		t.Fatal("migrate not forwarded")
	}
	if hit, _ := f.Get(0, g2, 5, 0); !hit {
		t.Fatal("migrated block not in target pool")
	}
	f.Put(0, g, 6, 0, 0)
	f.FlushInode(0, g, 6)
	if hit, _ := f.Get(0, g, 6, 0); hit {
		t.Fatal("flushed inode still cached")
	}
}

func TestLookupToStoreRatio(t *testing.T) {
	s := PoolStats{Puts: 200, GetHits: 50, Gets: 100}
	if got := s.LookupToStoreRatio(); got != 25 {
		t.Fatalf("LookupToStoreRatio = %v, want 25", got)
	}
	if got := s.HitRatio(); got != 50 {
		t.Fatalf("HitRatio = %v, want 50", got)
	}
	var zero PoolStats
	if zero.LookupToStoreRatio() != 0 || zero.HitRatio() != 0 {
		t.Fatal("zero stats should not divide by zero")
	}
}

func TestGroupStats(t *testing.T) {
	f, _, g := newTestFront()
	f.RegisterGroup(0, g)
	f.Put(0, g, 1, 0, 0)
	if got := f.GroupStats(g); got.Objects != 1 {
		t.Fatalf("GroupStats.Objects = %d, want 1", got.Objects)
	}
	root := cgroup.NewRoot(1<<30, 0)
	unreg := root.NewGroup("x", 0, blockdev.NewHDD("sw"))
	if got := f.GroupStats(unreg); got != (PoolStats{}) {
		t.Fatal("unregistered group should report zero stats")
	}
}
