package cleancache

import (
	"testing"
	"time"

	"doubledecker/internal/blockdev"
	"doubledecker/internal/cgroup"
)

// fakeBackend is a Dispatch-only backend serving a tiny in-memory key
// set, recording the op traffic it sees.
type fakeBackend struct {
	nextPool PoolID
	pools    map[PoolID]map[Key]bool
	specs    map[PoolID]cgroup.HCacheSpec
	destroys int
	migrates int
	ops      []OpCode // every op in arrival order
}

func newFakeBackend() *fakeBackend {
	return &fakeBackend{
		nextPool: 1,
		pools:    make(map[PoolID]map[Key]bool),
		specs:    make(map[PoolID]cgroup.HCacheSpec),
	}
}

var _ Backend = (*fakeBackend)(nil)

func (b *fakeBackend) Dispatch(_ time.Duration, req Request) Response {
	b.ops = append(b.ops, req.Op)
	resp := Response{Op: req.Op, Latency: time.Microsecond}
	switch req.Op {
	case OpCreateCgroup:
		id := b.nextPool
		b.nextPool++
		b.pools[id] = make(map[Key]bool)
		b.specs[id] = req.Spec
		resp.Ok = true
		resp.Pool = id
	case OpDestroyCgroup:
		delete(b.pools, req.Key.Pool)
		b.destroys++
	case OpSetCgWeight:
		b.specs[req.Key.Pool] = req.Spec
	case OpGet:
		if b.pools[req.Key.Pool][req.Key] {
			delete(b.pools[req.Key.Pool], req.Key) // exclusive
			resp.Ok = true
		}
	case OpPut:
		if m, ok := b.pools[req.Key.Pool]; ok {
			m[req.Key] = true
			resp.Ok = true
		}
	case OpFlushPage:
		delete(b.pools[req.Key.Pool], req.Key)
	case OpFlushInode:
		for k := range b.pools[req.Key.Pool] {
			if k.Inode == req.Key.Inode {
				delete(b.pools[req.Key.Pool], k)
			}
		}
	case OpMigrateObject:
		b.migrates++
		for k := range b.pools[req.Key.Pool] {
			if k.Inode == req.Key.Inode {
				delete(b.pools[req.Key.Pool], k)
				b.pools[req.To][Key{Pool: req.To, Inode: k.Inode, Block: k.Block}] = true
			}
		}
	case OpGetStats:
		resp.Ok = true
		resp.Stats = PoolStats{Objects: int64(len(b.pools[req.Key.Pool]))}
	case OpReadAhead:
		for i := int64(0); i < req.Count; i++ {
			k := Key{Pool: req.Key.Pool, Inode: req.Key.Inode, Block: req.Key.Block + i}
			if !b.pools[req.Key.Pool][k] {
				break
			}
			delete(b.pools[req.Key.Pool], k) // exclusive, like GET
			resp.Count++
		}
		resp.Ok = resp.Count > 0
	}
	return resp
}

func newTestFront() (*Front, *fakeBackend, *cgroup.Group) {
	be := newFakeBackend()
	f := NewFront(1, NewBackendTransport(be))
	root := cgroup.NewRoot(1<<30, 0)
	g := root.NewGroup("c1", 0, blockdev.NewHDD("sw"))
	return f, be, g
}

func TestOpCodeStringsAndProperties(t *testing.T) {
	want := map[OpCode]string{
		OpGet: "GET", OpPut: "PUT", OpFlushPage: "FLUSH_PAGE",
		OpFlushInode: "FLUSH_INODE", OpCreateCgroup: "CREATE_CGROUP",
		OpDestroyCgroup: "DESTROY_CGROUP", OpSetCgWeight: "SET_CG_WEIGHT",
		OpMigrateObject: "MIGRATE_OBJECT", OpGetStats: "GET_STATS",
		OpReadAhead: "READ_AHEAD",
	}
	if len(OpCodes()) != len(want) {
		t.Fatalf("OpCodes() = %d codes, want %d", len(OpCodes()), len(want))
	}
	for _, op := range OpCodes() {
		if !op.Valid() {
			t.Fatalf("%v not Valid", op)
		}
		if op.String() != want[op] {
			t.Fatalf("%d.String() = %q, want %q", int(op), op.String(), want[op])
		}
		wantBatch := op == OpPut || op == OpFlushPage || op == OpFlushInode || op == OpReadAhead
		if op.Batchable() != wantBatch {
			t.Fatalf("%v.Batchable() = %v", op, op.Batchable())
		}
		wantPages := 0
		if op == OpGet || op == OpPut {
			wantPages = 1
		}
		if op.Pages() != wantPages {
			t.Fatalf("%v.Pages() = %d, want %d", op, op.Pages(), wantPages)
		}
	}
	if OpCode(0).Valid() || OpCode(200).Valid() {
		t.Fatal("out-of-range op codes reported Valid")
	}
	if OpCode(200).String() == "" {
		t.Fatal("unknown op code has empty String")
	}
}

func TestRegisterAssignsPool(t *testing.T) {
	f, _, g := newTestFront()
	lat := f.RegisterGroup(0, g)
	if g.PoolID() == 0 {
		t.Fatal("pool not assigned")
	}
	if lat <= 0 {
		t.Fatal("registration should cost backend latency")
	}
}

func TestFilterRejectsNonMatching(t *testing.T) {
	f, _, g := newTestFront()
	f.SetFilter(func(name string) bool { return name == "other" })
	f.RegisterGroup(0, g)
	if g.PoolID() != 0 {
		t.Fatal("filtered group got a pool")
	}
	if hit, lat := f.Get(0, g, 1, 1); hit || lat != 0 {
		t.Fatal("filtered group should bypass cleancache")
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	f, be, g := newTestFront()
	f.RegisterGroup(0, g)
	if ok, _ := f.Put(0, g, 42, 7, 0); !ok {
		t.Fatal("put failed")
	}
	hit, lat := f.Get(0, g, 42, 7)
	if !hit {
		t.Fatal("get missed after put")
	}
	if lat <= 0 {
		t.Fatalf("get latency %v, want backend cost", lat)
	}
	// Exclusive semantics: second get misses.
	if hit, _ := f.Get(0, g, 42, 7); hit {
		t.Fatal("second get should miss (exclusive cache)")
	}
	st := f.Stats()
	if st.Puts != 1 || st.Gets != 2 || st.GetHits != 1 {
		t.Fatalf("stats = %+v", st)
	}
	wantOps := []OpCode{OpCreateCgroup, OpPut, OpGet, OpGet}
	if len(be.ops) != len(wantOps) {
		t.Fatalf("backend saw %v, want %v", be.ops, wantOps)
	}
	for i, op := range wantOps {
		if be.ops[i] != op {
			t.Fatalf("backend op[%d] = %v, want %v", i, be.ops[i], op)
		}
	}
}

func TestDisabledFrontIsInert(t *testing.T) {
	f, _, g := newTestFront()
	f.RegisterGroup(0, g)
	f.SetEnabled(false)
	if !f.Enabled() == false {
		t.Fatal("Enabled() broken")
	}
	if ok, _ := f.Put(0, g, 1, 1, 0); ok {
		t.Fatal("disabled front accepted put")
	}
	if hit, _ := f.Get(0, g, 1, 1); hit {
		t.Fatal("disabled front returned hit")
	}
}

func TestUnregisterDestroysPool(t *testing.T) {
	f, be, g := newTestFront()
	f.RegisterGroup(0, g)
	f.UnregisterGroup(0, g)
	if g.PoolID() != 0 {
		t.Fatal("pool id not cleared")
	}
	if be.destroys != 1 {
		t.Fatal("backend never saw DESTROY_CGROUP")
	}
}

func TestUpdateSpecPropagates(t *testing.T) {
	f, be, g := newTestFront()
	f.RegisterGroup(0, g)
	g.SetSpec(cgroup.HCacheSpec{Store: cgroup.StoreSSD, Weight: 30})
	f.UpdateSpec(0, g)
	if got := be.specs[PoolID(g.PoolID())]; got.Store != cgroup.StoreSSD || got.Weight != 30 {
		t.Fatalf("backend spec = %+v", got)
	}
}

func TestFlushInodeAndMigrate(t *testing.T) {
	f, be, g := newTestFront()
	f.RegisterGroup(0, g)
	root := cgroup.NewRoot(1<<30, 0)
	g2 := root.NewGroup("c2", 0, blockdev.NewHDD("sw"))
	f.RegisterGroup(0, g2)

	f.Put(0, g, 5, 0, 0)
	f.Put(0, g, 5, 1, 0)
	f.MigrateInode(0, g, g2, 5)
	if be.migrates != 1 {
		t.Fatal("migrate not forwarded")
	}
	if hit, _ := f.Get(0, g2, 5, 0); !hit {
		t.Fatal("migrated block not in target pool")
	}
	f.Put(0, g, 6, 0, 0)
	f.FlushInode(0, g, 6)
	if hit, _ := f.Get(0, g, 6, 0); hit {
		t.Fatal("flushed inode still cached")
	}
}

func TestLookupToStoreRatio(t *testing.T) {
	s := PoolStats{Puts: 200, GetHits: 50, Gets: 100}
	if got := s.LookupToStoreRatio(); got != 25 {
		t.Fatalf("LookupToStoreRatio = %v, want 25", got)
	}
	if got := s.HitRatio(); got != 50 {
		t.Fatalf("HitRatio = %v, want 50", got)
	}
	var zero PoolStats
	if zero.LookupToStoreRatio() != 0 || zero.HitRatio() != 0 {
		t.Fatal("zero stats should not divide by zero")
	}
}

func TestGroupStats(t *testing.T) {
	f, _, g := newTestFront()
	f.RegisterGroup(0, g)
	f.Put(0, g, 1, 0, 0)
	if got := f.GroupStats(g); got.Objects != 1 {
		t.Fatalf("GroupStats.Objects = %d, want 1", got.Objects)
	}
	root := cgroup.NewRoot(1<<30, 0)
	unreg := root.NewGroup("x", 0, blockdev.NewHDD("sw"))
	if got := f.GroupStats(unreg); got != (PoolStats{}) {
		t.Fatal("unregistered group should report zero stats")
	}
}

func TestBackendTransportFlushIsFree(t *testing.T) {
	f, _, g := newTestFront()
	f.RegisterGroup(0, g)
	if d := f.FlushTransport(0); d != 0 {
		t.Fatalf("unbuffered transport flush cost %v", d)
	}
}

func TestSequentialDetectorIssuesReadAhead(t *testing.T) {
	f, be, g := newTestFront()
	f.SetReadAhead(4)
	f.RegisterGroup(0, g)
	for b := int64(0); b < 12; b++ {
		f.Put(0, g, 1, b, 0)
	}
	opsBefore := len(be.ops)

	// Two sequential gets: below the run threshold, no readahead yet.
	f.Get(0, g, 1, 0)
	f.Get(0, g, 1, 1)
	for _, op := range be.ops[opsBefore:] {
		if op == OpReadAhead {
			t.Fatal("readahead issued below the sequential-run threshold")
		}
	}
	// Third sequential access establishes the stream.
	f.Get(0, g, 1, 2)
	if f.Stats().ReadAheads != 1 {
		t.Fatalf("ReadAheads = %d after run of 3, want 1", f.Stats().ReadAheads)
	}
	// Continuing the stream extends the window without re-requesting the
	// blocks staging was already asked for.
	f.Get(0, g, 1, 3)
	f.Get(0, g, 1, 4)
	if f.Stats().ReadAheads < 2 {
		t.Fatalf("window did not slide: ReadAheads = %d", f.Stats().ReadAheads)
	}
}

func TestRandomAccessNeverTriggersReadAhead(t *testing.T) {
	f, _, g := newTestFront()
	f.SetReadAhead(4)
	f.RegisterGroup(0, g)
	for b := int64(0); b < 16; b++ {
		f.Put(0, g, 1, b, 0)
	}
	for _, b := range []int64{0, 5, 2, 9, 1, 14, 7, 3, 11} {
		f.Get(0, g, 1, b)
	}
	if n := f.Stats().ReadAheads; n != 0 {
		t.Fatalf("random access issued %d readaheads", n)
	}
}

func TestReadAheadWindowsDoNotOverlap(t *testing.T) {
	// The sliding window must never ask staging for the same block twice:
	// each issued window starts where the previous one ended (or past the
	// read position, whichever is further).
	f, _, g := newTestFront()
	f.SetReadAhead(4)
	f.RegisterGroup(0, g)
	for b := int64(0); b < 32; b++ {
		f.Put(0, g, 1, b, 0)
	}
	sk := streamKey{pool: PoolID(g.PoolID()), inode: 1}
	covered := make(map[int64]int)
	for b := int64(0); b < 16; b++ {
		var prevAhead int64
		if s := f.streams[sk]; s != nil {
			prevAhead = s.ahead
		}
		before := f.Stats().ReadAheads
		f.Get(0, g, 1, b)
		if f.Stats().ReadAheads == before {
			continue
		}
		// A window was issued at read position b: it spans
		// [max(b+1, prevAhead), s.ahead).
		start := b + 1
		if prevAhead > start {
			start = prevAhead
		}
		for blk := start; blk < f.streams[sk].ahead; blk++ {
			covered[blk]++
		}
	}
	if len(covered) == 0 {
		t.Fatal("sequential scan issued no readahead windows")
	}
	for blk, n := range covered {
		if n > 1 {
			t.Fatalf("block %d requested %d times by the sliding window", blk, n)
		}
	}
}

func TestStreamTableEvictsLRUNotWholesale(t *testing.T) {
	// Regression: a full detector table used to be wiped wholesale, losing
	// every active stream's run state. It must instead evict only the
	// least-recently-accessed stream, so a hot stream survives table
	// pressure without re-ramping.
	f, _, g := newTestFront()
	f.SetReadAhead(4)
	f.RegisterGroup(0, g)
	pool := PoolID(g.PoolID())

	// Establish a hot sequential stream on inode 1.
	hot := streamKey{pool: pool, inode: 1}
	for b := int64(0); b < 3; b++ {
		f.Get(0, g, 1, b)
	}
	if s := f.streams[hot]; s == nil || s.run < seqRunThreshold {
		t.Fatalf("hot stream not established: %+v", f.streams[hot])
	}

	// Fill the table to capacity with one-touch streams. The first of
	// them (inode 2) is the coldest once the hot stream is re-touched.
	for ino := uint64(2); len(f.streams) < maxTrackedStreams; ino++ {
		f.Get(0, g, ino, 0)
	}
	if f.streams[hot] == nil {
		t.Fatal("filling to capacity must not evict anything")
	}

	// Keep the hot stream MRU, then overflow once more: the victim must be
	// the coldest one-touch stream (inode 2), never the hot one.
	ahead := f.streams[hot].ahead
	f.Get(0, g, 1, 3)
	f.Get(0, g, 9999, 0)
	if len(f.streams) != maxTrackedStreams {
		t.Fatalf("table size = %d, want %d", len(f.streams), maxTrackedStreams)
	}
	if f.streams[streamKey{pool: pool, inode: 2}] != nil {
		t.Fatal("coldest stream (inode 2) survived eviction")
	}
	if f.streams[streamKey{pool: pool, inode: 9999}] == nil {
		t.Fatal("newly inserted stream missing from the table")
	}
	s := f.streams[hot]
	if s == nil {
		t.Fatal("hot stream evicted under table pressure")
	}
	if s.run < seqRunThreshold || s.ahead <= ahead {
		t.Fatalf("hot stream lost ramp state: run=%d ahead=%d (was %d)", s.run, s.ahead, ahead)
	}
	if f.streamLRU.Len() != len(f.streams) {
		t.Fatalf("LRU list len %d != table len %d", f.streamLRU.Len(), len(f.streams))
	}
}
