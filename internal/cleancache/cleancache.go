// Package cleancache models the guest OS second-chance cache interface of
// the paper: the Linux cleancache layer, extended for DoubleDecker so that
// pools belong to containers (cgroups) rather than file systems.
//
// The page cache calls the Front on lookup misses (get), clean evictions
// (put) and invalidations (flush). The Front derives the container pool
// from the cgroup owning the page — the paper's page→process→cgroup
// resolution — encodes the operation as a Request and submits it over a
// Transport to a Backend (the DoubleDecker hypervisor cache manager, or
// the nesting-agnostic Global baseline).
//
// The guest↔hypervisor boundary is op-based: every interaction is one of
// the paper's nine operations (OpCode), carried in a uniform Request and
// answered by a Response. Backends implement the single-method Dispatch
// entry point; transports may buffer batchable ops (put/flush) and deliver
// them in multi-op crossings (see internal/hypercall).
package cleancache

import (
	"container/list"
	"fmt"
	"time"

	"doubledecker/internal/cgroup"
)

// VMID identifies a virtual machine at the hypervisor.
type VMID int

// PoolID identifies a container's cache pool within the hypervisor cache.
// Zero means "no pool" (hypervisor caching disabled for the container).
type PoolID int64

// Key identifies one cached block: the paper's
// (pool-id, inode-num, block-offset) tuple; the VM id is carried
// separately by the transport.
type Key struct {
	Pool  PoolID
	Inode uint64
	Block int64
}

// OpCode enumerates the paper's guest→hypervisor operation set.
//
// ddlint:exhaustive — every switch over OpCode must handle all ops (or
// carry an explicit ddlint:nonexhaustive waiver), so adding a tenth op
// breaks every dispatch, codec and metrics switch at lint time instead
// of silently no-opping at run time.
type OpCode uint8

// The DoubleDecker op set: the classic cleancache data ops plus the
// container-control ops the paper adds.
const (
	OpGet OpCode = iota + 1
	OpPut
	OpFlushPage
	OpFlushInode
	OpCreateCgroup
	OpDestroyCgroup
	OpSetCgWeight
	OpMigrateObject
	OpGetStats
	OpReadAhead

	opCount = int(OpReadAhead)
)

// OpCodes returns every defined op code, in wire order.
func OpCodes() []OpCode {
	out := make([]OpCode, 0, opCount)
	for op := OpGet; int(op) <= opCount; op++ {
		out = append(out, op)
	}
	return out
}

// String implements fmt.Stringer using the paper's op names.
func (op OpCode) String() string {
	switch op {
	case OpGet:
		return "GET"
	case OpPut:
		return "PUT"
	case OpFlushPage:
		return "FLUSH_PAGE"
	case OpFlushInode:
		return "FLUSH_INODE"
	case OpCreateCgroup:
		return "CREATE_CGROUP"
	case OpDestroyCgroup:
		return "DESTROY_CGROUP"
	case OpSetCgWeight:
		return "SET_CG_WEIGHT"
	case OpMigrateObject:
		return "MIGRATE_OBJECT"
	case OpGetStats:
		return "GET_STATS"
	case OpReadAhead:
		return "READ_AHEAD"
	default:
		return fmt.Sprintf("OpCode(%d)", int(op))
	}
}

// Valid reports whether op is a defined op code.
func (op OpCode) Valid() bool { return op >= OpGet && int(op) <= opCount }

// Batchable reports whether the op may be buffered and delivered in a
// multi-op crossing. Puts and flushes are fire-and-forget from the
// guest's point of view; gets and control ops need their answer (or
// their ordering effect) immediately, so they act as batch barriers.
func (op OpCode) Batchable() bool {
	// Deliberately partial: only the listed ops are fire-and-forget;
	// everything else (including future ops, until reviewed) defaults to
	// the safe synchronous barrier path.
	switch op {
	case OpPut, OpFlushPage, OpFlushInode, OpReadAhead:
		return true
	default: // ddlint:nonexhaustive
		return false
	}
}

// Pages reports how many data pages the op moves across the
// guest↔hypervisor boundary (get and put each carry one page).
func (op OpCode) Pages() int {
	// Deliberately partial: only get and put carry page payload; new ops
	// default to zero pages until reviewed.
	switch op {
	case OpGet, OpPut:
		return 1
	default: // ddlint:nonexhaustive
		return 0
	}
}

// Request is one guest→hypervisor operation. Field use per op:
//
//	GET, FLUSH_PAGE     Key
//	PUT                 Key, Content
//	FLUSH_INODE         Key.Pool, Key.Inode
//	CREATE_CGROUP       Name, Spec
//	DESTROY_CGROUP      Key.Pool
//	SET_CG_WEIGHT       Key.Pool, Spec
//	MIGRATE_OBJECT      Key.Pool (source), To, Key.Inode
//	GET_STATS           Key.Pool
//	READ_AHEAD          Key (first block), Count (max blocks)
//
// VM is always set. Requests are value types so a batch is just
// []Request (or its wire encoding, see internal/hypercall).
type Request struct {
	Op      OpCode
	VM      VMID
	Key     Key
	Spec    cgroup.HCacheSpec
	Name    string
	Content uint64
	To      PoolID
	// Count bounds a READ_AHEAD: the hypervisor stages at most Count
	// contiguous blocks starting at Key.Block.
	Count int64
}

// Response answers one Request. Ok reports a GET hit or an accepted PUT;
// Pool carries the CREATE_CGROUP result; Stats carries GET_STATS.
// Latency is the cost charged to the caller — backend-internal for a bare
// Backend.Dispatch, transport-inclusive when returned by a Transport.
type Response struct {
	Op      OpCode
	Ok      bool
	Pool    PoolID
	Stats   PoolStats
	Latency time.Duration
	// Count reports how many contiguous blocks a READ_AHEAD extracted.
	Count int64
}

// Backend is the hypervisor-side second-chance cache store, reached
// through the single op-dispatch entry point. Latencies returned are the
// store-internal costs; transport costs are added by the Transport.
type Backend interface {
	Dispatch(now time.Duration, req Request) Response
}

// Transport carries requests from a guest to a Backend. Implementations
// may buffer batchable ops and deliver them in multi-op crossings, as
// long as per-VM FIFO order is preserved and every non-batchable op acts
// as a barrier that drains buffered ops first.
type Transport interface {
	// Submit sends (or enqueues) one request. The Response's Latency is
	// everything charged to the caller now, including any batch drain
	// this submission triggered.
	Submit(now time.Duration, req Request) Response
	// Flush drains buffered operations, returning the latency incurred.
	Flush(now time.Duration) time.Duration
}

// PendingGet is the handle to one in-flight asynchronous get issued over
// an AsyncTransport: created at submission, completed when the crossing
// carrying the request drains (or is abandoned), redeemed with Await.
//
// The handle's fields are owned by the issuing transport: a
// concurrency-safe transport must confine every method call to its own
// internal lock, and guests interact with a handle only by passing it
// back to the transport that created it. The lifecycle is linear —
// pending → done (Complete/Fail) → resolved (first Resolve) — and every
// transition is idempotent-safe: resolving twice returns the recorded
// response with only the wait remaining.
//
// ddlint:linear
type PendingGet struct {
	tag     uint64
	done    bool
	ok      bool
	failed  bool // crossing abandoned: the frame never reached the backend
	readyAt time.Duration

	// deadline is the absolute virtual time by which the get must
	// resolve; past it the handle reports a miss regardless of the
	// completion's verdict (0 = no budget). expired records that the
	// budget was the reason the get missed.
	deadline time.Duration
	expired  bool

	resolved bool
	resp     Response
}

// NewPendingGet returns a fresh pending handle awaiting the completion of
// the tagged frame tag.
func NewPendingGet(tag uint64) *PendingGet { return &PendingGet{tag: tag} }

// ReadyPendingGet returns a handle that is already done (the answer is
// known — e.g. served from a staging buffer) but not yet resolved: the
// first Resolve will record the response and charge any remaining wait
// until readyAt.
func ReadyPendingGet(ok bool, readyAt time.Duration) *PendingGet {
	return &PendingGet{done: true, ok: ok, readyAt: readyAt}
}

// CompletedPendingGet returns a fully resolved handle wrapping resp — the
// sync-fallback path: a transport that answered synchronously hands back
// a handle whose Await costs only the wait remaining past readyAt.
func CompletedPendingGet(resp Response, readyAt time.Duration) *PendingGet {
	return &PendingGet{done: true, resolved: true, ok: resp.Ok, readyAt: readyAt, resp: resp}
}

// Tag reports the completion tag the transport assigned at submission.
func (pg *PendingGet) Tag() uint64 { return pg.tag }

// SetDeadline arms the handle's latency budget: Resolve reports a miss
// (with latency clamped to the budget) if the completion lands after the
// absolute virtual time d, and a watchdog may FailDeadline the handle
// outright once now passes d.
func (pg *PendingGet) SetDeadline(d time.Duration) { pg.deadline = d }

// Deadline reports the armed deadline (0 = no budget).
func (pg *PendingGet) Deadline() time.Duration { return pg.deadline }

// DeadlineExceeded reports whether the latency budget — not a transport
// failure — is why the get resolved as a miss.
func (pg *PendingGet) DeadlineExceeded() bool { return pg.expired }

// Done reports whether the completion has landed (or the crossing
// failed); a done handle's Await forces no further drain.
func (pg *PendingGet) Done() bool { return pg.done }

// Failed reports whether the crossing carrying the frame was abandoned.
func (pg *PendingGet) Failed() bool { return pg.failed }

// Complete records the get's answer and the virtual time its page
// handover finishes.
func (pg *PendingGet) Complete(ok bool, readyAt time.Duration) {
	pg.done = true
	pg.ok = ok
	pg.readyAt = readyAt
}

// Fail completes the handle as a transport failure at virtual time at:
// the frame never reached the backend, so the get reports a miss (never
// data loss).
//
// ddlint:consumes
func (pg *PendingGet) Fail(at time.Duration) {
	pg.done = true
	pg.failed = true
	pg.readyAt = at
}

// FailDeadline completes the handle as a latency-budget miss at virtual
// time at — the watchdog's verdict for a waiter whose deadline passed
// with the completion still in flight. Like Fail it is loss-free: the
// guest re-reads the block from its virtual disk.
//
// ddlint:consumes
func (pg *PendingGet) FailDeadline(at time.Duration) {
	pg.done = true
	pg.failed = true
	pg.expired = true
	pg.readyAt = at
}

// Resolve turns the handle into the guest-visible response. submitLat is
// the latency the caller already accumulated this submission (drains it
// triggered); the reported latency is the later of that and the wait
// until the completion's ready-at. first reports whether this call
// performed the resolution — the transport charges failure accounting
// and latency observation exactly once, on the first resolution; later
// calls return the recorded response with only the wait remaining from
// now.
//
// ddlint:consumes
func (pg *PendingGet) Resolve(now, submitLat time.Duration) (resp Response, first bool) {
	if pg.resolved {
		resp = pg.resp
		resp.Latency = 0
		if pg.readyAt > now {
			resp.Latency = pg.readyAt - now
		}
		return resp, false
	}
	if !pg.done {
		// A transport completes or fails every frame it accepted, but a
		// completion can be lost in flight (drop fault on the completion
		// path) or torn down mid-flight; a stuck waiter must not hang the
		// guest.
		pg.Fail(now + submitLat)
	}
	total := submitLat
	if wait := pg.readyAt - now; wait > total {
		total = wait
	}
	ok := pg.ok && !pg.failed
	if pg.deadline > 0 && now+total > pg.deadline {
		// The budget expired before the answer was usable: the guest
		// stopped waiting at the deadline and falls back to disk, so the
		// get is a miss and the charged wait is clamped to the budget
		// remaining. The crossing still completes in the background (its
		// virtual cost was already charged to the drain); only the
		// guest-visible verdict and wait are bounded.
		pg.expired = true
		ok = false
		total = pg.deadline - now
		if total < 0 {
			total = 0
		}
	}
	pg.resolved = true
	pg.resp = Response{Op: OpGet, Ok: ok, Latency: total}
	return pg.resp, true
}

// AsyncTransport is the optional capability a Transport may implement to
// let a guest keep several gets in flight at once. SubmitAsync issues a
// get without waiting for its answer, returning a pending handle and
// only the submission cost charged now; Await redeems the handle,
// charging the wait remaining until its completion. Fronts discover the
// capability by type assertion and fall back to the synchronous Submit,
// so plain transports (fakes, the cost-free backendTransport) keep
// working unchanged.
type AsyncTransport interface {
	Transport
	// SubmitAsync issues req without waiting for completion. For ops other
	// than get — or transports whose async path is disabled — it must fall
	// back to Submit and return an already-completed handle.
	SubmitAsync(now time.Duration, req Request) (*PendingGet, time.Duration)
	// Await blocks (in virtual time) until pg completes, returning the
	// response with Latency the wait remaining from now.
	Await(now time.Duration, pg *PendingGet) Response
}

// DeadlineTransport is the optional capability a Transport may implement
// when it enforces per-op latency budgets. Watchdog sweeps in-flight
// operations whose deadline has passed, failing each as a miss and
// releasing its transport-side resources (waiter-table entry, ring slot,
// covered staged blocks); it returns how many waiters it failed. Close
// tears the transport down — final drain, every outstanding handle
// failed as a miss, staging dropped — returning the teardown latency.
// Guests discover the capability by type assertion: the watchdog tick
// and VM shutdown call it when present, and plain transports need
// neither (they complete everything synchronously).
type DeadlineTransport interface {
	Transport
	Watchdog(now time.Duration) int
	Close(now time.Duration) time.Duration
}

// backendTransport is the trivial Transport: every op dispatches
// immediately with no transport cost. It is the wiring for in-process
// tests and for backends that are not behind a modeled hypercall.
type backendTransport struct{ be Backend }

// NewBackendTransport wraps a Backend as a cost-free, unbuffered
// Transport.
func NewBackendTransport(be Backend) Transport { return backendTransport{be} }

func (t backendTransport) Submit(now time.Duration, req Request) Response {
	return t.be.Dispatch(now, req)
}

func (t backendTransport) Flush(time.Duration) time.Duration { return 0 }

// PoolStats is the per-container statistics view the paper's GET_STATS
// operation exposes to the in-VM policy controller.
type PoolStats struct {
	UsedBytes        int64
	EntitlementBytes int64
	Objects          int64
	Gets             int64
	GetHits          int64
	Puts             int64
	PutRejects       int64
	Evictions        int64
	// Demotions counts objects moved down the tier ladder by capacity
	// enforcement instead of evicted outright (the write-behind third
	// tier); a demoted object is still cached, so it is deliberately not
	// part of Evictions.
	Demotions int64
	// ReadAheadGets counts blocks probed by READ_AHEAD bulk extraction
	// (including the terminating miss probe); ReadAheadHits counts the
	// blocks actually extracted. They stay out of Gets/GetHits: a staged
	// block may never reach the guest (staging-buffer eviction or
	// invalidation discards it, and the exclusive protocol has already
	// removed it from the pool), so folding readahead into the get
	// counters would conflate probe kinds. The derived ratios below DO
	// combine them — with the pipelined read path on by default, bulk
	// extraction replaces most synchronous gets, and a ratio over Gets
	// alone would exclude exactly the traffic that hits.
	ReadAheadGets int64
	ReadAheadHits int64
}

// LookupToStoreRatio is the paper's Table 2 metric: the percentage of
// stored objects that were later looked up successfully. Readahead
// extractions count as successful lookups.
func (s PoolStats) LookupToStoreRatio() float64 {
	if s.Puts == 0 {
		return 0
	}
	return 100 * float64(s.GetHits+s.ReadAheadHits) / float64(s.Puts)
}

// HitRatio is the fraction of lookups that hit, in percent. Readahead
// probes count as lookups alongside synchronous and tagged gets.
func (s PoolStats) HitRatio() float64 {
	gets := s.Gets + s.ReadAheadGets
	if gets == 0 {
		return 0
	}
	return 100 * float64(s.GetHits+s.ReadAheadHits) / float64(gets)
}

// FrontStats aggregates guest-side cleancache activity.
type FrontStats struct {
	Gets     int64
	GetHits  int64
	Puts     int64
	Flushes  int64
	Migrates int64
	// ReadAheads counts the READ_AHEAD requests the sequential-stream
	// detector issued.
	ReadAheads int64
	// DeadlineMisses counts async lookups that resolved as misses because
	// their latency budget expired (the transport's deadline enforcement,
	// see DeadlineTransport) rather than because the block was absent.
	DeadlineMisses int64
}

// streamKey identifies one per-file read stream for the sequential
// detector.
type streamKey struct {
	pool  PoolID
	inode uint64
}

// stream is the detector state for one file: the block a sequential
// reader would touch next, the current run length, and how far ahead
// staging has already been requested.
type stream struct {
	key   streamKey
	next  int64
	run   int
	ahead int64         // first block not yet covered by an issued READ_AHEAD
	elem  *list.Element // position in the detector's recency list
}

// seqRunThreshold is how many consecutive blocks a reader must touch
// before the detector calls the stream sequential and starts prefetching
// (mirrors the guest kernel's readahead ramp-up).
const seqRunThreshold = 3

// maxTrackedStreams bounds the detector's per-file state; when the table
// is full, the least-recently-accessed stream is evicted to make room.
// Readahead is best-effort, so evicting a cold stream only costs that
// stream a re-ramp if it ever resumes — active streams keep their run
// state.
const maxTrackedStreams = 256

// Front is the guest-side cleancache layer for one VM. Its methods are
// thin typed wrappers over the op API: each builds a Request and submits
// it on the VM's transport, so call sites read as the kernel hooks they
// model while everything crosses the boundary as ops.
type Front struct {
	vm      VMID
	tr      Transport
	enabled bool
	// filter implements the paper's cgroup-name filter: only matching
	// containers get hypervisor cache pools. Nil admits every container.
	filter func(name string) bool

	// readAhead is the prefetch window (blocks) issued once a stream is
	// detected sequential; 0 disables detection entirely. streams holds
	// the per-file detector state and streamLRU orders it by recency
	// (front = hottest) so a full table evicts the coldest stream. Like
	// stats, these are owned by the VM's single submission context (the
	// transport below does its own locking).
	readAhead int
	streams   map[streamKey]*stream
	streamLRU *list.List

	stats FrontStats
}

// NewFront wires a VM's cleancache layer to a backend over tr.
func NewFront(vm VMID, tr Transport) *Front {
	return &Front{vm: vm, tr: tr, enabled: true}
}

// VM reports the owning VM id.
func (f *Front) VM() VMID { return f.vm }

// Transport exposes the VM's transport (for telemetry and draining).
func (f *Front) Transport() Transport { return f.tr }

// SetEnabled toggles the whole second-chance path (cleancache off = the
// paper's "no hypervisor cache" configurations).
func (f *Front) SetEnabled(on bool) { f.enabled = on }

// Enabled reports whether the second-chance path is active.
func (f *Front) Enabled() bool { return f.enabled }

// SetFilter installs the cgroup-name filter.
func (f *Front) SetFilter(filter func(name string) bool) { f.filter = filter }

// SetReadAhead sets the sequential-stream prefetch window in blocks
// (0 disables detection). When a per-file read stream has touched
// seqRunThreshold consecutive blocks, every further sequential get
// extends a READ_AHEAD request so the hypervisor stages the next window
// blocks for crossing-free consumption.
func (f *Front) SetReadAhead(window int) {
	f.readAhead = window
	if window > 0 && f.streams == nil {
		f.streams = make(map[streamKey]*stream)
		f.streamLRU = list.New()
	}
}

// Stats returns the guest-side counters.
func (f *Front) Stats() FrontStats { return f.stats }

// FlushTransport drains any buffered operations — the guest's periodic
// transport tick calls this so puts and flushes never linger unsent.
func (f *Front) FlushTransport(now time.Duration) time.Duration {
	return f.tr.Flush(now)
}

// RegisterGroup handles the CREATE_CGROUP event: it asks the backend for a
// pool and records the id on the cgroup. Containers rejected by the filter
// keep pool id zero and bypass the hypervisor cache entirely.
func (f *Front) RegisterGroup(now time.Duration, g *cgroup.Group) time.Duration {
	if !f.enabled || (f.filter != nil && !f.filter(g.Name())) {
		return 0
	}
	resp := f.tr.Submit(now, Request{Op: OpCreateCgroup, VM: f.vm, Name: g.Name(), Spec: g.Spec()})
	g.SetPoolID(int64(resp.Pool))
	return resp.Latency
}

// UnregisterGroup handles DESTROY_CGROUP.
func (f *Front) UnregisterGroup(now time.Duration, g *cgroup.Group) time.Duration {
	if g.PoolID() == 0 {
		return 0
	}
	resp := f.tr.Submit(now, Request{Op: OpDestroyCgroup, VM: f.vm, Key: Key{Pool: PoolID(g.PoolID())}})
	g.SetPoolID(0)
	return resp.Latency
}

// UpdateSpec handles SET_CG_WEIGHT: pushes the group's current <T, W>
// tuple to the hypervisor cache.
func (f *Front) UpdateSpec(now time.Duration, g *cgroup.Group) time.Duration {
	if g.PoolID() == 0 {
		return 0
	}
	resp := f.tr.Submit(now, Request{Op: OpSetCgWeight, VM: f.vm, Key: Key{Pool: PoolID(g.PoolID())}, Spec: g.Spec()})
	return resp.Latency
}

// Get looks up a block on page cache miss. A hit moves the page to the
// guest (one page copied) and removes it from the hypervisor cache.
func (f *Front) Get(now time.Duration, g *cgroup.Group, inode uint64, block int64) (bool, time.Duration) {
	if !f.enabled || g.PoolID() == 0 {
		return false, 0
	}
	f.stats.Gets++
	key := Key{Pool: PoolID(g.PoolID()), Inode: inode, Block: block}
	resp := f.tr.Submit(now, Request{Op: OpGet, VM: f.vm, Key: key})
	if resp.Ok {
		f.stats.GetHits++
	}
	lat := resp.Latency
	if f.readAhead > 0 {
		lat += f.noteAccess(now+lat, key)
	}
	return resp.Ok, lat
}

// PendingRead is the guest-visible handle for one in-flight
// second-chance lookup issued by GetAsync. It is redeemed exactly once
// with AwaitRead; redeeming again returns the recorded verdict for free.
// Handles belong to the Front that issued them and share its
// single-submission-context ownership (they are not safe for concurrent
// use from multiple goroutines).
//
// ddlint:linear
type PendingRead struct {
	pg   *PendingGet // nil on the fast-miss and sync-fallback paths
	done bool
	hit  bool
}

// Hit reports the lookup verdict of a redeemed handle.
func (pr *PendingRead) Hit() bool { return pr.hit }

// Expired reports whether a redeemed handle missed because its latency
// budget ran out rather than because the block was absent — the signal
// the page cache uses to count deadline-driven disk fallbacks.
func (pr *PendingRead) Expired() bool { return pr.pg != nil && pr.pg.DeadlineExceeded() }

// GetAsync issues a second-chance lookup without waiting for its answer.
// On an AsyncTransport the get is submitted as an in-flight frame and
// the returned latency covers only the submission cost charged now (any
// ring drain it triggered); on a plain Transport it falls back to the
// synchronous Get path and returns an already-redeemable handle whose
// AwaitRead costs nothing more. Either way the sequential-stream
// detector observes the access at submission, so readahead for the
// blocks beyond the caller's window is already on the wire while the
// caller is still issuing or awaiting handles.
func (f *Front) GetAsync(now time.Duration, g *cgroup.Group, inode uint64, block int64) (*PendingRead, time.Duration) {
	if !f.enabled || g.PoolID() == 0 {
		return &PendingRead{done: true}, 0
	}
	f.stats.Gets++
	key := Key{Pool: PoolID(g.PoolID()), Inode: inode, Block: block}
	req := Request{Op: OpGet, VM: f.vm, Key: key}
	at, ok := f.tr.(AsyncTransport)
	if !ok {
		resp := f.tr.Submit(now, req)
		if resp.Ok {
			f.stats.GetHits++
		}
		lat := resp.Latency
		if f.readAhead > 0 {
			lat += f.noteAccess(now+lat, key)
		}
		return &PendingRead{done: true, hit: resp.Ok}, lat
	}
	pg, lat := at.SubmitAsync(now, req)
	if f.readAhead > 0 {
		lat += f.noteAccess(now+lat, key)
	}
	return &PendingRead{pg: pg}, lat
}

// AwaitRead redeems a GetAsync handle, returning the lookup verdict and
// the wait remaining from now until the answer's page handover
// completes. The first redemption counts the hit; later redemptions (and
// handles from the fallback path) return the recorded verdict at no
// further cost.
func (f *Front) AwaitRead(now time.Duration, pr *PendingRead) (bool, time.Duration) {
	if pr.done {
		return pr.hit, 0
	}
	at, ok := f.tr.(AsyncTransport)
	if !ok {
		// Cannot happen — a pending handle is only created over an
		// AsyncTransport — but a miss verdict is always safe.
		pr.done = true
		return false, 0
	}
	resp := at.Await(now, pr.pg)
	pr.done, pr.hit = true, resp.Ok
	if resp.Ok {
		f.stats.GetHits++
	} else if pr.pg.DeadlineExceeded() {
		f.stats.DeadlineMisses++
	}
	return resp.Ok, resp.Latency
}

// noteAccess feeds the sequential-stream detector with one get and, once
// the stream is established, issues a READ_AHEAD covering the blocks
// beyond what staging was already asked for. The request is batchable
// fire-and-forget; the returned latency is whatever ring drain the
// submission happened to trigger.
func (f *Front) noteAccess(now time.Duration, key Key) time.Duration {
	sk := streamKey{pool: key.Pool, inode: key.Inode}
	s := f.streams[sk]
	if s == nil {
		if len(f.streams) >= maxTrackedStreams {
			// Evict the least-recently-accessed stream: it pays a re-ramp
			// if it ever resumes, while every active stream keeps its run.
			if back := f.streamLRU.Back(); back != nil {
				cold := back.Value.(*stream)
				f.streamLRU.Remove(back)
				delete(f.streams, cold.key)
			}
		}
		s = &stream{key: sk}
		s.elem = f.streamLRU.PushFront(s)
		f.streams[sk] = s
	} else {
		f.streamLRU.MoveToFront(s.elem)
	}
	if key.Block == s.next {
		s.run++
	} else {
		s.run = 1
		s.ahead = key.Block + 1
	}
	s.next = key.Block + 1
	if s.run < seqRunThreshold {
		return 0
	}
	start := s.next
	if s.ahead > start {
		start = s.ahead
	}
	end := s.next + int64(f.readAhead)
	if start >= end {
		return 0 // window already requested
	}
	s.ahead = end
	return f.ReadAhead(now, key.Pool, key.Inode, start, end-start)
}

// ReadAhead asks the hypervisor to stage up to count contiguous blocks of
// (pool, inode) starting at block — the READ_AHEAD op the sequential
// detector drives. Exposed for tests and custom prefetch policies.
func (f *Front) ReadAhead(now time.Duration, pool PoolID, inode uint64, block, count int64) time.Duration {
	if !f.enabled || pool == 0 || count <= 0 {
		return 0
	}
	f.stats.ReadAheads++
	resp := f.tr.Submit(now, Request{
		Op: OpReadAhead, VM: f.vm,
		Key:   Key{Pool: pool, Inode: inode, Block: block},
		Count: count,
	})
	return resp.Latency
}

// Put offers a clean evicted page to the hypervisor cache. content
// carries the block's content identity for deduplicating stores (0 =
// unknown). A batching transport may defer delivery; the reported
// acceptance is then optimistic, which is harmless because the guest
// drops the page either way (fire-and-forget, as in the paper).
func (f *Front) Put(now time.Duration, g *cgroup.Group, inode uint64, block int64, content uint64) (bool, time.Duration) {
	if !f.enabled || g.PoolID() == 0 {
		return false, 0
	}
	f.stats.Puts++
	resp := f.tr.Submit(now, Request{
		Op: OpPut, VM: f.vm,
		Key:     Key{Pool: PoolID(g.PoolID()), Inode: inode, Block: block},
		Content: content,
	})
	return resp.Ok, resp.Latency
}

// FlushPage invalidates one block (dirtied or truncated in the guest).
func (f *Front) FlushPage(now time.Duration, g *cgroup.Group, inode uint64, block int64) time.Duration {
	if !f.enabled || g.PoolID() == 0 {
		return 0
	}
	f.stats.Flushes++
	resp := f.tr.Submit(now, Request{
		Op: OpFlushPage, VM: f.vm,
		Key: Key{Pool: PoolID(g.PoolID()), Inode: inode, Block: block},
	})
	return resp.Latency
}

// FlushInode invalidates a whole file (deletion).
func (f *Front) FlushInode(now time.Duration, g *cgroup.Group, inode uint64) time.Duration {
	if !f.enabled || g.PoolID() == 0 {
		return 0
	}
	f.stats.Flushes++
	resp := f.tr.Submit(now, Request{
		Op: OpFlushInode, VM: f.vm,
		Key: Key{Pool: PoolID(g.PoolID()), Inode: inode},
	})
	return resp.Latency
}

// MigrateInode handles MIGRATE_OBJECT when a shared file's ownership moves
// between containers.
func (f *Front) MigrateInode(now time.Duration, from, to *cgroup.Group, inode uint64) time.Duration {
	if !f.enabled || from.PoolID() == 0 || to.PoolID() == 0 {
		return 0
	}
	f.stats.Migrates++
	resp := f.tr.Submit(now, Request{
		Op: OpMigrateObject, VM: f.vm,
		Key: Key{Pool: PoolID(from.PoolID()), Inode: inode},
		To:  PoolID(to.PoolID()),
	})
	return resp.Latency
}

// GroupStats implements the GET_STATS query for the in-VM policy
// controller.
func (f *Front) GroupStats(g *cgroup.Group) PoolStats {
	if g.PoolID() == 0 {
		return PoolStats{}
	}
	resp := f.tr.Submit(0, Request{Op: OpGetStats, VM: f.vm, Key: Key{Pool: PoolID(g.PoolID())}})
	return resp.Stats
}
