// Package cleancache models the guest OS second-chance cache interface of
// the paper: the Linux cleancache layer, extended for DoubleDecker so that
// pools belong to containers (cgroups) rather than file systems.
//
// The page cache calls the Front on lookup misses (get), clean evictions
// (put) and invalidations (flush). The Front derives the container pool
// from the cgroup owning the page — the paper's page→process→cgroup
// resolution — and forwards the operation over the hypercall channel to a
// Backend (the DoubleDecker hypervisor cache manager, or the
// nesting-agnostic Global baseline).
package cleancache

import (
	"time"

	"doubledecker/internal/cgroup"
	"doubledecker/internal/hypercall"
)

// VMID identifies a virtual machine at the hypervisor.
type VMID int

// PoolID identifies a container's cache pool within the hypervisor cache.
// Zero means "no pool" (hypervisor caching disabled for the container).
type PoolID int64

// Key identifies one cached block: the paper's
// (pool-id, inode-num, block-offset) tuple; the VM id is carried
// separately by the transport.
type Key struct {
	Pool  PoolID
	Inode uint64
	Block int64
}

// PoolStats is the per-container statistics view the paper's GET_STATS
// operation exposes to the in-VM policy controller.
type PoolStats struct {
	UsedBytes        int64
	EntitlementBytes int64
	Objects          int64
	Gets             int64
	GetHits          int64
	Puts             int64
	PutRejects       int64
	Evictions        int64
}

// LookupToStoreRatio is the paper's Table 2 metric: the percentage of
// stored objects that were later looked up successfully.
func (s PoolStats) LookupToStoreRatio() float64 {
	if s.Puts == 0 {
		return 0
	}
	return 100 * float64(s.GetHits) / float64(s.Puts)
}

// HitRatio is the fraction of gets that hit, in percent.
func (s PoolStats) HitRatio() float64 {
	if s.Gets == 0 {
		return 0
	}
	return 100 * float64(s.GetHits) / float64(s.Gets)
}

// Backend is the hypervisor-side second-chance cache store. Latencies
// returned are the store-internal costs; transport costs are added by the
// Front.
type Backend interface {
	// CreatePool registers a container (CREATE_CGROUP) and returns its
	// pool id.
	CreatePool(now time.Duration, vm VMID, name string, spec cgroup.HCacheSpec) (PoolID, time.Duration)
	// DestroyPool drops all objects of a container (DESTROY_CGROUP).
	DestroyPool(now time.Duration, vm VMID, pool PoolID) time.Duration
	// SetSpec updates a container's <T, W> tuple (SET_CG_WEIGHT).
	SetSpec(now time.Duration, vm VMID, pool PoolID, spec cgroup.HCacheSpec) time.Duration
	// Get looks up and removes a block (exclusive caching).
	Get(now time.Duration, vm VMID, key Key) (bool, time.Duration)
	// Put stores a clean block evicted from the guest page cache.
	// content is the block's stable content identity (0 = unknown),
	// which deduplicating stores may exploit.
	Put(now time.Duration, vm VMID, key Key, content uint64) (bool, time.Duration)
	// FlushPage invalidates one block.
	FlushPage(now time.Duration, vm VMID, key Key) time.Duration
	// FlushInode invalidates all blocks of a file in a pool.
	FlushInode(now time.Duration, vm VMID, pool PoolID, inode uint64) time.Duration
	// MigrateInode re-keys a file's blocks from one pool to another
	// (MIGRATE_OBJECT, for files shared across containers).
	MigrateInode(now time.Duration, vm VMID, from, to PoolID, inode uint64) time.Duration
	// PoolStats implements GET_STATS.
	PoolStats(vm VMID, pool PoolID) PoolStats
}

// FrontStats aggregates guest-side cleancache activity.
type FrontStats struct {
	Gets     int64
	GetHits  int64
	Puts     int64
	Flushes  int64
	Migrates int64
}

// Front is the guest-side cleancache layer for one VM.
type Front struct {
	vm      VMID
	backend Backend
	ch      *hypercall.Channel
	enabled bool
	// filter implements the paper's cgroup-name filter: only matching
	// containers get hypervisor cache pools. Nil admits every container.
	filter func(name string) bool

	stats FrontStats
}

// NewFront wires a VM's cleancache layer to a backend over a hypercall
// channel.
func NewFront(vm VMID, backend Backend, ch *hypercall.Channel) *Front {
	return &Front{vm: vm, backend: backend, ch: ch, enabled: true}
}

// VM reports the owning VM id.
func (f *Front) VM() VMID { return f.vm }

// SetEnabled toggles the whole second-chance path (cleancache off = the
// paper's "no hypervisor cache" configurations).
func (f *Front) SetEnabled(on bool) { f.enabled = on }

// Enabled reports whether the second-chance path is active.
func (f *Front) Enabled() bool { return f.enabled }

// SetFilter installs the cgroup-name filter.
func (f *Front) SetFilter(filter func(name string) bool) { f.filter = filter }

// Stats returns the guest-side counters.
func (f *Front) Stats() FrontStats { return f.stats }

// RegisterGroup handles the CREATE_CGROUP event: it asks the backend for a
// pool and records the id on the cgroup. Containers rejected by the filter
// keep pool id zero and bypass the hypervisor cache entirely.
func (f *Front) RegisterGroup(now time.Duration, g *cgroup.Group) time.Duration {
	if !f.enabled || (f.filter != nil && !f.filter(g.Name())) {
		return 0
	}
	lat := f.ch.Cost(0)
	pool, l := f.backend.CreatePool(now+lat, f.vm, g.Name(), g.Spec())
	g.SetPoolID(int64(pool))
	return lat + l
}

// UnregisterGroup handles DESTROY_CGROUP.
func (f *Front) UnregisterGroup(now time.Duration, g *cgroup.Group) time.Duration {
	if g.PoolID() == 0 {
		return 0
	}
	lat := f.ch.Cost(0)
	lat += f.backend.DestroyPool(now+lat, f.vm, PoolID(g.PoolID()))
	g.SetPoolID(0)
	return lat
}

// UpdateSpec handles SET_CG_WEIGHT: pushes the group's current <T, W>
// tuple to the hypervisor cache.
func (f *Front) UpdateSpec(now time.Duration, g *cgroup.Group) time.Duration {
	if g.PoolID() == 0 {
		return 0
	}
	lat := f.ch.Cost(0)
	return lat + f.backend.SetSpec(now+lat, f.vm, PoolID(g.PoolID()), g.Spec())
}

// Get looks up a block on page cache miss. A hit moves the page to the
// guest (one page copied) and removes it from the hypervisor cache.
func (f *Front) Get(now time.Duration, g *cgroup.Group, inode uint64, block int64) (bool, time.Duration) {
	if !f.enabled || g.PoolID() == 0 {
		return false, 0
	}
	f.stats.Gets++
	lat := f.ch.Cost(1)
	hit, l := f.backend.Get(now+lat, f.vm, Key{Pool: PoolID(g.PoolID()), Inode: inode, Block: block})
	if hit {
		f.stats.GetHits++
	}
	return hit, lat + l
}

// Put offers a clean evicted page to the hypervisor cache. content
// carries the block's content identity for deduplicating stores (0 =
// unknown).
func (f *Front) Put(now time.Duration, g *cgroup.Group, inode uint64, block int64, content uint64) (bool, time.Duration) {
	if !f.enabled || g.PoolID() == 0 {
		return false, 0
	}
	f.stats.Puts++
	lat := f.ch.Cost(1)
	ok, l := f.backend.Put(now+lat, f.vm, Key{Pool: PoolID(g.PoolID()), Inode: inode, Block: block}, content)
	return ok, lat + l
}

// FlushPage invalidates one block (dirtied or truncated in the guest).
func (f *Front) FlushPage(now time.Duration, g *cgroup.Group, inode uint64, block int64) time.Duration {
	if !f.enabled || g.PoolID() == 0 {
		return 0
	}
	f.stats.Flushes++
	lat := f.ch.Cost(0)
	return lat + f.backend.FlushPage(now+lat, f.vm, Key{Pool: PoolID(g.PoolID()), Inode: inode, Block: block})
}

// FlushInode invalidates a whole file (deletion).
func (f *Front) FlushInode(now time.Duration, g *cgroup.Group, inode uint64) time.Duration {
	if !f.enabled || g.PoolID() == 0 {
		return 0
	}
	f.stats.Flushes++
	lat := f.ch.Cost(0)
	return lat + f.backend.FlushInode(now+lat, f.vm, PoolID(g.PoolID()), inode)
}

// MigrateInode handles MIGRATE_OBJECT when a shared file's ownership moves
// between containers.
func (f *Front) MigrateInode(now time.Duration, from, to *cgroup.Group, inode uint64) time.Duration {
	if !f.enabled || from.PoolID() == 0 || to.PoolID() == 0 {
		return 0
	}
	f.stats.Migrates++
	lat := f.ch.Cost(0)
	return lat + f.backend.MigrateInode(now+lat, f.vm, PoolID(from.PoolID()), PoolID(to.PoolID()), inode)
}

// GroupStats implements the GET_STATS query for the in-VM policy
// controller.
func (f *Front) GroupStats(g *cgroup.Group) PoolStats {
	if g.PoolID() == 0 {
		return PoolStats{}
	}
	return f.backend.PoolStats(f.vm, PoolID(g.PoolID()))
}
