// Package radix implements the sparse radix tree the DoubleDecker
// indexing module uses to map file block offsets to cache objects —
// the same structure (6 bits per level, grow-on-demand height) the Linux
// page cache and the paper's per-file block index are built on.
package radix

// fanout is 2^bits children per node.
const (
	bits   = 6
	fanout = 1 << bits
	mask   = fanout - 1
)

type node struct {
	slots [fanout]any // *node at interior levels, user values at leaves
	count int         // occupied slots
}

// Tree maps non-negative int64 keys to values. The zero value is not
// usable; construct with New.
type Tree struct {
	root   *node
	height int // levels below root; key space = fanout^(height+1)
	size   int
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: &node{}}
}

// Len reports the number of stored keys.
func (t *Tree) Len() int { return t.size }

// maxKey returns the largest key representable at the current height.
func (t *Tree) maxKey() int64 {
	k := int64(1)
	for i := 0; i <= t.height; i++ {
		k *= fanout
		if k < 0 { // overflow: whole int64 space covered
			return int64(^uint64(0) >> 1)
		}
	}
	return k - 1
}

// grow raises the tree height until key fits.
func (t *Tree) grow(key int64) {
	for key > t.maxKey() {
		if t.root.count == 0 {
			t.height++
			continue
		}
		n := &node{}
		n.slots[0] = t.root
		n.count = 1
		t.root = n
		t.height++
	}
}

func slotIndex(key int64, level int) int {
	return int(key>>(uint(level)*bits)) & mask
}

// Insert stores v under key, returning the previous value if any. Negative
// keys are not supported and are ignored (returns nil).
func (t *Tree) Insert(key int64, v any) any {
	if key < 0 || v == nil {
		return nil
	}
	t.grow(key)
	n := t.root
	for level := t.height; level > 0; level-- {
		idx := slotIndex(key, level)
		child, ok := n.slots[idx].(*node)
		if !ok {
			child = &node{}
			n.slots[idx] = child
			n.count++
		}
		n = child
	}
	idx := slotIndex(key, 0)
	prev := n.slots[idx]
	n.slots[idx] = v
	if prev == nil {
		n.count++
		t.size++
	}
	return prev
}

// Get returns the value stored under key, or nil.
func (t *Tree) Get(key int64) any {
	if key < 0 || key > t.maxKey() {
		return nil
	}
	n := t.root
	for level := t.height; level > 0; level-- {
		child, ok := n.slots[slotIndex(key, level)].(*node)
		if !ok {
			return nil
		}
		n = child
	}
	return n.slots[slotIndex(key, 0)]
}

// Delete removes key, returning the value that was stored, or nil. Interior
// nodes left empty are pruned.
func (t *Tree) Delete(key int64) any {
	if key < 0 || key > t.maxKey() {
		return nil
	}
	// Record the path for pruning.
	path := make([]*node, 0, t.height+1)
	n := t.root
	for level := t.height; level > 0; level-- {
		path = append(path, n)
		child, ok := n.slots[slotIndex(key, level)].(*node)
		if !ok {
			return nil
		}
		n = child
	}
	idx := slotIndex(key, 0)
	v := n.slots[idx]
	if v == nil {
		return nil
	}
	n.slots[idx] = nil
	n.count--
	t.size--
	// Prune empty nodes bottom-up.
	for i := len(path) - 1; i >= 0 && n.count == 0; i-- {
		parent := path[i]
		level := t.height - i
		parent.slots[slotIndex(key, level)] = nil
		parent.count--
		n = parent
	}
	return v
}

// ForEach visits all (key, value) pairs in ascending key order. Returning
// false from fn stops the walk early.
func (t *Tree) ForEach(fn func(key int64, v any) bool) {
	t.walk(t.root, t.height, 0, fn)
}

func (t *Tree) walk(n *node, level int, prefix int64, fn func(int64, any) bool) bool {
	for i := 0; i < fanout; i++ {
		if n.slots[i] == nil {
			continue
		}
		key := prefix | int64(i)<<(uint(level)*bits)
		if level == 0 {
			if !fn(key, n.slots[i]) {
				return false
			}
			continue
		}
		child, ok := n.slots[i].(*node)
		if !ok {
			continue
		}
		if !t.walk(child, level-1, key, fn) {
			return false
		}
	}
	return true
}
