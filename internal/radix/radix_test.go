package radix

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestInsertGetDelete(t *testing.T) {
	tr := New()
	if prev := tr.Insert(5, "a"); prev != nil {
		t.Fatalf("Insert new returned %v", prev)
	}
	if got := tr.Get(5); got != "a" {
		t.Fatalf("Get = %v", got)
	}
	if prev := tr.Insert(5, "b"); prev != "a" {
		t.Fatalf("Insert replace returned %v", prev)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
	if got := tr.Delete(5); got != "b" {
		t.Fatalf("Delete = %v", got)
	}
	if tr.Len() != 0 || tr.Get(5) != nil {
		t.Fatal("delete did not remove")
	}
}

func TestMissingKeys(t *testing.T) {
	tr := New()
	tr.Insert(100, 1)
	if tr.Get(99) != nil || tr.Get(0) != nil {
		t.Fatal("Get of absent key returned value")
	}
	if tr.Delete(99) != nil {
		t.Fatal("Delete of absent key returned value")
	}
	if tr.Get(-1) != nil || tr.Insert(-1, 1) != nil {
		t.Fatal("negative keys must be rejected")
	}
}

func TestLargeKeysGrowHeight(t *testing.T) {
	tr := New()
	keys := []int64{0, 63, 64, 4095, 4096, 1 << 30, 1 << 45}
	for i, k := range keys {
		tr.Insert(k, i)
	}
	for i, k := range keys {
		if got := tr.Get(k); got != i {
			t.Fatalf("Get(%d) = %v, want %d", k, got, i)
		}
	}
	if tr.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(keys))
	}
}

func TestGrowPreservesExisting(t *testing.T) {
	tr := New()
	tr.Insert(1, "one")
	tr.Insert(1<<40, "big") // forces multiple growth steps
	if tr.Get(1) != "one" {
		t.Fatal("growth lost small key")
	}
	if tr.Get(1<<40) != "big" {
		t.Fatal("big key missing")
	}
}

func TestForEachOrdered(t *testing.T) {
	tr := New()
	keys := []int64{900, 3, 77, 64, 1 << 20, 0}
	for _, k := range keys {
		tr.Insert(k, k)
	}
	var visited []int64
	tr.ForEach(func(k int64, v any) bool {
		visited = append(visited, k)
		return true
	})
	sorted := append([]int64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if len(visited) != len(sorted) {
		t.Fatalf("visited %d keys, want %d", len(visited), len(sorted))
	}
	for i := range sorted {
		if visited[i] != sorted[i] {
			t.Fatalf("order: got %v want %v", visited, sorted)
		}
	}
}

func TestForEachEarlyStop(t *testing.T) {
	tr := New()
	for i := int64(0); i < 100; i++ {
		tr.Insert(i, i)
	}
	n := 0
	tr.ForEach(func(int64, any) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("visited %d, want 10", n)
	}
}

func TestDeletePrunes(t *testing.T) {
	tr := New()
	tr.Insert(1<<30, "x")
	tr.Delete(1 << 30)
	// After pruning, the root should have no children.
	if tr.root.count != 0 {
		t.Fatalf("root count = %d after full delete", tr.root.count)
	}
}

// Property: the tree behaves exactly like a map[int64]any.
func TestPropertyMatchesMap(t *testing.T) {
	prop := func(ops []struct {
		Key uint32
		Del bool
	}) bool {
		tr := New()
		ref := make(map[int64]int)
		for i, op := range ops {
			k := int64(op.Key)
			if op.Del {
				_, inRef := ref[k]
				got := tr.Delete(k)
				if inRef != (got != nil) {
					return false
				}
				delete(ref, k)
			} else {
				tr.Insert(k, i)
				ref[k] = i
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			if tr.Get(k) != v {
				return false
			}
		}
		count := 0
		ok := true
		tr.ForEach(func(k int64, v any) bool {
			count++
			if rv, exists := ref[k]; !exists || rv != v {
				ok = false
				return false
			}
			return true
		})
		return ok && count == len(ref)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
