// Package metrics provides the measurement primitives used across the
// DoubleDecker simulator: counters, time-series samplers for occupancy
// plots (the paper's cache-distribution figures), and latency histograms
// for the throughput/latency tables.
//
// Concurrency contract: every type in this package is self-locking.
// Counter and Gauge are single atomics; Series, Histogram and Registry
// serialize internally with a mutex, so metrics may be recorded from the
// cache manager's concurrent data paths without external locks.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count, safe for concurrent
// use.
type Counter struct {
	n atomic.Int64
}

// Add increments the counter by delta; negative deltas are ignored.
func (c *Counter) Add(delta int64) {
	if delta > 0 {
		c.n.Add(delta)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n.Add(1) }

// Value reports the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Gauge is an instantaneous value that can move in both directions, safe
// for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value reports the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// stripePad spaces the stripes of a StripedCounter one cache line apart
// (64-byte lines; 8 bytes are the counter itself).
type stripe struct {
	n atomic.Int64
	_ [56]byte
}

// StripedCounter is a monotonically increasing event count striped across
// cache lines, for hot paths where many goroutines increment the same
// logical counter: a plain atomic counter serializes every increment on
// one cache line, which shows up as coherence traffic exactly when the
// surrounding code has been sharded to avoid shared state. Each caller
// adds to its own stripe (by shard index, worker index, or any stable
// small integer) and readers sum the stripes.
//
// The zero value is NOT ready to use; call NewStripedCounter.
type StripedCounter struct {
	stripes []stripe
}

// NewStripedCounter returns a counter with n stripes (minimum 1).
func NewStripedCounter(n int) *StripedCounter {
	if n < 1 {
		n = 1
	}
	return &StripedCounter{stripes: make([]stripe, n)}
}

// Stripes reports the stripe count.
func (c *StripedCounter) Stripes() int { return len(c.stripes) }

// Add increments stripe i by delta (negative deltas are ignored, as with
// Counter). Stripe indexes fold onto the configured width, so callers may
// pass any non-negative stable integer.
func (c *StripedCounter) Add(i int, delta int64) {
	if delta <= 0 {
		return
	}
	c.stripes[i%len(c.stripes)].n.Add(delta)
}

// Inc increments stripe i by one.
func (c *StripedCounter) Inc(i int) { c.stripes[i%len(c.stripes)].n.Add(1) }

// Value sums the stripes. The sum is not a snapshot at a single instant
// (stripes are read one by one), but it is exact at quiescence and never
// undercounts a stripe that was already summed.
func (c *StripedCounter) Value() int64 {
	var t int64
	for i := range c.stripes {
		t += c.stripes[i].n.Load()
	}
	return t
}

// Point is one sample of a time series.
type Point struct {
	At    time.Duration
	Value float64
}

// Series is an append-only time series, used to record cache occupancy
// over virtual time for the paper's distribution figures. Safe for
// concurrent use.
type Series struct {
	Name string

	mu     sync.Mutex
	points []Point
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Record appends a sample taken at virtual time at.
func (s *Series) Record(at time.Duration, v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.points = append(s.points, Point{At: at, Value: v})
}

// Points returns a copy of the recorded samples.
func (s *Series) Points() []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Point, len(s.points))
	copy(out, s.points)
	return out
}

// Len reports the number of samples.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.points)
}

// Last returns the most recent sample, or a zero Point if empty.
func (s *Series) Last() Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.points) == 0 {
		return Point{}
	}
	return s.points[len(s.points)-1]
}

// Max returns the maximum sampled value, or 0 if empty.
func (s *Series) Max() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := 0.0
	for _, p := range s.points {
		if p.Value > m {
			m = p.Value
		}
	}
	return m
}

// Mean returns the arithmetic mean of sampled values, or 0 if empty.
func (s *Series) Mean() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range s.points {
		sum += p.Value
	}
	return sum / float64(len(s.points))
}

// MeanAfter returns the mean of samples taken at or after cutoff. It is
// used to report steady-state occupancy, skipping warm-up.
func (s *Series) MeanAfter(cutoff time.Duration) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	sum, n := 0.0, 0
	for _, p := range s.points {
		if p.At >= cutoff {
			sum += p.Value
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// At returns the latest sample value at or before t (step interpolation),
// or 0 when t precedes all samples.
func (s *Series) At(t time.Duration) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := 0.0
	for _, p := range s.points {
		if p.At > t {
			break
		}
		v = p.Value
	}
	return v
}

// Histogram accumulates latency observations with fixed precision. It
// retains enough structure to answer mean and quantile queries without
// storing every sample: observations are bucketed on a log scale. Safe
// for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
	buckets map[int]int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{buckets: make(map[int]int64)}
}

// log-scale bucketing: ~4% relative resolution.
const bucketsPerDecade = 57

func bucketOf(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	return int(math.Floor(math.Log10(float64(d)) * bucketsPerDecade))
}

func bucketUpper(b int) time.Duration {
	return time.Duration(math.Pow(10, float64(b+1)/bucketsPerDecade))
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.count++
	h.sum += d
	h.buckets[bucketOf(d)]++
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum reports the total of all observations.
func (h *Histogram) Sum() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean reports the average observation, or 0 when empty.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Min reports the smallest observation, or 0 when empty.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max reports the largest observation, or 0 when empty.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile reports an approximation of the q-th quantile (0 ≤ q ≤ 1).
// Resolution is the bucket width (~4%).
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	keys := make([]int, 0, len(h.buckets))
	for k := range h.buckets {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	target := int64(math.Ceil(q * float64(h.count)))
	var cum int64
	for _, k := range keys {
		cum += h.buckets[k]
		if cum >= target {
			u := bucketUpper(k)
			if u > h.max {
				u = h.max
			}
			return u
		}
	}
	return h.max
}

// Registry is a named collection of metrics for one simulation run. Safe
// for concurrent use: lookups share one mutex, and the returned metrics
// self-lock.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	series   map[string]*Series
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		series:   make(map[string]*Series),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Series returns the named series, creating it on first use.
func (r *Registry) Series(name string) *Series {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.series[name]
	if !ok {
		s = NewSeries(name)
		r.series[name] = s
	}
	return s
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// SeriesNames returns the sorted names of all recorded series.
func (r *Registry) SeriesNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.series))
	for n := range r.series {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Summary renders a sorted human-readable dump of counters and gauges.
func (r *Registry) Summary() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "counter %-40s %d\n", n, r.counters[n].Value())
	}
	names = names[:0]
	for n := range r.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "gauge   %-40s %d\n", n, r.gauges[n].Value())
	}
	return b.String()
}
