package metrics

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored
	if got := c.Value(); got != 5 {
		t.Fatalf("Value = %d, want 5", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("Value = %d, want 7", got)
	}
}

func TestSeriesBasics(t *testing.T) {
	s := NewSeries("occupancy")
	s.Record(time.Second, 100)
	s.Record(2*time.Second, 300)
	s.Record(3*time.Second, 200)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if s.Max() != 300 {
		t.Fatalf("Max = %v, want 300", s.Max())
	}
	if s.Mean() != 200 {
		t.Fatalf("Mean = %v, want 200", s.Mean())
	}
	if got := s.Last(); got.Value != 200 || got.At != 3*time.Second {
		t.Fatalf("Last = %+v", got)
	}
}

func TestSeriesMeanAfter(t *testing.T) {
	s := NewSeries("x")
	s.Record(0, 1000) // warm-up spike
	s.Record(time.Second, 10)
	s.Record(2*time.Second, 20)
	if got := s.MeanAfter(time.Second); got != 15 {
		t.Fatalf("MeanAfter = %v, want 15", got)
	}
	if got := s.MeanAfter(10 * time.Second); got != 0 {
		t.Fatalf("MeanAfter past end = %v, want 0", got)
	}
}

func TestSeriesAt(t *testing.T) {
	s := NewSeries("x")
	s.Record(time.Second, 1)
	s.Record(3*time.Second, 3)
	if got := s.At(0); got != 0 {
		t.Fatalf("At(0) = %v, want 0", got)
	}
	if got := s.At(2 * time.Second); got != 1 {
		t.Fatalf("At(2s) = %v, want 1 (step)", got)
	}
	if got := s.At(5 * time.Second); got != 3 {
		t.Fatalf("At(5s) = %v, want 3", got)
	}
}

func TestSeriesPointsIsCopy(t *testing.T) {
	s := NewSeries("x")
	s.Record(time.Second, 1)
	pts := s.Points()
	pts[0].Value = 99
	if s.Points()[0].Value != 1 {
		t.Fatal("Points returned a mutable reference to internal state")
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	for _, d := range []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond} {
		h.Observe(d)
	}
	if h.Count() != 3 {
		t.Fatalf("Count = %d, want 3", h.Count())
	}
	if h.Mean() != 2*time.Millisecond {
		t.Fatalf("Mean = %v, want 2ms", h.Mean())
	}
	if h.Min() != time.Millisecond || h.Max() != 3*time.Millisecond {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	p50 := h.Quantile(0.5)
	// ~4% bucket resolution: accept 450..560µs.
	if p50 < 450*time.Microsecond || p50 > 560*time.Microsecond {
		t.Fatalf("p50 = %v, want ~500µs", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 940*time.Microsecond || p99 > 1100*time.Microsecond {
		t.Fatalf("p99 = %v, want ~990µs", p99)
	}
	if h.Quantile(0) != h.Min() {
		t.Fatalf("Quantile(0) = %v, want min", h.Quantile(0))
	}
	if h.Quantile(1) != h.Max() {
		t.Fatalf("Quantile(1) = %v, want max", h.Quantile(1))
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestRegistryReuse(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc()
	r.Counter("a").Inc()
	if got := r.Counter("a").Value(); got != 2 {
		t.Fatalf("counter = %d, want 2 (same instance)", got)
	}
	r.Series("s").Record(0, 1)
	if r.Series("s").Len() != 1 {
		t.Fatal("series not reused")
	}
	names := r.SeriesNames()
	if len(names) != 1 || names[0] != "s" {
		t.Fatalf("SeriesNames = %v", names)
	}
}

func TestRegistrySummaryDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz").Add(1)
	r.Counter("aa").Add(2)
	r.Gauge("mid").Set(3)
	a, b := r.Summary(), r.Summary()
	if a != b {
		t.Fatal("Summary not deterministic")
	}
	if len(a) == 0 {
		t.Fatal("Summary empty")
	}
}

// Property: histogram quantiles are monotone in q and bounded by min/max.
func TestPropertyHistogramQuantileMonotone(t *testing.T) {
	prop := func(samples []uint32) bool {
		if len(samples) == 0 {
			return true
		}
		h := NewHistogram()
		for _, s := range samples {
			h.Observe(time.Duration(s%10_000_000) * time.Nanosecond)
		}
		prev := time.Duration(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			if v < h.Min() || v > h.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram mean equals the true mean of observations.
func TestPropertyHistogramMeanExact(t *testing.T) {
	prop := func(samples []uint16) bool {
		if len(samples) == 0 {
			return true
		}
		h := NewHistogram()
		var sum int64
		for _, s := range samples {
			h.Observe(time.Duration(s) * time.Microsecond)
			sum += int64(s) * 1000
		}
		want := sum / int64(len(samples))
		return math.Abs(float64(h.Mean()-time.Duration(want))) < 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestStripedCounterBasics covers stripe folding, negative-delta
// rejection and summation.
func TestStripedCounterBasics(t *testing.T) {
	c := NewStripedCounter(4)
	if c.Stripes() != 4 {
		t.Fatalf("stripes = %d, want 4", c.Stripes())
	}
	c.Add(0, 5)
	c.Add(1, 3)
	c.Add(5, 2) // folds onto stripe 1
	c.Inc(7)    // folds onto stripe 3
	c.Add(2, -9)
	if got := c.Value(); got != 11 {
		t.Fatalf("value = %d, want 11", got)
	}
	if min := NewStripedCounter(0); min.Stripes() != 1 {
		t.Fatalf("zero-width counter got %d stripes, want 1", min.Stripes())
	}
}

// TestStripedCounterConcurrent hammers every stripe from its own
// goroutine; run under -race this pins the no-shared-cacheline design as
// actually data-race-free, and the final sum must be exact.
func TestStripedCounterConcurrent(t *testing.T) {
	const workers, per = 8, 10000
	c := NewStripedCounter(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc(w)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("value = %d, want %d", got, workers*per)
	}
}
