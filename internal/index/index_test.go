package index

import (
	"testing"
	"testing/quick"

	"doubledecker/internal/cgroup"
)

func obj(inode uint64, block int64, st cgroup.StoreType) *Object {
	return &Object{Inode: inode, Block: block, Size: 4096, Store: st}
}

func TestInsertLookupRemove(t *testing.T) {
	p := NewPool(1, 1, "c1")
	o := obj(10, 5, cgroup.StoreMem)
	if replaced := p.Insert(o); replaced != nil {
		t.Fatalf("Insert returned %v", replaced)
	}
	if got := p.Lookup(10, 5); got != o {
		t.Fatal("Lookup missed inserted object")
	}
	if p.Count() != 1 || p.UsedBytes(cgroup.StoreMem) != 4096 {
		t.Fatalf("count/used = %d/%d", p.Count(), p.UsedBytes(cgroup.StoreMem))
	}
	if !p.Remove(o) {
		t.Fatal("Remove failed")
	}
	if p.Lookup(10, 5) != nil || p.Count() != 0 || p.UsedBytes(cgroup.StoreMem) != 0 {
		t.Fatal("Remove left state behind")
	}
}

func TestInsertReplacesSameKey(t *testing.T) {
	p := NewPool(1, 1, "c1")
	o1 := obj(10, 5, cgroup.StoreMem)
	o2 := obj(10, 5, cgroup.StoreMem)
	p.Insert(o1)
	replaced := p.Insert(o2)
	if replaced != o1 {
		t.Fatalf("replaced = %v, want o1", replaced)
	}
	if p.Count() != 1 {
		t.Fatalf("Count = %d, want 1", p.Count())
	}
	if p.Lookup(10, 5) != o2 {
		t.Fatal("lookup should find the new object")
	}
}

func TestFIFOOrderPerStore(t *testing.T) {
	p := NewPool(1, 1, "c1")
	m1 := obj(1, 0, cgroup.StoreMem)
	s1 := obj(2, 0, cgroup.StoreSSD)
	m2 := obj(1, 1, cgroup.StoreMem)
	p.Insert(m1)
	p.Insert(s1)
	p.Insert(m2)
	if got := p.Oldest(cgroup.StoreMem); got != m1 {
		t.Fatalf("Oldest(mem) = %v, want m1", got)
	}
	if got := p.Oldest(cgroup.StoreSSD); got != s1 {
		t.Fatalf("Oldest(ssd) = %v, want s1", got)
	}
	p.Remove(m1)
	if got := p.Oldest(cgroup.StoreMem); got != m2 {
		t.Fatalf("Oldest after removal = %v, want m2", got)
	}
}

func TestReinsertMovesToBack(t *testing.T) {
	p := NewPool(1, 1, "c1")
	a := obj(1, 0, cgroup.StoreMem)
	b := obj(1, 1, cgroup.StoreMem)
	p.Insert(a)
	p.Insert(b)
	// Re-put of the same key: fresh object, same key as a.
	a2 := obj(1, 0, cgroup.StoreMem)
	p.Insert(a2)
	if got := p.Oldest(cgroup.StoreMem); got != b {
		t.Fatal("re-inserted key should move to FIFO back")
	}
}

func TestRemoveInode(t *testing.T) {
	p := NewPool(1, 1, "c1")
	for b := int64(0); b < 10; b++ {
		p.Insert(obj(7, b, cgroup.StoreMem))
	}
	p.Insert(obj(8, 0, cgroup.StoreMem))
	objs := p.RemoveInode(7)
	if len(objs) != 10 {
		t.Fatalf("RemoveInode returned %d objects, want 10", len(objs))
	}
	if p.Count() != 1 {
		t.Fatalf("Count = %d, want 1", p.Count())
	}
	if p.Lookup(7, 3) != nil {
		t.Fatal("inode 7 blocks still indexed")
	}
	if p.RemoveInode(99) != nil {
		t.Fatal("RemoveInode of absent inode should return nil")
	}
}

func TestDrainAll(t *testing.T) {
	p := NewPool(1, 1, "c1")
	p.Insert(obj(1, 0, cgroup.StoreMem))
	p.Insert(obj(2, 0, cgroup.StoreSSD))
	p.Insert(obj(2, 1, cgroup.StoreSSD))
	objs := p.DrainAll()
	if len(objs) != 3 {
		t.Fatalf("DrainAll returned %d, want 3", len(objs))
	}
	if p.Count() != 0 || p.TotalBytes() != 0 {
		t.Fatal("pool not empty after drain")
	}
}

func TestRemoveForeignObject(t *testing.T) {
	p := NewPool(1, 1, "c1")
	in := obj(1, 0, cgroup.StoreMem)
	p.Insert(in)
	ghost := obj(1, 0, cgroup.StoreMem) // same key, never inserted
	if p.Remove(ghost) {
		t.Fatal("Remove of foreign object succeeded")
	}
	if p.Lookup(1, 0) != in {
		t.Fatal("original object lost")
	}
}

func TestInodes(t *testing.T) {
	p := NewPool(1, 1, "c1")
	p.Insert(obj(3, 0, cgroup.StoreMem))
	p.Insert(obj(9, 0, cgroup.StoreMem))
	inos := p.Inodes()
	if len(inos) != 2 {
		t.Fatalf("Inodes = %v", inos)
	}
}

// Property: accounting (count, used bytes, FIFO membership) stays
// consistent under random insert/remove sequences.
func TestPropertyAccountingConsistent(t *testing.T) {
	prop := func(ops []struct {
		Inode uint8
		Block uint8
		SSD   bool
		Del   bool
	}) bool {
		p := NewPool(1, 1, "p")
		live := make(map[[2]uint64]*Object)
		for _, op := range ops {
			key := [2]uint64{uint64(op.Inode), uint64(op.Block)}
			st := cgroup.StoreMem
			if op.SSD {
				st = cgroup.StoreSSD
			}
			if op.Del {
				if o, ok := live[key]; ok {
					if !p.Remove(o) {
						return false
					}
					delete(live, key)
				}
				continue
			}
			o := obj(uint64(op.Inode), int64(op.Block), st)
			p.Insert(o)
			live[key] = o
		}
		if int(p.Count()) != len(live) {
			return false
		}
		var wantMem, wantSSD int64
		for _, o := range live {
			if o.Store == cgroup.StoreMem {
				wantMem += o.Size
			} else {
				wantSSD += o.Size
			}
		}
		return p.UsedBytes(cgroup.StoreMem) == wantMem &&
			p.UsedBytes(cgroup.StoreSSD) == wantSSD &&
			p.TotalBytes() == wantMem+wantSSD
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestAcctViewTracksPool pins the lock-free accounting split: the
// pointer returned by Acct observes every structural mutation without
// going through the pool itself.
func TestAcctViewTracksPool(t *testing.T) {
	p := NewPool(1, 1, "acct")
	acct := p.Acct()
	if acct.TotalBytes() != 0 || acct.Count() != 0 {
		t.Fatalf("fresh pool not empty: %d bytes, %d objects", acct.TotalBytes(), acct.Count())
	}
	a := &Object{Inode: 1, Block: 0, Size: 4096, Store: cgroup.StoreMem}
	b := &Object{Inode: 1, Block: 1, Size: 4096, Store: cgroup.StoreSSD}
	p.Insert(a)
	p.Insert(b)
	if got := acct.UsedBytes(cgroup.StoreMem); got != 4096 {
		t.Errorf("mem used = %d, want 4096", got)
	}
	if got := acct.UsedBytes(cgroup.StoreSSD); got != 4096 {
		t.Errorf("ssd used = %d, want 4096", got)
	}
	if got, want := acct.TotalBytes(), p.TotalBytes(); got != want {
		t.Errorf("acct total %d != pool total %d", got, want)
	}
	p.Remove(a)
	if got := acct.Count(); got != 1 {
		t.Errorf("count after remove = %d, want 1", got)
	}
}
