// Package index implements the DoubleDecker indexing module: it maps the
// (pool-id, inode-num, block-offset) keys arriving from guest VMs to
// storage objects through a per-pool hierarchy — an inode hash table whose
// entries are per-file radix trees — and keeps the per-pool FIFO order
// (the paper's LRU-equivalent for exclusive caches) that eviction follows.
//
// Concurrency contract: a Pool does NOT self-lock. All structural
// operations (Lookup, Insert, Remove, Oldest, RemoveInode, DrainAll,
// Inodes) must be serialized by the caller — the cache manager
// (internal/ddcache) does so under its per-VM lock or its store-level
// write lock. The byte and object accounting (UsedBytes, TotalBytes,
// Count) is atomic, so those read-only queries are safe from any
// goroutine without holding the caller's locks; this is what keeps the
// manager's stat paths off the data path's locks.
package index

import (
	"container/list"
	"sync/atomic"

	"doubledecker/internal/cgroup"
	"doubledecker/internal/cleancache"
	"doubledecker/internal/radix"
)

// Object is one cached block owned by a pool and resident in a store.
type Object struct {
	Pool  cleancache.PoolID
	Inode uint64
	Block int64
	Size  int64
	Store cgroup.StoreType
	// Seq is the manager-assigned insertion sequence number, used by the
	// Global baseline to evict in strict cross-pool FIFO order.
	Seq uint64
	// Content is the block's content identity when deduplication is
	// enabled (0 otherwise).
	Content uint64
	// Pending marks a write-behind demotion in flight: the object has
	// been re-homed to Store in the index but its bytes still sit in the
	// demotion queue's buffer, charged to no backend until the drain
	// stores (or drops) them.
	Pending bool

	elem *list.Element
}

// storeSlots bounds the per-store accounting array: store types are
// small consecutive constants (mem, SSD, hybrid, remote).
const storeSlots = 5

// Accounting is a pool's byte and object accounting, held apart from the
// structural index so lock-free observers can share the pointer without
// ever touching the caller-serialized structures. All fields are atomic:
// writes happen on the structural paths (which the caller serializes),
// reads are safe from any goroutine. The cache manager's stat paths and
// its eviction victim selection read entirely through this view.
type Accounting struct {
	used  [storeSlots]atomic.Int64
	count atomic.Int64
}

// UsedBytes reports bytes held in the given store.
func (a *Accounting) UsedBytes(st cgroup.StoreType) int64 {
	return a.used[storeSlot(st)].Load()
}

// TotalBytes reports bytes held across all stores.
func (a *Accounting) TotalBytes() int64 {
	var t int64
	for i := range a.used {
		t += a.used[i].Load()
	}
	return t
}

// Count reports the number of objects accounted.
func (a *Accounting) Count() int64 { return a.count.Load() }

// Pool indexes the objects of one container.
type Pool struct {
	ID   cleancache.PoolID
	VM   cleancache.VMID
	Name string

	files map[uint64]*radix.Tree
	fifo  map[cgroup.StoreType]*list.List
	// acct is atomic only for lock-free reads; writes happen on the
	// caller-serialized structural paths.
	acct Accounting
}

// NewPool returns an empty pool index.
func NewPool(id cleancache.PoolID, vm cleancache.VMID, name string) *Pool {
	return &Pool{
		ID:    id,
		VM:    vm,
		Name:  name,
		files: make(map[uint64]*radix.Tree),
		fifo:  make(map[cgroup.StoreType]*list.List),
	}
}

// Lookup returns the object for (inode, block), or nil.
func (p *Pool) Lookup(inode uint64, block int64) *Object {
	tree, ok := p.files[inode]
	if !ok {
		return nil
	}
	obj, _ := tree.Get(block).(*Object)
	return obj
}

// Insert adds obj to the index, replacing (and returning) any previous
// object under the same key. The caller owns releasing the replaced
// object's storage.
func (p *Pool) Insert(obj *Object) *Object {
	obj.Pool = p.ID
	tree, ok := p.files[obj.Inode]
	if !ok {
		tree = radix.New()
		p.files[obj.Inode] = tree
	}
	var replaced *Object
	if prev := tree.Insert(obj.Block, obj); prev != nil {
		replaced, _ = prev.(*Object)
		if replaced != nil {
			p.unlink(replaced)
		}
	}
	q, ok := p.fifo[obj.Store]
	if !ok {
		q = list.New()
		p.fifo[obj.Store] = q
	}
	obj.elem = q.PushBack(obj)
	p.acct.used[storeSlot(obj.Store)].Add(obj.Size)
	p.acct.count.Add(1)
	return replaced
}

// storeSlot maps a store type onto the accounting array, folding
// out-of-range values onto slot 0.
func storeSlot(st cgroup.StoreType) int {
	if st < 0 || int(st) >= storeSlots {
		return 0
	}
	return int(st)
}

// Remove deletes obj from the index. It reports whether the object was
// present.
func (p *Pool) Remove(obj *Object) bool {
	tree, ok := p.files[obj.Inode]
	if !ok {
		return false
	}
	got, _ := tree.Delete(obj.Block).(*Object)
	if got == nil {
		return false
	}
	if got != obj {
		// Key collision with a different object: put it back.
		tree.Insert(obj.Block, got)
		return false
	}
	if tree.Len() == 0 {
		delete(p.files, obj.Inode)
	}
	p.unlink(obj)
	return true
}

// unlink detaches obj from FIFO and accounting (index entry handled by
// the caller).
func (p *Pool) unlink(obj *Object) {
	if obj.elem != nil {
		p.fifo[obj.Store].Remove(obj.elem)
		obj.elem = nil
	}
	slot := storeSlot(obj.Store)
	if n := p.acct.used[slot].Add(-obj.Size); n < 0 {
		// Defensive clamp, as before the atomics: structural mutations
		// are caller-serialized, so no concurrent writer can interleave.
		p.acct.used[slot].Store(0)
	}
	p.acct.count.Add(-1)
}

// Oldest returns the pool's oldest object in the given store, or nil.
func (p *Pool) Oldest(st cgroup.StoreType) *Object {
	q, ok := p.fifo[st]
	if !ok || q.Len() == 0 {
		return nil
	}
	obj, _ := q.Front().Value.(*Object)
	return obj
}

// RemoveInode removes and returns all objects of a file (FlushInode,
// container teardown helpers).
func (p *Pool) RemoveInode(inode uint64) []*Object {
	tree, ok := p.files[inode]
	if !ok {
		return nil
	}
	objs := make([]*Object, 0, tree.Len())
	tree.ForEach(func(_ int64, v any) bool {
		if obj, ok := v.(*Object); ok {
			objs = append(objs, obj)
		}
		return true
	})
	for _, obj := range objs {
		p.unlink(obj)
	}
	delete(p.files, inode)
	return objs
}

// DrainAll removes and returns every object in the pool (DestroyPool).
func (p *Pool) DrainAll() []*Object {
	objs := make([]*Object, 0, p.acct.count.Load())
	for inode := range p.files {
		objs = append(objs, p.RemoveInode(inode)...)
	}
	return objs
}

// Inodes returns the inode numbers currently indexed (order unspecified).
func (p *Pool) Inodes() []uint64 {
	out := make([]uint64, 0, len(p.files))
	for ino := range p.files {
		out = append(out, ino)
	}
	return out
}

// Acct exposes the pool's lock-free accounting view. The returned
// pointer stays valid for the pool's lifetime; callers that must read
// occupancy without serializing against structural operations (the cache
// manager's stat and victim-selection paths) hold this pointer instead of
// the pool itself.
func (p *Pool) Acct() *Accounting { return &p.acct }

// UsedBytes reports bytes held in the given store. Safe without the
// caller's locks.
func (p *Pool) UsedBytes(st cgroup.StoreType) int64 { return p.acct.UsedBytes(st) }

// TotalBytes reports bytes held across all stores. Safe without the
// caller's locks.
func (p *Pool) TotalBytes() int64 { return p.acct.TotalBytes() }

// Count reports the number of objects in the pool. Safe without the
// caller's locks.
func (p *Pool) Count() int64 { return p.acct.Count() }
