// Package blockdev models the storage hardware under the simulated stack:
// RAM (for memory-backed cache stores), an SSD (the paper's Kingston V300
// used for the DoubleDecker SSD store), and a rotating disk (the backing
// store behind every virtual disk).
//
// Devices are single-queue FCFS servers on virtual time: a request arriving
// at time t starts at max(t, busyUntil), holds the device for its service
// time, and its latency is completion minus arrival. This captures the
// queueing contention that shapes the paper's throughput numbers without
// simulating controller internals.
//
// Devices are failure-prone: every constructor accepts WithFaults to attach
// a fault.Injector, and Read/Write/WriteAsync return an error when the
// injector fails the operation (I/O error, or a stall that times out after
// the rule's delay). Without an injector the error paths are dead and cost
// one nil check.
package blockdev

import (
	"fmt"
	"sync"
	"time"

	"doubledecker/internal/fault"
)

// Device is a simulated block device. Read and Write return the latency a
// synchronous caller observes; WriteAsync queues the work on the device
// (consuming device time and delaying later requests) but returns
// immediately, mirroring the DoubleDecker SSD store's asynchronous puts.
//
// A non-nil error means the operation failed (injected I/O error or stall
// timeout); the returned latency is still meaningful — it is the time the
// caller spent discovering the failure — and the device time was consumed.
type Device interface {
	Name() string
	Read(now time.Duration, offset, size int64) (time.Duration, error)
	Write(now time.Duration, offset, size int64) (time.Duration, error)
	WriteAsync(now time.Duration, offset, size int64) error
	Stats() Stats
}

// Stats aggregates device activity over a run. Bytes count only successful
// transfers; errored operations are tallied separately.
type Stats struct {
	Reads        int64
	Writes       int64
	BytesRead    int64
	BytesWritten int64
	ReadErrors   int64
	WriteErrors  int64
	BusyTime     time.Duration
}

func init() {
	// Every device exposes per-instance sites "<name>.read" and
	// "<name>.write"; register the suffix patterns so plan validation
	// recognizes device rules regardless of the instance name.
	fault.RegisterSites("*.read", "*.write")
}

// Option configures a device at construction.
type Option func(*devConfig)

type devConfig struct {
	faults *fault.Injector
}

// WithFaults attaches a fault injector. The device consults it on every
// operation under the sites "<name>.read" and "<name>.write". A nil
// injector (or omitting the option) keeps the device fault-free.
func WithFaults(in *fault.Injector) Option {
	return func(c *devConfig) { c.faults = in }
}

func applyOptions(opts []Option) devConfig {
	var c devConfig
	for _, o := range opts {
		o(&c)
	}
	return c
}

// faultAdjust resolves an injector decision against the nominal service
// time: latency spikes stretch the service, stalls replace it with the
// timeout the caller waits out, and failing kinds produce the structured
// error. The device consumes the returned service time either way.
func faultAdjust(d fault.Decision, svc time.Duration, site string) (time.Duration, error) {
	switch d.Kind {
	case fault.KindLatency:
		return svc + d.Delay, nil
	case fault.KindStall:
		return d.Delay, &fault.Error{Site: site, Kind: d.Kind}
	default:
		if d.Fails() {
			return svc, &fault.Error{Site: site, Kind: d.Kind}
		}
		return svc, nil
	}
}

// queue models the FCFS server shared by all device types. Devices are
// self-locking: q.mu serializes admission and statistics, so one device
// may be shared by any number of goroutines (concurrent guests of one
// hypervisor cache store contend here, as they would on real hardware).
type queue struct {
	mu        sync.Mutex
	busyUntil time.Duration
	stats     Stats
}

// serve admits a request at now with the given service time and returns the
// caller-visible latency. Callers hold q.mu.
func (q *queue) serve(now, service time.Duration) time.Duration {
	start := now
	if q.busyUntil > start {
		start = q.busyUntil
	}
	q.busyUntil = start + service
	q.stats.BusyTime += service
	return q.busyUntil - now
}

// absorb admits asynchronous work: it occupies the device but the caller
// does not wait. Callers hold q.mu.
func (q *queue) absorb(now, service time.Duration) {
	start := now
	if q.busyUntil > start {
		start = q.busyUntil
	}
	q.busyUntil = start + service
	q.stats.BusyTime += service
}

// read serves one read request with fault accounting. Callers hold q.mu.
func (q *queue) read(now, svc time.Duration, size int64, err error) (time.Duration, error) {
	q.stats.Reads++
	if err != nil {
		q.stats.ReadErrors++
	} else {
		q.stats.BytesRead += size
	}
	return q.serve(now, svc), err
}

// write serves one write request with fault accounting. Callers hold q.mu.
func (q *queue) write(now, svc time.Duration, size int64, err error) (time.Duration, error) {
	q.stats.Writes++
	if err != nil {
		q.stats.WriteErrors++
	} else {
		q.stats.BytesWritten += size
	}
	return q.serve(now, svc), err
}

// writeAsync absorbs one asynchronous write with fault accounting. Callers
// hold q.mu.
func (q *queue) writeAsync(now, svc time.Duration, size int64, err error) error {
	q.stats.Writes++
	if err != nil {
		q.stats.WriteErrors++
	} else {
		q.stats.BytesWritten += size
	}
	q.absorb(now, svc)
	return err
}

func transferTime(size int64, bytesPerSec int64) time.Duration {
	if bytesPerSec <= 0 || size <= 0 {
		return 0
	}
	return time.Duration(size * int64(time.Second) / bytesPerSec)
}

// RAM is a memory "device": page-copy latency at memory bandwidth plus a
// small fixed per-operation cost. Used by the in-memory cache store.
type RAM struct {
	name      string
	perOp     time.Duration
	bandwidth int64 // bytes/sec
	faults    *fault.Injector
	siteRead  string
	siteWrite string
	q         queue
}

// NewRAM returns a RAM device with typical DDR-class parameters:
// 10 GB/s effective copy bandwidth and 200 ns fixed cost per operation.
func NewRAM(name string, opts ...Option) *RAM {
	c := applyOptions(opts)
	return &RAM{
		name: name, perOp: 200 * time.Nanosecond, bandwidth: 10 << 30,
		faults: c.faults, siteRead: name + ".read", siteWrite: name + ".write",
	}
}

// Name implements Device.
func (r *RAM) Name() string { return r.name }

// Read implements Device.
func (r *RAM) Read(now time.Duration, _ int64, size int64) (time.Duration, error) {
	svc, err := faultAdjust(r.faults.Decide(now, r.siteRead), r.perOp+transferTime(size, r.bandwidth), r.siteRead)
	r.q.mu.Lock()
	defer r.q.mu.Unlock()
	return r.q.read(now, svc, size, err)
}

// Write implements Device.
func (r *RAM) Write(now time.Duration, _ int64, size int64) (time.Duration, error) {
	svc, err := faultAdjust(r.faults.Decide(now, r.siteWrite), r.perOp+transferTime(size, r.bandwidth), r.siteWrite)
	r.q.mu.Lock()
	defer r.q.mu.Unlock()
	return r.q.write(now, svc, size, err)
}

// WriteAsync implements Device. RAM writes are so cheap they are absorbed.
func (r *RAM) WriteAsync(now time.Duration, _ int64, size int64) error {
	svc, err := faultAdjust(r.faults.Decide(now, r.siteWrite), r.perOp+transferTime(size, r.bandwidth), r.siteWrite)
	r.q.mu.Lock()
	defer r.q.mu.Unlock()
	return r.q.writeAsync(now, svc, size, err)
}

// Stats implements Device.
func (r *RAM) Stats() Stats {
	r.q.mu.Lock()
	defer r.q.mu.Unlock()
	return r.q.stats
}

// SSD models a SATA solid-state disk in the class of the paper's Kingston
// V300: ~90 µs 4 KiB random reads, ~60 µs program latency with write-back
// caching, and a shared SATA-limited transfer rate.
type SSD struct {
	name         string
	readLatency  time.Duration
	writeLatency time.Duration
	bandwidth    int64
	faults       *fault.Injector
	siteRead     string
	siteWrite    string
	q            queue
}

// NewSSD returns an SSD with SATA-3-era parameters.
func NewSSD(name string, opts ...Option) *SSD {
	c := applyOptions(opts)
	return &SSD{
		name:         name,
		readLatency:  90 * time.Microsecond,
		writeLatency: 60 * time.Microsecond,
		bandwidth:    450 << 20, // 450 MB/s, SATA-3 bound
		faults:       c.faults,
		siteRead:     name + ".read",
		siteWrite:    name + ".write",
	}
}

// Name implements Device.
func (s *SSD) Name() string { return s.name }

// Read implements Device.
func (s *SSD) Read(now time.Duration, _ int64, size int64) (time.Duration, error) {
	svc, err := faultAdjust(s.faults.Decide(now, s.siteRead), s.readLatency+transferTime(size, s.bandwidth), s.siteRead)
	s.q.mu.Lock()
	defer s.q.mu.Unlock()
	return s.q.read(now, svc, size, err)
}

// Write implements Device.
func (s *SSD) Write(now time.Duration, _ int64, size int64) (time.Duration, error) {
	svc, err := faultAdjust(s.faults.Decide(now, s.siteWrite), s.writeLatency+transferTime(size, s.bandwidth), s.siteWrite)
	s.q.mu.Lock()
	defer s.q.mu.Unlock()
	return s.q.write(now, svc, size, err)
}

// WriteAsync implements Device: the DoubleDecker SSD store issues puts
// asynchronously, so the caller does not wait but the device time is spent
// and delays subsequent reads. An injected write fault is reported at
// submission, the way a full device queue or failed command setup surfaces
// before completion.
func (s *SSD) WriteAsync(now time.Duration, _ int64, size int64) error {
	svc, err := faultAdjust(s.faults.Decide(now, s.siteWrite), s.writeLatency+transferTime(size, s.bandwidth), s.siteWrite)
	s.q.mu.Lock()
	defer s.q.mu.Unlock()
	return s.q.writeAsync(now, svc, size, err)
}

// Stats implements Device.
func (s *SSD) Stats() Stats {
	s.q.mu.Lock()
	defer s.q.mu.Unlock()
	return s.q.stats
}

// HDD models a 7200 RPM rotating disk: average seek plus half-rotation for
// random requests, pure transfer for sequential ones. Guest virtual disks
// and the swap device sit on HDDs.
type HDD struct {
	name        string
	seek        time.Duration
	halfRotate  time.Duration
	bandwidth   int64
	faults      *fault.Injector
	siteRead    string
	siteWrite   string
	lastEnd     int64 // ddlint:guarded-by mu
	firstAccess bool  // ddlint:guarded-by mu
	q           queue
}

// NewHDD returns a 7200 RPM-class disk: 4.2 ms average seek, 8.3 ms
// rotation (4.17 ms average rotational delay), 150 MB/s media rate.
func NewHDD(name string, opts ...Option) *HDD {
	c := applyOptions(opts)
	return &HDD{
		name:        name,
		seek:        4200 * time.Microsecond,
		halfRotate:  4170 * time.Microsecond,
		bandwidth:   150 << 20,
		faults:      c.faults,
		siteRead:    name + ".read",
		siteWrite:   name + ".write",
		firstAccess: true,
	}
}

// NewArrayHDD returns a storage-array-class rotating volume: command
// queuing and striping bring effective positioning down to ~1.5 ms and
// the media rate up to 250 MB/s. Virtual machine disk images sit on this
// class of storage in the paper's testbed.
func NewArrayHDD(name string, opts ...Option) *HDD {
	c := applyOptions(opts)
	return &HDD{
		name:        name,
		seek:        1000 * time.Microsecond,
		halfRotate:  500 * time.Microsecond,
		bandwidth:   250 << 20,
		faults:      c.faults,
		siteRead:    name + ".read",
		siteWrite:   name + ".write",
		firstAccess: true,
	}
}

// Name implements Device.
func (h *HDD) Name() string { return h.name }

// service computes positioning plus transfer time. Callers hold h.q.mu
// (it advances the head-position state).
//
// ddlint:requires-lock mu
func (h *HDD) service(offset, size int64) time.Duration {
	svc := transferTime(size, h.bandwidth)
	if h.firstAccess || offset != h.lastEnd {
		svc += h.seek + h.halfRotate
	}
	h.firstAccess = false
	h.lastEnd = offset + size
	return svc
}

// Read implements Device.
func (h *HDD) Read(now time.Duration, offset, size int64) (time.Duration, error) {
	d := h.faults.Decide(now, h.siteRead)
	h.q.mu.Lock()
	defer h.q.mu.Unlock()
	svc, err := faultAdjust(d, h.service(offset, size), h.siteRead)
	return h.q.read(now, svc, size, err)
}

// Write implements Device.
func (h *HDD) Write(now time.Duration, offset, size int64) (time.Duration, error) {
	d := h.faults.Decide(now, h.siteWrite)
	h.q.mu.Lock()
	defer h.q.mu.Unlock()
	svc, err := faultAdjust(d, h.service(offset, size), h.siteWrite)
	return h.q.write(now, svc, size, err)
}

// WriteAsync implements Device: writeback flushes occupy the disk without
// stalling the flusher.
func (h *HDD) WriteAsync(now time.Duration, offset, size int64) error {
	d := h.faults.Decide(now, h.siteWrite)
	h.q.mu.Lock()
	defer h.q.mu.Unlock()
	svc, err := faultAdjust(d, h.service(offset, size), h.siteWrite)
	return h.q.writeAsync(now, svc, size, err)
}

// Stats implements Device.
func (h *HDD) Stats() Stats {
	h.q.mu.Lock()
	defer h.q.mu.Unlock()
	return h.q.stats
}

// Compile-time interface checks.
var (
	_ Device = (*RAM)(nil)
	_ Device = (*SSD)(nil)
	_ Device = (*HDD)(nil)
)

// String renders device stats for debugging output.
func (s Stats) String() string {
	return fmt.Sprintf("reads=%d writes=%d bytesRead=%d bytesWritten=%d readErrs=%d writeErrs=%d busy=%v",
		s.Reads, s.Writes, s.BytesRead, s.BytesWritten, s.ReadErrors, s.WriteErrors, s.BusyTime)
}
