// Package blockdev models the storage hardware under the simulated stack:
// RAM (for memory-backed cache stores), an SSD (the paper's Kingston V300
// used for the DoubleDecker SSD store), and a rotating disk (the backing
// store behind every virtual disk).
//
// Devices are single-queue FCFS servers on virtual time: a request arriving
// at time t starts at max(t, busyUntil), holds the device for its service
// time, and its latency is completion minus arrival. This captures the
// queueing contention that shapes the paper's throughput numbers without
// simulating controller internals.
package blockdev

import (
	"fmt"
	"sync"
	"time"
)

// Device is a simulated block device. Read and Write return the latency a
// synchronous caller observes; WriteAsync queues the work on the device
// (consuming device time and delaying later requests) but returns
// immediately, mirroring the DoubleDecker SSD store's asynchronous puts.
type Device interface {
	Name() string
	Read(now time.Duration, offset, size int64) time.Duration
	Write(now time.Duration, offset, size int64) time.Duration
	WriteAsync(now time.Duration, offset, size int64)
	Stats() Stats
}

// Stats aggregates device activity over a run.
type Stats struct {
	Reads        int64
	Writes       int64
	BytesRead    int64
	BytesWritten int64
	BusyTime     time.Duration
}

// queue models the FCFS server shared by all device types. Devices are
// self-locking: q.mu serializes admission and statistics, so one device
// may be shared by any number of goroutines (concurrent guests of one
// hypervisor cache store contend here, as they would on real hardware).
type queue struct {
	mu        sync.Mutex
	busyUntil time.Duration
	stats     Stats
}

// serve admits a request at now with the given service time and returns the
// caller-visible latency. Callers hold q.mu.
func (q *queue) serve(now, service time.Duration) time.Duration {
	start := now
	if q.busyUntil > start {
		start = q.busyUntil
	}
	q.busyUntil = start + service
	q.stats.BusyTime += service
	return q.busyUntil - now
}

// absorb admits asynchronous work: it occupies the device but the caller
// does not wait. Callers hold q.mu.
func (q *queue) absorb(now, service time.Duration) {
	start := now
	if q.busyUntil > start {
		start = q.busyUntil
	}
	q.busyUntil = start + service
	q.stats.BusyTime += service
}

func transferTime(size int64, bytesPerSec int64) time.Duration {
	if bytesPerSec <= 0 || size <= 0 {
		return 0
	}
	return time.Duration(size * int64(time.Second) / bytesPerSec)
}

// RAM is a memory "device": page-copy latency at memory bandwidth plus a
// small fixed per-operation cost. Used by the in-memory cache store.
type RAM struct {
	name      string
	perOp     time.Duration
	bandwidth int64 // bytes/sec
	q         queue
}

// NewRAM returns a RAM device with typical DDR-class parameters:
// 10 GB/s effective copy bandwidth and 200 ns fixed cost per operation.
func NewRAM(name string) *RAM {
	return &RAM{name: name, perOp: 200 * time.Nanosecond, bandwidth: 10 << 30}
}

// Name implements Device.
func (r *RAM) Name() string { return r.name }

// Read implements Device.
func (r *RAM) Read(now time.Duration, _ int64, size int64) time.Duration {
	r.q.mu.Lock()
	defer r.q.mu.Unlock()
	r.q.stats.Reads++
	r.q.stats.BytesRead += size
	return r.q.serve(now, r.perOp+transferTime(size, r.bandwidth))
}

// Write implements Device.
func (r *RAM) Write(now time.Duration, _ int64, size int64) time.Duration {
	r.q.mu.Lock()
	defer r.q.mu.Unlock()
	r.q.stats.Writes++
	r.q.stats.BytesWritten += size
	return r.q.serve(now, r.perOp+transferTime(size, r.bandwidth))
}

// WriteAsync implements Device. RAM writes are so cheap they are absorbed.
func (r *RAM) WriteAsync(now time.Duration, _ int64, size int64) {
	r.q.mu.Lock()
	defer r.q.mu.Unlock()
	r.q.stats.Writes++
	r.q.stats.BytesWritten += size
	r.q.absorb(now, r.perOp+transferTime(size, r.bandwidth))
}

// Stats implements Device.
func (r *RAM) Stats() Stats {
	r.q.mu.Lock()
	defer r.q.mu.Unlock()
	return r.q.stats
}

// SSD models a SATA solid-state disk in the class of the paper's Kingston
// V300: ~90 µs 4 KiB random reads, ~60 µs program latency with write-back
// caching, and a shared SATA-limited transfer rate.
type SSD struct {
	name         string
	readLatency  time.Duration
	writeLatency time.Duration
	bandwidth    int64
	q            queue
}

// NewSSD returns an SSD with SATA-3-era parameters.
func NewSSD(name string) *SSD {
	return &SSD{
		name:         name,
		readLatency:  90 * time.Microsecond,
		writeLatency: 60 * time.Microsecond,
		bandwidth:    450 << 20, // 450 MB/s, SATA-3 bound
	}
}

// Name implements Device.
func (s *SSD) Name() string { return s.name }

// Read implements Device.
func (s *SSD) Read(now time.Duration, _ int64, size int64) time.Duration {
	s.q.mu.Lock()
	defer s.q.mu.Unlock()
	s.q.stats.Reads++
	s.q.stats.BytesRead += size
	return s.q.serve(now, s.readLatency+transferTime(size, s.bandwidth))
}

// Write implements Device.
func (s *SSD) Write(now time.Duration, _ int64, size int64) time.Duration {
	s.q.mu.Lock()
	defer s.q.mu.Unlock()
	s.q.stats.Writes++
	s.q.stats.BytesWritten += size
	return s.q.serve(now, s.writeLatency+transferTime(size, s.bandwidth))
}

// WriteAsync implements Device: the DoubleDecker SSD store issues puts
// asynchronously, so the caller does not wait but the device time is spent
// and delays subsequent reads.
func (s *SSD) WriteAsync(now time.Duration, _ int64, size int64) {
	s.q.mu.Lock()
	defer s.q.mu.Unlock()
	s.q.stats.Writes++
	s.q.stats.BytesWritten += size
	s.q.absorb(now, s.writeLatency+transferTime(size, s.bandwidth))
}

// Stats implements Device.
func (s *SSD) Stats() Stats {
	s.q.mu.Lock()
	defer s.q.mu.Unlock()
	return s.q.stats
}

// HDD models a 7200 RPM rotating disk: average seek plus half-rotation for
// random requests, pure transfer for sequential ones. Guest virtual disks
// and the swap device sit on HDDs.
type HDD struct {
	name        string
	seek        time.Duration
	halfRotate  time.Duration
	bandwidth   int64
	lastEnd     int64
	firstAccess bool
	q           queue
}

// NewHDD returns a 7200 RPM-class disk: 4.2 ms average seek, 8.3 ms
// rotation (4.17 ms average rotational delay), 150 MB/s media rate.
func NewHDD(name string) *HDD {
	return &HDD{
		name:        name,
		seek:        4200 * time.Microsecond,
		halfRotate:  4170 * time.Microsecond,
		bandwidth:   150 << 20,
		firstAccess: true,
	}
}

// NewArrayHDD returns a storage-array-class rotating volume: command
// queuing and striping bring effective positioning down to ~1.5 ms and
// the media rate up to 250 MB/s. Virtual machine disk images sit on this
// class of storage in the paper's testbed.
func NewArrayHDD(name string) *HDD {
	return &HDD{
		name:        name,
		seek:        1000 * time.Microsecond,
		halfRotate:  500 * time.Microsecond,
		bandwidth:   250 << 20,
		firstAccess: true,
	}
}

// Name implements Device.
func (h *HDD) Name() string { return h.name }

// service computes positioning plus transfer time. Callers hold h.q.mu
// (it advances the head-position state).
func (h *HDD) service(offset, size int64) time.Duration {
	svc := transferTime(size, h.bandwidth)
	if h.firstAccess || offset != h.lastEnd {
		svc += h.seek + h.halfRotate
	}
	h.firstAccess = false
	h.lastEnd = offset + size
	return svc
}

// Read implements Device.
func (h *HDD) Read(now time.Duration, offset, size int64) time.Duration {
	h.q.mu.Lock()
	defer h.q.mu.Unlock()
	h.q.stats.Reads++
	h.q.stats.BytesRead += size
	return h.q.serve(now, h.service(offset, size))
}

// Write implements Device.
func (h *HDD) Write(now time.Duration, offset, size int64) time.Duration {
	h.q.mu.Lock()
	defer h.q.mu.Unlock()
	h.q.stats.Writes++
	h.q.stats.BytesWritten += size
	return h.q.serve(now, h.service(offset, size))
}

// WriteAsync implements Device: writeback flushes occupy the disk without
// stalling the flusher.
func (h *HDD) WriteAsync(now time.Duration, offset, size int64) {
	h.q.mu.Lock()
	defer h.q.mu.Unlock()
	h.q.stats.Writes++
	h.q.stats.BytesWritten += size
	h.q.absorb(now, h.service(offset, size))
}

// Stats implements Device.
func (h *HDD) Stats() Stats {
	h.q.mu.Lock()
	defer h.q.mu.Unlock()
	return h.q.stats
}

// Compile-time interface checks.
var (
	_ Device = (*RAM)(nil)
	_ Device = (*SSD)(nil)
	_ Device = (*HDD)(nil)
)

// String renders device stats for debugging output.
func (s Stats) String() string {
	return fmt.Sprintf("reads=%d writes=%d bytesRead=%d bytesWritten=%d busy=%v",
		s.Reads, s.Writes, s.BytesRead, s.BytesWritten, s.BusyTime)
}
