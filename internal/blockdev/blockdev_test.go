package blockdev

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

const page = 4096

func TestRAMFasterThanSSDFasterThanHDD(t *testing.T) {
	ram := NewRAM("ram")
	ssd := NewSSD("ssd")
	hdd := NewHDD("hdd")
	lr := ram.Read(0, 0, page)
	ls := ssd.Read(0, 0, page)
	lh := hdd.Read(0, 1<<30, page) // random position
	if !(lr < ls && ls < lh) {
		t.Fatalf("latency order violated: ram=%v ssd=%v hdd=%v", lr, ls, lh)
	}
}

func TestQueueingDelays(t *testing.T) {
	ssd := NewSSD("ssd")
	first := ssd.Read(0, 0, page)
	second := ssd.Read(0, page, page) // arrives while device busy
	if second <= first {
		t.Fatalf("queued request should see higher latency: first=%v second=%v", first, second)
	}
	// After the queue drains, latency returns to base service time.
	later := ssd.Read(time.Second, 0, page)
	if later != first {
		t.Fatalf("idle-device latency = %v, want %v", later, first)
	}
}

func TestHDDSequentialVsRandom(t *testing.T) {
	hdd := NewHDD("hdd")
	hdd.Read(0, 0, page) // position the head
	seq := hdd.Read(time.Second, page, page)
	rnd := hdd.Read(2*time.Second, 1<<30, page)
	if seq >= rnd {
		t.Fatalf("sequential read (%v) should beat random read (%v)", seq, rnd)
	}
	if rnd < 8*time.Millisecond {
		t.Fatalf("random read %v implausibly fast for 7200rpm model", rnd)
	}
}

func TestHDDFirstAccessSeeks(t *testing.T) {
	hdd := NewHDD("hdd")
	first := hdd.Read(0, 0, page)
	if first < 8*time.Millisecond {
		t.Fatalf("first access should pay seek+rotation, got %v", first)
	}
}

func TestWriteAsyncDoesNotBlockButOccupies(t *testing.T) {
	ssd := NewSSD("ssd")
	ssd.WriteAsync(0, 0, 1<<20) // 1 MiB async write
	// A read right after must queue behind the async write.
	blocked := ssd.Read(0, 0, page)
	idle := NewSSD("idle").Read(0, 0, page)
	if blocked <= idle {
		t.Fatalf("read did not queue behind async write: %v vs idle %v", blocked, idle)
	}
}

func TestStatsAccounting(t *testing.T) {
	ssd := NewSSD("ssd")
	ssd.Read(0, 0, page)
	ssd.Write(0, 0, 2*page)
	ssd.WriteAsync(0, 0, page)
	st := ssd.Stats()
	if st.Reads != 1 || st.Writes != 2 {
		t.Fatalf("op counts = %d/%d, want 1/2", st.Reads, st.Writes)
	}
	if st.BytesRead != page || st.BytesWritten != 3*page {
		t.Fatalf("byte counts = %d/%d", st.BytesRead, st.BytesWritten)
	}
	if st.BusyTime <= 0 {
		t.Fatal("busy time not accounted")
	}
}

func TestTransferTimeScalesWithSize(t *testing.T) {
	ssd := NewSSD("a")
	small := ssd.Read(0, 0, page)
	big := NewSSD("b").Read(0, 0, 1<<20)
	if big <= small {
		t.Fatalf("1MiB read (%v) should take longer than 4KiB (%v)", big, small)
	}
}

func TestZeroSizeTransfers(t *testing.T) {
	ram := NewRAM("r")
	if got := ram.Read(0, 0, 0); got <= 0 {
		t.Fatalf("zero-size read should still cost the fixed op overhead, got %v", got)
	}
}

// Property: latency is always positive and completion times are
// non-decreasing for back-to-back requests at the same arrival time.
func TestPropertyFCFSMonotone(t *testing.T) {
	prop := func(sizes []uint16) bool {
		ssd := NewSSD("p")
		var prev time.Duration
		for _, sz := range sizes {
			l := ssd.Read(0, 0, int64(sz)+1)
			if l <= 0 || l < prev {
				return false
			}
			prev = l
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: busy time equals the sum of service times, never exceeding
// total span for serial same-arrival requests... i.e. accounting is sane.
func TestPropertyBusyTimeAccumulates(t *testing.T) {
	prop := func(n uint8) bool {
		hdd := NewHDD("p")
		var last time.Duration
		for i := 0; i < int(n%20); i++ {
			last = hdd.Read(0, int64(i)*1<<20, page)
		}
		return hdd.Stats().BusyTime == last // all arrive at t=0, serial queue
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestArrayHDDFasterThanHDD(t *testing.T) {
	slow := NewHDD("slow")
	fast := NewArrayHDD("fast")
	ls := slow.Read(0, 1<<30, page)
	lf := fast.Read(0, 1<<30, page)
	if lf >= ls {
		t.Fatalf("array read %v not faster than spindle %v", lf, ls)
	}
}

func TestHDDWriteAsyncOccupies(t *testing.T) {
	hdd := NewHDD("h")
	hdd.WriteAsync(0, 0, 1<<20)
	blocked := hdd.Read(0, 1<<30, page)
	idle := NewHDD("i").Read(0, 1<<30, page)
	if blocked <= idle {
		t.Fatalf("read did not queue behind async write: %v vs %v", blocked, idle)
	}
	if hdd.Stats().Writes != 1 {
		t.Fatal("async write not counted")
	}
}

func TestRAMWriteAndSSDWriteSync(t *testing.T) {
	ram := NewRAM("r")
	if ram.Write(0, 0, page) <= 0 {
		t.Fatal("ram write free")
	}
	ssd := NewSSD("s")
	w := ssd.Write(0, 0, page)
	if w < 50*time.Microsecond {
		t.Fatalf("sync ssd write %v too fast", w)
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Reads: 1, Writes: 2, BytesRead: 3, BytesWritten: 4, BusyTime: time.Second}
	got := s.String()
	for _, want := range []string{"reads=1", "writes=2", "bytesRead=3", "bytesWritten=4", "busy=1s"} {
		if !strings.Contains(got, want) {
			t.Fatalf("Stats.String() = %q missing %q", got, want)
		}
	}
}
