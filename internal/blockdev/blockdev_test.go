package blockdev

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"doubledecker/internal/fault"
)

const page = 4096

// rd/wr issue fault-free operations, asserting no error leaks out of an
// uninjected device.
func rd(t *testing.T, d Device, now time.Duration, off, size int64) time.Duration {
	t.Helper()
	lat, err := d.Read(now, off, size)
	if err != nil {
		t.Fatalf("%s read: %v", d.Name(), err)
	}
	return lat
}

func wr(t *testing.T, d Device, now time.Duration, off, size int64) time.Duration {
	t.Helper()
	lat, err := d.Write(now, off, size)
	if err != nil {
		t.Fatalf("%s write: %v", d.Name(), err)
	}
	return lat
}

func wa(t *testing.T, d Device, now time.Duration, off, size int64) {
	t.Helper()
	if err := d.WriteAsync(now, off, size); err != nil {
		t.Fatalf("%s writeAsync: %v", d.Name(), err)
	}
}

func TestRAMFasterThanSSDFasterThanHDD(t *testing.T) {
	ram := NewRAM("ram")
	ssd := NewSSD("ssd")
	hdd := NewHDD("hdd")
	lr := rd(t, ram, 0, 0, page)
	ls := rd(t, ssd, 0, 0, page)
	lh := rd(t, hdd, 0, 1<<30, page) // random position
	if !(lr < ls && ls < lh) {
		t.Fatalf("latency order violated: ram=%v ssd=%v hdd=%v", lr, ls, lh)
	}
}

func TestQueueingDelays(t *testing.T) {
	ssd := NewSSD("ssd")
	first := rd(t, ssd, 0, 0, page)
	second := rd(t, ssd, 0, page, page) // arrives while device busy
	if second <= first {
		t.Fatalf("queued request should see higher latency: first=%v second=%v", first, second)
	}
	// After the queue drains, latency returns to base service time.
	later := rd(t, ssd, time.Second, 0, page)
	if later != first {
		t.Fatalf("idle-device latency = %v, want %v", later, first)
	}
}

func TestHDDSequentialVsRandom(t *testing.T) {
	hdd := NewHDD("hdd")
	rd(t, hdd, 0, 0, page) // position the head
	seq := rd(t, hdd, time.Second, page, page)
	rnd := rd(t, hdd, 2*time.Second, 1<<30, page)
	if seq >= rnd {
		t.Fatalf("sequential read (%v) should beat random read (%v)", seq, rnd)
	}
	if rnd < 8*time.Millisecond {
		t.Fatalf("random read %v implausibly fast for 7200rpm model", rnd)
	}
}

func TestHDDFirstAccessSeeks(t *testing.T) {
	hdd := NewHDD("hdd")
	first := rd(t, hdd, 0, 0, page)
	if first < 8*time.Millisecond {
		t.Fatalf("first access should pay seek+rotation, got %v", first)
	}
}

func TestWriteAsyncDoesNotBlockButOccupies(t *testing.T) {
	ssd := NewSSD("ssd")
	wa(t, ssd, 0, 0, 1<<20) // 1 MiB async write
	// A read right after must queue behind the async write.
	blocked := rd(t, ssd, 0, 0, page)
	idle := rd(t, NewSSD("idle"), 0, 0, page)
	if blocked <= idle {
		t.Fatalf("read did not queue behind async write: %v vs idle %v", blocked, idle)
	}
}

func TestStatsAccounting(t *testing.T) {
	ssd := NewSSD("ssd")
	rd(t, ssd, 0, 0, page)
	wr(t, ssd, 0, 0, 2*page)
	wa(t, ssd, 0, 0, page)
	st := ssd.Stats()
	if st.Reads != 1 || st.Writes != 2 {
		t.Fatalf("op counts = %d/%d, want 1/2", st.Reads, st.Writes)
	}
	if st.BytesRead != page || st.BytesWritten != 3*page {
		t.Fatalf("byte counts = %d/%d", st.BytesRead, st.BytesWritten)
	}
	if st.ReadErrors != 0 || st.WriteErrors != 0 {
		t.Fatalf("uninjected device reported errors: %+v", st)
	}
	if st.BusyTime <= 0 {
		t.Fatal("busy time not accounted")
	}
}

func TestTransferTimeScalesWithSize(t *testing.T) {
	ssd := NewSSD("a")
	small := rd(t, ssd, 0, 0, page)
	big := rd(t, NewSSD("b"), 0, 0, 1<<20)
	if big <= small {
		t.Fatalf("1MiB read (%v) should take longer than 4KiB (%v)", big, small)
	}
}

func TestZeroSizeTransfers(t *testing.T) {
	ram := NewRAM("r")
	if got := rd(t, ram, 0, 0, 0); got <= 0 {
		t.Fatalf("zero-size read should still cost the fixed op overhead, got %v", got)
	}
}

// Property: latency is always positive and completion times are
// non-decreasing for back-to-back requests at the same arrival time.
func TestPropertyFCFSMonotone(t *testing.T) {
	prop := func(sizes []uint16) bool {
		ssd := NewSSD("p")
		var prev time.Duration
		for _, sz := range sizes {
			l, err := ssd.Read(0, 0, int64(sz)+1)
			if err != nil || l <= 0 || l < prev {
				return false
			}
			prev = l
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: busy time equals the sum of service times, never exceeding
// total span for serial same-arrival requests... i.e. accounting is sane.
func TestPropertyBusyTimeAccumulates(t *testing.T) {
	prop := func(n uint8) bool {
		hdd := NewHDD("p")
		var last time.Duration
		for i := 0; i < int(n%20); i++ {
			last, _ = hdd.Read(0, int64(i)*1<<20, page)
		}
		return hdd.Stats().BusyTime == last // all arrive at t=0, serial queue
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestArrayHDDFasterThanHDD(t *testing.T) {
	slow := NewHDD("slow")
	fast := NewArrayHDD("fast")
	ls := rd(t, slow, 0, 1<<30, page)
	lf := rd(t, fast, 0, 1<<30, page)
	if lf >= ls {
		t.Fatalf("array read %v not faster than spindle %v", lf, ls)
	}
}

func TestHDDWriteAsyncOccupies(t *testing.T) {
	hdd := NewHDD("h")
	wa(t, hdd, 0, 0, 1<<20)
	blocked := rd(t, hdd, 0, 1<<30, page)
	idle := rd(t, NewHDD("i"), 0, 1<<30, page)
	if blocked <= idle {
		t.Fatalf("read did not queue behind async write: %v vs %v", blocked, idle)
	}
	if hdd.Stats().Writes != 1 {
		t.Fatal("async write not counted")
	}
}

func TestRAMWriteAndSSDWriteSync(t *testing.T) {
	ram := NewRAM("r")
	if wr(t, ram, 0, 0, page) <= 0 {
		t.Fatal("ram write free")
	}
	ssd := NewSSD("s")
	w := wr(t, ssd, 0, 0, page)
	if w < 50*time.Microsecond {
		t.Fatalf("sync ssd write %v too fast", w)
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Reads: 1, Writes: 2, BytesRead: 3, BytesWritten: 4, ReadErrors: 5, WriteErrors: 6, BusyTime: time.Second}
	got := s.String()
	for _, want := range []string{"reads=1", "writes=2", "bytesRead=3", "bytesWritten=4", "readErrs=5", "writeErrs=6", "busy=1s"} {
		if !strings.Contains(got, want) {
			t.Fatalf("Stats.String() = %q missing %q", got, want)
		}
	}
}

// TestInjectedIOError: every read fails, the error is the structured fault
// error, bytes are not counted but the attempt occupies the device.
func TestInjectedIOError(t *testing.T) {
	in := fault.New(fault.Plan{Rules: []fault.Rule{{Site: "ssd.read", Kind: fault.KindIOError}}})
	ssd := NewSSD("ssd", WithFaults(in))
	lat, err := ssd.Read(0, 0, page)
	if err == nil {
		t.Fatal("injected read did not fail")
	}
	var fe *fault.Error
	if !errors.As(err, &fe) || fe.Site != "ssd.read" || fe.Kind != fault.KindIOError {
		t.Fatalf("error = %v, want fault.Error at ssd.read", err)
	}
	if lat <= 0 {
		t.Fatalf("failed read should still take time, got %v", lat)
	}
	st := ssd.Stats()
	if st.Reads != 1 || st.ReadErrors != 1 || st.BytesRead != 0 {
		t.Fatalf("stats after failed read: %+v", st)
	}
	// Writes are untouched by the read-site rule.
	if _, err := ssd.Write(0, 0, page); err != nil {
		t.Fatalf("write failed under read-only rule: %v", err)
	}
}

// TestInjectedStall: the caller waits out the stall delay and gets an
// error; the device is wedged for the whole window.
func TestInjectedStall(t *testing.T) {
	const timeout = 30 * time.Millisecond
	in := fault.New(fault.Plan{Rules: []fault.Rule{{Site: "ssd.read", Kind: fault.KindStall, Delay: timeout}}})
	ssd := NewSSD("ssd", WithFaults(in))
	lat, err := ssd.Read(0, 0, page)
	if err == nil {
		t.Fatal("stalled read did not fail")
	}
	if lat != timeout {
		t.Fatalf("stall latency = %v, want %v", lat, timeout)
	}
}

// TestInjectedLatency: a latency spike slows the op but it succeeds.
func TestInjectedLatency(t *testing.T) {
	const spike = 5 * time.Millisecond
	in := fault.New(fault.Plan{Rules: []fault.Rule{{Site: "ssd.read", Kind: fault.KindLatency, Delay: spike}}})
	slow := NewSSD("ssd", WithFaults(in))
	base := rd(t, NewSSD("base"), 0, 0, page)
	lat, err := slow.Read(0, 0, page)
	if err != nil {
		t.Fatalf("latency spike must not fail the op: %v", err)
	}
	if lat != base+spike {
		t.Fatalf("spiked latency = %v, want %v", lat, base+spike)
	}
	if st := slow.Stats(); st.ReadErrors != 0 || st.BytesRead != page {
		t.Fatalf("latency spike miscounted: %+v", st)
	}
}

// TestInjectedAsyncWriteError: WriteAsync reports the injected fault at
// submission.
func TestInjectedAsyncWriteError(t *testing.T) {
	in := fault.New(fault.Plan{Rules: []fault.Rule{{Site: "hdd.write", Kind: fault.KindIOError}}})
	hdd := NewHDD("hdd", WithFaults(in))
	if err := hdd.WriteAsync(0, 0, page); err == nil {
		t.Fatal("injected async write did not fail")
	}
	if st := hdd.Stats(); st.WriteErrors != 1 || st.BytesWritten != 0 {
		t.Fatalf("stats after failed async write: %+v", st)
	}
}
