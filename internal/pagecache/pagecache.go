// Package pagecache models the guest OS disk page cache with the
// DoubleDecker extensions: pages are charged to the cgroup of the process
// that faulted them, reclaim runs per-cgroup LRU lists (it implements
// cgroup.FileReclaimer), clean evictions are offered to the second-chance
// cache (cleancache put), lookup misses consult it (cleancache get), and
// invalidations flush it — the exclusive-caching protocol of the paper's
// Figure 1/2.
package pagecache

import (
	"container/list"
	"time"

	"doubledecker/internal/blockdev"
	"doubledecker/internal/cgroup"
	"doubledecker/internal/cleancache"
	"doubledecker/internal/fsmodel"
)

// PageHitCost is the CPU cost of serving one page from the page cache.
const PageHitCost = 700 * time.Nanosecond

// dirtyRatioDivisor caps the dirty-page backlog at 1/this of VM memory;
// writers exceeding it are throttled into foreground writeback, as the
// kernel's dirty_ratio mechanism does. Without this, writers outrun the
// disk for free and starve every reader behind the unbounded async queue.
const dirtyRatioDivisor = 10

// page is one resident page-cache page.
type page struct {
	inode   uint64
	block   int64
	diskOff int64
	content uint64 // content identity (for deduplicating cache stores)
	g       *cgroup.Group
	dirty   bool
	elem    *list.Element // position in the group LRU
	dirtyEl *list.Element // position in the dirty FIFO, nil when clean
	touched time.Duration
}

// IOStats aggregates one group's page cache activity.
type IOStats struct {
	Hits       int64 // page cache hits
	Misses     int64 // page cache misses (any source)
	DiskReads  int64 // blocks read from the virtual disk
	DiskWrites int64 // blocks written back
	CCHits     int64 // misses served by the second-chance cache
	// DeadlineFallbacks counts misses caused by a second-chance probe
	// blowing its latency budget: the transport failed the get to a miss
	// and the read fell back to disk instead of blocking past budget.
	DeadlineFallbacks int64
}

// Cache is one VM's page cache.
type Cache struct {
	root  *cgroup.Root
	front *cleancache.Front // may be nil: no second-chance cache
	disk  blockdev.Device

	pages map[uint64]map[int64]*page // inode → block → page
	lrus  map[*cgroup.Group]*list.List
	// dirty pages are tracked per group (as the kernel's per-bdi/task
	// dirty accounting does) so one container's write flood throttles
	// only itself.
	dirty      map[*cgroup.Group]*list.List
	dirtyTotal int
	stats      map[*cgroup.Group]*IOStats

	// accessHook, when set, observes every read access (hit or miss) —
	// the feed for MRC/WSS estimators driving adaptive policies.
	accessHook func(g *cgroup.Group, inode uint64, block int64)

	// readWindow is the number of in-flight second-chance probes Read
	// keeps outstanding across a miss-run (Front.GetAsync handles); 0
	// selects the synchronous probe-per-block path.
	readWindow int

	// writeSeq makes written blocks' content unique: a dirtied page no
	// longer matches any template content.
	writeSeq uint64
}

var _ cgroup.FileReclaimer = (*Cache)(nil)

// New wires a page cache to its VM's memory controller, second-chance
// front (nil to disable) and virtual disk. It installs itself as the
// root's file reclaimer.
func New(root *cgroup.Root, front *cleancache.Front, disk blockdev.Device) *Cache {
	c := &Cache{
		root:  root,
		front: front,
		disk:  disk,
		pages: make(map[uint64]map[int64]*page),
		lrus:  make(map[*cgroup.Group]*list.List),
		dirty: make(map[*cgroup.Group]*list.List),
		stats: make(map[*cgroup.Group]*IOStats),
	}
	root.SetReclaimer(c)
	return c
}

// SetAccessHook installs an observer for read accesses. Pass nil to
// remove it.
func (c *Cache) SetAccessHook(fn func(g *cgroup.Group, inode uint64, block int64)) {
	c.accessHook = fn
}

// SetReadWindow sets how many async second-chance probes Read keeps in
// flight across a detected miss-run (0 = synchronous probe per block).
// With a window, a miss-run issues up to window GetAsync handles up
// front — overlapping the hypercall crossings with the run scan and
// consuming the transport's readahead staging buffer — and resolves them
// in access order. No-op without a cleancache front.
func (c *Cache) SetReadWindow(n int) {
	if n < 0 {
		n = 0
	}
	c.readWindow = n
}

// ReadWindow reports the configured async probe window.
func (c *Cache) ReadWindow() int { return c.readWindow }

// Stats returns the accumulated counters for g.
func (c *Cache) Stats(g *cgroup.Group) IOStats {
	if s, ok := c.stats[g]; ok {
		return *s
	}
	return IOStats{}
}

func (c *Cache) statsFor(g *cgroup.Group) *IOStats {
	s, ok := c.stats[g]
	if !ok {
		s = &IOStats{}
		c.stats[g] = s
	}
	return s
}

func (c *Cache) lruFor(g *cgroup.Group) *list.List {
	l, ok := c.lrus[g]
	if !ok {
		l = list.New()
		c.lrus[g] = l
	}
	return l
}

func (c *Cache) dirtyFor(g *cgroup.Group) *list.List {
	l, ok := c.dirty[g]
	if !ok {
		l = list.New()
		c.dirty[g] = l
	}
	return l
}

func (c *Cache) markDirty(p *page) {
	p.dirty = true
	p.dirtyEl = c.dirtyFor(p.g).PushBack(p)
	c.dirtyTotal++
}

func (c *Cache) lookup(inode uint64, block int64) *page {
	blocks, ok := c.pages[inode]
	if !ok {
		return nil
	}
	return blocks[block]
}

// insert adds a page for g, making room under the cgroup and VM limits
// first. Returns the reclaim latency incurred.
func (c *Cache) insert(now time.Duration, g *cgroup.Group, inode uint64, block, diskOff int64, content uint64, dirty bool) (*page, time.Duration) {
	lat := g.EnsureRoom(now, 1)
	p := &page{inode: inode, block: block, diskOff: diskOff, content: content, g: g, dirty: dirty, touched: now + lat}
	blocks, ok := c.pages[inode]
	if !ok {
		blocks = make(map[int64]*page)
		c.pages[inode] = blocks
	}
	blocks[block] = p
	p.elem = c.lruFor(g).PushFront(p)
	if dirty {
		p.dirty = false // markDirty sets it
		c.markDirty(p)
	}
	g.ChargeFile(1)
	return p, lat
}

// touch refreshes a page's LRU position.
func (c *Cache) touch(now time.Duration, p *page) {
	p.touched = now
	c.lruFor(p.g).MoveToFront(p.elem)
}

// drop removes a page from all structures without writeback.
func (c *Cache) drop(p *page) {
	blocks := c.pages[p.inode]
	delete(blocks, p.block)
	if len(blocks) == 0 {
		delete(c.pages, p.inode)
	}
	c.lruFor(p.g).Remove(p.elem)
	if p.dirtyEl != nil {
		c.dirtyFor(p.g).Remove(p.dirtyEl)
		p.dirtyEl = nil
		c.dirtyTotal--
	}
	p.g.UnchargeFile(1)
}

// Read serves n blocks of f starting at start on behalf of g, returning
// the total latency: page cache hits at memory cost, second-chance hits at
// hypercall+store cost, the rest from the virtual disk.
func (c *Cache) Read(now time.Duration, g *cgroup.Group, f *fsmodel.File, start, n int64) time.Duration {
	st := c.statsFor(g)
	var lat time.Duration
	end := start + n
	if end > f.Blocks {
		end = f.Blocks
	}
	for b := start; b < end; b++ {
		at := now + lat
		if c.accessHook != nil {
			c.accessHook(g, uint64(f.Inode), b)
		}
		if p := c.lookup(uint64(f.Inode), b); p != nil {
			c.touch(at, p)
			lat += PageHitCost
			st.Hits++
			continue
		}
		if c.front != nil && c.readWindow > 0 {
			// Pipelined path: the whole miss-run is probed through
			// in-flight async handles (readPipelined counts the misses).
			next, ml := c.readPipelined(at, g, f, b, end)
			lat += ml
			b = next - 1
			continue
		}
		st.Misses++
		if c.front != nil {
			hit, l := c.front.Get(at, g, uint64(f.Inode), b)
			lat += l
			if hit {
				st.CCHits++
				_, il := c.insert(at+l, g, uint64(f.Inode), b, f.BlockOffset(b), f.ContentKey(b), false)
				lat += il + PageHitCost
				continue
			}
		}
		// Disk miss: extend the run across consecutive blocks that miss
		// both caches (readahead — one seek serves the whole run). A
		// block found in the second-chance cache during the scan is
		// inserted, accounted, and terminates the run.
		runEnd := b + 1
		ccStopped := false
		for runEnd < end {
			if c.lookup(uint64(f.Inode), runEnd) != nil {
				break
			}
			if c.front != nil {
				hit, l := c.front.Get(now+lat, g, uint64(f.Inode), runEnd)
				lat += l
				if hit {
					if c.accessHook != nil {
						c.accessHook(g, uint64(f.Inode), runEnd)
					}
					st.Misses++
					st.CCHits++
					_, il := c.insert(now+lat, g, uint64(f.Inode), runEnd, f.BlockOffset(runEnd), f.ContentKey(runEnd), false)
					lat += il + PageHitCost
					ccStopped = true
					break
				}
			}
			runEnd++
		}
		runLen := runEnd - b
		// Guest virtual-disk errors are outside the cleancache failure
		// model (the guest would retry or surface EIO to the app); the
		// simulation charges the latency and carries on.
		dl, _ := c.disk.Read(now+lat, f.BlockOffset(b), runLen*fsmodel.BlockSize) // ddlint:err-ok guest disk errors are outside the cleancache failure model
		lat += dl
		st.DiskReads += runLen
		st.Misses += runLen - 1
		for rb := b; rb < runEnd; rb++ {
			if c.accessHook != nil && rb > b {
				c.accessHook(g, uint64(f.Inode), rb)
			}
			_, il := c.insert(now+lat, g, uint64(f.Inode), rb, f.BlockOffset(rb), f.ContentKey(rb), false)
			lat += il + PageHitCost
		}
		b = runEnd - 1
		if ccStopped {
			b = runEnd // the runEnd block was served by the second-chance hit
		}
	}
	return lat
}

// readPipelined serves the miss-run starting at block b through the
// async read contract: it issues up to readWindow Front.GetAsync probes
// at a time — the submissions overlap their hypercall crossings and feed
// the sequential-stream detector before any handle is awaited, so the
// transport's readahead staging runs ahead of consumption — then
// resolves the handles in access order. Second-chance hits are inserted
// as they resolve; contiguous miss verdicts coalesce into single disk
// run reads, spanning window boundaries (the run is flushed only at a
// second-chance hit, a resident page, or the end of the request), which
// preserves the synchronous path's readahead-style seek amortization.
// The probed set is identical to the synchronous path: every
// non-resident block until the first resident page or the request end.
// Returns the first block not consumed and the latency charged.
func (c *Cache) readPipelined(base time.Duration, g *cgroup.Group, f *fsmodel.File, b, end int64) (int64, time.Duration) {
	st := c.statsFor(g)
	inode := uint64(f.Inode)
	var (
		lat              time.Duration
		runStart, runLen int64
		handles          []*cleancache.PendingRead
	)
	flushRun := func() {
		if runLen == 0 {
			return
		}
		dl, _ := c.disk.Read(base+lat, f.BlockOffset(runStart), runLen*fsmodel.BlockSize) // ddlint:err-ok guest disk errors are outside the cleancache failure model
		lat += dl
		st.DiskReads += runLen
		for rb := runStart; rb < runStart+runLen; rb++ {
			_, il := c.insert(base+lat, g, inode, rb, f.BlockOffset(rb), f.ContentKey(rb), false)
			lat += il + PageHitCost
		}
		runLen = 0
	}
	wb := b
	for wb < end && c.lookup(inode, wb) == nil {
		we := wb
		for we < end && we-wb < int64(c.readWindow) && c.lookup(inode, we) == nil {
			we++
		}
		handles = handles[:0]
		for pb := wb; pb < we; pb++ {
			if c.accessHook != nil && pb > b {
				c.accessHook(g, inode, pb)
			}
			pr, sl := c.front.GetAsync(base+lat, g, inode, pb)
			lat += sl
			handles = append(handles, pr)
		}
		st.Misses += we - wb
		for i, pr := range handles {
			hit, wl := c.front.AwaitRead(base+lat, pr)
			lat += wl
			pb := wb + int64(i)
			if !hit {
				if pr.Expired() {
					st.DeadlineFallbacks++
				}
				if runLen == 0 {
					runStart = pb
				}
				runLen++
				continue
			}
			flushRun()
			st.CCHits++
			_, il := c.insert(base+lat, g, inode, pb, f.BlockOffset(pb), f.ContentKey(pb), false)
			lat += il + PageHitCost
		}
		wb = we
	}
	flushRun()
	return wb, lat
}

// Write dirties n blocks of f starting at start (whole-block writes, no
// read-modify-write). Stale second-chance copies are invalidated.
func (c *Cache) Write(now time.Duration, g *cgroup.Group, f *fsmodel.File, start, n int64) time.Duration {
	st := c.statsFor(g)
	lat := c.throttleDirty(now, g)
	end := start + n
	if end > f.Blocks {
		end = f.Blocks
	}
	for b := start; b < end; b++ {
		at := now + lat
		if p := c.lookup(uint64(f.Inode), b); p != nil {
			c.touch(at, p)
			if !p.dirty {
				c.markDirty(p)
			}
			c.writeSeq++
			p.content = ^c.writeSeq // written content is unique
			lat += PageHitCost
			st.Hits++
			continue
		}
		st.Misses++
		// A stale copy may live in the second-chance cache; invalidate.
		if c.front != nil {
			lat += c.front.FlushPage(at, g, uint64(f.Inode), b)
		}
		c.writeSeq++
		_, il := c.insert(now+lat, g, uint64(f.Inode), b, f.BlockOffset(b), ^c.writeSeq, true)
		lat += il + PageHitCost
	}
	return lat
}

// Fsync synchronously writes back every dirty page of f, coalescing
// contiguous runs into single disk writes.
func (c *Cache) Fsync(now time.Duration, g *cgroup.Group, f *fsmodel.File) time.Duration {
	blocks, ok := c.pages[uint64(f.Inode)]
	if !ok {
		return 0
	}
	// Collect dirty blocks in ascending order for run coalescing.
	var dirtyBlocks []int64
	for b, p := range blocks {
		if p.dirty {
			dirtyBlocks = append(dirtyBlocks, b)
		}
	}
	if len(dirtyBlocks) == 0 {
		return 0
	}
	sortInt64s(dirtyBlocks)
	st := c.statsFor(g)
	var lat time.Duration
	runStart := dirtyBlocks[0]
	runLen := int64(1)
	flushRun := func(startBlock, length int64) {
		wl, _ := c.disk.Write(now+lat, f.BlockOffset(startBlock), length*fsmodel.BlockSize) // ddlint:err-ok guest disk errors are outside the cleancache failure model
		lat += wl
		st.DiskWrites += length
	}
	for _, b := range dirtyBlocks[1:] {
		if b == runStart+runLen {
			runLen++
			continue
		}
		flushRun(runStart, runLen)
		runStart, runLen = b, 1
	}
	flushRun(runStart, runLen)
	for _, b := range dirtyBlocks {
		p := blocks[b]
		p.dirty = false
		if p.dirtyEl != nil {
			c.dirtyFor(p.g).Remove(p.dirtyEl)
			p.dirtyEl = nil
			c.dirtyTotal--
		}
	}
	return lat
}

// Invalidate drops all pages of f (file deletion/truncation) without
// writeback and flushes the file from the second-chance cache.
func (c *Cache) Invalidate(now time.Duration, g *cgroup.Group, f *fsmodel.File) time.Duration {
	blocks, ok := c.pages[uint64(f.Inode)]
	if ok {
		pages := make([]*page, 0, len(blocks))
		for _, p := range blocks {
			pages = append(pages, p)
		}
		for _, p := range pages {
			c.drop(p)
		}
	}
	if c.front != nil {
		return c.front.FlushInode(now, g, uint64(f.Inode))
	}
	return 0
}

// dirtyRun collects the oldest dirty page of l plus following entries
// that are disk-contiguous with it (writeback clustering). It does not
// mutate state.
func dirtyRun(l *list.List, max int) []*page {
	if l == nil || l.Len() == 0 {
		return nil
	}
	first, ok := l.Front().Value.(*page)
	if !ok {
		return nil
	}
	run := []*page{first}
	for e := first.dirtyEl.Next(); e != nil && len(run) < max; e = e.Next() {
		q, ok := e.Value.(*page)
		if !ok || q.inode != first.inode ||
			q.diskOff != run[len(run)-1].diskOff+fsmodel.BlockSize {
			break
		}
		run = append(run, q)
	}
	return run
}

// clean marks a writeback run clean.
func (c *Cache) clean(run []*page) {
	for _, p := range run {
		c.statsFor(p.g).DiskWrites++
		p.dirty = false
		if p.dirtyEl != nil {
			c.dirtyFor(p.g).Remove(p.dirtyEl)
			p.dirtyEl = nil
			c.dirtyTotal--
		}
	}
}

// dirtyLimit returns the dirty-page threshold for this VM.
func (c *Cache) dirtyLimit() int {
	limit := int(c.root.LimitPages() / dirtyRatioDivisor)
	if limit < 256 {
		limit = 256
	}
	return limit
}

// throttleDirty blocks a writer in foreground writeback of its own dirty
// pages until its backlog is back under its share of the threshold,
// returning the stall time. Other groups' dirt never stalls this writer.
func (c *Cache) throttleDirty(now time.Duration, g *cgroup.Group) time.Duration {
	limit := c.dirtyLimit() / 2
	var lat time.Duration
	l := c.dirty[g]
	for l != nil && l.Len() > limit {
		run := dirtyRun(l, 256)
		if len(run) == 0 {
			break
		}
		wl, _ := c.disk.Write(now+lat, run[0].diskOff, int64(len(run))*fsmodel.BlockSize) // ddlint:err-ok guest disk errors are outside the cleancache failure model
		lat += wl
		c.clean(run)
	}
	return lat
}

// FlushDirty writes back up to max dirty pages (oldest first),
// asynchronously — the background flusher thread. Contiguous dirty runs
// (files written in order dirty adjacent pages back-to-back) are issued as
// single device writes, as the kernel's writeback clustering does.
// Returns pages cleaned.
func (c *Cache) FlushDirty(now time.Duration, max int) int {
	n := 0
	// Drain every group each round so one container's write flood cannot
	// starve another's few dirty pages (which would otherwise stall that
	// container in reclaim-time writeback). Each round splits the budget
	// across the groups that have dirt.
	for n < max && c.dirtyTotal > 0 {
		dirtyGroups := 0
		for _, l := range c.dirty {
			if l.Len() > 0 {
				dirtyGroups++
			}
		}
		if dirtyGroups == 0 {
			break
		}
		quota := (max - n) / dirtyGroups
		if quota < 1 {
			quota = 1
		}
		progressed := false
		for _, g := range c.root.Groups() {
			l := c.dirty[g]
			if l == nil || l.Len() == 0 || n >= max {
				continue
			}
			limit := quota
			if rem := max - n; limit > rem {
				limit = rem
			}
			run := dirtyRun(l, limit)
			if len(run) == 0 {
				continue
			}
			_ = c.disk.WriteAsync(now, run[0].diskOff, int64(len(run))*fsmodel.BlockSize) // ddlint:err-ok background writeback; errors surface on the next sync write
			c.clean(run)
			n += len(run)
			progressed = true
		}
		if !progressed {
			break
		}
	}
	return n
}

// DirtyPages reports the number of dirty pages pending writeback.
func (c *Cache) DirtyPages() int { return c.dirtyTotal }

// Resident reports whether a block is currently in the page cache,
// without touching LRU state — an inspection hook for tests and tooling.
func (c *Cache) Resident(inode uint64, block int64) bool {
	return c.lookup(inode, block) != nil
}

// TotalPages reports resident file pages across all groups.
func (c *Cache) TotalPages() int64 {
	var n int64
	for _, l := range c.lrus {
		n += int64(l.Len())
	}
	return n
}

// --- cgroup.FileReclaimer ---------------------------------------------------

// ReclaimFile implements cgroup.FileReclaimer: it evicts up to want of
// g's coldest file pages. Dirty pages are written back synchronously
// first (direct reclaim stalls on dirty pages, which keeps writers from
// outrunning the disk through the reclaim path); clean pages are offered
// to the second-chance cache (the paper's put on clean evict).
func (c *Cache) ReclaimFile(now time.Duration, g *cgroup.Group, want int64) (int64, time.Duration) {
	l, ok := c.lrus[g]
	if !ok {
		return 0, 0
	}
	var (
		freed int64
		lat   time.Duration
	)
	for freed < want && l.Len() > 0 {
		p, ok := l.Back().Value.(*page)
		if !ok {
			break
		}
		if p.dirty {
			// Cluster the writeback: walk up the LRU for contiguous
			// dirty pages of the same file (they aged together) and
			// clean them with one device write.
			run := []*page{p}
			for e := p.elem.Prev(); e != nil; e = e.Prev() {
				q, ok := e.Value.(*page)
				if !ok || !q.dirty || q.inode != p.inode ||
					q.diskOff != run[len(run)-1].diskOff+fsmodel.BlockSize {
					break
				}
				run = append(run, q)
			}
			wl, _ := c.disk.Write(now+lat, p.diskOff, int64(len(run))*fsmodel.BlockSize) // ddlint:err-ok guest disk errors are outside the cleancache failure model
			lat += wl
			c.clean(run)
		}
		if c.front != nil {
			_, pl := c.front.Put(now+lat, g, p.inode, p.block, p.content)
			lat += pl
		}
		c.drop(p)
		freed++
	}
	return freed, lat
}

// OldestFilePage implements cgroup.FileReclaimer.
func (c *Cache) OldestFilePage(g *cgroup.Group) (time.Duration, bool) {
	l, ok := c.lrus[g]
	if !ok || l.Len() == 0 {
		return 0, false
	}
	p, ok := l.Back().Value.(*page)
	if !ok {
		return 0, false
	}
	return p.touched, true
}

// sortInt64s is a small insertion-capable sort to avoid pulling reflect-
// based sorting into the hot fsync path for tiny slices.
func sortInt64s(s []int64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
