package pagecache

import (
	"testing"
	"time"

	"doubledecker/internal/cgroup"
)

func TestReadaheadCoalescesDiskRuns(t *testing.T) {
	r := newRig(64*mib, 0)
	g := r.newGroup("c1", 0)
	f := r.newFile(64)
	reads := r.disk.Stats().Reads
	r.cache.Read(0, g, f, 0, 64)
	delta := r.disk.Stats().Reads - reads
	if delta != 1 {
		t.Fatalf("sequential cold read issued %d device reads, want 1 (readahead)", delta)
	}
}

func TestReadaheadStopsAtResidentBlock(t *testing.T) {
	r := newRig(64*mib, 0)
	g := r.newGroup("c1", 0)
	f := r.newFile(64)
	r.cache.Read(0, g, f, 32, 1) // block 32 resident
	reads := r.disk.Stats().Reads
	r.cache.Read(time.Second, g, f, 0, 64)
	delta := r.disk.Stats().Reads - reads
	if delta != 2 {
		t.Fatalf("run should split around the resident block: %d device reads, want 2", delta)
	}
}

func TestDirtyThrottlingBoundsBacklog(t *testing.T) {
	r := newRig(32*mib, 0) // dirty limit = 32 MiB/10 = ~819 pages
	g := r.newGroup("writer", 0)
	f := r.newFile(8192)
	var stalled bool
	for i := int64(0); i < 8192; i += 64 {
		lat := r.cache.Write(0, g, f, i, 64)
		if lat > 5*time.Millisecond {
			stalled = true
		}
	}
	if !stalled {
		t.Fatal("writer never stalled in foreground writeback")
	}
	limit := r.cache.dirtyLimit()
	if got := r.cache.DirtyPages(); got > limit+256 {
		t.Fatalf("dirty backlog %d far above limit %d", got, limit)
	}
}

func TestDirtyThrottlingIsPerGroup(t *testing.T) {
	r := newRig(32*mib, 0)
	hog := r.newGroup("hog", 0)
	meek := r.newGroup("meek", 0)
	big := r.newFile(8192)
	small := r.newFile(4)
	// The hog floods its own dirty list past the threshold.
	for i := int64(0); i < 8192; i += 64 {
		r.cache.Write(0, hog, big, i, 64)
	}
	// The meek writer's tiny write must not pay the hog's debt.
	lat := r.cache.Write(0, meek, small, 0, 4)
	if lat > time.Millisecond {
		t.Fatalf("innocent writer stalled %v behind another group's dirt", lat)
	}
}

func TestFlusherFairAcrossGroups(t *testing.T) {
	r := newRig(64*mib, 0)
	a := r.newGroup("a", 0)
	b := r.newGroup("b", 0)
	fa := r.newFile(512)
	fb := r.newFile(512)
	r.cache.Write(0, a, fa, 0, 512)
	r.cache.Write(0, b, fb, 0, 512)
	// A small flush budget must clean some of BOTH groups.
	r.cache.FlushDirty(0, 256)
	sa := r.cache.Stats(a).DiskWrites
	sb := r.cache.Stats(b).DiskWrites
	if sa == 0 || sb == 0 {
		t.Fatalf("flusher starved a group: a=%d b=%d", sa, sb)
	}
}

func TestAccessHookObservesReads(t *testing.T) {
	r := newRig(64*mib, 0)
	g := r.newGroup("c1", 0)
	f := r.newFile(8)
	var seen []int64
	r.cache.SetAccessHook(func(hg *cgroup.Group, inode uint64, block int64) {
		if hg != g || inode != uint64(f.Inode) {
			t.Fatalf("hook saw wrong identity: %v %d", hg, inode)
		}
		seen = append(seen, block)
	})
	r.cache.Read(0, g, f, 2, 3)
	if len(seen) != 3 || seen[0] != 2 || seen[2] != 4 {
		t.Fatalf("hook observed %v", seen)
	}
	r.cache.SetAccessHook(nil)
	r.cache.Read(0, g, f, 0, 1)
	if len(seen) != 3 {
		t.Fatal("hook fired after removal")
	}
}

func TestResidentProbeDoesNotTouch(t *testing.T) {
	r := newRig(64*mib, 0)
	g := r.newGroup("c1", 0)
	f := r.newFile(4)
	r.cache.Read(0, g, f, 0, 4)
	before := r.cache.Stats(g)
	if !r.cache.Resident(uint64(f.Inode), 0) {
		t.Fatal("block should be resident")
	}
	if r.cache.Resident(uint64(f.Inode), 99) {
		t.Fatal("absent block reported resident")
	}
	if after := r.cache.Stats(g); after != before {
		t.Fatal("Resident probe mutated stats")
	}
}
