package pagecache

import (
	"math/rand"
	"testing"
	"time"

	"doubledecker/internal/blockdev"
	"doubledecker/internal/cgroup"
	"doubledecker/internal/cleancache"
	"doubledecker/internal/ddcache"
	"doubledecker/internal/fsmodel"
	"doubledecker/internal/hypercall"
	"doubledecker/internal/store"
)

const mib = 1 << 20

type rig struct {
	root  *cgroup.Root
	cache *Cache
	front *cleancache.Front
	mgr   *ddcache.Manager
	disk  *blockdev.HDD
	alloc *fsmodel.Allocator
	rng   *rand.Rand
}

// newRig builds a single-VM stack: cgroup root, page cache, cleancache
// front wired to a DoubleDecker manager with a memory store.
func newRig(vmMemBytes, hcacheBytes int64) *rig {
	r := &rig{
		root:  cgroup.NewRoot(vmMemBytes, 0),
		disk:  blockdev.NewHDD("vdisk"),
		alloc: fsmodel.NewAllocator(),
		rng:   rand.New(rand.NewSource(1)),
	}
	if hcacheBytes > 0 {
		r.mgr = ddcache.New(
			ddcache.WithMode(ddcache.ModeDD),
			ddcache.WithMemBackend(store.NewMem(blockdev.NewRAM("hostram"), hcacheBytes)),
		)
		r.mgr.RegisterVM(1, 100)
		// Unbatched: these tests inspect manager state right after puts,
		// so deliveries must not sit in a transport ring.
		r.front = cleancache.NewFront(1, hypercall.NewTransport(r.mgr, hypercall.Options{Unbatched: true}))
	}
	r.cache = New(r.root, r.front, r.disk)
	return r
}

func (r *rig) newGroup(name string, limitBytes int64) *cgroup.Group {
	g := r.root.NewGroup(name, limitBytes, r.disk)
	if r.front != nil {
		r.front.RegisterGroup(0, g)
	}
	return g
}

func (r *rig) newFile(blocks int64) *fsmodel.File {
	return r.alloc.Alloc(blocks)
}

func TestReadMissThenHit(t *testing.T) {
	r := newRig(64*mib, 0)
	g := r.newGroup("c1", 0)
	f := r.newFile(10)
	lat1 := r.cache.Read(0, g, f, 0, 10)
	if lat1 < 8*time.Millisecond {
		t.Fatalf("cold read latency %v should include a disk seek", lat1)
	}
	st := r.cache.Stats(g)
	if st.Misses != 10 || st.DiskReads != 10 {
		t.Fatalf("stats = %+v", st)
	}
	lat2 := r.cache.Read(time.Second, g, f, 0, 10)
	if lat2 != 10*PageHitCost {
		t.Fatalf("warm read latency %v, want %v", lat2, 10*PageHitCost)
	}
	if got := r.cache.Stats(g).Hits; got != 10 {
		t.Fatalf("hits = %d", got)
	}
	if g.FilePages() != 10 {
		t.Fatalf("charged pages = %d", g.FilePages())
	}
}

func TestReadBeyondEOFClamped(t *testing.T) {
	r := newRig(64*mib, 0)
	g := r.newGroup("c1", 0)
	f := r.newFile(4)
	r.cache.Read(0, g, f, 2, 100)
	if g.FilePages() != 2 {
		t.Fatalf("pages = %d, want 2 (blocks 2,3)", g.FilePages())
	}
}

func TestEvictionPutsToSecondChance(t *testing.T) {
	r := newRig(64*mib, 32*mib)
	g := r.newGroup("c1", 1*mib) // 256 pages
	f := r.newFile(400)
	r.cache.Read(0, g, f, 0, 400) // overflows the cgroup limit
	if g.FilePages() > g.LimitPages() {
		t.Fatalf("group over limit: %d > %d", g.FilePages(), g.LimitPages())
	}
	ccStats := r.front.Stats()
	if ccStats.Puts == 0 {
		t.Fatal("evictions did not reach the second-chance cache")
	}
	if used := r.mgr.PoolUsedBytes(cleancache.PoolID(g.PoolID()), cgroup.StoreMem); used == 0 {
		t.Fatal("hypervisor cache holds nothing after evictions")
	}
}

func TestSecondChanceHitAvoidsDisk(t *testing.T) {
	r := newRig(64*mib, 32*mib)
	g := r.newGroup("c1", 1*mib)
	f := r.newFile(400)
	r.cache.Read(0, g, f, 0, 400)
	// Early blocks were evicted to the hypervisor cache; re-read them.
	before := r.cache.Stats(g).DiskReads
	lat := r.cache.Read(time.Second, g, f, 0, 32)
	st := r.cache.Stats(g)
	if st.CCHits == 0 {
		t.Fatal("no second-chance hits")
	}
	if st.DiskReads != before {
		t.Fatalf("re-read went to disk (%d → %d reads)", before, st.DiskReads)
	}
	if lat > 5*time.Millisecond {
		t.Fatalf("second-chance read cost %v, suspiciously like disk", lat)
	}
	// Exclusivity: objects moved back to the page cache.
	ccBefore := r.front.Stats().GetHits
	if ccBefore == 0 {
		t.Fatal("no get hits recorded")
	}
}

func TestWriteDirtiesAndFsyncCleans(t *testing.T) {
	r := newRig(64*mib, 0)
	g := r.newGroup("c1", 0)
	f := r.newFile(20)
	r.cache.Write(0, g, f, 0, 20)
	if r.cache.DirtyPages() != 20 {
		t.Fatalf("dirty = %d, want 20", r.cache.DirtyPages())
	}
	lat := r.cache.Fsync(0, g, f)
	if lat < 8*time.Millisecond {
		t.Fatalf("fsync latency %v should include disk write", lat)
	}
	if r.cache.DirtyPages() != 0 {
		t.Fatal("fsync left dirty pages")
	}
	if got := r.cache.Stats(g).DiskWrites; got != 20 {
		t.Fatalf("disk writes = %d", got)
	}
	// Second fsync is free.
	if l2 := r.cache.Fsync(0, g, f); l2 != 0 {
		t.Fatalf("clean fsync cost %v", l2)
	}
}

func TestFsyncCoalescesContiguousRuns(t *testing.T) {
	r := newRig(64*mib, 0)
	g := r.newGroup("c1", 0)
	f := r.newFile(64)
	r.cache.Write(0, g, f, 0, 64)
	writesBefore := r.disk.Stats().Writes
	r.cache.Fsync(0, g, f)
	delta := r.disk.Stats().Writes - writesBefore
	if delta != 1 {
		t.Fatalf("contiguous fsync issued %d device writes, want 1", delta)
	}
}

func TestBackgroundFlusher(t *testing.T) {
	r := newRig(64*mib, 0)
	g := r.newGroup("c1", 0)
	f := r.newFile(100)
	r.cache.Write(0, g, f, 0, 100)
	n := r.cache.FlushDirty(0, 30)
	if n != 30 {
		t.Fatalf("FlushDirty cleaned %d, want 30", n)
	}
	if r.cache.DirtyPages() != 70 {
		t.Fatalf("dirty = %d, want 70", r.cache.DirtyPages())
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	r := newRig(64*mib, 32*mib)
	g := r.newGroup("c1", 1*mib)
	f := r.newFile(400)
	r.cache.Write(0, g, f, 0, 400) // dirty overflow forces writeback+evict
	if g.FilePages() > g.LimitPages() {
		t.Fatal("group over limit")
	}
	if r.disk.Stats().Writes == 0 {
		t.Fatal("dirty eviction never wrote to disk")
	}
}

func TestInvalidateDropsAndFlushes(t *testing.T) {
	r := newRig(64*mib, 32*mib)
	g := r.newGroup("c1", 1*mib)
	f := r.newFile(400)
	r.cache.Read(0, g, f, 0, 400) // spills into hcache
	pool := cleancache.PoolID(g.PoolID())
	if r.mgr.PoolUsedBytes(pool, cgroup.StoreMem) == 0 {
		t.Fatal("setup: nothing in hypervisor cache")
	}
	r.cache.Invalidate(0, g, f)
	if g.FilePages() != 0 {
		t.Fatalf("pages after invalidate = %d", g.FilePages())
	}
	if used := r.mgr.PoolUsedBytes(pool, cgroup.StoreMem); used != 0 {
		t.Fatalf("hypervisor cache retains %d bytes after inode flush", used)
	}
}

func TestWriteMissFlushesStaleSecondChanceCopy(t *testing.T) {
	r := newRig(64*mib, 32*mib)
	g := r.newGroup("c1", 1*mib)
	f := r.newFile(400)
	r.cache.Read(0, g, f, 0, 400) // block 0 evicted into hcache
	ccFlushes := r.front.Stats().Flushes
	r.cache.Write(time.Second, g, f, 0, 1) // write miss on block 0
	if r.front.Stats().Flushes != ccFlushes+1 {
		t.Fatal("write miss did not invalidate second-chance copy")
	}
	// The stale copy must be gone: a later read misses in the hcache.
	r.cache.Fsync(time.Second, g, f)
	hitsBefore := r.front.Stats().GetHits
	r.cache.Invalidate(2*time.Second, g, f)
	_ = hitsBefore
}

func TestReclaimFileLRUOrder(t *testing.T) {
	r := newRig(64*mib, 0)
	g := r.newGroup("c1", 0)
	f := r.newFile(10)
	r.cache.Read(0, g, f, 0, 10)
	// Touch blocks 5..9 later so 0..4 are coldest.
	r.cache.Read(time.Second, g, f, 5, 5)
	freed, _ := r.cache.ReclaimFile(2*time.Second, g, 5)
	if freed != 5 {
		t.Fatalf("freed = %d, want 5", freed)
	}
	// Blocks 5..9 must still be resident (hits), 0..4 gone.
	st0 := r.cache.Stats(g)
	r.cache.Read(3*time.Second, g, f, 5, 5)
	if got := r.cache.Stats(g).Hits - st0.Hits; got != 5 {
		t.Fatalf("warm blocks lost: %d hits, want 5", got)
	}
}

func TestOldestFilePage(t *testing.T) {
	r := newRig(64*mib, 0)
	g := r.newGroup("c1", 0)
	if _, ok := r.cache.OldestFilePage(g); ok {
		t.Fatal("empty group reported an oldest page")
	}
	f := r.newFile(2)
	r.cache.Read(5*time.Second, g, f, 0, 1)
	r.cache.Read(9*time.Second, g, f, 1, 1)
	at, ok := r.cache.OldestFilePage(g)
	if !ok {
		t.Fatal("no oldest page")
	}
	if at < 5*time.Second || at >= 9*time.Second {
		t.Fatalf("oldest = %v, want ~5s", at)
	}
}

func TestTotalPages(t *testing.T) {
	r := newRig(64*mib, 0)
	g1 := r.newGroup("a", 0)
	g2 := r.newGroup("b", 0)
	f1, f2 := r.newFile(5), r.newFile(7)
	r.cache.Read(0, g1, f1, 0, 5)
	r.cache.Read(0, g2, f2, 0, 7)
	if got := r.cache.TotalPages(); got != 12 {
		t.Fatalf("TotalPages = %d, want 12", got)
	}
}

func TestNoFrontWorks(t *testing.T) {
	r := newRig(8*mib, 0)
	g := r.newGroup("c1", 1*mib)
	f := r.newFile(400)
	lat := r.cache.Read(0, g, f, 0, 400)
	if lat == 0 {
		t.Fatal("zero latency for cold reads")
	}
	if g.FilePages() > g.LimitPages() {
		t.Fatal("limit not enforced without front")
	}
}
