// Package datastore models the three YCSB-backed data stores of the
// paper's evaluation, distinguished by how they use memory — the property
// that drives Figure 7, Table 1 and Table 4:
//
//   - Redis: a pure in-memory store; its whole dataset is anonymous
//     memory. The hypervisor cache cannot help it, and when its working
//     set exceeds the container limit it collapses into swap.
//   - MongoDB: an mmap-style store; its dataset is file-backed and flows
//     through the page cache, so it offloads beautifully to the
//     hypervisor cache.
//   - MySQL: an InnoDB-style store; a large anonymous buffer pool plus a
//     synchronously-flushed redo log. Mostly anon, hence mostly
//     swap-bound under memory pressure.
//
// Each store is a workload.Profile driven by a closed-loop YCSB-like
// client.
package datastore

import (
	"math/rand"
	"time"

	"doubledecker/internal/fsmodel"
	"doubledecker/internal/guest"
	"doubledecker/internal/workload"
)

// RedisConfig sizes a Redis-like store.
type RedisConfig struct {
	DatasetBytes  int64
	TouchesPerOp  int64 // anon pages touched per YCSB op
	Think         time.Duration
	AOFAppendsPer int64 // append-only-file writes per op interval (0 = off)
}

// DefaultRedis returns a 512 MiB in-memory dataset.
func DefaultRedis() RedisConfig {
	return RedisConfig{DatasetBytes: 512 << 20, TouchesPerOp: 2, Think: 80 * time.Microsecond}
}

// Redis is the anonymous-memory data store.
type Redis struct {
	cfg RedisConfig
	rng *rand.Rand
	aof *fsmodel.File
	ops int64
}

var _ workload.Profile = (*Redis)(nil)

// NewRedis builds the profile.
func NewRedis(cfg RedisConfig, rng *rand.Rand) *Redis {
	return &Redis{cfg: cfg, rng: rng}
}

// Name implements workload.Profile.
func (r *Redis) Name() string { return "redis" }

// Prepare implements workload.Profile: load the dataset into anonymous
// memory (under memory pressure this immediately spills to swap).
func (r *Redis) Prepare(now time.Duration, c *guest.Container) {
	c.GrowAnon(now, r.cfg.DatasetBytes/fsmodel.BlockSize)
	if r.cfg.AOFAppendsPer > 0 {
		r.aof = c.VM().Allocator().Alloc(1)
	}
}

// Step implements workload.Profile: one YCSB op touches a handful of
// anonymous pages; swapped pages stall the client on major faults.
func (r *Redis) Step(now time.Duration, c *guest.Container, _ int) (time.Duration, int64) {
	lat := c.TouchAnon(now, r.cfg.TouchesPerOp)
	r.ops++
	if r.cfg.AOFAppendsPer > 0 && r.ops%r.cfg.AOFAppendsPer == 0 {
		r.aof.Blocks++
		lat += c.Write(now+lat, r.aof, r.aof.Blocks-1, 1)
	}
	return lat + r.cfg.Think, 1024 // nominal 1 KiB record
}

// MongoConfig sizes a MongoDB-like store.
type MongoConfig struct {
	DatasetBytes int64
	AnonBytes    int64 // server-side working memory
	ReadsPerOp   int64 // file blocks read per YCSB op
	WriteFrac    float64
	// UniformFrac is the fraction of reads drawn uniformly over the whole
	// dataset (YCSB's scan/cold tail); the rest are zipf-popular.
	UniformFrac float64
	// SkipLoadPhase disables the YCSB load phase. By default Prepare
	// writes the dataset through the page cache, which is what seeds the
	// hypervisor cache with the cold part of the set (as in the paper).
	SkipLoadPhase bool
	Think         time.Duration
}

// DefaultMongo returns a 768 MiB file-backed dataset.
func DefaultMongo() MongoConfig {
	return MongoConfig{
		DatasetBytes: 768 << 20,
		AnonBytes:    64 << 20,
		ReadsPerOp:   2,
		WriteFrac:    0.05,
		UniformFrac:  0.3,
		Think:        1500 * time.Microsecond,
	}
}

// Mongo is the mmap-style file-backed data store.
type Mongo struct {
	cfg  MongoConfig
	rng  *rand.Rand
	data *fsmodel.File
	zipf *rand.Zipf
}

var _ workload.Profile = (*Mongo)(nil)

// NewMongo builds the profile.
func NewMongo(cfg MongoConfig, rng *rand.Rand) *Mongo {
	return &Mongo{cfg: cfg, rng: rng}
}

// Name implements workload.Profile.
func (m *Mongo) Name() string { return "mongodb" }

// Prepare implements workload.Profile: allocate server memory and run the
// YCSB load phase — inserting every record writes the data file through
// the page cache, spilling the cold tail into the hypervisor cache.
func (m *Mongo) Prepare(now time.Duration, c *guest.Container) {
	blocks := m.cfg.DatasetBytes / fsmodel.BlockSize
	m.data = c.VM().Allocator().Alloc(blocks)
	m.zipf = rand.NewZipf(m.rng, 1.1, 16, uint64(blocks-1))
	if m.cfg.AnonBytes > 0 {
		c.GrowAnon(now, m.cfg.AnonBytes/fsmodel.BlockSize)
	}
	if !m.cfg.SkipLoadPhase {
		const chunk = 256
		for b := int64(0); b < blocks; b += chunk {
			n := chunk
			if b+int64(n) > blocks {
				n = int(blocks - b)
			}
			c.Write(now, m.data, b, int64(n))
		}
		c.Fsync(now, m.data)
	}
}

// Step implements workload.Profile: read a few zipf-popular blocks of the
// data file through the page cache; occasionally dirty one.
func (m *Mongo) Step(now time.Duration, c *guest.Container, _ int) (time.Duration, int64) {
	var lat time.Duration
	for i := int64(0); i < m.cfg.ReadsPerOp; i++ {
		block := int64(m.zipf.Uint64())
		if m.rng.Float64() < m.cfg.UniformFrac {
			block = m.rng.Int63n(m.data.Blocks)
		}
		lat += c.Read(now+lat, m.data, block, 1)
	}
	if m.rng.Float64() < m.cfg.WriteFrac {
		lat += c.Write(now+lat, m.data, int64(m.zipf.Uint64()), 1)
	}
	return lat + m.cfg.Think, m.cfg.ReadsPerOp * 1024
}

// MySQLConfig sizes a MySQL/InnoDB-like store.
type MySQLConfig struct {
	BufferPoolBytes int64 // anonymous buffer pool
	DatasetBytes    int64 // on-disk tablespace
	TouchesPerOp    int64 // buffer pool pages touched per op
	MissFrac        float64
	LogSyncEvery    int64 // ops per redo-log fsync
	Think           time.Duration
}

// DefaultMySQL returns a 640 MiB buffer pool over a 1 GiB tablespace.
func DefaultMySQL() MySQLConfig {
	return MySQLConfig{
		BufferPoolBytes: 640 << 20,
		DatasetBytes:    1 << 30,
		TouchesPerOp:    3,
		MissFrac:        0.02,
		LogSyncEvery:    8,
		Think:           600 * time.Microsecond,
	}
}

// MySQL is the buffer-pool-based data store.
type MySQL struct {
	cfg   MySQLConfig
	rng   *rand.Rand
	table *fsmodel.File
	log   *fsmodel.File
	ops   int64
}

var _ workload.Profile = (*MySQL)(nil)

// NewMySQL builds the profile.
func NewMySQL(cfg MySQLConfig, rng *rand.Rand) *MySQL {
	return &MySQL{cfg: cfg, rng: rng}
}

// Name implements workload.Profile.
func (s *MySQL) Name() string { return "mysql" }

// Prepare implements workload.Profile.
func (s *MySQL) Prepare(now time.Duration, c *guest.Container) {
	alloc := c.VM().Allocator()
	s.table = alloc.Alloc(s.cfg.DatasetBytes / fsmodel.BlockSize)
	s.log = alloc.Alloc(1)
	c.GrowAnon(now, s.cfg.BufferPoolBytes/fsmodel.BlockSize)
}

// Step implements workload.Profile: touch buffer-pool pages (anon; major
// faults when the pool is swapped), occasionally miss to the tablespace
// with O_DIRECT-style reads, and periodically fsync the redo log.
func (s *MySQL) Step(now time.Duration, c *guest.Container, _ int) (time.Duration, int64) {
	lat := c.TouchAnon(now, s.cfg.TouchesPerOp)
	if s.rng.Float64() < s.cfg.MissFrac {
		block := s.rng.Int63n(s.table.Blocks)
		lat += c.Read(now+lat, s.table, block, 1)
	}
	s.ops++
	if s.cfg.LogSyncEvery > 0 && s.ops%s.cfg.LogSyncEvery == 0 {
		s.log.Blocks++
		lat += c.Write(now+lat, s.log, s.log.Blocks-1, 1)
		lat += c.Fsync(now+lat, s.log)
	}
	return lat + s.cfg.Think, 1024
}
