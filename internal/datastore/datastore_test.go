package datastore

import (
	"testing"
	"time"

	"doubledecker/internal/cgroup"
	"doubledecker/internal/ddcache"
	"doubledecker/internal/hypervisor"
	"doubledecker/internal/sim"
	"doubledecker/internal/workload"
)

const mib = int64(1) << 20

func rig(t *testing.T, vmBytes, limitBytes, cacheBytes int64) (*sim.Engine, *hypervisor.Host, *workload.Runner, func(p workload.Profile, threads int) *workload.Runner) {
	t.Helper()
	engine := sim.New(1)
	host := hypervisor.New(engine, hypervisor.Config{
		Mode:          ddcache.ModeDD,
		MemCacheBytes: cacheBytes,
	})
	vm := host.NewVM(1, vmBytes, 100)
	start := func(p workload.Profile, threads int) *workload.Runner {
		c := vm.NewContainer(p.Name(), limitBytes, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
		return workload.Start(engine, c, p, threads)
	}
	return engine, host, nil, start
}

func TestRedisFitsRunsFast(t *testing.T) {
	engine, _, _, start := rig(t, 512*mib, 256*mib, 64*mib)
	r := start(NewRedis(RedisConfig{DatasetBytes: 128 * mib, TouchesPerOp: 2, Think: 100 * time.Microsecond}, engine.Rand()), 2)
	if err := engine.Run(10 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	ops := r.OpsPerSec(engine.Now())
	if ops < 10000 {
		t.Fatalf("in-memory redis at %f ops/s, want ~think-bound", ops)
	}
}

func TestRedisSwapsWhenOversized(t *testing.T) {
	engine, _, _, start := rig(t, 512*mib, 128*mib, 64*mib)
	r := start(NewRedis(RedisConfig{DatasetBytes: 256 * mib, TouchesPerOp: 2, Think: 100 * time.Microsecond}, engine.Rand()), 2)
	if err := engine.Run(10 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	g := r.Container().Group()
	if g.Stats().SwapOutPages == 0 || g.Stats().SwapInPages == 0 {
		t.Fatalf("oversized redis did not thrash swap: %+v", g.Stats())
	}
	if ops := r.OpsPerSec(engine.Now()); ops > 2000 {
		t.Fatalf("swapping redis implausibly fast: %f ops/s", ops)
	}
}

func TestRedisAOF(t *testing.T) {
	engine, _, _, start := rig(t, 512*mib, 256*mib, 64*mib)
	r := start(NewRedis(RedisConfig{DatasetBytes: 64 * mib, TouchesPerOp: 1, Think: 100 * time.Microsecond, AOFAppendsPer: 4}, engine.Rand()), 1)
	if err := engine.Run(5 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r.Container().IOStats().Misses == 0 {
		t.Fatal("AOF writes never reached the page cache")
	}
}

func TestMongoLoadPhaseSeedsCache(t *testing.T) {
	engine, host, _, start := rig(t, 256*mib, 96*mib, 128*mib)
	r := start(NewMongo(MongoConfig{
		DatasetBytes: 192 * mib,
		AnonBytes:    16 * mib,
		ReadsPerOp:   2,
		UniformFrac:  0.3,
		Think:        500 * time.Microsecond,
	}, engine.Rand()), 2)
	// Load phase happens in Prepare: the cache already holds the spill.
	if host.Manager().StoreUsedBytes(cgroup.StoreMem) == 0 {
		t.Fatal("load phase did not seed the hypervisor cache")
	}
	if err := engine.Run(10 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	cs := r.Container().CacheStats()
	if cs.GetHits == 0 {
		t.Fatal("mongo reads never hit the second-chance cache")
	}
	if g := r.Container().Group(); g.Stats().SwapOutPages != 0 {
		t.Fatal("file-backed mongo should not swap")
	}
}

func TestMongoSkipLoadPhase(t *testing.T) {
	engine, host, _, start := rig(t, 256*mib, 96*mib, 128*mib)
	start(NewMongo(MongoConfig{
		DatasetBytes:  192 * mib,
		ReadsPerOp:    1,
		SkipLoadPhase: true,
		Think:         500 * time.Microsecond,
	}, engine.Rand()), 1)
	if host.Manager().StoreUsedBytes(cgroup.StoreMem) != 0 {
		t.Fatal("SkipLoadPhase still seeded the cache")
	}
	_ = engine
}

func TestMySQLLogSyncAndSwap(t *testing.T) {
	engine, _, _, start := rig(t, 512*mib, 128*mib, 64*mib)
	r := start(NewMySQL(MySQLConfig{
		BufferPoolBytes: 256 * mib, // 2x the container → swap-bound
		DatasetBytes:    256 * mib,
		TouchesPerOp:    3,
		MissFrac:        0.05,
		LogSyncEvery:    4,
		Think:           200 * time.Microsecond,
	}, engine.Rand()), 2)
	if err := engine.Run(10 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	g := r.Container().Group()
	if g.Stats().SwapOutPages == 0 {
		t.Fatal("oversized buffer pool did not swap")
	}
	if r.Container().IOStats().DiskWrites == 0 {
		t.Fatal("redo log never written back")
	}
}

func TestMySQLFitsIsFast(t *testing.T) {
	engine, _, _, start := rig(t, 512*mib, 256*mib, 64*mib)
	r := start(NewMySQL(MySQLConfig{
		BufferPoolBytes: 128 * mib,
		DatasetBytes:    256 * mib,
		TouchesPerOp:    3,
		MissFrac:        0.0,
		LogSyncEvery:    0, // no fsync
		Think:           200 * time.Microsecond,
	}, engine.Rand()), 2)
	if err := engine.Run(5 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ops := r.OpsPerSec(engine.Now()); ops < 5000 {
		t.Fatalf("fitting mysql at %f ops/s, want think-bound", ops)
	}
}

func TestProfileNames(t *testing.T) {
	engine := sim.New(1)
	rng := engine.Rand()
	if NewRedis(DefaultRedis(), rng).Name() != "redis" ||
		NewMongo(DefaultMongo(), rng).Name() != "mongodb" ||
		NewMySQL(DefaultMySQL(), rng).Name() != "mysql" {
		t.Fatal("profile names broken")
	}
}
