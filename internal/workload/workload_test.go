package workload

import (
	"testing"
	"time"

	"doubledecker/internal/cgroup"
	"doubledecker/internal/ddcache"
	"doubledecker/internal/hypervisor"
	"doubledecker/internal/sim"
)

const mib = 1 << 20

// smallRig boots one VM with one container and a small DD memory cache.
func smallRig(t *testing.T, seed int64) (*sim.Engine, *hypervisor.Host) {
	t.Helper()
	engine := sim.New(seed)
	host := hypervisor.New(engine, hypervisor.Config{
		Mode:          ddcache.ModeDD,
		MemCacheBytes: 64 * mib,
	})
	return engine, host
}

func TestWebserverRuns(t *testing.T) {
	engine, host := smallRig(t, 1)
	vm := host.NewVM(1, 256*mib, 100)
	c := vm.NewContainer("web", 64*mib, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	cfg := WebserverConfig{Files: 200, MeanBlocks: 8, Think: 100 * time.Microsecond}
	r := Start(engine, c, NewWebserver(cfg, engine.Rand()), 2)
	if err := engine.Run(30 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r.Ops() == 0 {
		t.Fatal("no operations completed")
	}
	if r.MBPerSec(engine.Now()) <= 0 {
		t.Fatal("zero throughput")
	}
	st := c.IOStats()
	if st.Hits == 0 {
		t.Fatal("no page cache hits for a zipf-read workload")
	}
}

func TestWebserverSpillsToHypervisorCache(t *testing.T) {
	engine, host := smallRig(t, 2)
	vm := host.NewVM(1, 256*mib, 100)
	// Container limit far below the file set size → must spill.
	c := vm.NewContainer("web", 16*mib, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	cfg := WebserverConfig{Files: 400, MeanBlocks: 16, Think: 100 * time.Microsecond} // ~25 MiB set
	Start(engine, c, NewWebserver(cfg, engine.Rand()), 2)
	if err := engine.Run(30 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	cs := c.CacheStats()
	if cs.Puts == 0 {
		t.Fatal("nothing spilled to the hypervisor cache")
	}
	if cs.GetHits == 0 {
		t.Fatal("no second-chance hits: exclusive caching loop broken")
	}
	if cs.UsedBytes == 0 {
		t.Fatal("hypervisor cache empty at steady state")
	}
}

func TestWebproxyChurns(t *testing.T) {
	engine, host := smallRig(t, 3)
	vm := host.NewVM(1, 256*mib, 100)
	c := vm.NewContainer("proxy", 32*mib, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	cfg := WebproxyConfig{Files: 500, MeanBlocks: 4, Think: 100 * time.Microsecond}
	r := Start(engine, c, NewWebproxy(cfg, engine.Rand()), 2)
	if err := engine.Run(20 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r.Ops() == 0 {
		t.Fatal("no proxy ops")
	}
	st := c.IOStats()
	if st.DiskWrites == 0 {
		t.Fatal("proxy churn produced no writeback")
	}
}

func TestVarmailFsyncBound(t *testing.T) {
	engine, host := smallRig(t, 4)
	vm := host.NewVM(1, 256*mib, 100)
	c := vm.NewContainer("mail", 32*mib, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	cfg := VarmailConfig{Files: 500, MeanBlocks: 4, Think: 100 * time.Microsecond}
	r := Start(engine, c, NewVarmail(cfg, engine.Rand()), 2)
	if err := engine.Run(20 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r.Ops() == 0 {
		t.Fatal("no mail ops")
	}
	// Mail latency must be disk-write bound (fsyncs ≥ ~9ms each).
	if r.Latency().Mean() < 5*time.Millisecond {
		t.Fatalf("mail mean latency %v implausibly low for fsync-heavy load", r.Latency().Mean())
	}
}

func TestVideoserverStreams(t *testing.T) {
	engine, host := smallRig(t, 5)
	vm := host.NewVM(1, 512*mib, 100)
	c := vm.NewContainer("video", 128*mib, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	cfg := VideoserverConfig{
		ActiveVideos:  4,
		PassiveVideos: 4,
		VideoBlocks:   4096, // 16 MiB videos
		ChunkBlocks:   64,
		WriterThreads: 1,
		WriterThink:   10 * time.Millisecond,
		Think:         150 * time.Microsecond,
	}
	r := Start(engine, c, NewVideoserver(cfg, engine.Rand()), 3)
	if err := engine.Run(30 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r.MBPerSec(engine.Now()) < 1 {
		t.Fatalf("video throughput %.2f MB/s too low", r.MBPerSec(engine.Now()))
	}
	if c.IOStats().DiskWrites == 0 {
		t.Fatal("vidwriter never wrote")
	}
}

func TestRunnerStopHalts(t *testing.T) {
	engine, host := smallRig(t, 6)
	vm := host.NewVM(1, 256*mib, 100)
	c := vm.NewContainer("web", 32*mib, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	r := Start(engine, c, NewWebserver(WebserverConfig{Files: 50, MeanBlocks: 4, Think: time.Millisecond}, engine.Rand()), 1)
	if err := engine.Run(5 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	r.Stop()
	at := r.Ops()
	if err := engine.Run(10 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r.Ops() != at {
		t.Fatalf("runner kept going after Stop: %d → %d", at, r.Ops())
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (int64, int64) {
		engine, host := smallRig(t, 42)
		vm := host.NewVM(1, 256*mib, 100)
		c := vm.NewContainer("web", 32*mib, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
		r := Start(engine, c, NewWebserver(WebserverConfig{Files: 300, MeanBlocks: 8, Think: 200 * time.Microsecond}, engine.Rand()), 2)
		if err := engine.Run(10 * time.Second); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return r.Ops(), r.Bytes()
	}
	ops1, bytes1 := run()
	ops2, bytes2 := run()
	if ops1 != ops2 || bytes1 != bytes2 {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", ops1, bytes1, ops2, bytes2)
	}
}

func TestOpsPerSecAndMBPerSec(t *testing.T) {
	engine, host := smallRig(t, 7)
	vm := host.NewVM(1, 256*mib, 100)
	c := vm.NewContainer("web", 32*mib, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	r := Start(engine, c, NewWebserver(WebserverConfig{Files: 100, MeanBlocks: 4, Think: time.Millisecond}, engine.Rand()), 1)
	if r.OpsPerSec(0) != 0 {
		t.Fatal("zero-elapsed throughput should be 0")
	}
	if err := engine.Run(10 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	ops := r.OpsPerSec(engine.Now())
	if ops <= 0 || ops > 1e6 {
		t.Fatalf("OpsPerSec = %v", ops)
	}
}

func TestVideoserverWriterThreadOnlyWrites(t *testing.T) {
	engine, host := smallRig(t, 8)
	vm := host.NewVM(1, 512*mib, 100)
	c := vm.NewContainer("video", 128*mib, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	cfg := VideoserverConfig{
		ActiveVideos:  2,
		PassiveVideos: 2,
		VideoBlocks:   2048,
		ChunkBlocks:   64,
		WriterThreads: 1,
		WriterThink:   5 * time.Millisecond,
		Think:         time.Millisecond,
	}
	// Only the writer thread runs: all traffic must be writes.
	Start(engine, c, NewVideoserver(cfg, engine.Rand()), 1)
	if err := engine.Run(20 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := c.IOStats()
	if st.DiskWrites == 0 {
		t.Fatal("writer produced no writeback")
	}
	if st.DiskReads != 0 {
		t.Fatalf("writer-only run read %d blocks from disk", st.DiskReads)
	}
}

func TestVideoserverRecirculatesThroughCache(t *testing.T) {
	engine, host := smallRig(t, 9)
	vm := host.NewVM(1, 512*mib, 100)
	// Container far smaller than the video set: streams and re-reads
	// must recirculate through the hypervisor cache.
	c := vm.NewContainer("video", 16*mib, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	cfg := VideoserverConfig{
		ActiveVideos:    2,
		PassiveVideos:   4,
		VideoBlocks:     4096, // 16 MiB videos
		ChunkBlocks:     64,
		WriterThreads:   1,
		WriterThink:     2 * time.Millisecond,
		PassiveReadFrac: 0.5,
		Think:           time.Millisecond,
	}
	Start(engine, c, NewVideoserver(cfg, engine.Rand()), 3)
	if err := engine.Run(60 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	cs := c.CacheStats()
	if cs.Puts == 0 {
		t.Fatal("write spill never reached the hypervisor cache")
	}
	if cs.GetHits == 0 {
		t.Fatal("streams never recirculated through the hypervisor cache")
	}
}

func TestWebproxyDeleteInvalidatesEverywhere(t *testing.T) {
	engine, host := smallRig(t, 10)
	vm := host.NewVM(1, 256*mib, 100)
	c := vm.NewContainer("proxy", 16*mib, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	cfg := WebproxyConfig{Files: 2000, MeanBlocks: 8, Think: 500 * time.Microsecond}
	Start(engine, c, NewWebproxy(cfg, engine.Rand()), 2)
	if err := engine.Run(30 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Churn flushes deleted inodes: the front must have seen flushes.
	if vm.Front().Stats().Flushes == 0 {
		t.Fatal("proxy churn never flushed the second-chance cache")
	}
}

func TestCheckpointWindows(t *testing.T) {
	engine, host := smallRig(t, 11)
	vm := host.NewVM(1, 256*mib, 100)
	c := vm.NewContainer("web", 32*mib, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	r := Start(engine, c, NewWebserver(WebserverConfig{Files: 200, MeanBlocks: 8, Think: time.Millisecond}, engine.Rand()), 2)
	if err := engine.Run(10 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	cp := r.CheckpointNow(engine.Now())
	if cp.Ops != r.Ops() || cp.At != engine.Now() {
		t.Fatalf("checkpoint mismatch: %+v", cp)
	}
	if r.OpsPerSecSince(cp, engine.Now()) != 0 {
		t.Fatal("zero-width window should report 0")
	}
	if err := engine.Run(20 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	since := r.OpsPerSecSince(cp, engine.Now())
	total := r.OpsPerSec(engine.Now())
	if since <= 0 {
		t.Fatal("windowed throughput zero after running")
	}
	// The warm window should be at least as fast as the lifetime average.
	if since < total*0.5 {
		t.Fatalf("windowed %f vs lifetime %f implausible", since, total)
	}
	if r.MBPerSecSince(cp, engine.Now()) <= 0 {
		t.Fatal("windowed MB/s zero")
	}
}
