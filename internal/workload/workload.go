// Package workload implements the paper's application drivers: the four
// Filebench profiles used throughout the evaluation (webserver, webproxy,
// varmail, videoserver) and a closed-loop thread runner. Each profile
// issues operations against a container's file/anon API; throughput falls
// out of operation latency exactly as it does on real hardware.
package workload

import (
	"math/rand"
	"time"

	"doubledecker/internal/fsmodel"
	"doubledecker/internal/guest"
	"doubledecker/internal/metrics"
	"doubledecker/internal/sim"
)

// Profile is a workload running inside one container. Step performs one
// operation on behalf of the given thread and returns its latency
// (including think time) and payload bytes moved.
type Profile interface {
	Name() string
	Prepare(now time.Duration, c *guest.Container)
	Step(now time.Duration, c *guest.Container, thread int) (time.Duration, int64)
}

// Runner drives closed-loop threads of one profile inside a container.
type Runner struct {
	engine    *sim.Engine
	container *guest.Container
	profile   Profile

	ops     int64
	bytes   int64
	lat     *metrics.Histogram
	started time.Duration
	stopped bool
}

// minStep guards against zero-latency infinite loops.
const minStep = time.Microsecond

// Start prepares the profile and launches threads closed-loop threads.
func Start(engine *sim.Engine, c *guest.Container, p Profile, threads int) *Runner {
	r := &Runner{
		engine:    engine,
		container: c,
		profile:   p,
		lat:       metrics.NewHistogram(),
		started:   engine.Now(),
	}
	p.Prepare(engine.Now(), c)
	for t := 0; t < threads; t++ {
		t := t
		var loop func()
		loop = func() {
			if r.stopped {
				return
			}
			now := engine.Now()
			lat, bytes := p.Step(now, c, t)
			if lat < minStep {
				lat = minStep
			}
			r.ops++
			r.bytes += bytes
			r.lat.Observe(lat)
			engine.Schedule(lat, loop)
		}
		engine.Schedule(0, loop)
	}
	return r
}

// Stop halts all threads after their in-flight operation.
func (r *Runner) Stop() { r.stopped = true }

// Checkpoint captures the runner's counters at a point in time, so
// callers can compute steady-state windows that exclude warm-up.
type Checkpoint struct {
	At    time.Duration
	Ops   int64
	Bytes int64
}

// CheckpointNow snapshots the counters and swaps in a fresh latency
// histogram; Latency() afterwards reflects only post-checkpoint ops.
func (r *Runner) CheckpointNow(now time.Duration) Checkpoint {
	cp := Checkpoint{At: now, Ops: r.ops, Bytes: r.bytes}
	r.lat = metrics.NewHistogram()
	return cp
}

// OpsPerSecSince reports throughput over the window since cp.
func (r *Runner) OpsPerSecSince(cp Checkpoint, now time.Duration) float64 {
	elapsed := now - cp.At
	if elapsed <= 0 {
		return 0
	}
	return float64(r.ops-cp.Ops) / elapsed.Seconds()
}

// MBPerSecSince reports payload throughput over the window since cp.
func (r *Runner) MBPerSecSince(cp Checkpoint, now time.Duration) float64 {
	elapsed := now - cp.At
	if elapsed <= 0 {
		return 0
	}
	return float64(r.bytes-cp.Bytes) / (1 << 20) / elapsed.Seconds()
}

// Ops reports completed operations.
func (r *Runner) Ops() int64 { return r.ops }

// Bytes reports payload bytes moved.
func (r *Runner) Bytes() int64 { return r.bytes }

// Latency returns the operation latency histogram.
func (r *Runner) Latency() *metrics.Histogram { return r.lat }

// Container returns the container under test.
func (r *Runner) Container() *guest.Container { return r.container }

// OpsPerSec reports throughput in operations per virtual second since
// start.
func (r *Runner) OpsPerSec(now time.Duration) float64 {
	elapsed := now - r.started
	if elapsed <= 0 {
		return 0
	}
	return float64(r.ops) / elapsed.Seconds()
}

// MBPerSec reports payload throughput in MiB per virtual second.
func (r *Runner) MBPerSec(now time.Duration) float64 {
	elapsed := now - r.started
	if elapsed <= 0 {
		return 0
	}
	return float64(r.bytes) / (1 << 20) / elapsed.Seconds()
}

// newZipf builds the skewed file selector the Filebench profiles use.
func newZipf(rng *rand.Rand, n int) *rand.Zipf {
	if n < 1 {
		n = 1
	}
	return rand.NewZipf(rng, 1.2, 1, uint64(n-1))
}

// --- Webserver ---------------------------------------------------------------

// WebserverConfig sizes the Filebench webserver profile: whole-file reads
// over a zipf-popular file set plus a log append every 10th operation.
type WebserverConfig struct {
	Files      int
	MeanBlocks int64 // mean file size in blocks
	// AnonBytes is the server processes' anonymous footprint.
	AnonBytes int64
	Think     time.Duration
}

// DefaultWebserver mirrors the scaled-down geometry used in the
// experiments: ~2000 files averaging 128 KiB (≈256 MiB set).
func DefaultWebserver() WebserverConfig {
	return WebserverConfig{Files: 2000, MeanBlocks: 32, Think: 400 * time.Microsecond}
}

// Webserver is the Filebench webserver profile.
type Webserver struct {
	cfg     WebserverConfig
	rng     *rand.Rand
	fileset *fsmodel.FileSet
	logFile *fsmodel.File
	opCount int64
}

var _ Profile = (*Webserver)(nil)

// NewWebserver builds the profile; rng must come from the engine.
func NewWebserver(cfg WebserverConfig, rng *rand.Rand) *Webserver {
	return &Webserver{cfg: cfg, rng: rng}
}

// Name implements Profile.
func (w *Webserver) Name() string { return "webserver" }

// Prepare implements Profile.
func (w *Webserver) Prepare(now time.Duration, c *guest.Container) {
	if w.cfg.AnonBytes > 0 {
		c.GrowAnon(now, w.cfg.AnonBytes/fsmodel.BlockSize)
	}
	alloc := c.VM().Allocator()
	w.fileset = fsmodel.NewFileSet("webroot", alloc, w.cfg.Files,
		fsmodel.SizeDist{MeanBlocks: w.cfg.MeanBlocks, Spread: w.cfg.MeanBlocks / 2}, w.rng)
	w.logFile = alloc.Alloc(1)
}

// Step implements Profile: read one whole uniformly-selected file (the
// Filebench default distribution); every 10th operation appends 16 KiB to
// the web log.
func (w *Webserver) Step(now time.Duration, c *guest.Container, _ int) (time.Duration, int64) {
	f := w.fileset.File(w.rng.Intn(w.fileset.Count()))
	lat := c.Read(now, f, 0, f.Blocks)
	bytes := f.Size()
	w.opCount++
	if w.opCount%10 == 0 {
		w.logFile.Blocks += 4
		start := w.logFile.Blocks - 4
		lat += c.Write(now+lat, w.logFile, start, 4)
		bytes += 4 * fsmodel.BlockSize
	}
	return lat + w.cfg.Think, bytes
}

// FileSetBytes reports the profile's data set size.
func (w *Webserver) FileSetBytes() int64 { return w.fileset.TotalBytes() }

// --- Webproxy ----------------------------------------------------------------

// WebproxyConfig sizes the Filebench webproxy profile: zipf reads over a
// churning set of small cached objects.
type WebproxyConfig struct {
	Files      int
	MeanBlocks int64
	Think      time.Duration
}

// DefaultWebproxy returns the scaled default: 4000 files of 16-48 KiB.
func DefaultWebproxy() WebproxyConfig {
	return WebproxyConfig{Files: 4000, MeanBlocks: 8, Think: 600 * time.Microsecond}
}

// Webproxy is the Filebench webproxy profile.
type Webproxy struct {
	cfg     WebproxyConfig
	rng     *rand.Rand
	fileset *fsmodel.FileSet
}

var _ Profile = (*Webproxy)(nil)

// NewWebproxy builds the profile.
func NewWebproxy(cfg WebproxyConfig, rng *rand.Rand) *Webproxy {
	return &Webproxy{cfg: cfg, rng: rng}
}

// Name implements Profile.
func (p *Webproxy) Name() string { return "webproxy" }

// Prepare implements Profile.
func (p *Webproxy) Prepare(_ time.Duration, c *guest.Container) {
	p.fileset = fsmodel.NewFileSet("proxycache", c.VM().Allocator(), p.cfg.Files,
		fsmodel.SizeDist{MeanBlocks: p.cfg.MeanBlocks, Spread: p.cfg.MeanBlocks / 2}, p.rng)
}

// Step implements Profile: one proxy loop — evict+refill one cached
// object (delete, recreate, write) and serve five uniformly-selected
// reads (the Filebench default distribution).
func (p *Webproxy) Step(now time.Duration, c *guest.Container, _ int) (time.Duration, int64) {
	var (
		lat   time.Duration
		bytes int64
	)
	victim := p.rng.Intn(p.fileset.Count())
	old, created := p.fileset.Replace(victim, c.VM().Allocator(),
		fsmodel.SizeDist{MeanBlocks: p.cfg.MeanBlocks, Spread: p.cfg.MeanBlocks / 2}, p.rng)
	lat += c.Delete(now+lat, old)
	lat += c.Write(now+lat, created, 0, created.Blocks)
	bytes += created.Size()
	for i := 0; i < 5; i++ {
		f := p.fileset.File(p.rng.Intn(p.fileset.Count()))
		lat += c.Read(now+lat, f, 0, f.Blocks)
		bytes += f.Size()
	}
	return lat + p.cfg.Think, bytes
}

// --- Varmail (the paper's Mail workload) --------------------------------------

// VarmailConfig sizes the Filebench varmail profile: small mail files with
// fsync-heavy delivery.
type VarmailConfig struct {
	Files      int
	MeanBlocks int64
	Think      time.Duration
}

// DefaultVarmail returns the scaled default: 4000 files of ~16 KiB.
func DefaultVarmail() VarmailConfig {
	return VarmailConfig{Files: 4000, MeanBlocks: 4, Think: 200 * time.Microsecond}
}

// Varmail is the Filebench varmail profile.
type Varmail struct {
	cfg     VarmailConfig
	rng     *rand.Rand
	fileset *fsmodel.FileSet
}

var _ Profile = (*Varmail)(nil)

// NewVarmail builds the profile.
func NewVarmail(cfg VarmailConfig, rng *rand.Rand) *Varmail {
	return &Varmail{cfg: cfg, rng: rng}
}

// Name implements Profile.
func (v *Varmail) Name() string { return "varmail" }

// Prepare implements Profile.
func (v *Varmail) Prepare(_ time.Duration, c *guest.Container) {
	v.fileset = fsmodel.NewFileSet("mailbox", c.VM().Allocator(), v.cfg.Files,
		fsmodel.SizeDist{MeanBlocks: v.cfg.MeanBlocks, Spread: v.cfg.MeanBlocks / 2}, v.rng)
}

// Step implements Profile: the varmail flow — delete a mail, deliver a
// new one (write+fsync), read one, then append+fsync+reread another.
func (v *Varmail) Step(now time.Duration, c *guest.Container, _ int) (time.Duration, int64) {
	var (
		lat   time.Duration
		bytes int64
	)
	dist := fsmodel.SizeDist{MeanBlocks: v.cfg.MeanBlocks, Spread: v.cfg.MeanBlocks / 2}
	// Delete + deliver.
	victim := v.rng.Intn(v.fileset.Count())
	old, created := v.fileset.Replace(victim, c.VM().Allocator(), dist, v.rng)
	lat += c.Delete(now+lat, old)
	lat += c.Write(now+lat, created, 0, created.Blocks)
	lat += c.Fsync(now+lat, created)
	bytes += created.Size()
	// Read one mail.
	f := v.fileset.File(v.rng.Intn(v.fileset.Count()))
	lat += c.Read(now+lat, f, 0, f.Blocks)
	bytes += f.Size()
	// Append + fsync + reread.
	idx := v.rng.Intn(v.fileset.Count())
	v.fileset.Append(idx, 1)
	af := v.fileset.File(idx)
	lat += c.Write(now+lat, af, af.Blocks-1, 1)
	lat += c.Fsync(now+lat, af)
	lat += c.Read(now+lat, af, 0, af.Blocks)
	bytes += af.Size() + fsmodel.BlockSize
	return lat + v.cfg.Think, bytes
}

// --- Videoserver ---------------------------------------------------------------

// VideoserverConfig sizes the Filebench videoserver profile: a small hot
// set of actively served videos streamed in big chunks, plus the
// vidwriter flow continuously writing new videos — a heavy one-way write
// stream whose page cache spill floods the second-chance cache (the
// dominant cache pressure in the paper's evaluation).
type VideoserverConfig struct {
	ActiveVideos  int   // hot set served to clients
	PassiveVideos int   // videos the vidwriter cycles over
	VideoBlocks   int64 // per video
	ChunkBlocks   int64 // per I/O operation
	// WriterThreads dedicates this many threads to the vidwriter flow
	// (they only write); the rest serve streams. Filebench's videoserver
	// runs the writer as its own thread, decoupled from serving rate.
	WriterThreads int
	// WriterThink is the writer's per-chunk pause, bounding its rate.
	WriterThink time.Duration
	// PassiveReadFrac is the fraction of streams served from
	// recently-written videos (re-reading the write spill).
	PassiveReadFrac float64
	Think           time.Duration
}

// DefaultVideoserver returns the scaled default: 2 hot videos of 128 MiB
// served from memory, a writer cycling over 8 passive videos.
func DefaultVideoserver() VideoserverConfig {
	return VideoserverConfig{
		ActiveVideos:    2,
		PassiveVideos:   8,
		VideoBlocks:     32768, // 128 MiB
		ChunkBlocks:     64,    // 256 KiB
		WriterThreads:   1,
		WriterThink:     25 * time.Millisecond, // ~10 MB/s new content
		PassiveReadFrac: 0.1,
		Think:           time.Millisecond,
	}
}

// Videoserver is the Filebench videoserver profile.
type Videoserver struct {
	cfg     VideoserverConfig
	rng     *rand.Rand
	active  *fsmodel.FileSet
	passive *fsmodel.FileSet
	zipf    *rand.Zipf // popularity of active videos
	// per-thread streaming positions over the active set
	posFile  map[int]int
	posBlock map[int]int64
	ops      int64
	// vidwriter cursor over the passive set
	writeFile  int
	writeBlock int64
}

var _ Profile = (*Videoserver)(nil)

// NewVideoserver builds the profile.
func NewVideoserver(cfg VideoserverConfig, rng *rand.Rand) *Videoserver {
	if cfg.PassiveVideos < 1 {
		cfg.PassiveVideos = 1
	}
	return &Videoserver{
		cfg:      cfg,
		rng:      rng,
		posFile:  make(map[int]int),
		posBlock: make(map[int]int64),
	}
}

// Name implements Profile.
func (v *Videoserver) Name() string { return "videoserver" }

// Prepare implements Profile.
func (v *Videoserver) Prepare(_ time.Duration, c *guest.Container) {
	alloc := c.VM().Allocator()
	v.active = fsmodel.NewFileSet("videos-active", alloc, v.cfg.ActiveVideos,
		fsmodel.SizeDist{MeanBlocks: v.cfg.VideoBlocks}, v.rng)
	v.passive = fsmodel.NewFileSet("videos-passive", alloc, v.cfg.PassiveVideos,
		fsmodel.SizeDist{MeanBlocks: v.cfg.VideoBlocks}, v.rng)
	v.zipf = newZipf(v.rng, v.cfg.ActiveVideos)
}

// Step implements Profile: writer threads write the next chunk of a
// passive video at their own bounded rate; serving threads stream the
// next chunk of their current active video (hot, memory-resident), with
// a fraction of streams re-reading the most recently written video.
func (v *Videoserver) Step(now time.Duration, c *guest.Container, thread int) (time.Duration, int64) {
	v.ops++
	bytes := v.cfg.ChunkBlocks * fsmodel.BlockSize
	if thread < v.cfg.WriterThreads {
		f := v.passive.File(v.writeFile)
		if v.writeBlock+v.cfg.ChunkBlocks > f.Blocks {
			v.writeFile = (v.writeFile + 1) % v.passive.Count()
			v.writeBlock = 0
			f = v.passive.File(v.writeFile)
		}
		lat := c.Write(now, f, v.writeBlock, v.cfg.ChunkBlocks)
		v.writeBlock += v.cfg.ChunkBlocks
		return lat + v.cfg.WriterThink, bytes
	}
	if v.cfg.PassiveReadFrac > 0 && v.rng.Float64() < v.cfg.PassiveReadFrac {
		// Re-read a chunk of the most recently completed video: fresh
		// content is what clients ask for, and it is still resident in
		// the second-chance cache.
		prev := v.writeFile - 1
		if prev < 0 {
			prev = v.passive.Count() - 1
		}
		f := v.passive.File(prev)
		maxChunk := f.Blocks / v.cfg.ChunkBlocks
		if maxChunk < 1 {
			maxChunk = 1
		}
		start := v.rng.Int63n(maxChunk) * v.cfg.ChunkBlocks
		lat := c.Read(now, f, start, v.cfg.ChunkBlocks)
		return lat + v.cfg.Think, bytes
	}
	fi, ok := v.posFile[thread]
	if !ok {
		fi = int(v.zipf.Uint64())
		v.posFile[thread] = fi
	}
	f := v.active.File(fi)
	pos := v.posBlock[thread]
	if pos+v.cfg.ChunkBlocks > f.Blocks {
		// End of stream: next video, zipf-popular.
		v.posFile[thread] = int(v.zipf.Uint64())
		v.posBlock[thread] = 0
		f = v.active.File(v.posFile[thread])
		pos = 0
	}
	lat := c.Read(now, f, pos, v.cfg.ChunkBlocks)
	v.posBlock[thread] = pos + v.cfg.ChunkBlocks
	return lat + v.cfg.Think, bytes
}
