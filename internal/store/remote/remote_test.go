package remote

import (
	"testing"
	"time"

	"doubledecker/internal/cgroup"
	"doubledecker/internal/fault"
	"doubledecker/internal/metrics"
	"doubledecker/internal/store"
)

var _ store.Backend = (*Store)(nil)

func TestDefaultsAndType(t *testing.T) {
	s := New(Config{CapacityBytes: 1 << 30})
	if s.Type() != cgroup.StoreRemote {
		t.Fatalf("type = %v, want remote", s.Type())
	}
	if s.CapacityBytes() != 1<<30 {
		t.Fatalf("capacity = %d", s.CapacityBytes())
	}
	s.SetCapacityBytes(2 << 30)
	if s.CapacityBytes() != 2<<30 {
		t.Fatalf("capacity after set = %d", s.CapacityBytes())
	}
}

func TestStoreFetchReleaseAccounting(t *testing.T) {
	s := New(Config{CapacityBytes: 1 << 20})
	lat, err := s.Store(0, 4096)
	if err != nil || lat != time.Microsecond {
		t.Fatalf("store: lat=%v err=%v, want 1µs submission cost", lat, err)
	}
	if got := s.UsedBytes(); got != 4096 {
		t.Fatalf("used = %d, want 4096", got)
	}
	flat, err := s.Fetch(time.Second, 4096)
	if err != nil {
		t.Fatalf("fetch: %v", err)
	}
	if flat < s.cfg.BaseLatency {
		t.Fatalf("fetch latency %v below base %v", flat, s.cfg.BaseLatency)
	}
	if flat > s.cfg.BaseLatency+s.cfg.Jitter+time.Millisecond {
		t.Fatalf("fetch latency %v implausibly high", flat)
	}
	s.Release(4096)
	if got := s.UsedBytes(); got != 0 {
		t.Fatalf("used after release = %d", got)
	}
	s.Release(4096) // clamp: never negative
	if got := s.UsedBytes(); got != 0 {
		t.Fatalf("used after double release = %d", got)
	}
}

// TestDeterministicLatencies drives two independent instances through the
// same call sequence and requires identical latencies — the property the
// three-tier differential oracle depends on.
func TestDeterministicLatencies(t *testing.T) {
	cfg := Config{CapacityBytes: 1 << 30}
	a, b := New(cfg), New(cfg)
	now := time.Duration(0)
	for i := 0; i < 200; i++ {
		size := int64(4096 * (1 + i%4))
		la, ea := a.Store(now, size)
		lb, eb := b.Store(now, size)
		if la != lb || (ea == nil) != (eb == nil) {
			t.Fatalf("op %d: store diverged %v/%v %v/%v", i, la, lb, ea, eb)
		}
		fa, ea := a.Fetch(now, size)
		fb, eb := b.Fetch(now, size)
		if fa != fb || (ea == nil) != (eb == nil) {
			t.Fatalf("op %d: fetch diverged %v vs %v", i, fa, fb)
		}
		now += fa + time.Microsecond
	}
}

// TestJitterSpread checks the deterministic jitter actually spreads
// latencies instead of collapsing onto the base.
func TestJitterSpread(t *testing.T) {
	s := New(Config{CapacityBytes: 1 << 30})
	seen := map[time.Duration]bool{}
	for i := 0; i < 64; i++ {
		lat, err := s.Fetch(time.Duration(i)*time.Second, 4096)
		if err != nil {
			t.Fatal(err)
		}
		seen[lat] = true
	}
	if len(seen) < 8 {
		t.Fatalf("jitter too narrow: %d distinct latencies in 64 fetches", len(seen))
	}
}

// TestPipeSerializesTransfersOnly: two large fetches at the same instant
// each pay the full base latency (round trips overlap) but their
// transfers queue on the pipe.
func TestPipeSerializesTransfersOnly(t *testing.T) {
	s := New(Config{CapacityBytes: 1 << 30, Jitter: -1}) // negative → no jitter
	const size = 100 << 20                               // 100 MiB at 200 MiB/s = 500 ms transfer
	l1, err1 := s.Fetch(0, size)
	l2, err2 := s.Fetch(0, size)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	transfer := time.Duration(int64(size) * int64(time.Second) / int64(DefaultBytesPerSec))
	if l1 != DefaultBaseLatency+transfer {
		t.Fatalf("first fetch %v, want base+transfer %v", l1, DefaultBaseLatency+transfer)
	}
	if l2 != DefaultBaseLatency+2*transfer {
		t.Fatalf("second fetch %v, want base+2·transfer %v (transfer queued, RTT overlapped)", l2, DefaultBaseLatency+2*transfer)
	}
}

func TestFaultFailureContract(t *testing.T) {
	inj := fault.New(fault.Plan{Rules: []fault.Rule{
		{Site: "remote.put", Kind: fault.KindIOError},
	}})
	s := New(Config{CapacityBytes: 1 << 30, Faults: inj})
	if _, err := s.Store(0, 4096); err == nil {
		t.Fatal("store under io-error fault should fail")
	}
	if got := s.UsedBytes(); got != 0 {
		t.Fatalf("failed store charged %d bytes", got)
	}

	inj2 := fault.New(fault.Plan{Rules: []fault.Rule{
		{Site: "remote.get", Kind: fault.KindStall, Delay: 5 * time.Millisecond},
	}})
	s2 := New(Config{CapacityBytes: 1 << 30, Faults: inj2})
	if _, err := s2.Store(0, 4096); err != nil {
		t.Fatal(err)
	}
	lat, err := s2.Fetch(0, 4096)
	if err == nil {
		t.Fatal("fetch under stall should fail")
	}
	if lat != 5*time.Millisecond {
		t.Fatalf("stalled fetch latency %v, want the 5ms timeout", lat)
	}
	if got := s2.UsedBytes(); got != 4096 {
		t.Fatalf("failed fetch must leave usage charged, got %d", got)
	}
}

func TestCostAccounting(t *testing.T) {
	reg := metrics.NewRegistry()
	s := New(Config{CapacityBytes: 1 << 30, Metrics: reg})
	const gib = int64(1) << 30
	if _, err := s.Store(0, gib); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fetch(0, gib); err != nil {
		t.Fatal(err)
	}
	cs := s.Cost()
	if cs.Requests != 2 || cs.Bytes != 2*gib {
		t.Fatalf("cost stats = %+v", cs)
	}
	want := 2*DefaultCostPerRequestNanos + 2*DefaultCostPerGiBNanos
	if cs.CostNanos != int64(want) {
		t.Fatalf("cost = %d nano$, want %d", cs.CostNanos, want)
	}
	if got := reg.Counter("remote.requests").Value(); got != 2 {
		t.Fatalf("requests counter = %d", got)
	}
	if got := reg.Counter("remote.bytes").Value(); got != 2*gib {
		t.Fatalf("bytes counter = %d", got)
	}
}
