// Package remote models an S3-like remote object store as a third cache
// tier behind the store.Backend interface (ROADMAP item 1): a wide-area
// service with a configurable per-request latency distribution, a
// throughput cap shared by all transfers, and per-request plus per-byte
// cost accounting surfaced through metrics.
//
// The device model differs from the host devices in internal/blockdev in
// one important way: a remote object store is not an FCFS disk. Requests
// overlap their round trips — only the transfer bytes serialize on the
// modeled network pipe — so N concurrent gets pay one base latency each,
// not N queued service times.
//
// Concurrency contract: self-locking, like the other store backends.
// Capacity and usage accounting is atomic; the pipe cursor and cost
// tallies are guarded by a leaf mutex taken for a few arithmetic ops.
//
// Determinism contract: given the same sequence of Store/Fetch calls at
// the same virtual times, two Store instances produce identical
// latencies. The per-request jitter is a pure function of an internal
// request counter (no rand, no wall clock), which is what lets the cache
// manager and the sequential oracle each drive their own instance and
// still agree on every charged latency.
//
// Failure contract: identical to package store. A failed Store charges no
// usage; a failed Fetch leaves usage charged until the caller Releases.
// Fault injection uses the sites "<name>.put" and "<name>.get".
package remote

import (
	"sync"
	"sync/atomic"
	"time"

	"doubledecker/internal/cgroup"
	"doubledecker/internal/fault"
	"doubledecker/internal/metrics"
)

func init() {
	// Every remote store consults sites "<name>.get" and "<name>.put".
	fault.RegisterSites("*.get", "*.put")
}

// Defaults for Config zero fields. The latency numbers model a same-region
// object store: a ~2 ms request floor with sub-millisecond spread, far
// above SSD (~90 µs) but well below the ~8.5 ms random read of the virtual
// disks guests fall back to on a miss — which is exactly why a remote slow
// hit is still a win.
const (
	DefaultBaseLatency = 2 * time.Millisecond
	DefaultJitter      = 500 * time.Microsecond
	DefaultBytesPerSec = 200 << 20 // 200 MiB/s provisioned pipe

	// DefaultCostPerRequestNanos is ~$4e-7 per request (S3 GET pricing
	// tier), in nano-dollars.
	DefaultCostPerRequestNanos = 400
	// DefaultCostPerGiBNanos is $0.09/GiB transfer, in nano-dollars.
	DefaultCostPerGiBNanos = 90_000_000
)

// Config sizes the modeled service. Zero fields take the defaults above;
// Name defaults to "remote" and prefixes the fault sites and metric names.
type Config struct {
	Name          string
	CapacityBytes int64
	// BaseLatency is the fixed per-request round-trip floor.
	BaseLatency time.Duration
	// Jitter is the width of the per-request latency spread: request i
	// pays BaseLatency plus a deterministic point in [0, Jitter).
	Jitter time.Duration
	// BytesPerSec caps throughput: transfer bytes serialize on one
	// modeled pipe while round trips overlap.
	BytesPerSec int64
	// CostPerRequestNanos and CostPerGiBNanos account the modeled bill
	// in nano-dollars per request and per GiB transferred.
	CostPerRequestNanos int64
	CostPerGiBNanos     int64
	// Faults, when non-nil, is consulted on every request under the
	// sites "<name>.get" and "<name>.put".
	Faults *fault.Injector
	// Metrics, when non-nil, receives the counters "<name>.requests",
	// "<name>.bytes" and "<name>.errors".
	Metrics *metrics.Registry
}

// CostStats is a snapshot of the accounted bill.
type CostStats struct {
	Requests  int64 // requests issued (including failed ones — the service bills them)
	Bytes     int64 // payload bytes moved (or attempted)
	CostNanos int64 // modeled bill in nano-dollars
}

// Store is the remote object backend. It implements store.Backend.
type Store struct {
	cfg      Config
	capacity atomic.Int64
	used     atomic.Int64

	requests atomic.Int64
	bytes    atomic.Int64
	fetchSeq atomic.Int64 // drives the deterministic jitter

	// mu is a leaf lock guarding only the pipe cursor.
	mu        sync.Mutex
	busyUntil time.Duration

	siteGet, sitePut string
	mRequests        *metrics.Counter
	mBytes           *metrics.Counter
	mErrors          *metrics.Counter
}

// New returns a remote store with cfg's zero fields defaulted.
func New(cfg Config) *Store {
	if cfg.Name == "" {
		cfg.Name = "remote"
	}
	if cfg.BaseLatency <= 0 {
		cfg.BaseLatency = DefaultBaseLatency
	}
	if cfg.Jitter < 0 {
		cfg.Jitter = 0
	} else if cfg.Jitter == 0 {
		cfg.Jitter = DefaultJitter
	}
	if cfg.BytesPerSec <= 0 {
		cfg.BytesPerSec = DefaultBytesPerSec
	}
	if cfg.CostPerRequestNanos <= 0 {
		cfg.CostPerRequestNanos = DefaultCostPerRequestNanos
	}
	if cfg.CostPerGiBNanos <= 0 {
		cfg.CostPerGiBNanos = DefaultCostPerGiBNanos
	}
	s := &Store{
		cfg:     cfg,
		siteGet: cfg.Name + ".get",
		sitePut: cfg.Name + ".put",
	}
	s.capacity.Store(cfg.CapacityBytes)
	if reg := cfg.Metrics; reg != nil {
		s.mRequests = reg.Counter(cfg.Name + ".requests")
		s.mBytes = reg.Counter(cfg.Name + ".bytes")
		s.mErrors = reg.Counter(cfg.Name + ".errors")
	}
	return s
}

// Type implements store.Backend.
func (s *Store) Type() cgroup.StoreType { return cgroup.StoreRemote }

// CapacityBytes implements store.Backend.
func (s *Store) CapacityBytes() int64 { return s.capacity.Load() }

// SetCapacityBytes implements store.Backend.
func (s *Store) SetCapacityBytes(n int64) { s.capacity.Store(n) }

// UsedBytes implements store.Backend.
func (s *Store) UsedBytes() int64 { return s.used.Load() }

// account tallies one billed request of size bytes.
func (s *Store) account(size int64) {
	s.requests.Add(1)
	s.bytes.Add(size)
	if s.mRequests != nil {
		s.mRequests.Inc()
		s.mBytes.Add(size)
	}
}

// jitter returns the deterministic latency spread for request seq: a
// Weyl-style multiplicative hash mapped onto [0, cfg.Jitter).
func (s *Store) jitter(seq int64) time.Duration {
	if s.cfg.Jitter <= 0 {
		return 0
	}
	h := uint64(seq) * 0x9e3779b97f4a7c15
	return time.Duration(int64(s.cfg.Jitter) * int64(h>>54) >> 10)
}

// transfer admits size bytes onto the pipe at now, returning the wait
// until the bytes clear it. Only transfers serialize; round trips overlap.
func (s *Store) transfer(now time.Duration, size int64) time.Duration {
	t := time.Duration(size * int64(time.Second) / s.cfg.BytesPerSec)
	s.mu.Lock()
	start := now
	if s.busyUntil > start {
		start = s.busyUntil
	}
	s.busyUntil = start + t
	wait := s.busyUntil - now
	s.mu.Unlock()
	return wait
}

// faultAdjust resolves an injector decision against the nominal service
// time, mirroring the blockdev semantics: latency stretches the request,
// a stall replaces it with the timeout the caller waits out, and the
// failing kinds (io-error, drop, corrupt) produce the structured error.
func (s *Store) faultAdjust(now time.Duration, site string, svc time.Duration) (time.Duration, error) {
	if s.cfg.Faults == nil {
		return svc, nil
	}
	d := s.cfg.Faults.Decide(now, site)
	switch d.Kind {
	case fault.KindLatency:
		return svc + d.Delay, nil
	case fault.KindStall:
		return d.Delay, &fault.Error{Site: site, Kind: d.Kind}
	default:
		if d.Fails() {
			return svc, &fault.Error{Site: site, Kind: d.Kind}
		}
		return svc, nil
	}
}

// Store implements store.Backend: an asynchronous upload. The caller pays
// only the submission cost; the transfer is absorbed by the pipe. A
// rejected upload charges no usage (and the submission cost is still
// paid), matching the package store failure contract.
func (s *Store) Store(now time.Duration, size int64) (time.Duration, error) {
	s.account(size)
	if _, err := s.faultAdjust(now, s.sitePut, 0); err != nil {
		if s.mErrors != nil {
			s.mErrors.Inc()
		}
		return time.Microsecond, err
	}
	s.transfer(now, size) // absorbed: the pipe is busy, the caller is not
	s.used.Add(size)
	return time.Microsecond, nil
}

// Fetch implements store.Backend: a synchronous download — the slow hit.
// The caller waits out the pipe, the round-trip floor and the jitter.
func (s *Store) Fetch(now time.Duration, size int64) (time.Duration, error) {
	s.account(size)
	svc := s.cfg.BaseLatency + s.jitter(s.fetchSeq.Add(1))
	svc, err := s.faultAdjust(now, s.siteGet, svc)
	if err != nil {
		if s.mErrors != nil {
			s.mErrors.Inc()
		}
		return svc, err
	}
	return svc + s.transfer(now, size), nil
}

// Release implements store.Backend. The clamp mirrors store.release: a
// remote eviction is a true drop, and usage never reads negative.
func (s *Store) Release(size int64) {
	for {
		cur := s.used.Load()
		next := cur - size
		if next < 0 {
			next = 0
		}
		if s.used.CompareAndSwap(cur, next) {
			return
		}
	}
}

// Cost reports the accounted bill so far.
func (s *Store) Cost() CostStats {
	req, b := s.requests.Load(), s.bytes.Load()
	const gib = int64(1) << 30
	return CostStats{
		Requests:  req,
		Bytes:     b,
		CostNanos: req*s.cfg.CostPerRequestNanos + b/gib*s.cfg.CostPerGiBNanos + (b%gib)*s.cfg.CostPerGiBNanos/gib,
	}
}
