package store

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"doubledecker/internal/blockdev"
	"doubledecker/internal/cgroup"
	"doubledecker/internal/fault"
)

// mustStore/mustFetch assert the fault-free paths stay error-free.
func mustStore(t *testing.T, b Backend, now time.Duration, size int64) time.Duration {
	t.Helper()
	lat, err := b.Store(now, size)
	if err != nil {
		t.Fatalf("store: %v", err)
	}
	return lat
}

func mustFetch(t *testing.T, b Backend, now time.Duration, size int64) time.Duration {
	t.Helper()
	lat, err := b.Fetch(now, size)
	if err != nil {
		t.Fatalf("fetch: %v", err)
	}
	return lat
}

func TestMemStoreAccounting(t *testing.T) {
	m := NewMem(blockdev.NewRAM("hostram"), 1<<20)
	if m.Type() != cgroup.StoreMem {
		t.Fatalf("Type = %v", m.Type())
	}
	lat := mustStore(t, m, 0, 4096)
	if lat <= 0 {
		t.Fatal("memcpy should cost time")
	}
	if m.UsedBytes() != 4096 {
		t.Fatalf("Used = %d", m.UsedBytes())
	}
	m.Release(4096)
	if m.UsedBytes() != 0 {
		t.Fatalf("Used after release = %d", m.UsedBytes())
	}
	m.Release(4096) // over-release clamps
	if m.UsedBytes() != 0 {
		t.Fatal("over-release went negative")
	}
}

func TestSSDStoreAsyncWriteSyncRead(t *testing.T) {
	dev := blockdev.NewSSD("ssd")
	s := NewSSD(dev, 240<<30)
	wlat := mustStore(t, s, 0, 4096)
	if wlat > 10*time.Microsecond {
		t.Fatalf("async store latency %v too high", wlat)
	}
	rlat := mustFetch(t, s, 0, 4096)
	if rlat < 60*time.Microsecond {
		t.Fatalf("sync fetch latency %v too low for SSD", rlat)
	}
	if s.UsedBytes() != 4096 {
		t.Fatalf("Used = %d", s.UsedBytes())
	}
}

func TestSSDFetchQueuesBehindWrites(t *testing.T) {
	dev := blockdev.NewSSD("ssd")
	s := NewSSD(dev, 1<<30)
	for i := 0; i < 100; i++ {
		mustStore(t, s, 0, 4096)
	}
	blocked := mustFetch(t, s, 0, 4096)
	idle := mustFetch(t, NewSSD(blockdev.NewSSD("x"), 1<<30), 0, 4096)
	if blocked <= idle {
		t.Fatalf("read should queue behind async writes: %v vs %v", blocked, idle)
	}
}

func TestSetCapacity(t *testing.T) {
	m := NewMem(blockdev.NewRAM("r"), 100)
	m.SetCapacityBytes(200)
	if m.CapacityBytes() != 200 {
		t.Fatalf("Capacity = %d", m.CapacityBytes())
	}
	s := NewSSD(blockdev.NewSSD("s"), 100)
	s.SetCapacityBytes(300)
	if s.CapacityBytes() != 300 {
		t.Fatalf("Capacity = %d", s.CapacityBytes())
	}
}

func TestDescribe(t *testing.T) {
	m := NewMem(blockdev.NewRAM("r"), 100)
	mustStore(t, m, 0, 10)
	if got := Describe(m); !strings.Contains(got, "mem store: 10/100") {
		t.Fatalf("Describe = %q", got)
	}
}

// TestFailedStoreChargesNoUsage: a store rejected by the device must leave
// usage untouched — the caller will not Release an object that was never
// admitted.
func TestFailedStoreChargesNoUsage(t *testing.T) {
	in := fault.New(fault.Plan{Rules: []fault.Rule{{Site: "ssd.write", Kind: fault.KindIOError}}})
	s := NewSSD(blockdev.NewSSD("ssd", blockdev.WithFaults(in)), 1<<30)
	if _, err := s.Store(0, 4096); err == nil {
		t.Fatal("store under write faults did not fail")
	}
	if s.UsedBytes() != 0 {
		t.Fatalf("failed store charged usage: %d", s.UsedBytes())
	}

	inMem := fault.New(fault.Plan{Rules: []fault.Rule{{Site: "ram.write", Kind: fault.KindIOError}}})
	m := NewMem(blockdev.NewRAM("ram", blockdev.WithFaults(inMem)), 1<<30)
	if _, err := m.Store(0, 4096); err == nil {
		t.Fatal("mem store under write faults did not fail")
	}
	if m.UsedBytes() != 0 {
		t.Fatalf("failed mem store charged usage: %d", m.UsedBytes())
	}
}

// TestFailedFetchKeepsUsage: a fetch error leaves the accounting to the
// caller — usage stays charged until an explicit Release.
func TestFailedFetchKeepsUsage(t *testing.T) {
	in := fault.New(fault.Plan{Rules: []fault.Rule{{Site: "ssd.read", Kind: fault.KindIOError}}})
	s := NewSSD(blockdev.NewSSD("ssd", blockdev.WithFaults(in)), 1<<30)
	mustStore(t, s, 0, 4096)
	if _, err := s.Fetch(0, 4096); err == nil {
		t.Fatal("fetch under read faults did not fail")
	}
	if s.UsedBytes() != 4096 {
		t.Fatalf("failed fetch changed usage: %d", s.UsedBytes())
	}
	s.Release(4096)
	if s.UsedBytes() != 0 {
		t.Fatalf("release after failed fetch: %d", s.UsedBytes())
	}
}

// TestReleaseClampRace is the regression for the old Add-then-CompareAndSwap
// clamp: concurrent over-releases racing against stores could either leave
// the counter negative (the failed-CAS path) or erase a concurrent store's
// charge. With the CAS-loop clamp the counter must never read negative at
// any point, and a balanced workload must end at exactly zero.
func TestReleaseClampRace(t *testing.T) {
	var used atomic.Int64
	const (
		workers = 8
		rounds  = 5000
	)
	var wg sync.WaitGroup
	var sawNegative atomic.Bool
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				used.Add(64)
				release(&used, 64)
				release(&used, 64) // over-release: exercises the clamp
				if used.Load() < 0 {
					sawNegative.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	if sawNegative.Load() {
		t.Fatal("usage read negative during concurrent release")
	}
	if got := used.Load(); got != 0 {
		t.Fatalf("final usage = %d, want 0", got)
	}
}

// TestReleaseClampSequential pins the exact interleaving the old code got
// wrong: an over-release whose fixup CAS fails (because another goroutine
// moved the counter) used to leave the negative value in place.
func TestReleaseClampSequential(t *testing.T) {
	var used atomic.Int64
	release(&used, 100) // over-release on an empty counter
	if got := used.Load(); got != 0 {
		t.Fatalf("usage after over-release = %d, want 0", got)
	}
	used.Store(50)
	release(&used, 100) // partial over-release
	if got := used.Load(); got != 0 {
		t.Fatalf("usage after partial over-release = %d, want 0", got)
	}
}
