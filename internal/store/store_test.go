package store

import (
	"strings"
	"testing"
	"time"

	"doubledecker/internal/blockdev"
	"doubledecker/internal/cgroup"
)

func TestMemStoreAccounting(t *testing.T) {
	m := NewMem(blockdev.NewRAM("hostram"), 1<<20)
	if m.Type() != cgroup.StoreMem {
		t.Fatalf("Type = %v", m.Type())
	}
	lat := m.Store(0, 4096)
	if lat <= 0 {
		t.Fatal("memcpy should cost time")
	}
	if m.UsedBytes() != 4096 {
		t.Fatalf("Used = %d", m.UsedBytes())
	}
	m.Release(4096)
	if m.UsedBytes() != 0 {
		t.Fatalf("Used after release = %d", m.UsedBytes())
	}
	m.Release(4096) // over-release clamps
	if m.UsedBytes() != 0 {
		t.Fatal("over-release went negative")
	}
}

func TestSSDStoreAsyncWriteSyncRead(t *testing.T) {
	dev := blockdev.NewSSD("ssd")
	s := NewSSD(dev, 240<<30)
	wlat := s.Store(0, 4096)
	if wlat > 10*time.Microsecond {
		t.Fatalf("async store latency %v too high", wlat)
	}
	rlat := s.Fetch(0, 4096)
	if rlat < 60*time.Microsecond {
		t.Fatalf("sync fetch latency %v too low for SSD", rlat)
	}
	if s.UsedBytes() != 4096 {
		t.Fatalf("Used = %d", s.UsedBytes())
	}
}

func TestSSDFetchQueuesBehindWrites(t *testing.T) {
	dev := blockdev.NewSSD("ssd")
	s := NewSSD(dev, 1<<30)
	for i := 0; i < 100; i++ {
		s.Store(0, 4096)
	}
	blocked := s.Fetch(0, 4096)
	idle := NewSSD(blockdev.NewSSD("x"), 1<<30).Fetch(0, 4096)
	if blocked <= idle {
		t.Fatalf("read should queue behind async writes: %v vs %v", blocked, idle)
	}
}

func TestSetCapacity(t *testing.T) {
	m := NewMem(blockdev.NewRAM("r"), 100)
	m.SetCapacityBytes(200)
	if m.CapacityBytes() != 200 {
		t.Fatalf("Capacity = %d", m.CapacityBytes())
	}
	s := NewSSD(blockdev.NewSSD("s"), 100)
	s.SetCapacityBytes(300)
	if s.CapacityBytes() != 300 {
		t.Fatalf("Capacity = %d", s.CapacityBytes())
	}
}

func TestDescribe(t *testing.T) {
	m := NewMem(blockdev.NewRAM("r"), 100)
	m.Store(0, 10)
	if got := Describe(m); !strings.Contains(got, "mem store: 10/100") {
		t.Fatalf("Describe = %q", got)
	}
}
