// Package store implements the DoubleDecker storage module: backend-
// independent services to allocate, read and free cache objects, with a
// memory backend (page allocation + memcpy) and an SSD backend (raw block
// I/O: synchronous reads for gets, asynchronous writes for puts) as in the
// paper's implementation.
//
// Concurrency contract: Backend implementations are self-locking — safe
// for concurrent use by any number of goroutines without external
// synchronization. Capacity and usage accounting is atomic, so the cache
// manager's stat paths read them without blocking its data path. Note
// that Store/Release are independent operations: the manager's fast path
// checks capacity before storing, so concurrent putters may transiently
// overshoot a full store (the manager documents and bounds this).
//
// Failure contract: Store and Fetch propagate the underlying device's
// error. A failed Store charges no usage — the object was never admitted —
// so the caller must not Release it. A failed Fetch leaves the object's
// usage charged; the caller decides whether to invalidate (and then
// Release as usual).
package store

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"doubledecker/internal/blockdev"
	"doubledecker/internal/cgroup"
)

// Backend stores opaque cache objects and accounts capacity.
// Implementations must be safe for concurrent use.
type Backend interface {
	Type() cgroup.StoreType
	CapacityBytes() int64
	// SetCapacityBytes reconfigures the store size at runtime (the
	// paper's dynamic cache-capacity changes). Shrinking below current
	// usage is allowed; the cache manager evicts down to the new limit.
	SetCapacityBytes(n int64)
	UsedBytes() int64
	// Store allocates and copies an object in, returning the latency the
	// storing path observes. On error the object was not stored and no
	// usage was charged.
	Store(now time.Duration, size int64) (time.Duration, error)
	// Fetch reads an object out (a get), returning the read latency. On
	// error the stored bytes are unreadable; usage stays charged until
	// the caller Releases the object.
	Fetch(now time.Duration, size int64) (time.Duration, error)
	// Release frees an object's space (eviction or flush); free of charge.
	Release(size int64)
}

// release decrements an atomic usage counter, clamping at zero: usage
// never reads negative. The clamp is a CAS loop — a plain Add-then-fixup
// could race with a concurrent Store and erase its charge (or lose the
// clamp entirely when the CAS failed), which is exactly the bug the
// TestReleaseClampRace regression pins.
func release(used *atomic.Int64, size int64) {
	for {
		cur := used.Load()
		next := cur - size
		if next < 0 {
			next = 0
		}
		if used.CompareAndSwap(cur, next) {
			return
		}
	}
}

// Mem is the in-memory cache store: page_alloc + memcpy semantics.
type Mem struct {
	ram      *blockdev.RAM
	capacity atomic.Int64
	used     atomic.Int64
}

// NewMem returns a memory store of the given capacity backed by ram.
func NewMem(ram *blockdev.RAM, capacity int64) *Mem {
	m := &Mem{ram: ram}
	m.capacity.Store(capacity)
	return m
}

// Type implements Backend.
func (m *Mem) Type() cgroup.StoreType { return cgroup.StoreMem }

// CapacityBytes implements Backend.
func (m *Mem) CapacityBytes() int64 { return m.capacity.Load() }

// SetCapacityBytes implements Backend.
func (m *Mem) SetCapacityBytes(n int64) { m.capacity.Store(n) }

// UsedBytes implements Backend.
func (m *Mem) UsedBytes() int64 { return m.used.Load() }

// Store implements Backend: a synchronous page copy into host memory.
// Usage is charged only when the copy succeeds.
func (m *Mem) Store(now time.Duration, size int64) (time.Duration, error) {
	lat, err := m.ram.Write(now, 0, size)
	if err == nil {
		m.used.Add(size)
	}
	return lat, err
}

// Fetch implements Backend: a synchronous page copy out; the object is
// removed by the subsequent Release from the cache manager (exclusive
// caching).
func (m *Mem) Fetch(now time.Duration, size int64) (time.Duration, error) {
	return m.ram.Read(now, 0, size)
}

// Release implements Backend.
func (m *Mem) Release(size int64) { release(&m.used, size) }

// SSD is the solid-state cache store: synchronous reads, asynchronous
// writes on the raw block device, per the paper's implementation.
type SSD struct {
	dev      *blockdev.SSD
	capacity atomic.Int64
	used     atomic.Int64

	mu     sync.Mutex
	cursor int64 // log-structured write cursor (latency-neutral)
}

// NewSSD returns an SSD store of the given capacity backed by dev.
func NewSSD(dev *blockdev.SSD, capacity int64) *SSD {
	s := &SSD{dev: dev}
	s.capacity.Store(capacity)
	return s
}

// Type implements Backend.
func (s *SSD) Type() cgroup.StoreType { return cgroup.StoreSSD }

// CapacityBytes implements Backend.
func (s *SSD) CapacityBytes() int64 { return s.capacity.Load() }

// SetCapacityBytes implements Backend.
func (s *SSD) SetCapacityBytes(n int64) { s.capacity.Store(n) }

// UsedBytes implements Backend.
func (s *SSD) UsedBytes() int64 { return s.used.Load() }

// Store implements Backend: the write is issued asynchronously, so the
// caller pays only the submission cost while the device absorbs the work.
// A write rejected at submission charges no usage and stores nothing.
func (s *SSD) Store(now time.Duration, size int64) (time.Duration, error) {
	s.mu.Lock()
	offset := s.cursor
	s.cursor += size
	if c := s.capacity.Load(); c > 0 {
		s.cursor %= c
	}
	s.mu.Unlock()
	if err := s.dev.WriteAsync(now, offset, size); err != nil {
		return time.Microsecond, err // submission cost was still paid
	}
	s.used.Add(size)
	return time.Microsecond, nil // submission overhead
}

// Fetch implements Backend: a synchronous block read.
func (s *SSD) Fetch(now time.Duration, size int64) (time.Duration, error) {
	return s.dev.Read(now, 0, size)
}

// Release implements Backend.
func (s *SSD) Release(size int64) { release(&s.used, size) }

// Compile-time interface checks.
var (
	_ Backend = (*Mem)(nil)
	_ Backend = (*SSD)(nil)
)

// Describe renders a backend's occupancy for logs.
func Describe(b Backend) string {
	return fmt.Sprintf("%s store: %d/%d bytes", b.Type(), b.UsedBytes(), b.CapacityBytes())
}
