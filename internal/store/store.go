// Package store implements the DoubleDecker storage module: backend-
// independent services to allocate, read and free cache objects, with a
// memory backend (page allocation + memcpy) and an SSD backend (raw block
// I/O: synchronous reads for gets, asynchronous writes for puts) as in the
// paper's implementation.
package store

import (
	"fmt"

	"time"

	"doubledecker/internal/blockdev"
	"doubledecker/internal/cgroup"
)

// Backend stores opaque cache objects and accounts capacity.
type Backend interface {
	Type() cgroup.StoreType
	CapacityBytes() int64
	// SetCapacityBytes reconfigures the store size at runtime (the
	// paper's dynamic cache-capacity changes). Shrinking below current
	// usage is allowed; the cache manager evicts down to the new limit.
	SetCapacityBytes(n int64)
	UsedBytes() int64
	// Store allocates and copies an object in, returning the latency the
	// storing path observes.
	Store(now time.Duration, size int64) time.Duration
	// Fetch reads an object out (a get), returning the read latency.
	Fetch(now time.Duration, size int64) time.Duration
	// Release frees an object's space (eviction or flush); free of charge.
	Release(size int64)
}

// Mem is the in-memory cache store: page_alloc + memcpy semantics.
type Mem struct {
	ram      *blockdev.RAM
	capacity int64
	used     int64
}

// NewMem returns a memory store of the given capacity backed by ram.
func NewMem(ram *blockdev.RAM, capacity int64) *Mem {
	return &Mem{ram: ram, capacity: capacity}
}

// Type implements Backend.
func (m *Mem) Type() cgroup.StoreType { return cgroup.StoreMem }

// CapacityBytes implements Backend.
func (m *Mem) CapacityBytes() int64 { return m.capacity }

// SetCapacityBytes implements Backend.
func (m *Mem) SetCapacityBytes(n int64) { m.capacity = n }

// UsedBytes implements Backend.
func (m *Mem) UsedBytes() int64 { return m.used }

// Store implements Backend: a synchronous page copy into host memory.
func (m *Mem) Store(now time.Duration, size int64) time.Duration {
	m.used += size
	return m.ram.Write(now, 0, size)
}

// Fetch implements Backend: a synchronous page copy out; the object is
// removed by the subsequent Release from the cache manager (exclusive
// caching).
func (m *Mem) Fetch(now time.Duration, size int64) time.Duration {
	return m.ram.Read(now, 0, size)
}

// Release implements Backend.
func (m *Mem) Release(size int64) {
	m.used -= size
	if m.used < 0 {
		m.used = 0
	}
}

// SSD is the solid-state cache store: synchronous reads, asynchronous
// writes on the raw block device, per the paper's implementation.
type SSD struct {
	dev      *blockdev.SSD
	capacity int64
	used     int64
	cursor   int64 // log-structured write cursor (latency-neutral)
}

// NewSSD returns an SSD store of the given capacity backed by dev.
func NewSSD(dev *blockdev.SSD, capacity int64) *SSD {
	return &SSD{dev: dev, capacity: capacity}
}

// Type implements Backend.
func (s *SSD) Type() cgroup.StoreType { return cgroup.StoreSSD }

// CapacityBytes implements Backend.
func (s *SSD) CapacityBytes() int64 { return s.capacity }

// SetCapacityBytes implements Backend.
func (s *SSD) SetCapacityBytes(n int64) { s.capacity = n }

// UsedBytes implements Backend.
func (s *SSD) UsedBytes() int64 { return s.used }

// Store implements Backend: the write is issued asynchronously, so the
// caller pays only the submission cost while the device absorbs the work.
func (s *SSD) Store(now time.Duration, size int64) time.Duration {
	s.used += size
	s.dev.WriteAsync(now, s.cursor, size)
	s.cursor += size
	if s.capacity > 0 {
		s.cursor %= s.capacity
	}
	return time.Microsecond // submission overhead
}

// Fetch implements Backend: a synchronous block read.
func (s *SSD) Fetch(now time.Duration, size int64) time.Duration {
	return s.dev.Read(now, 0, size)
}

// Release implements Backend.
func (s *SSD) Release(size int64) {
	s.used -= size
	if s.used < 0 {
		s.used = 0
	}
}

// Compile-time interface checks.
var (
	_ Backend = (*Mem)(nil)
	_ Backend = (*SSD)(nil)
)

// Describe renders a backend's occupancy for logs.
func Describe(b Backend) string {
	return fmt.Sprintf("%s store: %d/%d bytes", b.Type(), b.UsedBytes(), b.CapacityBytes())
}
