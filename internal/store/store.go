// Package store implements the DoubleDecker storage module: backend-
// independent services to allocate, read and free cache objects, with a
// memory backend (page allocation + memcpy) and an SSD backend (raw block
// I/O: synchronous reads for gets, asynchronous writes for puts) as in the
// paper's implementation.
//
// Concurrency contract: Backend implementations are self-locking — safe
// for concurrent use by any number of goroutines without external
// synchronization. Capacity and usage accounting is atomic, so the cache
// manager's stat paths read them without blocking its data path. Note
// that Store/Release are independent operations: the manager's fast path
// checks capacity before storing, so concurrent putters may transiently
// overshoot a full store (the manager documents and bounds this).
package store

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"doubledecker/internal/blockdev"
	"doubledecker/internal/cgroup"
)

// Backend stores opaque cache objects and accounts capacity.
// Implementations must be safe for concurrent use.
type Backend interface {
	Type() cgroup.StoreType
	CapacityBytes() int64
	// SetCapacityBytes reconfigures the store size at runtime (the
	// paper's dynamic cache-capacity changes). Shrinking below current
	// usage is allowed; the cache manager evicts down to the new limit.
	SetCapacityBytes(n int64)
	UsedBytes() int64
	// Store allocates and copies an object in, returning the latency the
	// storing path observes.
	Store(now time.Duration, size int64) time.Duration
	// Fetch reads an object out (a get), returning the read latency.
	Fetch(now time.Duration, size int64) time.Duration
	// Release frees an object's space (eviction or flush); free of charge.
	Release(size int64)
}

// release decrements an atomic usage counter with the defensive clamp the
// accounting has always had: usage never reads negative.
func release(used *atomic.Int64, size int64) {
	if n := used.Add(-size); n < 0 {
		used.CompareAndSwap(n, 0)
	}
}

// Mem is the in-memory cache store: page_alloc + memcpy semantics.
type Mem struct {
	ram      *blockdev.RAM
	capacity atomic.Int64
	used     atomic.Int64
}

// NewMem returns a memory store of the given capacity backed by ram.
func NewMem(ram *blockdev.RAM, capacity int64) *Mem {
	m := &Mem{ram: ram}
	m.capacity.Store(capacity)
	return m
}

// Type implements Backend.
func (m *Mem) Type() cgroup.StoreType { return cgroup.StoreMem }

// CapacityBytes implements Backend.
func (m *Mem) CapacityBytes() int64 { return m.capacity.Load() }

// SetCapacityBytes implements Backend.
func (m *Mem) SetCapacityBytes(n int64) { m.capacity.Store(n) }

// UsedBytes implements Backend.
func (m *Mem) UsedBytes() int64 { return m.used.Load() }

// Store implements Backend: a synchronous page copy into host memory.
func (m *Mem) Store(now time.Duration, size int64) time.Duration {
	m.used.Add(size)
	return m.ram.Write(now, 0, size)
}

// Fetch implements Backend: a synchronous page copy out; the object is
// removed by the subsequent Release from the cache manager (exclusive
// caching).
func (m *Mem) Fetch(now time.Duration, size int64) time.Duration {
	return m.ram.Read(now, 0, size)
}

// Release implements Backend.
func (m *Mem) Release(size int64) { release(&m.used, size) }

// SSD is the solid-state cache store: synchronous reads, asynchronous
// writes on the raw block device, per the paper's implementation.
type SSD struct {
	dev      *blockdev.SSD
	capacity atomic.Int64
	used     atomic.Int64

	mu     sync.Mutex
	cursor int64 // log-structured write cursor (latency-neutral)
}

// NewSSD returns an SSD store of the given capacity backed by dev.
func NewSSD(dev *blockdev.SSD, capacity int64) *SSD {
	s := &SSD{dev: dev}
	s.capacity.Store(capacity)
	return s
}

// Type implements Backend.
func (s *SSD) Type() cgroup.StoreType { return cgroup.StoreSSD }

// CapacityBytes implements Backend.
func (s *SSD) CapacityBytes() int64 { return s.capacity.Load() }

// SetCapacityBytes implements Backend.
func (s *SSD) SetCapacityBytes(n int64) { s.capacity.Store(n) }

// UsedBytes implements Backend.
func (s *SSD) UsedBytes() int64 { return s.used.Load() }

// Store implements Backend: the write is issued asynchronously, so the
// caller pays only the submission cost while the device absorbs the work.
func (s *SSD) Store(now time.Duration, size int64) time.Duration {
	s.used.Add(size)
	s.mu.Lock()
	offset := s.cursor
	s.cursor += size
	if c := s.capacity.Load(); c > 0 {
		s.cursor %= c
	}
	s.mu.Unlock()
	s.dev.WriteAsync(now, offset, size)
	return time.Microsecond // submission overhead
}

// Fetch implements Backend: a synchronous block read.
func (s *SSD) Fetch(now time.Duration, size int64) time.Duration {
	return s.dev.Read(now, 0, size)
}

// Release implements Backend.
func (s *SSD) Release(size int64) { release(&s.used, size) }

// Compile-time interface checks.
var (
	_ Backend = (*Mem)(nil)
	_ Backend = (*SSD)(nil)
)

// Describe renders a backend's occupancy for logs.
func Describe(b Backend) string {
	return fmt.Sprintf("%s store: %d/%d bytes", b.Type(), b.UsedBytes(), b.CapacityBytes())
}
