// Package hypervisor models the host: the physical devices backing the
// DoubleDecker cache stores, the cache manager itself, the VM registry and
// the host-administrator policy controller (per-VM weights, store
// capacities) — the hypervisor half of the cooperative design.
package hypervisor

import (
	"time"

	"doubledecker/internal/blockdev"
	"doubledecker/internal/cleancache"
	"doubledecker/internal/ddcache"
	"doubledecker/internal/fault"
	"doubledecker/internal/guest"
	"doubledecker/internal/hypercall"
	"doubledecker/internal/metrics"
	"doubledecker/internal/policy"
	"doubledecker/internal/sim"
	"doubledecker/internal/store"
	"doubledecker/internal/store/remote"
)

// Config parameterizes a host.
type Config struct {
	// Mode selects DoubleDecker vs the nesting-agnostic Global baseline.
	Mode ddcache.Mode
	// MemCacheBytes is the memory store capacity (0 disables it).
	MemCacheBytes int64
	// SSDCacheBytes is the SSD store capacity (0 disables it).
	SSDCacheBytes int64
	// RemoteCacheBytes is the third-tier remote object-store capacity (0
	// disables the tier). With the tier enabled in ModeDD, SSD (and
	// hybrid) evictions demote into it through the manager's write-behind
	// queue, and gets that miss SSD but hit the remote tier return as
	// slow hits charged the modeled round trip.
	RemoteCacheBytes int64
	// Remote overrides the modeled remote store's latency, throughput and
	// cost parameters (zero fields keep the store/remote defaults). The
	// CapacityBytes, Faults and Metrics fields are overwritten from the
	// host configuration.
	Remote remote.Config
	// Demotion tunes the manager's write-behind demotion queue.
	Demotion ddcache.DemotionConfig
	// EvictBatchBytes overrides the paper's 2 MiB eviction batch.
	EvictBatchBytes int64
	// HypervisorCaching can be set false to disable the second-chance
	// path entirely (pure guest-only caching).
	DisableCaching bool
	// VMDiskFactory builds each VM's virtual disk; nil selects the
	// default 7200 RPM HDD per VM.
	VMDiskFactory func(id cleancache.VMID) blockdev.Device
	// VictimSelector overrides the eviction victim-selection algorithm
	// (nil = the paper's Algorithm 1); used by ablation benchmarks.
	VictimSelector func(ents []policy.Entity, evictionSize int64) int
	// Transport parameterizes each VM's hypercall transport (batch
	// bounds, costs, unbatched baseline). The zero value selects the
	// batched defaults.
	Transport hypercall.Options
	// Metrics, when set, receives the transports' per-op-code latency
	// histograms and batch telemetry, plus the SSD breaker's events.
	Metrics *metrics.Registry
	// GuestFlushInterval overrides the guests' transport flush tick.
	GuestFlushInterval time.Duration
	// ReadAheadWindow sets every guest's pipelined-read window (see
	// guest.Config.ReadAheadWindow). Zero selects the stock default
	// (guest.DefaultReadAheadWindow) unless NoPipeline is set; a negative
	// value disables readahead explicitly.
	ReadAheadWindow int
	// NoPipeline disables the stock pipelined-read defaults — async
	// tagged gets, zero-copy bulk responses and the default readahead
	// window — reverting to the synchronous probe-per-block read path.
	// Explicitly-set Transport options and ReadAheadWindow still apply,
	// so the knob isolates exactly what the stock defaults add. The A/B
	// baseline for the end-to-end readpath experiment.
	NoPipeline bool
	// Faults attaches a fault-injection plan to the host: the SSD cache
	// device consults it at sites "host-ssd.read"/"host-ssd.write" and
	// every VM's transport at "transport.batch"/"transport.call". Nil
	// disables injection.
	Faults *fault.Injector
	// Breaker tunes the cache manager's SSD circuit breaker; the zero
	// value keeps the defaults.
	Breaker ddcache.BreakerConfig
	// RemoteBreaker tunes the remote tier's circuit breaker (exists
	// whenever RemoteCacheBytes is set); the zero value keeps the
	// defaults.
	RemoteBreaker ddcache.BreakerConfig
	// OpBudget is the per-operation latency budget every VM's transport
	// enforces on the data path (see hypercall.Options.OpBudget); zero
	// disables deadlines. Overrides Transport.OpBudget when set.
	OpBudget time.Duration
	// WatchdogPeriod is each guest's deadline-watchdog tick period; zero
	// with OpBudget set defaults to OpBudget (a waiter is failed at most
	// one budget late).
	WatchdogPeriod time.Duration
	// MaxInflightGets and MaxQueuedOps are the per-VM transport admission
	// caps (see hypercall.Options); zero means unlimited.
	MaxInflightGets int
	MaxQueuedOps    int
	// MaxInflightOps is the hypervisor-wide admission budget on the cache
	// manager (see ddcache.Config.MaxInflightOps); zero disables it.
	MaxInflightOps int64
}

// Host is a physical machine running the DoubleDecker-enabled hypervisor.
type Host struct {
	engine     *sim.Engine
	manager    *ddcache.Manager
	ram        *blockdev.RAM
	ssd        *blockdev.SSD
	remote     *remote.Store
	caching    bool
	diskFor    func(id cleancache.VMID) blockdev.Device
	vms        []*guest.VM
	topts      hypercall.Options
	tick       time.Duration
	rawin      int
	wdog       time.Duration
	transports map[cleancache.VMID]*hypercall.Transport
}

// New builds a host with the given cache configuration.
func New(engine *sim.Engine, cfg Config) *Host {
	topts := cfg.Transport
	if topts.Metrics == nil {
		topts.Metrics = cfg.Metrics
	}
	if topts.Faults == nil {
		topts.Faults = cfg.Faults
	}
	// Stock hosts run the pipelined read path end to end: async tagged
	// gets and zero-copy bulk responses on every VM's transport, plus the
	// default readahead/async-probe window in every guest. NoPipeline (or
	// the explicitly-unbatched baseline) opts out wholesale; a negative
	// ReadAheadWindow opts out of readahead alone.
	if !cfg.NoPipeline && !topts.Unbatched && !cfg.DisableCaching {
		topts.AsyncGets = true
		topts.ZeroCopy = true
		if cfg.ReadAheadWindow == 0 {
			cfg.ReadAheadWindow = guest.DefaultReadAheadWindow
		}
	}
	if cfg.ReadAheadWindow < 0 {
		cfg.ReadAheadWindow = 0
	}
	// Deadline and admission plumbing: the host-level knobs override the
	// raw transport options, and a budget without a watchdog period gets
	// one — a waiter is then failed at most one budget past its deadline.
	if cfg.OpBudget > 0 {
		topts.OpBudget = cfg.OpBudget
	}
	if cfg.MaxInflightGets > 0 {
		topts.MaxInflightGets = cfg.MaxInflightGets
	}
	if cfg.MaxQueuedOps > 0 {
		topts.MaxQueuedOps = cfg.MaxQueuedOps
	}
	if cfg.WatchdogPeriod == 0 && topts.OpBudget > 0 {
		cfg.WatchdogPeriod = topts.OpBudget
	}
	h := &Host{
		engine:     engine,
		ram:        blockdev.NewRAM("host-ram"),
		ssd:        blockdev.NewSSD("host-ssd", blockdev.WithFaults(cfg.Faults)),
		caching:    !cfg.DisableCaching,
		diskFor:    cfg.VMDiskFactory,
		topts:      topts,
		tick:       cfg.GuestFlushInterval,
		rawin:      cfg.ReadAheadWindow,
		wdog:       cfg.WatchdogPeriod,
		transports: make(map[cleancache.VMID]*hypercall.Transport),
	}
	mcfg := ddcache.Config{
		Mode:            cfg.Mode,
		EvictBatchBytes: cfg.EvictBatchBytes,
		VictimSelector:  cfg.VictimSelector,
		Metrics:         cfg.Metrics,
		Breaker:         cfg.Breaker,
		RemoteBreaker:   cfg.RemoteBreaker,
		Demotion:        cfg.Demotion,
		MaxInflightOps:  cfg.MaxInflightOps,
	}
	if cfg.MemCacheBytes > 0 {
		mcfg.Mem = store.NewMem(h.ram, cfg.MemCacheBytes)
	}
	if cfg.SSDCacheBytes > 0 {
		mcfg.SSD = store.NewSSD(h.ssd, cfg.SSDCacheBytes)
	}
	if cfg.RemoteCacheBytes > 0 {
		rcfg := cfg.Remote
		rcfg.CapacityBytes = cfg.RemoteCacheBytes
		rcfg.Faults = cfg.Faults
		rcfg.Metrics = cfg.Metrics
		h.remote = remote.New(rcfg)
		mcfg.Remote = h.remote
	}
	h.manager = ddcache.NewManager(mcfg)
	return h
}

// Remote exposes the modeled remote object store (nil when the tier is
// disabled) — experiments read its cost accounting from here.
func (h *Host) Remote() *remote.Store { return h.remote }

// Engine returns the simulation engine.
func (h *Host) Engine() *sim.Engine { return h.engine }

// Manager exposes the DoubleDecker cache manager.
func (h *Host) Manager() *ddcache.Manager { return h.manager }

// NewVM boots a VM with the given memory size and hypervisor cache
// weight, wiring its cleancache front over a fresh batched hypercall
// transport.
func (h *Host) NewVM(id cleancache.VMID, memBytes int64, weight int64) *guest.VM {
	h.manager.RegisterVM(id, weight)
	var front *cleancache.Front
	if h.caching {
		tr := hypercall.NewTransport(h.manager, h.topts)
		h.transports[id] = tr
		front = cleancache.NewFront(id, tr)
	}
	gcfg := guest.Config{ID: id, MemBytes: memBytes, HypercallFlushInterval: h.tick, ReadAheadWindow: h.rawin}
	if h.topts.OpBudget > 0 {
		gcfg.WatchdogPeriod = h.wdog
	}
	if h.diskFor != nil {
		gcfg.Disk = h.diskFor(id)
	}
	vm := guest.New(h.engine, gcfg, front)
	h.vms = append(h.vms, vm)
	return vm
}

// DestroyVM tears a VM down: its containers, pools and registration.
func (h *Host) DestroyVM(vm *guest.VM) {
	for _, c := range vm.Containers() {
		vm.DestroyContainer(c)
	}
	vm.Shutdown()
	h.manager.UnregisterVM(vm.ID())
	for i, other := range h.vms {
		if other == vm {
			h.vms = append(h.vms[:i], h.vms[i+1:]...)
			break
		}
	}
}

// Transport exposes a VM's hypercall transport (nil when caching is
// disabled or the VM is unknown).
func (h *Host) Transport(id cleancache.VMID) *hypercall.Transport {
	return h.transports[id]
}

// TransportStats aggregates hypercall traffic across every VM booted on
// this host, including VMs destroyed since.
func (h *Host) TransportStats() hypercall.TransportStats {
	var agg hypercall.TransportStats
	for _, tr := range h.transports {
		s := tr.Stats()
		agg.Calls += s.Calls
		agg.PagesCopied += s.PagesCopied
		agg.PagesMapped += s.PagesMapped
		agg.Batches += s.Batches
		agg.BatchedOps += s.BatchedOps
		agg.SyncOps += s.SyncOps
		agg.AsyncGets += s.AsyncGets
		agg.StagedHits += s.StagedHits
		agg.StagedFills += s.StagedFills
		agg.StagedEvictions += s.StagedEvictions
		agg.StagedPages += s.StagedPages
		agg.Pending += s.Pending
		agg.Retries += s.Retries
		agg.Backoff += s.Backoff
		agg.Drops += s.Drops
		agg.Corrupts += s.Corrupts
		agg.DroppedBatches += s.DroppedBatches
		agg.RequeuedOps += s.RequeuedOps
		agg.FlushAbandoned += s.FlushAbandoned
		agg.SyncFailures += s.SyncFailures
		agg.DeadlineMisses += s.DeadlineMisses
		agg.WatchdogFails += s.WatchdogFails
		agg.ShedGets += s.ShedGets
		agg.ShedOps += s.ShedOps
		agg.CompletionDrops += s.CompletionDrops
		agg.Waiters += s.Waiters
		if s.MaxGetLatency > agg.MaxGetLatency {
			agg.MaxGetLatency = s.MaxGetLatency
		}
	}
	return agg
}

// VMs returns the live VMs in boot order.
func (h *Host) VMs() []*guest.VM {
	out := make([]*guest.VM, len(h.vms))
	copy(out, h.vms)
	return out
}

// SetVMWeight is the host-administrator policy knob for VM shares.
func (h *Host) SetVMWeight(id cleancache.VMID, weight int64) {
	h.manager.SetVMWeight(id, weight)
}

// SetMemCacheBytes resizes the memory store at runtime.
func (h *Host) SetMemCacheBytes(n int64) {
	h.manager.SetMemCapacity(h.engine.Now(), n)
}

// SetSSDCacheBytes resizes the SSD store at runtime.
func (h *Host) SetSSDCacheBytes(n int64) {
	h.manager.SetSSDCapacity(h.engine.Now(), n)
}

// SetRemoteCacheBytes resizes the remote tier at runtime.
func (h *Host) SetRemoteCacheBytes(n int64) {
	h.manager.SetRemoteCapacity(h.engine.Now(), n)
}

// RunFor advances the simulation by d of virtual time.
func (h *Host) RunFor(d time.Duration) error {
	return h.engine.Run(h.engine.Now() + d)
}
