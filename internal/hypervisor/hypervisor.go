// Package hypervisor models the host: the physical devices backing the
// DoubleDecker cache stores, the cache manager itself, the VM registry and
// the host-administrator policy controller (per-VM weights, store
// capacities) — the hypervisor half of the cooperative design.
package hypervisor

import (
	"time"

	"doubledecker/internal/blockdev"
	"doubledecker/internal/cleancache"
	"doubledecker/internal/ddcache"
	"doubledecker/internal/guest"
	"doubledecker/internal/hypercall"
	"doubledecker/internal/policy"
	"doubledecker/internal/sim"
	"doubledecker/internal/store"
)

// Config parameterizes a host.
type Config struct {
	// Mode selects DoubleDecker vs the nesting-agnostic Global baseline.
	Mode ddcache.Mode
	// MemCacheBytes is the memory store capacity (0 disables it).
	MemCacheBytes int64
	// SSDCacheBytes is the SSD store capacity (0 disables it).
	SSDCacheBytes int64
	// EvictBatchBytes overrides the paper's 2 MiB eviction batch.
	EvictBatchBytes int64
	// HypervisorCaching can be set false to disable the second-chance
	// path entirely (pure guest-only caching).
	DisableCaching bool
	// VMDiskFactory builds each VM's virtual disk; nil selects the
	// default 7200 RPM HDD per VM.
	VMDiskFactory func(id cleancache.VMID) blockdev.Device
	// VictimSelector overrides the eviction victim-selection algorithm
	// (nil = the paper's Algorithm 1); used by ablation benchmarks.
	VictimSelector func(ents []policy.Entity, evictionSize int64) int
}

// Host is a physical machine running the DoubleDecker-enabled hypervisor.
type Host struct {
	engine  *sim.Engine
	manager *ddcache.Manager
	ram     *blockdev.RAM
	ssd     *blockdev.SSD
	caching bool
	diskFor func(id cleancache.VMID) blockdev.Device
	vms     []*guest.VM
}

// New builds a host with the given cache configuration.
func New(engine *sim.Engine, cfg Config) *Host {
	h := &Host{
		engine:  engine,
		ram:     blockdev.NewRAM("host-ram"),
		ssd:     blockdev.NewSSD("host-ssd"),
		caching: !cfg.DisableCaching,
		diskFor: cfg.VMDiskFactory,
	}
	mcfg := ddcache.Config{
		Mode:            cfg.Mode,
		EvictBatchBytes: cfg.EvictBatchBytes,
		VictimSelector:  cfg.VictimSelector,
	}
	if cfg.MemCacheBytes > 0 {
		mcfg.Mem = store.NewMem(h.ram, cfg.MemCacheBytes)
	}
	if cfg.SSDCacheBytes > 0 {
		mcfg.SSD = store.NewSSD(h.ssd, cfg.SSDCacheBytes)
	}
	h.manager = ddcache.NewManager(mcfg)
	return h
}

// Engine returns the simulation engine.
func (h *Host) Engine() *sim.Engine { return h.engine }

// Manager exposes the DoubleDecker cache manager.
func (h *Host) Manager() *ddcache.Manager { return h.manager }

// NewVM boots a VM with the given memory size and hypervisor cache
// weight, wiring its cleancache front over a fresh hypercall channel.
func (h *Host) NewVM(id cleancache.VMID, memBytes int64, weight int64) *guest.VM {
	h.manager.RegisterVM(id, weight)
	var front *cleancache.Front
	if h.caching {
		front = cleancache.NewFront(id, h.manager, hypercall.NewChannel())
	}
	gcfg := guest.Config{ID: id, MemBytes: memBytes}
	if h.diskFor != nil {
		gcfg.Disk = h.diskFor(id)
	}
	vm := guest.New(h.engine, gcfg, front)
	h.vms = append(h.vms, vm)
	return vm
}

// DestroyVM tears a VM down: its containers, pools and registration.
func (h *Host) DestroyVM(vm *guest.VM) {
	for _, c := range vm.Containers() {
		vm.DestroyContainer(c)
	}
	vm.Shutdown()
	h.manager.UnregisterVM(vm.ID())
	for i, other := range h.vms {
		if other == vm {
			h.vms = append(h.vms[:i], h.vms[i+1:]...)
			break
		}
	}
}

// VMs returns the live VMs in boot order.
func (h *Host) VMs() []*guest.VM {
	out := make([]*guest.VM, len(h.vms))
	copy(out, h.vms)
	return out
}

// SetVMWeight is the host-administrator policy knob for VM shares.
func (h *Host) SetVMWeight(id cleancache.VMID, weight int64) {
	h.manager.SetVMWeight(id, weight)
}

// SetMemCacheBytes resizes the memory store at runtime.
func (h *Host) SetMemCacheBytes(n int64) {
	h.manager.SetMemCapacity(h.engine.Now(), n)
}

// SetSSDCacheBytes resizes the SSD store at runtime.
func (h *Host) SetSSDCacheBytes(n int64) {
	h.manager.SetSSDCapacity(h.engine.Now(), n)
}

// RunFor advances the simulation by d of virtual time.
func (h *Host) RunFor(d time.Duration) error {
	return h.engine.Run(h.engine.Now() + d)
}
