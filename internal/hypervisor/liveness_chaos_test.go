package hypervisor

// Hypervisor-level chaos liveness: full hosts — real cache manager,
// memory and SSD stores, per-VM disks, batched transports with deadlines,
// watchdog ticks and admission control — under randomized seeded fault
// plans spanning both the transport AND the host-SSD device sites (which
// the oracle-differential guest test cannot fault). After quiesce and
// teardown:
//
//   - no get was charged past the latency budget;
//   - waiter tables, staging buffers and rings drained to empty;
//   - destroying every VM releases all store accounting.

import (
	"strconv"
	"testing"
	"time"

	"doubledecker/internal/cgroup"
	"doubledecker/internal/ddcache"
	"doubledecker/internal/fault"
	"doubledecker/internal/hypercall"
	"doubledecker/internal/sim"
)

func TestChaosLivenessFullHost(t *testing.T) {
	for _, seed := range []int64{1, 7, 1337} {
		seed := seed
		t.Run("seed-"+strconv.FormatInt(seed, 10), func(t *testing.T) {
			runHostChaos(t, seed)
		})
	}
}

func runHostChaos(t *testing.T, seed int64) {
	const (
		budget = 2 * time.Millisecond
		runFor = 200 * time.Millisecond
	)
	plan := fault.RandomPlan(seed)
	if warnings, err := plan.Validate(); err != nil || len(warnings) != 0 {
		t.Fatalf("seed %d plan invalid: err=%v warnings=%v", seed, err, warnings)
	}
	engine := sim.New(seed)
	host := New(engine, Config{
		Mode:             ddcache.ModeDD,
		MemCacheBytes:    32 * mib,
		SSDCacheBytes:    256 * mib,
		RemoteCacheBytes: 512 * mib,
		Faults:           fault.New(plan),
		OpBudget:         budget,
		WatchdogPeriod:   budget / 2,
		MaxInflightGets:  128,
		MaxQueuedOps:     400,
		MaxInflightOps:   1024,
	})

	vm1 := host.NewVM(1, 128*mib, 60)
	vm2 := host.NewVM(2, 128*mib, 40)
	c1 := vm1.NewContainer("a", 8*mib, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	c2 := vm2.NewContainer("b", 8*mib, cgroup.HCacheSpec{Store: cgroup.StoreSSD, Weight: 100})
	f1 := vm1.Allocator().Alloc(4096)
	f2 := vm2.Allocator().Alloc(4096)

	var p1, p2 int64
	engine.Every(time.Millisecond, func() {
		now := engine.Now()
		c1.Read(now, f1, p1%f1.Blocks, 32)
		p1 += 32
		if p1%128 == 0 {
			c1.Write(now, f1, (p1/4)%f1.Blocks, 8)
		}
	})
	engine.Every(1300*time.Microsecond, func() {
		now := engine.Now()
		c2.Read(now, f2, p2%f2.Blocks, 48)
		p2 += 48
		if p2%192 == 0 {
			c2.Delete(now, f2)
		}
	})
	if err := host.RunFor(runFor); err != nil {
		t.Fatalf("run: %v", err)
	}

	// Quiesce: stop the drivers' effect by tearing both VMs down with
	// whatever is still in flight — the crash-safe teardown path.
	tr1, tr2 := host.Transport(1), host.Transport(2)
	host.DestroyVM(vm1)
	host.DestroyVM(vm2)

	agg := host.TransportStats()
	if agg.Waiters != 0 {
		t.Errorf("seed %d: %d waiters leaked across the host", seed, agg.Waiters)
	}
	if agg.StagedPages != 0 {
		t.Errorf("seed %d: %d blocks still staged", seed, agg.StagedPages)
	}
	if agg.Pending != 0 {
		t.Errorf("seed %d: %d ops still buffered", seed, agg.Pending)
	}
	if agg.MaxGetLatency > budget {
		t.Errorf("seed %d: a get was charged %v, past the budget %v", seed, agg.MaxGetLatency, budget)
	}
	// Per-VM transports survive DestroyVM for post-mortem stats; both
	// must be individually clean too.
	for i, tr := range []*hypercall.Transport{tr1, tr2} {
		if st := tr.Stats(); st.Waiters != 0 || st.StagedPages != 0 || st.Pending != 0 {
			t.Errorf("seed %d vm %d: Waiters=%d StagedPages=%d Pending=%d",
				seed, i+1, st.Waiters, st.StagedPages, st.Pending)
		}
	}
	if host.Manager().InflightOps() != 0 {
		t.Errorf("seed %d: manager inflight count did not drain", seed)
	}
	// Accounting fully released after teardown.
	if got := host.Manager().StoreUsedBytes(cgroup.StoreMem); got != 0 {
		t.Errorf("seed %d: %d mem-store bytes leaked after teardown", seed, got)
	}
	if got := host.Manager().StoreUsedBytes(cgroup.StoreSSD); got != 0 {
		t.Errorf("seed %d: %d ssd-store bytes leaked after teardown", seed, got)
	}
	if got := host.Manager().StoreUsedBytes(cgroup.StoreRemote); got != 0 {
		t.Errorf("seed %d: %d remote-store bytes leaked after teardown", seed, got)
	}
	// The write-behind queue must settle to empty at quiesce: teardown
	// cancels queued entries, a final flush pops the settled slots, and
	// the conservation identity must close.
	host.Manager().FlushDemotions(engine.Now())
	ds := host.Manager().DemotionStats()
	if ds.DirtyBytes != 0 || ds.DirtyObjects != 0 {
		t.Errorf("seed %d: demotion queue did not drain at quiesce: %+v", seed, ds)
	}
	if settled := ds.Drained + ds.Cancelled + ds.DroppedFull + ds.DroppedError + ds.DroppedBreaker; settled != ds.Enqueued {
		t.Errorf("seed %d: demotion accounting does not conserve: %+v", seed, ds)
	}
	rb := host.Manager().RemoteBreakerStats()
	t.Logf("seed %d: misses=%d watchdog=%d shedGets=%d shedOps=%d managerShed=%d drops=%d demotions=%+v remoteBreaker(trips=%d restores=%d)",
		seed, agg.DeadlineMisses, agg.WatchdogFails, agg.ShedGets, agg.ShedOps,
		host.Manager().ShedOps(), agg.Drops, ds, rb.Trips, rb.Restores)
}

// TestChaosRemoteFaultPlans targets the remote tier's sites explicitly:
// stall, io-error and drop plans on remote.* while a guest works a set
// much larger than mem+SSD, forcing constant demotion and remote (slow)
// hits. Liveness must hold — no get charged past the budget, the
// demotion queue drains at quiesce, no store bytes leak — and under the
// error plans the remote breaker must actually trip.
func TestChaosRemoteFaultPlans(t *testing.T) {
	plans := []struct {
		name      string
		rule      fault.Rule
		wantTrips bool
	}{
		{name: "stall", rule: fault.Rule{Site: "remote.*", Kind: fault.KindStall, Prob: 0.3, Delay: 5 * time.Millisecond}, wantTrips: true},
		{name: "io-error", rule: fault.Rule{Site: "remote.get", Kind: fault.KindIOError, Prob: 0.4}, wantTrips: true},
		{name: "drop", rule: fault.Rule{Site: "remote.put", Kind: fault.KindDrop, Prob: 0.3}, wantTrips: false},
	}
	for _, tc := range plans {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			const budget = 2 * time.Millisecond
			plan := fault.Plan{Seed: 42, Rules: []fault.Rule{tc.rule}}
			if warnings, err := plan.Validate(); err != nil || len(warnings) != 0 {
				t.Fatalf("plan invalid: err=%v warnings=%v", err, warnings)
			}
			engine := sim.New(42)
			host := New(engine, Config{
				Mode:             ddcache.ModeDD,
				MemCacheBytes:    2 * mib,
				SSDCacheBytes:    4 * mib,
				RemoteCacheBytes: 64 * mib,
				Faults:           fault.New(plan),
				OpBudget:         budget,
				WatchdogPeriod:   budget / 2,
			})
			// The guest's own page cache is tiny relative to the working
			// set, so clean evictions continuously put into the hypervisor
			// cache, overflow SSD and demote into the remote tier.
			vm := host.NewVM(1, 8*mib, 100)
			c := vm.NewContainer("hot", 4*mib, cgroup.HCacheSpec{Store: cgroup.StoreSSD, Weight: 100})
			f := vm.Allocator().Alloc(8192) // 32 MiB working set ≫ mem+SSD
			var pos int64
			engine.Every(500*time.Microsecond, func() {
				now := engine.Now()
				c.Read(now, f, pos%f.Blocks, 64)
				c.Read(now, f, (pos*7)%f.Blocks, 32)
				pos += 64
			})
			if err := host.RunFor(300 * time.Millisecond); err != nil {
				t.Fatalf("run: %v", err)
			}
			host.DestroyVM(vm)

			agg := host.TransportStats()
			if agg.MaxGetLatency > budget {
				t.Errorf("a get was charged %v, past the budget %v", agg.MaxGetLatency, budget)
			}
			if agg.Waiters != 0 || agg.Pending != 0 || agg.StagedPages != 0 {
				t.Errorf("transport state leaked: %+v", agg)
			}
			host.Manager().FlushDemotions(engine.Now())
			ds := host.Manager().DemotionStats()
			if ds.DirtyBytes != 0 || ds.DirtyObjects != 0 {
				t.Errorf("demotion queue did not drain: %+v", ds)
			}
			if ds.Enqueued == 0 {
				t.Error("workload never demoted — remote path not exercised")
			}
			for _, st := range []cgroup.StoreType{cgroup.StoreMem, cgroup.StoreSSD, cgroup.StoreRemote} {
				if got := host.Manager().StoreUsedBytes(st); got != 0 {
					t.Errorf("%d bytes leaked in %v after teardown", got, st)
				}
			}
			rb := host.Manager().RemoteBreakerStats()
			if tc.wantTrips && rb.Trips == 0 {
				t.Errorf("remote breaker never tripped under the %s plan: %+v", tc.name, rb)
			}
			t.Logf("%s: demotions=%+v breaker trips=%d probes=%d restores=%d", tc.name, ds, rb.Trips, rb.Probes, rb.Restores)
		})
	}
}

func TestHostDeadlineDefaultsWatchdogPeriod(t *testing.T) {
	engine := sim.New(1)
	host := New(engine, Config{
		Mode:          ddcache.ModeDD,
		MemCacheBytes: 32 * mib,
		OpBudget:      time.Millisecond,
	})
	if host.wdog != time.Millisecond {
		t.Fatalf("watchdog period = %v, want the budget itself", host.wdog)
	}
}

func TestManagerAdmissionShedsOverBudget(t *testing.T) {
	// The hypervisor-wide budget: with MaxInflightOps=0 (off) nothing is
	// shed; the cap itself is exercised concurrently in the ddcache
	// package tests — here we check the host plumbs the knob through.
	engine := sim.New(1)
	host := New(engine, Config{
		Mode:           ddcache.ModeDD,
		MemCacheBytes:  32 * mib,
		MaxInflightOps: 1,
	})
	vm := host.NewVM(1, 128*mib, 100)
	c := vm.NewContainer("c", 8*mib, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	f := vm.Allocator().Alloc(64)
	c.Read(engine.Now(), f, 0, f.Blocks)
	// Single-threaded dispatches never exceed inflight 1: no sheds.
	if got := host.Manager().ShedOps(); got != 0 {
		t.Fatalf("sequential dispatches shed %d ops under cap 1", got)
	}
}
