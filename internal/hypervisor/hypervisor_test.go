package hypervisor

import (
	"testing"
	"time"

	"doubledecker/internal/blockdev"
	"doubledecker/internal/cgroup"
	"doubledecker/internal/cleancache"
	"doubledecker/internal/ddcache"
	"doubledecker/internal/sim"
)

const mib = 1 << 20

func newHost(t *testing.T) (*sim.Engine, *Host) {
	t.Helper()
	engine := sim.New(1)
	host := New(engine, Config{
		Mode:          ddcache.ModeDD,
		MemCacheBytes: 64 * mib,
		SSDCacheBytes: 1 << 30,
	})
	return engine, host
}

func TestNewVMWiresCaching(t *testing.T) {
	engine, host := newHost(t)
	vm := host.NewVM(1, 128*mib, 100)
	if vm.Front() == nil {
		t.Fatal("VM has no cleancache front")
	}
	c := vm.NewContainer("c", 8*mib, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	f := vm.Allocator().Alloc(4096)
	c.Read(engine.Now(), f, 0, f.Blocks)
	if host.Manager().StoreUsedBytes(cgroup.StoreMem) == 0 {
		t.Fatal("host cache untouched by guest IO")
	}
}

func TestDisableCaching(t *testing.T) {
	engine := sim.New(1)
	host := New(engine, Config{MemCacheBytes: 64 * mib, DisableCaching: true})
	vm := host.NewVM(1, 128*mib, 100)
	if vm.Front() != nil {
		t.Fatal("caching-disabled host still wired a front")
	}
}

func TestDestroyVM(t *testing.T) {
	engine, host := newHost(t)
	vm := host.NewVM(1, 128*mib, 100)
	c := vm.NewContainer("c", 8*mib, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	f := vm.Allocator().Alloc(4096)
	c.Read(engine.Now(), f, 0, f.Blocks)
	host.DestroyVM(vm)
	if got := host.Manager().StoreUsedBytes(cgroup.StoreMem); got != 0 {
		t.Fatalf("destroyed VM leaks %d cache bytes", got)
	}
	if len(host.VMs()) != 0 {
		t.Fatal("VM list not updated")
	}
}

func TestMultiVMPartitioning(t *testing.T) {
	engine, host := newHost(t)
	vm1 := host.NewVM(1, 128*mib, 33)
	vm2 := host.NewVM(2, 128*mib, 67)
	c1 := vm1.NewContainer("a", 8*mib, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	c2 := vm2.NewContainer("b", 8*mib, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	// Both VMs stream working sets far larger than the 64 MiB store.
	f1 := vm1.Allocator().Alloc(32768)
	f2 := vm2.Allocator().Alloc(32768)
	for pass := 0; pass < 2; pass++ {
		c1.Read(engine.Now(), f1, 0, f1.Blocks)
		c2.Read(engine.Now(), f2, 0, f2.Blocks)
	}
	u1 := host.Manager().VMUsedBytes(1, cgroup.StoreMem)
	u2 := host.Manager().VMUsedBytes(2, cgroup.StoreMem)
	if u1 == 0 || u2 == 0 {
		t.Fatalf("VM usage: %d/%d", u1, u2)
	}
	// Weighted split should favour VM2 roughly 2:1 at steady contention.
	if !(float64(u2) > 1.3*float64(u1)) {
		t.Fatalf("weighted split not visible: vm1=%d vm2=%d", u1, u2)
	}
}

func TestSetWeightsAndCapacityAtRuntime(t *testing.T) {
	engine, host := newHost(t)
	host.NewVM(1, 128*mib, 100)
	host.SetVMWeight(1, 50)
	host.SetMemCacheBytes(32 * mib)
	host.SetSSDCacheBytes(2 << 30)
	if host.Engine() != engine {
		t.Fatal("Engine accessor broken")
	}
	if err := host.RunFor(time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if engine.Now() != time.Second {
		t.Fatalf("clock = %v", engine.Now())
	}
}

func TestVMDiskFactory(t *testing.T) {
	engine := sim.New(1)
	var made []cleancache.VMID
	host := New(engine, Config{
		MemCacheBytes: 64 * mib,
		VMDiskFactory: func(id cleancache.VMID) blockdev.Device {
			made = append(made, id)
			return blockdev.NewArrayHDD("custom")
		},
	})
	vm := host.NewVM(7, 128*mib, 100)
	if len(made) != 1 || made[0] != 7 {
		t.Fatalf("factory calls: %v", made)
	}
	if vm.Disk().Name() != "custom" {
		t.Fatalf("disk = %q", vm.Disk().Name())
	}
}
