package hypervisor

import (
	"time"

	"doubledecker/internal/blockdev"
	"doubledecker/internal/cleancache"
	"doubledecker/internal/ddcache"
	"doubledecker/internal/fault"
	"doubledecker/internal/hypercall"
	"doubledecker/internal/metrics"
	"doubledecker/internal/policy"
	"doubledecker/internal/sim"
)

// Option configures a Host, mirroring the ddcache.New functional-options
// style: NewHost applies options over the zero Config, so stock defaults
// (including the pipelined read path) live in New and new knobs do not
// keep growing a positional struct.
type Option func(*Config)

// NewHost builds a host from functional options — the preferred
// constructor. New(engine, cfg) remains as the struct-config shim; every
// option has a matching (deprecated) Config field.
func NewHost(engine *sim.Engine, opts ...Option) *Host {
	var cfg Config
	for _, o := range opts {
		o(&cfg)
	}
	return New(engine, cfg)
}

// WithMode selects DoubleDecker vs the nesting-agnostic Global baseline.
func WithMode(m ddcache.Mode) Option { return func(c *Config) { c.Mode = m } }

// WithMemCache sets the memory store capacity (0 disables it).
func WithMemCache(n int64) Option { return func(c *Config) { c.MemCacheBytes = n } }

// WithSSDCache sets the SSD store capacity (0 disables it).
func WithSSDCache(n int64) Option { return func(c *Config) { c.SSDCacheBytes = n } }

// WithEvictBatch overrides the paper's 2 MiB eviction batch.
func WithEvictBatch(n int64) Option { return func(c *Config) { c.EvictBatchBytes = n } }

// WithoutCaching disables the second-chance path entirely (pure
// guest-only caching).
func WithoutCaching() Option { return func(c *Config) { c.DisableCaching = true } }

// WithVMDiskFactory overrides each VM's virtual disk construction.
func WithVMDiskFactory(fn func(id cleancache.VMID) blockdev.Device) Option {
	return func(c *Config) { c.VMDiskFactory = fn }
}

// WithVictimSelector overrides the eviction victim-selection algorithm.
func WithVictimSelector(fn func(ents []policy.Entity, evictionSize int64) int) Option {
	return func(c *Config) { c.VictimSelector = fn }
}

// WithTransport parameterizes each VM's hypercall transport. Fields left
// zero still receive the stock pipelined defaults; combine with
// WithoutPipeline for the synchronous baseline.
func WithTransport(o hypercall.Options) Option { return func(c *Config) { c.Transport = o } }

// WithMetrics attaches a metrics registry to the transports and the SSD
// breaker.
func WithMetrics(reg *metrics.Registry) Option { return func(c *Config) { c.Metrics = reg } }

// WithGuestFlushInterval overrides the guests' transport flush tick.
func WithGuestFlushInterval(d time.Duration) Option {
	return func(c *Config) { c.GuestFlushInterval = d }
}

// WithReadAheadWindow sets every guest's pipelined-read window (see
// Config.ReadAheadWindow; 0 selects the stock default).
func WithReadAheadWindow(n int) Option { return func(c *Config) { c.ReadAheadWindow = n } }

// WithoutReadAhead disables guest readahead while keeping the async
// transport defaults.
func WithoutReadAhead() Option { return func(c *Config) { c.ReadAheadWindow = -1 } }

// WithoutPipeline disables the stock pipelined-read defaults (async
// gets, zero-copy, default readahead window) — the A/B baseline for the
// end-to-end readpath experiment.
func WithoutPipeline() Option { return func(c *Config) { c.NoPipeline = true } }

// WithFaults attaches a fault-injection plan to the host.
func WithFaults(inj *fault.Injector) Option { return func(c *Config) { c.Faults = inj } }

// WithBreaker tunes the cache manager's SSD circuit breaker.
func WithBreaker(b ddcache.BreakerConfig) Option { return func(c *Config) { c.Breaker = b } }

// WithDeadlines enables the per-op latency budget on every VM's transport
// and the guest watchdog tick that enforces it for async waiters. A zero
// period defaults to the budget itself.
func WithDeadlines(budget, watchdogPeriod time.Duration) Option {
	return func(c *Config) {
		c.OpBudget = budget
		c.WatchdogPeriod = watchdogPeriod
	}
}

// WithAdmission sets the admission-control caps: per-VM inflight async
// gets and queued batchable ops on each transport, plus the
// hypervisor-wide inflight budget on the cache manager. Zero leaves a cap
// unlimited.
func WithAdmission(inflightGets, queuedOps int, managerOps int64) Option {
	return func(c *Config) {
		c.MaxInflightGets = inflightGets
		c.MaxQueuedOps = queuedOps
		c.MaxInflightOps = managerOps
	}
}
