package guest

import (
	"testing"
	"time"

	"doubledecker/internal/cgroup"
	"doubledecker/internal/cleancache"
)

// TestExclusivityInvariant drives a container through heavy cache churn
// and verifies the paper's core protocol property: a block is never
// resident in the guest page cache and the hypervisor cache at the same
// time.
func TestExclusivityInvariant(t *testing.T) {
	engine, mgr, vm := rig(t, 16*mib)
	c := vm.NewContainer("churn", 8*mib, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	f := vm.Allocator().Alloc(8192) // 32 MiB over 8 MiB container + 16 MiB cache
	pool := cleancache.PoolID(c.Group().PoolID())

	check := func(tag string) {
		t.Helper()
		// Every block: resident in page cache ⇒ absent from the
		// hypervisor cache (and the union never exceeds one copy).
		both := 0
		for b := int64(0); b < f.Blocks; b++ {
			inPC := vm.PageCache().Resident(uint64(f.Inode), b)
			inHC := mgr.Contains(cleancache.Key{Pool: pool, Inode: uint64(f.Inode), Block: b})
			if inPC && inHC {
				both++
			}
		}
		if both > 0 {
			t.Fatalf("%s: %d blocks resident in both caches", tag, both)
		}
	}

	for pass := 0; pass < 3; pass++ {
		c.Read(engine.Now(), f, 0, f.Blocks)
		check("after sequential pass")
		// Random-ish strided re-reads to force get/put recirculation.
		for s := int64(0); s < f.Blocks; s += 17 {
			c.Read(engine.Now(), f, s, 4)
		}
		check("after strided pass")
		engine.Run(engine.Now() + time.Second)
	}
}
