// Package guest models a virtual machine's software stack: the memory
// controller (cgroups), the page cache with cleancache integration, a
// virtual disk, and container lifecycle — the guest half of the
// DoubleDecker cooperative design. Containers expose the file and
// anonymous-memory operations the workload generators drive.
package guest

import (
	"fmt"
	"time"

	"doubledecker/internal/blockdev"
	"doubledecker/internal/cgroup"
	"doubledecker/internal/cleancache"
	"doubledecker/internal/fsmodel"
	"doubledecker/internal/pagecache"
	"doubledecker/internal/sim"
	"doubledecker/internal/trace"
)

// DefaultReadAheadWindow is the readahead/async-probe window stock
// pipeline-enabled configurations use (see hypervisor.Config): deep
// enough to amortize a batched crossing over a whole window of probes,
// shallow enough to stay well inside the transport's staging buffer.
const DefaultReadAheadWindow = 32

// Config parameterizes a VM.
//
// Deprecated knob growth: new VM knobs are added as functional options
// only (see NewVM and the With* options); the struct fields remain as
// shims for existing call sites.
type Config struct {
	ID       cleancache.VMID
	MemBytes int64
	// KernelReserveBytes approximates the guest kernel footprint;
	// defaults to 64 MiB.
	KernelReserveBytes int64
	// FlushInterval is the background writeback period (default 1s).
	FlushInterval time.Duration
	// FlushBatchPages bounds each background writeback round
	// (default 2048 pages = 8 MiB).
	FlushBatchPages int
	// HypercallFlushInterval is the period of the transport flush tick
	// that drains buffered hypercall batches so puts and flushes never
	// linger unsent (default 10ms).
	HypercallFlushInterval time.Duration
	// ReadAheadWindow enables the pipelined read path: sequential-stream
	// detection in the cleancache front (READ_AHEAD ops prefetching up to
	// this many blocks ahead into the hypervisor-side staging buffer) and
	// the page cache's async probe window of the same depth
	// (pagecache.Cache.SetReadWindow). Zero disables both.
	ReadAheadWindow int
	// WatchdogPeriod drives the transport deadline watchdog: every period
	// the VM sweeps its transport (cleancache.DeadlineTransport.Watchdog)
	// and fails over-budget async waiters as misses, releasing their ring
	// slots, waiter-table entries and any staged readahead they cover.
	// Zero disables the tick — only meaningful when the transport has an
	// OpBudget configured.
	WatchdogPeriod time.Duration
	// Disk overrides the VM's virtual disk; nil selects a 7200 RPM HDD.
	Disk blockdev.Device
}

// VM is one guest: memory controller + page cache + virtual disk.
type VM struct {
	id     cleancache.VMID
	engine *sim.Engine
	root   *cgroup.Root
	cache  *pagecache.Cache
	front  *cleancache.Front // nil when hypervisor caching is off
	disk   blockdev.Device
	alloc  *fsmodel.Allocator

	containers []*Container
	flusher    *sim.Event
	hcFlusher  *sim.Event // transport flush tick; nil when front is nil
	watchdog   *sim.Event // deadline watchdog tick; nil when disabled
}

// New builds a VM. front may be nil to run without a second-chance cache.
func New(engine *sim.Engine, cfg Config, front *cleancache.Front) *VM {
	if cfg.KernelReserveBytes == 0 {
		cfg.KernelReserveBytes = 64 << 20
	}
	if cfg.FlushInterval == 0 {
		cfg.FlushInterval = time.Second
	}
	if cfg.FlushBatchPages == 0 {
		cfg.FlushBatchPages = 2048
	}
	if cfg.HypercallFlushInterval == 0 {
		cfg.HypercallFlushInterval = 10 * time.Millisecond
	}
	disk := cfg.Disk
	if disk == nil {
		disk = blockdev.NewHDD(fmt.Sprintf("vm%d-disk", cfg.ID))
	}
	vm := &VM{
		id:     cfg.ID,
		engine: engine,
		root:   cgroup.NewRoot(cfg.MemBytes, cfg.KernelReserveBytes),
		disk:   disk,
		alloc:  fsmodel.NewAllocator(),
		front:  front,
	}
	if front != nil && cfg.ReadAheadWindow > 0 {
		front.SetReadAhead(cfg.ReadAheadWindow)
	}
	vm.cache = pagecache.New(vm.root, front, vm.disk)
	if front != nil && cfg.ReadAheadWindow > 0 {
		vm.cache.SetReadWindow(cfg.ReadAheadWindow)
	}
	vm.flusher = engine.Every(cfg.FlushInterval, func() {
		vm.cache.FlushDirty(engine.Now(), cfg.FlushBatchPages)
	})
	if front != nil {
		vm.hcFlusher = engine.Every(cfg.HypercallFlushInterval, func() {
			front.FlushTransport(engine.Now())
		})
		if cfg.WatchdogPeriod > 0 {
			if dt, ok := front.Transport().(cleancache.DeadlineTransport); ok {
				vm.watchdog = engine.Every(cfg.WatchdogPeriod, func() {
					dt.Watchdog(engine.Now())
				})
			}
		}
	}
	return vm
}

// ID reports the VM's hypervisor-visible id.
func (vm *VM) ID() cleancache.VMID { return vm.id }

// Engine returns the simulation engine driving this VM.
func (vm *VM) Engine() *sim.Engine { return vm.engine }

// Root exposes the VM's memory controller.
func (vm *VM) Root() *cgroup.Root { return vm.root }

// PageCache exposes the VM's page cache.
func (vm *VM) PageCache() *pagecache.Cache { return vm.cache }

// Front exposes the VM's cleancache layer (nil when disabled).
func (vm *VM) Front() *cleancache.Front { return vm.front }

// Disk exposes the VM's virtual disk.
func (vm *VM) Disk() blockdev.Device { return vm.disk }

// Allocator exposes the VM's file allocator (one filesystem per VM).
func (vm *VM) Allocator() *fsmodel.Allocator { return vm.alloc }

// Shutdown cancels background activity (writeback, transport and watchdog
// ticks), draining any buffered hypercall batch first, then closes the
// transport: outstanding async gets and staged readahead are failed as
// misses and every waiter-table entry, ring slot and staged page is
// released — the crash-safe teardown path.
func (vm *VM) Shutdown() {
	vm.flusher.Cancel()
	if vm.watchdog != nil {
		vm.watchdog.Cancel()
	}
	if vm.hcFlusher != nil {
		vm.front.FlushTransport(vm.engine.Now())
		vm.hcFlusher.Cancel()
		if dt, ok := vm.front.Transport().(cleancache.DeadlineTransport); ok {
			dt.Close(vm.engine.Now())
		}
	}
}

// RecordTrace attaches a recorder that captures every page cache read
// access into log (container names interned automatically). The returned
// function detaches the recorder. Only one access-hook consumer can be
// active at a time.
func (vm *VM) RecordTrace(log *trace.Log) (detach func()) {
	vm.cache.SetAccessHook(func(g *cgroup.Group, inode uint64, block int64) {
		log.Append(trace.Record{
			At:        vm.engine.Now(),
			Kind:      trace.KindRead,
			Container: log.ContainerID(g.Name()),
			Inode:     inode,
			Block:     block,
			Count:     1,
		})
	})
	return func() { vm.cache.SetAccessHook(nil) }
}

// Containers returns the live containers in creation order.
func (vm *VM) Containers() []*Container {
	out := make([]*Container, len(vm.containers))
	copy(out, vm.containers)
	return out
}

// Container is one application container (an LXC-style cgroup plus its
// hypervisor cache pool).
type Container struct {
	name  string
	vm    *VM
	group *cgroup.Group
}

// NewContainer boots a container: creates its cgroup with the given
// memory limit and hypervisor cache spec, and fires the CREATE_CGROUP
// event so the hypervisor cache assigns a pool.
func (vm *VM) NewContainer(name string, limitBytes int64, spec cgroup.HCacheSpec) *Container {
	g := vm.root.NewGroup(name, limitBytes, vm.disk)
	g.SetSpec(spec)
	if vm.front != nil {
		vm.front.RegisterGroup(vm.engine.Now(), g)
	}
	c := &Container{name: name, vm: vm, group: g}
	vm.containers = append(vm.containers, c)
	return c
}

// DestroyContainer shuts a container down: DESTROY_CGROUP plus cgroup
// removal. Its page cache pages are dropped.
func (vm *VM) DestroyContainer(c *Container) {
	if vm.front != nil {
		vm.front.UnregisterGroup(vm.engine.Now(), c.group)
	}
	// Drop remaining file pages by reclaiming everything.
	for {
		freed, _ := vm.cache.ReclaimFile(vm.engine.Now(), c.group, 1<<20)
		if freed == 0 {
			break
		}
	}
	vm.root.RemoveGroup(c.group)
	for i, other := range vm.containers {
		if other == c {
			vm.containers = append(vm.containers[:i], vm.containers[i+1:]...)
			break
		}
	}
}

// Name reports the container name.
func (c *Container) Name() string { return c.name }

// VM reports the hosting VM.
func (c *Container) VM() *VM { return c.vm }

// Group exposes the container's cgroup.
func (c *Container) Group() *cgroup.Group { return c.group }

// SetSpec updates the container's <T, W> tuple and propagates it to the
// hypervisor cache (SET_CG_WEIGHT).
func (c *Container) SetSpec(spec cgroup.HCacheSpec) {
	c.group.SetSpec(spec)
	if c.vm.front != nil {
		c.vm.front.UpdateSpec(c.vm.engine.Now(), c.group)
	}
}

// SetMemLimit updates the container's cgroup memory limit.
func (c *Container) SetMemLimit(bytes int64) { c.group.SetLimitBytes(bytes) }

// CacheStats returns the hypervisor cache statistics for this container
// (the paper's GET_STATS).
func (c *Container) CacheStats() cleancache.PoolStats {
	if c.vm.front == nil {
		return cleancache.PoolStats{}
	}
	return c.vm.front.GroupStats(c.group)
}

// IOStats returns the container's page cache counters.
func (c *Container) IOStats() pagecache.IOStats { return c.vm.cache.Stats(c.group) }

// --- I/O operations driven by workloads -------------------------------------

// Read reads n blocks of f from start, returning the operation latency.
func (c *Container) Read(now time.Duration, f *fsmodel.File, start, n int64) time.Duration {
	return c.vm.cache.Read(now, c.group, f, start, n)
}

// Write writes n blocks of f from start.
func (c *Container) Write(now time.Duration, f *fsmodel.File, start, n int64) time.Duration {
	return c.vm.cache.Write(now, c.group, f, start, n)
}

// Fsync persists f's dirty pages synchronously.
func (c *Container) Fsync(now time.Duration, f *fsmodel.File) time.Duration {
	return c.vm.cache.Fsync(now, c.group, f)
}

// Delete invalidates f everywhere (page cache + second-chance cache).
func (c *Container) Delete(now time.Duration, f *fsmodel.File) time.Duration {
	return c.vm.cache.Invalidate(now, c.group, f)
}

// GrowAnon extends the container's anonymous working set.
func (c *Container) GrowAnon(now time.Duration, pages int64) time.Duration {
	return c.group.GrowAnon(now, pages)
}

// TouchAnon touches anonymous pages (swap-ins if swapped).
func (c *Container) TouchAnon(now time.Duration, pages int64) time.Duration {
	return c.group.TouchAnon(now, pages, c.vm.engine.Rand())
}
