package guest

import (
	"time"

	"doubledecker/internal/blockdev"
	"doubledecker/internal/cleancache"
	"doubledecker/internal/sim"
)

// Option configures a VM, mirroring the ddcache.New functional-options
// style: NewVM applies options over the zero Config, so defaults live in
// one place and new knobs do not keep growing a positional struct.
type Option func(*Config)

// NewVM builds a VM from functional options — the preferred constructor.
// New(engine, cfg, front) remains as the struct-config shim; every
// option has a matching (deprecated) Config field.
func NewVM(engine *sim.Engine, front *cleancache.Front, opts ...Option) *VM {
	var cfg Config
	for _, o := range opts {
		o(&cfg)
	}
	return New(engine, cfg, front)
}

// WithID sets the VM's hypervisor-visible id.
func WithID(id cleancache.VMID) Option { return func(c *Config) { c.ID = id } }

// WithMemBytes sets the VM's memory size.
func WithMemBytes(n int64) Option { return func(c *Config) { c.MemBytes = n } }

// WithKernelReserve sets the guest kernel footprint approximation
// (default 64 MiB).
func WithKernelReserve(n int64) Option { return func(c *Config) { c.KernelReserveBytes = n } }

// WithFlushInterval sets the background writeback period (default 1s).
func WithFlushInterval(d time.Duration) Option { return func(c *Config) { c.FlushInterval = d } }

// WithFlushBatchPages bounds each background writeback round
// (default 2048 pages).
func WithFlushBatchPages(n int) Option { return func(c *Config) { c.FlushBatchPages = n } }

// WithHypercallFlushInterval sets the transport flush tick period
// (default 10ms).
func WithHypercallFlushInterval(d time.Duration) Option {
	return func(c *Config) { c.HypercallFlushInterval = d }
}

// WithReadAheadWindow enables the pipelined read path with a window of n
// blocks: sequential-stream readahead in the cleancache front and the
// page cache's async probe window (see Config.ReadAheadWindow).
func WithReadAheadWindow(n int) Option { return func(c *Config) { c.ReadAheadWindow = n } }

// WithDisk overrides the VM's virtual disk (default: a 7200 RPM HDD).
func WithDisk(dev blockdev.Device) Option { return func(c *Config) { c.Disk = dev } }

// WithWatchdogPeriod enables the transport deadline watchdog tick: every
// period the VM sweeps over-budget async waiters and fails them as misses
// (see Config.WatchdogPeriod). Zero disables the tick.
func WithWatchdogPeriod(d time.Duration) Option { return func(c *Config) { c.WatchdogPeriod = d } }
