package guest_test

// End-to-end read-path differential test: full guest stacks — page cache,
// cleancache front, hypercall transport — drive the shared sharded
// manager concurrently while a recording tee captures each VM's
// backend-observed op stream. The merged logs are then replayed through
// the sequential oracle: every verdict (get hit/miss, put admission,
// readahead extraction count, pool assignment) must reproduce, and the
// final cache states must agree exactly, including the readahead
// counters the pipelined path feeds.
//
// Unlike the transport-level differential test in internal/ddcache, the
// op stream here is emitted by pagecache.Cache.Read itself — miss-run
// detection, the async probe window over Front.GetAsync, handle
// resolution order, writeback puts and invalidation flushes — so a
// divergence implicates the guest-side pipeline, not a hand-rolled
// driver. Both pipeline modes run: stock-style pipelined (async tagged
// gets + readahead window) and the synchronous pre-pipeline baseline.
//
// The workload commutes across VMs (own pools, ample manager capacity),
// so the round-robin merge is a valid linearization witness.

import (
	"sync"
	"testing"
	"time"

	"doubledecker/internal/blockdev"
	"doubledecker/internal/cgroup"
	"doubledecker/internal/cleancache"
	"doubledecker/internal/ddcache"
	"doubledecker/internal/ddcache/oracle"
	"doubledecker/internal/fsmodel"
	"doubledecker/internal/guest"
	"doubledecker/internal/hypercall"
	"doubledecker/internal/sim"
	"doubledecker/internal/store"
)

// guestTee records every op a VM's transport dispatches into the shared
// manager. Appends happen under the owning transport's lock, one tee per
// VM, so no extra synchronization is needed.
type guestTee struct {
	inner cleancache.Backend
	log   []guestTeeOp
}

type guestTeeOp struct {
	req   cleancache.Request
	ok    bool
	count int64
	pool  cleancache.PoolID
}

func (b *guestTee) Dispatch(now time.Duration, req cleancache.Request) cleancache.Response {
	resp := b.inner.Dispatch(now, req)
	b.log = append(b.log, guestTeeOp{req: req, ok: resp.Ok, count: resp.Count, pool: resp.Pool})
	return resp
}

func TestDifferentialGuestReadPathEndToEnd(t *testing.T) {
	t.Run("pipeline-on", func(t *testing.T) { runGuestReadPathDifferential(t, true) })
	t.Run("pipeline-off", func(t *testing.T) { runGuestReadPathDifferential(t, false) })
}

func runGuestReadPathDifferential(t *testing.T, pipeline bool) {
	const (
		vms        = 4
		filesPerVM = 2
		fileBlocks = int64(512) // 2 MiB per file
		burst      = int64(32)
		window     = 8
		memCap     = int64(64 << 20) // ample: no cross-pool eviction
		stepEvery  = time.Millisecond
		runFor     = 400 * time.Millisecond
	)
	mgr := ddcache.NewManager(ddcache.Config{
		Mode: ddcache.ModeDD,
		Mem:  store.NewMem(blockdev.NewRAM("m.ram"), memCap),
	})
	oMem := store.NewMem(blockdev.NewRAM("o.ram"), memCap)
	orc := oracle.New(oracle.Config{Mode: oracle.ModeDD, Mem: oMem})

	// Sequential setup: VMs, transports, fronts, guests, containers —
	// creation order fixes pool ids, and each VM's CREATE_CGROUP is its
	// tee's first record, so the round-robin replay re-creates pools in
	// the same order and the recorded pool ids must reproduce.
	type guestState struct {
		engine *sim.Engine
		vm     *guest.VM
		c      *guest.Container
		tee    *guestTee
		tr     *hypercall.Transport
		pool   cleancache.PoolID
		files  []*fsmodel.File
	}
	gs := make([]*guestState, vms)
	for v := 0; v < vms; v++ {
		id := cleancache.VMID(v + 1)
		mgr.RegisterVM(id, 100)
		orc.RegisterVM(id, 100)
		tee := &guestTee{inner: mgr}
		topts := hypercall.Options{}
		if pipeline {
			// Odd VMs run zero-copy to cover both bulk-response modes in
			// the same race window.
			topts.AsyncGets = true
			topts.ZeroCopy = v%2 == 1
		}
		tr := hypercall.NewTransport(tee, topts)
		front := cleancache.NewFront(id, tr)
		engine := sim.New(int64(9000 + v))
		vmOpts := []guest.Option{
			guest.WithID(id),
			guest.WithMemBytes(80 << 20), // 64 MiB kernel reserve + 16 MiB cache
		}
		if pipeline {
			vmOpts = append(vmOpts, guest.WithReadAheadWindow(window))
		}
		vm := guest.NewVM(engine, front, vmOpts...)
		c := vm.NewContainer("rp", 1<<20, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
		s := &guestState{
			engine: engine, vm: vm, c: c, tee: tee, tr: tr,
			pool: cleancache.PoolID(c.Group().PoolID()),
		}
		for i := 0; i < filesPerVM; i++ {
			s.files = append(s.files, vm.Allocator().Alloc(fileBlocks))
		}
		gs[v] = s
	}

	// Concurrent phase: one goroutine per VM, each driving its own engine.
	// The per-step schedule is deterministic: streaming sequential read
	// bursts (the pipeline's target shape) with periodic hot-region
	// rewrites and an occasional whole-file invalidation.
	var wg sync.WaitGroup
	for _, s := range gs {
		wg.Add(1)
		go func(s *guestState) {
			defer wg.Done()
			total := filesPerVM * fileBlocks
			var pos, hot int64
			step := 0
			s.engine.Every(stepEvery, func() {
				now := s.engine.Now()
				for remaining := burst; remaining > 0; {
					f := s.files[pos/fileBlocks]
					off := pos % fileBlocks
					n := remaining
					if left := fileBlocks - off; n > left {
						n = left
					}
					s.c.Read(now, f, off, n)
					pos = (pos + n) % total
					remaining -= n
				}
				step++
				if step%4 == 0 {
					s.c.Write(now, s.files[0], hot, 4)
					hot = (hot + 4) % 32
				}
				if step%97 == 0 {
					s.c.Delete(now, s.files[1])
				}
			})
			s.engine.Run(runFor)
			s.vm.Shutdown()
		}(s)
	}
	wg.Wait()

	// The machinery under test must actually have been exercised.
	var agg hypercall.TransportStats
	for _, s := range gs {
		st := s.tr.Stats()
		agg.AsyncGets += st.AsyncGets
		agg.StagedHits += st.StagedHits
		agg.PagesMapped += st.PagesMapped
		agg.Pending += st.Pending
	}
	if pipeline {
		if agg.AsyncGets == 0 || agg.StagedHits == 0 || agg.PagesMapped == 0 {
			t.Fatalf("pipelined read path not exercised: %+v", agg)
		}
	} else if agg.AsyncGets != 0 {
		t.Fatalf("baseline mode issued %d async gets", agg.AsyncGets)
	}
	if agg.Pending != 0 {
		t.Fatalf("%d ops still buffered after shutdown", agg.Pending)
	}

	// Replay the round-robin merge of the backend-observed logs through
	// the sequential oracle: every verdict must reproduce.
	for i := 0; ; i++ {
		exhausted := true
		for v, s := range gs {
			if i >= len(s.tee.log) {
				continue
			}
			exhausted = false
			rec := s.tee.log[i]
			resp := orc.Dispatch(0, rec.req)
			switch rec.req.Op {
			case cleancache.OpCreateCgroup:
				if resp.Pool != rec.pool {
					t.Fatalf("replay vm %d op %d: pool ids diverged (%d vs %d)", v+1, i, rec.pool, resp.Pool)
				}
			case cleancache.OpGet, cleancache.OpPut, cleancache.OpReadAhead:
				if resp.Ok != rec.ok || resp.Count != rec.count {
					t.Fatalf("replay vm %d op %d (%v %+v): concurrent run said ok=%v count=%d, oracle says ok=%v count=%d",
						v+1, i, rec.req.Op, rec.req.Key, rec.ok, rec.count, resp.Ok, resp.Count)
				}
			}
		}
		if exhausted {
			break
		}
	}

	// Final states must agree exactly — including ReadAheadGets and
	// ReadAheadHits, which only the pipelined read path feeds.
	for v, s := range gs {
		got, want := mgr.PoolStats(0, s.pool), orc.PoolStats(0, s.pool)
		if got != want {
			t.Fatalf("vm %d pool %d final stats:\n  manager %+v\n  oracle  %+v", v+1, s.pool, got, want)
		}
		if pipeline && (got.ReadAheadGets == 0 || got.ReadAheadHits == 0) {
			t.Fatalf("vm %d pool %d: pipelined run drove no readahead (%+v)", v+1, s.pool, got)
		}
		if gb, wb := mgr.PoolTotalBytes(s.pool), orc.PoolTotalBytes(s.pool); gb != wb {
			t.Fatalf("vm %d pool %d final bytes: manager %d, oracle %d", v+1, s.pool, gb, wb)
		}
	}
	if got, want := mgr.StoreUsedBytes(cgroup.StoreMem), oMem.UsedBytes(); got != want {
		t.Fatalf("final store usage: manager %d, oracle %d", got, want)
	}
}
