package guest_test

// Chaos liveness property test: full guest stacks — page cache,
// cleancache front, batched hypercall transport with deadlines, watchdog
// and admission control — run under randomized seeded fault plans on the
// transport sites (batch, call, completion). After quiesce the liveness
// properties must hold on every VM:
//
//   - every read terminated and no get was charged more than the latency
//     budget (MaxGetLatency ≤ OpBudget) — the tentpole's bound;
//   - the waiter table, staging buffer and ring drained to empty;
//   - accounting is conserved: the backend-observed op stream replayed
//     through the PR 5 sequential oracle reproduces every verdict and
//     the final cache state exactly.
//
// Only transport sites are faulted: a drop or stall happens before (or
// instead of) Dispatch, so the backend-observed stream remains a valid
// linearization witness — abandoned batches and cancelled frames simply
// never appear in it. Device faults are exercised by the hypervisor-level
// chaos test instead, where no oracle is attached.
//
// Seeds are replayable: DD_CHAOS_SEED selects one seed, and
// DD_CHAOS_DEADLINES=off runs the same plan with the budget disabled
// (liveness bound not asserted — that is the unbounded contrast).

import (
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"doubledecker/internal/blockdev"
	"doubledecker/internal/cgroup"
	"doubledecker/internal/cleancache"
	"doubledecker/internal/ddcache"
	"doubledecker/internal/ddcache/oracle"
	"doubledecker/internal/fault"
	"doubledecker/internal/fsmodel"
	"doubledecker/internal/guest"
	"doubledecker/internal/hypercall"
	"doubledecker/internal/sim"
	"doubledecker/internal/store"
)

// chaosBudget is the per-op latency budget the chaos runs enforce: well
// above a healthy full-ring drain (~1 ms of batched backend work), well
// below the injected stalls.
const chaosBudget = 2 * time.Millisecond

// transportOnlyPlan filters a generated plan down to the transport sites,
// so the backend-observed stream stays oracle-replayable.
func transportOnlyPlan(p fault.Plan) fault.Plan {
	out := fault.Plan{Seed: p.Seed}
	for _, r := range p.Rules {
		switch r.Site {
		case hypercall.SiteBatch, hypercall.SiteCall, hypercall.SiteCompletion:
			out.Rules = append(out.Rules, r)
		}
	}
	return out
}

// stallHeavyPlan is the deterministic leg: stalls past the budget plus
// completion losses, guaranteed to bite.
func stallHeavyPlan(seed int64) fault.Plan {
	return fault.Plan{Seed: seed, Rules: []fault.Rule{
		{Site: hypercall.SiteBatch, Kind: fault.KindLatency, Prob: 0.2, Delay: 5 * time.Millisecond},
		{Site: hypercall.SiteBatch, Kind: fault.KindDrop, Prob: 0.1},
		{Site: hypercall.SiteCompletion, Kind: fault.KindDrop, Prob: 0.25},
		{Site: hypercall.SiteCall, Kind: fault.KindLatency, Prob: 0.3, Delay: 4 * time.Millisecond},
	}}
}

func TestChaosLivenessGuestStacks(t *testing.T) {
	deadlines := os.Getenv("DD_CHAOS_DEADLINES") != "off"
	if env := os.Getenv("DD_CHAOS_SEED"); env != "" {
		seed, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("DD_CHAOS_SEED=%q: %v", env, err)
		}
		runChaosLiveness(t, transportOnlyPlan(fault.RandomPlan(seed)), deadlines, false)
		return
	}
	t.Run("stall-heavy", func(t *testing.T) {
		runChaosLiveness(t, stallHeavyPlan(1), deadlines, true)
	})
	for _, seed := range []int64{1, 7, 1337} {
		seed := seed
		t.Run("random-"+strconv.FormatInt(seed, 10), func(t *testing.T) {
			runChaosLiveness(t, transportOnlyPlan(fault.RandomPlan(seed)), deadlines, false)
		})
	}
}

// runChaosLiveness drives vms full guest stacks over a shared manager
// under plan, then asserts the liveness properties. mustBite requires the
// plan to actually have produced deadline pressure (the deterministic
// stall-heavy leg).
func runChaosLiveness(t *testing.T, plan fault.Plan, deadlines, mustBite bool) {
	const (
		vms        = 3
		fileBlocks = int64(512)
		burst      = int64(32)
		window     = 8
		memCap     = int64(64 << 20)
		stepEvery  = time.Millisecond
		runFor     = 300 * time.Millisecond
	)
	if warnings, err := plan.Validate(); err != nil || len(warnings) != 0 {
		t.Fatalf("chaos plan invalid: err=%v warnings=%v", err, warnings)
	}
	mgr := ddcache.NewManager(ddcache.Config{
		Mode: ddcache.ModeDD,
		Mem:  store.NewMem(blockdev.NewRAM("m.ram"), memCap),
	})
	oMem := store.NewMem(blockdev.NewRAM("o.ram"), memCap)
	orc := oracle.New(oracle.Config{Mode: oracle.ModeDD, Mem: oMem})

	type guestState struct {
		engine *sim.Engine
		vm     *guest.VM
		c      *guest.Container
		tee    *guestTee
		tr     *hypercall.Transport
		pool   cleancache.PoolID
		files  []*fsmodel.File
	}
	gs := make([]*guestState, vms)
	for v := 0; v < vms; v++ {
		id := cleancache.VMID(v + 1)
		mgr.RegisterVM(id, 100)
		orc.RegisterVM(id, 100)
		tee := &guestTee{inner: mgr}
		topts := hypercall.Options{
			AsyncGets:       true,
			ZeroCopy:        v%2 == 1,
			Faults:          fault.New(plan), // per-VM injector: deterministic per engine
			MaxInflightGets: 64,
			MaxQueuedOps:    256,
		}
		if deadlines {
			topts.OpBudget = chaosBudget
		}
		tr := hypercall.NewTransport(tee, topts)
		front := cleancache.NewFront(id, tr)
		engine := sim.New(int64(7100 + v))
		vmOpts := []guest.Option{
			guest.WithID(id),
			guest.WithMemBytes(80 << 20),
			guest.WithReadAheadWindow(window),
		}
		if deadlines {
			vmOpts = append(vmOpts, guest.WithWatchdogPeriod(chaosBudget/2))
		}
		vm := guest.NewVM(engine, front, vmOpts...)
		c := vm.NewContainer("chaos", 1<<20, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
		s := &guestState{
			engine: engine, vm: vm, c: c, tee: tee, tr: tr,
			pool: cleancache.PoolID(c.Group().PoolID()),
		}
		for i := 0; i < 2; i++ {
			s.files = append(s.files, vm.Allocator().Alloc(fileBlocks))
		}
		gs[v] = s
	}

	var wg sync.WaitGroup
	for _, s := range gs {
		wg.Add(1)
		go func(s *guestState) {
			defer wg.Done()
			total := int64(len(s.files)) * fileBlocks
			var pos, hot int64
			step := 0
			s.engine.Every(stepEvery, func() {
				now := s.engine.Now()
				for remaining := burst; remaining > 0; {
					f := s.files[pos/fileBlocks]
					off := pos % fileBlocks
					n := remaining
					if left := fileBlocks - off; n > left {
						n = left
					}
					s.c.Read(now, f, off, n)
					pos = (pos + n) % total
					remaining -= n
				}
				step++
				if step%4 == 0 {
					s.c.Write(now, s.files[0], hot, 4)
					hot = (hot + 4) % 32
				}
				if step%97 == 0 {
					s.c.Delete(now, s.files[1])
				}
			})
			s.engine.Run(runFor)
			s.vm.Shutdown()
		}(s)
	}
	wg.Wait()

	// Liveness properties, per VM, after quiesce (Shutdown closed each
	// transport).
	var totalDeadlineMisses, totalWatchdogFails int64
	for v, s := range gs {
		st := s.tr.Stats()
		if st.Waiters != 0 {
			t.Errorf("vm %d: %d waiters leaked", v+1, st.Waiters)
		}
		if st.StagedPages != 0 {
			t.Errorf("vm %d: %d blocks still staged", v+1, st.StagedPages)
		}
		if st.Pending != 0 {
			t.Errorf("vm %d: %d ops still buffered", v+1, st.Pending)
		}
		if deadlines && st.MaxGetLatency > chaosBudget {
			t.Errorf("vm %d: a get was charged %v, past the budget %v",
				v+1, st.MaxGetLatency, chaosBudget)
		}
		totalDeadlineMisses += st.DeadlineMisses
		totalWatchdogFails += st.WatchdogFails
	}
	if mustBite && deadlines && totalDeadlineMisses == 0 {
		t.Errorf("stall-heavy plan produced no deadline misses; the harness is not exercising the budget")
	}

	// Accounting conserved: replay the backend-observed streams through
	// the sequential oracle.
	for i := 0; ; i++ {
		exhausted := true
		for v, s := range gs {
			if i >= len(s.tee.log) {
				continue
			}
			exhausted = false
			rec := s.tee.log[i]
			resp := orc.Dispatch(0, rec.req)
			switch rec.req.Op {
			case cleancache.OpCreateCgroup:
				if resp.Pool != rec.pool {
					t.Fatalf("replay vm %d op %d: pool ids diverged (%d vs %d)", v+1, i, rec.pool, resp.Pool)
				}
			case cleancache.OpGet, cleancache.OpPut, cleancache.OpReadAhead:
				if resp.Ok != rec.ok || resp.Count != rec.count {
					t.Fatalf("replay vm %d op %d (%v %+v): chaos run said ok=%v count=%d, oracle says ok=%v count=%d",
						v+1, i, rec.req.Op, rec.req.Key, rec.ok, rec.count, resp.Ok, resp.Count)
				}
			}
		}
		if exhausted {
			break
		}
	}
	for v, s := range gs {
		got, want := mgr.PoolStats(0, s.pool), orc.PoolStats(0, s.pool)
		if got != want {
			t.Fatalf("vm %d pool %d final stats:\n  manager %+v\n  oracle  %+v", v+1, s.pool, got, want)
		}
		if gb, wb := mgr.PoolTotalBytes(s.pool), orc.PoolTotalBytes(s.pool); gb != wb {
			t.Fatalf("vm %d pool %d final bytes: manager %d, oracle %d", v+1, s.pool, gb, wb)
		}
	}
	if got, want := mgr.StoreUsedBytes(cgroup.StoreMem), oMem.UsedBytes(); got != want {
		t.Fatalf("final store usage: manager %d, oracle %d", got, want)
	}
	t.Logf("chaos seed %d: deadlines=%v misses=%d watchdog=%d ops replayed ok",
		plan.Seed, deadlines, totalDeadlineMisses, totalWatchdogFails)
}

// TestTeardownWithOutstandingAsyncWork is the crash-safe teardown audit:
// a VM is destroyed with async gets still riding the ring and staged
// readahead unconsumed. Every handle must land terminal (fail-to-miss),
// the transport tables must empty, and pool accounting must be fully
// released — verified differentially against the oracle.
func TestTeardownWithOutstandingAsyncWork(t *testing.T) {
	const memCap = int64(32 << 20)
	mgr := ddcache.NewManager(ddcache.Config{
		Mode: ddcache.ModeDD,
		Mem:  store.NewMem(blockdev.NewRAM("m.ram"), memCap),
	})
	oMem := store.NewMem(blockdev.NewRAM("o.ram"), memCap)
	orc := oracle.New(oracle.Config{Mode: oracle.ModeDD, Mem: oMem})

	id := cleancache.VMID(1)
	mgr.RegisterVM(id, 100)
	orc.RegisterVM(id, 100)
	tee := &guestTee{inner: mgr}
	tr := hypercall.NewTransport(tee, hypercall.Options{
		AsyncGets: true, ZeroCopy: true, OpBudget: chaosBudget,
	})
	front := cleancache.NewFront(id, tr)
	engine := sim.New(4242)
	vm := guest.NewVM(engine, front,
		guest.WithID(id),
		guest.WithMemBytes(80<<20),
		guest.WithReadAheadWindow(8),
		guest.WithWatchdogPeriod(chaosBudget/2),
	)
	c := vm.NewContainer("td", 1<<20, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	pool := cleancache.PoolID(c.Group().PoolID())
	f := vm.Allocator().Alloc(256)

	// Populate the hypervisor cache, then re-read to stage readahead
	// fills, leaving unconsumed staged blocks and buffered ops behind.
	engine.Every(time.Millisecond, func() {
		now := engine.Now()
		c.Read(now, f, 0, 256)
		c.Write(now, f, 0, 64) // evict from page cache? no — dirty + reread below
	})
	engine.Run(20 * time.Millisecond)

	// Park async gets in the ring directly (the guest path awaits its
	// handles; a crash does not): these are outstanding at teardown.
	var handles []*cleancache.PendingGet
	for b := int64(0); b < 8; b++ {
		pg, _ := tr.SubmitAsync(engine.Now(), cleancache.Request{
			Op: cleancache.OpGet, VM: id,
			Key: cleancache.Key{Pool: pool, Inode: uint64(f.Inode), Block: b},
		})
		handles = append(handles, pg)
	}

	// Teardown with all of it in flight.
	vm.DestroyContainer(c)
	vm.Shutdown()

	for i, pg := range handles {
		if !pg.Done() {
			t.Errorf("handle %d not terminal after teardown", i)
		}
	}
	st := tr.Stats()
	if st.Waiters != 0 || st.StagedPages != 0 || st.Pending != 0 {
		t.Fatalf("teardown left transport state: Waiters=%d StagedPages=%d Pending=%d",
			st.Waiters, st.StagedPages, st.Pending)
	}
	// Pool accounting fully released on both sides.
	if got := mgr.PoolTotalBytes(pool); got != 0 {
		t.Fatalf("manager pool %d still accounts %d bytes after teardown", pool, got)
	}
	for i := 0; i < len(tee.log); i++ {
		rec := tee.log[i]
		resp := orc.Dispatch(0, rec.req)
		switch rec.req.Op {
		case cleancache.OpGet, cleancache.OpPut, cleancache.OpReadAhead:
			if resp.Ok != rec.ok || resp.Count != rec.count {
				t.Fatalf("replay op %d (%v %+v): run said ok=%v count=%d, oracle says ok=%v count=%d",
					i, rec.req.Op, rec.req.Key, rec.ok, rec.count, resp.Ok, resp.Count)
			}
		}
	}
	if got, want := mgr.StoreUsedBytes(cgroup.StoreMem), oMem.UsedBytes(); got != want {
		t.Fatalf("final store usage: manager %d, oracle %d", got, want)
	}
}
