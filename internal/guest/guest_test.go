package guest

import (
	"testing"
	"time"

	"doubledecker/internal/blockdev"
	"doubledecker/internal/cgroup"
	"doubledecker/internal/cleancache"
	"doubledecker/internal/ddcache"
	"doubledecker/internal/hypercall"
	"doubledecker/internal/sim"
	"doubledecker/internal/store"
	"doubledecker/internal/trace"
)

const mib = 1 << 20

// rig wires a VM to a real DoubleDecker manager over a batched hypercall
// transport, the production wiring.
func rig(t *testing.T, memCache int64) (*sim.Engine, *ddcache.Manager, *VM) {
	t.Helper()
	engine := sim.New(1)
	mgr := ddcache.New(
		ddcache.WithMode(ddcache.ModeDD),
		ddcache.WithMemBackend(store.NewMem(blockdev.NewRAM("hostram"), memCache)),
	)
	mgr.RegisterVM(1, 100)
	front := cleancache.NewFront(1, hypercall.NewTransport(mgr, hypercall.Options{}))
	vm := New(engine, Config{ID: 1, MemBytes: 256 * mib}, front)
	return engine, mgr, vm
}

func TestNewContainerGetsPool(t *testing.T) {
	_, _, vm := rig(t, 64*mib)
	c := vm.NewContainer("c1", 32*mib, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	if c.Group().PoolID() == 0 {
		t.Fatal("container has no hypervisor cache pool")
	}
	if len(vm.Containers()) != 1 {
		t.Fatalf("Containers = %d", len(vm.Containers()))
	}
}

func TestContainerIORoundTrip(t *testing.T) {
	engine, _, vm := rig(t, 64*mib)
	c := vm.NewContainer("c1", 8*mib, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	f := vm.Allocator().Alloc(4096) // 16 MiB file > 8 MiB container
	lat := c.Read(engine.Now(), f, 0, f.Blocks)
	if lat <= 0 {
		t.Fatal("cold read was free")
	}
	// Second pass: early blocks were evicted into the hypervisor cache.
	lat2 := c.Read(engine.Now()+time.Second, f, 0, f.Blocks)
	if lat2 >= lat {
		t.Fatalf("second pass (%v) not faster than cold pass (%v)", lat2, lat)
	}
	cs := c.CacheStats()
	if cs.Puts == 0 || cs.GetHits == 0 {
		t.Fatalf("second-chance loop inactive: %+v", cs)
	}
}

func TestDestroyContainerDropsPoolAndPages(t *testing.T) {
	engine, mgr, vm := rig(t, 64*mib)
	c := vm.NewContainer("c1", 8*mib, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	f := vm.Allocator().Alloc(4096)
	c.Read(engine.Now(), f, 0, f.Blocks)
	pool := cleancache.PoolID(c.Group().PoolID())
	if mgr.PoolTotalBytes(pool) == 0 {
		t.Fatal("setup: pool empty")
	}
	vm.DestroyContainer(c)
	if mgr.PoolTotalBytes(pool) != 0 {
		t.Fatal("pool bytes survive container destroy")
	}
	if len(vm.Containers()) != 0 {
		t.Fatal("container list not updated")
	}
	if vm.PageCache().TotalPages() != 0 {
		t.Fatal("page cache pages survive container destroy")
	}
}

func TestSetSpecPropagates(t *testing.T) {
	engine, mgr, vm := rig(t, 64*mib)
	_ = engine
	c := vm.NewContainer("c1", 8*mib, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	c.SetSpec(cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 40})
	stats := mgr.PoolStats(1, cleancache.PoolID(c.Group().PoolID()))
	// Entitlement reflects the new weight (sole pool → full store anyway);
	// add a second pool to observe the split.
	c2 := vm.NewContainer("c2", 8*mib, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 60})
	stats = mgr.PoolStats(1, cleancache.PoolID(c.Group().PoolID()))
	stats2 := mgr.PoolStats(1, cleancache.PoolID(c2.Group().PoolID()))
	if stats.EntitlementBytes >= stats2.EntitlementBytes {
		t.Fatalf("weights not applied: %d vs %d", stats.EntitlementBytes, stats2.EntitlementBytes)
	}
}

func TestBackgroundFlusherCleans(t *testing.T) {
	engine, _, vm := rig(t, 64*mib)
	c := vm.NewContainer("c1", 64*mib, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	f := vm.Allocator().Alloc(256)
	c.Write(engine.Now(), f, 0, 256)
	if vm.PageCache().DirtyPages() == 0 {
		t.Fatal("setup: no dirty pages")
	}
	if err := engine.Run(10 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := vm.PageCache().DirtyPages(); got != 0 {
		t.Fatalf("flusher left %d dirty pages after 10s", got)
	}
}

func TestShutdownStopsFlusher(t *testing.T) {
	engine, _, vm := rig(t, 64*mib)
	vm.Shutdown()
	pending := engine.Pending()
	if err := engine.Run(time.Hour); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if engine.Pending() > pending {
		t.Fatal("flusher still scheduling after Shutdown")
	}
}

func TestVMWithoutFront(t *testing.T) {
	engine := sim.New(1)
	vm := New(engine, Config{ID: 1, MemBytes: 128 * mib}, nil)
	c := vm.NewContainer("c1", 16*mib, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	f := vm.Allocator().Alloc(8192)
	c.Read(engine.Now(), f, 0, f.Blocks)
	if cs := c.CacheStats(); cs != (cleancache.PoolStats{}) {
		t.Fatalf("frontless VM reported cache stats: %+v", cs)
	}
	if c.Group().FilePages() > c.Group().LimitPages() {
		t.Fatal("limit not enforced without front")
	}
}

func TestAnonOperations(t *testing.T) {
	engine, _, vm := rig(t, 64*mib)
	c := vm.NewContainer("redis", 16*mib, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	c.GrowAnon(engine.Now(), 8192) // 32 MiB into a 16 MiB container
	if c.Group().AnonResident() > c.Group().LimitPages() {
		t.Fatal("anon resident over limit")
	}
	if c.Group().Stats().SwapOutPages == 0 {
		t.Fatal("oversized anon growth did not swap")
	}
	lat := c.TouchAnon(engine.Now(), 64)
	if lat == 0 {
		t.Fatal("touching a half-swapped working set was free")
	}
}

func TestContainerAccessors(t *testing.T) {
	engine, _, vm := rig(t, 64*mib)
	_ = engine
	c := vm.NewContainer("c1", 16*mib, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	if c.Name() != "c1" || c.VM() != vm {
		t.Fatal("accessors broken")
	}
	c.SetMemLimit(32 * mib)
	if c.Group().LimitPages() != 32*mib/4096 {
		t.Fatalf("SetMemLimit: %d", c.Group().LimitPages())
	}
	if vm.ID() != 1 || vm.Engine() == nil || vm.Root() == nil || vm.Disk() == nil {
		t.Fatal("VM accessors broken")
	}
}

func TestFsyncAndDelete(t *testing.T) {
	engine, mgr, vm := rig(t, 64*mib)
	c := vm.NewContainer("mail", 8*mib, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	f := vm.Allocator().Alloc(16)
	c.Write(engine.Now(), f, 0, 16)
	if lat := c.Fsync(engine.Now(), f); lat < 8*time.Millisecond {
		t.Fatalf("fsync latency %v too low for a disk write", lat)
	}
	// Delete must flush second-chance state too.
	big := vm.Allocator().Alloc(4096)
	c.Read(engine.Now(), big, 0, big.Blocks) // spills
	pool := cleancache.PoolID(c.Group().PoolID())
	before := mgr.PoolUsedBytes(pool, cgroup.StoreMem)
	if before == 0 {
		t.Fatal("setup: nothing spilled before delete")
	}
	c.Delete(engine.Now(), big)
	// All of big's blocks must be flushed; f's few fsynced blocks may
	// legitimately remain cached.
	if hit, _ := vm.Front().Get(engine.Now(), c.Group(), uint64(big.Inode), 0); hit {
		t.Fatal("deleted file block still served by the second-chance cache")
	}
	if after := mgr.PoolUsedBytes(pool, cgroup.StoreMem); after > int64(f.Blocks)*4096 {
		t.Fatalf("delete left %d bytes cached (was %d)", after, before)
	}
}

func TestRecordTrace(t *testing.T) {
	engine, _, vm := rig(t, 64*mib)
	c := vm.NewContainer("traced", 32*mib, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	log := trace.NewLog()
	detach := vm.RecordTrace(log)
	f := vm.Allocator().Alloc(16)
	c.Read(engine.Now(), f, 0, 16)
	if log.Len() != 16 {
		t.Fatalf("recorded %d records, want 16", log.Len())
	}
	rec := log.Records()[0]
	if log.ContainerName(rec.Container) != "traced" || rec.Kind != trace.KindRead {
		t.Fatalf("record = %+v", rec)
	}
	detach()
	c.Read(engine.Now()+time.Second, f, 0, 4)
	if log.Len() != 16 {
		t.Fatal("recorder kept firing after detach")
	}
}
