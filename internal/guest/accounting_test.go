package guest

import (
	"math/rand"
	"testing"

	"doubledecker/internal/cgroup"
	"doubledecker/internal/fsmodel"
)

// TestAccountingInvariantUnderRandomOps hammers a two-container VM with a
// random operation mix and checks the cross-module accounting invariants
// after every burst:
//   - pagecache.TotalPages == Σ group FilePages
//   - every group stays within its cgroup limit
//   - anon residency never exceeds the working set
//   - hypervisor cache usage equals Σ pool usage (checked via store)
func TestAccountingInvariantUnderRandomOps(t *testing.T) {
	engine, mgr, vm := rig(t, 16*mib)
	c1 := vm.NewContainer("a", 8*mib, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 60})
	c2 := vm.NewContainer("b", 8*mib, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 40})
	rng := rand.New(rand.NewSource(99))

	var files []*fsmodel.File
	for i := 0; i < 12; i++ {
		files = append(files, vm.Allocator().Alloc(int64(rng.Intn(1024)+16)))
	}
	containers := []*Container{c1, c2}

	check := func(step int) {
		t.Helper()
		var sum int64
		for _, c := range containers {
			g := c.Group()
			sum += g.FilePages()
			if g.FilePages() < 0 || g.AnonResident() < 0 {
				t.Fatalf("step %d: negative accounting", step)
			}
			if g.LimitPages() > 0 && g.Usage() > g.LimitPages()+128 {
				t.Fatalf("step %d: group %s over limit: %d > %d",
					step, g.Name(), g.Usage(), g.LimitPages())
			}
			if g.AnonResident() > g.AnonWorkingSet() {
				t.Fatalf("step %d: anon resident exceeds working set", step)
			}
		}
		if got := vm.PageCache().TotalPages(); got != sum {
			t.Fatalf("step %d: page cache %d pages vs groups %d", step, got, sum)
		}
		var pools int64
		for _, c := range containers {
			pools += c.CacheStats().UsedBytes
		}
		if used := mgr.StoreUsedBytes(cgroup.StoreMem); used != pools {
			t.Fatalf("step %d: store %d bytes vs pools %d", step, used, pools)
		}
	}

	for step := 0; step < 400; step++ {
		c := containers[rng.Intn(len(containers))]
		f := files[rng.Intn(len(files))]
		now := engine.Now()
		switch rng.Intn(6) {
		case 0, 1:
			start := rng.Int63n(f.Blocks)
			c.Read(now, f, start, rng.Int63n(64)+1)
		case 2:
			start := rng.Int63n(f.Blocks)
			c.Write(now, f, start, rng.Int63n(16)+1)
		case 3:
			c.Fsync(now, f)
		case 4:
			c.GrowAnon(now, rng.Int63n(256))
		case 5:
			c.TouchAnon(now, rng.Int63n(32))
		}
		if step%20 == 0 {
			check(step)
		}
	}
	check(400)
}

// TestDeleteKeepsAccountingConsistent mixes deletions into the churn.
func TestDeleteKeepsAccountingConsistent(t *testing.T) {
	engine, mgr, vm := rig(t, 16*mib)
	c := vm.NewContainer("a", 8*mib, cgroup.HCacheSpec{Store: cgroup.StoreMem, Weight: 100})
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		f := vm.Allocator().Alloc(int64(rng.Intn(512) + 16))
		c.Read(engine.Now(), f, 0, f.Blocks)
		if rng.Intn(2) == 0 {
			c.Delete(engine.Now(), f)
		}
	}
	if got := vm.PageCache().TotalPages(); got != c.Group().FilePages() {
		t.Fatalf("page cache %d vs group %d", got, c.Group().FilePages())
	}
	if used := mgr.StoreUsedBytes(cgroup.StoreMem); used != c.CacheStats().UsedBytes {
		t.Fatalf("store %d vs pool %d", used, c.CacheStats().UsedBytes)
	}
}
