// Package fsmodel models the guest file systems under the simulated page
// cache: file sets (directories of files in the Filebench sense), inode
// numbering, and the mapping from (file, block) to byte extents on the
// backing virtual disk. Sequential file access therefore translates to
// sequential disk access, which the HDD model rewards — the same effect
// that shapes the paper's videoserver and webserver numbers.
package fsmodel

import (
	"fmt"
	"math/rand"
)

// BlockSize is the unit of caching and I/O: one guest OS page.
const BlockSize = 4096

// FileID is an inode number, unique within a VM.
type FileID uint64

// File is one file in a file set: a run of blocks laid out contiguously on
// the backing disk.
type File struct {
	Inode      FileID
	Blocks     int64 // length in BlockSize units
	DiskOffset int64 // byte offset of block 0 on the backing device
	// template, when set, means this file was created as a copy of
	// another (VM images, golden files): its blocks carry the template's
	// content identity, which content-deduplicating cache stores exploit.
	template *File
}

// Size returns the file length in bytes.
func (f *File) Size() int64 { return f.Blocks * BlockSize }

// ContentKey returns a stable identity for the content of a block: copies
// of a template share the template's keys, everything else is unique per
// (inode, block). Cache stores use it for deduplication.
func (f *File) ContentKey(block int64) uint64 {
	if f.template != nil && block < f.template.Blocks {
		return f.template.ContentKey(block)
	}
	return mixContent(uint64(f.Inode), uint64(block))
}

// mixContent is SplitMix64 over the (inode, block) pair.
func mixContent(a, b uint64) uint64 {
	x := a*0x9e3779b97f4a7c15 + b
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// BlockOffset returns the disk byte offset of the given file block.
func (f *File) BlockOffset(block int64) int64 {
	return f.DiskOffset + block*BlockSize
}

// Allocator hands out inode numbers and disk extents for one virtual disk.
// It is a simple bump allocator: files never move, deletions leave holes
// (the simulation does not model disk-space reuse; capacity is not a
// constraint in any experiment).
type Allocator struct {
	nextInode FileID
	nextByte  int64
}

// NewAllocator returns an allocator starting at inode 1, disk offset 0.
func NewAllocator() *Allocator {
	return &Allocator{nextInode: 1}
}

// Alloc creates a file of the given number of blocks.
func (a *Allocator) Alloc(blocks int64) *File {
	if blocks < 1 {
		blocks = 1
	}
	f := &File{Inode: a.nextInode, Blocks: blocks, DiskOffset: a.nextByte}
	a.nextInode++
	a.nextByte += blocks * BlockSize
	return f
}

// AllocCopy creates a file whose content duplicates src (a clone of a
// golden image): new inode, new extent, shared content identity.
func (a *Allocator) AllocCopy(src *File) *File {
	f := a.Alloc(src.Blocks)
	f.template = src
	return f
}

// Allocated reports the total bytes ever allocated on the disk.
func (a *Allocator) Allocated() int64 { return a.nextByte }

// FileSet is a named collection of files, the unit Filebench profiles
// operate over. Files may be replaced in place (delete+create churn).
type FileSet struct {
	Name  string
	files []*File
	total int64 // blocks
}

// SizeDist describes a file-size distribution in blocks.
type SizeDist struct {
	MeanBlocks int64
	// Spread selects a uniform range [Mean-Spread, Mean+Spread]; zero
	// means all files have exactly MeanBlocks.
	Spread int64
}

func (d SizeDist) sample(rng *rand.Rand) int64 {
	if d.Spread <= 0 {
		if d.MeanBlocks < 1 {
			return 1
		}
		return d.MeanBlocks
	}
	lo := d.MeanBlocks - d.Spread
	if lo < 1 {
		lo = 1
	}
	hi := d.MeanBlocks + d.Spread
	return lo + rng.Int63n(hi-lo+1)
}

// NewFileSet allocates count files with sizes drawn from dist.
func NewFileSet(name string, alloc *Allocator, count int, dist SizeDist, rng *rand.Rand) *FileSet {
	fs := &FileSet{Name: name, files: make([]*File, 0, count)}
	for i := 0; i < count; i++ {
		f := alloc.Alloc(dist.sample(rng))
		fs.files = append(fs.files, f)
		fs.total += f.Blocks
	}
	return fs
}

// Count reports the number of files in the set.
func (fs *FileSet) Count() int { return len(fs.files) }

// File returns the i-th file.
func (fs *FileSet) File(i int) *File { return fs.files[i] }

// TotalBlocks reports the aggregate size of the set in blocks.
func (fs *FileSet) TotalBlocks() int64 { return fs.total }

// TotalBytes reports the aggregate size of the set in bytes.
func (fs *FileSet) TotalBytes() int64 { return fs.total * BlockSize }

// Replace models delete+create churn: the i-th file is replaced by a fresh
// file (new inode, new extent) of the given size. It returns the old file
// so the caller can invalidate its cached blocks.
func (fs *FileSet) Replace(i int, alloc *Allocator, dist SizeDist, rng *rand.Rand) (old, created *File) {
	old = fs.files[i]
	created = alloc.Alloc(dist.sample(rng))
	fs.files[i] = created
	fs.total += created.Blocks - old.Blocks
	return old, created
}

// Append grows the i-th file by n blocks (log appends, mail delivery).
func (fs *FileSet) Append(i int, n int64) {
	fs.files[i].Blocks += n
	fs.total += n
}

// String implements fmt.Stringer for debugging.
func (fs *FileSet) String() string {
	return fmt.Sprintf("fileset %s: %d files, %d blocks (%.1f MiB)",
		fs.Name, len(fs.files), fs.total, float64(fs.total*BlockSize)/(1<<20))
}
