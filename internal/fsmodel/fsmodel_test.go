package fsmodel

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllocatorDisjointExtents(t *testing.T) {
	a := NewAllocator()
	f1 := a.Alloc(10)
	f2 := a.Alloc(5)
	if f1.Inode == f2.Inode {
		t.Fatal("inodes not unique")
	}
	end1 := f1.DiskOffset + f1.Size()
	if f2.DiskOffset < end1 {
		t.Fatalf("extents overlap: f1 ends %d, f2 starts %d", end1, f2.DiskOffset)
	}
	if a.Allocated() != 15*BlockSize {
		t.Fatalf("Allocated = %d, want %d", a.Allocated(), 15*BlockSize)
	}
}

func TestAllocMinimumOneBlock(t *testing.T) {
	a := NewAllocator()
	f := a.Alloc(0)
	if f.Blocks != 1 {
		t.Fatalf("Blocks = %d, want 1", f.Blocks)
	}
}

func TestBlockOffsetSequential(t *testing.T) {
	a := NewAllocator()
	a.Alloc(3) // displace start
	f := a.Alloc(4)
	for b := int64(1); b < f.Blocks; b++ {
		if f.BlockOffset(b) != f.BlockOffset(b-1)+BlockSize {
			t.Fatalf("block %d not contiguous", b)
		}
	}
}

func TestNewFileSetFixedSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewAllocator()
	fs := NewFileSet("web", a, 100, SizeDist{MeanBlocks: 4}, rng)
	if fs.Count() != 100 {
		t.Fatalf("Count = %d", fs.Count())
	}
	if fs.TotalBlocks() != 400 {
		t.Fatalf("TotalBlocks = %d, want 400", fs.TotalBlocks())
	}
	if fs.TotalBytes() != 400*BlockSize {
		t.Fatalf("TotalBytes = %d", fs.TotalBytes())
	}
}

func TestNewFileSetSpreadBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := NewAllocator()
	fs := NewFileSet("v", a, 500, SizeDist{MeanBlocks: 10, Spread: 5}, rng)
	for i := 0; i < fs.Count(); i++ {
		b := fs.File(i).Blocks
		if b < 5 || b > 15 {
			t.Fatalf("file %d has %d blocks, want [5,15]", i, b)
		}
	}
}

func TestReplaceChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := NewAllocator()
	fs := NewFileSet("proxy", a, 10, SizeDist{MeanBlocks: 4}, rng)
	before := fs.TotalBlocks()
	old, created := fs.Replace(3, a, SizeDist{MeanBlocks: 8}, rng)
	if old.Inode == created.Inode {
		t.Fatal("replacement reused inode")
	}
	if fs.File(3) != created {
		t.Fatal("fileset slot not updated")
	}
	if fs.TotalBlocks() != before-old.Blocks+created.Blocks {
		t.Fatalf("TotalBlocks not adjusted: %d", fs.TotalBlocks())
	}
}

func TestAppendGrowsFile(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := NewAllocator()
	fs := NewFileSet("log", a, 1, SizeDist{MeanBlocks: 1}, rng)
	fs.Append(0, 5)
	if fs.File(0).Blocks != 6 {
		t.Fatalf("Blocks = %d, want 6", fs.File(0).Blocks)
	}
	if fs.TotalBlocks() != 6 {
		t.Fatalf("TotalBlocks = %d, want 6", fs.TotalBlocks())
	}
}

// Property: inodes are unique and sizes within distribution bounds for any
// construction parameters.
func TestPropertyFileSetInvariants(t *testing.T) {
	prop := func(count uint8, mean, spread uint8) bool {
		rng := rand.New(rand.NewSource(5))
		a := NewAllocator()
		n := int(count%64) + 1
		fs := NewFileSet("p", a, n, SizeDist{MeanBlocks: int64(mean % 32), Spread: int64(spread % 8)}, rng)
		seen := make(map[FileID]bool, n)
		var sum int64
		for i := 0; i < fs.Count(); i++ {
			f := fs.File(i)
			if f.Blocks < 1 || seen[f.Inode] {
				return false
			}
			seen[f.Inode] = true
			sum += f.Blocks
		}
		return sum == fs.TotalBlocks()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestContentKeyStableAndUnique(t *testing.T) {
	a := NewAllocator()
	f1 := a.Alloc(8)
	f2 := a.Alloc(8)
	if f1.ContentKey(0) != f1.ContentKey(0) {
		t.Fatal("content key not stable")
	}
	if f1.ContentKey(0) == f1.ContentKey(1) {
		t.Fatal("blocks of one file share content")
	}
	if f1.ContentKey(0) == f2.ContentKey(0) {
		t.Fatal("independent files share content")
	}
}

func TestAllocCopySharesContent(t *testing.T) {
	a := NewAllocator()
	golden := a.Alloc(8)
	clone := a.AllocCopy(golden)
	if clone.Inode == golden.Inode {
		t.Fatal("clone reused inode")
	}
	if clone.DiskOffset == golden.DiskOffset {
		t.Fatal("clone reused extent")
	}
	for b := int64(0); b < 8; b++ {
		if clone.ContentKey(b) != golden.ContentKey(b) {
			t.Fatalf("block %d content diverges", b)
		}
	}
	// A clone of a clone still maps to the golden content.
	grand := a.AllocCopy(clone)
	if grand.ContentKey(3) != golden.ContentKey(3) {
		t.Fatal("transitive clone content diverges")
	}
}
