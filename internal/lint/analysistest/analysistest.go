// Package analysistest runs a ddlint analyzer over fixture packages and
// checks its diagnostics against // want "regexp" comments, following the
// conventions of golang.org/x/tools/go/analysis/analysistest (which this
// stdlib-only harness substitutes for): fixtures live under
// testdata/src/<pkg>, and every diagnostic must be matched by a want
// expectation on its line, and vice versa.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"doubledecker/internal/lint"
)

// TestDataDir returns the conventional fixture root, ./testdata.
func TestDataDir(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	return abs
}

// expectation is one // want "re" directive.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads each fixture package from testdata/src/<pkg>, applies the
// analyzer, and reports mismatches between diagnostics and // want
// comments through t.
func Run(t *testing.T, testdata string, a *lint.Analyzer, pkgs ...string) {
	t.Helper()
	loader := lint.NewDirLoader(filepath.Join(testdata, "src"))
	for _, pkgPath := range pkgs {
		pkg, err := loader.Load(pkgPath)
		if err != nil {
			t.Errorf("loading fixture %q: %v", pkgPath, err)
			continue
		}
		expects, err := parseExpectations(loader, pkg)
		if err != nil {
			t.Errorf("fixture %q: %v", pkgPath, err)
			continue
		}
		diags := lint.Analyze(pkg, loader, []*lint.Analyzer{a})
		for _, d := range diags {
			pos := loader.Fset.Position(d.Pos)
			if !match(expects, pos.Filename, pos.Line, d.Message) {
				t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
			}
		}
		for _, e := range expects {
			if !e.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", e.file, e.line, e.raw)
			}
		}
	}
}

func match(expects []*expectation, file string, line int, msg string) bool {
	for _, e := range expects {
		if !e.matched && e.file == file && e.line == line && e.re.MatchString(msg) {
			e.matched = true
			return true
		}
	}
	return false
}

// wantRE locates a want directive; the quoted patterns that follow are
// parsed by parseQuoted.
var wantRE = regexp.MustCompile("want\\s+([\"`].*)$")

func parseExpectations(loader *lint.Loader, pkg *lint.Package) ([]*expectation, error) {
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := loader.Fset.Position(c.Pos())
				patterns, err := parseQuoted(m[1])
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want directive: %v", pos.Filename, pos.Line, err)
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, p, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: p})
				}
			}
		}
	}
	return out, nil
}

// parseQuoted splits `"a" "b"` (or backquoted patterns) into its
// Go-unquoted segments. Text after the last pattern (prose trailing the
// directive) is ignored, matching x/tools analysistest.
func parseQuoted(s string) ([]string, error) {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" || (s[0] != '"' && s[0] != '`') {
			if len(out) == 0 {
				return nil, fmt.Errorf("expected quoted pattern at %q", s)
			}
			return out, nil
		}
		quote := s[0]
		end := 1
		for end < len(s) {
			if quote == '"' && s[end] == '\\' {
				end += 2
				continue
			}
			if s[end] == quote {
				break
			}
			end++
		}
		if end >= len(s) {
			return nil, fmt.Errorf("unterminated pattern %q", s)
		}
		p, err := strconv.Unquote(s[:end+1])
		if err != nil {
			return nil, err
		}
		out = append(out, p)
		s = s[end+1:]
	}
}
