// Package atomiccheck enforces all-or-nothing atomicity per field: a
// struct field (or package/function-level variable) that is accessed
// through sync/atomic functions anywhere in the package must never be
// read or written with plain loads/stores elsewhere — mixing the two is
// a data race the race detector only catches when both sides happen to
// run under test. Fields declared with the modern atomic types
// (atomic.Int64, atomic.Bool, ...) are method-only by construction, so
// for them the analyzer bans value copies instead (copying tears the
// counter out of the shared location; go vet's copylocks catches only
// some spellings).
//
// An intentional exception is waived with // ddlint:atomic-ok on the
// offending line.
package atomiccheck

import (
	"go/ast"
	"go/types"

	"doubledecker/internal/lint"
)

// Analyzer is the atomiccheck pass.
var Analyzer = &lint.Analyzer{
	Name: "atomiccheck",
	Doc:  "fields touched via sync/atomic must not also be accessed with plain loads/stores; atomic.* typed fields must not be copied",
	Run:  run,
}

func run(pass *lint.Pass) error {
	c := &checker{pass: pass, legacy: make(map[*types.Var]ast.Node)}
	// Pass 1: find every &x handed to a sync/atomic function.
	pass.Inspect(c.collectLegacy)
	// Pass 2: flag plain accesses of those objects, and copies of
	// atomic.*-typed fields.
	for _, f := range pass.Files {
		c.waived = lint.MarkerLines(pass.Fset, f, "atomic-ok")
		c.checkFile(f)
	}
	return nil
}

type checker struct {
	pass   *lint.Pass
	legacy map[*types.Var]ast.Node // object -> first atomic access site
	waived map[int]bool            // lines with ddlint:atomic-ok
}

// collectLegacy records objects whose address is passed to a sync/atomic
// package function (atomic.AddInt64(&s.n, 1) and friends).
func (c *checker) collectLegacy(n ast.Node) bool {
	call, ok := n.(*ast.CallExpr)
	if !ok || !c.isAtomicCall(call) {
		return true
	}
	for _, arg := range call.Args {
		unary, ok := arg.(*ast.UnaryExpr)
		if !ok || unary.Op.String() != "&" {
			continue
		}
		if v := c.objectOf(unary.X); v != nil {
			if _, seen := c.legacy[v]; !seen {
				c.legacy[v] = arg
			}
		}
	}
	return true
}

// checkFile walks one file with a parent stack, classifying every use of
// a tracked object by its syntactic context.
func (c *checker) checkFile(f *ast.File) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.SelectorExpr:
			c.checkUse(n, n.Sel, stack)
		case *ast.Ident:
			// Bare idents cover local/package-level vars; struct fields
			// always appear via selectors (composite-literal keys are
			// idents but are definitions of initial value, not racy
			// shared access, and locals at their declaration site are
			// filtered by Uses).
			if len(stack) >= 2 {
				if _, isSel := stack[len(stack)-2].(*ast.SelectorExpr); isSel {
					return true // handled by the selector case
				}
			}
			c.checkUse(n, n, stack)
		}
		return true
	})
}

// checkUse validates one appearance of expr (whose name ident is id).
func (c *checker) checkUse(expr ast.Expr, id *ast.Ident, stack []ast.Node) {
	v := c.objectOf(expr)
	if v == nil {
		return
	}
	line := c.pass.Fset.Position(id.Pos()).Line
	if c.waived[line] {
		return
	}
	if first, isLegacy := c.legacy[v]; isLegacy {
		if c.inAtomicAddressOf(stack) {
			return
		}
		firstPos := c.pass.Fset.Position(first.Pos())
		c.pass.Reportf(id.Pos(), "plain access to %s, which is accessed with sync/atomic at %s:%d; "+
			"use atomic operations everywhere (or waive with // ddlint:atomic-ok)",
			v.Name(), firstPos.Filename, firstPos.Line)
		return
	}
	if isAtomicType(v.Type()) && !c.inMethodOrAddressContext(stack) {
		c.pass.Reportf(id.Pos(), "copy of atomic value %s (%s); call its methods or take its address instead",
			v.Name(), v.Type().String())
	}
}

// objectOf resolves a selector or ident to the variable it denotes:
// struct fields via Selections, plain variables via Uses.
func (c *checker) objectOf(expr ast.Expr) *types.Var {
	switch expr := expr.(type) {
	case *ast.SelectorExpr:
		sel, ok := c.pass.TypesInfo.Selections[expr]
		if !ok || sel.Kind() != types.FieldVal {
			return nil
		}
		v, _ := sel.Obj().(*types.Var)
		return v
	case *ast.Ident:
		v, _ := c.pass.TypesInfo.Uses[expr].(*types.Var)
		if v != nil && v.IsField() {
			return nil // composite-literal key
		}
		return v
	}
	return nil
}

// inAtomicAddressOf reports whether the innermost expression sits in
// &x as an argument of a sync/atomic call.
func (c *checker) inAtomicAddressOf(stack []ast.Node) bool {
	if len(stack) < 3 {
		return false
	}
	unary, ok := stack[len(stack)-2].(*ast.UnaryExpr)
	if !ok || unary.Op.String() != "&" {
		return false
	}
	call, ok := stack[len(stack)-3].(*ast.CallExpr)
	return ok && c.isAtomicCall(call)
}

// inMethodOrAddressContext reports whether an atomic-typed value is used
// safely: as the receiver of a method call/value (x.n.Load()), behind an
// address-of, or merely as the base of a longer selector path.
func (c *checker) inMethodOrAddressContext(stack []ast.Node) bool {
	self := stack[len(stack)-1]
	for i := len(stack) - 2; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.SelectorExpr:
			if parent.X != self {
				return true // we are the Sel of an enclosing selector; judged there
			}
			if sel, ok := c.pass.TypesInfo.Selections[parent]; ok &&
				(sel.Kind() == types.MethodVal || sel.Kind() == types.MethodExpr) {
				return true
			}
			self = parent
		case *ast.UnaryExpr:
			return parent.Op.String() == "&"
		case *ast.ParenExpr:
			self = parent
		default:
			return false
		}
	}
	return false
}

// isAtomicCall reports whether call invokes a sync/atomic package-level
// function.
func (c *checker) isAtomicCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// isAtomicType reports whether t is one of the sync/atomic value types.
func isAtomicType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}
