package atomiccheck_test

import (
	"testing"

	"doubledecker/internal/lint/analysistest"
	"doubledecker/internal/lint/atomiccheck"
)

func TestAtomiccheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestDataDir(t), atomiccheck.Analyzer, "a")
}
