package a

import "sync/atomic"

type counters struct {
	hits  int64 // accessed via sync/atomic in Inc; plain access is a race
	total atomic.Int64
	name  string
}

func (c *counters) Inc() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counters) Load() int64 {
	return atomic.LoadInt64(&c.hits)
}

func (c *counters) Bad() int64 {
	return c.hits // want `plain access to hits`
}

func (c *counters) BadWrite() {
	c.hits = 0 // want `plain access to hits`
}

func (c *counters) Waived() int64 {
	return c.hits // ddlint:atomic-ok — only called before the workers start
}

func (c *counters) GoodTotal() int64 {
	return c.total.Load()
}

func (c *counters) CopyTotal() int64 {
	t := c.total // want `copy of atomic value total`
	return t.Load()
}

func (c *counters) PointerTotal() *atomic.Int64 {
	return &c.total // taking the address shares, not copies
}

func (c *counters) Name() string {
	return c.name // untracked fields are unrestricted
}

type plain struct {
	n int64
}

func (p *plain) Inc() {
	p.n++ // never touched by sync/atomic anywhere: fine
}
