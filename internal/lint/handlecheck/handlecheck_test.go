package handlecheck_test

import (
	"testing"

	"doubledecker/internal/lint/analysistest"
	"doubledecker/internal/lint/handlecheck"
)

func TestHandleCheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestDataDir(t), handlecheck.Analyzer, "a")
}
