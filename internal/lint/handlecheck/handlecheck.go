// Package handlecheck enforces the linear lifecycle of async handles: a
// value of a type annotated // ddlint:linear (the PendingGet/PendingRead
// family, whose pending→done→resolved protocol PR 6–7 built the read
// path on) must be consumed on every path of the function that obtained
// it. Consumption is any of:
//
//   - calling a method annotated // ddlint:consumes on it
//     (Resolve/Fail — the terminal transitions);
//   - handing it off: passing it as a call argument (AwaitRead, append,
//     a resolver), returning it, or storing it into a field, map,
//     slice element or composite literal (the waiters-table insert) —
//     the new holder owns the obligation.
//
// Two leak shapes are reported: a handle that is never consumed
// anywhere in the function, and a return statement crossed while a
// created handle is still unconsumed (the early-return drop that
// leaves a waiter entry dangling forever). Returns inside a branch
// whose condition mentions the handle are exempt — a `if pr == nil`
// guard is handle-aware, not a leak. A reviewed drop is waived with
// // ddlint:abandon <reason> on the return's line (or the creation's
// line, for the never-consumed report).
//
// Only locally-obtained handles are tracked — variables bound from a
// call result or composite literal of a linear type. Parameters are
// borrowed (the caller owns them), and expressions consumed without
// ever being named need no tracking.
package handlecheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"doubledecker/internal/lint"
)

// Analyzer is the handlecheck pass.
var Analyzer = &lint.Analyzer{
	Name: "handlecheck",
	Doc:  "ddlint:linear handles must reach a ddlint:consumes call or a handoff on every path",
	Run:  run,
}

type checker struct {
	pass *lint.Pass
	// linear memoizes per-named-type ddlint:linear lookups.
	linear map[*types.Named]bool
	// consumes memoizes per-method ddlint:consumes lookups.
	consumes map[*types.Func]bool
}

// handle is one tracked linear value inside a function body.
type handle struct {
	obj     types.Object
	name    string
	created token.Pos
	// consumed records every consumption position, in walk order.
	consumed []token.Pos
}

func run(pass *lint.Pass) error {
	c := &checker{
		pass:     pass,
		linear:   make(map[*types.Named]bool),
		consumes: make(map[*types.Func]bool),
	}
	for _, f := range pass.Files {
		waived := lint.MarkerLines(pass.Fset, f, "abandon")
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkFunc(fd, waived)
		}
	}
	return nil
}

func (c *checker) checkFunc(fd *ast.FuncDecl, waived map[int]bool) {
	handles := c.collectHandles(fd)
	if len(handles) == 0 {
		return
	}
	c.collectConsumptions(fd, handles)

	line := func(pos token.Pos) int { return c.pass.Fset.Position(pos).Line }

	for _, h := range handles {
		if len(h.consumed) == 0 {
			if !waived[line(h.created)] {
				c.pass.Reportf(h.created, "linear handle %s is never resolved, failed, or handed off in this function: "+
					"consume it on every path or waive the reviewed drop with ddlint:abandon <reason>", h.name)
			}
			continue
		}
		// Early-return leaks: a return crossed after creation but
		// before the first consumption, outside a handle-aware branch.
		first := h.consumed[0]
		for _, ret := range c.returnsBetween(fd, h, first) {
			if waived[line(ret)] {
				continue
			}
			c.pass.Reportf(ret, "linear handle %s is abandoned on this return path (consumed only later at line %d): "+
				"resolve, fail, or hand it off before returning, or waive with ddlint:abandon <reason>",
				h.name, line(first))
		}
	}
}

// collectHandles finds locally-created linear values: short-variable or
// assignment bindings whose RHS is a call or composite literal
// producing a linear-typed value.
func (c *checker) collectHandles(fd *ast.FuncDecl) []*handle {
	var handles []*handle
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		creating := false
		for _, rhs := range as.Rhs {
			switch r := rhs.(type) {
			case *ast.CallExpr:
				creating = true
			case *ast.CompositeLit:
				creating = true
			case *ast.UnaryExpr:
				if _, ok := r.X.(*ast.CompositeLit); ok {
					creating = true
				}
			}
		}
		if !creating {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := c.pass.TypesInfo.ObjectOf(id)
			if obj == nil {
				continue
			}
			if named := namedOf(obj.Type()); named == nil || !c.isLinear(named) {
				continue
			}
			// Only the binding occurrence counts as creation; a plain
			// reassignment of a tracked variable keeps the original
			// handle record.
			if def, isDef := c.pass.TypesInfo.Defs[id]; !isDef || def == nil {
				if !containsObj(handles, obj) {
					handles = append(handles, &handle{obj: obj, name: id.Name, created: id.Pos()})
				}
				continue
			}
			handles = append(handles, &handle{obj: obj, name: id.Name, created: id.Pos()})
		}
		return true
	})
	return handles
}

func containsObj(handles []*handle, obj types.Object) bool {
	for _, h := range handles {
		if h.obj == obj {
			return true
		}
	}
	return false
}

// collectConsumptions records every position where a tracked handle is
// consumed: consuming method receiver, call argument, return value, or
// the right-hand side of a store.
func (c *checker) collectConsumptions(fd *ast.FuncDecl, handles []*handle) {
	byObj := make(map[types.Object]*handle, len(handles))
	for _, h := range handles {
		byObj[h.obj] = h
	}
	mark := func(e ast.Expr, pos token.Pos) {
		id, ok := e.(*ast.Ident)
		if !ok {
			return
		}
		if h, ok := byObj[c.pass.TypesInfo.ObjectOf(id)]; ok && pos > h.created {
			h.consumed = append(h.consumed, pos)
		}
	}
	markTree := func(e ast.Expr, pos token.Pos) {
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				mark(id, pos)
			}
			return true
		})
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			for _, arg := range n.Args {
				markTree(arg, n.Pos())
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if m, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && c.isConsuming(m) {
					mark(sel.X, n.Pos())
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				markTree(res, n.Pos())
			}
		case *ast.AssignStmt:
			// A store hands the handle to the LHS's owner (map insert,
			// field set, slice element, plain alias).
			for _, rhs := range n.Rhs {
				switch rhs.(type) {
				case *ast.Ident:
					mark(rhs.(*ast.Ident), n.Pos())
				default:
					markTree(rhs, n.Pos())
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				markTree(elt, n.Pos())
			}
		case *ast.SendStmt:
			markTree(n.Value, n.Pos())
		}
		return true
	})
}

// returnsBetween finds return statements lexically after h's creation
// and before its first consumption, excluding returns under a branch
// whose condition mentions the handle (nil guards are handle-aware).
func (c *checker) returnsBetween(fd *ast.FuncDecl, h *handle, firstUse token.Pos) []token.Pos {
	var out []token.Pos
	var guards []*ast.IfStmt
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.IfStmt:
			guards = append(guards, n)
			if n.Init != nil {
				ast.Inspect(n.Init, visit)
			}
			ast.Inspect(n.Body, visit)
			if n.Else != nil {
				ast.Inspect(n.Else, visit)
			}
			guards = guards[:len(guards)-1]
			return false
		case *ast.ReturnStmt:
			if n.Pos() <= h.created || n.Pos() >= firstUse {
				return true
			}
			for _, g := range guards {
				if g.Cond != nil && mentionsObj(g.Cond, h.obj, c.pass.TypesInfo) {
					return true
				}
			}
			out = append(out, n.Pos())
		}
		return true
	}
	ast.Inspect(fd.Body, visit)
	return out
}

func mentionsObj(e ast.Expr, obj types.Object, info *types.Info) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// isLinear reports whether the named type carries ddlint:linear on its
// declaration.
func (c *checker) isLinear(n *types.Named) bool {
	if v, ok := c.linear[n]; ok {
		return v
	}
	v := false
	obj := n.Obj()
	for _, f := range c.pass.FilesFor(obj.Pkg()) {
		if obj.Pos() < f.Pos() || obj.Pos() > f.End() {
			continue
		}
		ast.Inspect(f, func(node ast.Node) bool {
			if v {
				return false
			}
			switch node := node.(type) {
			case *ast.GenDecl:
				if node.Pos() <= obj.Pos() && obj.Pos() <= node.End() && lint.HasAnnotation(node.Doc, "linear") {
					v = true
					return false
				}
			case *ast.TypeSpec:
				if node.Name.Pos() == obj.Pos() &&
					(lint.HasAnnotation(node.Doc, "linear") || lint.HasAnnotation(node.Comment, "linear")) {
					v = true
					return false
				}
			}
			return true
		})
	}
	c.linear[n] = v
	return v
}

// isConsuming reports whether the method carries ddlint:consumes.
func (c *checker) isConsuming(fn *types.Func) bool {
	if v, ok := c.consumes[fn]; ok {
		return v
	}
	v := false
	for _, f := range c.pass.FilesFor(fn.Pkg()) {
		if fn.Pos() < f.Pos() || fn.Pos() > f.End() {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Pos() == fn.Pos() {
				v = lint.HasAnnotation(fd.Doc, "consumes")
				break
			}
		}
	}
	c.consumes[fn] = v
	return v
}

// namedOf strips pointers down to the named type.
func namedOf(t types.Type) *types.Named {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	n, _ := t.(*types.Named)
	return n
}
