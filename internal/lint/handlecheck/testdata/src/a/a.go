// Package a exercises handlecheck: linear handles leaked, abandoned on
// early returns, consumed through each handoff shape, and waived.
package a

// ticket mirrors the PendingGet lifecycle: linear, consumed by
// Resolve/Fail or handed off.
// ddlint:linear
type ticket struct{ done bool }

func newTicket() *ticket { return &ticket{} }

// Resolve terminally consumes the ticket.
// ddlint:consumes
func (t *ticket) Resolve() {}

// Fail terminally consumes the ticket.
// ddlint:consumes
func (t *ticket) Fail() {}

// Peek observes without consuming.
func (t *ticket) Peek() bool { return t.done }

func maybeTicket(ok bool) *ticket {
	if !ok {
		return nil
	}
	return newTicket()
}

type table struct{ waiters map[uint64]*ticket }

func register(t *ticket) {}

func resolved() {
	t := newTicket()
	t.Peek()
	t.Resolve()
}

func leak() {
	t := newTicket() // want `linear handle t is never resolved, failed, or handed off`
	t.Peek()
}

func earlyReturn(cond bool) {
	t := newTicket()
	if cond {
		return // want `linear handle t is abandoned on this return path`
	}
	t.Fail()
}

func waivedLeak(cond bool) {
	t := newTicket() // ddlint:abandon teardown-only benchmark shape
	t.Peek()
	if cond {
		return
	}
}

func waivedReturn(cond bool) {
	t := newTicket()
	if cond {
		return // ddlint:abandon caller re-submits on contention
	}
	t.Resolve()
}

// handoffs: argument, map insert, composite literal, channel send,
// return value — each transfers the obligation.
func handoffArg() {
	t := newTicket()
	register(t)
}

func handoffMap(tb *table, tag uint64) {
	t := newTicket()
	tb.waiters[tag] = t
}

func handoffLit() *table {
	t := newTicket()
	return &table{waiters: map[uint64]*ticket{0: t}}
}

func handoffChan(ch chan *ticket) {
	t := newTicket()
	ch <- t
}

func handoffReturn() *ticket {
	t := newTicket()
	t.Peek()
	return t
}

// nilGuard returns inside a handle-aware branch: not a leak.
func nilGuard(ok bool) {
	t := maybeTicket(ok)
	if t == nil {
		return
	}
	t.Resolve()
}

// borrowed parameters are the caller's obligation.
func borrowed(t *ticket) {
	t.Peek()
}
