package immutcheck_test

import (
	"testing"

	"doubledecker/internal/lint/analysistest"
	"doubledecker/internal/lint/immutcheck"
)

func TestImmutCheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestDataDir(t), immutcheck.Analyzer, "a")
}
