// Package a exercises immutcheck: post-publish snapshot writes against
// the three legitimate construction contexts.
package a

// snapshot mirrors the epoch contract: frozen once published.
// ddlint:immutable-after-publish
type snapshot struct {
	seq  uint64
	ent  [4]int64
	tags map[string]int
	next *snapshot
}

// mutable is not annotated; writes to it are unrestricted.
type mutable struct{ n int }

// build returns the snapshot type: construction context.
func build(seq uint64) *snapshot {
	s := &snapshot{seq: seq, tags: make(map[string]int)}
	s.ent[0] = 1
	s.tags["root"] = 1
	return s
}

// assemble carries the constructs annotation instead of a result.
// ddlint:constructs snapshot
func assemble(dst *snapshot, seq uint64) {
	dst.seq = seq
}

// scratch writes through a local composite literal: never published.
func scratch() uint64 {
	local := &snapshot{}
	local.seq = 9
	other := snapshot{}
	other.ent[2] = 4
	m := &mutable{}
	m.n = 3
	return local.seq + uint64(other.ent[2]) + uint64(m.n)
}

// poke mutates a published snapshot.
func poke(s *snapshot) {
	s.seq = 7       // want `write to seq of snapshot \(ddlint:immutable-after-publish\) outside its constructor`
	s.ent[1] = 3    // want `write to ent of snapshot`
	s.tags["x"] = 1 // want `write to tags of snapshot`
	s.seq++         // want `write to seq of snapshot`
	s.next.seq = 2  // want `write to seq of snapshot`
}

// reads of any shape stay silent.
func read(s *snapshot) int64 {
	if s.next != nil {
		return s.next.ent[0]
	}
	return int64(s.seq) + s.ent[1]
}
