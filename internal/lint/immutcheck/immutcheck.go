// Package immutcheck enforces the publish-then-freeze contract on
// snapshot types: a struct annotated // ddlint:immutable-after-publish
// (the epoch snapshot family that data paths read through an
// atomic.Pointer without locks) may only have its fields written inside
// a constructor. Three contexts count as construction:
//
//   - a function whose results include the snapshot type (or a pointer
//     to it) — the build/rebuild shape that assembles a fresh value and
//     hands it to the publisher;
//   - a function annotated // ddlint:constructs <Type...> naming the
//     snapshot — for helpers that assemble parts without returning them;
//   - a write through a local variable initialized from a composite
//     literal of the snapshot type in the same function — a value that
//     demonstrably has not been published yet.
//
// Everything else — including writes through elements of a published
// snapshot's maps and slices (`ep.pools[id] = ...`, `ev.ent[slot] = 3`)
// — is a post-publish mutation the race detector can only catch if
// timing exposes it, and is reported unconditionally: there is no line
// waiver, because a reviewed mutable field belongs outside the snapshot
// (the epoch's vmState/poolState records show the pattern).
package immutcheck

import (
	"go/ast"
	"go/types"

	"doubledecker/internal/lint"
)

// Analyzer is the immutcheck pass.
var Analyzer = &lint.Analyzer{
	Name: "immutcheck",
	Doc:  "fields of ddlint:immutable-after-publish types are only written inside their constructors",
	Run:  run,
}

type checker struct {
	pass *lint.Pass
	// annotated memoizes per-named-type annotation lookups.
	annotated map[*types.Named]bool
}

func run(pass *lint.Pass) error {
	c := &checker{pass: pass, annotated: make(map[*types.Named]bool)}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkFunc(fd)
		}
	}
	return nil
}

func (c *checker) checkFunc(fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				c.checkWrite(fd, lhs)
			}
		case *ast.IncDecStmt:
			c.checkWrite(fd, n.X)
		}
		return true
	})
}

// checkWrite reports lhs when it stores into a field (or an element of
// a field) of an annotated type outside a construction context.
func (c *checker) checkWrite(fd *ast.FuncDecl, lhs ast.Expr) {
	// Unwrap element writes: ev.ent[slot] = x mutates the snapshot as
	// surely as ev.weight = x.
	for {
		switch l := lhs.(type) {
		case *ast.IndexExpr:
			lhs = l.X
			continue
		case *ast.StarExpr:
			lhs = l.X
			continue
		case *ast.ParenExpr:
			lhs = l.X
			continue
		}
		break
	}
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection, ok := c.pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	owner := namedOf(selection.Recv())
	if owner == nil || !c.isAnnotated(owner) {
		return
	}
	if c.returnsType(fd, owner) || c.constructsType(fd, owner) || c.localLiteral(fd, sel.X, owner) {
		return
	}
	c.pass.Reportf(sel.Sel.Pos(), "write to %s of %s (ddlint:immutable-after-publish) outside its constructor: "+
		"build a replacement snapshot and republish instead", sel.Sel.Name, owner.Obj().Name())
}

// isAnnotated reports whether the named type's declaration carries
// ddlint:immutable-after-publish (read from the defining package's
// syntax, which is loaded for every module package in the run).
func (c *checker) isAnnotated(n *types.Named) bool {
	if v, ok := c.annotated[n]; ok {
		return v
	}
	v := false
	obj := n.Obj()
	for _, f := range c.pass.FilesFor(obj.Pkg()) {
		if obj.Pos() < f.Pos() || obj.Pos() > f.End() {
			continue
		}
		ast.Inspect(f, func(node ast.Node) bool {
			if v {
				return false
			}
			switch node := node.(type) {
			case *ast.GenDecl:
				if node.Pos() <= obj.Pos() && obj.Pos() <= node.End() && lint.HasAnnotation(node.Doc, "immutable-after-publish") {
					v = true
					return false
				}
			case *ast.TypeSpec:
				if node.Name.Pos() == obj.Pos() &&
					(lint.HasAnnotation(node.Doc, "immutable-after-publish") ||
						lint.HasAnnotation(node.Comment, "immutable-after-publish")) {
					v = true
					return false
				}
			}
			return true
		})
	}
	c.annotated[n] = v
	return v
}

// returnsType reports whether fd's results include owner or *owner.
func (c *checker) returnsType(fd *ast.FuncDecl, owner *types.Named) bool {
	if fd.Type.Results == nil {
		return false
	}
	for _, res := range fd.Type.Results.List {
		tv, ok := c.pass.TypesInfo.Types[res.Type]
		if !ok {
			continue
		}
		if namedOf(tv.Type) == owner {
			return true
		}
	}
	return false
}

// constructsType reports whether fd carries ddlint:constructs naming
// owner.
func (c *checker) constructsType(fd *ast.FuncDecl, owner *types.Named) bool {
	for _, arg := range lint.Annotation(fd.Doc, "constructs") {
		for _, name := range splitFields(arg) {
			if name == owner.Obj().Name() {
				return true
			}
		}
	}
	return false
}

// localLiteral reports whether base is a local variable that fd
// initializes from a composite literal of owner's type — a snapshot
// still under construction, never published.
func (c *checker) localLiteral(fd *ast.FuncDecl, base ast.Expr, owner *types.Named) bool {
	id, ok := base.(*ast.Ident)
	if !ok {
		return false
	}
	obj := c.pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			lid, ok := lhs.(*ast.Ident)
			if !ok || c.pass.TypesInfo.ObjectOf(lid) != obj {
				continue
			}
			if i >= len(as.Rhs) {
				continue
			}
			rhs := as.Rhs[i]
			if u, ok := rhs.(*ast.UnaryExpr); ok {
				rhs = u.X
			}
			cl, ok := rhs.(*ast.CompositeLit)
			if !ok {
				continue
			}
			if tv, ok := c.pass.TypesInfo.Types[cl]; ok && namedOf(tv.Type) == owner {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// namedOf strips pointers down to the named struct type.
func namedOf(t types.Type) *types.Named {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	n, _ := t.(*types.Named)
	return n
}

func splitFields(s string) []string {
	var out []string
	start := -1
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' || s[i] == '\t' || s[i] == ',' {
			if start >= 0 {
				out = append(out, s[start:i])
				start = -1
			}
			continue
		}
		if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		out = append(out, s[start:])
	}
	return out
}
