package clockcheck_test

import (
	"testing"

	"doubledecker/internal/lint/analysistest"
	"doubledecker/internal/lint/clockcheck"
)

func TestClockcheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestDataDir(t), clockcheck.Analyzer,
		"a", "stress", "cmd/tool")
}
