// Command tool lives under a cmd/ directory, which is allowlisted: CLI
// entry points legitimately report wall time.
package main

import (
	"fmt"
	"time"
)

func main() {
	start := time.Now()
	fmt.Println(time.Since(start))
}
