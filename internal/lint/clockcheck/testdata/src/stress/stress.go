// Package stress reproduces the real pre-fix internal/ddcache/stress.go
// pattern: a concurrent driver timing its wall-clock phase with
// time.Now/time.Since inside otherwise simulated-time code.
package stress

import (
	"sync"
	"time"
)

type result struct {
	Ops  int64
	Wall time.Duration
}

func runStress(workers int) result {
	var wg sync.WaitGroup
	var ops int64
	start := time.Now() // want `time\.Now reads the wall clock`
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var now time.Duration
			now += time.Millisecond
			_ = now
		}()
	}
	wg.Wait()
	return result{
		Ops:  ops,
		Wall: time.Since(start), // want `time\.Since reads the wall clock`
	}
}
