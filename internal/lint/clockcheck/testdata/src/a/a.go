package a

import "time"

func busy() {}

func bad() time.Duration {
	start := time.Now() // want `time\.Now reads the wall clock`
	busy()
	return time.Since(start) // want `time\.Since reads the wall clock`
}

func timers() {
	<-time.After(time.Millisecond)          // want `time\.After reads the wall clock`
	_ = time.NewTicker(time.Second)         // want `time\.NewTicker reads the wall clock`
	time.AfterFunc(time.Second, func() {})  // want `time\.AfterFunc reads the wall clock`
	_ = time.Until(time.Time{})             // want `time\.Until reads the wall clock`
	time.Sleep(time.Millisecond)            // Sleep consumes a duration; it cannot leak wall time into timestamps
	_ = time.Duration(3) * time.Millisecond // plain arithmetic is fine
	_ = time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC)
}
