// ddlint:allow-wallclock — this fixture file is the designated wall-clock
// shim, mirroring internal/wallclock.
package a

import "time"

func wallNow() time.Time { return time.Now() }
