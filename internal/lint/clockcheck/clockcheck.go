// Package clockcheck bans wall-clock reads outside an explicit allowlist.
//
// Every simulated component — cache, policy, transport, experiments —
// must take time from the injected `now time.Duration` argument or the
// sim engine's Now(), never from the host clock; otherwise replays stop
// being deterministic (the bug class PR 3 fixed in ddcache/stress.go and
// experiments/transport.go). References to time.Now, time.Since and the
// timer constructors are therefore diagnostics except in:
//
//   - files under a cmd/ directory (CLI entry points report wall time),
//   - _test.go files (wall-clock benchmarks),
//   - package internal/sim (the clock source itself), and
//   - files marked // ddlint:allow-wallclock (internal/wallclock, the
//     injectable stopwatch every simulated component should use).
package clockcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"doubledecker/internal/lint"
)

// banned are the time package functions that read or arm the host clock.
var banned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"Tick":      true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
}

// Analyzer is the clockcheck pass.
var Analyzer = &lint.Analyzer{
	Name: "clockcheck",
	Doc:  "ban time.Now/time.Since and timer constructors outside the wall-clock allowlist",
	Run:  run,
}

func run(pass *lint.Pass) error {
	if strings.HasSuffix(pass.Pkg.Path(), "internal/sim") {
		return nil
	}
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if allowedFile(name) || lint.FileHasMarker(f, "allow-wallclock") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || !banned[obj.Name()] {
				return true
			}
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			report(pass, sel.Pos(), fn.Name())
			return true
		})
	}
	return nil
}

func report(pass *lint.Pass, pos token.Pos, name string) {
	pass.Reportf(pos, "time.%s reads the wall clock in simulated-time code; "+
		"thread the injected `now time.Duration` / engine.Now(), or use "+
		"internal/wallclock for intentional wall-time measurement", name)
}

// allowedFile reports whether the file is allowlisted by location. The
// cmd/ rule is evaluated relative to the innermost testdata tree: a
// fixture's own cmd/ directory is allowlisted (it stands in for a real
// entry point), but a fixture is not exempt merely because the testdata
// directory itself sits under some cmd/ package.
func allowedFile(name string) bool {
	if strings.HasSuffix(name, "_test.go") {
		return true
	}
	parts := strings.Split(strings.ReplaceAll(name, "\\", "/"), "/")
	start := 0
	for i, p := range parts {
		if p == "testdata" {
			start = i + 1
		}
	}
	for _, p := range parts[start:] {
		if p == "cmd" {
			return true
		}
	}
	return false
}
