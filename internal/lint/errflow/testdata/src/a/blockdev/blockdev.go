// Package blockdev is a fixture stand-in for the module's device layer:
// errflow targets it by import-path base name.
package blockdev

// Device mirrors the module's blockdev.Device error contract.
type Device interface {
	Read(off, size int64) (int64, error)
	Write(off, size int64) (int64, error)
	WriteAsync(off, size int64) error
	Depth() int
}

// Disk is a concrete device.
type Disk struct{}

func (d *Disk) Read(off, size int64) (int64, error)  { return 0, nil }
func (d *Disk) Write(off, size int64) (int64, error) { return 0, nil }
func (d *Disk) WriteAsync(off, size int64) error     { return nil }
func (d *Disk) Depth() int                           { return 0 }
