// Package a exercises errflow: discarded device errors in statement,
// blank-assign, go/defer and parallel-assign positions, plus the
// consumed and waived shapes that must stay silent.
package a

import "a/blockdev"

func discards(d blockdev.Device) int64 {
	d.WriteAsync(0, 1)       // want `error result of blockdev.WriteAsync discarded`
	_ = d.WriteAsync(0, 1)   // want `error result of blockdev.WriteAsync assigned to _`
	_, _ = d.Write(0, 1)     // want `error result of blockdev.Write assigned to _`
	n, _ := d.Read(0, 1)     // want `error result of blockdev.Read assigned to _`
	go d.WriteAsync(0, 1)    // want `error result of blockdev.WriteAsync discarded by go statement`
	defer d.WriteAsync(0, 1) // want `error result of blockdev.WriteAsync discarded by defer`
	return n
}

func parallel(d *blockdev.Disk) {
	var n int
	n, _ = d.Depth(), d.WriteAsync(0, 1) // want `error result of blockdev.WriteAsync assigned to _`
	_ = n
	_ = d.Depth() // error-free results may be discarded freely
	d.Depth()
}

func consumed(d blockdev.Device) (int64, error) {
	if err := d.WriteAsync(0, 1); err != nil {
		return 0, err
	}
	n, err := d.Read(0, 1)
	if err != nil {
		return 0, err
	}
	return n, d.WriteAsync(0, 1)
}

func waived(d blockdev.Device) int64 {
	_ = d.WriteAsync(0, 1) // ddlint:err-ok modeled latency only, drop is the contract
	n, _ := d.Read(0, 1)   // ddlint:err-ok guest disk errors are outside the failure model
	return n
}
