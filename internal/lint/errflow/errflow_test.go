package errflow_test

import (
	"testing"

	"doubledecker/internal/lint/analysistest"
	"doubledecker/internal/lint/errflow"
)

func TestErrFlow(t *testing.T) {
	analysistest.Run(t, analysistest.TestDataDir(t), errflow.Analyzer, "a")
}
