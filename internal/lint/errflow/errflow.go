// Package errflow enforces the graceful-degradation contract on error
// results from the failure-injected layers: every error returned by a
// function or method of the blockdev, store, hypercall or fault
// packages (the layers fault injection can make fail) must be consumed
// — bound to a variable, checked, or returned — never discarded. Two
// discard shapes are reported:
//
//   - a bare call statement (or go/defer statement) whose result set
//     includes an error, and
//   - an assignment that binds the error position to the blank
//     identifier (`_ = dev.WriteAsync(...)`, `dl, _ := disk.Read(...)`).
//
// A reviewed discard — e.g. the guest virtual-disk reads whose errors
// are outside the cleancache failure model by design — is waived with
// // ddlint:err-ok <reason> on the call's line. Dead stores into named
// error variables are left to the compiler and vet, which already
// reject the common cases; the blank-discard shapes above are exactly
// the ones they accept silently.
//
// Target packages are matched by their import-path base name, so the
// analyzer works identically against the module's internal packages and
// against fixture stand-ins.
package errflow

import (
	"go/ast"
	"go/types"

	"doubledecker/internal/lint"
)

// Analyzer is the errflow pass.
var Analyzer = &lint.Analyzer{
	Name: "errflow",
	Doc:  "error results from blockdev/store/hypercall/fault calls must be consumed or waived with ddlint:err-ok",
	Run:  run,
}

// targetPkgs are the failure-injected layers whose errors carry the
// degradation contract (matched by import-path base).
var targetPkgs = map[string]bool{
	"blockdev":  true,
	"store":     true,
	"hypercall": true,
	"fault":     true,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		waived := lint.MarkerLines(pass.Fset, f, "err-ok")
		ok := func(n ast.Node) bool {
			return waived[pass.Fset.Position(n.Pos()).Line]
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, name := targetCall(pass, n.X); call != nil && !ok(call) {
					pass.Reportf(call.Pos(), "error result of %s discarded: check it, return it, "+
						"or waive the reviewed site with ddlint:err-ok <reason>", name)
				}
			case *ast.GoStmt:
				if call, name := targetCall(pass, n.Call); call != nil && !ok(call) {
					pass.Reportf(call.Pos(), "error result of %s discarded by go statement: "+
						"consume it in the spawned function or waive with ddlint:err-ok <reason>", name)
				}
			case *ast.DeferStmt:
				if call, name := targetCall(pass, n.Call); call != nil && !ok(call) {
					pass.Reportf(call.Pos(), "error result of %s discarded by defer: "+
						"wrap it to consume the error or waive with ddlint:err-ok <reason>", name)
				}
			case *ast.AssignStmt:
				checkAssign(pass, n, ok)
			}
			return true
		})
	}
	return nil
}

// checkAssign reports blank-identifier binds of a target call's error
// position: `_ = c()` and `v, _ := c()` alike.
func checkAssign(pass *lint.Pass, as *ast.AssignStmt, waived func(ast.Node) bool) {
	// Only the single-call forms bind result tuples: `a, b := call()`
	// or `_ = call()`.
	if len(as.Rhs) != 1 {
		// Parallel assignment pairs each RHS with one LHS.
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			if !isBlank(as.Lhs[i]) {
				continue
			}
			if call, name := targetCall(pass, rhs); call != nil && !waived(call) {
				pass.Reportf(call.Pos(), "error result of %s assigned to _: check it, return it, "+
					"or waive the reviewed site with ddlint:err-ok <reason>", name)
			}
		}
		return
	}
	call, name := callTo(pass, as.Rhs[0])
	if call == nil {
		return
	}
	fn := calleeOf(pass, call)
	if fn == nil || !targetPkg(fn) {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	res := sig.Results()
	for i := 0; i < res.Len() && i < len(as.Lhs); i++ {
		if !isErrorType(res.At(i).Type()) || !isBlank(as.Lhs[i]) {
			continue
		}
		if !waived(call) {
			pass.Reportf(call.Pos(), "error result of %s assigned to _: check it, return it, "+
				"or waive the reviewed site with ddlint:err-ok <reason>", name)
		}
		return
	}
}

// targetCall unwraps expr to a call into a target package whose result
// set includes an error.
func targetCall(pass *lint.Pass, expr ast.Expr) (*ast.CallExpr, string) {
	call, name := callTo(pass, expr)
	if call == nil {
		return nil, ""
	}
	fn := calleeOf(pass, call)
	if fn == nil || !targetPkg(fn) {
		return nil, ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil, ""
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			return call, name
		}
	}
	return nil, ""
}

// callTo unwraps parens and names the called function for diagnostics.
func callTo(pass *lint.Pass, expr ast.Expr) (*ast.CallExpr, string) {
	for {
		if p, ok := expr.(*ast.ParenExpr); ok {
			expr = p.X
			continue
		}
		break
	}
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return nil, ""
	}
	fn := calleeOf(pass, call)
	if fn == nil {
		return nil, ""
	}
	return call, fn.Pkg().Name() + "." + fn.Name()
}

// calleeOf resolves the static callee, including interface methods
// (whose defining package is the interface's package — exactly the
// contract-carrying declaration errflow cares about).
func calleeOf(pass *lint.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	return fn
}

func targetPkg(fn *types.Func) bool {
	path := fn.Pkg().Path()
	base := path
	if i := lastSlash(path); i >= 0 {
		base = path[i+1:]
	}
	return targetPkgs[base]
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func isErrorType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "error" && n.Obj().Pkg() == nil
}
