// Package lint is a small, dependency-free analogue of
// golang.org/x/tools/go/analysis: enough driver, loader and annotation
// machinery to run the project-specific ddlint analyzers (lockcheck,
// opswitch, atomiccheck, clockcheck, lockorder, errflow, immutcheck,
// handlecheck) over the module. The x/tools framework itself is
// deliberately not imported — the repo builds with the standard library
// only — but the shapes (Analyzer, Pass, Reportf, facts,
// analysistest-style fixtures) mirror it so the analyzers could be
// ported to a real multichecker mechanically.
//
// # Annotation grammar
//
// ddlint reads machine-checkable contracts from comments:
//
//	// ddlint:requires-lock <mu>   (func doc) caller must hold <mu>
//	// ddlint:guarded-by <mu>      (struct field) access requires <mu>
//	// ddlint:exhaustive           (type decl) switches must cover all consts
//	// ddlint:nonexhaustive        (switch/default) waive exhaustiveness
//	// ddlint:allow-wallclock      (anywhere in file) waive the clock ban
//	// ddlint:atomic-ok            (statement line) waive the atomic ban
//	// ddlint:lock-order A < B     (anywhere in pkg) declared acquisition order
//	// ddlint:lock-ok              (acquisition line) waive a lock-order edge
//	// ddlint:lock-alias <name>    (declaration line) name a local mutex alias
//	// ddlint:err-ok <reason>      (call line) waive a discarded error result
//	// ddlint:immutable-after-publish (type decl) writes only in constructors
//	// ddlint:constructs <Type...> (func doc) function builds the named types
//	// ddlint:linear               (type decl) values must be consumed once
//	// ddlint:consumes             (method doc) method consumes its receiver
//	// ddlint:abandon <reason>     (return line) waive an abandoned handle
//
// See DESIGN.md §8 for the invariants behind each analyzer.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -only filters.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// A Pass provides one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// loader gives access to the syntax of dependency packages loaded
	// from source (module-internal packages and fixtures), so analyzers
	// can read annotations on imported declarations.
	loader *Loader

	diagnostics []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// FilesFor returns the parsed syntax of pkg when it was loaded from
// source by this run's loader (module packages and test fixtures), or
// nil for export-only packages (the standard library).
func (p *Pass) FilesFor(pkg *types.Package) []*ast.File {
	if pkg == p.Pkg {
		return p.Files
	}
	if p.loader == nil {
		return nil
	}
	if lp := p.loader.packageFor(pkg); lp != nil {
		return lp.Files
	}
	return nil
}

// InfoFor returns the type-checker facts of a source-loaded package, so
// interprocedural analyzers can resolve selections and callees inside
// dependency packages, or nil for export-only packages.
func (p *Pass) InfoFor(pkg *types.Package) *types.Info {
	if pkg == p.Pkg {
		return p.TypesInfo
	}
	if p.loader == nil {
		return nil
	}
	if lp := p.loader.packageFor(pkg); lp != nil {
		return lp.TypesInfo
	}
	return nil
}

// Fact returns the interprocedural summary this pass's analyzer
// previously recorded for obj with SetFact — in this package or any
// other package of the same run (the loader memoizes packages, so
// types.Object identities line up across passes). Facts are namespaced
// per analyzer.
func (p *Pass) Fact(obj types.Object) (any, bool) {
	if p.loader == nil {
		return nil, false
	}
	v, ok := p.loader.facts[factKey{p.Analyzer.Name, obj}]
	return v, ok
}

// SetFact records an interprocedural summary for obj, visible to this
// analyzer's passes over every package of the run.
func (p *Pass) SetFact(obj types.Object, v any) {
	if p.loader == nil {
		return
	}
	p.loader.facts[factKey{p.Analyzer.Name, obj}] = v
}

// Inspect walks every file of the pass in depth-first order.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// --- annotation helpers -----------------------------------------------------

// marker is the comment prefix introducing every ddlint annotation.
const marker = "ddlint:"

// Annotation returns the arguments of every "ddlint:<name>" annotation in
// the comment group, e.g. Annotation(doc, "requires-lock") == ["mu"] for a
// doc containing "// ddlint:requires-lock mu".
func Annotation(doc *ast.CommentGroup, name string) []string {
	var out []string
	if doc == nil {
		return nil
	}
	for _, c := range doc.List {
		text := strings.TrimLeft(strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*"), " \t")
		if !strings.HasPrefix(text, marker+name) {
			continue
		}
		rest := strings.TrimPrefix(text, marker+name)
		if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
			continue // longer annotation name, e.g. nonexhaustive vs non
		}
		out = append(out, strings.TrimSpace(strings.TrimSuffix(rest, "*/")))
	}
	return out
}

// HasAnnotation reports whether the comment group carries the annotation.
func HasAnnotation(doc *ast.CommentGroup, name string) bool {
	return Annotation(doc, name) != nil
}

// MarkerLines returns the set of lines on which file carries the given
// ddlint annotation, whether or not the comment is attached to a node.
// Callers use it to associate waiver markers (ddlint:nonexhaustive,
// ddlint:atomic-ok) with the statement on or above the marked line.
func MarkerLines(fset *token.FileSet, file *ast.File, name string) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, marker+name) {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// FileHasMarker reports whether any comment in file carries the marker.
func FileHasMarker(file *ast.File, name string) bool {
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, marker+name) {
				return true
			}
		}
	}
	return false
}

// EnclosingFunc returns the innermost function declaration containing pos.
func EnclosingFunc(files []*ast.File, pos token.Pos) *ast.FuncDecl {
	for _, f := range files {
		if pos < f.Pos() || pos > f.End() {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
				return fd
			}
		}
	}
	return nil
}

// SortDiagnostics orders diagnostics by file position for stable output.
func SortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}
