package lockcheck_test

import (
	"testing"

	"doubledecker/internal/lint/analysistest"
	"doubledecker/internal/lint/lockcheck"
)

func TestLockcheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestDataDir(t), lockcheck.Analyzer, "a")
}
