// Package lockcheck enforces the cache store's lock-holding conventions
// mechanically (the PR 1 contract that previously lived only in prose):
//
//   - A function whose name ends in "Locked", or whose doc comment carries
//     // ddlint:requires-lock <mu>, may only be called by a caller that
//     demonstrably holds the lock: the caller acquires <mu>.Lock() or
//     <mu>.RLock() (sync.Mutex/RWMutex methods) earlier in its body, is
//     itself a *Locked function, or is annotated ddlint:requires-lock.
//   - A struct field annotated // ddlint:guarded-by <mu> may only be read
//     or written from such lock-holding functions.
//
// The check is lexical within one function body (an acquire anywhere
// before the use counts; unlocks are not tracked), which matches how the
// repo writes critical sections: Lock/defer Unlock at the top, or
// explicit Lock/Unlock pairs around a block. Lock identity is matched by
// mutex field name (e.g. "mu", "dedupMu"), which is exactly the
// granularity of the documented hierarchy: Manager.mu and vmState.mu are
// both named mu and both protect the structures the annotation guards.
package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"doubledecker/internal/lint"
)

// Analyzer is the lockcheck pass.
var Analyzer = &lint.Analyzer{
	Name: "lockcheck",
	Doc:  "calls to *Locked/ddlint:requires-lock functions and accesses to ddlint:guarded-by fields must hold the named mutex",
	Run:  run,
}

// requirement describes the locks a function demands from its caller.
type requirement struct {
	names    []string // specific mutex field names (ddlint:requires-lock)
	wildcard bool     // *Locked suffix: some lock, name unspecified
}

func (r requirement) empty() bool { return !r.wildcard && len(r.names) == 0 }

// lockEvent is one mutex acquisition inside a function body.
type lockEvent struct {
	name string // mutex field/variable name, e.g. "mu"
	pos  token.Pos
}

type checker struct {
	pass *lint.Pass
	// reqCache memoizes per-callee requirements, including callees in
	// other source-loaded packages (annotations are read from their
	// syntax trees).
	reqCache map[*types.Func]requirement
	// guardCache memoizes per-field guard annotations.
	guardCache map[*types.Var][]string
	// locks memoizes lock acquisitions per enclosing declaration.
	locks map[*ast.FuncDecl][]lockEvent
}

func run(pass *lint.Pass) error {
	c := &checker{
		pass:       pass,
		reqCache:   make(map[*types.Func]requirement),
		guardCache: make(map[*types.Var][]string),
		locks:      make(map[*ast.FuncDecl][]lockEvent),
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				c.checkCall(n)
			case *ast.SelectorExpr:
				c.checkFieldAccess(n)
			}
			return true
		})
	}
	return nil
}

// checkCall verifies lock possession at a call to a lock-requiring
// function.
func (c *checker) checkCall(call *ast.CallExpr) {
	fn := c.callee(call)
	if fn == nil {
		return
	}
	req := c.requirementOf(fn)
	if req.empty() {
		return
	}
	caller := lint.EnclosingFunc(c.pass.Files, call.Pos())
	if !c.satisfies(caller, call.Pos(), req) {
		c.pass.Reportf(call.Pos(), "call to %s requires %s: acquire it before the call, "+
			"suffix the caller with Locked, or annotate it // ddlint:requires-lock",
			fn.Name(), describe(req))
	}
}

// checkFieldAccess verifies lock possession at a guarded field use.
func (c *checker) checkFieldAccess(sel *ast.SelectorExpr) {
	selection, ok := c.pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	field, ok := selection.Obj().(*types.Var)
	if !ok {
		return
	}
	guards := c.guardsOf(field)
	if len(guards) == 0 {
		return
	}
	fn := lint.EnclosingFunc(c.pass.Files, sel.Pos())
	req := requirement{names: guards}
	if !c.satisfies(fn, sel.Pos(), req) {
		c.pass.Reportf(sel.Sel.Pos(), "access to %s (ddlint:guarded-by %s) requires %s held",
			field.Name(), strings.Join(guards, " "), describe(req))
	}
}

// satisfies reports whether fn demonstrably holds every lock of req at
// pos: by its own requirement annotations (its callers are then checked
// in turn), or by acquiring the mutex earlier in its body.
func (c *checker) satisfies(fn *ast.FuncDecl, pos token.Pos, req requirement) bool {
	if fn == nil {
		return false
	}
	var own requirement
	if obj, ok := c.pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
		own = c.requirementOf(obj)
	}
	if own.wildcard {
		// A *Locked function inherits its caller's obligations wholesale.
		return true
	}
	events := c.lockEventsOf(fn)
	holds := func(name string) bool {
		for _, held := range own.names {
			if held == name {
				return true
			}
		}
		for _, ev := range events {
			if ev.pos < pos && (ev.name == name || name == "") {
				return true
			}
		}
		return false
	}
	if req.wildcard {
		return len(own.names) > 0 || holds("")
	}
	for _, name := range req.names {
		if !holds(name) {
			return false
		}
	}
	return true
}

// callee resolves the static callee of a call, if it is a declared
// function or method.
func (c *checker) callee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := c.pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// requirementOf computes the locks fn demands from callers: the Locked
// naming convention plus any ddlint:requires-lock annotations on its
// declaration (looked up in the defining package's syntax, which is
// available for every module package in the run).
func (c *checker) requirementOf(fn *types.Func) requirement {
	if req, ok := c.reqCache[fn]; ok {
		return req
	}
	var req requirement
	if strings.HasSuffix(fn.Name(), "Locked") {
		req.wildcard = true
	}
	if decl := c.declOf(fn); decl != nil {
		req.names = append(req.names, lint.Annotation(decl.Doc, "requires-lock")...)
	}
	c.reqCache[fn] = req
	return req
}

// declOf finds fn's FuncDecl in its defining package's syntax, or nil
// for functions whose source is not part of this run.
func (c *checker) declOf(fn *types.Func) *ast.FuncDecl {
	for _, f := range c.pass.FilesFor(fn.Pkg()) {
		if fn.Pos() < f.Pos() || fn.Pos() > f.End() {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Pos() == fn.Pos() {
				return fd
			}
		}
	}
	return nil
}

// guardsOf returns the ddlint:guarded-by mutex names for a struct field,
// read from the field's declaration in its defining package.
func (c *checker) guardsOf(field *types.Var) []string {
	if g, ok := c.guardCache[field]; ok {
		return g
	}
	var guards []string
	for _, f := range c.pass.FilesFor(field.Pkg()) {
		if field.Pos() < f.Pos() || field.Pos() > f.End() {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			fl, ok := n.(*ast.Field)
			if !ok || fl.Pos() > field.Pos() || field.Pos() > fl.End() {
				return true
			}
			guards = append(guards, lint.Annotation(fl.Doc, "guarded-by")...)
			guards = append(guards, lint.Annotation(fl.Comment, "guarded-by")...)
			return true
		})
	}
	c.guardCache[field] = guards
	return guards
}

// lockEventsOf collects the mutex acquisitions in fn's body: calls to
// Lock/RLock methods of sync.Mutex or sync.RWMutex, tagged with the name
// of the field or variable holding the mutex.
func (c *checker) lockEventsOf(fn *ast.FuncDecl) []lockEvent {
	if evs, ok := c.locks[fn]; ok {
		return evs
	}
	var evs []lockEvent
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		m, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || (m.Name() != "Lock" && m.Name() != "RLock") {
			return true
		}
		if m.Pkg() == nil || m.Pkg().Path() != "sync" {
			return true
		}
		evs = append(evs, lockEvent{name: mutexName(sel.X), pos: call.Pos()})
		return true
	})
	c.locks[fn] = evs
	return evs
}

// mutexName extracts the mutex's field or variable name from the
// receiver expression of a Lock call: m.mu.Lock() and mu.Lock() both
// yield "mu".
func mutexName(x ast.Expr) string {
	switch x := x.(type) {
	case *ast.SelectorExpr:
		return x.Sel.Name
	case *ast.Ident:
		return x.Name
	case *ast.ParenExpr:
		return mutexName(x.X)
	default:
		return ""
	}
}

func describe(req requirement) string {
	if len(req.names) > 0 {
		return strings.Join(req.names, " and ") + " (Lock or RLock)"
	}
	return "the protecting mutex"
}
