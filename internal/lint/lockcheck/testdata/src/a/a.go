// Package a mirrors the ddcache.Manager locking conventions: a
// store-level RWMutex guarding registries, a leaf mutex guarding a
// side table, *Locked helpers, and annotated entitlement readers.
package a

import "sync"

type Manager struct {
	mu sync.RWMutex
	// vms is the VM registry.
	vms map[int]int // ddlint:guarded-by mu

	dedupMu sync.Mutex
	refs    map[int]int // ddlint:guarded-by dedupMu
}

func New() *Manager {
	// Composite-literal keys initialize fields before the value is
	// shared; they are not guarded accesses.
	return &Manager{vms: make(map[int]int), refs: make(map[int]int)}
}

func (m *Manager) Register(id int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.registerLocked(id)
}

func (m *Manager) registerLocked(id int) {
	m.vms[id] = id // fine: *Locked functions inherit the caller's locks
}

func (m *Manager) BadCall(id int) {
	m.registerLocked(id) // want `call to registerLocked requires`
}

func (m *Manager) BadRead() int {
	return len(m.vms) // want `access to vms \(ddlint:guarded-by mu\)`
}

func (m *Manager) GoodRead() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.vms)
}

// entitlement reads the registry on behalf of locked callers.
// ddlint:requires-lock mu
func (m *Manager) entitlement(id int) int { return m.vms[id] }

func (m *Manager) GoodAnnotatedCall(id int) int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.entitlement(id)
}

// chained is itself annotated, so calling entitlement is fine: the
// obligation propagates to chained's callers.
// ddlint:requires-lock mu
func (m *Manager) chained(id int) int { return m.entitlement(id) }

func (m *Manager) BadAnnotatedCall(id int) int {
	return m.entitlement(id) // want `call to entitlement requires mu`
}

func (m *Manager) WrongLock(id int) int {
	m.dedupMu.Lock()
	defer m.dedupMu.Unlock()
	return m.entitlement(id) // want `call to entitlement requires mu`
}

func (m *Manager) Release(id int) {
	m.dedupMu.Lock()
	defer m.dedupMu.Unlock()
	delete(m.refs, id)
}

func (m *Manager) BadLeafRead(id int) int {
	m.mu.RLock() // the store lock is not the leaf lock
	defer m.mu.RUnlock()
	return m.refs[id] // want `access to refs \(ddlint:guarded-by dedupMu\)`
}

func (m *Manager) BothLocks(id int) int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	m.dedupMu.Lock()
	defer m.dedupMu.Unlock()
	return m.vms[id] + m.refs[id]
}
