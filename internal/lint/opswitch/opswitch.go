// Package opswitch enforces exhaustive switches over annotated enum
// types. A type declared with a // ddlint:exhaustive annotation (notably
// cleancache.OpCode, and cgroup.StoreType) promises that every switch
// over a value of that type either handles all of the constants declared
// for it in its defining package, or carries an explicit default clause
// together with a // ddlint:nonexhaustive marker. Adding a tenth op code
// then breaks the build of every dispatch, codec and metrics switch that
// silently ignored it, instead of silently no-opping at run time.
package opswitch

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"

	"doubledecker/internal/lint"
)

// Analyzer is the opswitch pass.
var Analyzer = &lint.Analyzer{
	Name: "opswitch",
	Doc:  "switches over ddlint:exhaustive enum types must cover every constant or be marked ddlint:nonexhaustive",
	Run:  run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		markers := lint.MarkerLines(pass.Fset, f, "nonexhaustive")
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkSwitch(pass, sw, markers)
			return true
		})
	}
	return nil
}

func checkSwitch(pass *lint.Pass, sw *ast.SwitchStmt, markers map[int]bool) {
	tagType := pass.TypesInfo.Types[sw.Tag].Type
	if tagType == nil {
		return
	}
	named, ok := types.Unalias(tagType).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return
	}
	if !isExhaustiveType(pass, named) {
		return
	}
	consts := enumConstants(named)
	if len(consts) == 0 {
		return
	}

	covered := make(map[string]bool)
	var defaultClause *ast.CaseClause
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			defaultClause = cc
			continue
		}
		for _, expr := range cc.List {
			if tv := pass.TypesInfo.Types[expr]; tv.Value != nil {
				covered[tv.Value.ExactString()] = true
			}
		}
	}

	var missing []string
	for _, c := range consts {
		if !covered[c.Val().ExactString()] {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) == 0 {
		return
	}

	if defaultClause != nil && hasWaiver(pass, markers, sw, defaultClause) {
		return
	}
	typeName := named.Obj().Pkg().Name() + "." + named.Obj().Name()
	pass.Reportf(sw.Pos(), "switch over %s is missing cases %s; handle them, or add a "+
		"default clause marked // ddlint:nonexhaustive", typeName, strings.Join(missing, ", "))
}

// hasWaiver reports whether a ddlint:nonexhaustive marker sits on (or one
// line above) the switch statement or its default clause.
func hasWaiver(pass *lint.Pass, markers map[int]bool, sw *ast.SwitchStmt, def *ast.CaseClause) bool {
	for _, pos := range []int{
		pass.Fset.Position(sw.Pos()).Line,
		pass.Fset.Position(sw.Pos()).Line - 1,
		pass.Fset.Position(def.Pos()).Line,
		pass.Fset.Position(def.Pos()).Line - 1,
	} {
		if markers[pos] {
			return true
		}
	}
	return false
}

// isExhaustiveType reports whether the named type's declaration carries
// the ddlint:exhaustive annotation. The declaring package's syntax is
// available for every package loaded from source in this run; stdlib
// (export-only) packages never participate.
func isExhaustiveType(pass *lint.Pass, named *types.Named) bool {
	files := pass.FilesFor(named.Obj().Pkg())
	name := named.Obj().Name()
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != name {
					continue
				}
				return lint.HasAnnotation(gd.Doc, "exhaustive") ||
					lint.HasAnnotation(ts.Doc, "exhaustive") ||
					lint.HasAnnotation(ts.Comment, "exhaustive")
			}
		}
	}
	return false
}

// enumConstants returns the constants of exactly the named type declared
// at package scope in its defining package, in declaration order.
func enumConstants(named *types.Named) []*types.Const {
	scope := named.Obj().Pkg().Scope()
	var out []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		if c.Val().Kind() == constant.Unknown {
			continue
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}
