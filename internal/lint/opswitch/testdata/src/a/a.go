package a

import "fmt"

// OpCode mirrors the real cleancache.OpCode enum: annotated, so every
// switch over it must be exhaustive or carry an explicit waiver.
// ddlint:exhaustive
type OpCode uint8

// The op set.
const (
	OpGet OpCode = iota + 1
	OpPut
	OpFlushPage
	OpFlushInode

	opCount = int(OpFlushInode) // not an OpCode; excluded from the enum
)

func full(op OpCode) string {
	switch op {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpFlushPage:
		return "flush_page"
	case OpFlushInode:
		return "flush_inode"
	}
	return ""
}

// fullWithDefault covers everything; the default needs no marker.
func fullWithDefault(op OpCode) string {
	switch op {
	case OpGet, OpPut:
		return "data"
	case OpFlushPage, OpFlushInode:
		return "flush"
	default:
		return fmt.Sprintf("OpCode(%d)", int(op))
	}
}

// missing reproduces a dispatch switch after someone deletes a case:
// the tenth op would silently no-op.
func missing(op OpCode) string {
	switch op { // want `switch over a\.OpCode is missing cases OpFlushInode`
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpFlushPage:
		return "flush_page"
	}
	return ""
}

// defaulted has a default but no waiver marker, so the gap is still an
// error: the author never said the omission was deliberate.
func defaulted(op OpCode) string {
	switch op { // want `missing cases OpPut, OpFlushPage, OpFlushInode`
	case OpGet:
		return "get"
	default:
		return "other"
	}
}

// waived mirrors OpCode.Batchable: deliberately partial, and says so.
func waived(op OpCode) bool {
	// ddlint:nonexhaustive — only puts and flushes are batchable
	switch op {
	case OpPut, OpFlushPage:
		return true
	default:
		return false
	}
}

// waivedOnDefault puts the marker on the default clause instead.
func waivedOnDefault(op OpCode) int {
	switch op {
	case OpGet:
		return 1
	default: // ddlint:nonexhaustive
		return 0
	}
}

// Plain is not annotated; partial switches over it are fine.
type Plain int

// Plain values.
const (
	PA Plain = iota
	PB
)

func plain(p Plain) int {
	switch p {
	case PA:
		return 0
	}
	return 1
}
