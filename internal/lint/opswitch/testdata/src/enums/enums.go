// Package enums exports an annotated enum for the cross-package test:
// the annotation is read from this package's syntax when another package
// switches over the type.
package enums

// Mode selects a cache mode.
// ddlint:exhaustive
type Mode int

// Modes.
const (
	ModeDD Mode = iota + 1
	ModeGlobal
	ModeMorai
)
