package uses

import "enums"

func name(m enums.Mode) string {
	switch m { // want `switch over enums\.Mode is missing cases ModeMorai`
	case enums.ModeDD:
		return "doubledecker"
	case enums.ModeGlobal:
		return "global"
	}
	return ""
}

func ok(m enums.Mode) bool {
	switch m {
	case enums.ModeDD, enums.ModeGlobal, enums.ModeMorai:
		return true
	}
	return false
}
