package opswitch_test

import (
	"testing"

	"doubledecker/internal/lint/analysistest"
	"doubledecker/internal/lint/opswitch"
)

func TestOpswitch(t *testing.T) {
	analysistest.Run(t, analysistest.TestDataDir(t), opswitch.Analyzer,
		"a", "uses")
}
