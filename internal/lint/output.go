package lint

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"strings"
)

// A Finding is one diagnostic resolved to a file position, the unit all
// output modes (text, JSON, SARIF) share. File paths are relative to the
// invocation directory when possible, slash-separated, so CI artifacts
// are stable across checkouts.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// A Result is one completed multichecker run over a set of packages.
type Result struct {
	Findings []Finding `json:"findings"`

	// analyzers records the suite that ran, for SARIF rule metadata.
	analyzers []*Analyzer
}

// Collect expands patterns (Go-style, with "..." wildcards) into package
// directories relative to dir, loads and type-checks each package once,
// applies every analyzer, and returns the sorted findings. It is the
// engine behind Run and the -json/-sarif output modes.
func Collect(dir string, analyzers []*Analyzer, patterns []string) (*Result, error) {
	root, modPath, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	dirs, err := expandPatterns(dir, patterns)
	if err != nil {
		return nil, err
	}
	loader := NewModuleLoader(root, modPath)

	var diags []Diagnostic
	for _, pkgDir := range dirs {
		importPath, err := dirImportPath(root, modPath, pkgDir)
		if err != nil {
			return nil, err
		}
		pkg, err := loader.LoadDir(pkgDir, importPath)
		if errors.Is(err, ErrNoGoFiles) {
			continue
		}
		if err != nil {
			return nil, err
		}
		diags = append(diags, Analyze(pkg, loader, analyzers)...)
	}

	SortDiagnostics(loader.Fset, diags)
	res := &Result{analyzers: analyzers}
	for _, d := range diags {
		pos := loader.Fset.Position(d.Pos)
		name := pos.Filename
		if rel, err := filepath.Rel(dir, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
		res.Findings = append(res.Findings, Finding{
			File:     filepath.ToSlash(name),
			Line:     pos.Line,
			Column:   pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	return res, nil
}

// WriteText prints the classic file:line:col diagnostics.
func (r *Result) WriteText(w io.Writer) {
	for _, f := range r.Findings {
		fmt.Fprintf(w, "%s:%d:%d: %s [%s]\n", f.File, f.Line, f.Column, f.Message, f.Analyzer)
	}
}

// WriteJSON emits the findings as an indented JSON object (an empty run
// serializes with "findings": [] rather than null, so consumers can
// index unconditionally).
func (r *Result) WriteJSON(w io.Writer) error {
	out := struct {
		Findings []Finding `json:"findings"`
	}{Findings: r.Findings}
	if out.Findings == nil {
		out.Findings = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SARIF 2.1.0 skeleton — the minimal subset GitHub code scanning and
// sarif viewers consume: one run, one rule per analyzer, one result per
// finding with a physical location.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF emits the findings as a SARIF 2.1.0 log suitable for CI
// annotation upload.
func (r *Result) WriteSARIF(w io.Writer) error {
	run := sarifRun{
		Tool:    sarifTool{Driver: sarifDriver{Name: "ddlint", Rules: []sarifRule{}}},
		Results: []sarifResult{},
	}
	for _, a := range r.analyzers {
		run.Tool.Driver.Rules = append(run.Tool.Driver.Rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	for _, f := range r.Findings {
		run.Results = append(run.Results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: f.File},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{run},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
