package lockorder_test

import (
	"testing"

	"doubledecker/internal/lint/analysistest"
	"doubledecker/internal/lint/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, analysistest.TestDataDir(t), lockorder.Analyzer, "a")
}
