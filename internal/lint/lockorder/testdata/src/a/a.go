// Package a exercises lockorder: declared-order inversions, self
// edges, interprocedural cycles and the waiver/alias markers.
package a

import "sync"

// ddlint:lock-order S.alpha < S.beta

// S owns two ordered mutexes.
type S struct {
	alpha sync.Mutex
	beta  sync.Mutex
}

// inOrder nests beta under alpha, matching the declaration.
func (s *S) inOrder() {
	s.alpha.Lock()
	defer s.alpha.Unlock()
	s.beta.Lock()
	s.beta.Unlock()
}

// sequential releases alpha before taking beta: no edge either way.
func (s *S) sequential() {
	s.beta.Lock()
	s.beta.Unlock()
	s.alpha.Lock()
	s.alpha.Unlock()
}

// inverted acquires alpha while holding beta.
func (s *S) inverted() {
	s.beta.Lock()
	defer s.beta.Unlock()
	s.alpha.Lock() // want `acquiring S.alpha while holding S.beta inverts the declared lock order \(S.alpha < S.beta\)`
	s.alpha.Unlock()
}

// reentrant re-acquires a mutex it already holds.
func (s *S) reentrant() {
	s.alpha.Lock()
	defer s.alpha.Unlock()
	s.alpha.Lock() // want `acquiring S.alpha while already holding it risks self-deadlock`
	s.alpha.Unlock()
}

// migrate is the reviewed two-instance shape: same field on two
// values, taken in id order, waived explicitly.
func migrate(a, b *S) {
	a.alpha.Lock()
	defer a.alpha.Unlock()
	b.alpha.Lock() // ddlint:lock-ok two instances locked in id order
	defer b.alpha.Unlock()
}

// T owns two mutexes with no declared order; only the cycle check
// applies to them.
type T struct {
	gamma sync.Mutex
	delta sync.Mutex
}

// lockDelta is the callee half of a cycle spanning two functions: the
// gamma → delta edge is only visible through its summary.
func (t *T) lockDelta() {
	t.delta.Lock()
	t.delta.Unlock()
}

// gammaThenDelta holds gamma across a call that acquires delta.
func (t *T) gammaThenDelta() {
	t.gamma.Lock()
	defer t.gamma.Unlock()
	t.lockDelta()
}

// deltaThenGamma closes the cycle in the opposite direction. The cycle
// is reported at the first edge in sorted order (T.delta → T.gamma).
func (t *T) deltaThenGamma() {
	t.delta.Lock()
	defer t.delta.Unlock()
	t.gamma.Lock() // want `lock acquisition cycle among T.delta <-> T.gamma`
	t.gamma.Unlock()
}

// tokens models the eviction-token idiom: a *sync.Mutex reached
// through an aliased local, named via ddlint:lock-alias so the chain
// below can order it against S.beta.

// ddlint:lock-order S.token < S.beta

// tokenOf hands out a package-level token mutex.
var token sync.Mutex

func tokenOf() *sync.Mutex { return &token }

// tokenInOrder takes the aliased token before beta, as declared.
func tokenInOrder(s *S) {
	tok := tokenOf() // ddlint:lock-alias S.token
	tok.Lock()
	defer tok.Unlock()
	s.beta.Lock()
	s.beta.Unlock()
}

// tokenInverted takes the aliased token while holding beta.
func tokenInverted(s *S) {
	tok := tokenOf() // ddlint:lock-alias S.token
	s.beta.Lock()
	defer s.beta.Unlock()
	tok.Lock() // want `acquiring S.token while holding S.beta inverts the declared lock order \(S.token < S.beta\)`
	tok.Unlock()
}

// branchScoped acquires alpha in a branch that returns; the
// acquisition expires with the branch, so the second alpha.Lock is not
// a re-acquisition and the alpha → beta nesting below stays in order.
func branchScoped(s *S, cond bool) {
	if cond {
		s.alpha.Lock()
		defer s.alpha.Unlock()
		return
	}
	s.alpha.Lock()
	defer s.alpha.Unlock()
	s.beta.Lock()
	s.beta.Unlock()
}

// spawned acquisitions inside function literals belong to the spawned
// goroutine, not the spawner: no edge from alpha to gamma here.
func spawn(s *S, t *T) {
	s.alpha.Lock()
	defer s.alpha.Unlock()
	go func() {
		t.gamma.Lock()
		t.gamma.Unlock()
	}()
}
