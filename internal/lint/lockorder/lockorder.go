// Package lockorder enforces deadlock-freedom of the mutex hierarchy
// mechanically: it builds a may-acquire-while-holding graph over the
// whole run — lexical Lock/RLock sites, explicit (non-deferred)
// Unlock/RUnlock releases, ddlint:requires-lock obligations and the
// transitive acquisitions of every statically-resolvable callee — and
// reports
//
//   - any acquisition edge that inverts an order declared with
//     // ddlint:lock-order A < B < C (names are <Type>.<field> for
//     struct-owned mutexes, the bare identifier otherwise; a package may
//     declare several chains, each read from the package being analyzed);
//   - any acquisition of a mutex while a same-named mutex is already
//     held (self-deadlock for plain sync.Mutex, and the shape the
//     two-VM migration waives explicitly);
//   - any cycle in the graph, even between locks no chain mentions —
//     a cycle spanning two functions is exactly the deadlock a
//     per-function review misses.
//
// Interprocedural summaries (the set of locks a function may acquire,
// directly or through its callees) are computed on demand, memoized as
// pass facts shared across the per-package passes of a run, and read
// from dependency-package syntax, so an edge like Transport.mu →
// Injector.mu introduced three calls deep is still witnessed at the
// caller's call site.
//
// Held-set tracking is lexical, matching lockcheck: a deferred unlock
// releases at function return, not at its lexical position, so
// Lock/defer-Unlock keeps the mutex held for the rest of the body,
// while an explicit inline Unlock ends the critical section for
// subsequent acquisitions (the evictGlobalFIFO scan shape). One
// control-flow refinement keeps mutually-exclusive branches honest:
// lock events inside a block that ends in a return expire at that
// block's end, so the same-VM branch of MigrateInode does not appear to
// hold its lock into the cross-VM branch. Function literals are
// skipped — a goroutine body orders its own acquisitions, not its
// spawner's.
//
// Waivers: // ddlint:lock-ok on the witnessing line drops that edge
// (the documented same-level acquisition in VM-id order);
// // ddlint:lock-alias <name> on a local declaration names a mutex
// reached through a pointer alias (the eviction-token idiom).
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"doubledecker/internal/lint"
)

// Analyzer is the lockorder pass.
var Analyzer = &lint.Analyzer{
	Name: "lockorder",
	Doc:  "mutex acquisitions must be acyclic and respect the declared ddlint:lock-order hierarchy",
	Run:  run,
}

// edge is one witnessed "may acquire `to` while holding `from`" pair.
type edge struct {
	from, to string
	pos      token.Pos // first witness: acquisition or call site
}

// event is one lexical lock operation inside a function body. expires
// is the end of the innermost enclosing block that terminates in a
// return: an acquisition (or release) inside such a branch cannot be in
// effect for code after it, so the held-set discounts the event past
// that point (the two-branch MigrateInode shape).
type event struct {
	name    string
	pos     token.Pos
	expires token.Pos
	acquire bool
}

// callSite is one statically-resolved call inside a function body.
type callSite struct {
	fn  *types.Func
	pos token.Pos
}

// chain is one declared ddlint:lock-order hierarchy.
type chain struct {
	names []string
	rank  map[string]int
}

type checker struct {
	pass *lint.Pass
	// visiting guards summary recursion against call cycles.
	visiting map[*types.Func]bool
	// aliasLines maps file → declaration line → ddlint:lock-alias name.
	aliasLines map[*ast.File]map[int]string
	// okLines maps file → lines carrying ddlint:lock-ok waivers.
	okLines map[*ast.File]map[int]bool
}

func run(pass *lint.Pass) error {
	c := &checker{
		pass:       pass,
		visiting:   make(map[*types.Func]bool),
		aliasLines: make(map[*ast.File]map[int]string),
		okLines:    make(map[*ast.File]map[int]bool),
	}

	chains := declaredChains(pass)

	edges := make(map[[2]string]token.Pos)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.collectEdges(f, fd, edges)
		}
	}

	// Deterministic order for reporting.
	keys := make([][2]string, 0, len(edges))
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})

	// Edges diagnosed here are excluded from cycle detection below, so
	// one bad acquisition yields one finding, not an inversion plus the
	// cycle it forms with the legitimate direction.
	reported := make(map[[2]string]bool)
	for _, k := range keys {
		from, to := k[0], k[1]
		if from == to {
			c.pass.Reportf(edges[k], "acquiring %s while already holding it risks self-deadlock "+
				"(order the acquisitions or waive the reviewed site with ddlint:lock-ok)", to)
			reported[k] = true
			continue
		}
		for _, ch := range chains {
			rf, okf := ch.rank[from]
			rt, okt := ch.rank[to]
			if okf && okt && rt <= rf {
				c.pass.Reportf(edges[k], "acquiring %s while holding %s inverts the declared lock order (%s)",
					to, from, strings.Join(ch.names, " < "))
				reported[k] = true
				break
			}
		}
	}

	c.reportCycles(edges, keys, reported)
	return nil
}

// declaredChains parses every ddlint:lock-order annotation in the
// analyzed package. Grammar: names separated by " < ", one chain per
// annotation; multiple annotations declare independent constraints.
func declaredChains(pass *lint.Pass) []chain {
	var chains []chain
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, arg := range lint.Annotation(cg, "lock-order") {
				var names []string
				for _, part := range strings.Split(arg, "<") {
					if name := strings.TrimSpace(part); name != "" {
						names = append(names, name)
					}
				}
				if len(names) < 2 {
					continue
				}
				ch := chain{names: names, rank: make(map[string]int, len(names))}
				for i, n := range names {
					ch.rank[n] = i
				}
				chains = append(chains, ch)
			}
		}
	}
	return chains
}

// reportCycles finds strongly-connected components of the edge graph —
// minus self-edges and declared-order inversions, which were already
// reported — and reports one witness per cycle, at the position of its
// first edge in sorted order.
func (c *checker) reportCycles(edges map[[2]string]token.Pos, keys [][2]string, reported map[[2]string]bool) {
	adj := make(map[string][]string)
	for _, k := range keys {
		if k[0] != k[1] && !reported[k] {
			adj[k[0]] = append(adj[k[0]], k[1])
		}
	}
	nodes := make([]string, 0, len(adj))
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	// Tarjan's SCC, iterative enough for lint-sized graphs via recursion.
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	next := 0
	var sccs [][]string
	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			if len(scc) > 1 {
				sccs = append(sccs, scc)
			}
		}
	}
	for _, n := range nodes {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}

	for _, scc := range sccs {
		sort.Strings(scc)
		member := make(map[string]bool, len(scc))
		for _, n := range scc {
			member[n] = true
		}
		var witness token.Pos
		for _, k := range keys {
			if member[k[0]] && member[k[1]] && k[0] != k[1] && !reported[k] {
				witness = edges[k]
				break
			}
		}
		c.pass.Reportf(witness, "lock acquisition cycle among %s: any two goroutines interleaving "+
			"these acquisitions can deadlock", strings.Join(scc, " <-> "))
	}
}

// collectEdges walks one function body and records every
// held-while-acquiring pair: lexical acquisitions nested inside earlier
// ones, and call sites whose callee (transitively) acquires locks.
func (c *checker) collectEdges(file *ast.File, fd *ast.FuncDecl, edges map[[2]string]token.Pos) {
	info := c.pass.TypesInfo
	events, calls := c.bodyEvents(fd, info, file)

	// Locks the function's contract says are held for the whole body.
	base := c.requiredLocks(fd, info)

	heldAt := func(pos token.Pos) []string {
		count := make(map[string]int)
		for _, ev := range events {
			if ev.pos >= pos || ev.expires <= pos {
				continue
			}
			if ev.acquire {
				count[ev.name]++
			} else {
				count[ev.name]--
			}
		}
		held := append([]string(nil), base...)
		for name, n := range count {
			if n > 0 {
				held = append(held, name)
			}
		}
		sort.Strings(held)
		return held
	}

	add := func(from, to string, pos token.Pos) {
		if c.waived(file, pos) {
			return
		}
		k := [2]string{from, to}
		if _, ok := edges[k]; !ok {
			edges[k] = pos
		}
	}

	for _, ev := range events {
		if !ev.acquire {
			continue
		}
		for _, held := range heldAt(ev.pos) {
			add(held, ev.name, ev.pos)
		}
	}
	for _, call := range calls {
		held := heldAt(call.pos)
		if len(held) == 0 {
			continue
		}
		acq := c.acquiredSet(call.fn)
		if len(acq) == 0 {
			continue
		}
		names := make([]string, 0, len(acq))
		for name := range acq {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, from := range held {
			for _, to := range names {
				add(from, to, call.pos)
			}
		}
	}
}

// requiredLocks resolves a function's ddlint:requires-lock annotations
// to graph node names: a bare name matching a receiver field is
// qualified as <RecvType>.<field>, anything else passes through.
func (c *checker) requiredLocks(fd *ast.FuncDecl, info *types.Info) []string {
	names := lint.Annotation(fd.Doc, "requires-lock")
	if len(names) == 0 {
		return nil
	}
	var recvName string
	var recvFields *types.Struct
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		if tv, ok := info.Types[fd.Recv.List[0].Type]; ok {
			t := tv.Type
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if n, ok := t.(*types.Named); ok {
				recvName = n.Obj().Name()
				if s, ok := n.Underlying().(*types.Struct); ok {
					recvFields = s
				}
			}
		}
	}
	out := make([]string, 0, len(names))
	for _, name := range names {
		qualified := name
		if recvFields != nil && !strings.Contains(name, ".") {
			for i := 0; i < recvFields.NumFields(); i++ {
				if recvFields.Field(i).Name() == name {
					qualified = recvName + "." + name
					break
				}
			}
		}
		out = append(out, qualified)
	}
	return out
}

// bodyEvents collects the lexical lock events and statically-resolved
// call sites of one function body. Function literals are skipped
// entirely; deferred unlocks are dropped (they release at return);
// deferred non-lock calls are skipped too (their acquisitions happen
// after the body's last statement).
func (c *checker) bodyEvents(fd *ast.FuncDecl, info *types.Info, file *ast.File) ([]event, []callSite) {
	deferred := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
		}
		return true
	})

	var events []event
	var calls []callSite
	// termEnds tracks the enclosing blocks that end in a return; pushedTerm
	// mirrors the traversal stack so the pop on f(nil) stays matched.
	var termEnds []token.Pos
	var pushedTerm []bool
	expiry := func() token.Pos {
		if len(termEnds) > 0 {
			return termEnds[len(termEnds)-1]
		}
		return fd.Body.End()
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			if pushedTerm[len(pushedTerm)-1] {
				termEnds = termEnds[:len(termEnds)-1]
			}
			pushedTerm = pushedTerm[:len(pushedTerm)-1]
			return true
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		pushed := false
		if b, isBlock := n.(*ast.BlockStmt); isBlock && len(b.List) > 0 {
			if _, isRet := b.List[len(b.List)-1].(*ast.ReturnStmt); isRet {
				termEnds = append(termEnds, b.End())
				pushed = true
			}
		}
		pushedTerm = append(pushedTerm, pushed)
		if call, isCall := n.(*ast.CallExpr); isCall {
			if name, acquire, ok := c.lockOp(call, info, file); ok {
				if acquire || !deferred[call] {
					events = append(events, event{name: name, pos: call.Pos(), expires: expiry(), acquire: acquire})
				}
			} else if !deferred[call] {
				if fn := staticCallee(call, info); fn != nil {
					calls = append(calls, callSite{fn: fn, pos: call.Pos()})
				}
			}
		}
		return true
	})
	return events, calls
}

// lockOp recognizes a sync.Mutex/RWMutex Lock/RLock/Unlock/RUnlock call
// and names the mutex it operates on.
func (c *checker) lockOp(call *ast.CallExpr, info *types.Info, file *ast.File) (name string, acquire, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	m, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || m.Pkg() == nil || m.Pkg().Path() != "sync" {
		return "", false, false
	}
	switch m.Name() {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return "", false, false
	}
	return c.lockName(sel.X, info, file), acquire, true
}

// lockName produces the graph node for a mutex expression:
// <OwnerType>.<field> when the mutex is a struct field, a declared
// ddlint:lock-alias when the receiver is an aliased local, the bare
// identifier otherwise.
func (c *checker) lockName(x ast.Expr, info *types.Info, file *ast.File) string {
	switch x := x.(type) {
	case *ast.ParenExpr:
		return c.lockName(x.X, info, file)
	case *ast.SelectorExpr:
		if tv, ok := info.Types[x.X]; ok {
			t := tv.Type
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if n, ok := t.(*types.Named); ok {
				return n.Obj().Name() + "." + x.Sel.Name
			}
		}
		return x.Sel.Name
	case *ast.Ident:
		if obj := info.ObjectOf(x); obj != nil && file != nil {
			if alias := c.aliasFor(file, obj); alias != "" {
				return alias
			}
		}
		return x.Name
	default:
		return ""
	}
}

// aliasFor returns the ddlint:lock-alias declared on the line where obj
// was defined, if any.
func (c *checker) aliasFor(file *ast.File, obj types.Object) string {
	lines, ok := c.aliasLines[file]
	if !ok {
		lines = make(map[int]string)
		for _, cg := range file.Comments {
			for _, cmt := range cg.List {
				args := lint.Annotation(&ast.CommentGroup{List: []*ast.Comment{cmt}}, "lock-alias")
				if len(args) == 1 && args[0] != "" {
					lines[c.pass.Fset.Position(cmt.Pos()).Line] = args[0]
				}
			}
		}
		c.aliasLines[file] = lines
	}
	if obj.Pos() == token.NoPos {
		return ""
	}
	return lines[c.pass.Fset.Position(obj.Pos()).Line]
}

// waived reports whether the line of pos carries a ddlint:lock-ok
// waiver.
func (c *checker) waived(file *ast.File, pos token.Pos) bool {
	lines, ok := c.okLines[file]
	if !ok {
		lines = lint.MarkerLines(c.pass.Fset, file, "lock-ok")
		c.okLines[file] = lines
	}
	return lines[c.pass.Fset.Position(pos).Line]
}

// acquiredSet computes the set of mutex names fn may acquire, directly
// or through any statically-resolvable callee whose source is part of
// the run. Summaries are memoized as pass facts, so a whole-module run
// computes each one once; recursion through call cycles terminates via
// the visiting set (the partial summary of a cycle participant is
// completed by its first caller).
func (c *checker) acquiredSet(fn *types.Func) map[string]bool {
	if v, ok := c.pass.Fact(fn); ok {
		return v.(map[string]bool)
	}
	if c.visiting[fn] {
		return nil
	}
	c.visiting[fn] = true
	defer delete(c.visiting, fn)

	set := make(map[string]bool)
	decl, file, info := c.declOf(fn)
	if decl != nil && decl.Body != nil && info != nil {
		events, calls := c.bodyEvents(decl, info, file)
		for _, ev := range events {
			if ev.acquire && ev.name != "" {
				set[ev.name] = true
			}
		}
		for _, call := range calls {
			for name := range c.acquiredSet(call.fn) {
				set[name] = true
			}
		}
	}
	c.pass.SetFact(fn, set)
	return set
}

// declOf locates fn's declaration, enclosing file and type info in its
// defining package, when that package was loaded from source.
func (c *checker) declOf(fn *types.Func) (*ast.FuncDecl, *ast.File, *types.Info) {
	pkg := fn.Pkg()
	if pkg == nil {
		return nil, nil, nil
	}
	info := c.pass.InfoFor(pkg)
	for _, f := range c.pass.FilesFor(pkg) {
		if fn.Pos() < f.Pos() || fn.Pos() > f.End() {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Pos() == fn.Pos() {
				return fd, f, info
			}
		}
	}
	return nil, nil, nil
}

// staticCallee resolves the called function, when it is a declared
// function or method (interface calls and function values resolve to
// their types.Func only for concrete methods).
func staticCallee(call *ast.CallExpr, info *types.Info) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	if fn == nil {
		return nil
	}
	// An interface method has no body to summarize; skip it rather than
	// caching an empty summary under the interface's method object.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
			return nil
		}
	}
	return fn
}
