package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	PkgPath   string
	Dir       string
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Loader parses and type-checks packages from source. Module-internal
// import paths are resolved to directories via the resolve hook and
// type-checked recursively (with memoization, so every package in a run
// shares one types.Package per import path — object identities line up
// across passes); everything else (the standard library) is delegated to
// the compiler's source importer, which works without network access or
// pre-built export data.
type Loader struct {
	Fset    *token.FileSet
	resolve func(path string) (dir string, ok bool)
	std     types.Importer
	pkgs    map[string]*loadEntry
	byTypes map[*types.Package]*Package
	// facts holds analyzer-namespaced interprocedural summaries
	// (Pass.Fact/Pass.SetFact); sharing them on the loader lets one
	// analyzer reuse summaries of dependency packages across the
	// per-package passes of a run.
	facts map[factKey]any
}

// factKey namespaces one interprocedural fact by analyzer and subject.
type factKey struct {
	analyzer string
	obj      types.Object
}

type loadEntry struct {
	pkg     *Package
	err     error
	loading bool
}

// NewModuleLoader returns a loader rooted at a module directory: import
// paths equal to or below modPath resolve into root.
func NewModuleLoader(root, modPath string) *Loader {
	l := newLoader()
	l.resolve = func(path string) (string, bool) {
		if path == modPath {
			return root, true
		}
		if rest, ok := strings.CutPrefix(path, modPath+"/"); ok {
			return filepath.Join(root, filepath.FromSlash(rest)), true
		}
		return "", false
	}
	return l
}

// NewDirLoader returns a loader for fixture trees (analysistest layout):
// import path "a" resolves to srcRoot/a.
func NewDirLoader(srcRoot string) *Loader {
	l := newLoader()
	l.resolve = func(path string) (string, bool) {
		dir := filepath.Join(srcRoot, filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, true
		}
		return "", false
	}
	return l
}

func newLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*loadEntry),
		byTypes: make(map[*types.Package]*Package),
		facts:   make(map[factKey]any),
	}
}

// Load parses and type-checks the package at the given import path.
func (l *Loader) Load(path string) (*Package, error) {
	if e, ok := l.pkgs[path]; ok {
		if e.loading {
			return nil, fmt.Errorf("import cycle through %q", path)
		}
		return e.pkg, e.err
	}
	dir, ok := l.resolve(path)
	if !ok {
		return nil, fmt.Errorf("cannot resolve import path %q", path)
	}
	return l.loadDir(dir, path)
}

// LoadDir parses and type-checks the package in dir, registering it
// under importPath.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if e, ok := l.pkgs[importPath]; ok {
		if e.loading {
			return nil, fmt.Errorf("import cycle through %q", importPath)
		}
		return e.pkg, e.err
	}
	return l.loadDir(dir, importPath)
}

func (l *Loader) loadDir(dir, importPath string) (*Package, error) {
	e := &loadEntry{loading: true}
	l.pkgs[importPath] = e
	pkg, err := l.typeCheck(dir, importPath)
	e.pkg, e.err, e.loading = pkg, err, false
	return pkg, err
}

// ErrNoGoFiles reports a directory with nothing to analyze.
var ErrNoGoFiles = fmt.Errorf("no non-test Go files")

func (l *Loader) typeCheck(dir, importPath string) (*Package, error) {
	names, err := goFileNames(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("%s: %w", dir, ErrNoGoFiles)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: importerFunc(l.importFor),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %w", importPath, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", importPath, err)
	}
	pkg := &Package{PkgPath: importPath, Dir: dir, Files: files, Types: tpkg, TypesInfo: info}
	l.byTypes[tpkg] = pkg
	return pkg, nil
}

// importFor satisfies the type-checker's importer interface: module and
// fixture paths load from source through this loader, the rest through
// the standard library's source importer.
func (l *Loader) importFor(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := l.resolve(path); ok {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func (l *Loader) packageFor(pkg *types.Package) *Package {
	return l.byTypes[pkg]
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// goFileNames lists the buildable non-test Go files of dir, sorted.
func goFileNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// FindModuleRoot walks upward from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod: no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
