package lint

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Run is the multichecker driver: it expands patterns (Go-style, with
// "..." wildcards) into package directories relative to dir, loads and
// type-checks each package once, applies every analyzer, and writes
// file:line:col diagnostics to w. It returns the number of diagnostics.
func Run(w io.Writer, dir string, analyzers []*Analyzer, patterns []string) (int, error) {
	res, err := Collect(dir, analyzers, patterns)
	if err != nil {
		return 0, err
	}
	res.WriteText(w)
	return len(res.Findings), nil
}

// Analyze applies every analyzer to one loaded package.
func Analyze(pkg *Package, loader *Loader, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      loader.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			loader:    loader,
		}
		if err := a.Run(pass); err != nil {
			diags = append(diags, Diagnostic{Pos: pkg.Files[0].Pos(), Analyzer: a.Name,
				Message: fmt.Sprintf("analyzer failed: %v", err)})
			continue
		}
		diags = append(diags, pass.diagnostics...)
	}
	return diags
}

// expandPatterns turns CLI patterns into a deduplicated list of package
// directories. "./..." (or any prefix ending in "/...") walks the tree,
// skipping testdata, hidden and underscore directories; a plain pattern
// names one directory. Explicitly named directories are never skipped,
// so `ddlint ./testdata/bad` works in the lint tool's own tests.
func expandPatterns(dir string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var out []string
	add := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	for _, pat := range patterns {
		if pat == "..." {
			pat = "./..."
		}
		base, wild := strings.CutSuffix(pat, "/...")
		if !filepath.IsAbs(base) {
			base = filepath.Join(dir, base)
		}
		if !wild {
			if st, err := os.Stat(base); err != nil || !st.IsDir() {
				return nil, fmt.Errorf("pattern %q: not a directory", pat)
			}
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return fs.SkipDir
			}
			if names, err := goFileNames(path); err == nil && len(names) > 0 {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	// Load (and therefore analyze and report) packages in sorted order
	// regardless of how the caller interleaved patterns: diagnostics
	// stay byte-identical across runs and CI diffs stay meaningful.
	sort.Strings(out)
	return out, nil
}

// dirImportPath maps a package directory to its import path within the
// module. Directories outside the module root (or under testdata, which
// go tooling excludes from the module) get a synthetic rooted path so
// the type-checker still sees a unique package path.
func dirImportPath(root, modPath, dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "ddlint.invalid/" + filepath.ToSlash(abs), nil
	}
	if rel == "." {
		return modPath, nil
	}
	return modPath + "/" + filepath.ToSlash(rel), nil
}
