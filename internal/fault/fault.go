// Package fault is the deterministic fault-injection framework behind the
// reproduction's robustness story. A Plan is a set of Rules, each naming an
// injection site (e.g. "host-ssd.read", "transport.batch"), a trigger
// (probability, every-nth-operation, and/or a virtual-time window) and a
// fault Kind (I/O error, latency spike, device stall, transport drop or
// corruption). An Injector compiles a plan and is consulted by the
// instrumented components — block devices, cache stores and the hypercall
// transport — at each operation.
//
// Design constraints, in order:
//
//   - The zero value must be free: a nil *Injector decides KindNone with
//     no locking, no allocation and no branching beyond the nil check, so
//     production paths pay nothing when no faults are configured.
//   - Decisions are deterministic and seedable: each rule owns a PRNG
//     seeded from Plan.Seed and the rule's position, so single-threaded
//     simulations replay bit-for-bit and concurrent runs are reproducible
//     per schedule.
//   - All timing is virtual: the injector never reads wall-clock time;
//     windows are evaluated against the caller-supplied virtual now.
//
// Per-site and per-rule counters record how many operations were seen and
// how many faults fired, so experiments can report the injected fault rate
// alongside the observed degradation.
package fault

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"
)

// Kind enumerates the injectable fault classes.
type Kind uint8

// Fault kinds. KindNone is the zero value: no fault.
const (
	KindNone Kind = iota
	// KindIOError fails the operation with a device I/O error.
	KindIOError
	// KindLatency delays the operation by the rule's Delay but lets it
	// succeed — a latency spike (GC pause, firmware hiccup).
	KindLatency
	// KindStall models an unresponsive device: the operation times out
	// after the rule's Delay and fails — the block layer's timeout path.
	KindStall
	// KindDrop loses a transport crossing: the payload never arrives and
	// the sender must retry.
	KindDrop
	// KindCorrupt delivers a transport crossing with flipped bits; the
	// receiver's checksum rejects it and the sender must retry.
	KindCorrupt
)

// String implements fmt.Stringer with the names the JSON encoding uses.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindIOError:
		return "io-error"
	case KindLatency:
		return "latency"
	case KindStall:
		return "stall"
	case KindDrop:
		return "drop"
	case KindCorrupt:
		return "corrupt"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// KindFromString parses the JSON names back into a Kind.
func KindFromString(s string) (Kind, error) {
	switch s {
	case "io-error":
		return KindIOError, nil
	case "latency":
		return KindLatency, nil
	case "stall":
		return KindStall, nil
	case "drop":
		return KindDrop, nil
	case "corrupt":
		return KindCorrupt, nil
	case "", "none":
		return KindNone, nil
	default:
		return KindNone, fmt.Errorf("fault: unknown kind %q", s)
	}
}

// MarshalJSON encodes the kind as its string name.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON decodes the string names.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	v, err := KindFromString(s)
	if err != nil {
		return err
	}
	*k = v
	return nil
}

// Rule is one injection directive. A rule matches an operation when the
// site matches and virtual time is inside the window; it then fires on the
// Nth trigger (every Nth matching operation) and/or the probability
// trigger. A rule with neither trigger set fires on every match — the
// always-on form used for hard windows like a device stall.
type Rule struct {
	// Site selects the injection point. A trailing "*" is a prefix
	// wildcard: "host-ssd.*" matches both "host-ssd.read" and
	// "host-ssd.write".
	Site string `json:"site"`
	// Kind is the fault to inject.
	Kind Kind `json:"kind"`
	// Prob fires the rule with this probability per matching operation
	// (0 disables the probabilistic trigger).
	Prob float64 `json:"prob,omitempty"`
	// Nth fires the rule on every Nth matching operation (0 disables).
	Nth int64 `json:"nth,omitempty"`
	// From/To bound the rule to a virtual-time window [From, To); a zero
	// To leaves the window open-ended.
	From time.Duration `json:"from,omitempty"`
	To   time.Duration `json:"to,omitempty"`
	// Delay is the added latency for KindLatency and the modeled timeout
	// for KindStall.
	Delay time.Duration `json:"delay,omitempty"`
}

// matches reports whether the rule applies to an operation at site/now.
func (r *Rule) matches(now time.Duration, site string) bool {
	if now < r.From || (r.To > 0 && now >= r.To) {
		return false
	}
	if strings.HasSuffix(r.Site, "*") {
		return strings.HasPrefix(site, strings.TrimSuffix(r.Site, "*"))
	}
	return r.Site == site
}

// Plan is a complete fault schedule: a seed plus the rules.
type Plan struct {
	Seed  int64  `json:"seed"`
	Rules []Rule `json:"rules"`
}

// ParsePlan decodes a JSON-encoded plan, rejecting unknown fields so typos
// in canned plans fail loudly instead of silently injecting nothing, and
// validating every rule (see Plan.Validate); unknown-site warnings do not
// fail the parse — callers that want them run Validate themselves.
func ParsePlan(data []byte) (Plan, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return Plan{}, fmt.Errorf("fault: parse plan: %w", err)
	}
	if _, err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// Decision is the injector's verdict for one operation.
type Decision struct {
	// Kind is the injected fault (KindNone = proceed normally).
	Kind Kind
	// Delay is extra latency the operation must absorb (latency spikes
	// and stall timeouts).
	Delay time.Duration
}

// Fails reports whether the operation must return an error: I/O errors and
// stall timeouts fail; latency spikes succeed slowly; drop/corrupt are
// transport verdicts whose failure semantics the transport implements.
func (d Decision) Fails() bool {
	switch d.Kind {
	case KindIOError, KindStall, KindDrop, KindCorrupt:
		return true
	default: // KindNone, KindLatency
		return false
	}
}

// compiledRule pairs a Rule with its private PRNG and counters.
type compiledRule struct {
	Rule
	rng     *rand.Rand
	matched int64 // operations the rule matched
	fired   int64 // faults the rule injected
}

// SiteStats counts one site's traffic through the injector.
type SiteStats struct {
	Ops      int64          // operations that consulted the injector
	Injected map[Kind]int64 // faults injected, by kind
}

// Injector evaluates a compiled Plan. A nil *Injector is a valid no-op
// injector; every method is nil-safe.
//
// Injector is safe for concurrent use: one mutex guards the PRNGs and
// counters. The critical section is a few loads and at most one PRNG draw,
// so contention is negligible next to the device queues the callers
// already serialize on.
type Injector struct {
	mu sync.Mutex
	// ddlint:guarded-by mu
	rules []*compiledRule
	// ddlint:guarded-by mu
	sites map[string]*SiteStats
	// unknownRules counts compiled rules whose site matched no registered
	// site pattern — the warning counter plan validation surfaces.
	// ddlint:guarded-by mu
	unknownRules int64
}

// New compiles a plan. A plan with no rules yields a working (all-pass)
// injector; callers that want the true zero-cost path keep a nil pointer.
// Rules naming unregistered sites compile anyway (the component may just
// not be linked in) but are counted — see UnknownSiteRules.
func New(plan Plan) *Injector {
	in := &Injector{sites: make(map[string]*SiteStats)}
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, r := range plan.Rules {
		in.rules = append(in.rules, &compiledRule{
			Rule: r,
			rng:  rand.New(rand.NewSource(plan.Seed + int64(i)*0x9e3779b9)),
		})
		if !siteKnown(r.Site) {
			in.unknownRules++
		}
	}
	return in
}

// UnknownSiteRules reports how many of the compiled rules target sites no
// component registered — a likely typo if the run was expected to inject
// faults there. Nil-safe.
func (in *Injector) UnknownSiteRules() int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.unknownRules
}

// Decide consults the plan for one operation at site, at virtual time now.
// The first matching rule whose trigger fires wins; later rules are not
// evaluated. Nil-safe: a nil injector always decides KindNone.
func (in *Injector) Decide(now time.Duration, site string) Decision {
	if in == nil {
		return Decision{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	st, ok := in.sites[site]
	if !ok {
		st = &SiteStats{Injected: make(map[Kind]int64)}
		in.sites[site] = st
	}
	st.Ops++
	for _, r := range in.rules {
		if !r.matches(now, site) {
			continue
		}
		r.matched++
		fire := false
		switch {
		case r.Nth > 0:
			fire = r.matched%r.Nth == 0
		case r.Prob > 0:
			fire = r.rng.Float64() < r.Prob
		default:
			fire = true // always-on rule (hard windows)
		}
		if !fire {
			continue
		}
		r.fired++
		st.Injected[r.Kind]++
		return Decision{Kind: r.Kind, Delay: r.Delay}
	}
	return Decision{}
}

// Stats returns a snapshot of per-site traffic and injected faults, keyed
// by site name. Nil-safe.
func (in *Injector) Stats() map[string]SiteStats {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]SiteStats, len(in.sites))
	for site, st := range in.sites {
		inj := make(map[Kind]int64, len(st.Injected))
		for k, n := range st.Injected {
			inj[k] = n
		}
		out[site] = SiteStats{Ops: st.Ops, Injected: inj}
	}
	return out
}

// Injected reports the total faults injected across all sites, optionally
// filtered by kind (pass KindNone for all kinds). Nil-safe.
func (in *Injector) Injected(kind Kind) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var n int64
	for _, st := range in.sites {
		for k, c := range st.Injected {
			if kind == KindNone || k == kind {
				n += c
			}
		}
	}
	return n
}

// Summary renders the injector's activity for logs: one line per site in
// name order. Nil-safe (returns "").
func (in *Injector) Summary() string {
	stats := in.Stats()
	if len(stats) == 0 {
		return ""
	}
	sites := make([]string, 0, len(stats))
	for s := range stats {
		sites = append(sites, s)
	}
	sort.Strings(sites)
	var b strings.Builder
	for _, s := range sites {
		st := stats[s]
		fmt.Fprintf(&b, "%s: %d ops", s, st.Ops)
		// Sort the Kind values by display name and print them directly:
		// round-tripping through KindFromString would silently attribute
		// a kind missing from the parse table to KindNone's count.
		kinds := make([]Kind, 0, len(st.Injected))
		for k := range st.Injected {
			kinds = append(kinds, k)
		}
		sort.Slice(kinds, func(i, j int) bool { return kinds[i].String() < kinds[j].String() })
		for _, k := range kinds {
			fmt.Fprintf(&b, ", %s=%d", k, st.Injected[k])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Error is the failure a faulted operation surfaces: which site failed and
// what kind of fault was injected. Components wrap or return it directly,
// so tests and breakers can assert on the structured cause.
type Error struct {
	Site string
	Kind Kind
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("fault: injected %s at %s", e.Kind, e.Site)
}
