package fault

import (
	"strings"
	"testing"
	"time"
)

func TestValidateRejectsStructuralDefects(t *testing.T) {
	cases := []struct {
		name string
		rule Rule
		want string
	}{
		{"no site", Rule{Kind: KindDrop}, "no site"},
		{"no kind", Rule{Site: "transport.batch"}, "no kind"},
		{"prob high", Rule{Site: "transport.batch", Kind: KindDrop, Prob: 1.5}, "out of [0,1]"},
		{"prob negative", Rule{Site: "transport.batch", Kind: KindDrop, Prob: -0.1}, "out of [0,1]"},
		{"negative nth", Rule{Site: "transport.batch", Kind: KindDrop, Nth: -3}, "negative nth"},
		{"negative delay", Rule{Site: "transport.batch", Kind: KindLatency, Delay: -time.Second}, "negative delay"},
		{"absurd delay", Rule{Site: "transport.batch", Kind: KindStall, Delay: time.Hour}, "exceeds"},
		{"negative window", Rule{Site: "transport.batch", Kind: KindDrop, From: -time.Second}, "negative window"},
		{"empty window", Rule{Site: "transport.batch", Kind: KindDrop, From: time.Second, To: time.Second}, "empty window"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := Plan{Rules: []Rule{tc.rule}}
			if _, err := p.Validate(); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestValidateWarnsOnUnknownSiteOnly(t *testing.T) {
	RegisterSites("transport.batch") // idempotent with the real registration
	p := Plan{Rules: []Rule{
		{Site: "transport.batch", Kind: KindDrop, Prob: 0.5},
		{Site: "no-such-component.op", Kind: KindDrop, Prob: 0.5},
	}}
	warnings, err := p.Validate()
	if err != nil {
		t.Fatalf("unknown site must not be a hard error: %v", err)
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "no-such-component.op") {
		t.Fatalf("warnings = %v, want one naming the unknown site", warnings)
	}
}

func TestParsePlanRejectsInvalidRules(t *testing.T) {
	_, err := ParsePlan([]byte(`{"seed":1,"rules":[{"site":"transport.batch","kind":"stall","delay":99999999999999}]}`))
	if err == nil {
		t.Fatalf("ParsePlan accepted an absurd delay")
	}
	// Unknown sites parse fine — they are warnings, not errors.
	p, err := ParsePlan([]byte(`{"seed":1,"rules":[{"site":"martian.op","kind":"drop","prob":0.5}]}`))
	if err != nil {
		t.Fatalf("ParsePlan rejected an unknown-site rule: %v", err)
	}
	if New(p).UnknownSiteRules() != 1 {
		t.Fatalf("injector did not count the unknown-site rule")
	}
}

func TestSitePatternOverlap(t *testing.T) {
	cases := []struct {
		rule, pattern string
		want          bool
	}{
		{"host-ssd.read", "host-ssd.read", true},
		{"host-ssd.read", "host-ssd.*", true},
		{"host-ssd.*", "host-ssd.read", true},
		{"host-ssd.*", "host-*", true},
		{"vm3-disk.read", "*.read", true},
		{"anything.*", "*.read", true}, // some concrete site matches both
		{"host-ssd.read", "transport.batch", false},
		{"host-ssd.read", "*.write", false},
		{"transport.*", "host-ssd.*", false},
	}
	for _, tc := range cases {
		if got := patternsOverlap(tc.rule, tc.pattern); got != tc.want {
			t.Errorf("patternsOverlap(%q, %q) = %v, want %v", tc.rule, tc.pattern, got, tc.want)
		}
	}
}

func TestRandomPlanDeterministicAndValid(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		p := RandomPlan(seed)
		if len(p.Rules) == 0 {
			t.Fatalf("seed %d: empty plan", seed)
		}
		if _, err := p.Validate(); err != nil {
			t.Fatalf("seed %d: generated plan invalid: %v", seed, err)
		}
		q := RandomPlan(seed)
		if len(q.Rules) != len(p.Rules) {
			t.Fatalf("seed %d: non-deterministic rule count", seed)
		}
		for i := range p.Rules {
			if p.Rules[i] != q.Rules[i] {
				t.Fatalf("seed %d rule %d: %+v != %+v", seed, i, p.Rules[i], q.Rules[i])
			}
		}
	}
}

func TestRandomPlanTargetsRegisteredSites(t *testing.T) {
	// The chaos generator must draw only sites validation knows about,
	// so a generated plan never trips the unknown-site warning. The fault
	// package itself links no components; register the patterns the real
	// components declare in their init functions (hypercall, blockdev,
	// store/remote).
	RegisterSites("transport.batch", "transport.call", "transport.completion", "*.read", "*.write", "*.get", "*.put")
	for seed := int64(0); seed < 50; seed++ {
		warnings, err := RandomPlan(seed).Validate()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(warnings) != 0 {
			t.Fatalf("seed %d: RandomPlan drew an unregistered site: %v", seed, warnings)
		}
	}
}
